//===- bench/BenchCommon.h - shared helpers for the table benches --------------//
//
// Part of the delinq project. Each bench binary regenerates one table of the
// paper's evaluation; these helpers keep the binaries declarative.
//
//===----------------------------------------------------------------------===//

#ifndef DLQ_BENCH_BENCHCOMMON_H
#define DLQ_BENCH_BENCHCOMMON_H

#include "pipeline/Pipeline.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

namespace dlq {
namespace bench {

/// Prints the bench banner: which table of the paper this regenerates.
inline void banner(const char *TableId, const char *Caption) {
  std::printf("== %s: %s ==\n", TableId, Caption);
}

/// Prints a rendered table followed by a blank line.
inline void emit(const TextTable &T) {
  std::fputs(T.render().c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Prints a "paper reports ..." footnote.
inline void footnote(const std::string &Text) {
  std::printf("paper: %s\n\n", Text.c_str());
}

/// "x / y (p%)" cell in the style of the paper's Table 1/10.
inline std::string ratioCell(size_t Num, size_t Den) {
  double Frac = Den == 0 ? 0 : static_cast<double>(Num) / Den;
  return formatString("%zu / %zu (%s)", Num, Den,
                      formatPercent(Frac).c_str());
}

/// Percent cell with no decimals, like most of the paper's tables.
inline std::string pct(double Frac, unsigned Decimals = 0) {
  return formatPercent(Frac, Decimals);
}

/// The paper analog name for a workload ("181.mcf (mcf_like)").
inline std::string benchLabel(const workloads::Workload &W) {
  return W.PaperAnalog + " (" + W.Name + ")";
}

} // namespace bench
} // namespace dlq

#endif // DLQ_BENCH_BENCHCOMMON_H
