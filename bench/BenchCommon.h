//===- bench/BenchCommon.h - shared helpers for the table benches --------------//
//
// Part of the delinq project. Each bench binary regenerates one table of the
// paper's evaluation; these helpers keep the binaries declarative.
//
// Every bench accepts the shared execution flags (--jobs, --cache-dir,
// --no-cache, --trace, --engine) plus --json <path>, fans its per-benchmark
// rows out through
// the driver's JobPool as a dependency-aware TaskSet (a warm-up task per
// workload feeding the row task), and prints an execution report to stderr.
// Tables and averages go to stdout in registry order, so stdout is
// byte-identical for any worker count and any cache state.
//
//===----------------------------------------------------------------------===//

#ifndef DLQ_BENCH_BENCHCOMMON_H
#define DLQ_BENCH_BENCHCOMMON_H

#include "camodel/Camodel.h"
#include "exec/Hash.h"
#include "exec/JobPool.h"
#include "exec/Options.h"
#include "pipeline/Pipeline.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace dlq {
namespace bench {

/// Prints the bench banner: which table of the paper this regenerates.
inline void banner(const char *TableId, const char *Caption) {
  std::printf("== %s: %s ==\n", TableId, Caption);
}

/// Prints a rendered table followed by a blank line.
inline void emit(const TextTable &T) {
  std::fputs(T.render().c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Prints a "paper reports ..." footnote.
inline void footnote(const std::string &Text) {
  std::printf("paper: %s\n\n", Text.c_str());
}

/// "x / y (p%)" cell in the style of the paper's Table 1/10.
inline std::string ratioCell(size_t Num, size_t Den) {
  double Frac = Den == 0 ? 0 : static_cast<double>(Num) / Den;
  return formatString("%zu / %zu (%s)", Num, Den,
                      formatPercent(Frac).c_str());
}

/// Percent cell with no decimals, like most of the paper's tables.
inline std::string pct(double Frac, unsigned Decimals = 0) {
  return formatPercent(Frac, Decimals);
}

/// The paper analog name for a workload ("181.mcf (mcf_like)").
inline std::string benchLabel(const workloads::Workload &W) {
  return W.PaperAnalog + " (" + W.Name + ")";
}

/// A deterministic per-workload RNG seed: independent of the order in which
/// worker threads reach the workload, so parallel runs reproduce serial ones.
inline uint64_t workloadSeed(uint64_t Base, const std::string &Name) {
  return Base ^ exec::fnv1a(Name.data(), Name.size());
}

/// The cache geometries of the paper's sweeps, in one place so the sweep
/// benches and the analytical backend can never drift apart: Table 8 holds
/// the baseline size and block and varies associativity; Table 9 holds
/// 4-way 32-byte blocks and varies the size.
inline sim::CacheConfig assocSweepCache(uint32_t Assoc) {
  return sim::CacheConfig{8 * 1024, Assoc, 32};
}
inline sim::CacheConfig sizeSweepCache(uint32_t Kb) {
  return sim::CacheConfig{Kb * 1024, 4, 32};
}

/// The shared bench command line.
struct BenchConfig {
  exec::ExecOptions Exec = exec::ExecOptions::fromEnv();
  std::string JsonPath;
  /// --engine=camodel: geometry sweeps use the analytical cache model with
  /// a single baseline-geometry simulation as ground truth, instead of one
  /// simulation per geometry.
  bool Camodel = false;
  bool Ok = true;
};

inline BenchConfig parseArgs(int Argc, char **Argv) {
  BenchConfig C;
  for (int I = 1; I < Argc; ++I) {
    // The analytical backend is a bench-level engine, not a simulation
    // engine: intercept it before ExecOptions validates --engine values.
    std::string Lead = Argv[I];
    if (Lead == "--engine=camodel" ||
        (Lead == "--engine" && I + 1 < Argc &&
         std::string(Argv[I + 1]) == "camodel")) {
      if (Lead == "--engine")
        ++I;
      C.Camodel = true;
      continue;
    }
    if (C.Exec.consumeArg(Argc, Argv, I)) {
      if (!C.Exec.Error.empty()) {
        std::fprintf(stderr, "error: %s\n", C.Exec.Error.c_str());
        C.Ok = false;
        break;
      }
      C.Exec.applyTracing();
      continue;
    }
    std::string Arg = Argv[I];
    if ((Arg == "--json" && I + 1 < Argc) || Arg.rfind("--json=", 0) == 0) {
      C.JsonPath = Arg[6] == '=' ? Arg.substr(7) : Argv[++I];
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [options]\noptions:\n%s"
                 "  --json <path>        write machine-readable results\n",
                 Argv[0], exec::ExecOptions::usageText());
    C.Ok = false;
    break;
  }
  return C;
}

/// Accumulates one numeric metric row per benchmark and renders the
/// machine-readable report: {"table", "rows": [...], "exec": {...}}.
class JsonReport {
public:
  explicit JsonReport(std::string Table) : Table(std::move(Table)) {}

  void addRow(const std::string &Bench,
              std::vector<std::pair<std::string, double>> Metrics) {
    Rows.push_back({Bench, std::move(Metrics)});
  }

  bool write(const std::string &Path, pipeline::Driver &D) const {
    std::ofstream Out(Path, std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
      return false;
    }
    Out << "{\"table\": \"" << Table << "\", \"rows\": [";
    for (size_t I = 0; I != Rows.size(); ++I) {
      Out << (I ? ", " : "") << "{\"bench\": \"" << Rows[I].first << "\"";
      for (const auto &[Name, Value] : Rows[I].second)
        Out << formatString(", \"%s\": %.6f", Name.c_str(), Value);
      Out << "}";
    }
    Out << "], \"exec\": "
        << D.stats().json(D.store().stats(), D.workers()) << "}\n";
    return Out.good();
  }

private:
  std::string Table;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string,
                                                           double>>>> Rows;
};

/// Bench epilogue: the exec report on stderr, the JSON report when asked,
/// and the Chrome-trace artifact when --trace gave a path.
inline void finish(pipeline::Driver &D, const BenchConfig &Cfg,
                   const JsonReport *Json = nullptr) {
  std::fprintf(stderr, "%s\n",
               D.stats().render(D.store().stats(), D.workers()).c_str());
  if (Json && !Cfg.JsonPath.empty())
    Json->write(Cfg.JsonPath, D);
  Cfg.Exec.writeTrace();
}

/// rho under geometry \p Preds was computed for, with misses *estimated*
/// instead of simulated: each load contributes execs x predicted miss
/// ratio; loads the model cannot capture fall back to their miss ratio
/// from the baseline-geometry simulation in \p G. This is what makes
/// --engine=camodel sweeps one-simulation cheap.
inline double
analyticRho(const metrics::LoadSet &Delta, const pipeline::GroundTruth &G,
            const std::map<masm::InstrRef, camodel::Prediction> &Preds) {
  double Covered = 0, Total = 0;
  for (const auto &[Ref, St] : G.Stats) {
    if (St.Execs == 0)
      continue;
    double Ratio = static_cast<double>(St.Misses) / St.Execs;
    auto It = Preds.find(Ref);
    if (It != Preds.end() && It->second.Known)
      Ratio = It->second.MissRatio;
    double Miss = static_cast<double>(St.Execs) * Ratio;
    Total += Miss;
    if (Delta.count(Ref))
      Covered += Miss;
  }
  return Total == 0 ? 0 : Covered / Total;
}

/// Registry names, preserving table order.
inline std::vector<std::string>
workloadNames(const std::vector<workloads::Workload> &Ws) {
  std::vector<std::string> Names;
  Names.reserve(Ws.size());
  for (const workloads::Workload &W : Ws)
    Names.push_back(W.Name);
  return Names;
}

/// Computes one row per workload in parallel and returns them in \p Names
/// order. Each row is a two-stage task chain — Warm(Name) (typically the
/// simulation) runs first, F(Name) only after it — scheduled as a
/// dependency-aware set on the driver's pool.
template <typename Row, typename WarmFn, typename RowFn>
std::vector<Row> tableRows(pipeline::Driver &D,
                           const std::vector<std::string> &Names,
                           WarmFn Warm, RowFn F) {
  std::vector<Row> Rows(Names.size());
  exec::TaskSet Tasks(D.pool());
  for (size_t I = 0; I != Names.size(); ++I) {
    size_t WarmId = Tasks.add([&Warm, &Names, I] { Warm(Names[I]); });
    Tasks.add([&F, &Rows, &Names, I] { Rows[I] = F(Names[I]); }, {WarmId});
  }
  Tasks.run();
  return Rows;
}

} // namespace bench
} // namespace dlq

#endif // DLQ_BENCH_BENCHCOMMON_H
