//===- bench/Training.h - shared observation builder for Tables 3/4/5 ----------//
//
// Part of the delinq project. Builds the per-class dynamic observations the
// Section 7 trainer consumes: every load contributes its execution and miss
// counts to each class any of its address patterns belongs to.
//
//===----------------------------------------------------------------------===//

#ifndef DLQ_BENCH_TRAINING_H
#define DLQ_BENCH_TRAINING_H

#include "classify/Trainer.h"
#include "pipeline/Pipeline.h"

#include <functional>
#include <set>
#include <string>
#include <vector>

namespace dlq {
namespace bench {

/// Maps one address pattern to the class labels it belongs to.
using PatternLabeler =
    std::function<std::vector<std::string>(const ap::ApNode *)>;

/// Builds one benchmark's class observation under \p Labeler.
inline classify::BenchmarkObservation
observeBenchmark(pipeline::Driver &D, const std::string &Name,
                 const PatternLabeler &Labeler,
                 const sim::CacheConfig &Cache) {
  pipeline::GroundTruth G =
      D.groundTruth(Name, pipeline::InputSel::Input1, 0, Cache);
  const pipeline::Compiled &C =
      D.compiled(Name, pipeline::InputSel::Input1, 0);

  classify::BenchmarkObservation Obs;
  Obs.Name = Name;
  Obs.TotalMisses = G.TotalLoadMisses;
  for (const auto &[Ref, Pats] : C.Analysis->loadPatterns()) {
    std::set<std::string> Labels;
    for (const ap::ApNode *P : Pats)
      for (const std::string &L : Labeler(P))
        Labels.insert(L);
    auto It = G.Stats.find(Ref);
    if (It == G.Stats.end())
      continue;
    for (const std::string &L : Labels) {
      classify::ClassDynStats &S = Obs.PerClass[L];
      S.Execs += It->second.Execs;
      S.Misses += It->second.Misses;
    }
  }
  return Obs;
}

/// Trains over the eleven training benchmarks under \p Labeler. The
/// per-benchmark observations (simulation + pattern labeling) fan out
/// through the driver's pool; the trainer itself consumes them serially
/// in training-set order, so the result is worker-count independent.
inline classify::ClassTrainer
trainOverTrainingSet(pipeline::Driver &D, const PatternLabeler &Labeler,
                     const sim::CacheConfig &Cache) {
  std::vector<std::string> Names = workloads::trainingSetNames();
  std::vector<classify::BenchmarkObservation> Obs =
      D.pool().map<classify::BenchmarkObservation>(
          Names.size(), [&](size_t I) {
            return observeBenchmark(D, Names[I], Labeler, Cache);
          });
  classify::ClassTrainer Trainer;
  for (classify::BenchmarkObservation &O : Obs)
    Trainer.addObservation(std::move(O));
  return Trainer;
}

} // namespace bench
} // namespace dlq

#endif // DLQ_BENCH_TRAINING_H
