//===- bench/ablation_knobs.cpp - design-choice ablations ------------------------//
//
// Ablations for the design choices DESIGN.md calls out, beyond the paper's
// own ablations (Table 11 = AG8/AG9, Table 13 = delta):
//
//  1. address-pattern expansion caps (alternatives per use, patterns per
//     load): correctness guard rails — how much do they change the flagged
//     sets?
//  2. the H5 frequency thresholds (rare < 100, seldom < 1000);
//  3. the basic-block profiling coverage fraction (the paper fixes 90%).
//
// Run on three representative benchmarks (one pointer chaser, one array
// code, one hash table).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "metrics/Metrics.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

const char *Benchmarks[] = {"mcf_like", "equake_like", "compress_like"};

void ablateExpansionCaps(Driver &D, JsonReport &Json) {
  std::printf("--- ablation 1: pattern-expansion caps ---\n");
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  TextTable T({"benchmark", "alts/use", "patterns/load", "avg patterns",
               "pi", "rho"});
  for (const char *Name : Benchmarks) {
    GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Cache);
    const Compiled &C = D.compiled(Name, InputSel::Input1, 0);
    for (auto [Alts, Pats] : {std::pair<unsigned, unsigned>{1, 1},
                              {2, 4},
                              {4, 16},
                              {8, 64}}) {
      ap::ApBuilderOptions Opts;
      Opts.MaxAltsPerUse = Alts;
      Opts.MaxPatternsPerLoad = Pats;
      classify::ModuleAnalysis MA(*C.M, Opts);

      size_t TotalPatterns = 0;
      for (const auto &[Ref, P] : MA.loadPatterns())
        TotalPatterns += P.size();
      double AvgPatterns =
          static_cast<double>(TotalPatterns) / MA.loadPatterns().size();

      classify::ExecCountMap Execs;
      for (const auto &[Ref, S] : G.Stats)
        Execs[Ref] = S.Execs;
      classify::HeuristicOptions HOpts;
      auto Delta = MA.delinquentSet(HOpts, &Execs);
      auto E = metrics::evaluate(C.lambda(), Delta, G.Stats);
      T.addRow({Name, std::to_string(Alts), std::to_string(Pats),
                formatString("%.2f", AvgPatterns), formatPercent(E.pi()),
                pct(E.rho())});
      Json.addRow(formatString("%s/alts=%u,pats=%u", Name, Alts, Pats),
                  {{"avg_patterns", AvgPatterns},
                   {"pi", E.pi()},
                   {"rho", E.rho()}});
    }
    T.addRule();
  }
  emit(T);
  std::printf("takeaway: one pattern per load already carries most of the "
              "signal; the caps\nexist for pathological control flow, not "
              "for quality.\n\n");
}

void ablateFreqThresholds(Driver &D, JsonReport &Json) {
  std::printf("--- ablation 2: H5 frequency thresholds ---\n");
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  TextTable T({"benchmark", "rare< / seldom<", "pi", "rho"});
  for (const char *Name : Benchmarks) {
    for (auto [Rare, Seldom] :
         {std::pair<uint64_t, uint64_t>{10, 100},
          {100, 1000},
          {1000, 10000},
          {10000, 100000}}) {
      classify::HeuristicOptions Opts;
      Opts.RareBelow = Rare;
      Opts.SeldomBelow = Seldom;
      const HeuristicEval &E =
          D.evalHeuristic(Name, InputSel::Input1, 0, Cache, Opts);
      T.addRow({Name, formatString("%llu / %llu",
                                   (unsigned long long)Rare,
                                   (unsigned long long)Seldom),
                formatPercent(E.E.pi()), pct(E.E.rho())});
      Json.addRow(formatString("%s/rare=%llu,seldom=%llu", Name,
                               (unsigned long long)Rare,
                               (unsigned long long)Seldom),
                  {{"pi", E.E.pi()}, {"rho", E.E.rho()}});
    }
    T.addRule();
  }
  emit(T);
  std::printf("takeaway: pi falls as the thresholds rise; coverage survives "
              "until the\nthresholds reach hot-loop execution counts.\n\n");
}

void ablateProfilingCoverage(Driver &D, JsonReport &Json) {
  std::printf("--- ablation 3: profiling hotspot coverage fraction ---\n");
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  TextTable T({"benchmark", "cycle coverage", "Delta_P pi", "Delta_P rho"});
  for (const char *Name : Benchmarks) {
    GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Cache);
    const Compiled &C = D.compiled(Name, InputSel::Input1, 0);
    for (double Frac : {0.50, 0.75, 0.90, 0.99}) {
      auto DeltaP = D.hotspotLoads(Name, InputSel::Input1, 0, Cache, Frac);
      auto E = metrics::evaluate(C.lambda(), DeltaP, G.Stats);
      T.addRow({Name, formatPercent(Frac, 0), formatPercent(E.pi()),
                pct(E.rho())});
      Json.addRow(formatString("%s/cov=%.2f", Name, Frac),
                  {{"pi", E.pi()}, {"rho", E.rho()}});
    }
    T.addRule();
  }
  emit(T);
  std::printf("takeaway: the paper's 90%% sits on the knee — 50%% already "
              "misses real\ndelinquents, 99%% drags in cold blocks.\n");
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Ablations", "expansion caps, H5 thresholds, hotspot fraction");
  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  // Warm the three simulations in parallel; the ablations themselves are
  // cheap analysis passes and render serially.
  D.pool().map<int>(std::size(Benchmarks), [&](size_t I) {
    D.run(Benchmarks[I], InputSel::Input1, 0, Cache);
    return 0;
  });

  JsonReport Json("ablation_knobs");
  ablateExpansionCaps(D, Json);
  ablateFreqThresholds(D, Json);
  ablateProfilingCoverage(D, Json);
  finish(D, Cfg, &Json);
  return 0;
}
