//===- bench/camodel_sweep.cpp - widened analytical geometry sweep -------------//
//
// The payoff bench for the analytical cache model: a geometry sweep about
// ten times wider than the paper's Tables 8/9 — associativities 1..32 at
// the baseline size and sizes 1KiB..1MiB at the baseline associativity —
// priced at one simulation per workload. The simulation supplies per-PC
// ground truth at the baseline geometry (for the accuracy columns) and the
// wall-time yardstick; every sweep point is closed-form.
//
// The bench gates itself: it exits non-zero if the full analytic sweep
// costs 1% or more of the wall-time an equivalent simulated sweep would
// (measured single simulation x sweep points), or if the exec-weighted
// prediction error at the baseline geometry exceeds the model's documented
// tolerance on any workload.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sim/Machine.h"

#include <chrono>
#include <cmath>

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

/// Exec-weighted mean |predicted - simulated| miss ratio over the loads the
/// model predicts; Unknown loads are excluded (they are reported, not
/// scored).
struct Accuracy {
  size_t Loads = 0, Known = 0;
  double WeightedErr = 0;
};

Accuracy accuracyAt(const pipeline::GroundTruth &G,
                    const std::map<masm::InstrRef, camodel::Prediction> &P) {
  Accuracy A;
  double ErrSum = 0, WSum = 0;
  for (const auto &[Ref, Pred] : P) {
    ++A.Loads;
    if (!Pred.Known)
      continue;
    ++A.Known;
    auto It = G.Stats.find(Ref);
    if (It == G.Stats.end() || It->second.Execs == 0)
      continue;
    double Sim =
        static_cast<double>(It->second.Misses) / It->second.Execs;
    double W = static_cast<double>(It->second.Execs);
    ErrSum += W * std::abs(Pred.MissRatio - Sim);
    WSum += W;
  }
  A.WeightedErr = WSum == 0 ? 0 : ErrSum / WSum;
  return A;
}

struct Row {
  Accuracy Acc;
  double AnalyticMs = 0; ///< Model build + all sweep points.
  double SimMs = 0;      ///< One measured baseline simulation.
  size_t Points = 0;
  double MissMin = 1, MissMax = 0; ///< Predicted total miss ratio range.
};

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("camodel sweep",
         "assoc 1..32 and 1KiB..1MiB analytically, one simulation each");

  Driver D(Cfg.Exec);
  sim::CacheConfig Base = sim::CacheConfig::baseline();
  const uint32_t Assocs[] = {1, 2, 4, 8, 16, 32};
  const uint32_t SizesKb[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  std::vector<sim::CacheConfig> Sweep;
  for (uint32_t A : Assocs)
    Sweep.push_back(assocSweepCache(A));
  for (uint32_t Kb : SizesKb)
    Sweep.push_back(sizeSweepCache(Kb));

  std::vector<std::string> Names = workloadNames(workloads::allWorkloads());
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Base);
      },
      [&](const std::string &Name) {
        Row R;
        const Compiled &C = D.compiled(Name, InputSel::Input1, 0);
        GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Base);

        // The timed simulation runs outside the driver: driver runs are
        // memoized and disk-cached, so a warm bench would time a lookup.
        {
          sim::MachineOptions MOpts;
          MOpts.DCache = Base;
          auto T0 = std::chrono::steady_clock::now();
          sim::Machine Mach(*C.M, *C.L, MOpts);
          Mach.run();
          R.SimMs = msSince(T0);
        }

        auto T0 = std::chrono::steady_clock::now();
        camodel::CacheModel Model(*C.M, *C.L);
        Accuracy BaseAcc;
        for (const sim::CacheConfig &Geom : Sweep) {
          auto P = Model.predict(Geom);
          if (Geom.SizeBytes == Base.SizeBytes && Geom.Assoc == Base.Assoc)
            BaseAcc = accuracyAt(G, P);
          // Aggregate predicted miss ratio across the geometry, weighting
          // each load by its baseline exec count (static trip counts would
          // work too; exec counts keep this comparable to the simulator).
          double Miss = 0, Total = 0;
          for (const auto &[Ref, Pred] : P) {
            auto It = G.Stats.find(Ref);
            if (It == G.Stats.end() || It->second.Execs == 0 || !Pred.Known)
              continue;
            Miss += static_cast<double>(It->second.Execs) * Pred.MissRatio;
            Total += static_cast<double>(It->second.Execs);
          }
          double Ratio = Total == 0 ? 0 : Miss / Total;
          R.MissMin = std::min(R.MissMin, Ratio);
          R.MissMax = std::max(R.MissMax, Ratio);
        }
        R.AnalyticMs = msSince(T0);
        R.Points = Sweep.size();
        R.Acc = BaseAcc;
        return R;
      });

  TextTable T({"Benchmark", "loads", "known", "werr@8k4w", "pred miss range",
               "analytic", "1 sim", "sweep/sim-sweep"});
  JsonReport Json("camodel_sweep");
  double SumAnalytic = 0, SumSimSweep = 0, WorstErr = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    double SimSweepMs = R.SimMs * static_cast<double>(R.Points);
    double RatioPct = SimSweepMs == 0 ? 0 : R.AnalyticMs / SimSweepMs;
    T.addRow({benchLabel(W), formatString("%zu", R.Acc.Loads),
              formatString("%zu", R.Acc.Known),
              formatString("%.4f", R.Acc.WeightedErr),
              formatString("%.3f..%.3f", R.MissMin, R.MissMax),
              formatString("%.1f ms", R.AnalyticMs),
              formatString("%.0f ms", R.SimMs),
              formatPercent(RatioPct, 3)});
    Json.addRow(W.Name,
                {{"loads", static_cast<double>(R.Acc.Loads)},
                 {"known", static_cast<double>(R.Acc.Known)},
                 {"weighted_err", R.Acc.WeightedErr},
                 {"pred_miss_min", R.MissMin},
                 {"pred_miss_max", R.MissMax},
                 {"points", static_cast<double>(R.Points)},
                 {"analytic_ms", R.AnalyticMs},
                 {"sim_ms", R.SimMs}});
    SumAnalytic += R.AnalyticMs;
    SumSimSweep += SimSweepMs;
    WorstErr = std::max(WorstErr, R.Acc.WeightedErr);
  }
  emit(T);
  double Ratio = SumSimSweep == 0 ? 1 : SumAnalytic / SumSimSweep;
  std::printf("analytic sweep %.1f ms vs %.0f ms equivalent simulated sweep "
              "(%.4f%%); worst exec-weighted error %.4f\n\n",
              SumAnalytic, SumSimSweep, Ratio * 100, WorstErr);
  finish(D, Cfg, &Json);

  // Self-gate: the whole point is millisecond sweeps that stay honest.
  if (Ratio >= 0.01) {
    std::fprintf(stderr, "FAIL: analytic sweep cost %.2f%% of the simulated "
                         "equivalent (budget: <1%%)\n",
                 Ratio * 100);
    return 1;
  }
  if (WorstErr > 0.10) {
    std::fprintf(stderr, "FAIL: exec-weighted prediction error %.4f above "
                         "0.10 on at least one workload\n",
                 WorstErr);
    return 1;
  }
  return 0;
}
