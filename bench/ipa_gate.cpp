//===- bench/ipa_gate.cpp - interprocedural-analysis acceptance gate -----------//
//
// Measures what turning the interprocedural summaries on (--ipa) does to the
// full workload registry, and enforces the PR's acceptance criteria:
//
//  - rho may not regress on any workload, and pi may grow only by flagging
//    loads the intraprocedural analysis could not classify at all (phi = 0
//    without IPA) -- new coverage, never lost precision;
//  - on the pointer-chase workloads (li_like, gcc_like, parser_like) at
//    least one argument-rooted load must resolve to a concrete pattern, the
//    camodel's exec-weighted Unknown share must not grow, and at least one
//    of the three must show a strict Unknown-share drop;
//  - the analysis wall-time overhead of IPA must stay under 2x, measured by
//    repeated direct construction of the analyses (no result caches).
//
// The registry is evaluated at -O1, where arguments stay in $a0..$a3 and
// argument substitution is observable (-O0 spills them to frame slots). The
// pointer-chase trio is additionally evaluated at -O0, where entry facts
// make frame-resident address computations concrete for the camodel.
//
// `--write-baseline <path>` records the IPA-off numbers; `--check <path>`
// additionally fails if the current IPA-off numbers drift from that
// committed artifact (the CI pointer-chase coverage gate).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ap/Pattern.h"
#include "classify/Delinquency.h"
#include "ipa/Summaries.h"
#include "metrics/Metrics.h"

#include <chrono>
#include <cmath>
#include <sstream>

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

constexpr double Tolerance = 0.005;
constexpr unsigned OptLevel = 1;
const char *const PointerChase[] = {"li_like", "gcc_like", "parser_like"};

struct Row {
  double PiOff = 0, RhoOff = 0, PiOn = 0, RhoOn = 0;
  double UnkOff = 0, UnkOn = 0;
  unsigned ArgResolved = 0; ///< Param-rooted loads that became concrete.
  /// Loads entering Delta that the IPA-off heuristic had already scored
  /// above zero: growth not explained by new classification coverage.
  unsigned UnexplainedFlags = 0;
};

/// The trio's extra -O0 evaluation (camodel entry-fact criterion).
struct O0Row {
  std::string Name;
  double PiOff = 0, RhoOff = 0, UnkOff = 0, UnkOn = 0;
};

bool isPointerChase(const std::string &Name) {
  for (const char *P : PointerChase)
    if (Name == P)
      return true;
  return false;
}

/// Exec-weighted share of loads the analytical model cannot capture.
double unknownShare(const Compiled &C, const GroundTruth &G,
                    const sim::CacheConfig &Cache) {
  camodel::CacheModel Model(*C.M, *C.L, C.Ipa.get());
  std::map<masm::InstrRef, camodel::Prediction> Preds = Model.predict(Cache);
  double Unknown = 0, Total = 0;
  for (const auto &[Ref, St] : G.Stats) {
    if (St.Execs == 0)
      continue;
    Total += static_cast<double>(St.Execs);
    auto It = Preds.find(Ref);
    if (It == Preds.end() || !It->second.Known)
      Unknown += static_cast<double>(St.Execs);
  }
  return Total == 0 ? 0 : Unknown / Total;
}

bool anyParamLeaf(const std::vector<const ap::ApNode *> &Pats) {
  for (const ap::ApNode *P : Pats)
    if (ap::countBaseRegs(P).Param != 0)
      return true;
  return false;
}

/// Loads whose IPA-off pattern hangs off an argument register but whose
/// IPA-on patterns are all concrete (no reg_param leaf left).
unsigned argRootedResolved(const Compiled &Off, const Compiled &On) {
  unsigned N = 0;
  for (const auto &[Ref, Pats] : Off.Analysis->loadPatterns()) {
    if (!anyParamLeaf(Pats))
      continue;
    auto It = On.Analysis->loadPatterns().find(Ref);
    if (It != On.Analysis->loadPatterns().end() && !anyParamLeaf(It->second))
      ++N;
  }
  return N;
}

/// Delta growth the IPA cannot take credit for: loads it newly flags even
/// though the intraprocedural heuristic already classified them (phi > 0).
unsigned unexplainedFlags(const HeuristicEval &Off, const HeuristicEval &On) {
  unsigned N = 0;
  for (const masm::InstrRef &Ref : On.Delta) {
    if (Off.Delta.count(Ref))
      continue;
    auto It = Off.Scores.find(Ref);
    if (It != Off.Scores.end() && It->second > 0)
      ++N;
  }
  return N;
}

/// Minimal parser for the baseline artifact this tool itself writes: one
/// `{"name": "...", "pi_off": x, "rho_off": y, "unk_off": z}` object per
/// workload (names suffixed "@O0" for the trio's -O0 rows). Returns false
/// (with a message) on malformed input.
bool readBaseline(const std::string &Path,
                  std::map<std::string, std::array<double, 3>> &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot read baseline '%s'\n", Path.c_str());
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string S = Buf.str();
  size_t Pos = 0;
  while ((Pos = S.find("\"name\": \"", Pos)) != std::string::npos) {
    Pos += 9;
    size_t End = S.find('"', Pos);
    if (End == std::string::npos)
      return false;
    std::string Name = S.substr(Pos, End - Pos);
    std::array<double, 3> V{};
    const char *Keys[3] = {"\"pi_off\": ", "\"rho_off\": ", "\"unk_off\": "};
    for (int K = 0; K != 3; ++K) {
      size_t P = S.find(Keys[K], End);
      if (P == std::string::npos)
        return false;
      V[K] = std::strtod(S.c_str() + P + std::strlen(Keys[K]), nullptr);
    }
    Out[Name] = V;
    Pos = End;
  }
  return !Out.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  // Peel this tool's own flags off before the shared parse sees them.
  std::string WriteBaseline, CheckBaseline;
  std::vector<char *> Args;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if ((A == "--write-baseline" || A == "--check") && I + 1 < Argc) {
      (A == "--check" ? CheckBaseline : WriteBaseline) = Argv[++I];
      continue;
    }
    Args.push_back(Argv[I]);
  }
  BenchConfig Cfg = parseArgs(static_cast<int>(Args.size()), Args.data());
  if (!Cfg.Ok)
    return 2;
  banner("IPA gate", "pi/rho, camodel Unknown share and analysis wall time, "
                     "IPA off vs on");

  exec::ExecOptions OffOpts = Cfg.Exec;
  OffOpts.Ipa = false;
  exec::ExecOptions OnOpts = Cfg.Exec;
  OnOpts.Ipa = true;
  Driver DOff(OffOpts);
  Driver DOn(OnOpts);

  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions HOpts;
  std::vector<std::string> Names = workloadNames(workloads::allWorkloads());

  // Warm the simulations (shared between the two drivers through the
  // persistent store).
  {
    exec::TaskSet Warm(DOff.pool());
    for (const std::string &Name : Names)
      Warm.add([&DOff, &Name, &Cache] {
        DOff.run(Name, InputSel::Input1, OptLevel, Cache);
      });
    for (const char *Name : PointerChase)
      Warm.add([&DOff, Name, &Cache] {
        DOff.run(Name, InputSel::Input1, 0, Cache);
      });
    Warm.run();
  }

  std::vector<Row> Rows(Names.size());
  for (size_t I = 0; I != Names.size(); ++I) {
    GroundTruth G = DOff.groundTruth(Names[I], InputSel::Input1, OptLevel, Cache);
    const HeuristicEval &EOff =
        DOff.evalHeuristic(Names[I], InputSel::Input1, OptLevel, Cache, HOpts);
    const HeuristicEval &EOn =
        DOn.evalHeuristic(Names[I], InputSel::Input1, OptLevel, Cache, HOpts);
    const Compiled &COff = DOff.compiled(Names[I], InputSel::Input1, OptLevel);
    const Compiled &COn = DOn.compiled(Names[I], InputSel::Input1, OptLevel);
    Row &R = Rows[I];
    R.PiOff = EOff.E.pi();
    R.RhoOff = EOff.E.rho();
    R.PiOn = EOn.E.pi();
    R.RhoOn = EOn.E.rho();
    R.UnkOff = unknownShare(COff, G, Cache);
    R.UnkOn = unknownShare(COn, G, Cache);
    R.ArgResolved = argRootedResolved(COff, COn);
    R.UnexplainedFlags = unexplainedFlags(EOff, EOn);
  }

  std::vector<O0Row> O0Rows;
  for (const char *Name : PointerChase) {
    GroundTruth G = DOff.groundTruth(Name, InputSel::Input1, 0, Cache);
    const HeuristicEval &EOff =
        DOff.evalHeuristic(Name, InputSel::Input1, 0, Cache, HOpts);
    O0Row R;
    R.Name = Name;
    R.PiOff = EOff.E.pi();
    R.RhoOff = EOff.E.rho();
    R.UnkOff = unknownShare(DOff.compiled(Name, InputSel::Input1, 0), G, Cache);
    R.UnkOn = unknownShare(DOn.compiled(Name, InputSel::Input1, 0), G, Cache);
    O0Rows.push_back(R);
  }

  // Analysis wall time, measured by direct construction (the drivers'
  // result caches would otherwise hide the work). Both sides run the full
  // static stack a pipeline pays per module — pattern analysis plus the
  // analytical cache model — since camodel re-runs the abstract
  // interpreter itself when no summaries are available to share fixpoints
  // with. Best of three passes over the registry.
  using Clock = std::chrono::steady_clock;
  double OffSeconds = 0, OnSeconds = 0;
  for (int Rep = 0; Rep != 3; ++Rep) {
    double Off = 0, On = 0;
    for (const std::string &Name : Names) {
      const Compiled &C = DOff.compiled(Name, InputSel::Input1, OptLevel);
      Clock::time_point T0 = Clock::now();
      {
        classify::ModuleAnalysis A(*C.M);
        camodel::CacheModel CM(*C.M, *C.L, nullptr);
        CM.predict(Cache);
      }
      Off += std::chrono::duration<double>(Clock::now() - T0).count();
      ipa::IpaOptions IO;
      IO.Enable = true;
      IO.ContextK = OnOpts.IpaK;
      T0 = Clock::now();
      {
        ipa::ModuleSummaries S(*C.M, *C.L, IO);
        classify::ModuleAnalysis A(*C.M, ap::ApBuilderOptions(), IO);
        camodel::CacheModel CM(*C.M, *C.L, &S);
        CM.predict(Cache);
      }
      On += std::chrono::duration<double>(Clock::now() - T0).count();
    }
    OffSeconds = Rep == 0 ? Off : std::min(OffSeconds, Off);
    OnSeconds = Rep == 0 ? On : std::min(OnSeconds, On);
  }

  TextTable T({"Benchmark", "pi off", "pi on", "rho off", "rho on",
               "unk off", "unk on", "arg-resolved"});
  JsonReport Json("ipa_gate");
  unsigned Failures = 0;
  auto fail = [&Failures](const std::string &Msg) {
    std::fprintf(stderr, "GATE FAIL: %s\n", Msg.c_str());
    ++Failures;
  };

  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), formatPercent(R.PiOff), formatPercent(R.PiOn),
              pct(R.RhoOff), pct(R.RhoOn), pct(R.UnkOff), pct(R.UnkOn),
              formatString("%u", R.ArgResolved)});
    Json.addRow(W.Name, {{"pi_off", R.PiOff},
                         {"rho_off", R.RhoOff},
                         {"unk_off", R.UnkOff},
                         {"pi_on", R.PiOn},
                         {"rho_on", R.RhoOn},
                         {"unk_on", R.UnkOn},
                         {"arg_resolved", double(R.ArgResolved)},
                         {"unexplained_flags", double(R.UnexplainedFlags)}});

    if (R.RhoOn < R.RhoOff - Tolerance)
      fail(formatString("%s: rho regressed %.4f -> %.4f", Names[I].c_str(),
                        R.RhoOff, R.RhoOn));
    if (R.UnexplainedFlags != 0)
      fail(formatString(
          "%s: %u flagged load(s) the intraprocedural heuristic had already "
          "classified (pi %.4f -> %.4f is not new coverage)",
          Names[I].c_str(), R.UnexplainedFlags, R.PiOff, R.PiOn));
    if (isPointerChase(Names[I])) {
      if (R.ArgResolved == 0)
        fail(formatString("%s: no argument-rooted load resolved",
                          Names[I].c_str()));
      if (R.UnkOn > R.UnkOff + Tolerance)
        fail(formatString("%s: camodel Unknown share grew %.4f -> %.4f",
                          Names[I].c_str(), R.UnkOff, R.UnkOn));
    }
  }
  emit(T);

  bool AnyUnknownDrop = false;
  std::printf("pointer-chase trio at -O0 (camodel entry-fact criterion):\n");
  for (const O0Row &R : O0Rows) {
    std::printf("  %-12s unk off %5.1f%%  on %5.1f%%\n", R.Name.c_str(),
                100 * R.UnkOff, 100 * R.UnkOn);
    if (R.UnkOn > R.UnkOff + Tolerance)
      fail(formatString("%s: -O0 camodel Unknown share grew %.4f -> %.4f",
                        R.Name.c_str(), R.UnkOff, R.UnkOn));
    AnyUnknownDrop |= R.UnkOn < R.UnkOff - Tolerance;
  }
  for (const Row &R : Rows)
    AnyUnknownDrop |= R.UnkOn < R.UnkOff - Tolerance;
  if (!AnyUnknownDrop)
    fail("no workload's camodel Unknown share dropped at either opt level");

  double Ratio = OffSeconds > 0 ? OnSeconds / OffSeconds : 1.0;
  std::printf("analysis wall time: off %.3fs, on %.3fs (ratio %.2fx)\n\n",
              OffSeconds, OnSeconds, Ratio);
  if (Ratio >= 2.0)
    fail(formatString("wall-time overhead %.2fx >= 2x", Ratio));

  if (!CheckBaseline.empty()) {
    std::map<std::string, std::array<double, 3>> Base;
    if (!readBaseline(CheckBaseline, Base))
      return 2;
    auto check = [&](const std::string &Key, double Pi, double Rho,
                     double Unk) {
      auto It = Base.find(Key);
      if (It == Base.end()) {
        fail(formatString("%s: missing from baseline", Key.c_str()));
        return;
      }
      double Cur[3] = {Pi, Rho, Unk};
      const char *What[3] = {"pi_off", "rho_off", "unk_off"};
      for (int K = 0; K != 3; ++K)
        if (std::fabs(Cur[K] - It->second[K]) > Tolerance)
          fail(formatString("%s: %s drifted from baseline %.4f -> %.4f",
                            Key.c_str(), What[K], It->second[K], Cur[K]));
    };
    for (size_t I = 0; I != Names.size(); ++I)
      check(Names[I], Rows[I].PiOff, Rows[I].RhoOff, Rows[I].UnkOff);
    for (const O0Row &R : O0Rows)
      check(R.Name + "@O0", R.PiOff, R.RhoOff, R.UnkOff);
  }

  if (!WriteBaseline.empty()) {
    std::ofstream Out(WriteBaseline, std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   WriteBaseline.c_str());
      return 2;
    }
    Out << "{\"workloads\": [\n";
    for (size_t I = 0; I != Names.size(); ++I)
      Out << formatString(
          "  {\"name\": \"%s\", \"pi_off\": %.6f, \"rho_off\": %.6f, "
          "\"unk_off\": %.6f},\n",
          Names[I].c_str(), Rows[I].PiOff, Rows[I].RhoOff, Rows[I].UnkOff);
    for (size_t I = 0; I != O0Rows.size(); ++I)
      Out << formatString(
          "  {\"name\": \"%s@O0\", \"pi_off\": %.6f, \"rho_off\": %.6f, "
          "\"unk_off\": %.6f}%s\n",
          O0Rows[I].Name.c_str(), O0Rows[I].PiOff, O0Rows[I].RhoOff,
          O0Rows[I].UnkOff, I + 1 == O0Rows.size() ? "" : ",");
    Out << "]}\n";
  }

  finish(DOff, Cfg, &Json);
  if (Failures) {
    std::fprintf(stderr, "ipa_gate: %u gate failure(s)\n", Failures);
    return 1;
  }
  std::fprintf(stderr, "ipa_gate: all gates passed\n");
  return 0;
}
