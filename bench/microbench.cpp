//===- bench/microbench.cpp - google-benchmark microbenchmarks ------------------//
//
// Performance microbenchmarks of the library's hot paths: the cache model,
// the functional simulator, MinC compilation, address-pattern construction
// and whole-module analysis. These guard the throughput that makes the
// table reproductions (hundreds of millions of simulated instructions)
// tractable.
//
//===----------------------------------------------------------------------===//

#include "classify/Delinquency.h"
#include "masm/Parser.h"
#include "masm/Printer.h"
#include "mcc/Compiler.h"
#include "sim/Cache.h"
#include "sim/Machine.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace dlq;

static void BM_CacheAccess(benchmark::State &State) {
  sim::Cache Cache(sim::CacheConfig::baseline());
  Rng R(1);
  std::vector<uint32_t> Addrs;
  for (int I = 0; I != 4096; ++I)
    Addrs.push_back(static_cast<uint32_t>(R.nextBelow(1 << 20)));
  size_t Idx = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.access(Addrs[Idx]));
    Idx = (Idx + 1) & 4095;
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_CacheAccess);

static std::string tinyLoopSource() {
  return "int a[4096];"
         "int main() {"
         "  int i; int s; s = 0;"
         "  for (i = 0; i < 100000; i = i + 1)"
         "    s = s + a[i & 4095];"
         "  return s & 255; }";
}

static void BM_Compile(benchmark::State &State) {
  const workloads::Workload *W = workloads::findWorkload("mcf_like");
  std::string Source = workloads::instantiate(*W, W->Input1);
  for (auto _ : State) {
    mcc::CompileResult R = mcc::compile(Source);
    benchmark::DoNotOptimize(R.M.get());
  }
}
BENCHMARK(BM_Compile);

static void BM_SimulatorThroughput(benchmark::State &State) {
  mcc::CompileResult CR = mcc::compile(tinyLoopSource());
  masm::Layout L(*CR.M);
  uint64_t Instrs = 0;
  for (auto _ : State) {
    sim::Machine M(*CR.M, L, sim::MachineOptions());
    sim::RunResult R = M.run();
    Instrs += R.InstrsExecuted;
    benchmark::DoNotOptimize(R.ExitCode);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
  State.SetLabel("items = simulated instructions");
}
BENCHMARK(BM_SimulatorThroughput);

static void BM_AssemblyParse(benchmark::State &State) {
  mcc::CompileResult CR = mcc::compile(tinyLoopSource());
  // Round-trip through the printer to obtain parser input.
  std::string Text = masm::printModule(*CR.M);
  for (auto _ : State) {
    masm::ParseResult R = masm::parseAssembly(Text);
    benchmark::DoNotOptimize(R.M.get());
  }
  State.SetBytesProcessed(
      static_cast<int64_t>(State.iterations() * Text.size()));
}
BENCHMARK(BM_AssemblyParse);

static void BM_ModuleAnalysis(benchmark::State &State) {
  const workloads::Workload *W = workloads::findWorkload("mcf_like");
  std::string Source = workloads::instantiate(*W, W->Input1);
  mcc::CompileResult CR = mcc::compile(Source);
  for (auto _ : State) {
    classify::ModuleAnalysis MA(*CR.M);
    benchmark::DoNotOptimize(MA.loadPatterns().size());
  }
}
BENCHMARK(BM_ModuleAnalysis);

static void BM_HeuristicScoring(benchmark::State &State) {
  const workloads::Workload *W = workloads::findWorkload("mcf_like");
  std::string Source = workloads::instantiate(*W, W->Input1);
  mcc::CompileResult CR = mcc::compile(Source);
  classify::ModuleAnalysis MA(*CR.M);
  classify::HeuristicOptions Opts;
  Opts.UseFreqClasses = false;
  for (auto _ : State) {
    auto Scores = MA.scores(Opts, nullptr);
    benchmark::DoNotOptimize(Scores.size());
  }
}
BENCHMARK(BM_HeuristicScoring);

BENCHMARK_MAIN();
