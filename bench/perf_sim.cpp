//===- bench/perf_sim.cpp - interpreter throughput harness ---------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
// Measures raw interpreter throughput (guest instructions and data accesses
// retired per second of host time) for every workload in the registry at
// -O0 and -O1. This is the perf-regression companion to
// tests/SimGoldenTest.cpp: the golden test pins *what* the simulator
// computes, this harness tracks *how fast*, so an accidental slowdown of the
// predecoded core shows up as a number, not a feeling.
//
// Output contract:
//  - stdout carries only deterministic simulation results (workload,
//    category, halt, exit code, instruction/access counts). It is
//    byte-identical across hosts, build types and repetition counts, so CI
//    can diff a Debug run against a Release run to catch build-type-
//    dependent behaviour.
//  - All timing goes to stderr, and to the --json report.
//
// Usage: perf_sim [--json <path>] [--reps <n>] [--max-instrs <n>]
//
//===----------------------------------------------------------------------===//

#include "masm/Module.h"
#include "mcc/Compiler.h"
#include "sim/Machine.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace dlq;

namespace {

struct Row {
  std::string Workload;
  std::string Category;
  unsigned OptLevel = 0;
  uint64_t Instrs = 0;
  uint64_t DataAccesses = 0;
  double Seconds = 0; ///< Best (minimum) over the repetitions.
};

double runOnce(sim::Machine &Mach, sim::RunResult &R) {
  auto T0 = std::chrono::steady_clock::now();
  R = Mach.run();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

void writeJson(const char *Path, const std::vector<Row> &Rows) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "perf_sim: cannot write %s\n", Path);
    std::exit(1);
  }
  std::fprintf(F, "{\n  \"bench\": \"perf_sim\",\n  \"rows\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    double InstrRate = R.Seconds > 0 ? R.Instrs / R.Seconds : 0;
    double AccessRate = R.Seconds > 0 ? R.DataAccesses / R.Seconds : 0;
    std::fprintf(F,
                 "    {\"workload\": \"%s\", \"category\": \"%s\", "
                 "\"opt_level\": %u, \"instrs\": %llu, "
                 "\"data_accesses\": %llu, \"seconds\": %.6f, "
                 "\"instrs_per_sec\": %.0f, \"accesses_per_sec\": %.0f}%s\n",
                 R.Workload.c_str(), R.Category.c_str(), R.OptLevel,
                 static_cast<unsigned long long>(R.Instrs),
                 static_cast<unsigned long long>(R.DataAccesses), R.Seconds,
                 InstrRate, AccessRate, I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = nullptr;
  unsigned Reps = 3;
  uint64_t MaxInstrs = 20000000ull;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json") && I + 1 < argc) {
      JsonPath = argv[++I];
    } else if (!std::strcmp(argv[I], "--reps") && I + 1 < argc) {
      Reps = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else if (!std::strcmp(argv[I], "--max-instrs") && I + 1 < argc) {
      MaxInstrs = std::strtoull(argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: perf_sim [--json <path>] [--reps <n>] "
                   "[--max-instrs <n>]\n");
      return 2;
    }
  }
  if (Reps == 0)
    Reps = 1;

  std::vector<Row> Rows;
  std::printf("workload opt category halt exit instrs accesses\n");
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    for (unsigned Opt : {0u, 1u}) {
      std::string Src = workloads::instantiate(W, W.Input1);
      mcc::CompileOptions MO;
      MO.OptLevel = Opt;
      mcc::CompileResult CR = mcc::compile(Src, MO);
      if (!CR.ok()) {
        std::fprintf(stderr, "perf_sim: %s -O%u failed to compile\n",
                     W.Name.c_str(), Opt);
        return 1;
      }
      masm::Layout L(*CR.M);
      sim::MachineOptions SO;
      SO.MaxInstrs = MaxInstrs;

      Row R;
      R.Workload = W.Name;
      R.Category = W.Category;
      R.OptLevel = Opt;
      R.Seconds = 1e99;
      sim::RunResult Result;
      for (unsigned Rep = 0; Rep != Reps; ++Rep) {
        // A fresh Machine per repetition: every rep starts from a cold
        // simulated cache and memory, so the reps are identical work and
        // the minimum is a valid noise filter.
        sim::Machine Mach(*CR.M, L, SO);
        double Sec = runOnce(Mach, Result);
        if (Sec < R.Seconds)
          R.Seconds = Sec;
      }
      R.Instrs = Result.InstrsExecuted;
      R.DataAccesses = Result.DataAccesses;
      Rows.push_back(R);

      std::printf("%s %u %s %d %d %llu %llu\n", W.Name.c_str(), Opt,
                  W.Category.c_str(), static_cast<int>(Result.Halt),
                  Result.ExitCode,
                  static_cast<unsigned long long>(Result.InstrsExecuted),
                  static_cast<unsigned long long>(Result.DataAccesses));
      std::fprintf(stderr, "%-16s -O%u  %7.1f Minstr/s  %6.1f Macc/s  %.3fs\n",
                   W.Name.c_str(), Opt, R.Instrs / R.Seconds / 1e6,
                   R.DataAccesses / R.Seconds / 1e6, R.Seconds);
    }
  }

  if (JsonPath)
    writeJson(JsonPath, Rows);
  return 0;
}
