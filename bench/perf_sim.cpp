//===- bench/perf_sim.cpp - execution-engine throughput harness ---------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
// Measures raw guest-execution throughput (instructions and data accesses
// retired per second of host time) for every workload in the registry at
// -O0 and -O1, for the interpreter and the JIT side by side. This is the
// perf-regression companion to tests/SimGoldenTest.cpp: the golden test pins
// *what* the simulator computes, this harness tracks *how fast*, so an
// accidental slowdown of the predecoded core or the compiled-code path shows
// up as a number, not a feeling.
//
// Output contract:
//  - stdout carries only deterministic simulation results (workload,
//    category, halt, exit code, instruction/access counts), printed once per
//    row whatever engines ran. It is byte-identical across hosts, build
//    types, engines and repetition counts, so CI can diff a Debug run
//    against a Release run — or a --engine=jit run against --engine=interp.
//  - When both engines run, the harness itself asserts the full result
//    identity (counters and per-PC profiles) and fails loudly on any
//    difference.
//  - All timing goes to stderr, and to the --json report. The report keeps
//    the legacy seconds/instrs_per_sec/accesses_per_sec fields (fed from the
//    primary engine: JIT when measured, interpreter otherwise) and adds
//    interp_seconds / jit_seconds / speedup per row.
//
// Usage: perf_sim [--json <path>] [--reps <n> | --repeat <n>]
//                 [--max-instrs <n>] [--engine=interp|jit|both]
//
//===----------------------------------------------------------------------===//

#include "jit/CodeBuffer.h"
#include "masm/Module.h"
#include "mcc/Compiler.h"
#include "sim/Machine.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace dlq;

namespace {

struct Row {
  std::string Workload;
  std::string Category;
  unsigned OptLevel = 0;
  uint64_t Instrs = 0;
  uint64_t DataAccesses = 0;
  double InterpSeconds = 0; ///< Best (minimum) over the repetitions; 0 = not run.
  double JitSeconds = 0;    ///< Likewise.

  double primarySeconds() const {
    return JitSeconds > 0 ? JitSeconds : InterpSeconds;
  }
  double speedup() const {
    return InterpSeconds > 0 && JitSeconds > 0 ? InterpSeconds / JitSeconds
                                               : 0;
  }
};

/// Minimum-of-N wall time for one engine; \p Result holds the last run.
/// A fresh Machine per repetition: every rep starts from a cold simulated
/// cache and memory, so the reps are identical work and the minimum is a
/// valid noise filter.
double timeEngine(const masm::Module &M, const masm::Layout &L,
                  const sim::MachineOptions &Base, sim::EngineKind Engine,
                  unsigned Reps, sim::RunResult &Result) {
  sim::MachineOptions SO = Base;
  SO.Engine = Engine;
  double Best = 1e99;
  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    sim::Machine Mach(M, L, SO);
    auto T0 = std::chrono::steady_clock::now();
    Result = Mach.run();
    auto T1 = std::chrono::steady_clock::now();
    double Sec = std::chrono::duration<double>(T1 - T0).count();
    if (Sec < Best)
      Best = Sec;
  }
  return Best;
}

/// Full result-identity check between the two engines; exits on mismatch.
void requireIdentical(const char *Workload, unsigned Opt,
                      const sim::RunResult &A, const sim::RunResult &B) {
  auto Fail = [&](const char *What) {
    std::fprintf(stderr,
                 "perf_sim: %s -O%u: interp and jit disagree on %s\n",
                 Workload, Opt, What);
    std::exit(1);
  };
  if (A.Halt != B.Halt)
    Fail("halt reason");
  if (A.TrapMessage != B.TrapMessage)
    Fail("trap message");
  if (A.ExitCode != B.ExitCode)
    Fail("exit code");
  if (A.Output != B.Output)
    Fail("output");
  if (A.InstrsExecuted != B.InstrsExecuted)
    Fail("instruction count");
  if (A.DataAccesses != B.DataAccesses)
    Fail("data accesses");
  if (A.LoadMisses != B.LoadMisses)
    Fail("load misses");
  if (A.StoreMisses != B.StoreMisses)
    Fail("store misses");
  if (A.PrefetchesIssued != B.PrefetchesIssued ||
      A.PrefetchFills != B.PrefetchFills)
    Fail("prefetch counters");
  if (A.ExecCounts != B.ExecCounts)
    Fail("per-PC ExecCounts");
  if (A.MissCounts != B.MissCounts)
    Fail("per-PC MissCounts");
}

void writeJson(const char *Path, const std::vector<Row> &Rows) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "perf_sim: cannot write %s\n", Path);
    std::exit(1);
  }
  std::fprintf(F, "{\n  \"bench\": \"perf_sim\",\n  \"rows\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    double Seconds = R.primarySeconds();
    double InstrRate = Seconds > 0 ? R.Instrs / Seconds : 0;
    double AccessRate = Seconds > 0 ? R.DataAccesses / Seconds : 0;
    std::fprintf(F,
                 "    {\"workload\": \"%s\", \"category\": \"%s\", "
                 "\"opt_level\": %u, \"instrs\": %llu, "
                 "\"data_accesses\": %llu, \"seconds\": %.6f, "
                 "\"instrs_per_sec\": %.0f, \"accesses_per_sec\": %.0f, "
                 "\"interp_seconds\": %.6f, \"jit_seconds\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 R.Workload.c_str(), R.Category.c_str(), R.OptLevel,
                 static_cast<unsigned long long>(R.Instrs),
                 static_cast<unsigned long long>(R.DataAccesses), Seconds,
                 InstrRate, AccessRate, R.InterpSeconds, R.JitSeconds,
                 R.speedup(), I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = nullptr;
  unsigned Reps = 3;
  uint64_t MaxInstrs = 20000000ull;
  std::string Engine = "both";
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json") && I + 1 < argc) {
      JsonPath = argv[++I];
    } else if ((!std::strcmp(argv[I], "--reps") ||
                !std::strcmp(argv[I], "--repeat")) &&
               I + 1 < argc) {
      Reps = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else if (!std::strcmp(argv[I], "--max-instrs") && I + 1 < argc) {
      MaxInstrs = std::strtoull(argv[++I], nullptr, 10);
    } else if (!std::strncmp(argv[I], "--engine=", 9)) {
      Engine = argv[I] + 9;
    } else if (!std::strcmp(argv[I], "--engine") && I + 1 < argc) {
      Engine = argv[++I];
    } else {
      std::fprintf(stderr,
                   "usage: perf_sim [--json <path>] [--reps <n> | --repeat "
                   "<n>] [--max-instrs <n>] [--engine=interp|jit|both]\n");
      return 2;
    }
  }
  if (Reps == 0)
    Reps = 1;
  if (Engine != "interp" && Engine != "jit" && Engine != "both") {
    std::fprintf(stderr, "perf_sim: unknown engine '%s'\n", Engine.c_str());
    return 2;
  }
  bool WantInterp = Engine != "jit";
  bool WantJit = Engine != "interp";
  if (WantJit && !jit::available()) {
    std::fprintf(stderr,
                 "perf_sim: no executable memory on this host; measuring the "
                 "interpreter only\n");
    WantJit = false;
    WantInterp = true;
  }

  std::vector<Row> Rows;
  std::printf("workload opt category halt exit instrs accesses\n");
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    for (unsigned Opt : {0u, 1u}) {
      std::string Src = workloads::instantiate(W, W.Input1);
      mcc::CompileOptions MO;
      MO.OptLevel = Opt;
      mcc::CompileResult CR = mcc::compile(Src, MO);
      if (!CR.ok()) {
        std::fprintf(stderr, "perf_sim: %s -O%u failed to compile\n",
                     W.Name.c_str(), Opt);
        return 1;
      }
      masm::Layout L(*CR.M);
      sim::MachineOptions SO;
      SO.MaxInstrs = MaxInstrs;

      Row R;
      R.Workload = W.Name;
      R.Category = W.Category;
      R.OptLevel = Opt;
      sim::RunResult Result, JitResult;
      if (WantInterp)
        R.InterpSeconds =
            timeEngine(*CR.M, L, SO, sim::EngineKind::Interp, Reps, Result);
      if (WantJit)
        R.JitSeconds =
            timeEngine(*CR.M, L, SO, sim::EngineKind::Jit, Reps, JitResult);
      if (WantInterp && WantJit)
        requireIdentical(W.Name.c_str(), Opt, Result, JitResult);
      if (!WantInterp)
        Result = JitResult;
      R.Instrs = Result.InstrsExecuted;
      R.DataAccesses = Result.DataAccesses;
      Rows.push_back(R);

      std::printf("%s %u %s %d %d %llu %llu\n", W.Name.c_str(), Opt,
                  W.Category.c_str(), static_cast<int>(Result.Halt),
                  Result.ExitCode,
                  static_cast<unsigned long long>(Result.InstrsExecuted),
                  static_cast<unsigned long long>(Result.DataAccesses));
      double Prim = R.primarySeconds();
      std::fprintf(stderr,
                   "%-16s -O%u  %7.1f Minstr/s  %6.1f Macc/s  %.3fs",
                   W.Name.c_str(), Opt, R.Instrs / Prim / 1e6,
                   R.DataAccesses / Prim / 1e6, Prim);
      if (R.speedup() > 0)
        std::fprintf(stderr, "  (interp %.3fs, jit %.3fs, %.2fx)",
                     R.InterpSeconds, R.JitSeconds, R.speedup());
      std::fprintf(stderr, "\n");
    }
  }

  if (JsonPath)
    writeJson(JsonPath, Rows);
  return 0;
}
