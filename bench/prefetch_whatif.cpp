//===- bench/prefetch_whatif.cpp - the motivating application --------------------//
//
// The paper's introduction argues that identifying delinquent loads matters
// because prefetching "every load instruction ... will be too costly": the
// win comes from triggering prefetches only where they pay. This bench
// closes that loop with the simulator's next-line software prefetcher,
// comparing four targeting policies on every benchmark:
//
//   none      no prefetching (baseline misses)
//   Delta_H   prefetch at the heuristic's possibly-delinquent loads
//   random    prefetch at |Delta_H| random loads (same instruction budget)
//   all       prefetch at every load (the paper's "too costly" strawman)
//
// "overhead" is prefetches issued per 1000 instructions — the cost a real
// system pays in issue slots and bandwidth.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Rng.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  uint64_t BaseMisses = 0;
  double ReduxH = 0, ReduxR = 0, ReduxA = 0;
  double Per1kH = 0, Per1kA = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Prefetch what-if", "targeting policies for next-line prefetching");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions HOpts;

  std::vector<std::string> Names = workloadNames(workloads::allWorkloads());
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Cache);
      },
      [&](const std::string &Name) {
        const Compiled &C = D.compiled(Name, InputSel::Input1, 0);
        const sim::RunResult &Base = D.run(Name, InputSel::Input1, 0, Cache);
        const HeuristicEval &H =
            D.evalHeuristic(Name, InputSel::Input1, 0, Cache, HOpts);

        // Random control: |Delta_H| loads drawn uniformly from Lambda,
        // seeded per workload so the draw is order-independent.
        Rng PickRng(workloadSeed(777, Name));
        std::vector<masm::InstrRef> AllLoads;
        for (const auto &[Ref, Pats] : C.Analysis->loadPatterns())
          AllLoads.push_back(Ref);
        std::set<masm::InstrRef> RandomSet;
        while (RandomSet.size() < H.Delta.size() &&
               RandomSet.size() < AllLoads.size())
          RandomSet.insert(AllLoads[PickRng.nextBelow(AllLoads.size())]);
        std::set<masm::InstrRef> AllSet(AllLoads.begin(), AllLoads.end());

        const sim::RunResult &PH =
            D.runWithPrefetch(Name, InputSel::Input1, 0, Cache, H.Delta);
        const sim::RunResult &PR =
            D.runWithPrefetch(Name, InputSel::Input1, 0, Cache, RandomSet);
        const sim::RunResult &PA =
            D.runWithPrefetch(Name, InputSel::Input1, 0, Cache, AllSet);

        auto redux = [&](const sim::RunResult &P) {
          return Base.LoadMisses == 0
                     ? 0.0
                     : 1.0 - static_cast<double>(P.LoadMisses) /
                                 Base.LoadMisses;
        };
        auto per1k = [&](const sim::RunResult &P) {
          return 1000.0 * static_cast<double>(P.PrefetchesIssued) /
                 static_cast<double>(Base.InstrsExecuted);
        };

        Row R;
        R.BaseMisses = Base.LoadMisses;
        R.ReduxH = redux(PH);
        R.ReduxR = redux(PR);
        R.ReduxA = redux(PA);
        R.Per1kH = per1k(PH);
        R.Per1kA = per1k(PA);
        return R;
      });

  TextTable T({"Benchmark", "baseline misses", "Delta_H miss redux",
               "random miss redux", "all-loads miss redux",
               "Delta_H pf/1k instr", "all pf/1k instr"});
  JsonReport Json("prefetch_whatif");
  double SumH = 0, SumR = 0, SumA = 0;
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), formatWithCommas(R.BaseMisses), pct(R.ReduxH),
              pct(R.ReduxR), pct(R.ReduxA), formatString("%.1f", R.Per1kH),
              formatString("%.1f", R.Per1kA)});
    Json.addRow(W.Name, {{"baseline_misses", static_cast<double>(R.BaseMisses)},
                         {"delta_h_redux", R.ReduxH},
                         {"random_redux", R.ReduxR},
                         {"all_redux", R.ReduxA},
                         {"delta_h_pf_per_1k", R.Per1kH},
                         {"all_pf_per_1k", R.Per1kA}});
    SumH += R.ReduxH;
    SumR += R.ReduxR;
    SumA += R.ReduxA;
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", "", pct(SumH / N), pct(SumR / N), pct(SumA / N), "",
            ""});
  emit(T);
  footnote("the point of the paper: Delta_H captures nearly all of the "
           "all-loads miss reduction at a small fraction of the issued "
           "prefetches; random same-size targeting captures almost none");
  finish(D, Cfg, &Json);
  return 0;
}
