//===- bench/prefetch_whatif.cpp - the motivating application --------------------//
//
// The paper's introduction argues that identifying delinquent loads matters
// because prefetching "every load instruction ... will be too costly": the
// win comes from triggering prefetches only where they pay. This bench
// closes that loop with the simulator's prefetch engine, comparing six
// policy/targeting combinations on every benchmark:
//
//   none          engine off at Delta_H (must be bit-identical to baseline)
//   nextline      direction-aware next-line at Delta_H
//   pcax          PC-indexed stride/pointer prefetch at Delta_H, seeded
//                 with the static hints (stride magnitude+sign, pointer
//                 class) the analyses already proved
//   pcax random   pcax at |Delta_H| loads drawn uniformly from *all* of
//                 Lambda (the proper instruction-budget control)
//   pcax all      pcax at every load (the paper's "too costly" strawman)
//   oracle        perfect next-miss lookahead at Delta_H: the coverage
//                 ceiling any Delta_H-targeted prefetcher can reach
//
// "accuracy" is useful fills / prefetches issued; "coverage" is the share
// of baseline misses eliminated; "vs oracle" normalizes pcax coverage by
// the oracle's. "overhead" is prefetches issued per 1000 instructions —
// the cost a real system pays in issue slots and bandwidth.
//
// The bench gates itself (exits non-zero) on the two properties CI relies
// on: the engine-off run must be bit-identical to the unarmed baseline,
// and Delta_H targeting must issue fewer prefetches per 1k instructions
// than the all-loads strawman on average.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Rng.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  uint64_t BaseMisses = 0;
  double ReduxNl = 0, ReduxP = 0, ReduxR = 0, ReduxA = 0, ReduxO = 0;
  double Accuracy = 0;   ///< pcax Delta_H useful / issued.
  double VsOracle = 0;   ///< pcax coverage / oracle coverage.
  double Per1kP = 0, Per1kA = 0;
  bool NoneIdentical = false; ///< engine-off run == unarmed baseline?
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Prefetch what-if",
         "targeting policies for the PC-indexed prefetch engine");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions HOpts;

  std::vector<std::string> Names = workloadNames(workloads::allWorkloads());
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Cache);
      },
      [&](const std::string &Name) {
        const Compiled &C = D.compiled(Name, InputSel::Input1, 0);
        const sim::RunResult &Base = D.run(Name, InputSel::Input1, 0, Cache);
        const HeuristicEval &H =
            D.evalHeuristic(Name, InputSel::Input1, 0, Cache, HOpts);

        // Random control: |Delta_H| loads drawn uniformly from *all* of
        // Lambda — every static load in the module, not just the ones the
        // pattern analysis described — seeded per workload so the draw is
        // order-independent.
        Rng PickRng(workloadSeed(777, Name));
        std::vector<masm::InstrRef> AllLoads;
        const auto &Funcs = C.M->functions();
        for (uint32_t FI = 0; FI != Funcs.size(); ++FI) {
          const auto &Body = Funcs[FI].instrs();
          for (uint32_t II = 0; II != Body.size(); ++II)
            if (masm::isLoad(Body[II].Op))
              AllLoads.push_back(masm::InstrRef{FI, II});
        }
        std::set<masm::InstrRef> RandomSet;
        while (RandomSet.size() < H.Delta.size() &&
               RandomSet.size() < AllLoads.size())
          RandomSet.insert(AllLoads[PickRng.nextBelow(AllLoads.size())]);
        std::set<masm::InstrRef> AllSet(AllLoads.begin(), AllLoads.end());

        auto armed = [&](prefetch::Policy P, const metrics::LoadSet &Set)
            -> const sim::RunResult & {
          return D.runWithPrefetchPolicy(Name, InputSel::Input1, 0, Cache, P,
                                         Set);
        };
        const sim::RunResult &PN = armed(prefetch::Policy::None, H.Delta);
        const sim::RunResult &PL = armed(prefetch::Policy::NextLine, H.Delta);
        const sim::RunResult &PP = armed(prefetch::Policy::Pcax, H.Delta);
        const sim::RunResult &PR = armed(prefetch::Policy::Pcax, RandomSet);
        const sim::RunResult &PA = armed(prefetch::Policy::Pcax, AllSet);
        const sim::RunResult &PO = armed(prefetch::Policy::Oracle, H.Delta);

        auto redux = [&](const sim::RunResult &P) {
          return Base.LoadMisses == 0
                     ? 0.0
                     : 1.0 - static_cast<double>(P.LoadMisses) /
                                 Base.LoadMisses;
        };
        auto per1k = [&](const sim::RunResult &P) {
          return 1000.0 * static_cast<double>(P.PrefetchesIssued) /
                 static_cast<double>(Base.InstrsExecuted);
        };

        Row R;
        R.BaseMisses = Base.LoadMisses;
        R.ReduxNl = redux(PL);
        R.ReduxP = redux(PP);
        R.ReduxR = redux(PR);
        R.ReduxA = redux(PA);
        R.ReduxO = redux(PO);
        R.Accuracy = PP.PrefetchesIssued == 0
                         ? 0.0
                         : static_cast<double>(PP.PrefetchUseful) /
                               static_cast<double>(PP.PrefetchesIssued);
        R.VsOracle = R.ReduxO <= 0 ? 0.0 : R.ReduxP / R.ReduxO;
        R.Per1kP = per1k(PP);
        R.Per1kA = per1k(PA);
        R.NoneIdentical =
            PN.Halt == Base.Halt && PN.ExitCode == Base.ExitCode &&
            PN.Output == Base.Output &&
            PN.InstrsExecuted == Base.InstrsExecuted &&
            PN.DataAccesses == Base.DataAccesses &&
            PN.LoadMisses == Base.LoadMisses &&
            PN.StoreMisses == Base.StoreMisses &&
            PN.ExecCounts == Base.ExecCounts &&
            PN.MissCounts == Base.MissCounts && PN.PrefetchesIssued == 0;
        return R;
      });

  TextTable T({"Benchmark", "baseline misses", "nextline", "pcax", "random",
               "all-loads", "oracle", "accuracy", "vs oracle", "pf/1k (pcax)",
               "pf/1k (all)"});
  JsonReport Json("prefetch_whatif");
  unsigned Failures = 0;
  auto fail = [&Failures](const std::string &Msg) {
    std::fprintf(stderr, "GATE FAIL: %s\n", Msg.c_str());
    ++Failures;
  };
  double SumNl = 0, SumP = 0, SumR = 0, SumA = 0, SumO = 0;
  double SumPer1kP = 0, SumPer1kA = 0;
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), formatWithCommas(R.BaseMisses), pct(R.ReduxNl),
              pct(R.ReduxP), pct(R.ReduxR), pct(R.ReduxA), pct(R.ReduxO),
              pct(R.Accuracy), pct(R.VsOracle),
              formatString("%.1f", R.Per1kP), formatString("%.1f", R.Per1kA)});
    Json.addRow(W.Name,
                {{"baseline_misses", static_cast<double>(R.BaseMisses)},
                 {"nextline_redux", R.ReduxNl},
                 {"pcax_redux", R.ReduxP},
                 {"random_redux", R.ReduxR},
                 {"all_redux", R.ReduxA},
                 {"oracle_redux", R.ReduxO},
                 {"pcax_accuracy", R.Accuracy},
                 {"pcax_coverage", R.ReduxP},
                 {"pcax_vs_oracle", R.VsOracle},
                 {"pcax_pf_per_1k", R.Per1kP},
                 {"all_pf_per_1k", R.Per1kA}});
    if (!R.NoneIdentical)
      fail(W.Name + ": --prefetch=none armed run is not bit-identical to "
                    "the unarmed baseline");
    SumNl += R.ReduxNl;
    SumP += R.ReduxP;
    SumR += R.ReduxR;
    SumA += R.ReduxA;
    SumO += R.ReduxO;
    SumPer1kP += R.Per1kP;
    SumPer1kA += R.Per1kA;
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", "", pct(SumNl / N), pct(SumP / N), pct(SumR / N),
            pct(SumA / N), pct(SumO / N), "", "",
            formatString("%.1f", SumPer1kP / N),
            formatString("%.1f", SumPer1kA / N)});
  emit(T);
  footnote("the point of the paper: Delta_H targeting captures nearly all "
           "of the all-loads miss reduction at a small fraction of the "
           "issued prefetches, and PC-indexed stride/pointer prefetching "
           "beats blind next-line wherever the analyses proved a pattern");
  finish(D, Cfg, &Json);

  // Self-gates backing the CI job.
  if (SumPer1kP >= SumPer1kA)
    fail(formatString("Delta_H pcax overhead (%.2f pf/1k avg) is not below "
                      "the all-loads strawman (%.2f pf/1k avg)",
                      SumPer1kP / N, SumPer1kA / N));
  if (Failures) {
    std::fprintf(stderr, "prefetch_whatif: %u gate failure(s)\n", Failures);
    return 1;
  }
  std::fprintf(stderr, "prefetch_whatif: all gates passed\n");
  return 0;
}
