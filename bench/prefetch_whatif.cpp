//===- bench/prefetch_whatif.cpp - the motivating application --------------------//
//
// The paper's introduction argues that identifying delinquent loads matters
// because prefetching "every load instruction ... will be too costly": the
// win comes from triggering prefetches only where they pay. This bench
// closes that loop with the simulator's next-line software prefetcher,
// comparing four targeting policies on every benchmark:
//
//   none      no prefetching (baseline misses)
//   Delta_H   prefetch at the heuristic's possibly-delinquent loads
//   random    prefetch at |Delta_H| random loads (same instruction budget)
//   all       prefetch at every load (the paper's "too costly" strawman)
//
// "overhead" is prefetches issued per 1000 instructions — the cost a real
// system pays in issue slots and bandwidth.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Rng.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct PolicyResult {
  uint64_t Misses = 0;
  uint64_t Issued = 0;
};

PolicyResult runWithPrefetch(const Compiled &C,
                             const std::set<masm::InstrRef> &Targets,
                             const sim::CacheConfig &Cache) {
  sim::MachineOptions Opts;
  Opts.DCache = Cache;
  Opts.PrefetchLoads = Targets;
  sim::Machine Mach(*C.M, *C.L, Opts);
  sim::RunResult R = Mach.run();
  return PolicyResult{R.LoadMisses, R.PrefetchesIssued};
}

} // namespace

int main() {
  banner("Prefetch what-if", "targeting policies for next-line prefetching");

  Driver D;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions HOpts;
  Rng PickRng(777);

  TextTable T({"Benchmark", "baseline misses", "Delta_H miss redux",
               "random miss redux", "all-loads miss redux",
               "Delta_H pf/1k instr", "all pf/1k instr"});
  double SumH = 0, SumR = 0, SumA = 0;
  unsigned N = 0;

  for (const workloads::Workload &W : workloads::allWorkloads()) {
    const Compiled &C = D.compiled(W.Name, InputSel::Input1, 0);
    const sim::RunResult &Base = D.run(W.Name, InputSel::Input1, 0, Cache);
    HeuristicEval H = D.evalHeuristic(W.Name, InputSel::Input1, 0, Cache,
                                      HOpts);

    // Random control: |Delta_H| loads drawn uniformly from Lambda.
    std::vector<masm::InstrRef> AllLoads;
    for (const auto &[Ref, Pats] : C.Analysis->loadPatterns())
      AllLoads.push_back(Ref);
    std::set<masm::InstrRef> RandomSet;
    while (RandomSet.size() < H.Delta.size() &&
           RandomSet.size() < AllLoads.size())
      RandomSet.insert(
          AllLoads[PickRng.nextBelow(AllLoads.size())]);
    std::set<masm::InstrRef> AllSet(AllLoads.begin(), AllLoads.end());

    PolicyResult PH = runWithPrefetch(C, H.Delta, Cache);
    PolicyResult PR = runWithPrefetch(C, RandomSet, Cache);
    PolicyResult PA = runWithPrefetch(C, AllSet, Cache);

    auto redux = [&](const PolicyResult &P) {
      return Base.LoadMisses == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(P.Misses) / Base.LoadMisses;
    };
    auto per1k = [&](const PolicyResult &P) {
      return 1000.0 * static_cast<double>(P.Issued) /
             static_cast<double>(Base.InstrsExecuted);
    };

    T.addRow({benchLabel(W), formatWithCommas(Base.LoadMisses),
              pct(redux(PH)), pct(redux(PR)), pct(redux(PA)),
              formatString("%.1f", per1k(PH)),
              formatString("%.1f", per1k(PA))});
    SumH += redux(PH);
    SumR += redux(PR);
    SumA += redux(PA);
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", "", pct(SumH / N), pct(SumR / N), pct(SumA / N), "",
            ""});
  emit(T);
  footnote("the point of the paper: Delta_H captures nearly all of the "
           "all-loads miss reduction at a small fraction of the issued "
           "prefetches; random same-size targeting captures almost none");
  return 0;
}
