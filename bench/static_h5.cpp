//===- bench/static_h5.cpp - profile-free frequency classes ----------------------//
//
// The paper's Section 5.2 suggestion, evaluated: replace basic-block
// profiling in criterion H5 with static branch-frequency estimation
// (Wu-Larus-style), so the whole heuristic runs with zero dynamic input.
// Three configurations per benchmark:
//
//   no H5        AG1..AG7 only (Table 11's right columns)
//   static H5    AG8/AG9 driven by the static frequency estimator
//   profiled H5  AG8/AG9 driven by the real block profile (the default)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "freq/StaticFreq.h"
#include "metrics/Metrics.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  double NonePi = 0, NoneRho = 0;
  double StaticPi = 0, StaticRho = 0;
  double ProfPi = 0, ProfRho = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Static H5", "frequency classes without profiling (Section 5.2)");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  std::vector<std::string> Names = workloadNames(workloads::allWorkloads());
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Cache);
      },
      [&](const std::string &Name) {
        GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Cache);
        const Compiled &C = D.compiled(Name, InputSel::Input1, 0);

        classify::HeuristicOptions NoH5;
        NoH5.UseFreqClasses = false;
        auto DeltaNone = C.Analysis->delinquentSet(NoH5, nullptr);
        auto ENone = metrics::evaluate(C.lambda(), DeltaNone, G.Stats);

        freq::StaticFreqEstimate Est(*C.M);
        classify::ExecCountMap StaticCounts = Est.loadExecCounts();
        classify::HeuristicOptions WithH5;
        auto DeltaStatic = C.Analysis->delinquentSet(WithH5, &StaticCounts);
        auto EStatic = metrics::evaluate(C.lambda(), DeltaStatic, G.Stats);

        auto DeltaProf = C.Analysis->delinquentSet(WithH5, &G.ExecCounts);
        auto EProf = metrics::evaluate(C.lambda(), DeltaProf, G.Stats);

        return Row{ENone.pi(),   ENone.rho(),  EStatic.pi(),
                   EStatic.rho(), EProf.pi(),  EProf.rho()};
      });

  TextTable T({"Benchmark", "no-H5 pi/rho", "static-H5 pi/rho",
               "profiled-H5 pi/rho"});
  JsonReport Json("static_h5");
  double Sn[2] = {}, Ss[2] = {}, Sp[2] = {};
  unsigned N = 0;
  auto cell = [](double Pi, double Rho) {
    return formatString("%s / %s", formatPercent(Pi).c_str(),
                        formatPercent(Rho, 0).c_str());
  };
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), cell(R.NonePi, R.NoneRho),
              cell(R.StaticPi, R.StaticRho), cell(R.ProfPi, R.ProfRho)});
    Json.addRow(W.Name, {{"none_pi", R.NonePi},
                         {"none_rho", R.NoneRho},
                         {"static_pi", R.StaticPi},
                         {"static_rho", R.StaticRho},
                         {"prof_pi", R.ProfPi},
                         {"prof_rho", R.ProfRho}});
    Sn[0] += R.NonePi;
    Sn[1] += R.NoneRho;
    Ss[0] += R.StaticPi;
    Ss[1] += R.StaticRho;
    Sp[0] += R.ProfPi;
    Sp[1] += R.ProfRho;
    ++N;
  }
  T.addRule();
  auto avg = [&](double *S) { return cell(S[0] / N, S[1] / N); };
  T.addRow({"AVERAGE", avg(Sn), avg(Ss), avg(Sp)});
  emit(T);
  footnote("the static estimator recovers part of the AG8/AG9 precision "
           "gain without any profile: it can tell never-executed and "
           "straight-line-cold code apart from loops, but cannot tell a "
           "cold loop from a hot one");
  finish(D, Cfg, &Json);
  return 0;
}
