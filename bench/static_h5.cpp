//===- bench/static_h5.cpp - profile-free frequency classes ----------------------//
//
// The paper's Section 5.2 suggestion, evaluated: replace basic-block
// profiling in criterion H5 with static branch-frequency estimation
// (Wu-Larus-style), so the whole heuristic runs with zero dynamic input.
// Three configurations per benchmark:
//
//   no H5        AG1..AG7 only (Table 11's right columns)
//   static H5    AG8/AG9 driven by the static frequency estimator
//   profiled H5  AG8/AG9 driven by the real block profile (the default)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "freq/StaticFreq.h"
#include "metrics/Metrics.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Static H5", "frequency classes without profiling (Section 5.2)");

  Driver D;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  TextTable T({"Benchmark", "no-H5 pi/rho", "static-H5 pi/rho",
               "profiled-H5 pi/rho"});
  double Sn[2] = {}, Ss[2] = {}, Sp[2] = {};
  unsigned N = 0;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    GroundTruth G = D.groundTruth(W.Name, InputSel::Input1, 0, Cache);
    const Compiled &C = D.compiled(W.Name, InputSel::Input1, 0);

    classify::HeuristicOptions NoH5;
    NoH5.UseFreqClasses = false;
    auto DeltaNone = C.Analysis->delinquentSet(NoH5, nullptr);
    auto ENone = metrics::evaluate(C.lambda(), DeltaNone, G.Stats);

    freq::StaticFreqEstimate Est(*C.M);
    classify::ExecCountMap StaticCounts = Est.loadExecCounts();
    classify::HeuristicOptions WithH5;
    auto DeltaStatic = C.Analysis->delinquentSet(WithH5, &StaticCounts);
    auto EStatic = metrics::evaluate(C.lambda(), DeltaStatic, G.Stats);

    auto DeltaProf = C.Analysis->delinquentSet(WithH5, &G.ExecCounts);
    auto EProf = metrics::evaluate(C.lambda(), DeltaProf, G.Stats);

    auto cell = [](const metrics::EvalResult &E) {
      return formatString("%s / %s", formatPercent(E.pi()).c_str(),
                          formatPercent(E.rho(), 0).c_str());
    };
    T.addRow({benchLabel(W), cell(ENone), cell(EStatic), cell(EProf)});
    Sn[0] += ENone.pi();
    Sn[1] += ENone.rho();
    Ss[0] += EStatic.pi();
    Ss[1] += EStatic.rho();
    Sp[0] += EProf.pi();
    Sp[1] += EProf.rho();
    ++N;
  }
  T.addRule();
  auto avg = [&](double *S) {
    return formatString("%s / %s", formatPercent(S[0] / N).c_str(),
                        formatPercent(S[1] / N, 0).c_str());
  };
  T.addRow({"AVERAGE", avg(Sn), avg(Ss), avg(Sp)});
  emit(T);
  footnote("the static estimator recovers part of the AG8/AG9 precision "
           "gain without any profile: it can tell never-executed and "
           "straight-line-cold code apart from loops, but cannot tell a "
           "cold loop from a hot one");
  return 0;
}
