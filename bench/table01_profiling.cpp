//===- bench/table01_profiling.cpp - Table 1 reproduction ----------------------//
//
// Table 1, "Use of profiling in identifying delinquent loads": for every
// benchmark, the total static load count Lambda, the size of the greedy
// ideal set that covers the same misses, the size of the profiling set
// Delta_P (all loads in basic blocks covering 90% of cycles), and Delta_P's
// coverage rho.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "metrics/Metrics.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Table 1", "profiling-only identification vs the greedy ideal");

  Driver D;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  TextTable T({"Benchmark", "Lambda", "Ideal |D| (pi)", "Profiling |D| (pi)",
               "rho"});
  double SumIdealPi = 0, SumProfPi = 0, SumRho = 0;
  unsigned N = 0;

  for (const workloads::Workload &W : workloads::allWorkloads()) {
    GroundTruth G = D.groundTruth(W.Name, InputSel::Input1, 0, Cache);
    const Compiled &C = D.compiled(W.Name, InputSel::Input1, 0);
    size_t Lambda = C.lambda();

    metrics::LoadSet DeltaP = D.hotspotLoads(W.Name, InputSel::Input1, 0,
                                             Cache, 0.90);
    metrics::EvalResult ProfE = metrics::evaluate(Lambda, DeltaP, G.Stats);

    // The ideal set matching the profiling coverage (the paper's greedy
    // construction).
    metrics::LoadSet Ideal = metrics::idealSetForCoverage(G.Stats,
                                                          ProfE.rho());
    double IdealPi = Lambda == 0 ? 0
                                 : static_cast<double>(Ideal.size()) / Lambda;

    T.addRow({benchLabel(W), std::to_string(Lambda),
              formatString("%zu (%s)", Ideal.size(),
                           formatPercent(IdealPi).c_str()),
              ratioCell(DeltaP.size(), Lambda), pct(ProfE.rho())});
    SumIdealPi += IdealPi;
    SumProfPi += ProfE.pi();
    SumRho += ProfE.rho();
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", "", formatPercent(SumIdealPi / N),
            formatPercent(SumProfPi / N), pct(SumRho / N, 1)});
  emit(T);
  footnote("ideal 0.73%, profiling 4.73% of loads covering 87.5% of misses "
           "on average; profiling coverage collapses for 124.m88ksim");
  return 0;
}
