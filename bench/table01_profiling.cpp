//===- bench/table01_profiling.cpp - Table 1 reproduction ----------------------//
//
// Table 1, "Use of profiling in identifying delinquent loads": for every
// benchmark, the total static load count Lambda, the size of the greedy
// ideal set that covers the same misses, the size of the profiling set
// Delta_P (all loads in basic blocks covering 90% of cycles), and Delta_P's
// coverage rho.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "metrics/Metrics.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  size_t Lambda = 0;
  size_t IdealSize = 0;
  double IdealPi = 0;
  size_t ProfSize = 0;
  double ProfPi = 0;
  double ProfRho = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 1", "profiling-only identification vs the greedy ideal");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  std::vector<std::string> Names = workloadNames(workloads::allWorkloads());
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Cache);
      },
      [&](const std::string &Name) {
        GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Cache);
        const Compiled &C = D.compiled(Name, InputSel::Input1, 0);

        Row R;
        R.Lambda = C.lambda();
        metrics::LoadSet DeltaP =
            D.hotspotLoads(Name, InputSel::Input1, 0, Cache, 0.90);
        metrics::EvalResult ProfE =
            metrics::evaluate(R.Lambda, DeltaP, G.Stats);

        // The ideal set matching the profiling coverage (the paper's greedy
        // construction).
        metrics::LoadSet Ideal =
            metrics::idealSetForCoverage(G.Stats, ProfE.rho());
        R.IdealSize = Ideal.size();
        R.IdealPi =
            R.Lambda == 0 ? 0 : static_cast<double>(R.IdealSize) / R.Lambda;
        R.ProfSize = DeltaP.size();
        R.ProfPi = ProfE.pi();
        R.ProfRho = ProfE.rho();
        return R;
      });

  TextTable T({"Benchmark", "Lambda", "Ideal |D| (pi)", "Profiling |D| (pi)",
               "rho"});
  JsonReport Json("table01_profiling");
  double SumIdealPi = 0, SumProfPi = 0, SumRho = 0;
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), std::to_string(R.Lambda),
              formatString("%zu (%s)", R.IdealSize,
                           formatPercent(R.IdealPi).c_str()),
              ratioCell(R.ProfSize, R.Lambda), pct(R.ProfRho)});
    Json.addRow(W.Name, {{"lambda", static_cast<double>(R.Lambda)},
                         {"ideal_pi", R.IdealPi},
                         {"profiling_pi", R.ProfPi},
                         {"rho", R.ProfRho}});
    SumIdealPi += R.IdealPi;
    SumProfPi += R.ProfPi;
    SumRho += R.ProfRho;
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", "", formatPercent(SumIdealPi / N),
            formatPercent(SumProfPi / N), pct(SumRho / N, 1)});
  emit(T);
  footnote("ideal 0.73%, profiling 4.73% of loads covering 87.5% of misses "
           "on average; profiling coverage collapses for 124.m88ksim");
  finish(D, Cfg, &Json);
  return 0;
}
