//===- bench/table02_runtime.cpp - Table 2 reproduction ------------------------//
//
// Table 2, "Typical runtime characteristics of the SPEC benchmarks we used":
// instructions executed, L1 data cache accesses, and L1 data cache misses
// per benchmark under the training cache configuration.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Table 2", "runtime characteristics of the benchmark suite");

  Driver D;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  TextTable T({"Benchmark", "Instr executed", "L1 D accesses",
               "L1 D misses", "Miss rate"});
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    GroundTruth G = D.groundTruth(W.Name, InputSel::Input1, 0, Cache);
    uint64_t Misses = G.R->LoadMisses + G.R->StoreMisses;
    double MissRate = G.R->DataAccesses == 0
                          ? 0
                          : static_cast<double>(Misses) / G.R->DataAccesses;
    T.addRow({benchLabel(W), formatScientific(G.R->InstrsExecuted),
              formatScientific(G.R->DataAccesses), formatScientific(Misses),
              pct(MissRate, 2)});
  }
  emit(T);
  footnote("SPEC runs are 1e8..1e12 instructions; the suite here is scaled "
           "to simulator-friendly sizes while preserving the cache-behaviour "
           "mix (pointer chasers miss at ~8-11%, 124.m88ksim at ~0%)");
  return 0;
}
