//===- bench/table02_runtime.cpp - Table 2 reproduction ------------------------//
//
// Table 2, "Typical runtime characteristics of the SPEC benchmarks we used":
// instructions executed, L1 data cache accesses, and L1 data cache misses
// per benchmark under the training cache configuration.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  uint64_t Instrs = 0;
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
  double MissRate = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 2", "runtime characteristics of the benchmark suite");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  std::vector<std::string> Names = workloadNames(workloads::allWorkloads());
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Cache);
      },
      [&](const std::string &Name) {
        GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Cache);
        Row R;
        R.Instrs = G.R->InstrsExecuted;
        R.Accesses = G.R->DataAccesses;
        R.Misses = G.R->LoadMisses + G.R->StoreMisses;
        R.MissRate = R.Accesses == 0
                         ? 0
                         : static_cast<double>(R.Misses) / R.Accesses;
        return R;
      });

  TextTable T({"Benchmark", "Instr executed", "L1 D accesses",
               "L1 D misses", "Miss rate"});
  JsonReport Json("table02_runtime");
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), formatScientific(R.Instrs),
              formatScientific(R.Accesses), formatScientific(R.Misses),
              pct(R.MissRate, 2)});
    Json.addRow(W.Name, {{"instrs", static_cast<double>(R.Instrs)},
                         {"accesses", static_cast<double>(R.Accesses)},
                         {"misses", static_cast<double>(R.Misses)},
                         {"miss_rate", R.MissRate}});
  }
  emit(T);
  footnote("SPEC runs are 1e8..1e12 instructions; the suite here is scaled "
           "to simulator-friendly sizes while preserving the cache-behaviour "
           "mix (pointer chasers miss at ~8-11%, 124.m88ksim at ~0%)");
  finish(D, Cfg, &Json);
  return 0;
}
