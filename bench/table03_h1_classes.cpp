//===- bench/table03_h1_classes.cpp - Table 3 reproduction ---------------------//
//
// Table 3, "Criteria H1 applied to the eleven training benchmarks": the
// enumerated register-occurrence classes (how often sp/gp appear in a
// pattern), how many benchmarks contain each class and in how many it is
// relevant.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Training.h"

using namespace dlq;
using namespace dlq::bench;

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 3", "H1 register-usage classes over the training set");

  pipeline::Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  PatternLabeler H1 = [](const ap::ApNode *P) {
    return std::vector<std::string>{classify::h1ClassLabel(P)};
  };
  classify::ClassTrainer Trainer = trainOverTrainingSet(D, H1, Cache);

  TextTable T({"Class (feature)", "Found in", "Relevant in", "Nature"});
  JsonReport Json("table03_h1_classes");
  for (const classify::ClassReport &Rep : Trainer.reportAll()) {
    const char *Nature =
        Rep.Nature == classify::ClassNature::Positive   ? "positive"
        : Rep.Nature == classify::ClassNature::Negative ? "negative"
                                                        : "neutral";
    T.addRow({Rep.Label, formatString("%u benchmarks", Rep.FoundIn),
              formatString("%u benchmarks", Rep.RelevantIn), Nature});
    Json.addRow(Rep.Label,
                {{"found_in", static_cast<double>(Rep.FoundIn)},
                 {"relevant_in", static_cast<double>(Rep.RelevantIn)}});
  }
  emit(T);
  footnote("classes beyond sp/gp usage showed low relevance and were merged "
           "into 'other'; sp=2 was relevant in 10 of 11 SPEC benchmarks");
  finish(D, Cfg, &Json);
  return 0;
}
