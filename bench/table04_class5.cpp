//===- bench/table04_class5.cpp - Table 4 reproduction -------------------------//
//
// Table 4, "m_j and n_j values of class 5 'sp=1,gp=1'": per benchmark, the
// class's miss probability m_j and its share of all misses n_j, plus the
// weight W(F5) the Section 7.2 formula derives from them.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Training.h"

using namespace dlq;
using namespace dlq::bench;

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 4", "m_j / n_j of H1 class 'sp=1,gp=1'");

  pipeline::Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  const std::string Class = "sp=1,gp=1";

  PatternLabeler H1 = [](const ap::ApNode *P) {
    return std::vector<std::string>{classify::h1ClassLabel(P)};
  };
  classify::ClassTrainer Trainer = trainOverTrainingSet(D, H1, Cache);

  TextTable T({"Benchmark", "m_j(F5,C)", "n_j(F5,C)", "relevant"});
  JsonReport Json("table04_class5");
  for (const classify::BenchmarkObservation &Obs : Trainer.observations()) {
    auto It = Obs.PerClass.find(Class);
    if (It == Obs.PerClass.end() || It->second.Execs == 0)
      continue;
    T.addRow({Obs.Name, pct(Trainer.missProb(Class, Obs.Name), 2),
              pct(Trainer.missShare(Class, Obs.Name), 2),
              Trainer.isRelevant(Class, Obs.Name) ? "yes" : "no"});
    Json.addRow(Obs.Name,
                {{"miss_prob", Trainer.missProb(Class, Obs.Name)},
                 {"miss_share", Trainer.missShare(Class, Obs.Name)},
                 {"relevant", Trainer.isRelevant(Class, Obs.Name) ? 1.0 : 0.0}});
  }
  emit(T);

  std::printf("derived W(F5) = %.3f (mean of m/n over relevant benchmarks)\n",
              Trainer.positiveWeight(Class));
  footnote("the paper's class-5 weight is W(F5) = 2.37 / 5 = 0.47");
  finish(D, Cfg, &Json);
  return 0;
}
