//===- bench/table05_weights.cpp - Table 5 reproduction ------------------------//
//
// Table 5, "Aggregate classes and their weights": re-derives the AG1..AG9
// weights from this suite's training simulations with the Section 7
// machinery (m/n ratios for positive classes, the trimmed-mean negation rule
// for AG8/AG9) and prints them alongside the paper's values.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Training.h"

using namespace dlq;
using namespace dlq::bench;
using classify::AggClass;

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 5", "aggregate-class weights: trained here vs paper");

  pipeline::Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  PatternLabeler AgLabels = [](const ap::ApNode *P) {
    return classify::aggClassLabels(P);
  };
  classify::ClassTrainer Trainer = trainOverTrainingSet(D, AgLabels, Cache);
  classify::HeuristicWeights Trained = Trainer.deriveWeights();
  classify::HeuristicWeights Paper = classify::HeuristicWeights::paperTable5();

  TextTable T({"Class", "Feature", "Trained weight", "Paper weight"});
  JsonReport Json("table05_weights");
  for (unsigned K = 0; K != classify::NumAggClasses; ++K) {
    AggClass C = static_cast<AggClass>(K);
    T.addRow({std::string(classify::aggClassName(C)),
              std::string(classify::aggClassFeature(C)),
              formatString("%+.2f", Trained.of(C)),
              formatString("%+.2f", Paper.of(C))});
    Json.addRow(std::string(classify::aggClassName(C)),
                {{"trained", Trained.of(C)}, {"paper", Paper.of(C)}});
  }
  emit(T);
  footnote("positive weights are mean m/n over relevant benchmarks; AG9 is "
           "minus the trimmed mean of the positive weights, AG8 half that. "
           "Signs and ordering should match; exact magnitudes depend on the "
           "benchmark suite");
  finish(D, Cfg, &Json);
  return 0;
}
