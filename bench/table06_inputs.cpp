//===- bench/table06_inputs.cpp - Table 6 reproduction ---------------------------//
//
// Table 6, "The inputs used in the experiments": the two input sets of each
// benchmark. Here an input set is a parameter assignment for the workload
// generator (sizes, iteration counts, RNG seed); input1 trains the weights,
// input2 drives the Table 7 stability experiment.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;

namespace {

std::string describe(const workloads::WorkloadInput &In) {
  std::string Out;
  for (const auto &[Name, Value] : In.Params) {
    if (!Out.empty())
      Out += " ";
    Out += formatString("%s=%ld", Name.c_str(), Value);
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 6", "the two input sets of every benchmark");

  pipeline::Driver D(Cfg.Exec);
  TextTable T({"Benchmark", "Input 1", "Input 2"});
  T.setAlign(1, TextTable::AlignKind::Left);
  T.setAlign(2, TextTable::AlignKind::Left);
  JsonReport Json("table06_inputs");
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    T.addRow({benchLabel(W), describe(W.Input1), describe(W.Input2)});
    Json.addRow(W.Name,
                {{"input1_params", static_cast<double>(W.Input1.Params.size())},
                 {"input2_params", static_cast<double>(W.Input2.Params.size())}});
  }
  emit(T);
  footnote("the paper's Table 6 lists SPEC input files (bca.in/cps.in, "
           "2stone9.in/9stone21.in, ...); the analog here is the parameter "
           "set fed to each deterministic workload generator");
  finish(D, Cfg, &Json);
  return 0;
}
