//===- bench/table07_inputs.cpp - Table 7 reproduction -------------------------//
//
// Table 7, "Performance on different inputs": pi/rho of the heuristic on the
// eleven training benchmarks under both input sets (weights were trained on
// input1; input2 demonstrates input stability).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Table 7", "heuristic stability across input sets");

  Driver D;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Opts;

  TextTable T({"Benchmark", "Input1 pi", "Input1 rho", "Input2 pi",
               "Input2 rho"});
  double S1p = 0, S1r = 0, S2p = 0, S2r = 0;
  unsigned N = 0;
  for (const std::string &Name : workloads::trainingSetNames()) {
    const workloads::Workload &W = *workloads::findWorkload(Name);
    HeuristicEval E1 = D.evalHeuristic(Name, InputSel::Input1, 0, Cache, Opts);
    HeuristicEval E2 = D.evalHeuristic(Name, InputSel::Input2, 0, Cache, Opts);
    T.addRow({benchLabel(W), pct(E1.E.pi()), pct(E1.E.rho()),
              pct(E2.E.pi()), pct(E2.E.rho())});
    S1p += E1.E.pi();
    S1r += E1.E.rho();
    S2p += E2.E.pi();
    S2r += E2.E.rho();
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", pct(S1p / N), pct(S1r / N), pct(S2p / N),
            pct(S2r / N)});
  emit(T);
  footnote("paper averages 10%/95% on input 1 and 11%/96% on input 2 — the "
           "heuristic is insensitive to inputs");
  return 0;
}
