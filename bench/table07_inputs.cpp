//===- bench/table07_inputs.cpp - Table 7 reproduction -------------------------//
//
// Table 7, "Performance on different inputs": pi/rho of the heuristic on the
// eleven training benchmarks under both input sets (weights were trained on
// input1; input2 demonstrates input stability).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  double Pi1 = 0, Rho1 = 0, Pi2 = 0, Rho2 = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 7", "heuristic stability across input sets");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Opts;

  std::vector<std::string> Names = workloads::trainingSetNames();
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Cache);
        D.run(Name, InputSel::Input2, 0, Cache);
      },
      [&](const std::string &Name) {
        const HeuristicEval &E1 =
            D.evalHeuristic(Name, InputSel::Input1, 0, Cache, Opts);
        const HeuristicEval &E2 =
            D.evalHeuristic(Name, InputSel::Input2, 0, Cache, Opts);
        return Row{E1.E.pi(), E1.E.rho(), E2.E.pi(), E2.E.rho()};
      });

  TextTable T({"Benchmark", "Input1 pi", "Input1 rho", "Input2 pi",
               "Input2 rho"});
  JsonReport Json("table07_inputs");
  double S1p = 0, S1r = 0, S2p = 0, S2r = 0;
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), pct(R.Pi1), pct(R.Rho1), pct(R.Pi2),
              pct(R.Rho2)});
    Json.addRow(W.Name, {{"input1_pi", R.Pi1},
                         {"input1_rho", R.Rho1},
                         {"input2_pi", R.Pi2},
                         {"input2_rho", R.Rho2}});
    S1p += R.Pi1;
    S1r += R.Rho1;
    S2p += R.Pi2;
    S2r += R.Rho2;
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", pct(S1p / N), pct(S1r / N), pct(S2p / N),
            pct(S2r / N)});
  emit(T);
  footnote("paper averages 10%/95% on input 1 and 11%/96% on input 2 — the "
           "heuristic is insensitive to inputs");
  finish(D, Cfg, &Json);
  return 0;
}
