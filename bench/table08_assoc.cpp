//===- bench/table08_assoc.cpp - Table 8 reproduction --------------------------//
//
// Table 8, "Performance of heuristic on different associativities": with
// optimized ('-O') code and a fixed input, pi is fixed per benchmark while
// rho is measured under 2-, 4- and 8-way caches of the baseline size.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Table 8", "rho stability across cache associativity (-O code)");

  Driver D;
  classify::HeuristicOptions Opts;
  const unsigned OptLevel = 1;
  const uint32_t Assocs[3] = {2, 4, 8};

  TextTable T({"Benchmark", "pi", "Assoc 2 rho", "Assoc 4 rho",
               "Assoc 8 rho"});
  double SumPi = 0, SumRho[3] = {0, 0, 0};
  unsigned N = 0;
  for (const std::string &Name : workloads::trainingSetNames()) {
    const workloads::Workload &W = *workloads::findWorkload(Name);
    std::vector<std::string> Cells = {benchLabel(W)};
    double Pi = 0;
    for (unsigned AI = 0; AI != 3; ++AI) {
      sim::CacheConfig Cache{8 * 1024, Assocs[AI], 32};
      HeuristicEval E =
          D.evalHeuristic(Name, InputSel::Input1, OptLevel, Cache, Opts);
      if (AI == 0) {
        Pi = E.E.pi();
        Cells.push_back(pct(Pi));
      }
      Cells.push_back(pct(E.E.rho()));
      SumRho[AI] += E.E.rho();
    }
    T.addRow(Cells);
    SumPi += Pi;
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", pct(SumPi / N), pct(SumRho[0] / N),
            pct(SumRho[1] / N), pct(SumRho[2] / N)});
  emit(T);
  footnote("paper: rho averages 91/92/90% across 2/4/8-way — coverage is "
           "insensitive to associativity. (pi differs across benchmarks "
           "because execution-frequency classes see each run's profile.)");
  return 0;
}
