//===- bench/table08_assoc.cpp - Table 8 reproduction --------------------------//
//
// Table 8, "Performance of heuristic on different associativities": with
// optimized ('-O') code and a fixed input, pi is fixed per benchmark while
// rho is measured under 2-, 4- and 8-way caches of the baseline size.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  double Pi = 0;
  double Rho[3] = {0, 0, 0};
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 8", Cfg.Camodel
                        ? "rho stability across cache associativity "
                          "(-O code, analytical cache model)"
                        : "rho stability across cache associativity "
                          "(-O code)");

  Driver D(Cfg.Exec);
  classify::HeuristicOptions Opts;
  const unsigned OptLevel = 1;
  const uint32_t Assocs[3] = {2, 4, 8};

  std::vector<std::string> Names = workloads::trainingSetNames();
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        if (Cfg.Camodel) {
          // One simulation at the baseline geometry; the sweep itself is
          // closed-form.
          D.run(Name, InputSel::Input1, OptLevel, assocSweepCache(4));
          return;
        }
        for (uint32_t A : Assocs)
          D.run(Name, InputSel::Input1, OptLevel, assocSweepCache(A));
      },
      [&](const std::string &Name) {
        Row R;
        if (Cfg.Camodel) {
          sim::CacheConfig Base = assocSweepCache(4);
          const HeuristicEval &E =
              D.evalHeuristic(Name, InputSel::Input1, OptLevel, Base, Opts);
          GroundTruth G =
              D.groundTruth(Name, InputSel::Input1, OptLevel, Base);
          const Compiled &C = D.compiled(Name, InputSel::Input1, OptLevel);
          camodel::CacheModel Model(*C.M, *C.L);
          R.Pi = E.E.pi();
          for (unsigned AI = 0; AI != 3; ++AI)
            R.Rho[AI] =
                analyticRho(E.Delta, G, Model.predict(assocSweepCache(
                                            Assocs[AI])));
          return R;
        }
        for (unsigned AI = 0; AI != 3; ++AI) {
          sim::CacheConfig Cache = assocSweepCache(Assocs[AI]);
          const HeuristicEval &E =
              D.evalHeuristic(Name, InputSel::Input1, OptLevel, Cache, Opts);
          if (AI == 0)
            R.Pi = E.E.pi();
          R.Rho[AI] = E.E.rho();
        }
        return R;
      });

  TextTable T({"Benchmark", "pi", "Assoc 2 rho", "Assoc 4 rho",
               "Assoc 8 rho"});
  JsonReport Json("table08_assoc");
  double SumPi = 0, SumRho[3] = {0, 0, 0};
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), pct(R.Pi), pct(R.Rho[0]), pct(R.Rho[1]),
              pct(R.Rho[2])});
    Json.addRow(W.Name, {{"pi", R.Pi},
                         {"rho_assoc2", R.Rho[0]},
                         {"rho_assoc4", R.Rho[1]},
                         {"rho_assoc8", R.Rho[2]}});
    SumPi += R.Pi;
    for (unsigned AI = 0; AI != 3; ++AI)
      SumRho[AI] += R.Rho[AI];
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", pct(SumPi / N), pct(SumRho[0] / N),
            pct(SumRho[1] / N), pct(SumRho[2] / N)});
  emit(T);
  footnote("paper: rho averages 91/92/90% across 2/4/8-way — coverage is "
           "insensitive to associativity. (pi differs across benchmarks "
           "because execution-frequency classes see each run's profile.)");
  finish(D, Cfg, &Json);
  return 0;
}
