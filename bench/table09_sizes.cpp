//===- bench/table09_sizes.cpp - Table 9 reproduction --------------------------//
//
// Table 9: with optimized code, rho measured under 8/16/32/64 KB 4-way
// caches.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Table 9", "rho stability across cache sizes (-O code)");

  Driver D;
  classify::HeuristicOptions Opts;
  const unsigned OptLevel = 1;
  const uint32_t SizesKb[4] = {8, 16, 32, 64};

  TextTable T({"Benchmark", "pi", "8k rho", "16k rho", "32k rho",
               "64k rho"});
  double SumPi = 0, SumRho[4] = {0, 0, 0, 0};
  unsigned N = 0;
  for (const std::string &Name : workloads::trainingSetNames()) {
    const workloads::Workload &W = *workloads::findWorkload(Name);
    std::vector<std::string> Cells = {benchLabel(W)};
    double Pi = 0;
    for (unsigned SI = 0; SI != 4; ++SI) {
      sim::CacheConfig Cache{SizesKb[SI] * 1024, 4, 32};
      HeuristicEval E =
          D.evalHeuristic(Name, InputSel::Input1, OptLevel, Cache, Opts);
      if (SI == 0) {
        Pi = E.E.pi();
        Cells.push_back(pct(Pi));
      }
      Cells.push_back(pct(E.E.rho()));
      SumRho[SI] += E.E.rho();
    }
    T.addRow(Cells);
    SumPi += Pi;
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", pct(SumPi / N), pct(SumRho[0] / N),
            pct(SumRho[1] / N), pct(SumRho[2] / N), pct(SumRho[3] / N)});
  emit(T);
  footnote("paper: rho averages 92/92/91/91% across 8k/16k/32k/64k — the "
           "identified loads stay delinquent as the cache grows");
  return 0;
}
