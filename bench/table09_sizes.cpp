//===- bench/table09_sizes.cpp - Table 9 reproduction --------------------------//
//
// Table 9: with optimized code, rho measured under 8/16/32/64 KB 4-way
// caches.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  double Pi = 0;
  double Rho[4] = {0, 0, 0, 0};
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 9", Cfg.Camodel
                        ? "rho stability across cache sizes (-O code, "
                          "analytical cache model)"
                        : "rho stability across cache sizes (-O code)");

  Driver D(Cfg.Exec);
  classify::HeuristicOptions Opts;
  const unsigned OptLevel = 1;
  const uint32_t SizesKb[4] = {8, 16, 32, 64};

  std::vector<std::string> Names = workloads::trainingSetNames();
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        if (Cfg.Camodel) {
          // One simulation at the baseline geometry; the sweep itself is
          // closed-form.
          D.run(Name, InputSel::Input1, OptLevel, sizeSweepCache(8));
          return;
        }
        for (uint32_t Kb : SizesKb)
          D.run(Name, InputSel::Input1, OptLevel, sizeSweepCache(Kb));
      },
      [&](const std::string &Name) {
        Row R;
        if (Cfg.Camodel) {
          sim::CacheConfig Base = sizeSweepCache(8);
          const HeuristicEval &E =
              D.evalHeuristic(Name, InputSel::Input1, OptLevel, Base, Opts);
          GroundTruth G =
              D.groundTruth(Name, InputSel::Input1, OptLevel, Base);
          const Compiled &C = D.compiled(Name, InputSel::Input1, OptLevel);
          camodel::CacheModel Model(*C.M, *C.L);
          R.Pi = E.E.pi();
          for (unsigned SI = 0; SI != 4; ++SI)
            R.Rho[SI] = analyticRho(
                E.Delta, G, Model.predict(sizeSweepCache(SizesKb[SI])));
          return R;
        }
        for (unsigned SI = 0; SI != 4; ++SI) {
          sim::CacheConfig Cache = sizeSweepCache(SizesKb[SI]);
          const HeuristicEval &E =
              D.evalHeuristic(Name, InputSel::Input1, OptLevel, Cache, Opts);
          if (SI == 0)
            R.Pi = E.E.pi();
          R.Rho[SI] = E.E.rho();
        }
        return R;
      });

  TextTable T({"Benchmark", "pi", "8k rho", "16k rho", "32k rho",
               "64k rho"});
  JsonReport Json("table09_sizes");
  double SumPi = 0, SumRho[4] = {0, 0, 0, 0};
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), pct(R.Pi), pct(R.Rho[0]), pct(R.Rho[1]),
              pct(R.Rho[2]), pct(R.Rho[3])});
    Json.addRow(W.Name, {{"pi", R.Pi},
                         {"rho_8k", R.Rho[0]},
                         {"rho_16k", R.Rho[1]},
                         {"rho_32k", R.Rho[2]},
                         {"rho_64k", R.Rho[3]}});
    SumPi += R.Pi;
    for (unsigned SI = 0; SI != 4; ++SI)
      SumRho[SI] += R.Rho[SI];
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", pct(SumPi / N), pct(SumRho[0] / N),
            pct(SumRho[1] / N), pct(SumRho[2] / N), pct(SumRho[3] / N)});
  emit(T);
  footnote("paper: rho averages 92/92/91/91% across 8k/16k/32k/64k — the "
           "identified loads stay delinquent as the cache grows");
  finish(D, Cfg, &Json);
  return 0;
}
