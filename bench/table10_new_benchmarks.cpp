//===- bench/table10_new_benchmarks.cpp - Table 10 reproduction ----------------//
//
// Table 10, "Performance of the heuristic function on a new set of
// benchmarks": the seven held-out programs that took no part in weight
// training.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Table 10", "generalization to the held-out benchmarks");

  Driver D;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Opts;

  TextTable T({"Benchmark", "|Delta| / |Lambda| (pi)", "rho"});
  double SumPi = 0, SumRho = 0;
  unsigned N = 0;
  for (const std::string &Name : workloads::testSetNames()) {
    const workloads::Workload &W = *workloads::findWorkload(Name);
    HeuristicEval E = D.evalHeuristic(Name, InputSel::Input1, 0, Cache, Opts);
    T.addRow({benchLabel(W), ratioCell(E.E.DeltaSize, E.E.Lambda),
              pct(E.E.rho())});
    SumPi += E.E.pi();
    SumRho += E.E.rho();
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", formatPercent(SumPi / N), pct(SumRho / N, 2)});
  emit(T);
  footnote("paper: 9.06% of loads covering 88.29% of misses on the held-out "
           "set — the heuristic generalizes beyond its training programs");
  return 0;
}
