//===- bench/table10_new_benchmarks.cpp - Table 10 reproduction ----------------//
//
// Table 10, "Performance of the heuristic function on a new set of
// benchmarks": the seven held-out programs that took no part in weight
// training.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  size_t DeltaSize = 0;
  size_t Lambda = 0;
  double Pi = 0;
  double Rho = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 10", "generalization to the held-out benchmarks");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Opts;

  std::vector<std::string> Names = workloads::testSetNames();
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Cache);
      },
      [&](const std::string &Name) {
        const HeuristicEval &E =
            D.evalHeuristic(Name, InputSel::Input1, 0, Cache, Opts);
        return Row{E.E.DeltaSize, E.E.Lambda, E.E.pi(), E.E.rho()};
      });

  TextTable T({"Benchmark", "|Delta| / |Lambda| (pi)", "rho"});
  JsonReport Json("table10_new_benchmarks");
  double SumPi = 0, SumRho = 0;
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), ratioCell(R.DeltaSize, R.Lambda), pct(R.Rho)});
    Json.addRow(W.Name, {{"pi", R.Pi}, {"rho", R.Rho}});
    SumPi += R.Pi;
    SumRho += R.Rho;
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", formatPercent(SumPi / N), pct(SumRho / N, 2)});
  emit(T);
  footnote("paper: 9.06% of loads covering 88.29% of misses on the held-out "
           "set — the heuristic generalizes beyond its training programs");
  finish(D, Cfg, &Json);
  return 0;
}
