//===- bench/table11_summary.cpp - Table 11 reproduction -----------------------//
//
// Table 11, "Performance summary of our heuristic method": pi/rho with the
// full heuristic, the dynamic false-positive impact xi (executions of loads
// flagged but absent from the Table 1 ideal set), and pi/rho with the
// frequency classes AG8/AG9 removed (the fully static variant).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "metrics/Metrics.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Table 11", "full summary: with and without AG8/AG9, plus xi");

  Driver D;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  classify::HeuristicOptions Full;
  classify::HeuristicOptions NoFreq;
  NoFreq.UseFreqClasses = false;

  TextTable T({"Benchmark", "pi", "rho", "xi", "pi (no AG8/9)",
               "rho (no AG8/9)"});
  double Sp = 0, Sr = 0, Sx = 0, Snp = 0, Snr = 0;
  unsigned N = 0;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    GroundTruth G = D.groundTruth(W.Name, InputSel::Input1, 0, Cache);
    HeuristicEval EF = D.evalHeuristic(W.Name, InputSel::Input1, 0, Cache,
                                       Full);
    HeuristicEval EN = D.evalHeuristic(W.Name, InputSel::Input1, 0, Cache,
                                       NoFreq);

    // The strict false-positive measure: the ideal set is the Table 1 greedy
    // set matching the profiling coverage.
    metrics::LoadSet DeltaP =
        D.hotspotLoads(W.Name, InputSel::Input1, 0, Cache, 0.90);
    metrics::EvalResult ProfE =
        metrics::evaluate(EF.E.Lambda, DeltaP, G.Stats);
    metrics::LoadSet Ideal =
        metrics::idealSetForCoverage(G.Stats, ProfE.rho());
    double Xi = metrics::falsePositiveImpact(EF.Delta, Ideal, G.Stats);

    T.addRow({benchLabel(W), formatPercent(EF.E.pi()), pct(EF.E.rho()),
              pct(Xi), formatPercent(EN.E.pi()), pct(EN.E.rho())});
    Sp += EF.E.pi();
    Sr += EF.E.rho();
    Sx += Xi;
    Snp += EN.E.pi();
    Snr += EN.E.rho();
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", formatPercent(Sp / N), pct(Sr / N, 2),
            formatPercent(Sx / N), formatPercent(Snp / N), pct(Snr / N, 2)});
  emit(T);
  footnote("paper averages: 10.15%/92.61% with AG8+AG9, xi 14.04%, and "
           "20.82%/92.89% without them — dropping the frequency classes "
           "roughly doubles pi at unchanged coverage");
  return 0;
}
