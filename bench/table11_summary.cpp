//===- bench/table11_summary.cpp - Table 11 reproduction -----------------------//
//
// Table 11, "Performance summary of our heuristic method": pi/rho with the
// full heuristic, the dynamic false-positive impact xi (executions of loads
// flagged but absent from the Table 1 ideal set), and pi/rho with the
// frequency classes AG8/AG9 removed (the fully static variant).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "metrics/Metrics.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  double Pi = 0, Rho = 0, Xi = 0, NoFreqPi = 0, NoFreqRho = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 11", "full summary: with and without AG8/AG9, plus xi");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  classify::HeuristicOptions Full;
  classify::HeuristicOptions NoFreq;
  NoFreq.UseFreqClasses = false;

  std::vector<std::string> Names = workloadNames(workloads::allWorkloads());
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Cache);
      },
      [&](const std::string &Name) {
        GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Cache);
        const HeuristicEval &EF =
            D.evalHeuristic(Name, InputSel::Input1, 0, Cache, Full);
        const HeuristicEval &EN =
            D.evalHeuristic(Name, InputSel::Input1, 0, Cache, NoFreq);

        // The strict false-positive measure: the ideal set is the Table 1
        // greedy set matching the profiling coverage.
        metrics::LoadSet DeltaP =
            D.hotspotLoads(Name, InputSel::Input1, 0, Cache, 0.90);
        metrics::EvalResult ProfE =
            metrics::evaluate(EF.E.Lambda, DeltaP, G.Stats);
        metrics::LoadSet Ideal =
            metrics::idealSetForCoverage(G.Stats, ProfE.rho());

        Row R;
        R.Pi = EF.E.pi();
        R.Rho = EF.E.rho();
        R.Xi = metrics::falsePositiveImpact(EF.Delta, Ideal, G.Stats);
        R.NoFreqPi = EN.E.pi();
        R.NoFreqRho = EN.E.rho();
        return R;
      });

  TextTable T({"Benchmark", "pi", "rho", "xi", "pi (no AG8/9)",
               "rho (no AG8/9)"});
  JsonReport Json("table11_summary");
  double Sp = 0, Sr = 0, Sx = 0, Snp = 0, Snr = 0;
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), formatPercent(R.Pi), pct(R.Rho), pct(R.Xi),
              formatPercent(R.NoFreqPi), pct(R.NoFreqRho)});
    Json.addRow(W.Name, {{"pi", R.Pi},
                         {"rho", R.Rho},
                         {"xi", R.Xi},
                         {"nofreq_pi", R.NoFreqPi},
                         {"nofreq_rho", R.NoFreqRho}});
    Sp += R.Pi;
    Sr += R.Rho;
    Sx += R.Xi;
    Snp += R.NoFreqPi;
    Snr += R.NoFreqRho;
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", formatPercent(Sp / N), pct(Sr / N, 2),
            formatPercent(Sx / N), formatPercent(Snp / N), pct(Snr / N, 2)});
  emit(T);
  footnote("paper averages: 10.15%/92.61% with AG8+AG9, xi 14.04%, and "
           "20.82%/92.89% without them — dropping the frequency classes "
           "roughly doubles pi at unchanged coverage");
  finish(D, Cfg, &Json);
  return 0;
}
