//===- bench/table12_baselines.cpp - Table 12 reproduction ---------------------//
//
// Table 12, "Performance of the OKN and BDH methods": the two prior static
// classifiers evaluated on the same binaries and cache configuration, next
// to our heuristic. The paper's point: their coverage is comparable, their
// precision is far worse.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/Bdh.h"
#include "baselines/Okn.h"
#include "metrics/Metrics.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Table 12", "OKN and BDH baselines vs our heuristic");

  Driver D;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Opts;

  TextTable T({"Benchmark", "OKN pi", "OKN rho", "BDH pi", "BDH rho",
               "Ours pi", "Ours rho"});
  double Sop = 0, Sor = 0, Sbp = 0, Sbr = 0, Shp = 0, Shr = 0;
  unsigned N = 0;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    GroundTruth G = D.groundTruth(W.Name, InputSel::Input1, 0, Cache);
    const Compiled &C = D.compiled(W.Name, InputSel::Input1, 0);
    size_t Lambda = C.lambda();

    metrics::LoadSet OknD = baselines::oknDelinquentSet(*C.Analysis);
    metrics::EvalResult OknE = metrics::evaluate(Lambda, OknD, G.Stats);

    baselines::BdhAnalyzer Bdh(*C.Analysis);
    metrics::LoadSet BdhD = Bdh.delinquentSet();
    metrics::EvalResult BdhE = metrics::evaluate(Lambda, BdhD, G.Stats);

    HeuristicEval Ours = D.evalHeuristic(W.Name, InputSel::Input1, 0, Cache,
                                         Opts);

    T.addRow({benchLabel(W), formatPercent(OknE.pi()), pct(OknE.rho()),
              formatPercent(BdhE.pi()), pct(BdhE.rho()),
              formatPercent(Ours.E.pi()), pct(Ours.E.rho())});
    Sop += OknE.pi();
    Sor += OknE.rho();
    Sbp += BdhE.pi();
    Sbr += BdhE.rho();
    Shp += Ours.E.pi();
    Shr += Ours.E.rho();
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", formatPercent(Sop / N), pct(Sor / N, 2),
            formatPercent(Sbp / N), pct(Sbr / N, 2), formatPercent(Shp / N),
            pct(Shr / N, 2)});
  emit(T);
  footnote("paper: OKN 55.88%/92.06%, BDH 50.73%/93.00%, ours 10.15%/92.61% "
           "— all three cover most misses; only ours is precise. (Absolute "
           "baseline pi here is lower than SPEC's because unoptimized MinC "
           "binaries carry a larger share of plain stack-slot reloads that "
           "no structural method flags.)");
  return 0;
}
