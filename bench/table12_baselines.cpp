//===- bench/table12_baselines.cpp - Table 12 reproduction ---------------------//
//
// Table 12, "Performance of the OKN and BDH methods": the two prior static
// classifiers evaluated on the same binaries and cache configuration, next
// to our heuristic. The paper's point: their coverage is comparable, their
// precision is far worse.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/Bdh.h"
#include "baselines/Okn.h"
#include "baselines/ReuseDist.h"
#include "metrics/Metrics.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  double OknPi = 0, OknRho = 0, BdhPi = 0, BdhRho = 0, RdPi = 0, RdRho = 0,
         OursPi = 0, OursRho = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 12", "OKN and BDH baselines vs our heuristic");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Opts;

  std::vector<std::string> Names = workloadNames(workloads::allWorkloads());
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Cache);
      },
      [&](const std::string &Name) {
        GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Cache);
        const Compiled &C = D.compiled(Name, InputSel::Input1, 0);
        size_t Lambda = C.lambda();

        metrics::LoadSet OknD = baselines::oknDelinquentSet(*C.Analysis);
        metrics::EvalResult OknE = metrics::evaluate(Lambda, OknD, G.Stats);

        baselines::BdhAnalyzer Bdh(*C.Analysis);
        metrics::LoadSet BdhD = Bdh.delinquentSet();
        metrics::EvalResult BdhE = metrics::evaluate(Lambda, BdhD, G.Stats);

        baselines::ReuseDistAnalyzer Rd(*C.M, *C.L, Cache);
        metrics::LoadSet RdD(Rd.delinquentSet().begin(),
                             Rd.delinquentSet().end());
        metrics::EvalResult RdE = metrics::evaluate(Lambda, RdD, G.Stats);

        const HeuristicEval &Ours =
            D.evalHeuristic(Name, InputSel::Input1, 0, Cache, Opts);

        return Row{OknE.pi(),  OknE.rho(), BdhE.pi(),    BdhE.rho(),
                   RdE.pi(),   RdE.rho(),  Ours.E.pi(),  Ours.E.rho()};
      });

  TextTable T({"Benchmark", "OKN pi", "OKN rho", "BDH pi", "BDH rho",
               "RD pi", "RD rho", "Ours pi", "Ours rho"});
  JsonReport Json("table12_baselines");
  double Sop = 0, Sor = 0, Sbp = 0, Sbr = 0, Srp = 0, Srr = 0, Shp = 0,
         Shr = 0;
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    T.addRow({benchLabel(W), formatPercent(R.OknPi), pct(R.OknRho),
              formatPercent(R.BdhPi), pct(R.BdhRho), formatPercent(R.RdPi),
              pct(R.RdRho), formatPercent(R.OursPi), pct(R.OursRho)});
    Json.addRow(W.Name, {{"okn_pi", R.OknPi},
                         {"okn_rho", R.OknRho},
                         {"bdh_pi", R.BdhPi},
                         {"bdh_rho", R.BdhRho},
                         {"rd_pi", R.RdPi},
                         {"rd_rho", R.RdRho},
                         {"ours_pi", R.OursPi},
                         {"ours_rho", R.OursRho}});
    Sop += R.OknPi;
    Sor += R.OknRho;
    Sbp += R.BdhPi;
    Sbr += R.BdhRho;
    Srp += R.RdPi;
    Srr += R.RdRho;
    Shp += R.OursPi;
    Shr += R.OursRho;
    ++N;
  }
  T.addRule();
  T.addRow({"AVERAGE", formatPercent(Sop / N), pct(Sor / N, 2),
            formatPercent(Sbp / N), pct(Sbr / N, 2), formatPercent(Srp / N),
            pct(Srr / N, 2), formatPercent(Shp / N), pct(Shr / N, 2)});
  emit(T);
  footnote("paper: OKN 55.88%/92.06%, BDH 50.73%/93.00%, ours 10.15%/92.61% "
           "— all three cover most misses; only ours is precise. (Absolute "
           "baseline pi here is lower than SPEC's because unoptimized MinC "
           "binaries carry a larger share of plain stack-slot reloads that "
           "no structural method flags.) RD is this repo's reuse-distance "
           "baseline: analytical per-PC miss ratios thresholded at the "
           "baseline geometry, unknown-in-loop loads flagged.");
  finish(D, Cfg, &Json);
  return 0;
}
