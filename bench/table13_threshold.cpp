//===- bench/table13_threshold.cpp - Table 13 reproduction ---------------------//
//
// Table 13, "Varying the delinquency threshold": pi/rho for delta in
// {0.10, 0.20, 0.30, 0.40} on the training benchmarks, using the 16 KB
// cache and optimized code as in the paper.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Table 13", "delinquency-threshold sweep (16 KB cache, -O code)");

  Driver D;
  sim::CacheConfig Cache{16 * 1024, 4, 32};
  const unsigned OptLevel = 1;
  const double Deltas[4] = {0.10, 0.20, 0.30, 0.40};

  TextTable T({"Benchmark", "d=0.10 pi/rho", "d=0.20 pi/rho",
               "d=0.30 pi/rho", "d=0.40 pi/rho"});
  double Sp[4] = {}, Sr[4] = {};
  unsigned N = 0;
  for (const std::string &Name : workloads::trainingSetNames()) {
    const workloads::Workload &W = *workloads::findWorkload(Name);
    std::vector<std::string> Cells = {benchLabel(W)};
    for (unsigned DI = 0; DI != 4; ++DI) {
      classify::HeuristicOptions Opts;
      Opts.Delta = Deltas[DI];
      HeuristicEval E =
          D.evalHeuristic(Name, InputSel::Input1, OptLevel, Cache, Opts);
      Cells.push_back(formatString("%s / %s", pct(E.E.pi()).c_str(),
                                   pct(E.E.rho()).c_str()));
      Sp[DI] += E.E.pi();
      Sr[DI] += E.E.rho();
    }
    T.addRow(Cells);
    ++N;
  }
  T.addRule();
  std::vector<std::string> Avg = {"AVERAGE"};
  for (unsigned DI = 0; DI != 4; ++DI)
    Avg.push_back(formatString("%s / %s", pct(Sp[DI] / N).c_str(),
                               pct(Sr[DI] / N).c_str()));
  T.addRow(Avg);
  emit(T);
  footnote("paper averages 14/92, 12/89, 9/78, 6/68 — raising delta trades "
           "coverage for precision, with per-benchmark cliffs (164.gzip "
           "falls from 94% to 34% coverage at delta=0.40)");
  return 0;
}
