//===- bench/table13_threshold.cpp - Table 13 reproduction ---------------------//
//
// Table 13, "Varying the delinquency threshold": pi/rho for delta in
// {0.10, 0.20, 0.30, 0.40} on the training benchmarks, using the 16 KB
// cache and optimized code as in the paper.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  double Pi[4] = {}, Rho[4] = {};
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 13", "delinquency-threshold sweep (16 KB cache, -O code)");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache{16 * 1024, 4, 32};
  const unsigned OptLevel = 1;
  const double Deltas[4] = {0.10, 0.20, 0.30, 0.40};

  std::vector<std::string> Names = workloads::trainingSetNames();
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, OptLevel, Cache);
      },
      [&](const std::string &Name) {
        Row R;
        for (unsigned DI = 0; DI != 4; ++DI) {
          classify::HeuristicOptions Opts;
          Opts.Delta = Deltas[DI];
          const HeuristicEval &E =
              D.evalHeuristic(Name, InputSel::Input1, OptLevel, Cache, Opts);
          R.Pi[DI] = E.E.pi();
          R.Rho[DI] = E.E.rho();
        }
        return R;
      });

  TextTable T({"Benchmark", "d=0.10 pi/rho", "d=0.20 pi/rho",
               "d=0.30 pi/rho", "d=0.40 pi/rho"});
  JsonReport Json("table13_threshold");
  double Sp[4] = {}, Sr[4] = {};
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    std::vector<std::string> Cells = {benchLabel(W)};
    std::vector<std::pair<std::string, double>> Metrics;
    for (unsigned DI = 0; DI != 4; ++DI) {
      Cells.push_back(formatString("%s / %s", pct(R.Pi[DI]).c_str(),
                                   pct(R.Rho[DI]).c_str()));
      Metrics.push_back({formatString("pi_d%02.0f", Deltas[DI] * 100),
                         R.Pi[DI]});
      Metrics.push_back({formatString("rho_d%02.0f", Deltas[DI] * 100),
                         R.Rho[DI]});
      Sp[DI] += R.Pi[DI];
      Sr[DI] += R.Rho[DI];
    }
    T.addRow(Cells);
    Json.addRow(W.Name, std::move(Metrics));
    ++N;
  }
  T.addRule();
  std::vector<std::string> Avg = {"AVERAGE"};
  for (unsigned DI = 0; DI != 4; ++DI)
    Avg.push_back(formatString("%s / %s", pct(Sp[DI] / N).c_str(),
                               pct(Sr[DI] / N).c_str()));
  T.addRow(Avg);
  emit(T);
  footnote("paper averages 14/92, 12/89, 9/78, 6/68 — raising delta trades "
           "coverage for precision, with per-benchmark cliffs (164.gzip "
           "falls from 94% to 34% coverage at delta=0.40)");
  finish(D, Cfg, &Json);
  return 0;
}
