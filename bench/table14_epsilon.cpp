//===- bench/table14_epsilon.cpp - Table 14 reproduction -----------------------//
//
// Table 14, "Varying the epsilon factor": the Section 9 combination of
// profiling and the heuristic. At epsilon=0 the prediction is the
// intersection Delta_P with Delta_H; growing epsilon admits the
// highest-scoring heuristic-only loads. rho* is the coverage of a random
// same-size sample from the hotspot loads (averaged over three draws) — the
// control showing the heuristic's ranking carries real information.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "metrics/Metrics.h"
#include "support/Rng.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

int main() {
  banner("Table 14", "combining the heuristic with basic-block profiling");

  Driver D;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Opts;
  const double Epsilons[4] = {0.0, 0.10, 0.20, 0.30};
  Rng SampleRng(20040321);

  TextTable T({"Benchmark", "e=0 pi/rho/rho*", "e=0.1 pi/rho",
               "e=0.2 pi/rho", "e=0.3 pi/rho"});
  double Sp[4] = {}, Sr[4] = {}, SrStar = 0;
  unsigned N = 0;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    GroundTruth G = D.groundTruth(W.Name, InputSel::Input1, 0, Cache);
    const Compiled &C = D.compiled(W.Name, InputSel::Input1, 0);
    size_t Lambda = C.lambda();
    HeuristicEval H = D.evalHeuristic(W.Name, InputSel::Input1, 0, Cache,
                                      Opts);
    metrics::LoadSet DeltaP =
        D.hotspotLoads(W.Name, InputSel::Input1, 0, Cache, 0.90);

    std::vector<std::string> Cells = {benchLabel(W)};
    for (unsigned EI = 0; EI != 4; ++EI) {
      metrics::LoadSet Combined = metrics::combineWithProfiling(
          DeltaP, H.Delta, H.Scores, Epsilons[EI]);
      metrics::EvalResult E = metrics::evaluate(Lambda, Combined, G.Stats);
      if (EI == 0) {
        double RhoStar = metrics::randomSampleCoverage(
            DeltaP, Combined.size(), G.Stats, SampleRng, 3);
        Cells.push_back(formatString("%s / %s / %s",
                                     formatPercent(E.pi()).c_str(),
                                     pct(E.rho()).c_str(),
                                     pct(RhoStar).c_str()));
        SrStar += RhoStar;
      } else {
        Cells.push_back(formatString("%s / %s",
                                     formatPercent(E.pi()).c_str(),
                                     pct(E.rho()).c_str()));
      }
      Sp[EI] += E.pi();
      Sr[EI] += E.rho();
    }
    T.addRow(Cells);
    ++N;
  }
  T.addRule();
  std::vector<std::string> Avg = {"AVERAGE"};
  Avg.push_back(formatString("%s / %s / %s",
                             formatPercent(Sp[0] / N).c_str(),
                             pct(Sr[0] / N).c_str(),
                             pct(SrStar / N).c_str()));
  for (unsigned EI = 1; EI != 4; ++EI)
    Avg.push_back(formatString("%s / %s", formatPercent(Sp[EI] / N).c_str(),
                               pct(Sr[EI] / N).c_str()));
  T.addRow(Avg);
  emit(T);
  footnote("paper: epsilon=0 pins 1.30% of loads covering 82% of misses "
           "while random same-size hotspot samples cover only 23% (rho*); "
           "epsilon=0.3 reaches 3.95%/88%");
  return 0;
}
