//===- bench/table14_epsilon.cpp - Table 14 reproduction -----------------------//
//
// Table 14, "Varying the epsilon factor": the Section 9 combination of
// profiling and the heuristic. At epsilon=0 the prediction is the
// intersection Delta_P with Delta_H; growing epsilon admits the
// highest-scoring heuristic-only loads. rho* is the coverage of a random
// same-size sample from the hotspot loads (averaged over three draws) — the
// control showing the heuristic's ranking carries real information.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "metrics/Metrics.h"
#include "support/Rng.h"

using namespace dlq;
using namespace dlq::bench;
using namespace dlq::pipeline;

namespace {

struct Row {
  double Pi[4] = {}, Rho[4] = {};
  double RhoStar = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Cfg = parseArgs(Argc, Argv);
  if (!Cfg.Ok)
    return 2;
  banner("Table 14", "combining the heuristic with basic-block profiling");

  Driver D(Cfg.Exec);
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Opts;
  const double Epsilons[4] = {0.0, 0.10, 0.20, 0.30};

  std::vector<std::string> Names = workloadNames(workloads::allWorkloads());
  std::vector<Row> Rows = tableRows<Row>(
      D, Names,
      [&](const std::string &Name) {
        D.run(Name, InputSel::Input1, 0, Cache);
      },
      [&](const std::string &Name) {
        GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Cache);
        const Compiled &C = D.compiled(Name, InputSel::Input1, 0);
        size_t Lambda = C.lambda();
        const HeuristicEval &H =
            D.evalHeuristic(Name, InputSel::Input1, 0, Cache, Opts);
        metrics::LoadSet DeltaP =
            D.hotspotLoads(Name, InputSel::Input1, 0, Cache, 0.90);
        // Seeded per workload, not from a shared sequence: the draw is the
        // same no matter which worker gets here first.
        Rng SampleRng(workloadSeed(20040321, Name));

        Row R;
        for (unsigned EI = 0; EI != 4; ++EI) {
          metrics::LoadSet Combined = metrics::combineWithProfiling(
              DeltaP, H.Delta, H.Scores, Epsilons[EI]);
          metrics::EvalResult E = metrics::evaluate(Lambda, Combined, G.Stats);
          if (EI == 0)
            R.RhoStar = metrics::randomSampleCoverage(
                DeltaP, Combined.size(), G.Stats, SampleRng, 3);
          R.Pi[EI] = E.pi();
          R.Rho[EI] = E.rho();
        }
        return R;
      });

  TextTable T({"Benchmark", "e=0 pi/rho/rho*", "e=0.1 pi/rho",
               "e=0.2 pi/rho", "e=0.3 pi/rho"});
  JsonReport Json("table14_epsilon");
  double Sp[4] = {}, Sr[4] = {}, SrStar = 0;
  unsigned N = 0;
  for (size_t I = 0; I != Names.size(); ++I) {
    const workloads::Workload &W = *workloads::findWorkload(Names[I]);
    const Row &R = Rows[I];
    std::vector<std::string> Cells = {benchLabel(W)};
    Cells.push_back(formatString("%s / %s / %s",
                                 formatPercent(R.Pi[0]).c_str(),
                                 pct(R.Rho[0]).c_str(),
                                 pct(R.RhoStar).c_str()));
    for (unsigned EI = 1; EI != 4; ++EI)
      Cells.push_back(formatString("%s / %s",
                                   formatPercent(R.Pi[EI]).c_str(),
                                   pct(R.Rho[EI]).c_str()));
    T.addRow(Cells);
    Json.addRow(W.Name, {{"e0_pi", R.Pi[0]},
                         {"e0_rho", R.Rho[0]},
                         {"e0_rho_star", R.RhoStar},
                         {"e01_pi", R.Pi[1]},
                         {"e01_rho", R.Rho[1]},
                         {"e02_pi", R.Pi[2]},
                         {"e02_rho", R.Rho[2]},
                         {"e03_pi", R.Pi[3]},
                         {"e03_rho", R.Rho[3]}});
    for (unsigned EI = 0; EI != 4; ++EI) {
      Sp[EI] += R.Pi[EI];
      Sr[EI] += R.Rho[EI];
    }
    SrStar += R.RhoStar;
    ++N;
  }
  T.addRule();
  std::vector<std::string> Avg = {"AVERAGE"};
  Avg.push_back(formatString("%s / %s / %s",
                             formatPercent(Sp[0] / N).c_str(),
                             pct(Sr[0] / N).c_str(),
                             pct(SrStar / N).c_str()));
  for (unsigned EI = 1; EI != 4; ++EI)
    Avg.push_back(formatString("%s / %s", formatPercent(Sp[EI] / N).c_str(),
                               pct(Sr[EI] / N).c_str()));
  T.addRow(Avg);
  emit(T);
  footnote("paper: epsilon=0 pins 1.30% of loads covering 82% of misses "
           "while random same-size hotspot samples cover only 23% (rho*); "
           "epsilon=0.3 reaches 3.95%/88%");
  finish(D, Cfg, &Json);
  return 0;
}
