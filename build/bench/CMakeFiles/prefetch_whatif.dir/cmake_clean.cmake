file(REMOVE_RECURSE
  "CMakeFiles/prefetch_whatif.dir/prefetch_whatif.cpp.o"
  "CMakeFiles/prefetch_whatif.dir/prefetch_whatif.cpp.o.d"
  "prefetch_whatif"
  "prefetch_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
