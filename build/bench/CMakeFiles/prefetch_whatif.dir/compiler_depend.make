# Empty compiler generated dependencies file for prefetch_whatif.
# This may be replaced when dependencies are built.
