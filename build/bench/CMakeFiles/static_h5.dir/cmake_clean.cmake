file(REMOVE_RECURSE
  "CMakeFiles/static_h5.dir/static_h5.cpp.o"
  "CMakeFiles/static_h5.dir/static_h5.cpp.o.d"
  "static_h5"
  "static_h5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_h5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
