# Empty dependencies file for static_h5.
# This may be replaced when dependencies are built.
