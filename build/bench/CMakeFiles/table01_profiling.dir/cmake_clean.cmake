file(REMOVE_RECURSE
  "CMakeFiles/table01_profiling.dir/table01_profiling.cpp.o"
  "CMakeFiles/table01_profiling.dir/table01_profiling.cpp.o.d"
  "table01_profiling"
  "table01_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
