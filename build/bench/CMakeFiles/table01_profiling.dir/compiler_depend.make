# Empty compiler generated dependencies file for table01_profiling.
# This may be replaced when dependencies are built.
