file(REMOVE_RECURSE
  "CMakeFiles/table02_runtime.dir/table02_runtime.cpp.o"
  "CMakeFiles/table02_runtime.dir/table02_runtime.cpp.o.d"
  "table02_runtime"
  "table02_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
