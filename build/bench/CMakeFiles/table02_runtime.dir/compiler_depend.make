# Empty compiler generated dependencies file for table02_runtime.
# This may be replaced when dependencies are built.
