file(REMOVE_RECURSE
  "CMakeFiles/table03_h1_classes.dir/table03_h1_classes.cpp.o"
  "CMakeFiles/table03_h1_classes.dir/table03_h1_classes.cpp.o.d"
  "table03_h1_classes"
  "table03_h1_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_h1_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
