# Empty compiler generated dependencies file for table03_h1_classes.
# This may be replaced when dependencies are built.
