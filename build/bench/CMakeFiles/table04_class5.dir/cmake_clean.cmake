file(REMOVE_RECURSE
  "CMakeFiles/table04_class5.dir/table04_class5.cpp.o"
  "CMakeFiles/table04_class5.dir/table04_class5.cpp.o.d"
  "table04_class5"
  "table04_class5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_class5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
