# Empty dependencies file for table04_class5.
# This may be replaced when dependencies are built.
