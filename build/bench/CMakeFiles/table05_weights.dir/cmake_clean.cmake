file(REMOVE_RECURSE
  "CMakeFiles/table05_weights.dir/table05_weights.cpp.o"
  "CMakeFiles/table05_weights.dir/table05_weights.cpp.o.d"
  "table05_weights"
  "table05_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
