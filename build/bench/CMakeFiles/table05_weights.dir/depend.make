# Empty dependencies file for table05_weights.
# This may be replaced when dependencies are built.
