file(REMOVE_RECURSE
  "CMakeFiles/table06_inputs.dir/table06_inputs.cpp.o"
  "CMakeFiles/table06_inputs.dir/table06_inputs.cpp.o.d"
  "table06_inputs"
  "table06_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
