# Empty dependencies file for table06_inputs.
# This may be replaced when dependencies are built.
