file(REMOVE_RECURSE
  "CMakeFiles/table07_inputs.dir/table07_inputs.cpp.o"
  "CMakeFiles/table07_inputs.dir/table07_inputs.cpp.o.d"
  "table07_inputs"
  "table07_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
