# Empty compiler generated dependencies file for table07_inputs.
# This may be replaced when dependencies are built.
