file(REMOVE_RECURSE
  "CMakeFiles/table08_assoc.dir/table08_assoc.cpp.o"
  "CMakeFiles/table08_assoc.dir/table08_assoc.cpp.o.d"
  "table08_assoc"
  "table08_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
