# Empty compiler generated dependencies file for table08_assoc.
# This may be replaced when dependencies are built.
