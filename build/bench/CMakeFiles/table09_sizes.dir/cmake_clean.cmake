file(REMOVE_RECURSE
  "CMakeFiles/table09_sizes.dir/table09_sizes.cpp.o"
  "CMakeFiles/table09_sizes.dir/table09_sizes.cpp.o.d"
  "table09_sizes"
  "table09_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
