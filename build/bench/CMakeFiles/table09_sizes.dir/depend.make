# Empty dependencies file for table09_sizes.
# This may be replaced when dependencies are built.
