
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table10_new_benchmarks.cpp" "bench/CMakeFiles/table10_new_benchmarks.dir/table10_new_benchmarks.cpp.o" "gcc" "bench/CMakeFiles/table10_new_benchmarks.dir/table10_new_benchmarks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/freq/CMakeFiles/dlq_freq.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/dlq_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dlq_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mcc/CMakeFiles/dlq_mcc.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dlq_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dlq_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/dlq_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/dlq_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dlq_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/dlq_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/dlq_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dlq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
