file(REMOVE_RECURSE
  "CMakeFiles/table10_new_benchmarks.dir/table10_new_benchmarks.cpp.o"
  "CMakeFiles/table10_new_benchmarks.dir/table10_new_benchmarks.cpp.o.d"
  "table10_new_benchmarks"
  "table10_new_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_new_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
