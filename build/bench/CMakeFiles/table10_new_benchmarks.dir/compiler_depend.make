# Empty compiler generated dependencies file for table10_new_benchmarks.
# This may be replaced when dependencies are built.
