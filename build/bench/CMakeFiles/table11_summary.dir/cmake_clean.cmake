file(REMOVE_RECURSE
  "CMakeFiles/table11_summary.dir/table11_summary.cpp.o"
  "CMakeFiles/table11_summary.dir/table11_summary.cpp.o.d"
  "table11_summary"
  "table11_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
