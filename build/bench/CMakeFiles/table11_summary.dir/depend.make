# Empty dependencies file for table11_summary.
# This may be replaced when dependencies are built.
