file(REMOVE_RECURSE
  "CMakeFiles/table12_baselines.dir/table12_baselines.cpp.o"
  "CMakeFiles/table12_baselines.dir/table12_baselines.cpp.o.d"
  "table12_baselines"
  "table12_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
