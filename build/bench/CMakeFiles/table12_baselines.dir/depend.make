# Empty dependencies file for table12_baselines.
# This may be replaced when dependencies are built.
