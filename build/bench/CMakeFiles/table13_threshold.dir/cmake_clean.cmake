file(REMOVE_RECURSE
  "CMakeFiles/table13_threshold.dir/table13_threshold.cpp.o"
  "CMakeFiles/table13_threshold.dir/table13_threshold.cpp.o.d"
  "table13_threshold"
  "table13_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
