# Empty compiler generated dependencies file for table13_threshold.
# This may be replaced when dependencies are built.
