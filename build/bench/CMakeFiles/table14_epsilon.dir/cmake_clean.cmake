file(REMOVE_RECURSE
  "CMakeFiles/table14_epsilon.dir/table14_epsilon.cpp.o"
  "CMakeFiles/table14_epsilon.dir/table14_epsilon.cpp.o.d"
  "table14_epsilon"
  "table14_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table14_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
