# Empty compiler generated dependencies file for table14_epsilon.
# This may be replaced when dependencies are built.
