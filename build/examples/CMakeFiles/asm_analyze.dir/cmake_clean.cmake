file(REMOVE_RECURSE
  "CMakeFiles/asm_analyze.dir/asm_analyze.cpp.o"
  "CMakeFiles/asm_analyze.dir/asm_analyze.cpp.o.d"
  "asm_analyze"
  "asm_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
