# Empty compiler generated dependencies file for asm_analyze.
# This may be replaced when dependencies are built.
