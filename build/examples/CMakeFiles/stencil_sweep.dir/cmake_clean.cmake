file(REMOVE_RECURSE
  "CMakeFiles/stencil_sweep.dir/stencil_sweep.cpp.o"
  "CMakeFiles/stencil_sweep.dir/stencil_sweep.cpp.o.d"
  "stencil_sweep"
  "stencil_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
