# Empty dependencies file for stencil_sweep.
# This may be replaced when dependencies are built.
