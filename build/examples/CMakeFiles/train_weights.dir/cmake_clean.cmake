file(REMOVE_RECURSE
  "CMakeFiles/train_weights.dir/train_weights.cpp.o"
  "CMakeFiles/train_weights.dir/train_weights.cpp.o.d"
  "train_weights"
  "train_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
