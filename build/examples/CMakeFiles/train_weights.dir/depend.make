# Empty dependencies file for train_weights.
# This may be replaced when dependencies are built.
