# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("masm")
subdirs("cfg")
subdirs("dataflow")
subdirs("sim")
subdirs("ap")
subdirs("classify")
subdirs("freq")
subdirs("baselines")
subdirs("metrics")
subdirs("mcc")
subdirs("workloads")
subdirs("pipeline")
