file(REMOVE_RECURSE
  "CMakeFiles/dlq_ap.dir/Builder.cpp.o"
  "CMakeFiles/dlq_ap.dir/Builder.cpp.o.d"
  "CMakeFiles/dlq_ap.dir/Pattern.cpp.o"
  "CMakeFiles/dlq_ap.dir/Pattern.cpp.o.d"
  "libdlq_ap.a"
  "libdlq_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
