file(REMOVE_RECURSE
  "libdlq_ap.a"
)
