# Empty dependencies file for dlq_ap.
# This may be replaced when dependencies are built.
