
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/Bdh.cpp" "src/baselines/CMakeFiles/dlq_baselines.dir/Bdh.cpp.o" "gcc" "src/baselines/CMakeFiles/dlq_baselines.dir/Bdh.cpp.o.d"
  "/root/repo/src/baselines/Okn.cpp" "src/baselines/CMakeFiles/dlq_baselines.dir/Okn.cpp.o" "gcc" "src/baselines/CMakeFiles/dlq_baselines.dir/Okn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classify/CMakeFiles/dlq_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/dlq_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/dlq_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dlq_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dlq_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/dlq_cfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
