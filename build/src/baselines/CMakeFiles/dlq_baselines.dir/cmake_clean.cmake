file(REMOVE_RECURSE
  "CMakeFiles/dlq_baselines.dir/Bdh.cpp.o"
  "CMakeFiles/dlq_baselines.dir/Bdh.cpp.o.d"
  "CMakeFiles/dlq_baselines.dir/Okn.cpp.o"
  "CMakeFiles/dlq_baselines.dir/Okn.cpp.o.d"
  "libdlq_baselines.a"
  "libdlq_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
