file(REMOVE_RECURSE
  "libdlq_baselines.a"
)
