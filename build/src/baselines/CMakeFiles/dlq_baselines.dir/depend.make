# Empty dependencies file for dlq_baselines.
# This may be replaced when dependencies are built.
