file(REMOVE_RECURSE
  "CMakeFiles/dlq_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/dlq_cfg.dir/Cfg.cpp.o.d"
  "libdlq_cfg.a"
  "libdlq_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
