file(REMOVE_RECURSE
  "libdlq_cfg.a"
)
