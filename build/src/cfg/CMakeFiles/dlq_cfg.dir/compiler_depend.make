# Empty compiler generated dependencies file for dlq_cfg.
# This may be replaced when dependencies are built.
