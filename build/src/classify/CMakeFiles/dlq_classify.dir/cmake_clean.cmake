file(REMOVE_RECURSE
  "CMakeFiles/dlq_classify.dir/Delinquency.cpp.o"
  "CMakeFiles/dlq_classify.dir/Delinquency.cpp.o.d"
  "CMakeFiles/dlq_classify.dir/Heuristic.cpp.o"
  "CMakeFiles/dlq_classify.dir/Heuristic.cpp.o.d"
  "CMakeFiles/dlq_classify.dir/Trainer.cpp.o"
  "CMakeFiles/dlq_classify.dir/Trainer.cpp.o.d"
  "libdlq_classify.a"
  "libdlq_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
