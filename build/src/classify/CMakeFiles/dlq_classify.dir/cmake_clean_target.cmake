file(REMOVE_RECURSE
  "libdlq_classify.a"
)
