# Empty compiler generated dependencies file for dlq_classify.
# This may be replaced when dependencies are built.
