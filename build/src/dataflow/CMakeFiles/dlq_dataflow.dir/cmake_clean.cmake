file(REMOVE_RECURSE
  "CMakeFiles/dlq_dataflow.dir/Liveness.cpp.o"
  "CMakeFiles/dlq_dataflow.dir/Liveness.cpp.o.d"
  "CMakeFiles/dlq_dataflow.dir/ReachingDefs.cpp.o"
  "CMakeFiles/dlq_dataflow.dir/ReachingDefs.cpp.o.d"
  "libdlq_dataflow.a"
  "libdlq_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
