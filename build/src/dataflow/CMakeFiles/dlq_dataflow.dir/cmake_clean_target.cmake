file(REMOVE_RECURSE
  "libdlq_dataflow.a"
)
