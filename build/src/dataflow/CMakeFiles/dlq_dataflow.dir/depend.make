# Empty dependencies file for dlq_dataflow.
# This may be replaced when dependencies are built.
