file(REMOVE_RECURSE
  "CMakeFiles/dlq_freq.dir/StaticFreq.cpp.o"
  "CMakeFiles/dlq_freq.dir/StaticFreq.cpp.o.d"
  "libdlq_freq.a"
  "libdlq_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
