file(REMOVE_RECURSE
  "libdlq_freq.a"
)
