# Empty compiler generated dependencies file for dlq_freq.
# This may be replaced when dependencies are built.
