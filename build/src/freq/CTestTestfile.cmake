# CMake generated Testfile for 
# Source directory: /root/repo/src/freq
# Build directory: /root/repo/build/src/freq
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
