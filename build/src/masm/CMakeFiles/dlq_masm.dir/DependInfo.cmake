
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/masm/Module.cpp" "src/masm/CMakeFiles/dlq_masm.dir/Module.cpp.o" "gcc" "src/masm/CMakeFiles/dlq_masm.dir/Module.cpp.o.d"
  "/root/repo/src/masm/ObjectFile.cpp" "src/masm/CMakeFiles/dlq_masm.dir/ObjectFile.cpp.o" "gcc" "src/masm/CMakeFiles/dlq_masm.dir/ObjectFile.cpp.o.d"
  "/root/repo/src/masm/Opcode.cpp" "src/masm/CMakeFiles/dlq_masm.dir/Opcode.cpp.o" "gcc" "src/masm/CMakeFiles/dlq_masm.dir/Opcode.cpp.o.d"
  "/root/repo/src/masm/Parser.cpp" "src/masm/CMakeFiles/dlq_masm.dir/Parser.cpp.o" "gcc" "src/masm/CMakeFiles/dlq_masm.dir/Parser.cpp.o.d"
  "/root/repo/src/masm/Printer.cpp" "src/masm/CMakeFiles/dlq_masm.dir/Printer.cpp.o" "gcc" "src/masm/CMakeFiles/dlq_masm.dir/Printer.cpp.o.d"
  "/root/repo/src/masm/Register.cpp" "src/masm/CMakeFiles/dlq_masm.dir/Register.cpp.o" "gcc" "src/masm/CMakeFiles/dlq_masm.dir/Register.cpp.o.d"
  "/root/repo/src/masm/TypeInfo.cpp" "src/masm/CMakeFiles/dlq_masm.dir/TypeInfo.cpp.o" "gcc" "src/masm/CMakeFiles/dlq_masm.dir/TypeInfo.cpp.o.d"
  "/root/repo/src/masm/Verifier.cpp" "src/masm/CMakeFiles/dlq_masm.dir/Verifier.cpp.o" "gcc" "src/masm/CMakeFiles/dlq_masm.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dlq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
