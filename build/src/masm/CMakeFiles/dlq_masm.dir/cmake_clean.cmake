file(REMOVE_RECURSE
  "CMakeFiles/dlq_masm.dir/Module.cpp.o"
  "CMakeFiles/dlq_masm.dir/Module.cpp.o.d"
  "CMakeFiles/dlq_masm.dir/ObjectFile.cpp.o"
  "CMakeFiles/dlq_masm.dir/ObjectFile.cpp.o.d"
  "CMakeFiles/dlq_masm.dir/Opcode.cpp.o"
  "CMakeFiles/dlq_masm.dir/Opcode.cpp.o.d"
  "CMakeFiles/dlq_masm.dir/Parser.cpp.o"
  "CMakeFiles/dlq_masm.dir/Parser.cpp.o.d"
  "CMakeFiles/dlq_masm.dir/Printer.cpp.o"
  "CMakeFiles/dlq_masm.dir/Printer.cpp.o.d"
  "CMakeFiles/dlq_masm.dir/Register.cpp.o"
  "CMakeFiles/dlq_masm.dir/Register.cpp.o.d"
  "CMakeFiles/dlq_masm.dir/TypeInfo.cpp.o"
  "CMakeFiles/dlq_masm.dir/TypeInfo.cpp.o.d"
  "CMakeFiles/dlq_masm.dir/Verifier.cpp.o"
  "CMakeFiles/dlq_masm.dir/Verifier.cpp.o.d"
  "libdlq_masm.a"
  "libdlq_masm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_masm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
