file(REMOVE_RECURSE
  "libdlq_masm.a"
)
