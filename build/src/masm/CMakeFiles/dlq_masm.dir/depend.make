# Empty dependencies file for dlq_masm.
# This may be replaced when dependencies are built.
