
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcc/CodeGen.cpp" "src/mcc/CMakeFiles/dlq_mcc.dir/CodeGen.cpp.o" "gcc" "src/mcc/CMakeFiles/dlq_mcc.dir/CodeGen.cpp.o.d"
  "/root/repo/src/mcc/Compiler.cpp" "src/mcc/CMakeFiles/dlq_mcc.dir/Compiler.cpp.o" "gcc" "src/mcc/CMakeFiles/dlq_mcc.dir/Compiler.cpp.o.d"
  "/root/repo/src/mcc/Frontend.cpp" "src/mcc/CMakeFiles/dlq_mcc.dir/Frontend.cpp.o" "gcc" "src/mcc/CMakeFiles/dlq_mcc.dir/Frontend.cpp.o.d"
  "/root/repo/src/mcc/Lexer.cpp" "src/mcc/CMakeFiles/dlq_mcc.dir/Lexer.cpp.o" "gcc" "src/mcc/CMakeFiles/dlq_mcc.dir/Lexer.cpp.o.d"
  "/root/repo/src/mcc/Types.cpp" "src/mcc/CMakeFiles/dlq_mcc.dir/Types.cpp.o" "gcc" "src/mcc/CMakeFiles/dlq_mcc.dir/Types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/masm/CMakeFiles/dlq_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dlq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
