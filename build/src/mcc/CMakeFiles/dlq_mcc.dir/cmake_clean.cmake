file(REMOVE_RECURSE
  "CMakeFiles/dlq_mcc.dir/CodeGen.cpp.o"
  "CMakeFiles/dlq_mcc.dir/CodeGen.cpp.o.d"
  "CMakeFiles/dlq_mcc.dir/Compiler.cpp.o"
  "CMakeFiles/dlq_mcc.dir/Compiler.cpp.o.d"
  "CMakeFiles/dlq_mcc.dir/Frontend.cpp.o"
  "CMakeFiles/dlq_mcc.dir/Frontend.cpp.o.d"
  "CMakeFiles/dlq_mcc.dir/Lexer.cpp.o"
  "CMakeFiles/dlq_mcc.dir/Lexer.cpp.o.d"
  "CMakeFiles/dlq_mcc.dir/Types.cpp.o"
  "CMakeFiles/dlq_mcc.dir/Types.cpp.o.d"
  "libdlq_mcc.a"
  "libdlq_mcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_mcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
