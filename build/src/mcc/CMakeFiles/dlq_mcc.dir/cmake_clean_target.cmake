file(REMOVE_RECURSE
  "libdlq_mcc.a"
)
