# Empty dependencies file for dlq_mcc.
# This may be replaced when dependencies are built.
