file(REMOVE_RECURSE
  "CMakeFiles/dlq_metrics.dir/Metrics.cpp.o"
  "CMakeFiles/dlq_metrics.dir/Metrics.cpp.o.d"
  "libdlq_metrics.a"
  "libdlq_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
