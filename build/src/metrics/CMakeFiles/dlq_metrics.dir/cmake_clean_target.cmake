file(REMOVE_RECURSE
  "libdlq_metrics.a"
)
