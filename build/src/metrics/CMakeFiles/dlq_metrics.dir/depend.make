# Empty dependencies file for dlq_metrics.
# This may be replaced when dependencies are built.
