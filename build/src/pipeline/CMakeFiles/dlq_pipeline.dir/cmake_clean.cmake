file(REMOVE_RECURSE
  "CMakeFiles/dlq_pipeline.dir/Pipeline.cpp.o"
  "CMakeFiles/dlq_pipeline.dir/Pipeline.cpp.o.d"
  "libdlq_pipeline.a"
  "libdlq_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
