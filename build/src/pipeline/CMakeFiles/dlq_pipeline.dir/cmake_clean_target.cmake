file(REMOVE_RECURSE
  "libdlq_pipeline.a"
)
