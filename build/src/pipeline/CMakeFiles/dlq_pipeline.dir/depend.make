# Empty dependencies file for dlq_pipeline.
# This may be replaced when dependencies are built.
