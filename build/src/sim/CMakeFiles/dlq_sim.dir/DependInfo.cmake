
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Cache.cpp" "src/sim/CMakeFiles/dlq_sim.dir/Cache.cpp.o" "gcc" "src/sim/CMakeFiles/dlq_sim.dir/Cache.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/sim/CMakeFiles/dlq_sim.dir/Machine.cpp.o" "gcc" "src/sim/CMakeFiles/dlq_sim.dir/Machine.cpp.o.d"
  "/root/repo/src/sim/Memory.cpp" "src/sim/CMakeFiles/dlq_sim.dir/Memory.cpp.o" "gcc" "src/sim/CMakeFiles/dlq_sim.dir/Memory.cpp.o.d"
  "/root/repo/src/sim/Profile.cpp" "src/sim/CMakeFiles/dlq_sim.dir/Profile.cpp.o" "gcc" "src/sim/CMakeFiles/dlq_sim.dir/Profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/dlq_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/dlq_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dlq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
