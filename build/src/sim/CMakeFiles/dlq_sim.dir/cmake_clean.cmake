file(REMOVE_RECURSE
  "CMakeFiles/dlq_sim.dir/Cache.cpp.o"
  "CMakeFiles/dlq_sim.dir/Cache.cpp.o.d"
  "CMakeFiles/dlq_sim.dir/Machine.cpp.o"
  "CMakeFiles/dlq_sim.dir/Machine.cpp.o.d"
  "CMakeFiles/dlq_sim.dir/Memory.cpp.o"
  "CMakeFiles/dlq_sim.dir/Memory.cpp.o.d"
  "CMakeFiles/dlq_sim.dir/Profile.cpp.o"
  "CMakeFiles/dlq_sim.dir/Profile.cpp.o.d"
  "libdlq_sim.a"
  "libdlq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
