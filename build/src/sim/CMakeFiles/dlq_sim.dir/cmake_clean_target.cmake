file(REMOVE_RECURSE
  "libdlq_sim.a"
)
