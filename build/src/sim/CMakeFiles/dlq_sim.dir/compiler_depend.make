# Empty compiler generated dependencies file for dlq_sim.
# This may be replaced when dependencies are built.
