file(REMOVE_RECURSE
  "CMakeFiles/dlq_support.dir/Arena.cpp.o"
  "CMakeFiles/dlq_support.dir/Arena.cpp.o.d"
  "CMakeFiles/dlq_support.dir/Format.cpp.o"
  "CMakeFiles/dlq_support.dir/Format.cpp.o.d"
  "CMakeFiles/dlq_support.dir/Rng.cpp.o"
  "CMakeFiles/dlq_support.dir/Rng.cpp.o.d"
  "CMakeFiles/dlq_support.dir/Table.cpp.o"
  "CMakeFiles/dlq_support.dir/Table.cpp.o.d"
  "libdlq_support.a"
  "libdlq_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
