file(REMOVE_RECURSE
  "libdlq_support.a"
)
