# Empty dependencies file for dlq_support.
# This may be replaced when dependencies are built.
