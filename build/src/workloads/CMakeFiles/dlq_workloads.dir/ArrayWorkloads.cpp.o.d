src/workloads/CMakeFiles/dlq_workloads.dir/ArrayWorkloads.cpp.o: \
 /root/repo/src/workloads/ArrayWorkloads.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/Sources.h
