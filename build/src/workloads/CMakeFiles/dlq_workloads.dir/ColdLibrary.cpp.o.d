src/workloads/CMakeFiles/dlq_workloads.dir/ColdLibrary.cpp.o: \
 /root/repo/src/workloads/ColdLibrary.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/Sources.h
