
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ArrayWorkloads.cpp" "src/workloads/CMakeFiles/dlq_workloads.dir/ArrayWorkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/dlq_workloads.dir/ArrayWorkloads.cpp.o.d"
  "/root/repo/src/workloads/ColdLibrary.cpp" "src/workloads/CMakeFiles/dlq_workloads.dir/ColdLibrary.cpp.o" "gcc" "src/workloads/CMakeFiles/dlq_workloads.dir/ColdLibrary.cpp.o.d"
  "/root/repo/src/workloads/MixedWorkloads.cpp" "src/workloads/CMakeFiles/dlq_workloads.dir/MixedWorkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/dlq_workloads.dir/MixedWorkloads.cpp.o.d"
  "/root/repo/src/workloads/PointerWorkloads.cpp" "src/workloads/CMakeFiles/dlq_workloads.dir/PointerWorkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/dlq_workloads.dir/PointerWorkloads.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/dlq_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/dlq_workloads.dir/Registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dlq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
