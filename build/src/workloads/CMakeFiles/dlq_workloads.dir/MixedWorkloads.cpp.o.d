src/workloads/CMakeFiles/dlq_workloads.dir/MixedWorkloads.cpp.o: \
 /root/repo/src/workloads/MixedWorkloads.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/Sources.h
