src/workloads/CMakeFiles/dlq_workloads.dir/PointerWorkloads.cpp.o: \
 /root/repo/src/workloads/PointerWorkloads.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/Sources.h
