file(REMOVE_RECURSE
  "CMakeFiles/dlq_workloads.dir/ArrayWorkloads.cpp.o"
  "CMakeFiles/dlq_workloads.dir/ArrayWorkloads.cpp.o.d"
  "CMakeFiles/dlq_workloads.dir/ColdLibrary.cpp.o"
  "CMakeFiles/dlq_workloads.dir/ColdLibrary.cpp.o.d"
  "CMakeFiles/dlq_workloads.dir/MixedWorkloads.cpp.o"
  "CMakeFiles/dlq_workloads.dir/MixedWorkloads.cpp.o.d"
  "CMakeFiles/dlq_workloads.dir/PointerWorkloads.cpp.o"
  "CMakeFiles/dlq_workloads.dir/PointerWorkloads.cpp.o.d"
  "CMakeFiles/dlq_workloads.dir/Registry.cpp.o"
  "CMakeFiles/dlq_workloads.dir/Registry.cpp.o.d"
  "libdlq_workloads.a"
  "libdlq_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlq_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
