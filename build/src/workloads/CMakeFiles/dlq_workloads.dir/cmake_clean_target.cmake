file(REMOVE_RECURSE
  "libdlq_workloads.a"
)
