# Empty compiler generated dependencies file for dlq_workloads.
# This may be replaced when dependencies are built.
