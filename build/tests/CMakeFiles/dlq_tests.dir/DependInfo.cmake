
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ApTest.cpp" "tests/CMakeFiles/dlq_tests.dir/ApTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/ApTest.cpp.o.d"
  "/root/repo/tests/BaselinesTest.cpp" "tests/CMakeFiles/dlq_tests.dir/BaselinesTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/BaselinesTest.cpp.o.d"
  "/root/repo/tests/CfgTest.cpp" "tests/CMakeFiles/dlq_tests.dir/CfgTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/CfgTest.cpp.o.d"
  "/root/repo/tests/ClassifyTest.cpp" "tests/CMakeFiles/dlq_tests.dir/ClassifyTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/ClassifyTest.cpp.o.d"
  "/root/repo/tests/ColdLibraryTest.cpp" "tests/CMakeFiles/dlq_tests.dir/ColdLibraryTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/ColdLibraryTest.cpp.o.d"
  "/root/repo/tests/DataflowTest.cpp" "tests/CMakeFiles/dlq_tests.dir/DataflowTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/DataflowTest.cpp.o.d"
  "/root/repo/tests/FreqTest.cpp" "tests/CMakeFiles/dlq_tests.dir/FreqTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/FreqTest.cpp.o.d"
  "/root/repo/tests/FuzzTest.cpp" "tests/CMakeFiles/dlq_tests.dir/FuzzTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/FuzzTest.cpp.o.d"
  "/root/repo/tests/MachineIsaTest.cpp" "tests/CMakeFiles/dlq_tests.dir/MachineIsaTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/MachineIsaTest.cpp.o.d"
  "/root/repo/tests/MasmTest.cpp" "tests/CMakeFiles/dlq_tests.dir/MasmTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/MasmTest.cpp.o.d"
  "/root/repo/tests/MccSemanticsTest.cpp" "tests/CMakeFiles/dlq_tests.dir/MccSemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/MccSemanticsTest.cpp.o.d"
  "/root/repo/tests/MccTest.cpp" "tests/CMakeFiles/dlq_tests.dir/MccTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/MccTest.cpp.o.d"
  "/root/repo/tests/MetricsTest.cpp" "tests/CMakeFiles/dlq_tests.dir/MetricsTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/MetricsTest.cpp.o.d"
  "/root/repo/tests/ObjectFileTest.cpp" "tests/CMakeFiles/dlq_tests.dir/ObjectFileTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/ObjectFileTest.cpp.o.d"
  "/root/repo/tests/OptimizedCodeTest.cpp" "tests/CMakeFiles/dlq_tests.dir/OptimizedCodeTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/OptimizedCodeTest.cpp.o.d"
  "/root/repo/tests/PipelineTest.cpp" "tests/CMakeFiles/dlq_tests.dir/PipelineTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/PipelineTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/dlq_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/SimTest.cpp" "tests/CMakeFiles/dlq_tests.dir/SimTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/SimTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/dlq_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TestHelpers.cpp" "tests/CMakeFiles/dlq_tests.dir/TestHelpers.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/TestHelpers.cpp.o.d"
  "/root/repo/tests/VerifierTest.cpp" "tests/CMakeFiles/dlq_tests.dir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/VerifierTest.cpp.o.d"
  "/root/repo/tests/WorkloadsTest.cpp" "tests/CMakeFiles/dlq_tests.dir/WorkloadsTest.cpp.o" "gcc" "tests/CMakeFiles/dlq_tests.dir/WorkloadsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/freq/CMakeFiles/dlq_freq.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/dlq_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dlq_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mcc/CMakeFiles/dlq_mcc.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dlq_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dlq_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/dlq_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/dlq_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dlq_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/dlq_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/dlq_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dlq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
