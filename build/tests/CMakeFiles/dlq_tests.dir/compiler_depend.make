# Empty compiler generated dependencies file for dlq_tests.
# This may be replaced when dependencies are built.
