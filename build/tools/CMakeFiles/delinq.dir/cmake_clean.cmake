file(REMOVE_RECURSE
  "CMakeFiles/delinq.dir/delinq.cpp.o"
  "CMakeFiles/delinq.dir/delinq.cpp.o.d"
  "delinq"
  "delinq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delinq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
