# Empty compiler generated dependencies file for delinq.
# This may be replaced when dependencies are built.
