//===- examples/asm_analyze.cpp - post-compilation analysis of assembly ----------//
//
// The paper's deployment mode: the analysis runs on *assembly*, decoupled
// from the compiler ("this loose coupling with the compiler allows for the
// use of disassemblers in place of the compiler"). This example reads a
// MIPS-like .s file (or a built-in sample when no path is given),
// reconstructs the CFG and reaching definitions, and reports every load's
// address patterns, classes and phi score.
//
// Run:  ./asm_analyze [file.s]
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "classify/Delinquency.h"
#include "masm/Parser.h"
#include "masm/Printer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace dlq;

static const char *Sample = R"(
        .data
table:  .space 4096
        .gvar table 4096 array noptr
        .text
        .globl walk
walk:
        addi $sp, $sp, -16
        sw   $ra, 12($sp)
        sw   $a0, 0($sp)
Lloop:
        lw   $t0, 0($sp)          # p = current node
        beq  $t0, $zero, Ldone
        lw   $t1, 0($t0)          # p->value
        sll  $t2, $t1, 2
        la   $t3, table
        add  $t3, $t3, $t2
        lw   $t4, 0($t3)          # table[p->value]
        lw   $t5, 4($t0)          # p->next
        sw   $t5, 0($sp)
        j    Lloop
Ldone:
        lw   $ra, 12($sp)
        addi $sp, $sp, 16
        jr   $ra
        .globl main
main:
        li   $a0, 0
        jal  walk
        jr   $ra
)";

int main(int Argc, char **Argv) {
  std::string Source;
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Argv[1]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  } else {
    Source = Sample;
    std::printf("(no input file; analyzing the built-in sample)\n\n");
  }

  masm::ParseResult PR = masm::parseAssembly(Source);
  if (!PR.ok()) {
    std::fprintf(stderr, "parse errors:\n%s", PR.diagText().c_str());
    return 1;
  }

  // Per-function structure report.
  for (const masm::Function &F : PR.M->functions()) {
    cfg::Cfg G(F);
    std::printf("function %s: %zu instructions, %zu basic blocks\n",
                F.name().c_str(), F.size(), G.numBlocks());
    std::printf("%s", G.dump().c_str());
  }

  // Load classification.
  classify::ModuleAnalysis Analysis(*PR.M);
  classify::HeuristicOptions Opts;
  Opts.UseFreqClasses = false; // No profile for raw assembly input.
  auto Scores = Analysis.scores(Opts, nullptr);

  std::printf("\nloads:\n");
  for (const auto &[Ref, Patterns] : Analysis.loadPatterns()) {
    const masm::Function &F = PR.M->functions()[Ref.FuncIdx];
    double Phi = Scores.at(Ref);
    std::printf("  %s+%-3u %-24s phi=%+.2f%s\n", F.name().c_str(),
                Ref.InstrIdx,
                masm::printInstr(F.instrs()[Ref.InstrIdx]).c_str(), Phi,
                classify::isPossiblyDelinquent(Phi, Opts) ? "  <= delinquent"
                                                          : "");
    for (const ap::ApNode *P : Patterns)
      std::printf("        %s\n", ap::printPattern(P).c_str());
  }
  return 0;
}
