//===- examples/pointer_chasing.cpp - prefetch-targeting scenario ----------------//
//
// The scenario from the paper's introduction: a prefetcher wants to know
// which loads to instrument *before* the program runs. We take the
// 181.mcf-style pointer-chasing workload, make the static prediction, then
// simulate to see how much of the real miss traffic the predicted loads
// carry — and what instrumenting every load instead would have cost.
//
// Run:  ./pointer_chasing
//
//===----------------------------------------------------------------------===//

#include "masm/Printer.h"
#include "pipeline/Pipeline.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace dlq;
using namespace dlq::pipeline;

int main() {
  Driver D;
  const char *Bench = "mcf_like";
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  // Static prediction first (no profile: the AG1..AG7 form).
  const Compiled &C = D.compiled(Bench, InputSel::Input1, 0);
  classify::HeuristicOptions Static;
  Static.UseFreqClasses = false;
  auto Delta = C.Analysis->delinquentSet(Static, nullptr);
  std::printf("static prediction: instrument %zu of %zu loads (%.1f%%)\n\n",
              Delta.size(), C.lambda(),
              100.0 * Delta.size() / C.lambda());

  // Now the ground truth.
  GroundTruth G = D.groundTruth(Bench, InputSel::Input1, 0, Cache);
  metrics::EvalResult E = metrics::evaluate(C.lambda(), Delta, G.Stats);
  std::printf("after simulating %llu instructions under %s:\n",
              static_cast<unsigned long long>(G.R->InstrsExecuted),
              Cache.describe().c_str());
  std::printf("  predicted loads caused %llu of %llu load misses "
              "(rho = %.1f%%)\n\n",
              static_cast<unsigned long long>(E.CoveredMisses),
              static_cast<unsigned long long>(E.TotalMisses),
              100.0 * E.rho());

  // Show the top-5 missing loads and whether the prediction caught them.
  std::vector<std::pair<uint64_t, masm::InstrRef>> Ranked;
  for (const auto &[Ref, S] : G.Stats)
    if (S.Misses != 0)
      Ranked.push_back({S.Misses, Ref});
  std::sort(Ranked.rbegin(), Ranked.rend());

  std::printf("top miss-producing loads:\n");
  for (size_t I = 0; I != Ranked.size() && I != 5; ++I) {
    const auto &[Misses, Ref] = Ranked[I];
    const masm::Function &F = C.M->functions()[Ref.FuncIdx];
    const auto &Patterns = C.Analysis->loadPatterns().at(Ref);
    std::printf("  %8llu misses  %s+%-4u %-24s pattern %s  [%s]\n",
                static_cast<unsigned long long>(Misses), F.name().c_str(),
                Ref.InstrIdx,
                masm::printInstr(F.instrs()[Ref.InstrIdx]).c_str(),
                ap::printPattern(Patterns.front()).c_str(),
                Delta.count(Ref) ? "predicted" : "MISSED");
  }

  // The cost of not predicting: dynamic executions of instrumented loads.
  uint64_t FlaggedExecs = 0, AllExecs = 0;
  for (const auto &[Ref, S] : G.Stats) {
    AllExecs += S.Execs;
    if (Delta.count(Ref))
      FlaggedExecs += S.Execs;
  }
  std::printf("\nprefetch overhead proxy: instrumented loads execute %.1f%% "
              "of all load executions\n(instrumenting every load would be "
              "100%%; the paper's point is containing this overhead)\n",
              100.0 * FlaggedExecs / AllExecs);
  return 0;
}
