//===- examples/quickstart.cpp - the 60-second tour ------------------------------//
//
// Compiles a small C program, prints the generated MIPS-like assembly, the
// address pattern of every load, the phi score each gets from the Table 5
// weights, and the resulting possibly-delinquent set — the whole pipeline of
// the paper on one screen.
//
// Run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "classify/Delinquency.h"
#include "masm/Printer.h"
#include "classify/Trainer.h"
#include "mcc/Compiler.h"

#include <cstdio>

using namespace dlq;

static const char *Program = R"(
struct Node { int value; struct Node *next; };

struct Node *head;
int table[1024];

int sum_list() {
  struct Node *n;
  int sum;
  sum = 0;
  for (n = head; n != 0; n = n->next)
    sum = sum + n->value + table[n->value & 1023];
  return sum;
}

int main() {
  return sum_list();
}
)";

int main() {
  // 1. Compile (the paper uses GCC-for-MIPS; we use the bundled MinC
  //    compiler, unoptimized, as in the paper's training setup).
  mcc::CompileResult CR = mcc::compile(Program);
  if (!CR.ok()) {
    std::fprintf(stderr, "compile error:\n%s", CR.Errors.c_str());
    return 1;
  }
  std::printf("--- generated assembly ---------------------------------\n%s\n",
              masm::printModule(*CR.M).c_str());

  // 2. Static analysis: CFG + reaching definitions + address patterns.
  classify::ModuleAnalysis Analysis(*CR.M);

  // 3. Score every load with the paper's Table 5 weights. Without a profile
  //    the heuristic runs in its fully static AG1..AG7 form.
  classify::HeuristicOptions Opts;
  Opts.UseFreqClasses = false;
  auto Scores = Analysis.scores(Opts, nullptr);

  std::printf("--- loads, address patterns, phi scores ----------------\n");
  for (const auto &[Ref, Patterns] : Analysis.loadPatterns()) {
    const masm::Function &F = CR.M->functions()[Ref.FuncIdx];
    std::printf("%s+%u: %s\n", F.name().c_str(), Ref.InstrIdx,
                masm::printInstr(F.instrs()[Ref.InstrIdx]).c_str());
    for (const ap::ApNode *P : Patterns) {
      std::printf("    pattern %-28s classes:",
                  ap::printPattern(P).c_str());
      for (const std::string &L : classify::aggClassLabels(P))
        std::printf(" %s", L.c_str());
      std::printf("\n");
    }
    double Phi = Scores.at(Ref);
    std::printf("    phi = %+.2f  ->  %s\n", Phi,
                classify::isPossiblyDelinquent(Phi, Opts)
                    ? "POSSIBLY DELINQUENT"
                    : "not delinquent");
  }

  auto Delta = Analysis.delinquentSet(Opts, nullptr);
  std::printf("\n%zu of %zu loads flagged as possibly delinquent "
              "(delta = %.2f)\n",
              Delta.size(), Analysis.loadPatterns().size(), Opts.Delta);
  std::printf("Expect the n->next / n->value dereferences and the scaled\n"
              "table[] gather to be flagged, and the plain stack reloads "
              "not to be.\n");
  return 0;
}
