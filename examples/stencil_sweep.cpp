//===- examples/stencil_sweep.cpp - threshold and cache sweeps -------------------//
//
// Sensitivity study on an array-dominated workload (the 101.tomcatv-style
// stencil): how the delinquency threshold delta trades precision for
// coverage, and how stable the predicted set's coverage is across cache
// sizes — the Section 8.3 / 8.6 experiments in miniature, on one program.
//
// Run:  ./stencil_sweep
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace dlq;
using namespace dlq::pipeline;

int main() {
  Driver D;
  const char *Bench = "tomcatv_like";

  std::printf("workload: %s (%s)\n\n", Bench,
              workloads::findWorkload(Bench)->PaperAnalog.c_str());

  // Sweep delta at the baseline cache.
  {
    TextTable T({"delta", "flagged loads", "pi", "rho"});
    sim::CacheConfig Cache = sim::CacheConfig::baseline();
    for (double Delta : {0.05, 0.10, 0.20, 0.30, 0.40, 0.60}) {
      classify::HeuristicOptions Opts;
      Opts.Delta = Delta;
      HeuristicEval E = D.evalHeuristic(Bench, InputSel::Input1, 0, Cache,
                                        Opts);
      T.addRow({formatString("%.2f", Delta), std::to_string(E.E.DeltaSize),
                formatPercent(E.E.pi()), formatPercent(E.E.rho())});
    }
    std::printf("--- delta sweep (8 KB cache) ---\n%s\n",
                T.render().c_str());
  }

  // Sweep the cache size at the default threshold.
  {
    TextTable T({"cache", "load misses", "pi", "rho"});
    classify::HeuristicOptions Opts;
    for (uint32_t Kb : {4u, 8u, 16u, 32u, 64u}) {
      sim::CacheConfig Cache{Kb * 1024, 4, 32};
      GroundTruth G = D.groundTruth(Bench, InputSel::Input1, 0, Cache);
      HeuristicEval E = D.evalHeuristic(Bench, InputSel::Input1, 0, Cache,
                                        Opts);
      T.addRow({Cache.describe(),
                formatWithCommas(G.TotalLoadMisses),
                formatPercent(E.E.pi()), formatPercent(E.E.rho())});
    }
    std::printf("--- cache-size sweep (delta = 0.10) ---\n%s\n",
                T.render().c_str());
  }

  std::printf("the flagged set barely moves while absolute miss counts "
              "change by orders of magnitude:\nthe prediction names the "
              "loads, the cache decides how often they miss.\n");
  return 0;
}
