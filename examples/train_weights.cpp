//===- examples/train_weights.cpp - retraining the heuristic ---------------------//
//
// Reruns the paper's Section 7 training procedure end to end: simulate the
// eleven training benchmarks, accumulate per-class miss statistics, derive
// a fresh weight set (m/n means for positive classes, the trimmed-mean
// negation for AG8/AG9), and compare both weight sets on the seven held-out
// benchmarks.
//
// Run:  ./train_weights
//
//===----------------------------------------------------------------------===//

#include "classify/Trainer.h"
#include "pipeline/Pipeline.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>
#include <set>

using namespace dlq;
using namespace dlq::pipeline;
using classify::AggClass;

int main() {
  Driver D;
  // The paper trains on its 32 KB split-L1 configuration; with this suite's
  // scaled-down working sets, the 8 KB evaluation baseline exposes the same
  // per-class miss contrasts the trainer needs (a 32 KB cache absorbs most
  // misses here, leaving too little signal to clear the r >= 1/20 rule).
  sim::CacheConfig Cache = sim::CacheConfig::baseline();

  // Phase 1: training observations (Section 6's "training phase").
  std::printf("simulating the %zu training benchmarks under %s...\n",
              workloads::trainingSetNames().size(),
              Cache.describe().c_str());
  classify::ClassTrainer Trainer;
  for (const std::string &Name : workloads::trainingSetNames()) {
    GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Cache);
    const Compiled &C = D.compiled(Name, InputSel::Input1, 0);

    classify::BenchmarkObservation Obs;
    Obs.Name = Name;
    Obs.TotalMisses = G.TotalLoadMisses;
    for (const auto &[Ref, Pats] : C.Analysis->loadPatterns()) {
      std::set<std::string> Labels;
      for (const ap::ApNode *P : Pats)
        for (const std::string &L : classify::aggClassLabels(P))
          Labels.insert(L);
      auto It = G.Stats.find(Ref);
      if (It == G.Stats.end())
        continue;
      for (const std::string &L : Labels) {
        Obs.PerClass[L].Execs += It->second.Execs;
        Obs.PerClass[L].Misses += It->second.Misses;
      }
    }
    Trainer.addObservation(std::move(Obs));
  }

  classify::HeuristicWeights Trained = Trainer.deriveWeights();
  classify::HeuristicWeights Paper;

  TextTable WT({"class", "feature", "trained", "paper"});
  for (unsigned K = 0; K != classify::NumAggClasses; ++K) {
    AggClass C = static_cast<AggClass>(K);
    WT.addRow({std::string(classify::aggClassName(C)),
               std::string(classify::aggClassFeature(C)),
               formatString("%+.2f", Trained.of(C)),
               formatString("%+.2f", Paper.of(C))});
  }
  std::printf("\n--- derived weights ---\n%s\n", WT.render().c_str());

  // Phase 2: evaluate both weight sets on the held-out benchmarks.
  TextTable ET({"benchmark", "trained pi/rho", "paper pi/rho"});
  double Tp = 0, Tr = 0, Pp = 0, Pr = 0;
  unsigned N = 0;
  for (const std::string &Name : workloads::testSetNames()) {
    classify::HeuristicOptions TrainedOpts;
    TrainedOpts.Weights = Trained;
    classify::HeuristicOptions PaperOpts;

    HeuristicEval TE =
        D.evalHeuristic(Name, InputSel::Input1, 0, Cache, TrainedOpts);
    HeuristicEval PE =
        D.evalHeuristic(Name, InputSel::Input1, 0, Cache, PaperOpts);
    ET.addRow({Name,
               formatString("%s / %s", formatPercent(TE.E.pi()).c_str(),
                            formatPercent(TE.E.rho(), 0).c_str()),
               formatString("%s / %s", formatPercent(PE.E.pi()).c_str(),
                            formatPercent(PE.E.rho(), 0).c_str())});
    Tp += TE.E.pi();
    Tr += TE.E.rho();
    Pp += PE.E.pi();
    Pr += PE.E.rho();
    ++N;
  }
  ET.addRule();
  ET.addRow({"AVERAGE",
             formatString("%s / %s", formatPercent(Tp / N).c_str(),
                          formatPercent(Tr / N, 0).c_str()),
             formatString("%s / %s", formatPercent(Pp / N).c_str(),
                          formatPercent(Pr / N, 0).c_str())});
  std::printf("--- held-out evaluation ---\n%s\n", ET.render().c_str());
  std::printf("both weight sets should perform similarly: the signal is in\n"
              "the classes, not in the third decimal of the weights.\n");
  return 0;
}
