//===- absint/Absint.cpp --------------------------------------------------==//

#include "absint/Absint.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace dlq;
using namespace dlq::absint;
using namespace dlq::masm;

CallModel::~CallModel() = default;
InterprocInfo::~InterprocInfo() = default;

//===----------------------------------------------------------------------===//
// State lattice
//===----------------------------------------------------------------------===//

State State::entry() {
  State S;
  S.Reachable = true;
  for (unsigned R = 0; R != NumRegs; ++R)
    S.Regs[R] = AbsValue::entry(static_cast<Reg>(R));
  S.Regs[0] = AbsValue::constant(0);
  return S;
}

bool dlq::absint::operator==(const State &A, const State &B) {
  return A.Reachable == B.Reachable && A.Regs == B.Regs &&
         A.Written == B.Written && A.Words == B.Words;
}

State dlq::absint::joinState(const State &A, const State &B) {
  if (!A.Reachable)
    return B;
  if (!B.Reachable)
    return A;
  if (A == B)
    return A;
  State R;
  R.Reachable = true;
  for (unsigned I = 0; I != NumRegs; ++I)
    R.Regs[I] = join(A.Regs[I], B.Regs[I]);
  std::set_intersection(A.Written.begin(), A.Written.end(), B.Written.begin(),
                        B.Written.end(),
                        std::inserter(R.Written, R.Written.end()));
  for (const auto &[Off, V] : A.Words) {
    auto It = B.Words.find(Off);
    if (It == B.Words.end())
      continue;
    AbsValue J = join(V, It->second);
    if (!J.isTop())
      R.Words.emplace(Off, J);
  }
  return R;
}

State dlq::absint::widenState(const State &Old, const State &New) {
  if (!Old.Reachable)
    return New;
  if (!New.Reachable)
    return Old;
  if (Old == New)
    return Old;
  State R;
  R.Reachable = true;
  for (unsigned I = 0; I != NumRegs; ++I)
    R.Regs[I] = widen(Old.Regs[I], New.Regs[I]);
  std::set_intersection(Old.Written.begin(), Old.Written.end(),
                        New.Written.begin(), New.Written.end(),
                        std::inserter(R.Written, R.Written.end()));
  for (const auto &[Off, V] : Old.Words) {
    auto It = New.Words.find(Off);
    if (It == New.Words.end())
      continue;
    AbsValue W = widen(V, It->second);
    if (!W.isTop())
      R.Words.emplace(Off, W);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Transfer function
//===----------------------------------------------------------------------===//

namespace {

/// 32-bit wrap of a host value, sign-extended back (simulator semantics).
int64_t wrap32(int64_t V) {
  return static_cast<int32_t>(static_cast<uint32_t>(V));
}

/// Folds a binary ALU op over two concrete 32-bit values.
int64_t foldAlu(Opcode Op, int64_t A64, int64_t B64) {
  int32_t A = static_cast<int32_t>(A64), B = static_cast<int32_t>(B64);
  uint32_t UA = static_cast<uint32_t>(A), UB = static_cast<uint32_t>(B);
  switch (Op) {
  case Opcode::Div:
    if (B == 0)
      return 0;
    if (A == INT32_MIN && B == -1)
      return INT32_MIN;
    return A / B;
  case Opcode::Rem:
    if (B == 0)
      return 0;
    if (A == INT32_MIN && B == -1)
      return 0;
    return A % B;
  case Opcode::And:
  case Opcode::Andi:
    return static_cast<int32_t>(UA & UB);
  case Opcode::Or:
  case Opcode::Ori:
    return static_cast<int32_t>(UA | UB);
  case Opcode::Xor:
  case Opcode::Xori:
    return static_cast<int32_t>(UA ^ UB);
  case Opcode::Nor:
    return static_cast<int32_t>(~(UA | UB));
  case Opcode::Slt:
  case Opcode::Slti:
    return A < B ? 1 : 0;
  case Opcode::Sltu:
  case Opcode::Sltiu:
    return UA < UB ? 1 : 0;
  case Opcode::Sllv:
  case Opcode::Sll:
    return static_cast<int32_t>(UA << (UB & 31));
  case Opcode::Srlv:
  case Opcode::Srl:
    return static_cast<int32_t>(UA >> (UB & 31));
  case Opcode::Srav:
  case Opcode::Sra:
    return A >> (UB & 31);
  default:
    return 0;
  }
}

AbsValue boolRange() {
  AbsValue V;
  V.Base = SymBase::none();
  V.Lo = 0;
  V.Hi = 1;
  V.Stride = 1;
  return V;
}

AbsValue rangeValue(int64_t Lo, int64_t Hi) {
  AbsValue V;
  V.Base = SymBase::none();
  V.Lo = Lo;
  V.Hi = Hi;
  V.Stride = 1;
  return V;
}

} // namespace

Interp::Interp(const cfg::Cfg &Graph, const cfg::LoopInfo &Loops, Options O)
    : G(Graph), LI(Loops), Opts(O) {
  In.resize(G.numBlocks());
}

void Interp::step(State &S, uint32_t InstrIdx) const {
  const Instr &I = G.function().instrs()[InstrIdx];
  switch (I.Op) {
  // Three-register ALU.
  case Opcode::Add:
    S.setReg(I.Rd, addValues(S.reg(I.Rs), S.reg(I.Rt)));
    return;
  case Opcode::Sub:
    S.setReg(I.Rd, subValues(S.reg(I.Rs), S.reg(I.Rt)));
    return;
  case Opcode::Mul:
    S.setReg(I.Rd, mulValues(S.reg(I.Rs), S.reg(I.Rt)));
    return;
  case Opcode::Sllv:
    S.setReg(I.Rd, shlValues(S.reg(I.Rs), S.reg(I.Rt)));
    return;
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Nor:
  case Opcode::Srlv:
  case Opcode::Srav: {
    AbsValue A = S.reg(I.Rs), B = S.reg(I.Rt);
    if (A.isConst() && B.isConst())
      S.setReg(I.Rd, AbsValue::constant(
                         foldAlu(I.Op, A.constValue(), B.constValue())));
    else
      S.setReg(I.Rd, AbsValue::top());
    return;
  }
  case Opcode::Slt:
  case Opcode::Sltu: {
    AbsValue A = S.reg(I.Rs), B = S.reg(I.Rt);
    if (A.isConst() && B.isConst())
      S.setReg(I.Rd, AbsValue::constant(
                         foldAlu(I.Op, A.constValue(), B.constValue())));
    else
      S.setReg(I.Rd, boolRange());
    return;
  }
  // Register-immediate ALU.
  case Opcode::Addi:
    S.setReg(I.Rd, addValues(S.reg(I.Rs), AbsValue::constant(I.Imm)));
    return;
  case Opcode::Sll:
    S.setReg(I.Rd, shlValues(S.reg(I.Rs), AbsValue::constant(I.Imm)));
    return;
  case Opcode::Andi: {
    AbsValue A = S.reg(I.Rs);
    if (A.isConst())
      S.setReg(I.Rd, AbsValue::constant(foldAlu(I.Op, A.constValue(), I.Imm)));
    else if (I.Imm >= 0)
      S.setReg(I.Rd, rangeValue(0, I.Imm)); // Masking bounds the result.
    else
      S.setReg(I.Rd, AbsValue::top());
    return;
  }
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Srl:
  case Opcode::Sra: {
    AbsValue A = S.reg(I.Rs);
    if (A.isConst())
      S.setReg(I.Rd, AbsValue::constant(foldAlu(I.Op, A.constValue(), I.Imm)));
    else
      S.setReg(I.Rd, AbsValue::top());
    return;
  }
  case Opcode::Slti:
  case Opcode::Sltiu: {
    AbsValue A = S.reg(I.Rs);
    if (A.isConst())
      S.setReg(I.Rd, AbsValue::constant(foldAlu(I.Op, A.constValue(), I.Imm)));
    else
      S.setReg(I.Rd, boolRange());
    return;
  }
  case Opcode::Lui:
    S.setReg(I.Rd, AbsValue::constant(wrap32(int64_t(I.Imm) << 16)));
    return;
  // Pseudo data movement.
  case Opcode::Li:
    S.setReg(I.Rd, AbsValue::constant(I.Imm));
    return;
  case Opcode::La: {
    uint32_t Addr = Opts.ModLayout ? Opts.ModLayout->globalAddress(I.Sym)
                                   : masm::Layout::InvalidAddress;
    if (Addr != masm::Layout::InvalidAddress)
      S.setReg(I.Rd, AbsValue::constant(int64_t(Addr) + I.Imm));
    else
      S.setReg(I.Rd, AbsValue::opaque(SymBase::loadVal(InstrIdx)));
    return;
  }
  case Opcode::Move:
    S.setReg(I.Rd, S.reg(I.Rs));
    return;
  // Loads.
  case Opcode::Lw: {
    AbsValue Addr = addValues(S.reg(I.Rs), AbsValue::constant(I.Imm));
    if (Addr.Base == SymBase::entryReg(Reg::SP) && Addr.isSingleton()) {
      auto It = S.Words.find(static_cast<int32_t>(Addr.Lo));
      if (It != S.Words.end()) {
        S.setReg(I.Rd, It->second);
        return;
      }
    }
    S.setReg(I.Rd, AbsValue::opaque(SymBase::loadVal(InstrIdx)));
    return;
  }
  case Opcode::Lb:
    S.setReg(I.Rd, rangeValue(-128, 127));
    return;
  case Opcode::Lbu:
    S.setReg(I.Rd, rangeValue(0, 255));
    return;
  case Opcode::Lh:
    S.setReg(I.Rd, rangeValue(-32768, 32767));
    return;
  case Opcode::Lhu:
    S.setReg(I.Rd, rangeValue(0, 65535));
    return;
  // Stores.
  case Opcode::Sw:
  case Opcode::Sh:
  case Opcode::Sb: {
    AbsValue Addr = addValues(S.reg(I.Rs), AbsValue::constant(I.Imm));
    unsigned Size = accessSize(I.Op);
    if (Addr.Base != SymBase::entryReg(Reg::SP))
      return; // Not a frame store: tracked slots are unaffected (see docs).
    if (Addr.isSingleton()) {
      int32_t Off = static_cast<int32_t>(Addr.Lo);
      for (unsigned Byte = 0; Byte != Size; ++Byte)
        S.Written.insert(Off + static_cast<int32_t>(Byte));
      // Invalidate any tracked word the store overlaps, then (for aligned
      // word stores) record the new value.
      for (int32_t W = Off - 3; W < Off + static_cast<int32_t>(Size); ++W)
        S.Words.erase(W);
      if (I.Op == Opcode::Sw && Off % 4 == 0)
        S.Words[Off] = S.reg(I.Rt);
    } else {
      // A store somewhere within [Lo, Hi]: every tracked word it might hit
      // becomes unknown; nothing is must-written. With frame metadata, the
      // only variable-offset frame stores are indexed accesses into
      // declared locals (arrays / structs), so the damage is confined to
      // the declared-variable region even when the index interval has been
      // widened to infinity — without this, one `a[i] = x` would erase the
      // prologue's save-slot facts and the epilogue restores would look
      // like clobbers.
      int64_t Lo = Addr.Lo == NegInf ? INT32_MIN : Addr.Lo - 3;
      int64_t Hi = Addr.Hi == PosInf ? INT32_MAX : Addr.Hi + Size - 1;
      AbsValue Sp = S.reg(Reg::SP);
      if (Opts.Frame && Sp.Base == SymBase::entryReg(Reg::SP) &&
          Sp.isSingleton()) {
        // Tighter still: the interval's low anchor is the first element the
        // indexed access can touch. When it lands inside one declared
        // variable, an in-bounds store stays inside that variable, so only
        // its words go unknown — the slots of *other* locals (say, a
        // spilled induction variable next to the array) survive and keep
        // the trip-count derivation alive at -O0.
        if (Addr.Lo != NegInf) {
          int64_t Anchor = Addr.Lo - Sp.Lo; // Post-prologue sp-relative.
          for (const FrameVar &V : Opts.Frame->Vars) {
            if (Anchor < V.SpOffset || Anchor >= V.SpOffset + V.Type.Size)
              continue;
            int64_t B = Sp.Lo + V.SpOffset;
            int64_t E = B + V.Type.Size;
            for (auto It = S.Words.lower_bound(static_cast<int32_t>(B - 3));
                 It != S.Words.end() && It->first < E;)
              It = S.Words.erase(It);
            return;
          }
        }
        for (const FrameVar &V : Opts.Frame->Vars) {
          int64_t B = Sp.Lo + V.SpOffset;
          int64_t E = B + V.Type.Size;
          for (auto It = S.Words.lower_bound(
                   static_cast<int32_t>(std::max<int64_t>(B - 3, Lo)));
               It != S.Words.end() && It->first < E && It->first <= Hi;)
            It = S.Words.erase(It);
        }
      } else {
        for (auto It = S.Words.begin(); It != S.Words.end();) {
          if (It->first >= Lo && It->first <= Hi)
            It = S.Words.erase(It);
          else
            ++It;
        }
      }
    }
    return;
  }
  // Control flow.
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Ble:
  case Opcode::Bgt:
  case Opcode::J:
  case Opcode::Jr:
  case Opcode::Nop:
    return;
  case Opcode::Jal:
  case Opcode::Jalr: {
    // Calls clobber every caller-saved register. $v0 carries the callee's
    // result: an opaque value identified by the call site, so pointer
    // increments over it still accumulate stride facts. A call model (ipa
    // summaries) can refine both the return value and the frame damage;
    // it must see the pre-call state, where argument registers are live.
    CallEffect Effect;
    if (Opts.Calls)
      Effect = Opts.Calls->effectAt(InstrIdx, S);
    for (unsigned R = 0; R != NumRegs; ++R)
      if (isCallerSaved(static_cast<Reg>(R)))
        S.Regs[R] = AbsValue::top();
    S.setReg(Reg::V0, Effect.KnownRet
                          ? Effect.V0
                          : AbsValue::opaque(SymBase::callRet(InstrIdx)));
    // The callee runs below our $sp and cannot reach this frame — except
    // through a pointer we passed into the declared-local region (a local
    // array). With frame metadata, drop knowledge of those slots; the
    // compiler's own spill/save slots can never escape. A summary proving
    // the callee stores only below its own frame keeps them all.
    if (Opts.Frame && !Effect.PreservesLocals) {
      AbsValue Sp = S.reg(Reg::SP);
      if (Sp.Base == SymBase::entryReg(Reg::SP) && Sp.isSingleton()) {
        for (const FrameVar &V : Opts.Frame->Vars) {
          int32_t Begin = static_cast<int32_t>(Sp.Lo) + V.SpOffset;
          int32_t End = Begin + static_cast<int32_t>(V.Type.Size);
          for (auto It = S.Words.lower_bound(Begin - 3);
               It != S.Words.end() && It->first < End;)
            It = S.Words.erase(It);
        }
      }
    }
    return;
  }
  }
}

State Interp::stateBefore(uint32_t InstrIdx) const {
  uint32_t B = G.blockOf(InstrIdx);
  State S = In[B];
  if (!S.Reachable)
    return S;
  for (uint32_t Idx = G.blocks()[B].Begin; Idx != InstrIdx; ++Idx)
    step(S, Idx);
  return S;
}

//===----------------------------------------------------------------------===//
// Fixpoint
//===----------------------------------------------------------------------===//

void Interp::run() {
  if (Ran)
    return;
  Ran = true;
  if (G.numBlocks() == 0)
    return;

  std::vector<unsigned> Updates(G.numBlocks(), 0);
  std::deque<uint32_t> Work;
  std::vector<uint8_t> InWork(G.numBlocks(), 0);
  unsigned TotalUpdates = 0;

  In[G.entry()] = Opts.EntryState ? *Opts.EntryState : State::entry();
  Work.push_back(G.entry());
  InWork[G.entry()] = 1;

  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    InWork[B] = 0;

    State Out = In[B];
    for (uint32_t Idx = G.blocks()[B].Begin; Idx != G.blocks()[B].End; ++Idx)
      step(Out, Idx);

    for (uint32_t Succ : G.blocks()[B].Succs) {
      State NewIn;
      if (!In[Succ].Reachable) {
        NewIn = Out;
      } else {
        State J = joinState(In[Succ], Out);
        NewIn = Updates[Succ] >= Opts.WidenAfter ? widenState(In[Succ], J)
                                                 : std::move(J);
      }
      if (++TotalUpdates > Opts.MaxUpdates) {
        // Safety valve: collapse to top so the loop must close.
        for (unsigned R = 1; R != NumRegs; ++R)
          NewIn.Regs[R] = AbsValue::top();
        NewIn.Words.clear();
      }
      if (NewIn != In[Succ]) {
        In[Succ] = std::move(NewIn);
        ++Updates[Succ];
        if (!InWork[Succ]) {
          InWork[Succ] = 1;
          Work.push_back(Succ);
        }
      }
    }
  }

  deriveTripCounts();
}

//===----------------------------------------------------------------------===//
// Trip counts
//===----------------------------------------------------------------------===//

namespace {

int64_t ceilDiv(int64_t A, int64_t M) { return (A + M - 1) / M; }

/// Flips a comparison so the induction value sits on the left.
Opcode flipCmp(Opcode Op) {
  switch (Op) {
  case Opcode::Blt:
    return Opcode::Bgt;
  case Opcode::Bgt:
    return Opcode::Blt;
  case Opcode::Ble:
    return Opcode::Bge;
  case Opcode::Bge:
    return Opcode::Ble;
  default:
    return Op;
  }
}

/// Negates a comparison (exit taken on fallthrough).
Opcode negateCmp(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
    return Opcode::Bne;
  case Opcode::Bne:
    return Opcode::Beq;
  case Opcode::Blt:
    return Opcode::Bge;
  case Opcode::Bge:
    return Opcode::Blt;
  case Opcode::Ble:
    return Opcode::Bgt;
  case Opcode::Bgt:
    return Opcode::Ble;
  default:
    return Op;
  }
}

constexpr uint64_t MaxTripCount = 1000000000ull; // 1e9: beyond this, give up.

/// Trip count from "exit when Ind ExitOp Bound", where Ind is an arithmetic
/// progression and Bound a singleton with the same symbolic base. Returns 0
/// when the pair proves nothing.
uint64_t tripFromExit(Opcode ExitOp, const AbsValue &Ind,
                      const AbsValue &Bound) {
  if (Ind.isTop() || Bound.isTop() || !Bound.isSingleton() ||
      Ind.Base != Bound.Base)
    return 0;
  if (Ind.Stride < 1 || Ind.isSingleton())
    return 0;
  int64_t M = static_cast<int64_t>(Ind.Stride);
  int64_t C = Bound.Lo;
  int64_t K = 0;
  switch (ExitOp) {
  case Opcode::Bge: // Ascending: first k with Lo + k*M >= C.
    if (Ind.Lo == NegInf)
      return 0;
    K = C <= Ind.Lo ? 0 : ceilDiv(C - Ind.Lo, M);
    break;
  case Opcode::Bgt: // Ascending: first k with Lo + k*M > C.
    if (Ind.Lo == NegInf)
      return 0;
    K = C < Ind.Lo ? 0 : ceilDiv(C + 1 - Ind.Lo, M);
    break;
  case Opcode::Ble: // Descending: first k with Hi - k*M <= C.
    if (Ind.Hi == PosInf)
      return 0;
    K = C >= Ind.Hi ? 0 : ceilDiv(Ind.Hi - C, M);
    break;
  case Opcode::Blt: // Descending: first k with Hi - k*M < C.
    if (Ind.Hi == PosInf)
      return 0;
    K = C > Ind.Hi ? 0 : ceilDiv(Ind.Hi - C + 1, M);
    break;
  default: // Beq/Bne bounds prove nothing about iteration counts.
    return 0;
  }
  if (K < 1)
    K = 1;
  if (static_cast<uint64_t>(K) > MaxTripCount)
    return 0;
  return static_cast<uint64_t>(K);
}

} // namespace

void Interp::deriveTripCounts() {
  const std::vector<cfg::Loop> &Loops = LI.loops();
  for (uint32_t LIdx = 0; LIdx != Loops.size(); ++LIdx) {
    const cfg::Loop &L = Loops[LIdx];
    uint64_t Best = 0;
    for (uint32_t ExitB : L.Exits) {
      const cfg::BasicBlock &BB = G.blocks()[ExitB];
      if (BB.size() == 0 || !In[ExitB].Reachable)
        continue;
      uint32_t BrIdx = BB.End - 1;
      const Instr &Br = G.function().instrs()[BrIdx];
      if (!isCondBranch(Br.Op) || Br.TargetIndex == InvalidIndex)
        continue;
      // Which way leaves the loop?
      bool TakenExits = !L.contains(G.blockOf(Br.TargetIndex));
      bool FallExits = BB.End < G.function().size() &&
                       !L.contains(G.blockOf(BB.End));
      if (TakenExits == FallExits)
        continue; // Both or neither side leaves: no bound here.
      Opcode ExitOp = TakenExits ? Br.Op : negateCmp(Br.Op);

      State S = stateBefore(BrIdx);
      if (!S.Reachable)
        continue;
      AbsValue A = S.reg(Br.Rs), B = S.reg(Br.Rt);
      // Try induction-on-the-left, then induction-on-the-right.
      uint64_t T = tripFromExit(ExitOp, A, B);
      if (!T)
        T = tripFromExit(flipCmp(ExitOp), B, A);
      if (T && (!Best || T < Best))
        Best = T;
    }
    if (Best)
      Trips[LIdx] = Best;
  }
}
