//===- absint/Absint.h - Forward abstract interpretation over the CFG -----==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A forward dataflow / abstract-interpretation framework over cfg::Cfg.
/// Each register carries an AbsValue (symbolic base x interval x stride) and
/// each program point carries tracked stack-frame state: the set of frame
/// bytes written on every path (a must-analysis, for use-before-write
/// checking) and the known values of word-sized frame slots (so spilled
/// induction variables stay visible to the interval/stride domain at -O0).
/// Widening at re-visited blocks makes the fixpoint finite; trip counts for
/// loops with interval-proven constant bounds fall out of the header states.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_ABSINT_ABSINT_H
#define DLQ_ABSINT_ABSINT_H

#include "absint/Domain.h"
#include "cfg/Cfg.h"
#include "masm/Module.h"

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace dlq {
namespace absint {

/// Abstract machine state at one program point.
struct State {
  /// One value per architectural register. $zero is pinned to 0 by eval().
  std::array<AbsValue, masm::NumRegs> Regs;
  /// Frame byte offsets (relative to the entry $sp, so negative inside the
  /// frame) written on EVERY path reaching this point.
  std::set<int32_t> Written;
  /// Known values of 4-byte-aligned frame words, keyed by entry-relative
  /// offset. Absent means unknown.
  std::map<int32_t, AbsValue> Words;
  bool Reachable = false;

  /// The state on function entry: every register holds its symbolic entry
  /// value, no frame byte written, no slot known.
  static State entry();

  AbsValue reg(masm::Reg R) const {
    if (R == masm::Reg::Zero)
      return AbsValue::constant(0);
    return Regs[static_cast<unsigned>(R)];
  }
  void setReg(masm::Reg R, const AbsValue &V) {
    if (R != masm::Reg::Zero)
      Regs[static_cast<unsigned>(R)] = V;
  }

};

bool operator==(const State &A, const State &B);
inline bool operator!=(const State &A, const State &B) { return !(A == B); }

/// Control-flow join of two states (pointwise value join, intersection of
/// the must-written set, intersection-with-join of known slots).
State joinState(const State &A, const State &B);

/// Widening applied at re-visited blocks: pointwise value widening, joins on
/// the frame sets (which move monotonically on their own).
State widenState(const State &Old, const State &New);

/// One proven loop trip count.
struct TripCount {
  uint32_t LoopIdx = 0; ///< Index into LoopInfo::loops().
  uint64_t Count = 0;   ///< Bodies executed per loop entry (>= 1).
};

/// What a summary proves about one call site, already translated into the
/// caller's frame of reference. The default-constructed effect is the
/// legacy blanket havoc.
struct CallEffect {
  /// When true, V0 below is a sound abstraction of the callee's return
  /// value; otherwise $v0 becomes the usual opaque call token.
  bool KnownRet = false;
  AbsValue V0;
  /// When true, the callee (transitively) cannot store through any pointer
  /// that may reach this frame's declared locals, so known frame-slot
  /// values survive the call.
  bool PreservesLocals = false;
};

/// Per-function oracle consulted at each call instruction. Implemented by
/// ipa::ModuleSummaries; absint itself never depends on how the summaries
/// are computed.
class CallModel {
public:
  virtual ~CallModel();
  /// The effect of the call at \p InstrIdx given the abstract state \p S
  /// immediately before the call (argument registers still live). Must be
  /// conservative: returning the default CallEffect is always sound.
  virtual CallEffect effectAt(uint32_t InstrIdx, const State &S) const = 0;
};

struct FuncAnalysis;

/// Module-wide interprocedural facts handed to the analyses that embed an
/// Interp (AccessSummary, StaticFreq, Lint). Implemented by
/// ipa::ModuleSummaries.
class InterprocInfo {
public:
  virtual ~InterprocInfo();
  /// Call model to install when interpreting function \p FuncIdx, or null.
  virtual const CallModel *callModelFor(uint32_t FuncIdx) const = 0;
  /// Entry state (argument-register facts joined over all known call
  /// sites) for \p FuncIdx, or null for the generic State::entry().
  virtual const State *entryStateFor(uint32_t FuncIdx) const = 0;
  /// True when function \p CalleeIdx may read incoming argument register
  /// $a<ArgIdx> (directly or by forwarding it to another call).
  virtual bool calleeReadsArg(uint32_t CalleeIdx, unsigned ArgIdx) const = 0;
  /// Optional cached per-function analysis, already run with exactly
  /// callModelFor(FuncIdx) and entryStateFor(FuncIdx) installed. Consumers
  /// that would build the same fixpoint (collectAccessInfo) reuse it;
  /// null means build your own.
  virtual const FuncAnalysis *analysisFor(uint32_t) const { return nullptr; }
};

/// The abstract interpreter for one function.
class Interp {
public:
  struct Options {
    /// Start widening once a block's in-state has changed this many times.
    unsigned WidenAfter = 2;
    /// Hard safety cap on total in-state updates; beyond it, states are
    /// forced straight to top so the fixpoint always closes.
    unsigned MaxUpdates = 10000;
    /// Optional module layout: lets `la` evaluate to its concrete address.
    const masm::Layout *ModLayout = nullptr;
    /// Optional frame metadata of the analyzed function: calls invalidate
    /// known slot values inside the declared-local region (a local array's
    /// address may have escaped to the callee).
    const masm::FunctionTypeInfo *Frame = nullptr;
    /// Optional interprocedural call summaries: refines the blanket
    /// caller-saved havoc at call sites. Null keeps the legacy transfer.
    const CallModel *Calls = nullptr;
    /// Optional entry state override (argument facts from call sites).
    /// Null keeps the generic State::entry(). The pointee must outlive
    /// run().
    const State *EntryState = nullptr;
  };

  Interp(const cfg::Cfg &G, const cfg::LoopInfo &LI, Options Opts);
  Interp(const cfg::Cfg &G, const cfg::LoopInfo &LI)
      : Interp(G, LI, Options()) {}

  /// Runs to fixpoint. Idempotent.
  void run();

  /// In-state of block \p B (valid after run()).
  const State &blockIn(uint32_t B) const { return In[B]; }

  /// True if \p B is reachable from the entry.
  bool reachable(uint32_t B) const { return In[B].Reachable; }

  /// Applies the transfer function of instruction \p InstrIdx to \p S.
  /// Public so clients (the lint driver, trip-count extraction) can replay
  /// a block from its in-state and inspect the state at each instruction.
  void step(State &S, uint32_t InstrIdx) const;

  /// The state immediately before instruction \p InstrIdx, by replaying its
  /// block (valid after run()).
  State stateBefore(uint32_t InstrIdx) const;

  /// Trip counts proven from exit-branch intervals, per loop index. Only
  /// loops with at least one `induction vs same-base constant` exit bound
  /// appear (valid after run()).
  const std::map<uint32_t, uint64_t> &tripCounts() const { return Trips; }

private:
  const cfg::Cfg &G;
  const cfg::LoopInfo &LI;
  Options Opts;
  std::vector<State> In;
  std::map<uint32_t, uint64_t> Trips;
  bool Ran = false;

  void deriveTripCounts();
};

/// The per-function analysis stack every interprocedural pass needs — CFG,
/// dominators, loops and the fixpoint over them. Bundled so a pass that
/// already paid for the run (ipa::ModuleSummaries) can hand the result to
/// later consumers via InterprocInfo::analysisFor instead of each of them
/// re-running the interpreter.
struct FuncAnalysis {
  cfg::Cfg G;
  cfg::DominatorTree DT;
  cfg::LoopInfo LI;
  Interp AI;

  FuncAnalysis(const masm::Function &F, Interp::Options IO)
      : G(F), DT(G), LI(G, DT), AI(G, LI, IO) {
    AI.run();
  }
};

} // namespace absint
} // namespace dlq

#endif // DLQ_ABSINT_ABSINT_H
