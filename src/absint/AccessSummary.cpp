//===- absint/AccessSummary.cpp -------------------------------------------==//

#include "absint/AccessSummary.h"

#include "masm/Opcode.h"

#include <memory>

using namespace dlq;
using namespace dlq::absint;
using namespace dlq::masm;

namespace {

/// Trip-count products saturate instead of wrapping: a nest of 1e9-trip
/// loops must still compare sanely against object extents.
constexpr uint64_t TripSaturation = 1000000000000000ull; // 1e15

uint64_t satMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > TripSaturation / B)
    return TripSaturation;
  return A * B;
}

} // namespace

uint64_t FunctionAccessInfo::nestTrips(uint32_t LoopIdx) const {
  uint64_t Product = 1;
  for (uint32_t I = LoopIdx; I != InvalidIndex; I = Loops[I].Parent) {
    if (Loops[I].Trip == 0)
      return 0;
    Product = satMul(Product, Loops[I].Trip);
  }
  return Product;
}

FunctionAccessInfo absint::collectAccessInfo(const Module &M, const Layout &L,
                                             uint32_t FuncIdx,
                                             const InterprocInfo *Ipa) {
  FunctionAccessInfo Info;
  Info.FuncIdx = FuncIdx;
  const Function &F = M.functions()[FuncIdx];
  if (F.empty())
    return Info;

  // An interprocedural run may already hold this function's fixpoint (run
  // with the same call model and entry state we would install); reuse it
  // rather than paying for a second one.
  const FuncAnalysis *FA = Ipa ? Ipa->analysisFor(FuncIdx) : nullptr;
  std::unique_ptr<FuncAnalysis> Own;
  if (!FA) {
    Interp::Options IO;
    IO.ModLayout = &L;
    IO.Frame = M.typeInfo().lookupFunction(F.name());
    if (Ipa) {
      IO.Calls = Ipa->callModelFor(FuncIdx);
      IO.EntryState = Ipa->entryStateFor(FuncIdx);
    }
    Own = std::make_unique<FuncAnalysis>(F, IO);
    FA = Own.get();
  }
  const cfg::Cfg &G = FA->G;
  const cfg::DominatorTree &DT = FA->DT;
  const cfg::LoopInfo &LI = FA->LI;
  const Interp &AI = FA->AI;

  // Loop nest: parent = smallest strictly-containing loop. Natural loops
  // sharing a header are merged by LoopInfo, so containment of the header
  // decides containment of the loop.
  const std::vector<cfg::Loop> &Loops = LI.loops();
  Info.Loops.resize(Loops.size());
  for (uint32_t I = 0; I != Loops.size(); ++I) {
    LoopSummary &S = Info.Loops[I];
    S.Header = Loops[I].Header;
    auto It = AI.tripCounts().find(I);
    if (It != AI.tripCounts().end())
      S.Trip = It->second;
    size_t BestBlocks = ~size_t(0);
    for (uint32_t J = 0; J != Loops.size(); ++J) {
      if (J == I || !Loops[J].contains(Loops[I].Header) ||
          Loops[J].Header == Loops[I].Header)
        continue;
      if (Loops[J].Blocks.size() < BestBlocks) {
        BestBlocks = Loops[J].Blocks.size();
        S.Parent = J;
      }
    }
  }
  // Depths follow the parent chains (parents always have more blocks, so a
  // second pass ordered by block count would also work; chain-walking is
  // simplest and the nests are shallow).
  for (uint32_t I = 0; I != Info.Loops.size(); ++I) {
    uint32_t Depth = 1;
    for (uint32_t P = Info.Loops[I].Parent; P != InvalidIndex;
         P = Info.Loops[P].Parent)
      ++Depth;
    Info.Loops[I].Depth = Depth;
    // Entered every parent iteration iff the header dominates each path
    // back to the parent's header.
    uint32_t P = Info.Loops[I].Parent;
    if (P != InvalidIndex)
      for (uint32_t Latch : Loops[P].Latches)
        if (!DT.dominates(Info.Loops[I].Header, Latch))
          Info.Loops[I].Unconditional = false;
  }

  for (uint32_t I = 0; I != F.size(); ++I) {
    const Instr &In = F.instrs()[I];
    if (!isLoad(In.Op) && !isStore(In.Op))
      continue;

    AccessSummary S;
    S.Ref = InstrRef{FuncIdx, I};
    S.IsStore = isStore(In.Op);
    S.Size = static_cast<uint8_t>(accessSize(In.Op));

    uint32_t B = G.blockOf(I);
    size_t InnerBlocks = ~size_t(0);
    for (uint32_t LIdx = 0; LIdx != Loops.size(); ++LIdx) {
      if (!Loops[LIdx].contains(B))
        continue;
      ++S.LoopDepth;
      if (Loops[LIdx].Blocks.size() < InnerBlocks) {
        InnerBlocks = Loops[LIdx].Blocks.size();
        S.InnermostLoop = LIdx;
      }
    }
    S.NestTrips = S.InnermostLoop == InvalidIndex
                      ? 1
                      : Info.nestTrips(S.InnermostLoop);

    State Before = AI.stateBefore(I);
    if (!Before.Reachable) {
      // Dead code: keep the (never-executed) access visible but unknown.
      Info.Accesses.push_back(S);
      continue;
    }
    AbsValue Addr =
        addValues(Before.reg(In.Rs), AbsValue::constant(In.Imm));
    S.Base = Addr.Base;
    S.Lo = Addr.Lo;
    S.Hi = Addr.Hi;
    S.Stride = Addr.Stride;

    if (Addr.isTop()) {
      S.Kind = AccessKind::Irregular;
    } else if (Addr.Base.K == SymBase::LoadVal) {
      // The base itself was loaded from memory: a pointer chase. This must
      // outrank the singleton test — `8(p)` with a loaded p is a singleton
      // *offset* from a value that changes every iteration, not a fixed
      // address. Even a proven congruence would describe alignment, not the
      // visit order.
      S.Kind = AccessKind::Irregular;
    } else if (Addr.isSingleton()) {
      S.Kind = AccessKind::Invariant;
      S.Stride = 0;
    } else if (Addr.Stride >= 2 && (Addr.Lo != NegInf || Addr.Hi != PosInf)) {
      S.Kind = AccessKind::Regular;
    } else {
      // Stride 1 is the congruence lattice's "no information": it cannot
      // distinguish a byte-wise walk from a data-dependent index.
      S.Kind = AccessKind::Irregular;
    }

    // Object extent from the anchor in the walk direction. Ascending walks
    // anchor at Lo, descending at Hi; invariant accesses anchor at their
    // fixed address.
    bool Ascending = Addr.Lo != NegInf;
    int64_t Anchor = Ascending ? Addr.Lo : Addr.Hi;
    int64_t Concrete = 0;
    bool HasConcrete = false;
    if (Addr.Base.K == SymBase::None && (Addr.Lo != NegInf ||
                                         Addr.Hi != PosInf)) {
      Concrete = Anchor;
      HasConcrete = true;
    } else if (Addr.Base.K == SymBase::EntryReg &&
               Addr.Base.R == Reg::GP &&
               (Addr.Lo != NegInf || Addr.Hi != PosInf)) {
      Concrete = static_cast<int64_t>(LayoutConstants::GpValue) + Anchor;
      HasConcrete = true;
    }
    if (HasConcrete && Concrete >= 0 && Concrete <= UINT32_MAX) {
      uint32_t Offset = 0;
      if (const Global *Gl =
              L.globalAt(static_cast<uint32_t>(Concrete), Offset)) {
        S.Extent = Ascending
                       ? static_cast<uint64_t>(Gl->Size) - Offset
                       : static_cast<uint64_t>(Offset) + S.Size;
        S.ObjBase = static_cast<uint64_t>(Concrete) - Offset;
      }
    }

    Info.Accesses.push_back(S);
  }
  return Info;
}

std::vector<FunctionAccessInfo>
absint::collectModuleAccessInfo(const Module &M, const Layout &L,
                                const InterprocInfo *Ipa) {
  std::vector<FunctionAccessInfo> All;
  All.reserve(M.functions().size());
  for (uint32_t FI = 0; FI != M.functions().size(); ++FI)
    All.push_back(collectAccessInfo(M, L, FI, Ipa));
  return All;
}
