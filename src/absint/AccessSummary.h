//===- absint/AccessSummary.h - Per-access address functions ----------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports what the abstract interpreter proved about every memory access of
/// a function in a form the analytical cache model (src/camodel) can consume:
/// the symbolic base and offset interval of the address, its congruence
/// stride (the per-iteration advance of affine array walks), the enclosing
/// natural-loop nest with any proven trip counts, and the extent of the
/// underlying object when the base resolves to a global, the stack frame or
/// a gp-relative address. This is the "static reuse profile" front half of
/// the Razzak-style estimator: everything here is computed without running
/// the program.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_ABSINT_ACCESSSUMMARY_H
#define DLQ_ABSINT_ACCESSSUMMARY_H

#include "absint/Absint.h"
#include "cfg/Cfg.h"
#include "masm/Module.h"

#include <cstdint>
#include <vector>

namespace dlq {
namespace absint {

/// How an access walks memory, as far as the domain can prove.
enum class AccessKind : uint8_t {
  /// The address is a fixed offset from its base for the whole execution
  /// (scalar reloads, loop-invariant addresses).
  Invariant,
  /// The address is an affine walk: offsets form an arithmetic progression
  /// with the proven congruence stride (unit-stride and strided array
  /// accesses).
  Regular,
  /// The domain cannot capture the address sequence: loaded-pointer bases
  /// (pointer chasing), data-dependent indices, or walks whose stride the
  /// congruence lattice cannot separate from "anything" (stride 1).
  Irregular,
};

/// What the abstract interpreter proved about one load or store.
struct AccessSummary {
  masm::InstrRef Ref;
  bool IsStore = false;
  uint8_t Size = 0; ///< Access width in bytes.
  AccessKind Kind = AccessKind::Irregular;

  /// Symbolic base of the address. None with a finite bound means the
  /// address is concrete (global data); EntryReg sp/gp/params otherwise.
  SymBase Base;
  /// Offset interval relative to Base (absolute address when Base is None).
  /// One side is typically infinite after widening; the finite side anchors
  /// the walk (Lo for ascending, Hi for descending).
  int64_t Lo = NegInf;
  int64_t Hi = PosInf;
  /// Address congruence modulus: the proven per-iteration advance of a
  /// Regular walk. 0 = fixed address.
  uint64_t Stride = 0;

  /// Number of natural loops enclosing the access.
  uint32_t LoopDepth = 0;
  /// Index (into FunctionAccessInfo::Loops) of the innermost enclosing
  /// loop, or masm::InvalidIndex when the access is outside all loops.
  uint32_t InnermostLoop = masm::InvalidIndex;
  /// Product of proven trip counts over all enclosing loops: the static
  /// estimate of executions per function invocation. 0 when any enclosing
  /// loop's trip count is unproven.
  uint64_t NestTrips = 0;

  /// Bytes of the underlying object reachable from the anchor in the walk
  /// direction (including the access itself): the tightest static cap on
  /// the walk's footprint. 0 when the object cannot be identified.
  uint64_t Extent = 0;
  /// Start address of the resolved underlying object (identity token: two
  /// accesses with equal nonzero ObjBase walk the same global). 0 when the
  /// object cannot be identified.
  uint64_t ObjBase = 0;

  bool regular() const { return Kind == AccessKind::Regular; }
};

/// One loop of the function's nest, with its proven trip count.
struct LoopSummary {
  uint32_t Header = 0;            ///< Header block id (for diagnostics).
  uint32_t Parent = masm::InvalidIndex; ///< Immediately enclosing loop.
  uint64_t Trip = 0;              ///< Proven bodies per entry; 0 = unproven.
  uint32_t Depth = 1;             ///< Nesting depth (1 = outermost).
  /// True when the loop is entered on every iteration of its parent (its
  /// header dominates the parent's latches). False marks conditionally
  /// guarded loops — amortized resets, error paths — whose footprint must
  /// not be charged to every iteration of the enclosing loop.
  bool Unconditional = true;
};

/// All access summaries of one function plus the loop nest they refer to.
struct FunctionAccessInfo {
  uint32_t FuncIdx = 0;
  std::vector<AccessSummary> Accesses;
  /// Parallel to cfg::LoopInfo::loops() of the function.
  std::vector<LoopSummary> Loops;

  /// Walks Loops' parent chain from \p LoopIdx to the root, multiplying
  /// proven trip counts. Returns 0 if any loop on the chain is unproven.
  uint64_t nestTrips(uint32_t LoopIdx) const;
};

/// Runs the abstract interpreter over function \p FuncIdx of \p M and
/// summarizes every load and store. \p L supplies concrete addresses for
/// global data (so `la`-rooted walks resolve to object extents). \p Ipa
/// optionally supplies interprocedural call summaries and entry facts
/// (ipa::ModuleSummaries): calls then havoc less and argument-rooted
/// addresses may resolve to concrete bases.
FunctionAccessInfo collectAccessInfo(const masm::Module &M,
                                     const masm::Layout &L, uint32_t FuncIdx,
                                     const InterprocInfo *Ipa = nullptr);

/// collectAccessInfo over every non-empty function of the module.
std::vector<FunctionAccessInfo>
collectModuleAccessInfo(const masm::Module &M, const masm::Layout &L,
                        const InterprocInfo *Ipa = nullptr);

} // namespace absint
} // namespace dlq

#endif // DLQ_ABSINT_ACCESSSUMMARY_H
