//===- absint/Domain.cpp --------------------------------------------------==//

#include "absint/Domain.h"

#include "support/Format.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

using namespace dlq;
using namespace dlq::absint;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

namespace {

bool finite(int64_t B) { return B != NegInf && B != PosInf; }

/// Saturating addition of interval bounds.
int64_t addBound(int64_t A, int64_t B) {
  if (A == NegInf || B == NegInf)
    return NegInf;
  if (A == PosInf || B == PosInf)
    return PosInf;
  // Both finite: offsets stay within +-2^33 of zero in practice, but guard
  // anyway.
  if (B > 0 && A > PosInf - B)
    return PosInf;
  if (B < 0 && A < NegInf + 1 - B)
    return NegInf;
  return A + B;
}

int64_t negBound(int64_t A) {
  if (A == NegInf)
    return PosInf;
  if (A == PosInf)
    return NegInf;
  return -A;
}

/// Restores the (Hi - Lo) % Stride == 0 invariant after interval surgery,
/// shrinking Hi (both bounds finite) or dropping to stride 1.
AbsValue normalize(AbsValue V) {
  if (V.Base.K == SymBase::Top)
    return AbsValue::top();
  if (V.Lo == V.Hi && finite(V.Lo)) {
    V.Stride = 0;
    return V;
  }
  if (V.Stride == 0)
    V.Stride = 1;
  if (V.Stride > 1 && finite(V.Lo) && finite(V.Hi)) {
    int64_t Span = V.Hi - V.Lo;
    V.Hi = V.Lo + Span - (Span % static_cast<int64_t>(V.Stride));
    if (V.Lo == V.Hi)
      V.Stride = 0;
  }
  return V;
}

} // namespace

std::string AbsValue::str() const {
  if (isTop())
    return "top";
  std::string S;
  switch (Base.K) {
  case SymBase::None:
    break;
  case SymBase::EntryReg:
    S += std::string(masm::regName(Base.R)) + "0+";
    break;
  case SymBase::CallRet:
    S += formatString("ret@%u+", Base.DefInstr);
    break;
  case SymBase::LoadVal:
    S += formatString("mem@%u+", Base.DefInstr);
    break;
  case SymBase::Top:
    return "top";
  }
  auto bnd = [](int64_t B) {
    if (B == NegInf)
      return std::string("-inf");
    if (B == PosInf)
      return std::string("+inf");
    return formatString("%lld", static_cast<long long>(B));
  };
  if (isSingleton()) {
    // Against a symbolic base, render "$sp0-16" rather than "$sp0+-16".
    if (!S.empty() && Lo < 0 && Lo != NegInf)
      S.pop_back();
    return S + bnd(Lo);
  }
  S += "[" + bnd(Lo) + "," + bnd(Hi) + "]";
  if (Stride > 1)
    S += formatString("%%%llu", static_cast<unsigned long long>(Stride));
  return S;
}

//===----------------------------------------------------------------------===//
// Lattice operations
//===----------------------------------------------------------------------===//

uint64_t dlq::absint::combineStride(uint64_t A, uint64_t B) {
  if (A == 0)
    return B;
  if (B == 0)
    return A;
  return std::gcd(A, B);
}

AbsValue dlq::absint::join(const AbsValue &A, const AbsValue &B) {
  if (A == B)
    return A; // Stored values are normalized; idempotence needs no work.
  if (A.isTop() || B.isTop())
    return AbsValue::top();
  if (A.Base != B.Base)
    return AbsValue::top();
  AbsValue R;
  R.Base = A.Base;
  R.Lo = std::min(A.Lo, B.Lo);
  R.Hi = std::max(A.Hi, B.Hi);
  R.Stride = combineStride(A.Stride, B.Stride);
  // The two progressions are anchored at different offsets; their union is
  // congruent only modulo gcd with the anchor distance.
  if (A.Lo != B.Lo) {
    if (finite(A.Lo) && finite(B.Lo))
      R.Stride = combineStride(
          R.Stride, static_cast<uint64_t>(std::llabs(A.Lo - B.Lo)));
    else
      R.Stride = 1;
  }
  return normalize(R);
}

AbsValue dlq::absint::widen(const AbsValue &Old, const AbsValue &New) {
  if (Old == New)
    return Old;
  if (Old.isTop() || New.isTop())
    return AbsValue::top();
  if (Old.Base != New.Base)
    return AbsValue::top();
  AbsValue J = join(Old, New);
  AbsValue R;
  R.Base = Old.Base;
  R.Lo = J.Lo < Old.Lo ? NegInf : Old.Lo;
  R.Hi = J.Hi > Old.Hi ? PosInf : Old.Hi;
  // Keep the gcd-combined congruence: each widening step either leaves the
  // modulus alone or strictly reduces it, so the chain is finite.
  R.Stride = J.Stride;
  return normalize(R);
}

//===----------------------------------------------------------------------===//
// Arithmetic transfer
//===----------------------------------------------------------------------===//

AbsValue dlq::absint::addValues(const AbsValue &A, const AbsValue &B) {
  if (A.isTop() || B.isTop())
    return AbsValue::top();
  // Exactly one symbolic base survives an addition.
  SymBase Base;
  if (A.Base.K == SymBase::None)
    Base = B.Base;
  else if (B.Base.K == SymBase::None)
    Base = A.Base;
  else
    return AbsValue::top();
  AbsValue R;
  R.Base = Base;
  R.Lo = addBound(A.Lo, B.Lo);
  R.Hi = addBound(A.Hi, B.Hi);
  R.Stride = combineStride(A.Stride, B.Stride);
  return normalize(R);
}

AbsValue dlq::absint::subValues(const AbsValue &A, const AbsValue &B) {
  if (A.isTop() || B.isTop())
    return AbsValue::top();
  // A - B with matching symbolic bases cancels them: (base+x) - (base+y)
  // is the plain number x - y. Otherwise only a numeric B keeps A's base.
  AbsValue R;
  if (A.Base == B.Base)
    R.Base = SymBase::none();
  else if (B.Base.K == SymBase::None)
    R.Base = A.Base;
  else
    return AbsValue::top();
  R.Lo = addBound(A.Lo, negBound(B.Hi));
  R.Hi = addBound(A.Hi, negBound(B.Lo));
  R.Stride = combineStride(A.Stride, B.Stride);
  return normalize(R);
}

AbsValue dlq::absint::mulValues(const AbsValue &A, const AbsValue &B) {
  if (A.isTop() || B.isTop())
    return AbsValue::top();
  // Only constant * value keeps structure.
  const AbsValue *C = A.isConst() ? &A : (B.isConst() ? &B : nullptr);
  const AbsValue *V = A.isConst() ? &B : &A;
  if (!C)
    return AbsValue::top();
  int64_t K = C->constValue();
  if (V->Base.K != SymBase::None && K != 1 && K != 0)
    return AbsValue::top(); // K * (base + d) is no longer base-relative.
  if (K == 0)
    return AbsValue::constant(0);
  auto scale = [&](int64_t Bound) {
    if (!finite(Bound))
      return (Bound == PosInf) == (K > 0) ? PosInf : NegInf;
    // Saturate on overflow.
    if (Bound != 0 && std::llabs(K) > PosInf / std::llabs(Bound))
      return (Bound > 0) == (K > 0) ? PosInf : NegInf;
    return Bound * K;
  };
  AbsValue R;
  R.Base = V->Base;
  int64_t X = scale(V->Lo), Y = scale(V->Hi);
  R.Lo = std::min(X, Y);
  R.Hi = std::max(X, Y);
  uint64_t AbsK = static_cast<uint64_t>(std::llabs(K));
  R.Stride = V->Stride == 0 ? 0 : V->Stride * AbsK;
  return normalize(R);
}

AbsValue dlq::absint::shlValues(const AbsValue &A, const AbsValue &B) {
  if (B.isConst() && B.constValue() >= 0 && B.constValue() < 32)
    return mulValues(A, AbsValue::constant(int64_t(1) << B.constValue()));
  return AbsValue::top();
}
