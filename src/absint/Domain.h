//===- absint/Domain.h - Abstract value domain ----------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value domain of the abstract interpreter: a symbolic base (a register
/// value at function entry, a call result, a load result, or none) plus an
/// interval of offsets and a congruence modulus ("stride"). The domain is
/// rich enough to prove the facts the lint checks and the heuristic stack
/// need — constant sp adjustments, gp-relative address ranges, and the
/// arithmetic progressions of loop induction variables — while staying a
/// finite-height lattice under widening.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_ABSINT_DOMAIN_H
#define DLQ_ABSINT_DOMAIN_H

#include "masm/Register.h"

#include <cstdint>
#include <string>

namespace dlq {
namespace absint {

/// Interval bound sentinels. Offsets are tracked as int64 so 32-bit
/// arithmetic never overflows the bound representation.
constexpr int64_t NegInf = INT64_MIN;
constexpr int64_t PosInf = INT64_MAX;

/// The symbolic part of an abstract value.
struct SymBase {
  enum Kind : uint8_t {
    None,     ///< A plain number: value = offset.
    EntryReg, ///< Value of register R at function entry, plus offset.
    CallRet,  ///< $v0 produced by the call at instruction DefInstr.
    LoadVal,  ///< Result of the (untracked) load at instruction DefInstr.
    Top,      ///< Any value at all.
  };

  Kind K = None;
  masm::Reg R = masm::Reg::Zero; ///< For EntryReg.
  uint32_t DefInstr = 0;         ///< For CallRet / LoadVal.

  static SymBase none() { return SymBase{}; }
  static SymBase entryReg(masm::Reg Reg) {
    SymBase B;
    B.K = EntryReg;
    B.R = Reg;
    return B;
  }
  static SymBase callRet(uint32_t Instr) {
    SymBase B;
    B.K = CallRet;
    B.DefInstr = Instr;
    return B;
  }
  static SymBase loadVal(uint32_t Instr) {
    SymBase B;
    B.K = LoadVal;
    B.DefInstr = Instr;
    return B;
  }
  static SymBase top() {
    SymBase B;
    B.K = Top;
    return B;
  }

  friend bool operator==(const SymBase &A, const SymBase &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case EntryReg:
      return A.R == B.R;
    case CallRet:
    case LoadVal:
      return A.DefInstr == B.DefInstr;
    default:
      return true;
    }
  }
  friend bool operator!=(const SymBase &A, const SymBase &B) {
    return !(A == B);
  }
};

/// An abstract value: Base + d for some d in [Lo, Hi] with d ≡ Lo (mod
/// Stride). Stride 0 means the singleton offset Lo (Lo == Hi); stride 1
/// means no congruence information. When both bounds are finite,
/// (Hi - Lo) % Stride == 0 is an invariant (for Stride >= 1).
struct AbsValue {
  SymBase Base;
  int64_t Lo = NegInf;
  int64_t Hi = PosInf;
  uint64_t Stride = 1;

  /// The unconstrained value.
  static AbsValue top() {
    AbsValue V;
    V.Base = SymBase::top();
    return V;
  }

  /// The exact constant \p C.
  static AbsValue constant(int64_t C) {
    AbsValue V;
    V.Base = SymBase::none();
    V.Lo = V.Hi = C;
    V.Stride = 0;
    return V;
  }

  /// Exactly "register \p R as of function entry".
  static AbsValue entry(masm::Reg R) {
    AbsValue V;
    V.Base = SymBase::entryReg(R);
    V.Lo = V.Hi = 0;
    V.Stride = 0;
    return V;
  }

  /// An unknown-but-fixed value distinguished by its defining instruction.
  static AbsValue opaque(SymBase B) {
    AbsValue V;
    V.Base = B;
    V.Lo = V.Hi = 0;
    V.Stride = 0;
    return V;
  }

  bool isTop() const { return Base.K == SymBase::Top; }

  /// True when this is a single known offset from its base.
  bool isSingleton() const { return Stride == 0 && Lo == Hi; }

  /// True when this is one concrete number (no symbolic part).
  bool isConst() const { return Base.K == SymBase::None && isSingleton(); }
  int64_t constValue() const { return Lo; }

  friend bool operator==(const AbsValue &A, const AbsValue &B) {
    if (A.Base.K == SymBase::Top && B.Base.K == SymBase::Top)
      return true;
    return A.Base == B.Base && A.Lo == B.Lo && A.Hi == B.Hi &&
           A.Stride == B.Stride;
  }
  friend bool operator!=(const AbsValue &A, const AbsValue &B) {
    return !(A == B);
  }

  /// Renders e.g. "sp+[−8,−8]", "[0,+inf) % 4", "top" for diagnostics.
  std::string str() const;
};

/// gcd-style combination of congruence moduli: 0 acts as the identity
/// (an exact value imposes no new congruence constraint).
uint64_t combineStride(uint64_t A, uint64_t B);

/// Least upper bound of two values (control-flow join).
AbsValue join(const AbsValue &A, const AbsValue &B);

/// Widening: \p Old is the accumulated state at a loop header, \p New the
/// incoming state on the next visit. Any bound that grew jumps to infinity;
/// the congruence modulus is combined with gcd, whose chains are finite, so
/// repeated widening terminates.
AbsValue widen(const AbsValue &Old, const AbsValue &New);

/// Arithmetic transfer functions (32-bit two's complement semantics,
/// conservatively approximated).
AbsValue addValues(const AbsValue &A, const AbsValue &B);
AbsValue subValues(const AbsValue &A, const AbsValue &B);
AbsValue mulValues(const AbsValue &A, const AbsValue &B);
AbsValue shlValues(const AbsValue &A, const AbsValue &B);

} // namespace absint
} // namespace dlq

#endif // DLQ_ABSINT_DOMAIN_H
