//===- absint/JitHints.cpp ------------------------------------------------==//

#include "absint/JitHints.h"

#include "absint/Absint.h"
#include "cfg/Cfg.h"

#include <algorithm>

using namespace dlq;
using namespace dlq::absint;

std::vector<HotBlock> dlq::absint::provenHotBlocks(const masm::Module &M,
                                                   const masm::Layout &L,
                                                   uint64_t MinTrips) {
  std::vector<HotBlock> Hot;
  for (uint32_t FI = 0; FI != M.functions().size(); ++FI) {
    const masm::Function &F = M.functions()[FI];
    cfg::Cfg G(F);
    cfg::DominatorTree DT(G);
    cfg::LoopInfo LI(G, DT);
    if (LI.loops().empty())
      continue;
    Interp::Options IO;
    IO.ModLayout = &L;
    IO.Frame = M.typeInfo().lookupFunction(F.name());
    Interp AI(G, LI, IO);
    AI.run();
    for (const auto &[LoopIdx, Count] : AI.tripCounts()) {
      if (Count < MinTrips)
        continue;
      for (uint32_t B : LI.loops()[LoopIdx].Blocks)
        Hot.push_back(HotBlock{FI, G.blocks()[B].Begin});
    }
  }
  std::sort(Hot.begin(), Hot.end(), [](const HotBlock &A, const HotBlock &B) {
    return A.FuncIdx != B.FuncIdx ? A.FuncIdx < B.FuncIdx
                                  : A.InstrIdx < B.InstrIdx;
  });
  Hot.erase(std::unique(Hot.begin(), Hot.end(),
                        [](const HotBlock &A, const HotBlock &B) {
                          return A.FuncIdx == B.FuncIdx &&
                                 A.InstrIdx == B.InstrIdx;
                        }),
            Hot.end());
  return Hot;
}
