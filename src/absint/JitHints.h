//===- absint/JitHints.h - Analysis-driven compilation hints --------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feeds the abstract interpreter's proven loop trip counts (see
/// absint/Absint.h) to the JIT: a block inside a loop whose bound the
/// interval domain proved is guaranteed to execute its trip count times per
/// loop entry, so the execution engine compiles it up front instead of
/// waiting for the hotness ramp. Purely a scheduling hint — unlisted blocks
/// still compile once they turn hot dynamically.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_ABSINT_JITHINTS_H
#define DLQ_ABSINT_JITHINTS_H

#include "masm/Module.h"

#include <cstdint>
#include <vector>

namespace dlq {
namespace absint {

/// One statically-proven-hot basic block.
struct HotBlock {
  uint32_t FuncIdx = 0;  ///< Function index within the module.
  uint32_t InstrIdx = 0; ///< First instruction of the block, function-local.
};

/// Blocks of every loop with an interval-proven trip count of at least
/// \p MinTrips, over all functions of the finalized module \p M. Ordered by
/// (function, instruction), deduplicated.
std::vector<HotBlock> provenHotBlocks(const masm::Module &M,
                                      const masm::Layout &L,
                                      uint64_t MinTrips = 16);

} // namespace absint
} // namespace dlq

#endif // DLQ_ABSINT_JITHINTS_H
