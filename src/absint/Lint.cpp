//===- absint/Lint.cpp ----------------------------------------------------==//

#include "absint/Lint.h"

#include "absint/Absint.h"
#include "dataflow/ReachingDefs.h"
#include "support/Format.h"

#include <algorithm>
#include <optional>

using namespace dlq;
using namespace dlq::absint;
using namespace dlq::masm;

std::string_view dlq::absint::lintCheckName(LintCheck C) {
  switch (C) {
  case LintCheck::UseBeforeWrite:
    return "use-before-write";
  case LintCheck::CallClobberedUse:
    return "call-clobbered-use";
  case LintCheck::CalleeSavedClobber:
    return "callee-saved-clobber";
  case LintCheck::UnbalancedSp:
    return "unbalanced-sp";
  case LintCheck::GpOutOfData:
    return "gp-out-of-data";
  case LintCheck::UnreachableBlock:
    return "unreachable-block";
  case LintCheck::ArgUseBeforeSet:
    return "arg-use-before-set";
  }
  return "?";
}

std::string LintFinding::str() const {
  return formatString("%s:+%u: %s: %s", Function.c_str(), InstrIdx,
                      std::string(lintCheckName(Check)).c_str(),
                      Detail.c_str());
}

namespace {

/// Per-function lint context.
class FunctionLinter {
public:
  FunctionLinter(const masm::Module &M, const masm::Layout &L,
                 uint32_t FuncIdx, const LintOptions &Opts)
      : M(M), L(L), F(M.functions()[FuncIdx]), Opts(Opts), G(F), DT(G),
        LoopI(G, DT), RD(G) {
    Interp::Options IO;
    IO.ModLayout = &L;
    FTI = M.typeInfo().lookupFunction(F.name());
    IO.Frame = FTI;
    if (Opts.Ipa) {
      IO.Calls = Opts.Ipa->callModelFor(FuncIdx);
      IO.EntryState = Opts.Ipa->entryStateFor(FuncIdx);
    }
    AI.emplace(G, LoopI, IO);
    AI->run();
    for (const Instr &I : F.instrs())
      DefinedRegs |= 1u << static_cast<unsigned>(I.def());
  }

  std::vector<LintFinding> run();

private:
  const masm::Module &M;
  const masm::Layout &L;
  const masm::Function &F;
  const LintOptions &Opts;
  cfg::Cfg G;
  cfg::DominatorTree DT;
  cfg::LoopInfo LoopI;
  dataflow::ReachingDefs RD;
  const FunctionTypeInfo *FTI = nullptr;
  std::optional<Interp> AI;

  std::vector<LintFinding> Findings;
  unsigned CountPerCheck[NumLintChecks] = {};
  uint32_t DefinedRegs = 0; ///< Bitmask of registers written anywhere.

  void report(LintCheck C, uint32_t InstrIdx, std::string Detail) {
    unsigned &N = CountPerCheck[static_cast<unsigned>(C)];
    if (++N > Opts.MaxPerCheck)
      return;
    LintFinding Fd;
    Fd.Check = C;
    Fd.Function = F.name();
    Fd.InstrIdx = InstrIdx;
    Fd.Detail = std::move(Detail);
    Findings.push_back(std::move(Fd));
  }

  void checkUnreachable();
  void checkMemoryAccess(const State &S, uint32_t InstrIdx);
  void checkCallClobberedUses(uint32_t InstrIdx);
  void checkArgUseBeforeSet(uint32_t InstrIdx);
  void checkReturn(const State &S, uint32_t InstrIdx);
};

void FunctionLinter::checkUnreachable() {
  for (uint32_t B = 0; B != G.numBlocks(); ++B)
    if (!AI->reachable(B))
      report(LintCheck::UnreachableBlock, G.blocks()[B].Begin,
             formatString("block B%u [%u,%u) has no path from the entry", B,
                          G.blocks()[B].Begin, G.blocks()[B].End));
}

void FunctionLinter::checkMemoryAccess(const State &S, uint32_t InstrIdx) {
  const Instr &I = F.instrs()[InstrIdx];
  if (!isLoad(I.Op) && !isStore(I.Op))
    return;
  AbsValue Addr = addValues(S.reg(I.Rs), AbsValue::constant(I.Imm));
  unsigned Size = accessSize(I.Op);

  // gp-relative accesses must land inside [.data base, .data end).
  if (Addr.Base == SymBase::entryReg(Reg::GP)) {
    int64_t AbsLo =
        Addr.Lo == NegInf ? NegInf : int64_t(LayoutConstants::GpValue) + Addr.Lo;
    int64_t AbsHi = Addr.Hi == PosInf
                        ? PosInf
                        : int64_t(LayoutConstants::GpValue) + Addr.Hi + Size - 1;
    if (AbsLo < int64_t(LayoutConstants::DataBase) ||
        AbsHi >= int64_t(L.dataEnd()))
      report(LintCheck::GpOutOfData, InstrIdx,
             formatString("gp-relative access %s spans [0x%llx,0x%llx], .data "
                          "is [0x%x,0x%x)",
                          Addr.str().c_str(),
                          static_cast<unsigned long long>(AbsLo),
                          static_cast<unsigned long long>(AbsHi),
                          LayoutConstants::DataBase, L.dataEnd()));
    return;
  }

  // Use-before-write: a load of a frame slot (below the entry $sp) must
  // only read bytes stored on EVERY path from the entry. Declared locals
  // are exempt when frame metadata is present: reading an uninitialized
  // source variable is legal, while the compiler's own spill, temp and
  // save slots must always be written first.
  if (isLoad(I.Op) && Addr.Base == SymBase::entryReg(Reg::SP) &&
      Addr.isSingleton() && Addr.Lo < 0) {
    int32_t Off = static_cast<int32_t>(Addr.Lo);
    if (FTI) {
      AbsValue Sp = S.reg(Reg::SP);
      if (Sp.Base == SymBase::entryReg(Reg::SP) && Sp.isSingleton() &&
          FTI->resolve(Off - static_cast<int32_t>(Sp.Lo)))
        return; // A declared local variable.
    }
    for (unsigned Byte = 0; Byte != Size; ++Byte) {
      if (!S.Written.count(Off + static_cast<int32_t>(Byte))) {
        report(LintCheck::UseBeforeWrite, InstrIdx,
               formatString("frame slot sp0%+d (%u bytes) read but not "
                            "written on every path",
                            Off, Size));
        return;
      }
    }
  }
}

void FunctionLinter::checkCallClobberedUses(uint32_t InstrIdx) {
  const Instr &I = F.instrs()[InstrIdx];
  Reg Used[2] = {Reg::Zero, Reg::Zero};
  unsigned N = 0;
  if (readsRs(I.Op))
    Used[N++] = I.Rs;
  if (readsRt(I.Op))
    Used[N++] = I.Rt;
  for (unsigned U = 0; U != N; ++U) {
    Reg R = Used[U];
    // $v0/$v1 are legitimately read after a call — that is how results
    // arrive. Everything else caller-saved is garbage after a call.
    if (R == Reg::Zero || !isCallerSaved(R) || isRetReg(R))
      continue;
    for (const dataflow::Def &D : RD.defsReaching(InstrIdx, R)) {
      if (D.Kind != dataflow::DefKind::Call)
        continue;
      report(LintCheck::CallClobberedUse, InstrIdx,
             formatString("%s read here but clobbered by the call at +%u",
                          std::string(regName(R)).c_str(), D.InstrIdx));
      break;
    }
  }
}

void FunctionLinter::checkArgUseBeforeSet(uint32_t InstrIdx) {
  // Interprocedural cousin of CallClobberedUse: the jal itself does not
  // read $a0-$a3, but the callee does. Passing an argument register whose
  // last definition on some path is a call hands the callee a clobber.
  // Needs summaries to know which argument slots the callee actually reads.
  if (!Opts.Ipa)
    return;
  const Instr &I = F.instrs()[InstrIdx];
  if (I.Op != Opcode::Jal)
    return;
  uint32_t Callee = M.functionIndex(I.Sym);
  if (Callee == InvalidIndex)
    return;
  for (unsigned N = 0; N != 4; ++N) {
    if (!Opts.Ipa->calleeReadsArg(Callee, N))
      continue;
    Reg R = static_cast<Reg>(static_cast<unsigned>(Reg::A0) + N);
    for (const dataflow::Def &D : RD.defsReaching(InstrIdx, R)) {
      if (D.Kind != dataflow::DefKind::Call)
        continue;
      report(LintCheck::ArgUseBeforeSet, InstrIdx,
             formatString("%s passed to %s, which reads it, but it was "
                          "clobbered by the call at +%u",
                          std::string(regName(R)).c_str(), I.Sym.c_str(),
                          D.InstrIdx));
      break;
    }
  }
}

void FunctionLinter::checkReturn(const State &S, uint32_t InstrIdx) {
  // A return: $sp must hold exactly its entry value...
  AbsValue Sp = S.reg(Reg::SP);
  if (Sp != AbsValue::entry(Reg::SP))
    report(LintCheck::UnbalancedSp, InstrIdx,
           formatString("$sp at return is %s, expected sp0+0",
                        Sp.str().c_str()));
  // ...and every callee-saved register the function writes must have been
  // restored (abstractly: it again equals its entry value).
  for (unsigned RI = 0; RI != NumRegs; ++RI) {
    Reg R = static_cast<Reg>(RI);
    if (!isCalleeSaved(R) || R == Reg::SP)
      continue;
    if (!(DefinedRegs & (1u << RI)))
      continue;
    if (S.reg(R) != AbsValue::entry(R))
      report(LintCheck::CalleeSavedClobber, InstrIdx,
             formatString("%s is %s at return, not its entry value",
                          std::string(regName(R)).c_str(),
                          S.reg(R).str().c_str()));
  }
}

std::vector<LintFinding> FunctionLinter::run() {
  checkUnreachable();
  for (uint32_t B = 0; B != G.numBlocks(); ++B) {
    if (!AI->reachable(B))
      continue;
    State S = AI->blockIn(B);
    for (uint32_t Idx = G.blocks()[B].Begin; Idx != G.blocks()[B].End; ++Idx) {
      const Instr &I = F.instrs()[Idx];
      checkMemoryAccess(S, Idx);
      checkCallClobberedUses(Idx);
      checkArgUseBeforeSet(Idx);
      if (I.Op == Opcode::Jr && I.Rs == Reg::RA)
        checkReturn(S, Idx);
      AI->step(S, Idx);
    }
  }
  // Stable order for reports and tests: by instruction, then by check.
  std::sort(Findings.begin(), Findings.end(),
            [](const LintFinding &A, const LintFinding &B) {
              if (A.InstrIdx != B.InstrIdx)
                return A.InstrIdx < B.InstrIdx;
              return static_cast<unsigned>(A.Check) <
                     static_cast<unsigned>(B.Check);
            });
  return std::move(Findings);
}

} // namespace

std::vector<LintFinding> dlq::absint::lintFunction(const masm::Module &M,
                                                   const masm::Layout &L,
                                                   uint32_t FuncIdx,
                                                   const LintOptions &Opts) {
  if (M.functions()[FuncIdx].empty())
    return {};
  return FunctionLinter(M, L, FuncIdx, Opts).run();
}

std::vector<LintFinding> dlq::absint::lintModule(const masm::Module &M,
                                                 const LintOptions &Opts) {
  masm::Layout L(M);
  std::vector<LintFinding> All;
  for (uint32_t FI = 0; FI != M.functions().size(); ++FI) {
    std::vector<LintFinding> Fs = lintFunction(M, L, FI, Opts);
    All.insert(All.end(), Fs.begin(), Fs.end());
  }
  return All;
}
