//===- absint/Lint.h - Codegen lint checks over the abstract state --------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lint suite over the abstract interpreter: static detectors for the
/// wrong-code classes the differential fuzzer has had to find dynamically.
/// The flagship check is stack-slot use-before-write across branch joins —
/// the exact shape of the PR-3 spill-leak miscompile — plus use of
/// call-clobbered registers, callee-saved clobber without save/restore,
/// unbalanced $sp at return, gp-relative accesses outside .data, and
/// unreachable blocks.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_ABSINT_LINT_H
#define DLQ_ABSINT_LINT_H

#include "masm/Module.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dlq {
namespace absint {

class InterprocInfo;

enum class LintCheck : uint8_t {
  UseBeforeWrite,   ///< Load of a frame slot not written on every path.
  CallClobberedUse, ///< Read of a caller-saved reg last defined by a call.
  CalleeSavedClobber, ///< s-reg/fp/gp not holding its entry value at return.
  UnbalancedSp,     ///< $sp at return differs from its entry value.
  GpOutOfData,      ///< gp-relative access outside the .data segment.
  UnreachableBlock, ///< Basic block with no path from the function entry.
  /// A call passes an argument register the callee reads, but on some path
  /// the register still holds a previous call's clobber rather than a
  /// value this function set. Requires interprocedural summaries
  /// (LintOptions::Ipa) to know what each callee reads.
  ArgUseBeforeSet,
};

constexpr unsigned NumLintChecks = 7;

std::string_view lintCheckName(LintCheck C);

/// One diagnostic.
struct LintFinding {
  LintCheck Check = LintCheck::UseBeforeWrite;
  std::string Function;
  /// Offending instruction index within the function (for UnreachableBlock,
  /// the first instruction of the block).
  uint32_t InstrIdx = 0;
  std::string Detail;

  /// "func:+12: use-before-write: ..." for reports.
  std::string str() const;
};

struct LintOptions {
  /// Cap on findings per function per check, to keep reports readable when
  /// one systematic bug fires everywhere.
  unsigned MaxPerCheck = 8;
  /// Interprocedural summaries (ipa::ModuleSummaries). When set, the
  /// interpreter runs with call models and entry facts, and the
  /// ArgUseBeforeSet check is enabled.
  const InterprocInfo *Ipa = nullptr;
};

/// Lints one function. \p M supplies the layout and frame metadata.
std::vector<LintFinding> lintFunction(const masm::Module &M,
                                      const masm::Layout &L,
                                      uint32_t FuncIdx,
                                      const LintOptions &Opts = {});

/// Lints every function of \p M (must be finalized).
std::vector<LintFinding> lintModule(const masm::Module &M,
                                    const LintOptions &Opts = {});

} // namespace absint
} // namespace dlq

#endif // DLQ_ABSINT_LINT_H
