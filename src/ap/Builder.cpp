//===- ap/Builder.cpp ------------------------------------------------------==//

#include "ap/Builder.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace dlq;
using namespace dlq::ap;
using namespace dlq::masm;
using dlq::dataflow::Def;
using dlq::dataflow::DefKind;

bool ap::patternsEqual(const ApNode *A, const ApNode *B) {
  if (A == B)
    return true;
  if (!A || !B || A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case ApKind::Const:
    return A->Value == B->Value;
  case ApKind::Base:
    return A->BaseReg == B->BaseReg;
  case ApKind::GlobalAddr:
    return A->Value == B->Value && std::strcmp(A->Sym, B->Sym) == 0;
  case ApKind::Unknown:
  case ApKind::Recur:
    return true;
  default:
    return patternsEqual(A->Lhs, B->Lhs) && patternsEqual(A->Rhs, B->Rhs);
  }
}

InterprocPatterns::~InterprocPatterns() = default;

ApBuilder::ApBuilder(Arena &Arena_, const Function &Fn, const cfg::Cfg &G,
                     const dataflow::ReachingDefs &Defs,
                     ApBuilderOptions Options, const InterprocPatterns *Ipa)
    : A(Arena_), Factory(A), F(Fn), RD(Defs), Opts(Options), Ipa(Ipa) {
  (void)G;
}

void ApBuilder::capAlts(AltList &Alts) const {
  // Structural dedup, then truncate.
  AltList Unique;
  for (const ApNode *N : Alts) {
    bool Seen = false;
    for (const ApNode *U : Unique)
      if (patternsEqual(N, U)) {
        Seen = true;
        break;
      }
    if (!Seen)
      Unique.push_back(N);
    if (Unique.size() >= Opts.MaxPatternsPerLoad)
      break;
  }
  Alts = std::move(Unique);
}

ApBuilder::AltList ApBuilder::combine(ApKind Kind, const AltList &L,
                                      const AltList &R) {
  // Dedup during the cross product, not after: truncating first and letting
  // capAlts() dedup later can discard distinct combinations while duplicate
  // ones occupy the cap (the factory's structural simplification routinely
  // collapses different operand pairs into equal trees).
  AltList Out;
  for (const ApNode *Lhs : L) {
    for (const ApNode *Rhs : R) {
      const ApNode *N = Factory.getBinary(Kind, Lhs, Rhs);
      bool Seen = false;
      for (const ApNode *U : Out)
        if (patternsEqual(N, U)) {
          Seen = true;
          break;
        }
      if (Seen)
        continue;
      Out.push_back(N);
      if (Out.size() >= Opts.MaxPatternsPerLoad)
        return Out;
    }
  }
  return Out;
}

ApBuilder::AltList ApBuilder::expandReg(Reg R, uint32_t UsePoint,
                                        unsigned Depth,
                                        std::vector<uint32_t> &Stack) {
  if (R == Reg::Zero)
    return {Factory.getConst(0)};
  if (Depth >= Opts.MaxDepth)
    return {Factory.getUnknown()};

  std::vector<Def> Defs = RD.defsReaching(UsePoint, R);
  if (Defs.empty())
    return {Factory.getUnknown()};

  AltList Out;
  unsigned Alts = 0;
  for (const Def &D : Defs) {
    if (Alts++ >= Opts.MaxAltsPerUse)
      break;
    switch (D.Kind) {
    case DefKind::Entry:
      // With caller patterns available, an incoming argument expands to
      // the caller's actual (closed) address expressions.
      if (Ipa && isParamReg(R)) {
        if (const std::vector<const ApNode *> *AP = Ipa->argPatterns(R);
            AP && !AP->empty()) {
          ++Stats.ArgSubsts;
          Out.insert(Out.end(), AP->begin(), AP->end());
          break;
        }
      }
      Out.push_back(isBasicReg(R) ? Factory.getBase(R)
                                  : Factory.getUnknown());
      break;
    case DefKind::Call:
      // A call's return value is a reg_ret basic register; other clobbered
      // registers carry unknown values. A callee summary replaces the
      // reg_ret leaf with the callee's return patterns, rebound to this
      // site's arguments.
      if (Ipa && R == Reg::V0) {
        if (const std::vector<const ApNode *> *RP =
                Ipa->calleeReturnPatterns(D.InstrIdx);
            RP && !RP->empty()) {
          ++Stats.CallSubsts;
          for (const ApNode *P : *RP) {
            AltList Sub = rebindAtCall(P, D.InstrIdx, Depth + 1, Stack);
            Out.insert(Out.end(), Sub.begin(), Sub.end());
            if (Out.size() >= Opts.MaxPatternsPerLoad)
              break;
          }
          break;
        }
      }
      Out.push_back(isRetReg(R) ? Factory.getBase(R) : Factory.getUnknown());
      break;
    case DefKind::Normal: {
      if (std::find(Stack.begin(), Stack.end(), D.InstrIdx) != Stack.end()) {
        // The definition is being expanded already: loop-carried recurrence.
        Out.push_back(Factory.getRecur());
        break;
      }
      Stack.push_back(D.InstrIdx);
      AltList Sub = expandDefInstr(D.InstrIdx, Depth + 1, Stack);
      Stack.pop_back();
      Out.insert(Out.end(), Sub.begin(), Sub.end());
      break;
    }
    }
    if (Out.size() >= Opts.MaxPatternsPerLoad)
      break;
  }
  capAlts(Out);
  if (Out.empty())
    Out.push_back(Factory.getUnknown());
  return Out;
}

ApBuilder::AltList ApBuilder::expandDefInstr(uint32_t DefIdx, unsigned Depth,
                                             std::vector<uint32_t> &Stack) {
  const Instr &I = F.instrs()[DefIdx];

  auto expandSrc = [&](Reg R) { return expandReg(R, DefIdx, Depth, Stack); };
  auto constList = [&](int32_t V) { return AltList{Factory.getConst(V)}; };

  switch (I.Op) {
  case Opcode::Add:
    return combine(ApKind::Add, expandSrc(I.Rs), expandSrc(I.Rt));
  case Opcode::Sub:
    return combine(ApKind::Sub, expandSrc(I.Rs), expandSrc(I.Rt));
  case Opcode::Mul:
    return combine(ApKind::Mul, expandSrc(I.Rs), expandSrc(I.Rt));
  case Opcode::Sllv:
    return combine(ApKind::Shl, expandSrc(I.Rs), expandSrc(I.Rt));
  case Opcode::Srlv:
  case Opcode::Srav:
    return combine(ApKind::Shr, expandSrc(I.Rs), expandSrc(I.Rt));
  case Opcode::Addi:
    return combine(ApKind::Add, expandSrc(I.Rs), constList(I.Imm));
  case Opcode::Sll:
    return combine(ApKind::Shl, expandSrc(I.Rs), constList(I.Imm));
  case Opcode::Srl:
  case Opcode::Sra:
    return combine(ApKind::Shr, expandSrc(I.Rs), constList(I.Imm));
  case Opcode::Li:
    return constList(I.Imm);
  case Opcode::Lui:
    return constList(static_cast<int32_t>(static_cast<uint32_t>(I.Imm) << 16));
  case Opcode::La:
    return {Factory.getGlobal(I.Sym, I.Imm)};
  case Opcode::Move:
    return expandSrc(I.Rs);
  case Opcode::Ori: {
    // lui+ori constant materialization folds; anything else is Other.
    AltList Srcs = expandSrc(I.Rs);
    AltList Out;
    for (const ApNode *S : Srcs) {
      if (S->Kind == ApKind::Const)
        Out.push_back(Factory.getConst(
            static_cast<int32_t>(static_cast<uint32_t>(S->Value) |
                                 static_cast<uint32_t>(I.Imm))));
      else
        Out.push_back(
            Factory.getBinary(ApKind::Other, S, Factory.getConst(I.Imm)));
    }
    return Out;
  }
  case Opcode::Andi:
  case Opcode::Xori:
  case Opcode::Slti:
  case Opcode::Sltiu:
    return combine(ApKind::Other, expandSrc(I.Rs), constList(I.Imm));
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Nor:
  case Opcode::Slt:
  case Opcode::Sltu:
  case Opcode::Div:
  case Opcode::Rem:
    return combine(ApKind::Other, expandSrc(I.Rs), expandSrc(I.Rt));
  case Opcode::Lw:
  case Opcode::Lh:
  case Opcode::Lhu:
  case Opcode::Lb:
  case Opcode::Lbu: {
    // The defining instruction is itself a load: the value came from memory,
    // adding one dereference level around its own address pattern.
    AltList Addrs = combine(ApKind::Add, expandSrc(I.Rs), constList(I.Imm));
    AltList Out;
    for (const ApNode *Addr : Addrs)
      Out.push_back(Factory.getDeref(Addr));
    return Out;
  }
  default:
    return {Factory.getUnknown()};
  }
}

ApBuilder::AltList ApBuilder::rebindAtCall(const ApNode *P, uint32_t CallIdx,
                                           unsigned Depth,
                                           std::vector<uint32_t> &Stack) {
  if (Depth >= Opts.MaxDepth)
    return {Factory.getUnknown()};
  switch (P->Kind) {
  case ApKind::Const:
  case ApKind::GlobalAddr:
  case ApKind::Unknown:
  case ApKind::Recur:
    return {P};
  case ApKind::Base:
    if (isParamReg(P->BaseReg))
      return expandReg(P->BaseReg, CallIdx, Depth + 1, Stack);
    if (P->BaseReg == Reg::GP)
      return {P}; // gp holds the same global value in every frame.
    // The callee's sp and incoming reg_ret values have no expression in
    // the caller.
    return {Factory.getUnknown()};
  case ApKind::Deref: {
    AltList Sub = rebindAtCall(P->Lhs, CallIdx, Depth + 1, Stack);
    AltList Out;
    for (const ApNode *S : Sub)
      Out.push_back(Factory.getDeref(S));
    capAlts(Out);
    return Out;
  }
  default:
    return combine(P->Kind, rebindAtCall(P->Lhs, CallIdx, Depth + 1, Stack),
                   rebindAtCall(P->Rhs, CallIdx, Depth + 1, Stack));
  }
}

std::vector<const ApNode *> ApBuilder::buildForReg(Reg R, uint32_t UsePoint) {
  std::vector<uint32_t> Stack;
  AltList Out = expandReg(R, UsePoint, 0, Stack);
  if (Out.empty())
    Out.push_back(Factory.getUnknown());
  return Out;
}

std::vector<const ApNode *> ApBuilder::buildForAddressOperand(
    uint32_t InstrIdx) {
  const Instr &I = F.instrs()[InstrIdx];
  assert((isLoad(I.Op) || isStore(I.Op)) && "not a memory instruction");
  std::vector<uint32_t> Stack;
  AltList Base = expandReg(I.Rs, InstrIdx, 0, Stack);
  AltList Out = combine(ApKind::Add, Base, {Factory.getConst(I.Imm)});
  capAlts(Out);
  if (Out.empty())
    Out.push_back(Factory.getUnknown());
  return Out;
}

std::vector<const ApNode *> ApBuilder::buildForLoad(uint32_t InstrIdx) {
  assert(isLoad(F.instrs()[InstrIdx].Op) && "not a load");
  return buildForAddressOperand(InstrIdx);
}

std::map<uint32_t, std::vector<const ApNode *>>
ap::buildAllLoadPatterns(Arena &A, const Function &F, const cfg::Cfg &G,
                         const dataflow::ReachingDefs &RD,
                         ApBuilderOptions Options) {
  ApBuilder B(A, F, G, RD, Options);
  std::map<uint32_t, std::vector<const ApNode *>> Result;
  for (uint32_t Idx = 0; Idx != F.size(); ++Idx)
    if (isLoad(F.instrs()[Idx].Op))
      Result[Idx] = B.buildForLoad(Idx);
  return Result;
}
