//===- ap/Builder.h - Address-pattern construction --------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the address patterns of every load in a function by
/// back-substituting reaching definitions, eliminating the intermediate
/// registers so patterns are expressed only over basic registers and
/// constants (Section 5.1). A load reached by several control paths with
/// different address computations yields several patterns. A definition
/// encountered while it is already being expanded marks a loop-carried
/// recurrence (criterion H4).
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_AP_BUILDER_H
#define DLQ_AP_BUILDER_H

#include "ap/Pattern.h"
#include "cfg/Cfg.h"
#include "dataflow/ReachingDefs.h"
#include "masm/Module.h"
#include "support/Arena.h"

#include <cstdint>
#include <map>
#include <vector>

namespace dlq {
namespace ap {

/// Expansion limits keeping the analysis linear in practice (the paper notes
/// the analysis is "largely local in nature"; these caps are the guard rails
/// that keep it so on adversarial control flow).
struct ApBuilderOptions {
  /// Most patterns kept per load (extra control paths are dropped).
  unsigned MaxPatternsPerLoad = 16;
  /// Most reaching definitions expanded per register use.
  unsigned MaxAltsPerUse = 4;
  /// Expansion depth bound; deeper operands become Unknown.
  unsigned MaxDepth = 24;

  ApBuilderOptions() {}
};

/// Cross-function pattern source, installed per function by
/// classify::ModuleAnalysis when interprocedural analysis is enabled. All
/// returned pattern lists must live in the same arena as the builder's.
class InterprocPatterns {
public:
  virtual ~InterprocPatterns();

  /// Return-value patterns of the known callee at call instruction
  /// \p CallInstrIdx, expressed in *callee-entry* terms (reg_param leaves
  /// are rebound to the caller's values at the site). Null or empty means
  /// no summary: the call stays an opaque reg_ret.
  virtual const std::vector<const ApNode *> *
  calleeReturnPatterns(uint32_t CallInstrIdx) const = 0;

  /// Patterns for the current function's incoming argument register \p R,
  /// already expressed in caller-independent ("closed") terms: constants,
  /// globals, gp and derefs thereof. Null or empty keeps the reg_param
  /// leaf.
  virtual const std::vector<const ApNode *> *
  argPatterns(masm::Reg R) const = 0;
};

/// How often interprocedural substitution actually fired in one builder.
struct ApSubstStats {
  unsigned CallSubsts = 0; ///< reg_ret leaves replaced by callee patterns.
  unsigned ArgSubsts = 0;  ///< reg_param leaves replaced by caller patterns.
};

/// Address-pattern builder for one function.
class ApBuilder {
public:
  ApBuilder(Arena &A, const masm::Function &F, const cfg::Cfg &G,
            const dataflow::ReachingDefs &RD,
            ApBuilderOptions Options = ApBuilderOptions(),
            const InterprocPatterns *Ipa = nullptr);

  /// Patterns for the load at \p InstrIdx (at least one, possibly Unknown).
  std::vector<const ApNode *> buildForLoad(uint32_t InstrIdx);

  /// Patterns of the address operand of any memory instruction (loads and
  /// stores alike); used by the baselines.
  std::vector<const ApNode *> buildForAddressOperand(uint32_t InstrIdx);

  /// Patterns of register \p R as seen just before instruction
  /// \p UsePoint. The interprocedural driver uses this for $v0 at returns
  /// (export) and $a0..$a3 at call sites (substitution).
  std::vector<const ApNode *> buildForReg(masm::Reg R, uint32_t UsePoint);

  const ApSubstStats &substStats() const { return Stats; }

private:
  using AltList = std::vector<const ApNode *>;

  AltList expandReg(masm::Reg R, uint32_t UsePoint, unsigned Depth,
                    std::vector<uint32_t> &Stack);
  AltList expandDefInstr(uint32_t DefIdx, unsigned Depth,
                         std::vector<uint32_t> &Stack);
  /// Re-expresses callee pattern \p P in the caller's terms at call site
  /// \p CallIdx: reg_param leaves expand to the caller's argument values,
  /// gp stays (it is global), sp and reg_ret leaves become Unknown.
  AltList rebindAtCall(const ApNode *P, uint32_t CallIdx, unsigned Depth,
                       std::vector<uint32_t> &Stack);
  AltList combine(ApKind Kind, const AltList &L, const AltList &R);
  void capAlts(AltList &Alts) const;

  Arena &A;
  ApFactory Factory;
  const masm::Function &F;
  const dataflow::ReachingDefs &RD;
  ApBuilderOptions Opts;
  const InterprocPatterns *Ipa;
  ApSubstStats Stats;
};

/// Convenience: all loads of a function mapped to their patterns.
std::map<uint32_t, std::vector<const ApNode *>>
buildAllLoadPatterns(Arena &A, const masm::Function &F, const cfg::Cfg &G,
                     const dataflow::ReachingDefs &RD,
                     ApBuilderOptions Options = ApBuilderOptions());

/// True if \p A and \p B are structurally identical patterns.
bool patternsEqual(const ApNode *A, const ApNode *B);

} // namespace ap
} // namespace dlq

#endif // DLQ_AP_BUILDER_H
