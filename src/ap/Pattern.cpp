//===- ap/Pattern.cpp ------------------------------------------------------==//

#include "ap/Pattern.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace dlq;
using namespace dlq::ap;
using namespace dlq::masm;

const ApNode *ApFactory::node(ApNode Proto) {
  return A.create<ApNode>(Proto);
}

const ApNode *ApFactory::getConst(int32_t Value) {
  ApNode N;
  N.Kind = ApKind::Const;
  N.Value = Value;
  return node(N);
}

const ApNode *ApFactory::getBase(Reg R) {
  assert(isBasicReg(R) && "not a basic register");
  ApNode N;
  N.Kind = ApKind::Base;
  N.BaseReg = R;
  return node(N);
}

const ApNode *ApFactory::getGlobal(std::string_view Sym, int32_t Offset) {
  char *Owned = static_cast<char *>(A.allocate(Sym.size() + 1, 1));
  std::memcpy(Owned, Sym.data(), Sym.size());
  Owned[Sym.size()] = '\0';
  ApNode N;
  N.Kind = ApKind::GlobalAddr;
  N.Sym = Owned;
  N.Value = Offset;
  return node(N);
}

const ApNode *ApFactory::getUnknown() {
  ApNode N;
  N.Kind = ApKind::Unknown;
  return node(N);
}

const ApNode *ApFactory::getRecur() {
  ApNode N;
  N.Kind = ApKind::Recur;
  return node(N);
}

namespace {

/// Two's-complement wrap, matching the simulator's Add/Sub/Mul. Offsets fed
/// through pattern folding come from arbitrary constant arithmetic in the
/// analyzed program, so signed host overflow here would be UB on valid input.
int32_t wrapAdd(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) +
                              static_cast<uint32_t>(B));
}
int32_t wrapSub(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) -
                              static_cast<uint32_t>(B));
}
int32_t wrapMul(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) *
                              static_cast<uint32_t>(B));
}

} // namespace

const ApNode *ApFactory::getBinary(ApKind Kind, const ApNode *L,
                                   const ApNode *R) {
  assert((Kind == ApKind::Add || Kind == ApKind::Sub || Kind == ApKind::Mul ||
          Kind == ApKind::Shl || Kind == ApKind::Shr ||
          Kind == ApKind::Other) &&
         "not a binary kind");
  // Constant folding keeps patterns in the compact form the paper shows
  // (e.g. "45(sp)" instead of "(sp+40+5)").
  if (L->Kind == ApKind::Const && R->Kind == ApKind::Const) {
    switch (Kind) {
    case ApKind::Add:
      return getConst(wrapAdd(L->Value, R->Value));
    case ApKind::Sub:
      return getConst(wrapSub(L->Value, R->Value));
    case ApKind::Mul:
      return getConst(wrapMul(L->Value, R->Value));
    case ApKind::Shl:
      return getConst(static_cast<int32_t>(
          static_cast<uint32_t>(L->Value)
          << (static_cast<uint32_t>(R->Value) & 31)));
    case ApKind::Shr:
      return getConst(static_cast<int32_t>(static_cast<uint32_t>(L->Value) >>
                                           (static_cast<uint32_t>(R->Value) &
                                            31)));
    default:
      break;
    }
  }
  if (Kind == ApKind::Add) {
    if (L->Kind == ApKind::Const && L->Value == 0)
      return R;
    if (R->Kind == ApKind::Const && R->Value == 0)
      return L;
    // Fold (global + const) into the GlobalAddr offset.
    if (L->Kind == ApKind::GlobalAddr && R->Kind == ApKind::Const) {
      ApNode N = *L;
      N.Value = wrapAdd(N.Value, R->Value);
      return node(N);
    }
    if (R->Kind == ApKind::GlobalAddr && L->Kind == ApKind::Const) {
      ApNode N = *R;
      N.Value = wrapAdd(N.Value, L->Value);
      return node(N);
    }
    // Reassociate (x + c1) + c2 -> x + (c1+c2).
    if (R->Kind == ApKind::Const && L->Kind == ApKind::Add &&
        L->Rhs->Kind == ApKind::Const) {
      ApNode N;
      N.Kind = ApKind::Add;
      N.Lhs = L->Lhs;
      N.Rhs = getConst(wrapAdd(L->Rhs->Value, R->Value));
      return node(N);
    }
  }
  if (Kind == ApKind::Sub && R->Kind == ApKind::Const)
    return getBinary(ApKind::Add, L, getConst(wrapSub(0, R->Value)));

  ApNode N;
  N.Kind = Kind;
  N.Lhs = L;
  N.Rhs = R;
  return node(N);
}

const ApNode *ApFactory::getDeref(const ApNode *Inner) {
  ApNode N;
  N.Kind = ApKind::Deref;
  N.Lhs = Inner;
  return node(N);
}

//===----------------------------------------------------------------------===//
// Feature queries
//===----------------------------------------------------------------------===//

BaseRegCounts ap::countBaseRegs(const ApNode *N) {
  BaseRegCounts C;
  if (!N)
    return C;
  switch (N->Kind) {
  case ApKind::Base:
    if (N->BaseReg == Reg::SP)
      ++C.Sp;
    else if (N->BaseReg == Reg::GP)
      ++C.Gp;
    else if (isParamReg(N->BaseReg))
      ++C.Param;
    else if (isRetReg(N->BaseReg))
      ++C.Ret;
    return C;
  case ApKind::GlobalAddr:
    ++C.Gp;
    return C;
  default:
    break;
  }
  for (const ApNode *Child : {N->Lhs, N->Rhs}) {
    if (!Child)
      continue;
    BaseRegCounts Sub = countBaseRegs(Child);
    C.Sp += Sub.Sp;
    C.Gp += Sub.Gp;
    C.Param += Sub.Param;
    C.Ret += Sub.Ret;
  }
  return C;
}

bool ap::hasMulOrShift(const ApNode *N) {
  if (!N)
    return false;
  if (N->Kind == ApKind::Mul || N->Kind == ApKind::Shl ||
      N->Kind == ApKind::Shr)
    return true;
  return hasMulOrShift(N->Lhs) || hasMulOrShift(N->Rhs);
}

unsigned ap::derefDepth(const ApNode *N) {
  if (!N)
    return 0;
  unsigned Below = std::max(derefDepth(N->Lhs), derefDepth(N->Rhs));
  return N->Kind == ApKind::Deref ? Below + 1 : Below;
}

bool ap::hasRecurrence(const ApNode *N) {
  if (!N)
    return false;
  if (N->Kind == ApKind::Recur)
    return true;
  return hasRecurrence(N->Lhs) || hasRecurrence(N->Rhs);
}

bool ap::hasUnknown(const ApNode *N) {
  if (!N)
    return false;
  if (N->Kind == ApKind::Unknown)
    return true;
  return hasUnknown(N->Lhs) || hasUnknown(N->Rhs);
}

unsigned ap::patternSize(const ApNode *N) {
  if (!N)
    return 0;
  return 1 + patternSize(N->Lhs) + patternSize(N->Rhs);
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

/// Operator precedence for printing: deref > mul > add/sub > shift.
int precedence(ApKind K) {
  switch (K) {
  case ApKind::Deref:
    return 4;
  case ApKind::Mul:
    return 3;
  case ApKind::Add:
  case ApKind::Sub:
    return 2;
  case ApKind::Shl:
  case ApKind::Shr:
  case ApKind::Other:
    return 1;
  default:
    return 5; // Leaves never need parens.
  }
}

std::string printRec(const ApNode *N, int ParentPrec) {
  std::string Out;
  int MyPrec = precedence(N->Kind);
  switch (N->Kind) {
  case ApKind::Const:
    Out = formatString("%d", N->Value);
    break;
  case ApKind::Base: {
    std::string_view Name = regName(N->BaseReg);
    Name.remove_prefix(1); // The paper writes "sp", not "$sp".
    Out = std::string(Name);
    break;
  }
  case ApKind::GlobalAddr:
    Out = N->Value != 0 ? formatString("&%s+%d", N->Sym, N->Value)
                        : formatString("&%s", N->Sym);
    break;
  case ApKind::Unknown:
    Out = "?";
    break;
  case ApKind::Recur:
    Out = "@rec";
    break;
  case ApKind::Deref: {
    // The paper's form "45(sp)": offset(inner) when the child is inner+const.
    const ApNode *Inner = N->Lhs;
    if (Inner->Kind == ApKind::Add && Inner->Rhs->Kind == ApKind::Const) {
      Out = formatString("%d(%s)", Inner->Rhs->Value,
                         printRec(Inner->Lhs, 0).c_str());
    } else if (Inner->Kind == ApKind::Const) {
      Out = formatString("%d()", Inner->Value);
    } else {
      Out = "(" + printRec(Inner, 0) + ")";
    }
    return Out; // Dereference binds tightest; never needs extra parens.
  }
  case ApKind::Add:
    Out = printRec(N->Lhs, MyPrec) + "+" + printRec(N->Rhs, MyPrec + 1);
    break;
  case ApKind::Sub:
    Out = printRec(N->Lhs, MyPrec) + "-" + printRec(N->Rhs, MyPrec + 1);
    break;
  case ApKind::Mul:
    Out = printRec(N->Lhs, MyPrec) + "*" + printRec(N->Rhs, MyPrec + 1);
    break;
  case ApKind::Shl:
    Out = printRec(N->Lhs, MyPrec) + "<<" + printRec(N->Rhs, MyPrec + 1);
    break;
  case ApKind::Shr:
    Out = printRec(N->Lhs, MyPrec) + ">>" + printRec(N->Rhs, MyPrec + 1);
    break;
  case ApKind::Other:
    Out = printRec(N->Lhs, MyPrec) + "#" + printRec(N->Rhs, MyPrec + 1);
    break;
  }
  if (MyPrec < ParentPrec)
    Out = "{" + Out + "}";
  return Out;
}

} // namespace

std::string ap::printPattern(const ApNode *N) {
  if (!N)
    return "<null>";
  return printRec(N, 0);
}
