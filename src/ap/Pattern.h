//===- ap/Pattern.h - Address-pattern expression trees ----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The address-pattern language of Section 5.1:
///
///   AP -> AP(AP) | AP*AP | AP+AP | AP-AP | AP<<AP | AP>>AP | const | BR
///   BR -> gp | sp | reg_param | reg_ret
///
/// Parenthesis denotes dereference: "45(sp)+30" is *(sp+45) + 30. Patterns
/// are immutable arena-allocated trees. Two node kinds extend the grammar
/// for practical disassembly:
///  - GlobalAddr: `la` of a data symbol. MIPS materializes global addresses
///    through $gp, so this counts as a gp occurrence for criterion H1, and
///    it preserves the symbol name for the BDH baseline's type analysis.
///  - Other: an ALU operation outside the grammar (and/or/xor/...) whose
///    operand structure is still worth keeping (so dereferences below it are
///    not lost).
///  - Recur: marks the point where the expansion found the value defined in
///    terms of itself around a loop (criterion H4).
///  - Unknown: an operand the static expansion cannot resolve.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_AP_PATTERN_H
#define DLQ_AP_PATTERN_H

#include "masm/Register.h"
#include "support/Arena.h"

#include <cstdint>
#include <string>

namespace dlq {
namespace ap {

/// Address-pattern node kinds.
enum class ApKind : uint8_t {
  Const,      ///< Integer literal.
  Base,       ///< A basic register: gp, sp, reg_param, reg_ret.
  GlobalAddr, ///< Address of a data symbol (gp-materialized).
  Unknown,    ///< Unresolvable operand.
  Recur,      ///< Loop-carried recurrence marker.
  Add,
  Sub,
  Mul,
  Shl,
  Shr,
  Other, ///< ALU op outside the grammar; children preserved.
  Deref, ///< Memory dereference (one child).
};

/// One immutable pattern node.
struct ApNode {
  ApKind Kind;
  int32_t Value = 0;                   ///< Const payload.
  masm::Reg BaseReg = masm::Reg::Zero; ///< Base payload.
  const char *Sym = nullptr;           ///< GlobalAddr payload (arena-owned).
  const ApNode *Lhs = nullptr;
  const ApNode *Rhs = nullptr;
};

/// Creates pattern nodes inside an arena, with light structural
/// simplification (constant folding of add/sub, dropping +0).
class ApFactory {
public:
  explicit ApFactory(Arena &A) : A(A) {}

  const ApNode *getConst(int32_t Value);
  const ApNode *getBase(masm::Reg R);
  const ApNode *getGlobal(std::string_view Sym, int32_t Offset);
  const ApNode *getUnknown();
  const ApNode *getRecur();
  const ApNode *getBinary(ApKind Kind, const ApNode *L, const ApNode *R);
  const ApNode *getDeref(const ApNode *Inner);

private:
  Arena &A;
  const ApNode *node(ApNode Proto);
};

//===----------------------------------------------------------------------===//
// Structural feature queries (the inputs to criteria H1..H4)
//===----------------------------------------------------------------------===//

/// Counts of basic-register occurrences in a pattern (criterion H1).
struct BaseRegCounts {
  unsigned Sp = 0;
  unsigned Gp = 0; ///< Includes GlobalAddr nodes.
  unsigned Param = 0;
  unsigned Ret = 0;

  unsigned total() const { return Sp + Gp + Param + Ret; }
};

/// Computes H1 register-occurrence counts over the whole tree.
BaseRegCounts countBaseRegs(const ApNode *N);

/// True if the pattern contains a multiplication or shift (criterion H2).
bool hasMulOrShift(const ApNode *N);

/// Maximum dereference nesting depth (criterion H3).
unsigned derefDepth(const ApNode *N);

/// True if the pattern contains a recurrence marker (criterion H4).
bool hasRecurrence(const ApNode *N);

/// True if the pattern contains an Unknown leaf.
bool hasUnknown(const ApNode *N);

/// Number of nodes in the tree (shared subtrees counted per occurrence).
unsigned patternSize(const ApNode *N);

/// Renders the pattern in the paper's syntax, e.g. "45(sp)+30".
std::string printPattern(const ApNode *N);

} // namespace ap
} // namespace dlq

#endif // DLQ_AP_PATTERN_H
