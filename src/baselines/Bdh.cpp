//===- baselines/Bdh.cpp -------------------------------------------------------//

#include "baselines/Bdh.h"

#include <algorithm>

using namespace dlq;
using namespace dlq::baselines;
using namespace dlq::ap;
using namespace dlq::masm;

const std::set<std::string> &baselines::bdhSelectedClasses() {
  static const std::set<std::string> Selected = {"GAN", "HSN", "HFN",
                                                 "HAN", "HFP", "HAP"};
  return Selected;
}

namespace {

/// What the address ultimately derives from.
enum class BaseTermKind { GlobalSym, Sp, Gp, Deref, Param, Ret, Unknown };

struct BaseTerm {
  BaseTermKind Kind = BaseTermKind::Unknown;
  const ApNode *Node = nullptr; ///< The GlobalAddr node when Kind==GlobalSym.
};

/// Priority for picking the dominant base of a compound address.
int termPriority(BaseTermKind K) {
  switch (K) {
  case BaseTermKind::GlobalSym:
    return 6;
  case BaseTermKind::Sp:
    return 5;
  case BaseTermKind::Deref:
    return 4;
  case BaseTermKind::Param:
    return 3;
  case BaseTermKind::Ret:
    return 2;
  case BaseTermKind::Gp:
    return 1;
  case BaseTermKind::Unknown:
    return 0;
  }
  return 0;
}

BaseTerm findBaseTerm(const ApNode *N) {
  if (!N)
    return BaseTerm();
  switch (N->Kind) {
  case ApKind::GlobalAddr:
    return BaseTerm{BaseTermKind::GlobalSym, N};
  case ApKind::Base:
    if (N->BaseReg == Reg::SP)
      return BaseTerm{BaseTermKind::Sp, N};
    if (N->BaseReg == Reg::GP)
      return BaseTerm{BaseTermKind::Gp, N};
    if (isParamReg(N->BaseReg))
      return BaseTerm{BaseTermKind::Param, N};
    return BaseTerm{BaseTermKind::Ret, N};
  case ApKind::Deref:
    return BaseTerm{BaseTermKind::Deref, N};
  case ApKind::Const:
  case ApKind::Unknown:
  case ApKind::Recur:
    return BaseTerm();
  default: {
    BaseTerm L = findBaseTerm(N->Lhs);
    BaseTerm R = findBaseTerm(N->Rhs);
    return termPriority(L.Kind) >= termPriority(R.Kind) ? L : R;
  }
  }
}

/// Splits a normalized pattern into (base expression, constant displacement).
void splitConstOff(const ApNode *N, const ApNode *&BaseOut, int32_t &OffOut) {
  BaseOut = N;
  OffOut = 0;
  if (N->Kind == ApKind::Add && N->Rhs && N->Rhs->Kind == ApKind::Const) {
    BaseOut = N->Lhs;
    OffOut = N->Rhs->Value;
  } else if (N->Kind == ApKind::Const) {
    BaseOut = nullptr;
    OffOut = N->Value;
  }
}

/// The prologue's stack adjustment: address patterns are expressed relative
/// to the *entry* $sp, while the symbol-table frame offsets are relative to
/// the adjusted $sp, so frame lookups must add this back.
int32_t prologueAdjust(const Function &F) {
  for (uint32_t Idx = 0; Idx != F.size() && Idx != 4; ++Idx) {
    const Instr &I = F.instrs()[Idx];
    if (I.Op == Opcode::Addi && I.Rd == Reg::SP && I.Rs == Reg::SP &&
        I.Imm < 0)
      return -I.Imm;
  }
  return 0;
}

/// True if the value loaded by \p LoadIdx is later used as an address base
/// (the paper's rule: "if a value loaded from memory is used as part of the
/// address in a subsequent load, the first load is assumed to be a pointer
/// reference"), or stored into a frame slot the symbol table declares as a
/// pointer variable (the unoptimized store/reload idiom). Forward scan
/// until the register is clobbered.
bool valueUsedAsAddress(const Module &M, const Function &F,
                        uint32_t LoadIdx) {
  const FunctionTypeInfo *FTI = M.typeInfo().lookupFunction(F.name());
  Reg Tracked = F.instrs()[LoadIdx].Rd;
  uint32_t Limit = std::min<uint32_t>(static_cast<uint32_t>(F.size()),
                                      LoadIdx + 64);
  Reg Alias = Reg::Zero;
  for (uint32_t Idx = LoadIdx + 1; Idx < Limit; ++Idx) {
    const Instr &I = F.instrs()[Idx];
    bool IsTrackedBase =
        (isLoad(I.Op) || isStore(I.Op)) && (I.Rs == Tracked ||
                                            (Alias != Reg::Zero &&
                                             I.Rs == Alias));
    if (IsTrackedBase)
      return true;
    // Stored into a declared pointer variable?
    if (isStore(I.Op) && I.Rt == Tracked && I.Rs == Reg::SP && FTI) {
      auto Slot = FTI->resolve(I.Imm);
      if (Slot && Slot->IsPointer)
        return true;
    }
    if (isStore(I.Op) && I.Rt == Tracked && I.Rs != Reg::SP) {
      // Stored through a pointer into the heap: field type unknown; keep
      // scanning.
    }
    // Track one level of move/addi aliasing.
    if ((I.Op == Opcode::Move || I.Op == Opcode::Addi ||
         I.Op == Opcode::Add) &&
        (I.Rs == Tracked || I.Rt == Tracked) && Alias == Reg::Zero &&
        I.Rd != Tracked) {
      Alias = I.Rd;
      continue;
    }
    if (I.def() == Tracked)
      return false;
    if (Alias != Reg::Zero && I.def() == Alias)
      Alias = Reg::Zero;
    if (isCall(I.Op)) {
      if (isCallerSaved(Tracked))
        return false;
      if (Alias != Reg::Zero && isCallerSaved(Alias))
        Alias = Reg::Zero;
    }
  }
  return false;
}

BdhClass classifyLoad(const Module &M, const Function &F, uint32_t LoadIdx,
                      const std::vector<const ApNode *> &Patterns) {
  BdhClass C;
  if (Patterns.empty())
    return C;
  const ApNode *P = Patterns.front();

  const ApNode *Base = nullptr;
  int32_t Off = 0;
  splitConstOff(P, Base, Off);
  BaseTerm Term = findBaseTerm(Base ? Base : P);

  bool Scaled = hasMulOrShift(P);
  std::optional<ResolvedAccess> Resolved;

  switch (Term.Kind) {
  case BaseTermKind::GlobalSym: {
    C.Region = 'G';
    uint32_t Within = static_cast<uint32_t>(Term.Node->Value + Off);
    Resolved = M.typeInfo().resolveGlobal(Term.Node->Sym, Within);
    break;
  }
  case BaseTermKind::Gp:
    C.Region = 'G';
    break;
  case BaseTermKind::Sp: {
    C.Region = 'S';
    // Patterns measure offsets from the entry $sp; translate to the
    // post-prologue frame the symbol table describes.
    int32_t SlotOff = Off + prologueAdjust(F);
    if (const FunctionTypeInfo *FTI = M.typeInfo().lookupFunction(F.name()))
      Resolved = FTI->resolve(SlotOff);
    break;
  }
  case BaseTermKind::Deref:
  case BaseTermKind::Param:
  case BaseTermKind::Ret:
    // Pointer-derived addresses: statically assumed heap (malloc results
    // arrive through $v0; loaded pointers overwhelmingly point into the
    // heap; pointer parameters are treated as heap, as the paper notes
    // these are exactly the hard cases for a static classifier).
    C.Region = 'H';
    break;
  case BaseTermKind::Unknown:
    C.Region = 'H';
    break;
  }

  if (Resolved) {
    switch (Resolved->Kind) {
    case VarKind::Scalar:
      C.Kind = 'S';
      break;
    case VarKind::Array:
      C.Kind = 'A';
      break;
    case VarKind::StructObj:
      C.Kind = 'F';
      break;
    }
    C.Type = Resolved->IsPointer ? 'P' : 'N';
    // A scaled access into a declared array stays A even if the type info
    // said the resolved byte is a scalar field.
    if (Scaled && C.Kind == 'S')
      C.Kind = 'A';
    return C;
  }

  // No symbol-table answer. Undeclared stack slots (spills, saved
  // registers) are anonymous scalars; for heap addresses a scaled index
  // means an array element and a displacement means a field.
  if (Scaled)
    C.Kind = 'A';
  else if (Off != 0 && C.Region == 'H')
    C.Kind = 'F';
  else
    C.Kind = 'S';
  C.Type = valueUsedAsAddress(M, F, LoadIdx) ? 'P' : 'N';
  return C;
}

} // namespace

BdhAnalyzer::BdhAnalyzer(const classify::ModuleAnalysis &MA) {
  const Module &M = MA.module();
  for (const auto &[Ref, Patterns] : MA.loadPatterns()) {
    const Function &F = M.functions()[Ref.FuncIdx];
    Classes[Ref] = classifyLoad(M, F, Ref.InstrIdx, Patterns);
  }
}

std::set<InstrRef>
BdhAnalyzer::delinquentSet(const std::set<std::string> &Selected) const {
  std::set<InstrRef> Delta;
  for (const auto &[Ref, Class] : Classes)
    if (Selected.count(Class.str()))
      Delta.insert(Ref);
  return Delta;
}
