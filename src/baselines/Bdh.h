//===- baselines/Bdh.h - static Burtscher/Diwan/Hauswirth baseline -------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static BDH classification of Section 8.5. Every load gets a
/// three-letter class:
///
///   region: G (global data), S (stack), H (heap)
///   kind:   S (scalar), A (array element), F (struct field)
///   type:   P (the loaded value is a pointer), N (non-pointer)
///
/// following the paper's static reconstruction: base register / address
/// pattern decides the region ($sp => S, $gp / `la` of a data symbol => G,
/// malloc-derived or loaded-pointer bases => H); the symbol table (our
/// ModuleTypeInfo) decides kind and type for stack and global accesses; for
/// heap accesses, scaled indices mean A, non-zero displacements mean F, and
/// a loaded value that later serves as an address base is deemed a pointer.
///
/// The predicted-delinquent set is the union of the classes the BDH paper
/// recommends: GAN, HSN, HFN, HAN, HFP, HAP.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_BASELINES_BDH_H
#define DLQ_BASELINES_BDH_H

#include "classify/Delinquency.h"
#include "masm/Module.h"

#include <map>
#include <set>
#include <string>

namespace dlq {
namespace baselines {

/// One load's BDH class.
struct BdhClass {
  char Region = 'S';
  char Kind = 'S';
  char Type = 'N';

  std::string str() const { return std::string{Region, Kind, Type}; }
};

/// The six classes the BDH heuristic selects.
const std::set<std::string> &bdhSelectedClasses();

/// Static BDH classifier over a whole module.
class BdhAnalyzer {
public:
  /// \p MA supplies the address patterns; \p M supplies the symbol-table
  /// type metadata (must be the analysis' module).
  explicit BdhAnalyzer(const classify::ModuleAnalysis &MA);

  /// Per-load classes.
  const std::map<masm::InstrRef, BdhClass> &classes() const { return Classes; }

  /// Loads in any of \p Selected (defaults to the paper's six classes).
  std::set<masm::InstrRef>
  delinquentSet(const std::set<std::string> &Selected = bdhSelectedClasses())
      const;

private:
  std::map<masm::InstrRef, BdhClass> Classes;
};

} // namespace baselines
} // namespace dlq

#endif // DLQ_BASELINES_BDH_H
