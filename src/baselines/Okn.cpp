//===- baselines/Okn.cpp -------------------------------------------------------//

#include "baselines/Okn.h"

using namespace dlq;
using namespace dlq::baselines;
using namespace dlq::ap;

OknClass baselines::oknClassOf(const std::vector<const ApNode *> &Patterns) {
  bool AnyStride = false;
  for (const ApNode *N : Patterns) {
    if (derefDepth(N) >= 1)
      return OknClass::PointerDeref;
    if (hasRecurrence(N) || hasMulOrShift(N))
      AnyStride = true;
  }
  return AnyStride ? OknClass::Strided : OknClass::Other;
}

std::map<masm::InstrRef, OknClass>
baselines::oknClassify(const classify::ModuleAnalysis &MA) {
  std::map<masm::InstrRef, OknClass> Result;
  for (const auto &[Ref, Pats] : MA.loadPatterns())
    Result[Ref] = oknClassOf(Pats);
  return Result;
}

std::set<masm::InstrRef>
baselines::oknDelinquentSet(const classify::ModuleAnalysis &MA) {
  std::set<masm::InstrRef> Delta;
  for (const auto &[Ref, Class] : oknClassify(MA))
    if (Class != OknClass::Other)
      Delta.insert(Ref);
  return Delta;
}
