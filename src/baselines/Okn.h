//===- baselines/Okn.h - Ozawa/Kimura/Nishizaki baseline -----------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OKN method (Section 2 / Table 12): three simple heuristics classify
/// each load as a pointer-dereferencing reference, a strided reference, or
/// neither; the first two categories are predicted delinquent. The paper
/// reports the OKN method selecting 30-60% of all loads while covering
/// roughly as many misses as the proposed heuristic — the comparison point
/// that motivates the much more precise AG-class scheme.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_BASELINES_OKN_H
#define DLQ_BASELINES_OKN_H

#include "classify/Delinquency.h"
#include "masm/Module.h"

#include <map>
#include <set>

namespace dlq {
namespace baselines {

/// OKN load categories.
enum class OknClass {
  PointerDeref, ///< The address depends on a value loaded from memory.
  Strided,      ///< The address advances by an induction (recurrence) or a
                ///< scaled index (mul/shift).
  Other,
};

/// Classifies one load from its address patterns (any pattern voting for a
/// category is enough; pointer-dereference takes precedence).
OknClass oknClassOf(const std::vector<const ap::ApNode *> &Patterns);

/// All loads OKN predicts delinquent: PointerDeref and Strided classes.
std::set<masm::InstrRef>
oknDelinquentSet(const classify::ModuleAnalysis &MA);

/// Per-load OKN classes for reporting.
std::map<masm::InstrRef, OknClass>
oknClassify(const classify::ModuleAnalysis &MA);

} // namespace baselines
} // namespace dlq

#endif // DLQ_BASELINES_OKN_H
