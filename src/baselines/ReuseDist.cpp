//===- baselines/ReuseDist.cpp --------------------------------------------==//

#include "baselines/ReuseDist.h"

using namespace dlq;
using namespace dlq::baselines;

ReuseDistAnalyzer::ReuseDistAnalyzer(const masm::Module &M,
                                     const masm::Layout &L,
                                     const sim::CacheConfig &Cache,
                                     const ReuseDistOptions &Opts) {
  camodel::CacheModel Model(M, L);
  Preds = Model.predict(Cache);

  // Loop membership of Unknown loads comes from the model's own access
  // summaries (the predictions carry no loop context).
  std::map<masm::InstrRef, bool> InLoop;
  for (const absint::FunctionAccessInfo &Info : Model.accessInfo())
    for (const absint::AccessSummary &A : Info.Accesses)
      InLoop[A.Ref] = A.InnermostLoop != masm::InvalidIndex;

  for (const auto &[Ref, P] : Preds) {
    if (!P.Known) {
      if (Opts.FlagUnknownInLoop && InLoop[Ref])
        Delta.insert(Ref);
      continue;
    }
    if (P.MissRatio >= Opts.MissThreshold)
      Delta.insert(Ref);
  }
}
