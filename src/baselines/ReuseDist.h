//===- baselines/ReuseDist.h - reuse-distance baseline --------------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A third baseline for Table 12, built on the analytical cache model
/// (src/camodel) instead of address patterns: a load is predicted
/// delinquent when its statically estimated reuse-distance profile gives a
/// miss ratio at or above a threshold under the baseline cache. Loads the
/// model cannot capture (pointer chases, data-dependent indices) are
/// flagged when they sit inside a loop — a reuse-distance argument cannot
/// clear them, and in practice they are exactly the delinquent ones.
///
/// This is the "static reuse profile" school of prior work next to the
/// paper's pattern-matching school (OKN, BDH): structurally blind but
/// geometry-aware, where the AG classes are geometry-blind but structurally
/// sharp.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_BASELINES_REUSEDIST_H
#define DLQ_BASELINES_REUSEDIST_H

#include "camodel/Camodel.h"
#include "masm/Module.h"

#include <map>
#include <set>

namespace dlq {
namespace baselines {

struct ReuseDistOptions {
  /// Predicted miss ratio at or above this marks a load delinquent.
  double MissThreshold = 0.05;
  /// Flag model-Unknown loads that execute inside a loop.
  bool FlagUnknownInLoop = true;
};

/// The reuse-distance classifier: camodel predictions under one geometry,
/// thresholded into a delinquent set.
class ReuseDistAnalyzer {
public:
  ReuseDistAnalyzer(const masm::Module &M, const masm::Layout &L,
                    const sim::CacheConfig &Cache,
                    const ReuseDistOptions &Opts = ReuseDistOptions());

  const std::set<masm::InstrRef> &delinquentSet() const { return Delta; }
  const std::map<masm::InstrRef, camodel::Prediction> &predictions() const {
    return Preds;
  }

private:
  std::map<masm::InstrRef, camodel::Prediction> Preds;
  std::set<masm::InstrRef> Delta;
};

} // namespace baselines
} // namespace dlq

#endif // DLQ_BASELINES_REUSEDIST_H
