//===- camodel/Camodel.cpp ------------------------------------------------==//

#include "camodel/Camodel.h"

#include "masm/Opcode.h"

#include <algorithm>
#include <cmath>

using namespace dlq;
using namespace dlq::camodel;
using namespace dlq::absint;
using namespace dlq::masm;

const char *camodel::regimeName(Regime R) {
  switch (R) {
  case Regime::Invariant:
    return "invariant";
  case Regime::Fits:
    return "fits";
  case Regime::Streaming:
    return "streaming";
  case Regime::Cold:
    return "cold";
  case Regime::Unknown:
    return "unknown";
  }
  return "?";
}

double camodel::hitProbability(uint64_t D, const sim::CacheConfig &Cfg) {
  uint64_t Assoc = Cfg.Assoc;
  if (D < Assoc)
    return 1.0; // Fewer intervening blocks than ways: LRU cannot evict it.
  uint32_t Sets = Cfg.numSets();
  if (Sets <= 1)
    return 0.0; // Fully associative and D >= ways: exact closed form.
  // Uniform-placement correction: each of the D intervening blocks lands in
  // this block's set with probability 1/S; the reuse hits iff fewer than A
  // of them did. Terms are built iteratively from q^D.
  double P = 1.0 / Sets, Q = 1.0 - P;
  double Term = std::exp(static_cast<double>(D) * std::log(Q));
  double Sum = Term;
  for (uint64_t K = 0; K + 1 < Assoc; ++K) {
    Term *= static_cast<double>(D - K) / static_cast<double>(K + 1) * (P / Q);
    Sum += Term;
  }
  return std::min(1.0, Sum);
}

namespace {

constexpr uint64_t Unbounded = ~0ull;

uint64_t satMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > Unbounded / 2 / B)
    return Unbounded / 2;
  return A * B;
}

uint64_t ceilDiv(uint64_t A, uint64_t B) { return (A + B - 1) / B; }

/// The per-function model: footprints and loop-relative working sets are
/// geometry-independent except for the block size, so everything is derived
/// on demand per predict() call (a call is microseconds; clarity wins).
class FunctionModel {
public:
  FunctionModel(const FunctionAccessInfo &Info, const sim::CacheConfig &Cfg)
      : Info(Info), Cfg(Cfg), Block(Cfg.BlockBytes) {
    Footprints.reserve(Info.Accesses.size());
    for (const AccessSummary &A : Info.Accesses)
      Footprints.push_back(footprintOf(A));
  }

  Prediction predict(size_t Idx) const;

private:
  /// Estimated distinct bytes the access touches over one function
  /// invocation; Unbounded when nothing caps the walk.
  uint64_t footprintOf(const AccessSummary &A) const {
    if (A.Kind == AccessKind::Invariant)
      return A.Size;
    uint64_t F = Unbounded;
    if (A.Lo != NegInf && A.Hi != PosInf)
      F = std::min(F, static_cast<uint64_t>(A.Hi - A.Lo) + A.Size);
    if (A.Kind == AccessKind::Regular && A.NestTrips > 0)
      F = std::min(F, satMul(A.Stride, A.NestTrips) + A.Size);
    if (A.Extent > 0)
      F = std::min(F, A.Extent);
    return F;
  }

  /// True when loop \p Ancestor is on \p Loop's parent chain (inclusive).
  bool inLoop(uint32_t Loop, uint32_t Ancestor) const {
    for (uint32_t L = Loop; L != InvalidIndex; L = Info.Loops[L].Parent)
      if (L == Ancestor)
        return true;
    return false;
  }

  /// Product of proven trips of the loops enclosing \p A strictly inside
  /// \p Outer (how many times A runs per iteration of Outer). 0 = unproven.
  uint64_t tripsWithin(const AccessSummary &A, uint32_t Outer) const {
    uint64_t Product = 1;
    for (uint32_t L = A.InnermostLoop; L != InvalidIndex && L != Outer;
         L = Info.Loops[L].Parent) {
      if (Info.Loops[L].Trip == 0)
        return 0;
      Product = satMul(Product, Info.Loops[L].Trip);
    }
    return Product;
  }

  /// True when every loop strictly between \p A's innermost loop and
  /// \p Outer (inclusive of the former) is entered on each iteration of its
  /// parent. A conditional level — an amortized table reset, a rare slow
  /// path — means A's full per-visit footprint must not be charged to every
  /// \p Outer iteration.
  bool runsEveryIteration(const AccessSummary &A, uint32_t Outer) const {
    for (uint32_t L = A.InnermostLoop; L != InvalidIndex && L != Outer;
         L = Info.Loops[L].Parent)
      if (!Info.Loops[L].Unconditional)
        return false;
    return true;
  }

  /// Distinct blocks access \p BIdx touches during one iteration of loop
  /// \p Outer (the reuse-interval contribution of a neighboring access).
  uint64_t contribBlocks(size_t BIdx, uint32_t Outer) const {
    const AccessSummary &A = Info.Accesses[BIdx];
    if (A.Kind == AccessKind::Invariant)
      return 1;
    // Conditionally reached accesses pollute some iterations, not the
    // steady state: charge the site once.
    if (!runsEveryIteration(A, Outer))
      return 1;
    uint64_t Execs = tripsWithin(A, Outer);
    uint64_t Bytes = Footprints[BIdx];
    if (A.Kind == AccessKind::Regular) {
      if (Execs > 0)
        Bytes = std::min(Bytes, satMul(A.Stride, Execs) + A.Size);
      if (Bytes == Unbounded)
        return 1; // Nothing proven: count the stream once.
      uint64_t Blocks = ceilDiv(Bytes, Block);
      // A sparse walk (stride beyond the block) touches one block per
      // execution, not span/Block blocks: the span is mostly skipped.
      if (A.Stride >= Block && Execs > 0)
        Blocks = std::min(Blocks, Execs);
      return std::max<uint64_t>(1, Blocks);
    }
    // Irregular with a resolved object: every execution may touch a fresh
    // block, capped by the object's extent. With no resolved object there
    // is no evidence for per-execution pollution (a hash probe that mostly
    // re-hits would count the same as a fresh-node chase), so the site
    // counts once rather than swamping every neighbour's reuse distance.
    if (A.Extent == 0)
      return 1;
    uint64_t ByExt = ceilDiv(A.Extent, Block);
    uint64_t ByExec = Execs > 0 ? Execs : Unbounded;
    return std::max<uint64_t>(1, std::min(ByExt, ByExec));
  }

  static int64_t anchorOf(const AccessSummary &A) {
    return A.Lo != NegInf ? A.Lo : A.Hi;
  }

  /// True when accesses \p A and \p B provably address the same object:
  /// the resolved global matches, or (unresolved bases) the symbolic base
  /// and the finite anchor of the walk match.
  bool sameObject(const AccessSummary &A, const AccessSummary &B) const {
    if (A.ObjBase != 0 && B.ObjBase != 0)
      return A.ObjBase == B.ObjBase;
    if (A.Base.K != B.Base.K || A.Base.R != B.Base.R ||
        A.Base.DefInstr != B.Base.DefInstr)
      return false;
    int64_t AnchorA = anchorOf(A), AnchorB = anchorOf(B);
    return AnchorA != NegInf && AnchorA != PosInf && AnchorA == AnchorB;
  }

  /// Smallest positive distance (bytes, in walk direction) to another
  /// regular access of the same object and stride in the same innermost
  /// loop. Such a "leader" touches this access's blocks first (stencil
  /// neighbours, rowptr[i]/rowptr[i+1] pairs); the follower then reuses
  /// them a few iterations later. Returns 0 when no leader exists.
  uint64_t leaderGap(size_t Idx) const {
    const AccessSummary &A = Info.Accesses[Idx];
    if (A.InnermostLoop == InvalidIndex)
      return 0;
    bool Ascending = A.Lo != NegInf;
    uint64_t Best = 0;
    for (size_t J = 0; J != Info.Accesses.size(); ++J) {
      if (J == Idx)
        continue;
      const AccessSummary &B = Info.Accesses[J];
      if (B.Kind != AccessKind::Regular || B.Stride != A.Stride ||
          B.InnermostLoop != A.InnermostLoop || !sameObject(A, B))
        continue;
      int64_t G = Ascending ? anchorOf(B) - anchorOf(A)
                            : anchorOf(A) - anchorOf(B);
      if (G > 0 && (Best == 0 || static_cast<uint64_t>(G) < Best))
        Best = static_cast<uint64_t>(G);
    }
    return Best;
  }

  /// Reuse distance (blocks) behind a leader \p GapBytes ahead: every
  /// stream in the innermost loop advances for Gap/stride iterations
  /// before the follower re-touches the leader's blocks. Same-object
  /// streams whose anchors fall in the same block are one stream (e.g.
  /// x[i][j-1] and x[i][j+1]).
  uint64_t gapReuseDistance(size_t Self, uint64_t GapBytes) const {
    const AccessSummary &A = Info.Accesses[Self];
    uint32_t Li = A.InnermostLoop;
    uint64_t Stride = std::max<uint64_t>(1, A.Stride);
    uint64_t GapIters = std::max<uint64_t>(1, GapBytes / Stride);
    uint64_t D = 0;
    std::vector<std::pair<uint64_t, int64_t>> Buckets; // (obj, anchor/B)
    for (size_t J = 0; J != Info.Accesses.size(); ++J) {
      const AccessSummary &B = Info.Accesses[J];
      if (!inLoop(B.InnermostLoop, Li))
        continue;
      if (B.InnermostLoop != Li) {
        // A nested loop runs to completion GapIters times in the window.
        D += satMul(GapIters, contribBlocks(J, Li));
        continue;
      }
      if (B.Kind != AccessKind::Regular) {
        D += 1;
        continue;
      }
      std::pair<uint64_t, int64_t> Key{
          B.ObjBase, anchorOf(B) / static_cast<int64_t>(Block)};
      if (std::find(Buckets.begin(), Buckets.end(), Key) != Buckets.end())
        continue;
      Buckets.push_back(Key);
      uint64_t Adv = ceilDiv(satMul(B.Stride, GapIters), Block);
      if (B.Stride >= Block)
        Adv = std::min(Adv, GapIters); // Sparse: one block per iteration.
      D += std::max<uint64_t>(1, Adv);
      if (D > (1ull << 32))
        break;
    }
    return D;
  }

  /// True when some other analysable access in a different innermost loop
  /// inside \p Carrier walks the same object as \p Idx. Sibling loops of
  /// one carrier iteration then re-touch the blocks between each other, so
  /// the object's reuse distance is its own footprint, not the carrier's
  /// whole working set (the classic "several passes over the same small
  /// array per outer iteration" shape).
  bool rescannedBySibling(size_t Idx, uint32_t Carrier) const {
    const AccessSummary &A = Info.Accesses[Idx];
    for (size_t J = 0; J != Info.Accesses.size(); ++J) {
      if (J == Idx)
        continue;
      const AccessSummary &B = Info.Accesses[J];
      if (B.Kind == AccessKind::Irregular ||
          B.InnermostLoop == A.InnermostLoop ||
          !inLoop(B.InnermostLoop, Carrier))
        continue;
      if (sameObject(A, B))
        return true;
    }
    return false;
  }

  /// Reuse distance (in blocks) seen across one iteration of \p Outer:
  /// everything the loop body touches, except the access itself. Accesses
  /// that resolve to the same object are distinct *blocks* of one array,
  /// so their summed contribution is capped by the object's extent —
  /// three walks of a 4KB matrix pollute 128 blocks, not 384.
  uint64_t reuseDistance(size_t Self, uint32_t Outer) const {
    uint64_t D = 0;
    std::vector<std::pair<uint64_t, uint64_t>> PerObj; // (obj, blocks)
    std::vector<std::pair<uint64_t, uint64_t>> ObjCap; // (obj, extent)
    for (size_t I = 0; I != Info.Accesses.size(); ++I) {
      if (I == Self)
        continue;
      const AccessSummary &B = Info.Accesses[I];
      if (!inLoop(B.InnermostLoop, Outer))
        continue;
      uint64_t C = contribBlocks(I, Outer);
      if (B.ObjBase != 0 && B.Extent > 0) {
        auto Find = [&](auto &V) {
          for (auto &E : V)
            if (E.first == B.ObjBase)
              return &E;
          V.push_back({B.ObjBase, uint64_t(0)});
          return &V.back();
        };
        Find(PerObj)->second += C;
        auto *Cap = Find(ObjCap);
        Cap->second = std::max(Cap->second, ceilDiv(B.Extent, Block));
        continue;
      }
      D += C;
      if (D > (1ull << 32))
        break; // Far beyond any cache; stop summing.
    }
    for (size_t I = 0; I != PerObj.size(); ++I)
      D += std::min(PerObj[I].second, ObjCap[I].second);
    return D;
  }

  const FunctionAccessInfo &Info;
  const sim::CacheConfig &Cfg;
  uint64_t Block;
  std::vector<uint64_t> Footprints;
};

Prediction FunctionModel::predict(size_t Idx) const {
  const AccessSummary &A = Info.Accesses[Idx];
  Prediction P;

  if (A.Kind == AccessKind::Irregular)
    return P; // Unknown.

  if (A.Kind == AccessKind::Invariant) {
    P.Known = true;
    P.Footprint = A.Size;
    if (A.InnermostLoop == InvalidIndex) {
      // Executed once per call: steady-state miss ratio is not meaningful,
      // and the contribution to total misses is negligible.
      P.R = Regime::Cold;
      P.MissRatio = 0;
      return P;
    }
    // Re-accessed every iteration; it survives iff the rest of one
    // iteration's working set does not push it out.
    P.SpatialBlocks = reuseDistance(Idx, A.InnermostLoop);
    P.MissRatio = 1.0 - hitProbability(P.SpatialBlocks, Cfg);
    P.R = Regime::Invariant;
    return P;
  }

  // Regular affine walk.
  uint64_t F = Footprints[Idx];
  if (F == Unbounded)
    return P; // No proven cap on the walk: honest Unknown.
  P.Known = true;
  P.Footprint = F;

  double NewBlockFrac =
      std::min(1.0, static_cast<double>(A.Stride) / Block);

  // Find the reuse-carrying loop: the parent of the innermost level whose
  // full run covers the object (its next iteration re-walks the blocks).
  uint32_t Carrier = InvalidIndex;
  bool Covered = false;
  uint64_t CoverTrips = 1; // Executions of A per object traversal.
  for (uint32_t L = A.InnermostLoop; L != InvalidIndex;
       L = Info.Loops[L].Parent) {
    if (Info.Loops[L].Trip == 0)
      break; // Unproven level: cannot see reuse above it.
    CoverTrips = satMul(CoverTrips, Info.Loops[L].Trip);
    if (satMul(A.Stride, CoverTrips) + A.Size >= F) {
      Carrier = Info.Loops[L].Parent;
      Covered = true;
      break;
    }
  }

  double TemporalHit = 0;
  double ColdShare = 0;
  uint64_t Gap = leaderGap(Idx);
  if (Gap > 0) {
    // A leader stream runs ahead: this access's blocks were touched
    // Gap/stride iterations ago, whatever the loop nest above does. The
    // leader pays the cold misses.
    P.ReuseBlocks = gapReuseDistance(Idx, Gap);
    TemporalHit = hitProbability(P.ReuseBlocks, Cfg);
  } else if (Covered && Carrier != InvalidIndex) {
    P.ReuseBlocks = reuseDistance(Idx, Carrier) + ceilDiv(F, Block);
    if (rescannedBySibling(Idx, Carrier))
      P.ReuseBlocks = std::min(P.ReuseBlocks, ceilDiv(F, Block));
    TemporalHit = hitProbability(P.ReuseBlocks, Cfg);
    // The first traversal still cold-misses; amortize it over the number
    // of traversals the proven trip counts give.
    uint64_t Traversals = 1;
    if (A.NestTrips > 0 && CoverTrips > 0)
      Traversals = std::max<uint64_t>(1, A.NestTrips / CoverTrips);
    ColdShare = 1.0 / static_cast<double>(Traversals);
  }

  // Spatial reuse: successive iterations land in the same block (when the
  // stride is below the block size) across one innermost iteration's
  // working set.
  double SpatialHit = 0;
  if (A.Stride < Block && A.InnermostLoop != InvalidIndex) {
    P.SpatialBlocks = reuseDistance(Idx, A.InnermostLoop);
    SpatialHit = hitProbability(P.SpatialBlocks, Cfg);
  }

  double MissOnNewBlock =
      (1.0 - TemporalHit) + TemporalHit * ColdShare;
  P.MissRatio = NewBlockFrac * MissOnNewBlock +
                (1.0 - NewBlockFrac) * (1.0 - SpatialHit);
  P.MissRatio = std::min(1.0, std::max(0.0, P.MissRatio));
  P.R = TemporalHit >= 0.5 ? Regime::Fits : Regime::Streaming;
  return P;
}

} // namespace

CacheModel::CacheModel(const Module &M, const Layout &L,
                       const absint::InterprocInfo *Ipa)
    : Infos(collectModuleAccessInfo(M, L, Ipa)) {}

std::map<InstrRef, Prediction>
CacheModel::predict(const sim::CacheConfig &Cfg) const {
  std::map<InstrRef, Prediction> Out;
  for (const FunctionAccessInfo &Info : Infos) {
    FunctionModel FM(Info, Cfg);
    for (size_t I = 0; I != Info.Accesses.size(); ++I) {
      const AccessSummary &A = Info.Accesses[I];
      if (A.IsStore)
        continue; // Stores shape working sets; predictions are per load.
      Out[A.Ref] = FM.predict(I);
    }
  }
  return Out;
}
