//===- camodel/Camodel.h - Analytical cache model ---------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second backend for per-PC miss prediction: instead of simulating the
/// program against a sim::Cache, predict each load's miss ratio analytically
/// from the static reuse profile of its access function (absint's
/// AccessSummary export). The construction follows the two papers named in
/// the ROADMAP:
///
///  - a static reuse/stack-distance profile per access, estimated from the
///    loop nest: how many distinct cache blocks are touched between two uses
///    of the same block ("Static Reuse Profile Estimation for Array
///    Applications", Razzak et al.);
///  - a fully-associative closed form — a reuse at stack distance D hits iff
///    D < C/B blocks — plus a set-associative correction that treats block
///    placement as uniform over the S sets, giving
///        P(hit | D) = sum_{k=0}^{A-1} C(D,k) (1/S)^k (1 - 1/S)^(D-k)
///    ("A Fast Analytical Model of Fully Associative Caches", Gysi et al.).
///
/// Every prediction is per-PC and per-geometry, so associativity/size sweeps
/// (Tables 8/9 and the widened camodel sweep) cost microseconds per point
/// instead of a full simulation. Accesses the domain cannot capture —
/// pointer chases, data-dependent indices, byte-granular walks — get an
/// honest Unknown verdict rather than a guess.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_CAMODEL_CAMODEL_H
#define DLQ_CAMODEL_CAMODEL_H

#include "absint/AccessSummary.h"
#include "masm/Module.h"
#include "sim/Cache.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dlq {
namespace camodel {

/// Which closed form produced a prediction (diagnostics and triage).
enum class Regime : uint8_t {
  Invariant, ///< Fixed address: stays resident while the loop runs.
  Fits,      ///< Walk re-traverses an object whose reuse interval fits.
  Streaming, ///< Walk never re-finds its blocks: misses on each new block.
  Cold,      ///< Executed too rarely for steady-state behaviour (no loop).
  Unknown,   ///< The domain could not capture the access.
};

/// One load's analytical prediction under one cache geometry.
struct Prediction {
  bool Known = false;   ///< False = Unknown verdict; MissRatio meaningless.
  double MissRatio = 0; ///< Predicted misses / executions, in [0, 1].
  Regime R = Regime::Unknown;

  // Diagnostics for `delinq camodel` and divergence triage.
  uint64_t Footprint = 0;     ///< Estimated distinct bytes walked.
  uint64_t ReuseBlocks = 0;   ///< Temporal reuse distance (blocks; 0 none).
  uint64_t SpatialBlocks = 0; ///< Spatial reuse distance (blocks; 0 none).
};

const char *regimeName(Regime R);

/// P(hit) for one reuse whose backward stack distance is \p DistanceBlocks
/// distinct blocks, under \p Cfg. Fully associative caches use the exact
/// closed form (distance < blocks-in-cache); set-associative caches apply
/// the uniform-placement binomial correction.
double hitProbability(uint64_t DistanceBlocks, const sim::CacheConfig &Cfg);

/// The analytical model of one module. Construction runs the abstract
/// interpreter once per function (the expensive part); predictions for any
/// number of geometries are then closed-form arithmetic per load.
class CacheModel {
public:
  /// \p Ipa optionally supplies interprocedural summaries
  /// (ipa::ModuleSummaries): argument-rooted addresses then classify
  /// against caller facts and fewer trip counts are lost to call havoc,
  /// shrinking the Known = false population.
  CacheModel(const masm::Module &M, const masm::Layout &L,
             const absint::InterprocInfo *Ipa = nullptr);

  /// Per-load predictions under \p Cfg (all loads of the module appear;
  /// irregular ones carry Known = false).
  std::map<masm::InstrRef, Prediction>
  predict(const sim::CacheConfig &Cfg) const;

  /// The access summaries the model was built from (for reporting).
  const std::vector<absint::FunctionAccessInfo> &accessInfo() const {
    return Infos;
  }

private:
  std::vector<absint::FunctionAccessInfo> Infos;
};

} // namespace camodel
} // namespace dlq

#endif // DLQ_CAMODEL_CAMODEL_H
