//===- cfg/Cfg.cpp --------------------------------------------------------==//

#include "cfg/Cfg.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace dlq;
using namespace dlq::cfg;
using namespace dlq::masm;

//===----------------------------------------------------------------------===//
// Cfg construction
//===----------------------------------------------------------------------===//

Cfg::Cfg(const masm::Function &Fn) : F(Fn) {
  const std::vector<Instr> &Body = F.instrs();
  uint32_t N = static_cast<uint32_t>(Body.size());
  InstrToBlock.assign(N, 0);
  if (N == 0)
    return;

  // Leaders: index 0, every branch target, every fall-through successor of a
  // control transfer.
  std::set<uint32_t> Leaders;
  Leaders.insert(0);
  for (uint32_t Idx = 0; Idx != N; ++Idx) {
    const Instr &I = Body[Idx];
    if (!I.endsBlock())
      continue;
    if ((isCondBranch(I.Op) || I.Op == Opcode::J) &&
        I.TargetIndex != InvalidIndex)
      Leaders.insert(I.TargetIndex);
    if (Idx + 1 < N)
      Leaders.insert(Idx + 1);
  }

  // Materialize blocks.
  std::vector<uint32_t> LeaderList(Leaders.begin(), Leaders.end());
  for (size_t BI = 0; BI != LeaderList.size(); ++BI) {
    BasicBlock B;
    B.Begin = LeaderList[BI];
    B.End = (BI + 1 == LeaderList.size()) ? N : LeaderList[BI + 1];
    Blocks.push_back(std::move(B));
  }
  for (uint32_t BId = 0; BId != Blocks.size(); ++BId)
    for (uint32_t Idx = Blocks[BId].Begin; Idx != Blocks[BId].End; ++Idx)
      InstrToBlock[Idx] = BId;

  // Edges. A call (jal/jalr) falls through; jr ends the function path.
  for (uint32_t BId = 0; BId != Blocks.size(); ++BId) {
    BasicBlock &B = Blocks[BId];
    const Instr &Last = Body[B.End - 1];
    auto addEdge = [&](uint32_t ToInstr) {
      uint32_t To = InstrToBlock[ToInstr];
      B.Succs.push_back(To);
      Blocks[To].Preds.push_back(BId);
    };

    if (isCondBranch(Last.Op)) {
      assert(Last.TargetIndex != InvalidIndex && "unresolved branch");
      addEdge(Last.TargetIndex);
      if (B.End < N)
        addEdge(B.End);
    } else if (Last.Op == Opcode::J) {
      assert(Last.TargetIndex != InvalidIndex && "unresolved jump");
      addEdge(Last.TargetIndex);
    } else if (Last.Op == Opcode::Jr || Last.Op == Opcode::Jalr) {
      // jr exits the function. jalr is a call and falls through.
      if (Last.Op == Opcode::Jalr && B.End < N)
        addEdge(B.End);
    } else {
      // Plain instruction or jal (call): falls through if not at the end.
      if (B.End < N)
        addEdge(B.End);
    }
  }

  // Deduplicate edges (a conditional branch to the fall-through block).
  for (BasicBlock &B : Blocks) {
    auto dedup = [](std::vector<uint32_t> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end()), V.end());
    };
    dedup(B.Succs);
    dedup(B.Preds);
  }
}

std::string Cfg::dump() const {
  std::string Out;
  for (uint32_t BId = 0; BId != Blocks.size(); ++BId) {
    const BasicBlock &B = Blocks[BId];
    Out += formatString("B%u [%u,%u) ->", BId, B.Begin, B.End);
    for (uint32_t S : B.Succs)
      Out += formatString(" B%u", S);
    Out += "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// DominatorTree
//===----------------------------------------------------------------------===//

DominatorTree::DominatorTree(const Cfg &G) {
  uint32_t N = static_cast<uint32_t>(G.numBlocks());
  Idom.assign(N, InvalidIndex);
  if (N == 0)
    return;

  // Reverse postorder over the CFG.
  std::vector<uint32_t> Order;
  std::vector<uint8_t> Seen(N, 0);
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.push_back({G.entry(), 0});
  Seen[G.entry()] = 1;
  while (!Stack.empty()) {
    auto &[B, Next] = Stack.back();
    const std::vector<uint32_t> &Succs = G.blocks()[B].Succs;
    if (Next < Succs.size()) {
      uint32_t S = Succs[Next++];
      if (!Seen[S]) {
        Seen[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    Order.push_back(B);
    Stack.pop_back();
  }
  std::reverse(Order.begin(), Order.end());

  std::vector<uint32_t> RpoNum(N, InvalidIndex);
  for (uint32_t I = 0; I != Order.size(); ++I)
    RpoNum[Order[I]] = I;

  // Cooper-Harvey-Kennedy iterative algorithm.
  auto intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoNum[A] > RpoNum[B])
        A = Idom[A];
      while (RpoNum[B] > RpoNum[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[G.entry()] = G.entry();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : Order) {
      if (B == G.entry())
        continue;
      uint32_t NewIdom = InvalidIndex;
      for (uint32_t P : G.blocks()[B].Preds) {
        if (Idom[P] == InvalidIndex || RpoNum[P] == InvalidIndex)
          continue; // Unreachable or not yet processed.
        NewIdom = (NewIdom == InvalidIndex) ? P : intersect(P, NewIdom);
      }
      if (NewIdom != InvalidIndex && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(uint32_t A, uint32_t B) const {
  // Walk B's idom chain up to the entry.
  while (true) {
    if (A == B)
      return true;
    if (Idom[B] == InvalidIndex || Idom[B] == B)
      return A == B;
    B = Idom[B];
  }
}

//===----------------------------------------------------------------------===//
// LoopInfo
//===----------------------------------------------------------------------===//

bool Loop::contains(uint32_t B) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), B);
}

namespace {

/// Blocks belonging to a cycle: members of a strongly connected component
/// with more than one block, or of a self-loop. Iterative Tarjan.
std::vector<uint32_t> blocksInNontrivialSccs(const Cfg &G) {
  uint32_t N = static_cast<uint32_t>(G.numBlocks());
  std::vector<uint32_t> Index(N, InvalidIndex), Low(N, 0);
  std::vector<uint8_t> OnStack(N, 0);
  std::vector<uint32_t> Stack;
  std::vector<uint32_t> Result;
  uint32_t NextIndex = 0;

  struct Frame {
    uint32_t B;
    size_t NextSucc;
  };
  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Index[Root] != InvalidIndex)
      continue;
    std::vector<Frame> Frames{{Root, 0}};
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      const std::vector<uint32_t> &Succs = G.blocks()[F.B].Succs;
      if (F.NextSucc < Succs.size()) {
        uint32_t S = Succs[F.NextSucc++];
        if (Index[S] == InvalidIndex) {
          Index[S] = Low[S] = NextIndex++;
          Stack.push_back(S);
          OnStack[S] = 1;
          Frames.push_back({S, 0});
        } else if (OnStack[S]) {
          Low[F.B] = std::min(Low[F.B], Index[S]);
        }
        continue;
      }
      uint32_t B = F.B;
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().B] = std::min(Low[Frames.back().B], Low[B]);
      if (Low[B] != Index[B])
        continue;
      // B is an SCC root; pop its component.
      std::vector<uint32_t> Comp;
      while (true) {
        uint32_t Popped = Stack.back();
        Stack.pop_back();
        OnStack[Popped] = 0;
        Comp.push_back(Popped);
        if (Popped == B)
          break;
      }
      bool SelfLoop =
          Comp.size() == 1 &&
          std::find(G.blocks()[B].Succs.begin(), G.blocks()[B].Succs.end(),
                    B) != G.blocks()[B].Succs.end();
      if (Comp.size() > 1 || SelfLoop)
        Result.insert(Result.end(), Comp.begin(), Comp.end());
    }
  }
  return Result;
}

} // namespace

LoopInfo::LoopInfo(const Cfg &G, const DominatorTree &DT) {
  uint32_t N = static_cast<uint32_t>(G.numBlocks());
  Depth.assign(N, 0);
  if (N == 0)
    return;

  // Reverse-postorder numbering, to tell retreat edges (target at or before
  // the source) from forward/cross edges. Unreachable blocks keep
  // InvalidIndex and never produce loops or irreducible reports.
  std::vector<uint32_t> RpoNum(N, InvalidIndex);
  {
    std::vector<uint32_t> Order;
    std::vector<uint8_t> Seen(N, 0);
    std::vector<std::pair<uint32_t, size_t>> Stack;
    Stack.push_back({G.entry(), 0});
    Seen[G.entry()] = 1;
    while (!Stack.empty()) {
      auto &[B, Next] = Stack.back();
      const std::vector<uint32_t> &Succs = G.blocks()[B].Succs;
      if (Next < Succs.size()) {
        uint32_t S = Succs[Next++];
        if (!Seen[S]) {
          Seen[S] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      Order.push_back(B);
      Stack.pop_back();
    }
    std::reverse(Order.begin(), Order.end());
    for (uint32_t I = 0; I != Order.size(); ++I)
      RpoNum[Order[I]] = I;
  }

  // All back edges sharing a header form ONE loop (a `continue` is a second
  // latch, not a second loop). Retreat edges whose target does not dominate
  // the source close an irreducible cycle: recorded, not dropped.
  std::map<uint32_t, std::vector<uint32_t>> HeaderLatches;
  for (uint32_t B = 0; B != N; ++B) {
    if (RpoNum[B] == InvalidIndex)
      continue;
    for (uint32_t S : G.blocks()[B].Succs) {
      if (DT.dominates(S, B)) {
        HeaderLatches[S].push_back(B);
      } else if (RpoNum[S] <= RpoNum[B]) {
        Irreducible.push_back({B, S});
      }
    }
  }

  for (auto &[Header, Latches] : HeaderLatches) {
    Loop L;
    L.Header = Header;
    std::sort(Latches.begin(), Latches.end());
    L.Latches = Latches;
    // The merged body: everything that reaches any latch without passing
    // through the header.
    std::set<uint32_t> Body{Header};
    std::vector<uint32_t> Work;
    for (uint32_t Latch : Latches)
      if (Body.insert(Latch).second)
        Work.push_back(Latch);
    while (!Work.empty()) {
      uint32_t Cur = Work.back();
      Work.pop_back();
      for (uint32_t P : G.blocks()[Cur].Preds)
        if (Body.insert(P).second)
          Work.push_back(P);
    }
    L.Blocks.assign(Body.begin(), Body.end());
    for (uint32_t B : L.Blocks)
      for (uint32_t S : G.blocks()[B].Succs)
        if (!Body.count(S)) {
          L.Exits.push_back(B);
          break;
        }
    Loops.push_back(std::move(L));
  }

  for (const Loop &L : Loops)
    for (uint32_t B : L.Blocks)
      ++Depth[B];

  // Blocks on an irreducible cycle may sit in no natural loop; give every
  // block of a nontrivial SCC depth >= 1 so frequency estimation does not
  // treat the cycle as straight-line code.
  if (!Irreducible.empty()) {
    for (uint32_t B : blocksInNontrivialSccs(G))
      if (Depth[B] == 0)
        Depth[B] = 1;
  }
}

uint32_t LoopInfo::loopAtHeader(uint32_t B) const {
  for (uint32_t I = 0; I != Loops.size(); ++I)
    if (Loops[I].Header == B)
      return I;
  return InvalidIndex;
}
