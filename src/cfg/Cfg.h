//===- cfg/Cfg.h - Control-flow graph reconstruction ----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs the control-flow graph of a function from its linear
/// instruction stream, exactly as the paper does after disassembling the
/// binary: leaders are branch targets and fall-throughs of control transfers.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_CFG_CFG_H
#define DLQ_CFG_CFG_H

#include "masm/Module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dlq {
namespace cfg {

/// One basic block: the half-open instruction index range [Begin, End).
struct BasicBlock {
  uint32_t Begin = 0;
  uint32_t End = 0;
  std::vector<uint32_t> Succs; ///< Successor block ids.
  std::vector<uint32_t> Preds; ///< Predecessor block ids.

  uint32_t size() const { return End - Begin; }
};

/// The control-flow graph of one function.
class Cfg {
public:
  /// Builds the CFG of \p F (branch targets must be resolved).
  explicit Cfg(const masm::Function &F);

  const masm::Function &function() const { return F; }
  const std::vector<BasicBlock> &blocks() const { return Blocks; }
  size_t numBlocks() const { return Blocks.size(); }

  /// Block id containing instruction index \p InstrIdx.
  uint32_t blockOf(uint32_t InstrIdx) const {
    return InstrToBlock[InstrIdx];
  }

  /// Entry block id (always 0 for nonempty functions).
  uint32_t entry() const { return 0; }

  /// Renders "B0 [0,3) -> B1 B2" lines for debugging and tests.
  std::string dump() const;

private:
  const masm::Function &F;
  std::vector<BasicBlock> Blocks;
  std::vector<uint32_t> InstrToBlock;
};

/// Dominator tree over a Cfg (iterative dataflow formulation).
class DominatorTree {
public:
  explicit DominatorTree(const Cfg &G);

  /// Immediate dominator of block \p B; the entry block's idom is itself.
  uint32_t idom(uint32_t B) const { return Idom[B]; }

  /// True if block \p A dominates block \p B.
  bool dominates(uint32_t A, uint32_t B) const;

private:
  std::vector<uint32_t> Idom;
};

/// One natural loop. All back edges sharing a header are merged into a
/// single loop (so a `continue` statement adds a latch, not a second loop).
struct Loop {
  uint32_t Header = 0;
  std::vector<uint32_t> Blocks;  ///< Sorted block ids, including the header.
  std::vector<uint32_t> Latches; ///< Sorted back-edge source blocks.
  /// Sorted exiting blocks: loop blocks with at least one successor outside
  /// the loop.
  std::vector<uint32_t> Exits;

  bool contains(uint32_t B) const;
};

/// A retreat edge (target at or before the source in reverse postorder)
/// whose target does not dominate its source: part of an irreducible cycle,
/// not of any natural loop.
struct IrreducibleEdge {
  uint32_t From = 0;
  uint32_t To = 0;
};

/// Natural loops of a Cfg, from back edges T->H where H dominates T.
/// Irreducible retreat edges are not silently dropped: they are reported via
/// irreducibleEdges(), and every block of a nontrivial strongly connected
/// component is conservatively given depth >= 1 even when no natural loop
/// contains it (so frequency estimation does not misread irreducible cycles
/// as straight-line code).
class LoopInfo {
public:
  LoopInfo(const Cfg &G, const DominatorTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Loop nesting depth of block \p B (0 = not in any loop). Blocks on an
  /// irreducible cycle count as depth >= 1.
  unsigned depth(uint32_t B) const { return Depth[B]; }

  /// Retreat edges that are not natural back edges.
  const std::vector<IrreducibleEdge> &irreducibleEdges() const {
    return Irreducible;
  }
  bool hasIrreducible() const { return !Irreducible.empty(); }

  /// Index into loops() of the innermost loop headed at \p B, or
  /// masm::InvalidIndex if \p B heads no loop.
  uint32_t loopAtHeader(uint32_t B) const;

private:
  std::vector<Loop> Loops;
  std::vector<unsigned> Depth;
  std::vector<IrreducibleEdge> Irreducible;
};

} // namespace cfg
} // namespace dlq

#endif // DLQ_CFG_CFG_H
