//===- classify/Delinquency.cpp ----------------------------------------------//

#include "classify/Delinquency.h"

#include "cfg/Cfg.h"
#include "dataflow/ReachingDefs.h"
#include "obs/Trace.h"

using namespace dlq;
using namespace dlq::classify;
using namespace dlq::masm;

ModuleAnalysis::ModuleAnalysis(const Module &Mod,
                               ap::ApBuilderOptions Options)
    : M(Mod) {
  for (uint32_t FI = 0; FI != M.functions().size(); ++FI) {
    const Function &F = M.functions()[FI];
    if (F.empty())
      continue;
    obs::Span FuncSpan("stage.ap-build");
    FuncSpan.attr("function", F.name());
    std::unique_ptr<cfg::Cfg> G;
    {
      obs::Span S("stage.cfg");
      G = std::make_unique<cfg::Cfg>(F);
    }
    std::unique_ptr<dataflow::ReachingDefs> RD;
    {
      obs::Span S("stage.dataflow");
      RD = std::make_unique<dataflow::ReachingDefs>(*G);
    }
    ap::ApBuilder Builder(A, F, *G, *RD, Options);
    for (uint32_t Idx = 0; Idx != F.size(); ++Idx)
      if (isLoad(F.instrs()[Idx].Op))
        Patterns[InstrRef{FI, Idx}] = Builder.buildForLoad(Idx);
  }
}

std::map<InstrRef, double>
ModuleAnalysis::scores(const HeuristicOptions &Opts,
                       const ExecCountMap *ExecCounts) const {
  std::map<InstrRef, double> Result;
  for (const auto &[Ref, Pats] : Patterns) {
    FreqClass Freq = FreqClass::Fair;
    if (Opts.UseFreqClasses && ExecCounts) {
      auto It = ExecCounts->find(Ref);
      uint64_t Execs = It == ExecCounts->end() ? 0 : It->second;
      Freq = freqClassOf(Execs, Opts);
    }
    Result[Ref] = phi(Pats, Freq, Opts);
  }
  return Result;
}

std::set<InstrRef>
ModuleAnalysis::delinquentSet(const HeuristicOptions &Opts,
                              const ExecCountMap *ExecCounts) const {
  std::set<InstrRef> Delta;
  for (const auto &[Ref, Phi] : scores(Opts, ExecCounts))
    if (isPossiblyDelinquent(Phi, Opts))
      Delta.insert(Ref);
  return Delta;
}
