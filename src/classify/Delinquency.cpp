//===- classify/Delinquency.cpp ----------------------------------------------//

#include "classify/Delinquency.h"

#include "cfg/Cfg.h"
#include "dataflow/ReachingDefs.h"
#include "obs/Trace.h"

using namespace dlq;
using namespace dlq::classify;
using namespace dlq::masm;

namespace {

Reg argRegOf(unsigned N) {
  return static_cast<Reg>(static_cast<unsigned>(Reg::A0) + N);
}

/// A pattern is "closed" when it mentions no frame-relative basic register:
/// its leaves are constants, globals, gp, Unknown/Recur markers and derefs
/// thereof. Only closed patterns may cross a call boundary into a callee —
/// a reg_param or sp leaf would silently change meaning (the caller's
/// register, read as the callee's).
bool patternClosed(const ap::ApNode *N) {
  switch (N->Kind) {
  case ap::ApKind::Const:
  case ap::ApKind::GlobalAddr:
  case ap::ApKind::Unknown:
  case ap::ApKind::Recur:
    return true;
  case ap::ApKind::Base:
    return N->BaseReg == Reg::GP;
  case ap::ApKind::Deref:
    return patternClosed(N->Lhs);
  default:
    return patternClosed(N->Lhs) && patternClosed(N->Rhs);
  }
}

void appendUnique(std::vector<const ap::ApNode *> &Out, const ap::ApNode *N,
                  unsigned Cap) {
  if (Out.size() >= Cap)
    return;
  for (const ap::ApNode *U : Out)
    if (ap::patternsEqual(N, U))
      return;
  Out.push_back(N);
}

/// The per-function view handed to ApBuilder: callee return patterns by
/// call-site instruction, caller argument patterns by register.
struct FuncPatternProvider final : ap::InterprocPatterns {
  std::map<uint32_t, uint32_t> CalleeAt;
  const std::vector<std::vector<const ap::ApNode *>> *RetPats = nullptr;
  std::array<std::vector<const ap::ApNode *>, 4> ArgPats;

  const std::vector<const ap::ApNode *> *
  calleeReturnPatterns(uint32_t CallInstrIdx) const override {
    auto It = CalleeAt.find(CallInstrIdx);
    if (It == CalleeAt.end())
      return nullptr;
    const std::vector<const ap::ApNode *> &V = (*RetPats)[It->second];
    return V.empty() ? nullptr : &V;
  }

  const std::vector<const ap::ApNode *> *
  argPatterns(Reg R) const override {
    if (!isParamReg(R))
      return nullptr;
    unsigned N =
        static_cast<unsigned>(R) - static_cast<unsigned>(Reg::A0);
    return ArgPats[N].empty() ? nullptr : &ArgPats[N];
  }
};

} // namespace

ModuleAnalysis::ModuleAnalysis(const Module &Mod,
                               ap::ApBuilderOptions Options)
    : M(Mod) {
  buildIntra(Options);
}

ModuleAnalysis::ModuleAnalysis(const Module &Mod, ap::ApBuilderOptions Options,
                               const ipa::IpaOptions &IpaOpts)
    : M(Mod) {
  if (IpaOpts.Enable)
    buildInter(Options, IpaOpts);
  else
    buildIntra(Options);
}

void ModuleAnalysis::buildIntra(ap::ApBuilderOptions Options) {
  for (uint32_t FI = 0; FI != M.functions().size(); ++FI) {
    const Function &F = M.functions()[FI];
    if (F.empty())
      continue;
    obs::Span FuncSpan("stage.ap-build");
    FuncSpan.attr("function", F.name());
    std::unique_ptr<cfg::Cfg> G;
    {
      obs::Span S("stage.cfg");
      G = std::make_unique<cfg::Cfg>(F);
    }
    std::unique_ptr<dataflow::ReachingDefs> RD;
    {
      obs::Span S("stage.dataflow");
      RD = std::make_unique<dataflow::ReachingDefs>(*G);
    }
    ap::ApBuilder Builder(A, F, *G, *RD, Options);
    for (uint32_t Idx = 0; Idx != F.size(); ++Idx)
      if (isLoad(F.instrs()[Idx].Op))
        Patterns[InstrRef{FI, Idx}] = Builder.buildForLoad(Idx);
  }
}

void ModuleAnalysis::buildInter(ap::ApBuilderOptions Options,
                                const ipa::IpaOptions &IpaOpts) {
  obs::Span IpaSpan("stage.ipa-patterns");
  uint32_t N = static_cast<uint32_t>(M.functions().size());
  CG = std::make_unique<ipa::CallGraph>(M);
  FuncStats.resize(N);

  struct PerFunc {
    std::unique_ptr<cfg::Cfg> G;
    std::unique_ptr<dataflow::ReachingDefs> RD;
    std::unique_ptr<FuncPatternProvider> Provider;
    std::unique_ptr<ap::ApBuilder> Builder;
  };
  std::vector<PerFunc> PF(N);
  // Return patterns in callee-entry terms, indexed by function. Pre-sized:
  // providers keep pointers into it.
  std::vector<std::vector<const ap::ApNode *>> RetPats(N);

  for (uint32_t FI = 0; FI != N; ++FI) {
    const Function &F = M.functions()[FI];
    if (F.empty())
      continue;
    obs::Span FuncSpan("stage.ap-build");
    FuncSpan.attr("function", F.name());
    {
      obs::Span S("stage.cfg");
      PF[FI].G = std::make_unique<cfg::Cfg>(F);
    }
    {
      obs::Span S("stage.dataflow");
      PF[FI].RD = std::make_unique<dataflow::ReachingDefs>(*PF[FI].G);
    }
    PF[FI].Provider = std::make_unique<FuncPatternProvider>();
    PF[FI].Provider->RetPats = &RetPats;
    for (const ipa::CallSite &S : CG->sitesIn(FI))
      if (S.known())
        PF[FI].Provider->CalleeAt.emplace(S.InstrIdx, S.Callee);
    PF[FI].Builder = std::make_unique<ap::ApBuilder>(
        A, F, *PF[FI].G, *PF[FI].RD, Options, PF[FI].Provider.get());
  }

  // Phase 1, bottom-up: export $v0 patterns at returns. Callees precede
  // callers, so a caller's reg_ret substitutions see final callee
  // patterns. Recursive SCC members export nothing (their reg_ret leaf is
  // the conservative fixed point).
  for (uint32_t FI : CG->bottomUpOrder()) {
    const Function &F = M.functions()[FI];
    if (F.empty() || CG->isRecursive(FI))
      continue;
    std::vector<const ap::ApNode *> Pats;
    for (uint32_t Idx = 0; Idx != F.size(); ++Idx) {
      const Instr &I = F.instrs()[Idx];
      if (I.Op != Opcode::Jr || I.Rs != Reg::RA)
        continue;
      for (const ap::ApNode *P : PF[FI].Builder->buildForReg(Reg::V0, Idx))
        appendUnique(Pats, P, Options.MaxAltsPerUse);
    }
    RetPats[FI] = std::move(Pats);
    FuncStats[FI].RetPatternsExported =
        static_cast<unsigned>(RetPats[FI].size());
  }

  // Phase 2, top-down: argument patterns. Requires the complete caller
  // set (no jalr — runtime `jal`s never re-enter the module) and stops at
  // the context-k depth from main, at the per-callee context budget, and
  // at recursion — exactly the absint entry-fact policy.
  uint32_t MainIdx = M.functionIndex("main");
  if (!CG->moduleHasIndirectCalls() && MainIdx != masm::InvalidIndex) {
    std::vector<uint32_t> Depth(N, masm::InvalidIndex);
    std::vector<uint32_t> Bfs{MainIdx};
    Depth[MainIdx] = 0;
    for (size_t I = 0; I != Bfs.size(); ++I)
      for (uint32_t Callee : CG->calleesOf(Bfs[I]))
        if (Depth[Callee] == masm::InvalidIndex) {
          Depth[Callee] = Depth[Bfs[I]] + 1;
          Bfs.push_back(Callee);
        }
    // Self-recursion (an SCC of one) keeps its slots: the recursive sites
    // contribute the @rec marker below, so a tree walk's argument reads
    // "an external caller's closed expression, or a recursion-carried
    // value". Mutual recursion stays at the generic leaf.
    auto eligible = [&](uint32_t F) {
      return F != MainIdx && !M.functions()[F].empty() &&
             (!CG->isRecursive(F) || CG->sccSize(F) == 1) &&
             Depth[F] != masm::InvalidIndex && Depth[F] <= IpaOpts.ContextK;
    };
    std::vector<unsigned> Sites(N, 0);
    // A slot is usable only when EVERY call site contributed a closed
    // expression for it; one opaque caller poisons the slot back to the
    // generic reg_param leaf. Bit AI of Poisoned[F] marks slot $aAI.
    std::vector<uint8_t> Poisoned(N, 0);
    const ap::ApNode *RecurNode = ap::ApFactory(A).getRecur();
    std::vector<uint32_t> TopDown(CG->bottomUpOrder().rbegin(),
                                  CG->bottomUpOrder().rend());
    for (uint32_t C : TopDown) {
      // Finalize C before it runs as a caller: poisoned or over-budget
      // slots revert to the generic leaf.
      for (unsigned AI = 0; AI != 4; ++AI)
        if (Poisoned[C] & (1u << AI))
          PF[C].Provider->ArgPats[AI].clear();
      if (M.functions()[C].empty())
        continue;
      for (const ipa::CallSite &Site : CG->sitesIn(C)) {
        uint32_t Callee = Site.Callee;
        if (!Site.known() || !eligible(Callee))
          continue;
        if (Callee == C) {
          // A self-recursive site's arguments are expressed in this
          // frame's own entry terms; their fixed point is the
          // loop-carried-recurrence marker, and the site does not count
          // as a distinct caller context.
          for (unsigned AI = 0; AI != 4; ++AI)
            if (!(Poisoned[Callee] & (1u << AI)))
              appendUnique(PF[Callee].Provider->ArgPats[AI], RecurNode,
                           Options.MaxAltsPerUse);
          continue;
        }
        if (++Sites[Callee] > IpaOpts.MaxContextsPerFunction) {
          Poisoned[Callee] = 0xF; // Budget blown: all slots generic.
          continue;
        }
        for (unsigned AI = 0; AI != 4; ++AI) {
          if (Poisoned[Callee] & (1u << AI))
            continue;
          std::vector<const ap::ApNode *> Pats =
              PF[C].Builder->buildForReg(argRegOf(AI), Site.InstrIdx);
          for (const ap::ApNode *P : Pats)
            if (!patternClosed(P)) {
              Poisoned[Callee] |= 1u << AI;
              break;
            }
          if (Poisoned[Callee] & (1u << AI))
            continue;
          for (const ap::ApNode *P : Pats)
            appendUnique(PF[Callee].Provider->ArgPats[AI], P,
                         Options.MaxAltsPerUse);
        }
      }
    }
    for (uint32_t F = 0; F != N; ++F)
      if (PF[F].Provider)
        for (unsigned AI = 0; AI != 4; ++AI)
          if (Poisoned[F] & (1u << AI))
            PF[F].Provider->ArgPats[AI].clear();
  }

  // Phase 3: the per-load build with both substitutions live.
  for (uint32_t FI = 0; FI != N; ++FI) {
    const Function &F = M.functions()[FI];
    if (F.empty())
      continue;
    for (uint32_t Idx = 0; Idx != F.size(); ++Idx)
      if (isLoad(F.instrs()[Idx].Op))
        Patterns[InstrRef{FI, Idx}] = PF[FI].Builder->buildForLoad(Idx);
    const ap::ApSubstStats &SS = PF[FI].Builder->substStats();
    FuncStats[FI].CallSubsts = SS.CallSubsts;
    FuncStats[FI].ArgSubsts = SS.ArgSubsts;
    for (const auto &Slot : PF[FI].Provider->ArgPats)
      if (!Slot.empty())
        ++FuncStats[FI].ArgSlotsResolved;
  }
  uint64_t Loads = 0;
  for (const auto &KV : Patterns)
    Loads += KV.second.size();
  IpaSpan.attr("patterns", Loads);
}

std::map<InstrRef, double>
ModuleAnalysis::scores(const HeuristicOptions &Opts,
                       const ExecCountMap *ExecCounts) const {
  std::map<InstrRef, double> Result;
  for (const auto &[Ref, Pats] : Patterns) {
    FreqClass Freq = FreqClass::Fair;
    if (Opts.UseFreqClasses && ExecCounts) {
      auto It = ExecCounts->find(Ref);
      uint64_t Execs = It == ExecCounts->end() ? 0 : It->second;
      Freq = freqClassOf(Execs, Opts);
    }
    Result[Ref] = phi(Pats, Freq, Opts);
  }
  return Result;
}

std::set<InstrRef>
ModuleAnalysis::delinquentSet(const HeuristicOptions &Opts,
                              const ExecCountMap *ExecCounts) const {
  std::set<InstrRef> Delta;
  for (const auto &[Ref, Phi] : scores(Opts, ExecCounts))
    if (isPossiblyDelinquent(Phi, Opts))
      Delta.insert(Ref);
  return Delta;
}
