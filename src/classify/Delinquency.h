//===- classify/Delinquency.h - Whole-module heuristic driver ---------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full static pipeline over a module: CFG reconstruction, reaching
/// definitions, address-pattern construction for every load, and the phi
/// scoring that yields the possibly-delinquent set Delta_H. Execution counts
/// (for the H5 frequency classes) are optional; without them the heuristic
/// runs in its fully static AG1..AG7 form.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_CLASSIFY_DELINQUENCY_H
#define DLQ_CLASSIFY_DELINQUENCY_H

#include "ap/Builder.h"
#include "classify/Heuristic.h"
#include "ipa/CallGraph.h"
#include "ipa/Summaries.h"
#include "masm/Module.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

namespace dlq {
namespace classify {

/// Per-load execution counts (from basic-block profiling); loads absent from
/// the map are treated as never executed.
using ExecCountMap = std::map<masm::InstrRef, uint64_t>;

/// Per-function interprocedural pattern statistics, surfaced by the
/// `delinq callgraph` dump. All zero when IPA is off.
struct IpaFuncStats {
  /// Return-value patterns exported to callers of this function.
  unsigned RetPatternsExported = 0;
  /// Argument slots ($a0..$a3) for which closed caller patterns exist.
  unsigned ArgSlotsResolved = 0;
  /// reg_ret leaves replaced by callee return patterns while building
  /// this function's patterns.
  unsigned CallSubsts = 0;
  /// reg_param leaves replaced by caller argument patterns.
  unsigned ArgSubsts = 0;
};

/// Static analysis results for a whole module. Construction performs all the
/// static work once; scoring with different options is then cheap (this is
/// how the delta/weight sweeps of Tables 11 and 13 reuse one analysis).
/// With ipa::IpaOptions::Enable set, pattern construction runs the
/// context-sensitive interprocedural schedule: return patterns bottom-up
/// over the call-graph SCC order, argument patterns top-down with the
/// k-limit and context budget, then the final per-load build with both
/// substitutions installed. IPA off is bit-identical to the
/// intraprocedural analysis.
class ModuleAnalysis {
public:
  explicit ModuleAnalysis(const masm::Module &M,
                          ap::ApBuilderOptions Options = ap::ApBuilderOptions());
  ModuleAnalysis(const masm::Module &M, ap::ApBuilderOptions Options,
                 const ipa::IpaOptions &IpaOpts);

  ModuleAnalysis(const ModuleAnalysis &) = delete;
  ModuleAnalysis &operator=(const ModuleAnalysis &) = delete;

  const masm::Module &module() const { return M; }

  /// The call graph, when the interprocedural schedule ran; null otherwise.
  const ipa::CallGraph *callGraph() const { return CG.get(); }

  /// Per-function substitution statistics, parallel to M.functions().
  /// Empty when IPA is off.
  const std::vector<IpaFuncStats> &ipaStats() const { return FuncStats; }

  /// Address patterns of every load in the module.
  const std::map<masm::InstrRef, std::vector<const ap::ApNode *>> &
  loadPatterns() const {
    return Patterns;
  }

  /// phi score of every load. \p ExecCounts may be null when
  /// Opts.UseFreqClasses is false.
  std::map<masm::InstrRef, double>
  scores(const HeuristicOptions &Opts, const ExecCountMap *ExecCounts) const;

  /// The possibly-delinquent set Delta_H = { i : phi(i) > delta }.
  std::set<masm::InstrRef>
  delinquentSet(const HeuristicOptions &Opts,
                const ExecCountMap *ExecCounts) const;

private:
  const masm::Module &M;
  Arena A;
  std::map<masm::InstrRef, std::vector<const ap::ApNode *>> Patterns;
  std::unique_ptr<ipa::CallGraph> CG;
  std::vector<IpaFuncStats> FuncStats;

  void buildIntra(ap::ApBuilderOptions Options);
  void buildInter(ap::ApBuilderOptions Options,
                  const ipa::IpaOptions &IpaOpts);
};

} // namespace classify
} // namespace dlq

#endif // DLQ_CLASSIFY_DELINQUENCY_H
