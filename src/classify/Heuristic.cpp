//===- classify/Heuristic.cpp -----------------------------------------------==//

#include "classify/Heuristic.h"

#include <algorithm>
#include <cassert>

using namespace dlq;
using namespace dlq::classify;
using namespace dlq::ap;

std::string_view classify::aggClassName(AggClass K) {
  static constexpr std::string_view Names[NumAggClasses] = {
      "AG1", "AG2", "AG3", "AG4", "AG5", "AG6", "AG7", "AG8", "AG9"};
  return Names[static_cast<unsigned>(K)];
}

std::string_view classify::aggClassFeature(AggClass K) {
  static constexpr std::string_view Features[NumAggClasses] = {
      "sp, gp",
      "sp more than 2 times",
      "multiplication/shifts",
      "dereferenced once",
      "dereferenced twice",
      "dereferenced thrice",
      "recurrent",
      "seldom executed",
      "rarely executed"};
  return Features[static_cast<unsigned>(K)];
}

FreqClass classify::freqClassOf(uint64_t ExecCount,
                                const HeuristicOptions &Opts) {
  if (ExecCount < Opts.RareBelow)
    return FreqClass::Rare;
  if (ExecCount < Opts.SeldomBelow)
    return FreqClass::Seldom;
  return FreqClass::Fair;
}

bool classify::patternInClass(const ApNode *N, AggClass K) {
  switch (K) {
  case AggClass::AG1: {
    BaseRegCounts C = countBaseRegs(N);
    return C.Sp >= 1 && C.Gp >= 1;
  }
  case AggClass::AG2: {
    BaseRegCounts C = countBaseRegs(N);
    return C.Sp >= 2 && C.Gp == 0;
  }
  case AggClass::AG3:
    return hasMulOrShift(N);
  case AggClass::AG4:
    return derefDepth(N) == 1;
  case AggClass::AG5:
    return derefDepth(N) == 2;
  case AggClass::AG6:
    return derefDepth(N) >= 3;
  case AggClass::AG7:
    return hasRecurrence(N);
  case AggClass::AG8:
  case AggClass::AG9:
    return false; // Frequency classes are per-load, not per-pattern.
  }
  return false;
}

double classify::scorePattern(const ApNode *N, FreqClass Freq,
                              const HeuristicOptions &Opts) {
  double Score = 0;
  for (unsigned K = 0; K != 7; ++K) {
    AggClass C = static_cast<AggClass>(K);
    if (patternInClass(N, C))
      Score += Opts.Weights.of(C);
  }
  if (Opts.UseFreqClasses) {
    if (Freq == FreqClass::Seldom)
      Score += Opts.Weights.of(AggClass::AG8);
    else if (Freq == FreqClass::Rare)
      Score += Opts.Weights.of(AggClass::AG9);
  }
  return Score;
}

double classify::phi(const std::vector<const ApNode *> &Patterns,
                     FreqClass Freq, const HeuristicOptions &Opts) {
  // A load with no pattern (should not happen) scores below any threshold.
  double Best = -1e9;
  for (const ApNode *N : Patterns)
    Best = std::max(Best, scorePattern(N, Freq, Opts));
  return Patterns.empty() ? -1e9 : Best;
}
