//===- classify/Heuristic.h - AG classes, weights, phi ----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's heuristic (Section 7.3): nine aggregate classes AG1..AG9 with
/// weights (Table 5), the per-pattern membership function d(j,k), the score
///
///   phi(i) = max over patterns j of sum_k W(k) * d(j,k)
///
/// and the delinquency threshold delta (default 0.10): a load is "possibly
/// delinquent" when phi(i) > delta.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_CLASSIFY_HEURISTIC_H
#define DLQ_CLASSIFY_HEURISTIC_H

#include "ap/Pattern.h"

#include <array>
#include <cstdint>
#include <string_view>

namespace dlq {
namespace classify {

/// The aggregate classes of Section 7.3 / Table 5.
enum class AggClass : uint8_t {
  AG1, ///< sp and gp both used at least once (criterion H1).
  AG2, ///< only sp used, two times or more (criterion H1).
  AG3, ///< multiplication or shift present (criterion H2).
  AG4, ///< one level of dereferencing (criterion H3).
  AG5, ///< two levels of dereferencing (criterion H3).
  AG6, ///< three or more levels of dereferencing (criterion H3).
  AG7, ///< recurrence present (criterion H4).
  AG8, ///< seldom executed: 100..999 executions (criterion H5).
  AG9, ///< rarely executed: < 100 executions (criterion H5).
};

constexpr unsigned NumAggClasses = 9;

/// Short name, e.g. "AG3".
std::string_view aggClassName(AggClass K);

/// Table 5 feature description, e.g. "multiplication/shifts".
std::string_view aggClassFeature(AggClass K);

/// Class weights. Defaults are the paper's Table 5 values; the trainer
/// (Trainer.h) can derive a fresh set from simulation data.
struct HeuristicWeights {
  std::array<double, NumAggClasses> W = {
      +0.28, // AG1: sp, gp
      +0.33, // AG2: sp more than 2 times
      +0.47, // AG3: multiplication / shifts
      +0.16, // AG4: dereferenced once
      +0.67, // AG5: dereferenced twice
      +1.72, // AG6: dereferenced thrice
      +0.10, // AG7: recurrent
      -0.20, // AG8: seldom executed
      -0.40, // AG9: rarely executed
  };

  double of(AggClass K) const { return W[static_cast<unsigned>(K)]; }
  double &of(AggClass K) { return W[static_cast<unsigned>(K)]; }

  static HeuristicWeights paperTable5() { return HeuristicWeights(); }
};

/// Execution-frequency class of a load (criterion H5).
enum class FreqClass : uint8_t {
  Rare,    ///< < RareBelow executions (AG9).
  Seldom,  ///< [RareBelow, SeldomBelow) executions (AG8).
  Fair,    ///< Everything else; carries no weight.
  Hotspot, ///< Used only by the Section 9 profiling filter.
};

/// Heuristic knobs.
struct HeuristicOptions {
  double Delta = 0.10;
  HeuristicWeights Weights;
  /// When false, AG8/AG9 are not applied (the "without AG8 and AG9" columns
  /// of Table 11; the heuristic then needs no profile at all).
  bool UseFreqClasses = true;
  uint64_t RareBelow = 100;
  uint64_t SeldomBelow = 1000;

  HeuristicOptions() {}
};

/// Maps an execution count to its H5 class.
FreqClass freqClassOf(uint64_t ExecCount, const HeuristicOptions &Opts);

/// d(j,k) for the structural classes AG1..AG7 of pattern \p N.
bool patternInClass(const ap::ApNode *N, AggClass K);

/// Weighted class-membership sum of one pattern, including the frequency
/// classes when enabled.
double scorePattern(const ap::ApNode *N, FreqClass Freq,
                    const HeuristicOptions &Opts);

/// phi(i): maximum pattern score over the load's pattern set.
double phi(const std::vector<const ap::ApNode *> &Patterns, FreqClass Freq,
           const HeuristicOptions &Opts);

/// The classification decision: phi(i) > delta.
inline bool isPossiblyDelinquent(double Phi, const HeuristicOptions &Opts) {
  return Phi > Opts.Delta;
}

} // namespace classify
} // namespace dlq

#endif // DLQ_CLASSIFY_HEURISTIC_H
