//===- classify/Trainer.cpp --------------------------------------------------//

#include "classify/Trainer.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace dlq;
using namespace dlq::classify;

void ClassTrainer::addObservation(BenchmarkObservation Obs) {
  Observations.push_back(std::move(Obs));
}

const BenchmarkObservation *
ClassTrainer::find(const std::string &Bench) const {
  for (const BenchmarkObservation &Obs : Observations)
    if (Obs.Name == Bench)
      return &Obs;
  return nullptr;
}

std::vector<std::string> ClassTrainer::allLabels() const {
  std::set<std::string> Labels;
  for (const BenchmarkObservation &Obs : Observations)
    for (const auto &[Label, Stats] : Obs.PerClass)
      Labels.insert(Label);
  return std::vector<std::string>(Labels.begin(), Labels.end());
}

double ClassTrainer::missProb(const std::string &Label,
                              const std::string &Bench) const {
  const BenchmarkObservation *Obs = find(Bench);
  if (!Obs)
    return 0;
  auto It = Obs->PerClass.find(Label);
  if (It == Obs->PerClass.end() || It->second.Execs == 0)
    return 0;
  return static_cast<double>(It->second.Misses) /
         static_cast<double>(It->second.Execs);
}

double ClassTrainer::missShare(const std::string &Label,
                               const std::string &Bench) const {
  const BenchmarkObservation *Obs = find(Bench);
  if (!Obs || Obs->TotalMisses == 0)
    return 0;
  auto It = Obs->PerClass.find(Label);
  if (It == Obs->PerClass.end())
    return 0;
  return static_cast<double>(It->second.Misses) /
         static_cast<double>(Obs->TotalMisses);
}

bool ClassTrainer::isRelevant(const std::string &Label,
                              const std::string &Bench) const {
  const BenchmarkObservation *Obs = find(Bench);
  if (!Obs)
    return false;
  auto It = Obs->PerClass.find(Label);
  if (It == Obs->PerClass.end() || It->second.Execs == 0)
    return false;
  return missProb(Label, Bench) >= Thresholds.MinMissProb ||
         missShare(Label, Bench) >= Thresholds.MinMissShare;
}

ClassNature ClassTrainer::natureOf(const std::string &Label) const {
  constexpr double StrengthFloor = 1.0 / 20.0;
  constexpr double NegativeShareCeiling = 0.005;

  bool NegativeEverywhere = true;
  bool AnyRelevant = false;
  bool AllRelevantStrong = true;

  for (const BenchmarkObservation &Obs : Observations) {
    double Share = missShare(Label, Obs.Name);
    if (Share >= NegativeShareCeiling)
      NegativeEverywhere = false;
    if (!isRelevant(Label, Obs.Name))
      continue;
    AnyRelevant = true;
    double Prob = missProb(Label, Obs.Name);
    double R = Share > 0 ? Prob / Share : 0;
    if (R < StrengthFloor)
      AllRelevantStrong = false;
  }

  if (NegativeEverywhere)
    return ClassNature::Negative;
  if (AnyRelevant && AllRelevantStrong)
    return ClassNature::Positive;
  return ClassNature::Neutral;
}

double ClassTrainer::positiveWeight(const std::string &Label) const {
  double Sum = 0;
  unsigned Count = 0;
  for (const BenchmarkObservation &Obs : Observations) {
    if (!isRelevant(Label, Obs.Name))
      continue;
    double Share = missShare(Label, Obs.Name);
    if (Share <= 0)
      continue;
    Sum += missProb(Label, Obs.Name) / Share;
    ++Count;
  }
  return Count == 0 ? 0 : Sum / Count;
}

std::vector<ClassReport> ClassTrainer::reportAll() const {
  std::vector<ClassReport> Reports;
  for (const std::string &Label : allLabels()) {
    ClassReport Rep;
    Rep.Label = Label;
    for (const BenchmarkObservation &Obs : Observations) {
      auto It = Obs.PerClass.find(Label);
      if (It != Obs.PerClass.end() && It->second.Execs != 0)
        ++Rep.FoundIn;
      if (isRelevant(Label, Obs.Name))
        ++Rep.RelevantIn;
    }
    Rep.Nature = natureOf(Label);
    Rep.Weight =
        Rep.Nature == ClassNature::Positive ? positiveWeight(Label) : 0;
    Reports.push_back(std::move(Rep));
  }
  return Reports;
}

double ClassTrainer::negativeBaseWeight() const {
  std::vector<double> Positives;
  for (const ClassReport &Rep : reportAll())
    if (Rep.Nature == ClassNature::Positive && Rep.Weight > 0)
      Positives.push_back(Rep.Weight);
  if (Positives.empty())
    return -0.40; // Fall back to the paper's value.
  std::sort(Positives.begin(), Positives.end());
  double Sum = 0;
  unsigned Count = 0;
  // Drop the single lowest and highest weight, as the paper describes.
  size_t Begin = Positives.size() > 2 ? 1 : 0;
  size_t End = Positives.size() > 2 ? Positives.size() - 1 : Positives.size();
  for (size_t I = Begin; I != End; ++I) {
    Sum += Positives[I];
    ++Count;
  }
  return Count == 0 ? -0.40 : -(Sum / Count);
}

HeuristicWeights ClassTrainer::deriveWeights() const {
  HeuristicWeights W;
  for (unsigned K = 0; K != 7; ++K) {
    AggClass C = static_cast<AggClass>(K);
    std::string Label(aggClassName(C));
    double Weight = natureOf(Label) == ClassNature::Positive
                        ? positiveWeight(Label)
                        : 0;
    W.of(C) = Weight;
  }
  double NegBase = negativeBaseWeight();
  W.of(AggClass::AG9) = NegBase;
  W.of(AggClass::AG8) = NegBase / 2;
  return W;
}

std::string classify::h1ClassLabel(const ap::ApNode *N) {
  ap::BaseRegCounts C = ap::countBaseRegs(N);
  if (C.Sp == 0 && C.Gp == 0)
    return "other";
  std::string Label;
  if (C.Sp != 0)
    Label += formatString("sp=%u", C.Sp);
  if (C.Gp != 0) {
    if (!Label.empty())
      Label += ",";
    Label += formatString("gp=%u", C.Gp);
  }
  return Label;
}

std::vector<std::string> classify::aggClassLabels(const ap::ApNode *N) {
  std::vector<std::string> Labels;
  for (unsigned K = 0; K != 7; ++K) {
    AggClass C = static_cast<AggClass>(K);
    if (patternInClass(N, C))
      Labels.emplace_back(aggClassName(C));
  }
  return Labels;
}
