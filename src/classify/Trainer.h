//===- classify/Trainer.h - Weight derivation from profiles -----------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The training machinery of Section 7: given, for every class F of a
/// decision criterion and every training benchmark j, the dynamic execution
/// and miss counts of the class members, compute
///
///   m_j(F,C) = M(F,C) / sum_{i in F} E(i)      (miss probability)
///   n_j(F,C) = M(F,C) / M(P(I),C)              (share of all misses)
///   r        = m_j / n_j                        (strength index)
///
/// and classify each class as positive (r >= 1/20 in every relevant
/// benchmark), negative (n_j < 0.5% everywhere) or neutral. Positive-class
/// weights are W(F) = mean over relevant benchmarks of m_j/n_j; negative
/// classes get minus the mean of the positive weights with the extremes
/// dropped (halved for the "seldom" class), as described in Section 7.3.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_CLASSIFY_TRAINER_H
#define DLQ_CLASSIFY_TRAINER_H

#include "ap/Pattern.h"
#include "classify/Heuristic.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dlq {
namespace classify {

/// Dynamic totals of one class in one benchmark.
struct ClassDynStats {
  uint64_t Execs = 0;  ///< sum of E(i) over member loads.
  uint64_t Misses = 0; ///< M(F, C).
};

/// One training benchmark's observations.
struct BenchmarkObservation {
  std::string Name;
  uint64_t TotalMisses = 0; ///< M(P(I), C).
  std::map<std::string, ClassDynStats> PerClass;
};

/// Relevance thresholds: a benchmark is irrelevant w.r.t. a class when both
/// m_j and n_j fall below these.
struct RelevanceThresholds {
  double MinMissProb = 0.01;  ///< 1% miss probability.
  double MinMissShare = 0.01; ///< 1% of all misses.

  RelevanceThresholds() {}
};

enum class ClassNature { Positive, Negative, Neutral };

/// Summary the trainer produces per class.
struct ClassReport {
  std::string Label;
  unsigned FoundIn = 0;    ///< Benchmarks containing members of the class.
  unsigned RelevantIn = 0; ///< Benchmarks where the class is relevant.
  ClassNature Nature = ClassNature::Neutral;
  double Weight = 0;
};

/// Accumulates per-benchmark class statistics and derives natures/weights.
class ClassTrainer {
public:
  explicit ClassTrainer(RelevanceThresholds Thresholds = RelevanceThresholds())
      : Thresholds(Thresholds) {}

  void addObservation(BenchmarkObservation Obs);

  const std::vector<BenchmarkObservation> &observations() const {
    return Observations;
  }

  /// m_j(F, C); 0 when the class has no executions in the benchmark.
  double missProb(const std::string &Label, const std::string &Bench) const;

  /// n_j(F, C).
  double missShare(const std::string &Label, const std::string &Bench) const;

  /// A benchmark is relevant to a class when m_j or n_j clears the
  /// thresholds.
  bool isRelevant(const std::string &Label, const std::string &Bench) const;

  /// Section 7.1 nature rules (strength index r = m/n against 1/20; the
  /// negative rule uses n_j < 0.5% in every benchmark).
  ClassNature natureOf(const std::string &Label) const;

  /// Positive-class weight W(F) = mean over relevant benchmarks of m/n.
  /// Returns 0 for classes with no relevant benchmarks.
  double positiveWeight(const std::string &Label) const;

  /// Reports for every class label seen, sorted by label.
  std::vector<ClassReport> reportAll() const;

  /// The Section 7.3 negative base weight: the mean of all positive-class
  /// weights with the single highest and lowest dropped, negated.
  double negativeBaseWeight() const;

  /// Derives a full heuristic weight set: AG1..AG7 from their class labels'
  /// positive weights, AG9 = negativeBaseWeight(), AG8 = half of it.
  /// Class labels must be the aggClassName() strings.
  HeuristicWeights deriveWeights() const;

private:
  RelevanceThresholds Thresholds;
  std::vector<BenchmarkObservation> Observations;

  const BenchmarkObservation *find(const std::string &Bench) const;
  std::vector<std::string> allLabels() const;
};

/// The enumerated H1 class label of one pattern, as used in Table 3: counts
/// of sp/gp occurrences such as "sp=2,gp=1"; patterns without sp/gp map to
/// "other".
std::string h1ClassLabel(const ap::ApNode *N);

/// The aggregate-class labels (AG1..AG7) a pattern belongs to.
std::vector<std::string> aggClassLabels(const ap::ApNode *N);

} // namespace classify
} // namespace dlq

#endif // DLQ_CLASSIFY_TRAINER_H
