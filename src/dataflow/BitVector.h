//===- dataflow/BitVector.h - Dense bit vector -----------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense fixed-size bit vector with the set operations the dataflow
/// solvers need (union, subtract, copy, equality).
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_DATAFLOW_BITVECTOR_H
#define DLQ_DATAFLOW_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace dlq {
namespace dataflow {

/// Fixed-size dense bit vector.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  size_t size() const { return NumBits; }

  void set(size_t Bit) {
    assert(Bit < NumBits && "bit out of range");
    Words[Bit / 64] |= uint64_t(1) << (Bit % 64);
  }

  void reset(size_t Bit) {
    assert(Bit < NumBits && "bit out of range");
    Words[Bit / 64] &= ~(uint64_t(1) << (Bit % 64));
  }

  bool test(size_t Bit) const {
    assert(Bit < NumBits && "bit out of range");
    return (Words[Bit / 64] >> (Bit % 64)) & 1;
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// *this |= Other.
  bool unionWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0; I != Words.size(); ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// *this &= ~Other.
  void subtract(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0; I != Words.size(); ++I)
      Words[I] &= ~Other.Words[I];
  }

  friend bool operator==(const BitVector &A, const BitVector &B) {
    return A.NumBits == B.NumBits && A.Words == B.Words;
  }

  /// Calls \p Fn(BitIndex) for every set bit in ascending order.
  template <typename FnT> void forEachSetBit(FnT Fn) const {
    for (size_t WI = 0; WI != Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

  /// Number of set bits.
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace dataflow
} // namespace dlq

#endif // DLQ_DATAFLOW_BITVECTOR_H
