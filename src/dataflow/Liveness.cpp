//===- dataflow/Liveness.cpp -----------------------------------------------==//

#include "dataflow/Liveness.h"

using namespace dlq;
using namespace dlq::dataflow;
using namespace dlq::masm;

uint32_t dataflow::usedRegsMask(const Instr &I) {
  uint32_t Mask = 0;
  if (readsRs(I.Op))
    Mask |= uint32_t(1) << static_cast<unsigned>(I.Rs);
  if (readsRt(I.Op))
    Mask |= uint32_t(1) << static_cast<unsigned>(I.Rt);
  // Calls read the argument registers; returns read $v0/$v1 conservatively.
  if (isCall(I.Op))
    Mask |= (uint32_t(1) << static_cast<unsigned>(Reg::A0)) |
            (uint32_t(1) << static_cast<unsigned>(Reg::A1)) |
            (uint32_t(1) << static_cast<unsigned>(Reg::A2)) |
            (uint32_t(1) << static_cast<unsigned>(Reg::A3));
  if (I.Op == Opcode::Jr)
    Mask |= (uint32_t(1) << static_cast<unsigned>(Reg::V0)) |
            (uint32_t(1) << static_cast<unsigned>(Reg::V1));
  Mask &= ~uint32_t(1); // $zero is never meaningfully read.
  return Mask;
}

uint32_t dataflow::definedRegsMask(const Instr &I) {
  uint32_t Mask = 0;
  if (Reg D = I.def(); D != Reg::Zero)
    Mask |= uint32_t(1) << static_cast<unsigned>(D);
  if (isCall(I.Op))
    for (unsigned R = 1; R != NumRegs; ++R)
      if (isCallerSaved(static_cast<Reg>(R)))
        Mask |= uint32_t(1) << R;
  return Mask;
}

Liveness::Liveness(const cfg::Cfg &G) {
  size_t NumBlocks = G.numBlocks();
  const std::vector<Instr> &Body = G.function().instrs();
  In.assign(NumBlocks, 0);
  Out.assign(NumBlocks, 0);

  std::vector<uint32_t> Use(NumBlocks, 0), DefMask(NumBlocks, 0);
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    const cfg::BasicBlock &Blk = G.blocks()[B];
    for (uint32_t Idx = Blk.Begin; Idx != Blk.End; ++Idx) {
      uint32_t U = usedRegsMask(Body[Idx]);
      uint32_t D = definedRegsMask(Body[Idx]);
      Use[B] |= U & ~DefMask[B];
      DefMask[B] |= D;
    }
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B = static_cast<uint32_t>(NumBlocks); B-- != 0;) {
      uint32_t NewOut = 0;
      for (uint32_t S : G.blocks()[B].Succs)
        NewOut |= In[S];
      uint32_t NewIn = Use[B] | (NewOut & ~DefMask[B]);
      if (NewOut != Out[B] || NewIn != In[B]) {
        Out[B] = NewOut;
        In[B] = NewIn;
        Changed = true;
      }
    }
  }
}
