//===- dataflow/Liveness.h - Live register analysis ------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward live-register analysis over a function CFG. Used by tests as a
/// second client of the dataflow machinery and available to code generators.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_DATAFLOW_LIVENESS_H
#define DLQ_DATAFLOW_LIVENESS_H

#include "cfg/Cfg.h"
#include "masm/Module.h"

#include <cstdint>
#include <vector>

namespace dlq {
namespace dataflow {

/// Live registers at block boundaries.
class Liveness {
public:
  explicit Liveness(const cfg::Cfg &G);

  /// Registers live on entry to block \p B (bitmask indexed by register
  /// number).
  uint32_t liveIn(uint32_t B) const { return In[B]; }

  /// Registers live on exit from block \p B.
  uint32_t liveOut(uint32_t B) const { return Out[B]; }

  /// True if \p R is live on entry to \p B.
  bool isLiveIn(uint32_t B, masm::Reg R) const {
    return (In[B] >> static_cast<unsigned>(R)) & 1;
  }

private:
  std::vector<uint32_t> In;
  std::vector<uint32_t> Out;
};

/// Registers read by \p I as a bitmask.
uint32_t usedRegsMask(const masm::Instr &I);

/// Registers written by \p I as a bitmask (calls clobber caller-saved).
uint32_t definedRegsMask(const masm::Instr &I);

} // namespace dataflow
} // namespace dlq

#endif // DLQ_DATAFLOW_LIVENESS_H
