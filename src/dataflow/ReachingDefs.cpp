//===- dataflow/ReachingDefs.cpp -------------------------------------------==//

#include "dataflow/ReachingDefs.h"

#include <cassert>

using namespace dlq;
using namespace dlq::dataflow;
using namespace dlq::masm;

ReachingDefs::ReachingDefs(const cfg::Cfg &Graph) : G(Graph) {
  collectDefs();
  solve();
}

void ReachingDefs::collectDefs() {
  const std::vector<Instr> &Body = G.function().instrs();
  DefsByReg.assign(NumRegs, {});
  DefsByInstr.assign(Body.size(), {});

  auto addDef = [&](DefKind Kind, uint32_t InstrIdx, Reg R) {
    if (R == Reg::Zero)
      return;
    uint32_t Id = static_cast<uint32_t>(AllDefs.size());
    AllDefs.push_back(Def{Kind, InstrIdx, R});
    DefsByReg[static_cast<unsigned>(R)].push_back(Id);
    if (InstrIdx != InvalidIndex)
      DefsByInstr[InstrIdx].push_back(Id);
  };

  // Entry pseudo-definitions for every register except $zero.
  for (unsigned R = 1; R != NumRegs; ++R)
    addDef(DefKind::Entry, InvalidIndex, static_cast<Reg>(R));

  for (uint32_t Idx = 0; Idx != Body.size(); ++Idx) {
    const Instr &I = Body[Idx];
    if (Reg D = I.def(); D != Reg::Zero)
      addDef(DefKind::Normal, Idx, D);
    if (isCall(I.Op)) {
      for (unsigned R = 1; R != NumRegs; ++R)
        if (isCallerSaved(static_cast<Reg>(R)))
          addDef(DefKind::Call, Idx, static_cast<Reg>(R));
    }
  }
}

void ReachingDefs::solve() {
  size_t NumDefs = AllDefs.size();
  size_t NumBlocks = G.numBlocks();
  const std::vector<Instr> &Body = G.function().instrs();

  // Per-register "all defs of R" masks for KILL computation.
  std::vector<BitVector> RegMask(NumRegs, BitVector(NumDefs));
  for (uint32_t Id = 0; Id != NumDefs; ++Id)
    RegMask[static_cast<unsigned>(AllDefs[Id].R)].set(Id);

  std::vector<BitVector> Gen(NumBlocks, BitVector(NumDefs));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumDefs));

  for (uint32_t B = 0; B != NumBlocks; ++B) {
    const cfg::BasicBlock &Blk = G.blocks()[B];
    for (uint32_t Idx = Blk.Begin; Idx != Blk.End; ++Idx) {
      (void)Body;
      for (uint32_t Id : DefsByInstr[Idx]) {
        Reg R = AllDefs[Id].R;
        // This def kills all other defs of R and becomes the sole gen.
        Gen[B].subtract(RegMask[static_cast<unsigned>(R)]);
        Kill[B].unionWith(RegMask[static_cast<unsigned>(R)]);
        Gen[B].set(Id);
      }
    }
  }

  In.assign(NumBlocks, BitVector(NumDefs));
  std::vector<BitVector> Out(NumBlocks, BitVector(NumDefs));

  // Entry block IN = entry pseudo-defs.
  if (NumBlocks != 0)
    for (uint32_t Id = 0; Id != NumDefs; ++Id)
      if (AllDefs[Id].Kind == DefKind::Entry)
        In[G.entry()].set(Id);

  // Initialize OUT = GEN | (IN - KILL).
  auto transfer = [&](uint32_t B, BitVector &OutSet) {
    OutSet = In[B];
    OutSet.subtract(Kill[B]);
    OutSet.unionWith(Gen[B]);
  };
  for (uint32_t B = 0; B != NumBlocks; ++B)
    transfer(B, Out[B]);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B = 0; B != NumBlocks; ++B) {
      bool InChanged = false;
      for (uint32_t P : G.blocks()[B].Preds)
        InChanged |= In[B].unionWith(Out[P]);
      if (!InChanged && B != G.entry())
        continue;
      BitVector NewOut(NumDefs);
      transfer(B, NewOut);
      if (!(NewOut == Out[B])) {
        Out[B] = std::move(NewOut);
        Changed = true;
      }
    }
  }
}

std::vector<Def> ReachingDefs::defsReaching(uint32_t InstrIdx, Reg R) const {
  std::vector<Def> Result;
  if (R == Reg::Zero)
    return Result;

  uint32_t B = G.blockOf(InstrIdx);
  const cfg::BasicBlock &Blk = G.blocks()[B];

  // Scan backward within the block for the most recent def(s) of R. A single
  // instruction can define R at most once, except calls, where the call def
  // is the only one.
  for (uint32_t Idx = InstrIdx; Idx != Blk.Begin;) {
    --Idx;
    for (uint32_t Id : DefsByInstr[Idx]) {
      if (AllDefs[Id].R != R)
        continue;
      Result.push_back(AllDefs[Id]);
      return Result;
    }
  }

  // Nothing in-block: filter the block-in set by register.
  const BitVector &InSet = In[B];
  for (uint32_t Id : DefsByReg[static_cast<unsigned>(R)])
    if (InSet.test(Id))
      Result.push_back(AllDefs[Id]);
  return Result;
}
