//===- dataflow/ReachingDefs.h - Reaching definitions ----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic reaching-definitions dataflow over a function's CFG. This is the
/// analysis the paper performs after disassembly: "If a load's address
/// computation is dependent on values computed outside the basic block it is
/// in, we perform a data flow analysis to obtain all reaching definitions for
/// the temporaries involved" (Section 6).
///
/// Definition sites:
///  - every instruction writing a register (writes to $zero are ignored),
///  - calls, which define every caller-saved register (the return-value
///    registers carry the callee's result; the rest become unknown),
///  - a pseudo-definition at function entry for every register, carrying the
///    caller-provided value ($sp, $gp, $a0..$a3, ...).
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_DATAFLOW_REACHINGDEFS_H
#define DLQ_DATAFLOW_REACHINGDEFS_H

#include "cfg/Cfg.h"
#include "dataflow/BitVector.h"
#include "masm/Module.h"

#include <cstdint>
#include <vector>

namespace dlq {
namespace dataflow {

/// What produced a definition.
enum class DefKind : uint8_t {
  Normal, ///< A register-writing instruction.
  Call,   ///< A call clobbering a caller-saved register.
  Entry,  ///< The function-entry pseudo-definition.
};

/// One definition site.
struct Def {
  DefKind Kind = DefKind::Normal;
  /// Defining instruction index; masm::InvalidIndex for Entry defs.
  uint32_t InstrIdx = masm::InvalidIndex;
  masm::Reg R = masm::Reg::Zero;
};

/// Reaching definitions for one function.
class ReachingDefs {
public:
  /// Runs the analysis over \p G.
  explicit ReachingDefs(const cfg::Cfg &G);

  /// All definitions of register \p R reaching the *use* at instruction
  /// \p InstrIdx (i.e. considering definitions strictly before it in its
  /// block, plus block-in definitions).
  std::vector<Def> defsReaching(uint32_t InstrIdx, masm::Reg R) const;

  /// Definition table (index = def id).
  const std::vector<Def> &defs() const { return AllDefs; }

  /// Bits reaching the start of block \p B.
  const BitVector &blockIn(uint32_t B) const { return In[B]; }

private:
  const cfg::Cfg &G;
  std::vector<Def> AllDefs;
  /// Def ids grouped by register for fast filtering.
  std::vector<std::vector<uint32_t>> DefsByReg;
  /// Def ids created by instruction index (Normal and Call defs).
  std::vector<std::vector<uint32_t>> DefsByInstr;
  std::vector<BitVector> In;

  void collectDefs();
  void solve();
};

} // namespace dataflow
} // namespace dlq

#endif // DLQ_DATAFLOW_REACHINGDEFS_H
