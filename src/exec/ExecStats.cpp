//===- exec/ExecStats.cpp -------------------------------------------------------//

#include "exec/ExecStats.h"

#include "support/Format.h"

using namespace dlq;
using namespace dlq::exec;

ExecStats::ExecStats() : Start(std::chrono::steady_clock::now()) {
  PhaseNs[0] = &Registry.counter("phase.compile.ns");
  PhaseNs[1] = &Registry.counter("phase.simulate.ns");
  PhaseNs[2] = &Registry.counter("phase.analyze.ns");
}

const char *exec::phaseName(Phase P) {
  switch (P) {
  case Phase::Compile:
    return "compile";
  case Phase::Simulate:
    return "simulate";
  case Phase::Analyze:
    return "analyze";
  }
  return "?";
}

const char *PhaseTimer::spanName(Phase P) {
  switch (P) {
  case Phase::Compile:
    return "phase.compile";
  case Phase::Simulate:
    return "phase.simulate";
  case Phase::Analyze:
    return "phase.analyze";
  }
  return "phase.?";
}

std::string ExecStats::render(const StoreStats &Store,
                              unsigned Workers) const {
  uint64_t Run = Jobs.JobsRun.load(std::memory_order_relaxed);
  uint64_t Failed = Jobs.JobsFailed.load(std::memory_order_relaxed);
  std::string Extra;
  if (Store.Invalid)
    Extra += formatString(", %llu invalid dropped",
                          static_cast<unsigned long long>(Store.Invalid));
  if (Store.Drops)
    Extra += formatString(", %llu store drops",
                          static_cast<unsigned long long>(Store.Drops));
  return formatString(
      "exec: %llu jobs on %u workers (%llu failed) | cache %llu hit / "
      "%llu miss (%.0f%%), %llu written%s | compile %.2fs, simulate %.2fs, "
      "analyze %.2fs, wall %.2fs",
      static_cast<unsigned long long>(Run), Workers,
      static_cast<unsigned long long>(Failed),
      static_cast<unsigned long long>(Store.Hits),
      static_cast<unsigned long long>(Store.Misses), 100 * hitRate(Store),
      static_cast<unsigned long long>(Store.Writes), Extra.c_str(),
      phaseSeconds(Phase::Compile), phaseSeconds(Phase::Simulate),
      phaseSeconds(Phase::Analyze), wallSeconds());
}

std::string ExecStats::json(const StoreStats &Store, unsigned Workers) const {
  return formatString(
      "{\"workers\": %u, \"jobs_run\": %llu, \"jobs_failed\": %llu, "
      "\"cache_hits\": %llu, \"cache_misses\": %llu, \"cache_writes\": %llu, "
      "\"cache_invalid\": %llu, \"cache_drops\": %llu, "
      "\"cache_bytes_written\": %llu, \"cache_bytes_read\": %llu, "
      "\"cache_hit_rate\": %.4f, "
      "\"compile_sec\": %.4f, \"simulate_sec\": %.4f, \"analyze_sec\": %.4f, "
      "\"wall_sec\": %.4f}",
      Workers,
      static_cast<unsigned long long>(
          Jobs.JobsRun.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          Jobs.JobsFailed.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(Store.Hits),
      static_cast<unsigned long long>(Store.Misses),
      static_cast<unsigned long long>(Store.Writes),
      static_cast<unsigned long long>(Store.Invalid),
      static_cast<unsigned long long>(Store.Drops),
      static_cast<unsigned long long>(Store.BytesWritten),
      static_cast<unsigned long long>(Store.BytesRead), hitRate(Store),
      phaseSeconds(Phase::Compile), phaseSeconds(Phase::Simulate),
      phaseSeconds(Phase::Analyze), wallSeconds());
}
