//===- exec/ExecStats.h - execution report for benches and tools ------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters the execution layer accumulates while a bench or tool runs: jobs
/// executed and failed, result-cache traffic, and wall time spent per
/// pipeline phase (compile, simulate, analyze). The phase totals live in an
/// obs::Counters registry owned by the stats object (superseding the old
/// fixed atomic array), so `registry()` exposes them alongside any other
/// counters a driver wants to publish. Benches print the rendered report to
/// stderr — stdout stays byte-identical across worker counts and cache
/// states — and embed the JSON form in their `--json` output.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_EXEC_EXECSTATS_H
#define DLQ_EXEC_EXECSTATS_H

#include "exec/JobPool.h"
#include "exec/ResultStore.h"
#include "obs/Counters.h"
#include "obs/Trace.h"

#include <chrono>
#include <cstdint>
#include <string>

namespace dlq {
namespace exec {

/// Phases the execution layer attributes time to.
enum class Phase { Compile, Simulate, Analyze };

/// Aggregated execution counters. One instance lives in each pipeline
/// Driver; all members are safe to update from worker threads.
class ExecStats {
public:
  ExecStats();

  JobCounters Jobs;

  void addPhase(Phase P, std::chrono::steady_clock::duration D) {
    PhaseNs[static_cast<unsigned>(P)]->add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(D).count()));
  }

  double phaseSeconds(Phase P) const {
    return static_cast<double>(PhaseNs[static_cast<unsigned>(P)]->value()) *
           1e-9;
  }

  /// Wall time since the stats (i.e. the Driver) were created.
  double wallSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  /// The registry backing the phase counters ("phase.compile.ns", ...);
  /// drivers may hang extra counters off it.
  obs::Counters &registry() { return Registry; }
  const obs::Counters &registry() const { return Registry; }

  /// Human-readable one-paragraph report, e.g. for stderr after a bench.
  std::string render(const StoreStats &Store, unsigned Workers) const;

  /// The `"exec": {...}` JSON object embedded in bench --json reports.
  std::string json(const StoreStats &Store, unsigned Workers) const;

  static double hitRate(const StoreStats &Store) {
    uint64_t Total = Store.Hits + Store.Misses;
    return Total == 0 ? 0.0 : static_cast<double>(Store.Hits) / Total;
  }

private:
  obs::Counters Registry;
  obs::Counter *PhaseNs[3];
  std::chrono::steady_clock::time_point Start;
};

/// Names a phase for spans and counters ("compile", "simulate", "analyze").
const char *phaseName(Phase P);

/// RAII phase timer: adds the scope's elapsed time to one phase counter and,
/// when the tracer is enabled, records a "phase.<name>" span.
class PhaseTimer {
public:
  PhaseTimer(ExecStats &Stats, Phase P)
      : Stats(Stats), P(P), Guard(spanName(P)),
        T0(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() { Stats.addPhase(P, std::chrono::steady_clock::now() - T0); }

  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

private:
  static const char *spanName(Phase P);

  ExecStats &Stats;
  Phase P;
  obs::Span Guard;
  std::chrono::steady_clock::time_point T0;
};

} // namespace exec
} // namespace dlq

#endif // DLQ_EXEC_EXECSTATS_H
