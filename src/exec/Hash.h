//===- exec/Hash.h - FNV-1a content hashing for cache keys ------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 64-bit FNV-1a hasher used to content-address experiment results: every
/// input that can change a result (workload source text, input id, opt level,
/// cache geometry, analysis knobs) is folded into one key. Each typed fold
/// prefixes the payload length where it is variable, so concatenation
/// ambiguities ("ab"+"c" vs "a"+"bc") cannot alias.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_EXEC_HASH_H
#define DLQ_EXEC_HASH_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dlq {
namespace exec {

/// Incremental 64-bit FNV-1a.
class Fnv1a {
public:
  static constexpr uint64_t OffsetBasis = 14695981039346656037ull;
  static constexpr uint64_t Prime = 1099511628211ull;

  Fnv1a &bytes(const void *Data, size_t Size) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I != Size; ++I) {
      H ^= P[I];
      H *= Prime;
    }
    return *this;
  }

  Fnv1a &u8(uint8_t V) { return bytes(&V, 1); }
  Fnv1a &b(bool V) { return u8(V ? 1 : 0); }

  Fnv1a &u32(uint32_t V) {
    uint8_t Buf[4] = {static_cast<uint8_t>(V), static_cast<uint8_t>(V >> 8),
                      static_cast<uint8_t>(V >> 16),
                      static_cast<uint8_t>(V >> 24)};
    return bytes(Buf, 4);
  }

  Fnv1a &u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    return u32(static_cast<uint32_t>(V >> 32));
  }

  /// Doubles are folded by bit pattern: two knob values hash alike only when
  /// they are the same double.
  Fnv1a &f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    return u64(Bits);
  }

  /// Length-prefixed, so adjacent strings cannot alias.
  Fnv1a &str(std::string_view S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }

  uint64_t value() const { return H; }

private:
  uint64_t H = OffsetBasis;
};

/// One-shot hash of a byte buffer (used as the ResultStore payload checksum).
inline uint64_t fnv1a(const void *Data, size_t Size) {
  return Fnv1a().bytes(Data, Size).value();
}

/// 16-digit lowercase hex rendering of a key, used for store file names.
inline std::string hexKey(uint64_t Key) {
  static const char Digits[] = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I) {
    S[static_cast<size_t>(I)] = Digits[Key & 0xF];
    Key >>= 4;
  }
  return S;
}

} // namespace exec
} // namespace dlq

#endif // DLQ_EXEC_HASH_H
