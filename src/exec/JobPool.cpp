//===- exec/JobPool.cpp ---------------------------------------------------------//

#include "exec/JobPool.h"

#include "obs/Trace.h"

#include <cstdlib>
#include <stdexcept>

using namespace dlq;
using namespace dlq::exec;

namespace {

// Pool-wide latency distributions, shared by every JobPool in the process.
// Always on: the cost per job is two clock reads and a few relaxed atomics,
// noise against jobs that compile or simulate whole programs.
struct JobHistograms {
  obs::Histogram &QueueWait = obs::counters().histogram("job.queue_wait.ns");
  obs::Histogram &Run = obs::counters().histogram("job.run.ns");
};

JobHistograms &jobHistograms() {
  static JobHistograms *G = new JobHistograms();
  return *G;
}

} // namespace

unsigned exec::defaultJobCount() {
  if (const char *Env = std::getenv("DLQ_JOBS")) {
    long N = std::strtol(Env, nullptr, 10);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw == 0 ? 1 : Hw;
}

JobPool::JobPool(unsigned Workers, JobCounters *Counters)
    : Counters(Counters) {
  if (Workers == 0)
    Workers = defaultJobCount();
  Threads.reserve(Workers);
  for (unsigned I = 0; I != Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void JobPool::submit(std::function<void()> Fn) {
  uint64_t Now = obs::Tracer::instance().nowNs();
  {
    std::unique_lock<std::mutex> Lock(Mu);
    if (Draining.load(std::memory_order_relaxed))
      throw std::logic_error("JobPool::submit after drain()");
    Queue.push_back(PendingJob{std::move(Fn), Now});
    ++InFlight;
  }
  WorkReady.notify_one();
}

void JobPool::drain() {
  std::vector<std::thread> ToJoin;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Draining.store(true, std::memory_order_relaxed);
    Idle.wait(Lock, [this] { return InFlight == 0; });
    Stopping = true;
    ToJoin.swap(Threads);
  }
  WorkReady.notify_all();
  for (std::thread &T : ToJoin)
    T.join();
}

void JobPool::waitIdle() {
  std::unique_lock<std::mutex> Lock(Mu);
  Idle.wait(Lock, [this] { return InFlight == 0; });
}

void JobPool::workerLoop() {
  obs::Tracer &Tracer = obs::Tracer::instance();
  for (;;) {
    PendingJob Job;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, and no work left to drain.
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    uint64_t DequeuedNs = Tracer.nowNs();
    jobHistograms().QueueWait.record(DequeuedNs - Job.EnqueueNs);
    {
      obs::Span S("job.run");
      S.attr("queue_wait_us", (DequeuedNs - Job.EnqueueNs) / 1000);
      try {
        Job.Fn();
        if (Counters)
          Counters->JobsRun.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        // Job-level exceptions are the caller's business (map/TaskSet capture
        // them inside the closure); anything reaching here is fire-and-forget.
        if (Counters) {
          Counters->JobsRun.fetch_add(1, std::memory_order_relaxed);
          Counters->JobsFailed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    jobHistograms().Run.record(Tracer.nowNs() - DequeuedNs);
    {
      std::unique_lock<std::mutex> Lock(Mu);
      if (--InFlight == 0)
        Idle.notify_all();
    }
  }
}

size_t TaskSet::add(std::function<void()> Fn,
                    const std::vector<size_t> &Deps) {
  size_t Id = Tasks.size();
  Tasks.push_back(Task{std::move(Fn), {}, Deps.size(), false});
  Errors.emplace_back();
  for (size_t Dep : Deps)
    Tasks[Dep].Dependents.push_back(Id);
  return Id;
}

void TaskSet::schedule(size_t Id) {
  Pool.submit([this, Id] {
    bool Failed = false;
    try {
      Tasks[Id].Fn();
    } catch (...) {
      Errors[Id] = std::current_exception();
      Failed = true;
      Pool.noteFailure();
    }
    finish(Id, Failed);
  });
}

void TaskSet::finish(size_t Id, bool Failed) {
  std::vector<size_t> Ready;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    // Resolve this task and every dependent that becomes decided without
    // running (skipped because an ancestor failed), without recursion.
    std::vector<std::pair<size_t, bool>> Work = {{Id, Failed}};
    while (!Work.empty()) {
      auto [Cur, CurFailed] = Work.back();
      Work.pop_back();
      ++Finished;
      for (size_t Dep : Tasks[Cur].Dependents) {
        Task &D = Tasks[Dep];
        D.Skipped = D.Skipped || CurFailed;
        if (--D.PendingDeps != 0)
          continue;
        if (D.Skipped)
          Work.push_back({Dep, true}); // Skipping counts as a failed parent.
        else
          Ready.push_back(Dep);
      }
    }
    if (Finished == Tasks.size())
      Done.notify_all();
  }
  for (size_t Dep : Ready)
    schedule(Dep);
}

void TaskSet::run() {
  std::vector<size_t> Roots;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    if (Running)
      throw std::logic_error("TaskSet::run called twice");
    Running = true;
    for (size_t Id = 0; Id != Tasks.size(); ++Id)
      if (Tasks[Id].PendingDeps == 0)
        Roots.push_back(Id);
  }
  for (size_t Id : Roots)
    schedule(Id);
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Done.wait(Lock, [this] { return Finished == Tasks.size(); });
  }
  for (const std::exception_ptr &E : Errors)
    if (E)
      std::rethrow_exception(E);
}
