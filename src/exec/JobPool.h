//===- exec/JobPool.h - worker pool and dependency-aware task sets ----------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution layer's scheduler. A JobPool owns N worker threads
/// (N = DLQ_JOBS or hardware_concurrency by default) and runs submitted
/// closures; `map` fans a function out over an index range and returns the
/// results in submission order, so callers are deterministic regardless of
/// worker count. A TaskSet adds explicit dependencies on top: tasks become
/// runnable only when every predecessor finished, which is how the pipeline
/// expresses compile -> simulate -> analyze stages without barriers.
///
/// Exceptions thrown by jobs are captured and rethrown on the waiting
/// thread (first failing index wins in `map`; first failing task id in
/// TaskSet); a throwing job never deadlocks or poisons the pool.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_EXEC_JOBPOOL_H
#define DLQ_EXEC_JOBPOOL_H

#include "obs/Counters.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace dlq {
namespace exec {

/// Counters a pool reports into (shared with ExecStats).
struct JobCounters {
  std::atomic<uint64_t> JobsRun{0};
  std::atomic<uint64_t> JobsFailed{0};
};

/// The default worker count: the DLQ_JOBS environment variable when set to a
/// positive integer, otherwise std::thread::hardware_concurrency (minimum 1).
unsigned defaultJobCount();

/// A fixed-size worker pool.
class JobPool {
public:
  /// \p Workers = 0 selects defaultJobCount().
  explicit JobPool(unsigned Workers = 0, JobCounters *Counters = nullptr);
  ~JobPool();

  JobPool(const JobPool &) = delete;
  JobPool &operator=(const JobPool &) = delete;

  unsigned workers() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues \p Fn. Exceptions it throws are counted as failed jobs and
  /// dropped; use `map` or TaskSet when failures must propagate.
  void submit(std::function<void()> Fn);

  /// Blocks until every submitted job has finished.
  void waitIdle();

  /// Shuts the pool down for good: rejects further submissions, waits for
  /// every queued and running job to finish, then joins the workers. Unlike
  /// destructor teardown this leaves the pool object alive and quiescent —
  /// a daemon drains its pool, then still reads counters and renders stats
  /// before exiting. Idempotent and safe to call from any non-worker
  /// thread; submit()/map() after drain() throw std::logic_error.
  void drain();

  /// True once drain() has begun; submissions are rejected from then on.
  bool draining() const { return Draining.load(std::memory_order_relaxed); }

  /// Records a failed job in the pool's counters. Used by `map` and TaskSet,
  /// which capture job exceptions for rethrow instead of letting them reach
  /// the worker loop.
  void noteFailure() {
    if (Counters)
      Counters->JobsFailed.fetch_add(1, std::memory_order_relaxed);
  }

  /// Runs Fn(0..N-1) across the workers and returns the results indexed by
  /// input position — byte-identical output whether the pool has 1 worker or
  /// 64. If any call throws, the exception of the smallest failing index is
  /// rethrown after all jobs finished.
  template <typename T>
  std::vector<T> map(size_t N, const std::function<T(size_t)> &Fn) {
    std::vector<std::optional<T>> Slots(N);
    std::vector<std::exception_ptr> Errors(N);
    for (size_t I = 0; I != N; ++I)
      submit([&, I] {
        try {
          Slots[I].emplace(Fn(I));
        } catch (...) {
          Errors[I] = std::current_exception();
          noteFailure();
        }
      });
    waitIdle();
    for (size_t I = 0; I != N; ++I)
      if (Errors[I])
        std::rethrow_exception(Errors[I]);
    std::vector<T> Out;
    Out.reserve(N);
    for (std::optional<T> &S : Slots)
      Out.push_back(std::move(*S));
    return Out;
  }

private:
  /// A queued closure stamped with its enqueue time, so the dequeuing worker
  /// can attribute queue-wait separately from run time (the job.queue_wait.ns
  /// and job.run.ns histograms in obs::counters(), plus a "job.run" span per
  /// job when the tracer is enabled).
  struct PendingJob {
    std::function<void()> Fn;
    uint64_t EnqueueNs;
  };

  void workerLoop();

  std::mutex Mu;
  std::condition_variable WorkReady;
  std::condition_variable Idle;
  std::deque<PendingJob> Queue;
  std::vector<std::thread> Threads;
  size_t InFlight = 0; ///< Queued + currently executing.
  bool Stopping = false;
  std::atomic<bool> Draining{false};
  JobCounters *Counters = nullptr;
};

/// A dependency-aware task set scheduled onto a JobPool. Tasks are added
/// with edges to earlier tasks; `run` executes every task whose dependencies
/// succeeded, in parallel where the graph allows. When a task throws, its
/// transitive dependents are skipped and the exception of the lowest failing
/// task id is rethrown after the set drains.
class TaskSet {
public:
  explicit TaskSet(JobPool &Pool) : Pool(Pool) {}

  /// Adds a task depending on the given earlier task ids; returns its id.
  size_t add(std::function<void()> Fn, const std::vector<size_t> &Deps = {});

  /// Runs the set to completion. Callable once.
  void run();

private:
  struct Task {
    std::function<void()> Fn;
    std::vector<size_t> Dependents;
    size_t PendingDeps = 0;
    bool Skipped = false;
  };

  void schedule(size_t Id);
  void finish(size_t Id, bool Failed);

  JobPool &Pool;
  std::mutex Mu;
  std::condition_variable Done;
  std::vector<Task> Tasks;
  std::vector<std::exception_ptr> Errors;
  size_t Finished = 0;
  bool Running = false;
};

} // namespace exec
} // namespace dlq

#endif // DLQ_EXEC_JOBPOOL_H
