//===- exec/Options.cpp ---------------------------------------------------------//

#include "exec/Options.h"

#include "obs/Trace.h"

#include <cstdlib>
#include <cstring>

using namespace dlq;
using namespace dlq::exec;

ExecOptions ExecOptions::fromEnv() {
  ExecOptions O;
  if (const char *Dir = std::getenv("DLQ_CACHE_DIR"))
    if (*Dir)
      O.CacheDir = Dir;
  if (const char *No = std::getenv("DLQ_NO_CACHE"))
    if (*No && std::strcmp(No, "0") != 0)
      O.UseDiskCache = false;
  // DLQ_JIT=0 forces the interpreter, any other non-empty value requests the
  // JIT; unset stays "auto" (which itself consults DLQ_JIT at run time, so
  // tools that never parse flags behave the same way).
  if (const char *Jit = std::getenv("DLQ_JIT"))
    if (*Jit)
      O.Engine = std::strcmp(Jit, "0") == 0 ? "interp" : "jit";
  if (const char *Ipa = std::getenv("DLQ_IPA"))
    if (*Ipa && std::strcmp(Ipa, "0") != 0)
      O.Ipa = true;
  if (const char *K = std::getenv("DLQ_IPA_K")) {
    char *End = nullptr;
    long N = std::strtol(K, &End, 10);
    if (N >= 0 && End != K && *End == '\0')
      O.IpaK = static_cast<unsigned>(N);
  }
  if (const char *Pf = std::getenv("DLQ_PREFETCH"))
    if (std::strcmp(Pf, "none") == 0 || std::strcmp(Pf, "nextline") == 0 ||
        std::strcmp(Pf, "pcax") == 0)
      O.Prefetch = Pf;
  return O;
}

namespace {

/// Matches `--flag value` and `--flag=value`; on a match \p Value points at
/// the value and \p I has been advanced past it.
bool valueArg(const char *Flag, int Argc, char **Argv, int &I,
              const char *&Value) {
  const char *Arg = Argv[I];
  size_t N = std::strlen(Flag);
  if (std::strncmp(Arg, Flag, N) != 0)
    return false;
  if (Arg[N] == '=') {
    Value = Arg + N + 1;
    return true;
  }
  if (Arg[N] == '\0' && I + 1 < Argc) {
    Value = Argv[++I];
    return true;
  }
  return false;
}

} // namespace

bool ExecOptions::consumeArg(int Argc, char **Argv, int &I) {
  if (std::strcmp(Argv[I], "--no-cache") == 0) {
    UseDiskCache = false;
    return true;
  }
  if (std::strcmp(Argv[I], "--ipa") == 0) {
    Ipa = true;
    return true;
  }
  const char *Value = nullptr;
  if (valueArg("--jobs", Argc, Argv, I, Value)) {
    char *End = nullptr;
    long N = std::strtol(Value, &End, 10);
    if (N > 0 && End != Value && *End == '\0')
      Jobs = static_cast<unsigned>(N);
    else
      Error = std::string("invalid --jobs value '") + Value + "'";
    return true;
  }
  if (valueArg("--cache-dir", Argc, Argv, I, Value)) {
    CacheDir = Value;
    return true;
  }
  if (valueArg("--trace", Argc, Argv, I, Value)) {
    TracePath = Value;
    if (TracePath.empty())
      Error = "empty --trace path";
    return true;
  }
  if (valueArg("--ipa-k", Argc, Argv, I, Value)) {
    char *End = nullptr;
    long N = std::strtol(Value, &End, 10);
    if (N >= 0 && End != Value && *End == '\0')
      IpaK = static_cast<unsigned>(N);
    else
      Error = std::string("invalid --ipa-k value '") + Value + "'";
    return true;
  }
  if (valueArg("--prefetch", Argc, Argv, I, Value)) {
    if (std::strcmp(Value, "none") == 0 || std::strcmp(Value, "nextline") == 0 ||
        std::strcmp(Value, "pcax") == 0)
      Prefetch = Value;
    else
      Error = std::string("invalid --prefetch value '") + Value +
              "' (expected none, nextline or pcax)";
    return true;
  }
  if (valueArg("--engine", Argc, Argv, I, Value)) {
    if (std::strcmp(Value, "auto") == 0 || std::strcmp(Value, "interp") == 0 ||
        std::strcmp(Value, "jit") == 0)
      Engine = Value;
    else
      Error = std::string("invalid --engine value '") + Value +
              "' (expected auto, interp or jit)";
    return true;
  }
  return false;
}

void ExecOptions::applyTracing() const {
  if (!TracePath.empty())
    obs::Tracer::instance().enable();
}

bool ExecOptions::writeTrace() const {
  if (TracePath.empty())
    return true;
  return obs::Tracer::instance().writeChromeTrace(TracePath);
}

const char *ExecOptions::usageText() {
  return "  --jobs <n>           worker threads (default: DLQ_JOBS or all "
         "hardware threads)\n"
         "  --cache-dir <dir>    persistent result cache directory (default "
         ".dlq-cache)\n"
         "  --no-cache           bypass the persistent result cache\n"
         "  --trace <file>       write a Chrome trace_event JSON "
         "(Perfetto-loadable) span trace\n"
         "  --engine <kind>      guest execution engine: auto (default), "
         "interp, or jit (env DLQ_JIT)\n"
         "  --ipa                enable interprocedural summaries and "
         "patterns (env DLQ_IPA)\n"
         "  --ipa-k <n>          IPA call-string depth below main (default "
         "3; env DLQ_IPA_K)\n"
         "  --prefetch <policy>  armed-load prefetch policy: nextline "
         "(default), pcax, or none (env DLQ_PREFETCH)\n";
}
