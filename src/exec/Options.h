//===- exec/Options.h - execution-layer configuration -----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The knobs every bench and tool exposes identically: worker count
/// (`--jobs N`, env DLQ_JOBS), store directory (`--cache-dir D`, env
/// DLQ_CACHE_DIR), cache bypass (`--no-cache`, env DLQ_NO_CACHE), span
/// tracing (`--trace out.json`, env DLQ_TRACE) and execution-engine
/// selection (`--engine auto|interp|jit`, env DLQ_JIT). The environment
/// seeds the defaults; command-line flags override it.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_EXEC_OPTIONS_H
#define DLQ_EXEC_OPTIONS_H

#include <string>

namespace dlq {
namespace exec {

struct ExecOptions {
  unsigned Jobs = 0; ///< 0 = defaultJobCount() (DLQ_JOBS or hw threads).
  bool UseDiskCache = true;
  std::string CacheDir = ".dlq-cache";
  std::string TracePath; ///< Chrome-trace output path; empty = tracing off.
  /// Guest execution engine: "auto" (JIT when the host and run support it),
  /// "interp" (always the predecoded interpreter) or "jit" (request native
  /// compilation; falls back to the interpreter only where the JIT cannot
  /// run at all). Feeds sim::MachineOptions::Engine via
  /// sim::engineKindFromString.
  std::string Engine = "auto";
  /// Interprocedural analysis (`--ipa`, env DLQ_IPA): the compile stage
  /// additionally builds ipa::ModuleSummaries and runs the
  /// context-sensitive pattern schedule. Off reproduces the
  /// intraprocedural results bit-exactly.
  bool Ipa = false;
  /// Call-string depth for IPA entry facts (`--ipa-k N`, env DLQ_IPA_K).
  /// Three levels reach the leaf of a main -> driver -> worker -> leaf
  /// chain, the deepest shape the workload registry exercises.
  unsigned IpaK = 3;
  /// Prefetch policy for armed runs (`--prefetch none|nextline|pcax`, env
  /// DLQ_PREFETCH): what the engine does at each statically-flagged load.
  /// Feeds sim::MachineOptions::PrefetchPolicy via
  /// prefetch::policyFromString; has no effect on runs that arm no loads.
  std::string Prefetch = "nextline";
  std::string Error; ///< Set by consumeArg on a malformed value.

  /// Defaults with DLQ_CACHE_DIR / DLQ_NO_CACHE applied (DLQ_JOBS is read
  /// by defaultJobCount() at pool construction, so Jobs stays 0 here).
  static ExecOptions fromEnv();

  /// Consumes `--jobs N|--jobs=N`, `--cache-dir D|--cache-dir=D` or
  /// `--no-cache` at Argv[I], advancing I past any value argument. Returns
  /// true if the argument was one of ours; leaves I untouched otherwise.
  /// A recognized flag with a malformed value still returns true but sets
  /// Error — callers must check it after the parse loop.
  bool consumeArg(int Argc, char **Argv, int &I);

  /// The usage text block describing the shared flags.
  static const char *usageText();

  /// Arms the process tracer when TracePath is set. Callers pair this with
  /// writeTrace() once the workload finished.
  void applyTracing() const;

  /// Writes the accumulated trace to TracePath (no-op when unset); returns
  /// false on write failure.
  bool writeTrace() const;
};

} // namespace exec
} // namespace dlq

#endif // DLQ_EXEC_OPTIONS_H
