//===- exec/ResultStore.cpp -----------------------------------------------------//

#include "exec/ResultStore.h"

#include "exec/Hash.h"
#include "exec/Serialize.h"
#include "obs/Counters.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

using namespace dlq;
using namespace dlq::exec;

namespace {

constexpr char Magic[4] = {'D', 'L', 'Q', 'R'};

// Test-only fault injection (see ResultStore::injectFailure). Checked on
// every publish; zero in production, so the cost is one relaxed load.
std::atomic<int> Inject{0};

} // namespace

void ResultStore::injectFailure(FailureInjection F) {
  Inject.store(static_cast<int>(F), std::memory_order_relaxed);
}

namespace {

// Process-global mirrors of every store's traffic, under the store.* names
// (a process can hold several ResultStore instances; the registry view
// aggregates them). Looked up once.
struct GlobalStoreCounters {
  obs::Counter &Hits = obs::counters().counter("store.hits");
  obs::Counter &Misses = obs::counters().counter("store.misses");
  obs::Counter &Writes = obs::counters().counter("store.writes");
  obs::Counter &Invalid = obs::counters().counter("store.invalid");
  obs::Counter &Drops = obs::counters().counter("store.drops");
  obs::Counter &BytesWritten = obs::counters().counter("store.bytes_written");
  obs::Counter &BytesRead = obs::counters().counter("store.bytes_read");
};

GlobalStoreCounters &storeCounters() {
  static GlobalStoreCounters *G = new GlobalStoreCounters();
  return *G;
}

} // namespace

std::string ResultStore::pathFor(uint64_t Key) const {
  return Dir + "/" + hexKey(Key) + ".dlqr";
}

bool ResultStore::lookup(uint64_t Key, std::vector<uint8_t> &Payload) {
  if (!Enabled)
    return false;

  std::ifstream In(pathFor(Key), std::ios::binary);
  if (!In) {
    storeCounters().Misses.inc();
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Misses;
    return false;
  }
  std::vector<uint8_t> Raw((std::istreambuf_iterator<char>(In)),
                           std::istreambuf_iterator<char>());

  auto invalid = [&] {
    storeCounters().Misses.inc();
    storeCounters().Invalid.inc();
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Misses;
    ++S.Invalid;
    return false;
  };

  ByteReader R(Raw);
  char M[4];
  if (R.remaining() < 4)
    return invalid();
  for (char &C : M) {
    uint8_t B;
    R.u8(B);
    C = static_cast<char>(B);
  }
  uint32_t Version;
  uint64_t StoredKey, Size, Checksum;
  if (M[0] != Magic[0] || M[1] != Magic[1] || M[2] != Magic[2] ||
      M[3] != Magic[3] || !R.u32(Version) || Version != FormatVersion ||
      !R.u64(StoredKey) || StoredKey != Key || !R.u64(Size) ||
      Size != R.remaining() - 8 || Size > R.remaining())
    return invalid();

  Payload.assign(Raw.end() - static_cast<ptrdiff_t>(Size) - 8,
                 Raw.end() - 8);
  ByteReader Tail(Raw.data() + Raw.size() - 8, 8);
  Tail.u64(Checksum);
  if (Checksum != fnv1a(Payload.data(), Payload.size()))
    return invalid();

  storeCounters().Hits.inc();
  storeCounters().BytesRead.add(Raw.size());
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Hits;
  S.BytesRead += Raw.size();
  return true;
}

bool ResultStore::store(uint64_t Key, const std::vector<uint8_t> &Payload) {
  if (!Enabled)
    return false;

  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);

  ByteWriter W;
  for (char C : Magic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(FormatVersion);
  W.u64(Key);
  W.u64(Payload.size());
  // Header then payload then checksum, so a truncated write always fails
  // either the size or the checksum test.
  std::vector<uint8_t> Entry = W.take();
  Entry.insert(Entry.end(), Payload.begin(), Payload.end());
  ByteWriter Tail;
  Tail.u64(fnv1a(Payload.data(), Payload.size()));
  const std::vector<uint8_t> &TailBuf = Tail.buffer();
  Entry.insert(Entry.end(), TailBuf.begin(), TailBuf.end());

  // Unique temp name per thread + key; rename is atomic on POSIX, so
  // concurrent writers of the same key both succeed and one wins whole.
  std::string Path = pathFor(Key);
  std::string Tmp = Path + ".tmp" +
                    std::to_string(std::hash<std::thread::id>()(
                        std::this_thread::get_id()) %
                                   0xFFFF);
  auto drop = [&] {
    storeCounters().Drops.inc();
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Drops;
    return false;
  };

  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return drop();
    Out.write(reinterpret_cast<const char *>(Entry.data()),
              static_cast<std::streamsize>(Entry.size()));
    if (!Out)
      return drop();
  }

  FailureInjection Inj =
      static_cast<FailureInjection>(Inject.load(std::memory_order_relaxed));
  bool RenameOk = false;
  if (Inj == FailureInjection::None) {
    std::filesystem::rename(Tmp, Path, Ec);
    RenameOk = !Ec;
  }
  if (!RenameOk) {
    // rename(2) fails with EXDEV when the cache dir sits on a different
    // filesystem than the tmp file's parent (e.g. --cache-dir on tmpfs or
    // NFS). Fall back to a copy: not atomic, but readers validate the
    // checksum, so a torn copy reads as a miss rather than a bad result.
    bool CopyOk = Inj != FailureInjection::RenameAndCopy &&
                  std::filesystem::copy_file(
                      Tmp, Path,
                      std::filesystem::copy_options::overwrite_existing, Ec) &&
                  !Ec;
    std::error_code Ignored;
    std::filesystem::remove(Tmp, Ignored);
    if (!CopyOk)
      return drop();
  }
  storeCounters().Writes.inc();
  storeCounters().BytesWritten.add(Entry.size());
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Writes;
  S.BytesWritten += Entry.size();
  return true;
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}
