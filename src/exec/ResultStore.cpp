//===- exec/ResultStore.cpp -----------------------------------------------------//

#include "exec/ResultStore.h"

#include "exec/Hash.h"
#include "exec/Serialize.h"

#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

using namespace dlq;
using namespace dlq::exec;

namespace {

constexpr char Magic[4] = {'D', 'L', 'Q', 'R'};

} // namespace

std::string ResultStore::pathFor(uint64_t Key) const {
  return Dir + "/" + hexKey(Key) + ".dlqr";
}

bool ResultStore::lookup(uint64_t Key, std::vector<uint8_t> &Payload) {
  if (!Enabled)
    return false;

  std::ifstream In(pathFor(Key), std::ios::binary);
  if (!In) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Misses;
    return false;
  }
  std::vector<uint8_t> Raw((std::istreambuf_iterator<char>(In)),
                           std::istreambuf_iterator<char>());

  auto invalid = [&] {
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Misses;
    ++S.Invalid;
    return false;
  };

  ByteReader R(Raw);
  char M[4];
  if (R.remaining() < 4)
    return invalid();
  for (char &C : M) {
    uint8_t B;
    R.u8(B);
    C = static_cast<char>(B);
  }
  uint32_t Version;
  uint64_t StoredKey, Size, Checksum;
  if (M[0] != Magic[0] || M[1] != Magic[1] || M[2] != Magic[2] ||
      M[3] != Magic[3] || !R.u32(Version) || Version != FormatVersion ||
      !R.u64(StoredKey) || StoredKey != Key || !R.u64(Size) ||
      Size != R.remaining() - 8 || Size > R.remaining())
    return invalid();

  Payload.assign(Raw.end() - static_cast<ptrdiff_t>(Size) - 8,
                 Raw.end() - 8);
  ByteReader Tail(Raw.data() + Raw.size() - 8, 8);
  Tail.u64(Checksum);
  if (Checksum != fnv1a(Payload.data(), Payload.size()))
    return invalid();

  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Hits;
  return true;
}

bool ResultStore::store(uint64_t Key, const std::vector<uint8_t> &Payload) {
  if (!Enabled)
    return false;

  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);

  ByteWriter W;
  for (char C : Magic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(FormatVersion);
  W.u64(Key);
  W.u64(Payload.size());
  // Header then payload then checksum, so a truncated write always fails
  // either the size or the checksum test.
  std::vector<uint8_t> Entry = W.take();
  Entry.insert(Entry.end(), Payload.begin(), Payload.end());
  ByteWriter Tail;
  Tail.u64(fnv1a(Payload.data(), Payload.size()));
  const std::vector<uint8_t> &TailBuf = Tail.buffer();
  Entry.insert(Entry.end(), TailBuf.begin(), TailBuf.end());

  // Unique temp name per thread + key; rename is atomic on POSIX, so
  // concurrent writers of the same key both succeed and one wins whole.
  std::string Path = pathFor(Key);
  std::string Tmp = Path + ".tmp" +
                    std::to_string(std::hash<std::thread::id>()(
                        std::this_thread::get_id()) %
                                   0xFFFF);
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(reinterpret_cast<const char *>(Entry.data()),
              static_cast<std::streamsize>(Entry.size()));
    if (!Out)
      return false;
  }
  std::filesystem::rename(Tmp, Path, Ec);
  if (Ec) {
    std::filesystem::remove(Tmp, Ec);
    return false;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Writes;
  return true;
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}
