//===- exec/ResultStore.h - persistent content-addressed result cache -------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An on-disk cache of experiment results, content-addressed by the FNV-1a
/// key of everything that determines the result (workload source text, input
/// id, opt level, cache geometry, analysis knobs — the pipeline computes the
/// keys, the store only moves bytes). One entry per file under the store
/// directory (default `.dlq-cache/`), named by the hex key, with a versioned
/// header and a payload checksum. Entries from other format versions,
/// truncated writes or flipped bits fail the header/checksum validation and
/// read as misses; the caller recomputes and rewrites them. Writes go
/// through a temp file + rename so a crashed run never leaves a readable
/// half entry.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_EXEC_RESULTSTORE_H
#define DLQ_EXEC_RESULTSTORE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dlq {
namespace exec {

/// Store traffic counters (all guarded by the store's mutex).
struct StoreStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Writes = 0;
  uint64_t Invalid = 0; ///< Corrupt or version-mismatched entries seen.
  uint64_t Drops = 0;   ///< Entries irrecoverably lost on the write path.
  uint64_t BytesWritten = 0; ///< Serialized entry bytes persisted.
  uint64_t BytesRead = 0;    ///< Entry bytes read back on hits.
};

class ResultStore {
public:
  /// Bump when the payload encoding of any stored result changes; older
  /// entries then read as misses and are rewritten.
  static constexpr uint32_t FormatVersion = 1;

  /// A disabled store: every lookup misses, every write is dropped.
  ResultStore() = default;

  /// A store rooted at \p Dir (created lazily on first write); \p Enabled =
  /// false yields a disabled store regardless of the directory.
  explicit ResultStore(std::string Dir, bool Enabled = true)
      : Dir(std::move(Dir)), Enabled(Enabled) {}

  bool enabled() const { return Enabled; }
  const std::string &directory() const { return Dir; }

  /// Reads the entry for \p Key into \p Payload. False on miss, corruption,
  /// or version mismatch (corrupt entries count in stats().Invalid).
  bool lookup(uint64_t Key, std::vector<uint8_t> &Payload);

  /// Persists \p Payload under \p Key; false if the write failed (the cache
  /// is best-effort, callers proceed either way).
  bool store(uint64_t Key, const std::vector<uint8_t> &Payload);

  /// The on-disk path an entry key maps to.
  std::string pathFor(uint64_t Key) const;

  StoreStats stats() const;

  /// Test-only fault injection on the publish path. `Rename` makes the
  /// tmp→final rename act as if it failed (exercising the copy fallback,
  /// as a cross-filesystem cache dir would); `RenameAndCopy` fails the
  /// fallback too, producing a counted drop. Process-global; reset to None
  /// after use.
  enum class FailureInjection { None, Rename, RenameAndCopy };
  static void injectFailure(FailureInjection F);

private:
  std::string Dir;
  bool Enabled = false;
  mutable std::mutex Mu;
  StoreStats S;
};

} // namespace exec
} // namespace dlq

#endif // DLQ_EXEC_RESULTSTORE_H
