//===- exec/Serialize.cpp -------------------------------------------------------//

#include "exec/Serialize.h"

#include <cstring>

using namespace dlq;
using namespace dlq::exec;

void ByteWriter::f64(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

bool ByteReader::u8(uint8_t &V) {
  if (remaining() < 1)
    return false;
  V = *P++;
  return true;
}

bool ByteReader::u32(uint32_t &V) {
  if (remaining() < 4)
    return false;
  V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(*P++) << (8 * I);
  return true;
}

bool ByteReader::u64(uint64_t &V) {
  uint32_t Lo, Hi;
  if (!u32(Lo) || !u32(Hi))
    return false;
  V = Lo | (static_cast<uint64_t>(Hi) << 32);
  return true;
}

bool ByteReader::i32(int32_t &V) {
  uint32_t U;
  if (!u32(U))
    return false;
  V = static_cast<int32_t>(U);
  return true;
}

bool ByteReader::f64(double &V) {
  uint64_t Bits;
  if (!u64(Bits))
    return false;
  std::memcpy(&V, &Bits, sizeof(V));
  return true;
}

bool ByteReader::str(std::string &S) {
  uint64_t N;
  if (!u64(N) || N > remaining())
    return false;
  S.assign(reinterpret_cast<const char *>(P), static_cast<size_t>(N));
  P += N;
  return true;
}

bool ByteReader::vecU64(std::vector<uint64_t> &V) {
  uint64_t N;
  if (!u64(N) || N > remaining() / 8)
    return false;
  V.resize(static_cast<size_t>(N));
  for (uint64_t &X : V)
    if (!u64(X))
      return false;
  return true;
}

void exec::writeRunResult(ByteWriter &W, const sim::RunResult &R) {
  W.u8(static_cast<uint8_t>(R.Halt));
  W.str(R.TrapMessage);
  W.i32(R.ExitCode);
  W.str(R.Output);
  W.u64(R.InstrsExecuted);
  W.u64(R.DataAccesses);
  W.u64(R.LoadMisses);
  W.u64(R.StoreMisses);
  W.u64(R.ICacheMisses);
  W.u64(R.PrefetchesIssued);
  W.u64(R.PrefetchFills);
  W.vecU64(R.ExecCounts);
  W.vecU64(R.MissCounts);
  W.u64(R.FlatMap.size());
  for (const masm::InstrRef &Ref : R.FlatMap) {
    W.u32(Ref.FuncIdx);
    W.u32(Ref.InstrIdx);
  }
  // Prefetch-engine accounting rides at the tail, so any payload written
  // before these fields existed fails to parse and is recomputed.
  W.u64(R.PrefetchUseful);
  W.u64(R.PrefetchLate);
  W.u64(R.PrefetchPerPc.size());
  for (const sim::RunResult::PcPrefetch &P : R.PrefetchPerPc) {
    W.u32(P.FlatPc);
    W.u64(P.Issued);
    W.u64(P.Useful);
    W.u64(P.Late);
  }
}

bool exec::readRunResult(ByteReader &R, sim::RunResult &Out) {
  uint8_t Halt;
  if (!R.u8(Halt) || Halt > static_cast<uint8_t>(sim::HaltReason::Trapped))
    return false;
  Out.Halt = static_cast<sim::HaltReason>(Halt);
  if (!R.str(Out.TrapMessage) || !R.i32(Out.ExitCode) || !R.str(Out.Output) ||
      !R.u64(Out.InstrsExecuted) || !R.u64(Out.DataAccesses) ||
      !R.u64(Out.LoadMisses) || !R.u64(Out.StoreMisses) ||
      !R.u64(Out.ICacheMisses) || !R.u64(Out.PrefetchesIssued) ||
      !R.u64(Out.PrefetchFills) || !R.vecU64(Out.ExecCounts) ||
      !R.vecU64(Out.MissCounts))
    return false;
  uint64_t N;
  if (!R.u64(N) || N > R.remaining() / 8)
    return false;
  Out.FlatMap.resize(static_cast<size_t>(N));
  for (masm::InstrRef &Ref : Out.FlatMap)
    if (!R.u32(Ref.FuncIdx) || !R.u32(Ref.InstrIdx))
      return false;
  if (!R.u64(Out.PrefetchUseful) || !R.u64(Out.PrefetchLate))
    return false;
  uint64_t NPf;
  if (!R.u64(NPf) || NPf > R.remaining() / 28)
    return false;
  Out.PrefetchPerPc.resize(static_cast<size_t>(NPf));
  for (sim::RunResult::PcPrefetch &P : Out.PrefetchPerPc)
    if (!R.u32(P.FlatPc) || !R.u64(P.Issued) || !R.u64(P.Useful) ||
        !R.u64(P.Late))
      return false;
  // A well-formed payload has one counter per instruction.
  return Out.ExecCounts.size() == Out.FlatMap.size() &&
         Out.MissCounts.size() == Out.FlatMap.size();
}
