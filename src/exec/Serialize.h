//===- exec/Serialize.h - binary result (de)serialization -------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian byte writer/reader used by the ResultStore payloads, plus
/// the codec for sim::RunResult — the expensive artifact the execution layer
/// persists so a warm bench run never re-simulates. Readers are tolerant:
/// every accessor reports truncation instead of reading past the end, so a
/// corrupt store entry degrades to a cache miss, never to undefined
/// behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_EXEC_SERIALIZE_H
#define DLQ_EXEC_SERIALIZE_H

#include "masm/Module.h"
#include "sim/Machine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dlq {
namespace exec {

/// Appends little-endian scalars and length-prefixed containers to a buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }

  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    u32(static_cast<uint32_t>(V >> 32));
  }

  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void f64(double V);

  void str(const std::string &S) {
    u64(S.size());
    Buf.insert(Buf.end(), S.begin(), S.end());
  }

  void vecU64(const std::vector<uint64_t> &V) {
    u64(V.size());
    for (uint64_t X : V)
      u64(X);
  }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Reads what ByteWriter wrote. Every accessor returns false once the buffer
/// is exhausted or a length prefix is implausible.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : P(Data), End(Data + Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Buf)
      : ByteReader(Buf.data(), Buf.size()) {}

  bool u8(uint8_t &V);
  bool u32(uint32_t &V);
  bool u64(uint64_t &V);
  bool i32(int32_t &V);
  bool f64(double &V);
  bool str(std::string &S);
  bool vecU64(std::vector<uint64_t> &V);

  size_t remaining() const { return static_cast<size_t>(End - P); }
  bool atEnd() const { return P == End; }

private:
  const uint8_t *P;
  const uint8_t *End;
};

/// Serializes a finished run. Only exited runs should be stored; the codec
/// round-trips every statistic the pipeline and benches consume.
void writeRunResult(ByteWriter &W, const sim::RunResult &R);

/// Decodes a run payload; false on any truncation or implausible size.
bool readRunResult(ByteReader &R, sim::RunResult &Out);

} // namespace exec
} // namespace dlq

#endif // DLQ_EXEC_SERIALIZE_H
