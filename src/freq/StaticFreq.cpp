//===- freq/StaticFreq.cpp --------------------------------------------------===//

#include "freq/StaticFreq.h"

#include "absint/Absint.h"
#include "cfg/Cfg.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace dlq;
using namespace dlq::freq;
using namespace dlq::masm;

StaticFreqEstimate::StaticFreqEstimate(const Module &Mod,
                                       StaticFreqOptions Options)
    : M(Mod), Opts(Options) {
  computeBlockFrequencies();
  propagateCallGraph();
}

void StaticFreqEstimate::computeBlockFrequencies() {
  BlockRelFreq.resize(M.functions().size());
  InstrBlock.resize(M.functions().size());
  masm::Layout L(M);

  for (uint32_t FI = 0; FI != M.functions().size(); ++FI) {
    const Function &F = M.functions()[FI];
    if (F.empty())
      continue;
    cfg::Cfg G(F);
    cfg::DominatorTree DT(G);
    cfg::LoopInfo LI(G, DT);

    // Interval-proven trip counts (by loop index): counted loops with a
    // constant bound get their real weight instead of the blanket guess.
    std::map<uint32_t, uint64_t> Trips;
    if (Opts.UseTripCounts) {
      absint::Interp::Options IO;
      IO.ModLayout = &L;
      IO.Frame = M.typeInfo().lookupFunction(F.name());
      if (Opts.Ipa) {
        IO.Calls = Opts.Ipa->callModelFor(FI);
        IO.EntryState = Opts.Ipa->entryStateFor(FI);
      }
      absint::Interp AI(G, LI, IO);
      AI.run();
      Trips = AI.tripCounts();
    }

    InstrBlock[FI].resize(F.size());
    for (uint32_t Idx = 0; Idx != F.size(); ++Idx)
      InstrBlock[FI][Idx] = G.blockOf(Idx);

    uint32_t NumBlocks = static_cast<uint32_t>(G.numBlocks());
    std::vector<double> Acyclic(NumBlocks, 0.0);
    Acyclic[G.entry()] = 1.0;

    // Forward (non-back-edge) flow in RPO: every conditional successor is
    // assumed equally likely — Wu-Larus's uniform fallback.
    auto isBackEdge = [&](uint32_t From, uint32_t To) {
      return DT.dominates(To, From);
    };

    // Reverse postorder via iterative DFS.
    std::vector<uint32_t> Order;
    {
      std::vector<uint8_t> Seen(NumBlocks, 0);
      std::vector<std::pair<uint32_t, size_t>> Stack{{G.entry(), 0}};
      Seen[G.entry()] = 1;
      while (!Stack.empty()) {
        auto &[B, Next] = Stack.back();
        const auto &Succs = G.blocks()[B].Succs;
        if (Next < Succs.size()) {
          uint32_t S = Succs[Next++];
          if (!Seen[S]) {
            Seen[S] = 1;
            Stack.push_back({S, 0});
          }
          continue;
        }
        Order.push_back(B);
        Stack.pop_back();
      }
      std::reverse(Order.begin(), Order.end());
    }

    for (uint32_t B : Order) {
      double Out = Acyclic[B];
      if (Out == 0.0)
        continue;
      unsigned ForwardSuccs = 0;
      for (uint32_t S : G.blocks()[B].Succs)
        if (!isBackEdge(B, S))
          ++ForwardSuccs;
      if (ForwardSuccs == 0)
        continue;
      double Share = Out / ForwardSuccs;
      for (uint32_t S : G.blocks()[B].Succs)
        if (!isBackEdge(B, S))
          Acyclic[S] += Share;
    }

    BlockRelFreq[FI].resize(NumBlocks, 0.0);
    for (uint32_t B = 0; B != NumBlocks; ++B) {
      // Each containing loop multiplies the block's weight by its trip
      // count when proven, by LoopBase otherwise. Blocks of irreducible
      // cycles carry a conservative depth without a containing natural
      // loop; they keep the LoopBase guess per unaccounted level.
      double LoopBoost = 1.0;
      unsigned Containing = 0;
      for (uint32_t LIdx = 0; LIdx != LI.loops().size(); ++LIdx) {
        if (!LI.loops()[LIdx].contains(B))
          continue;
        ++Containing;
        auto It = Trips.find(LIdx);
        double W = It != Trips.end() ? static_cast<double>(It->second)
                                     : Opts.LoopBase;
        LoopBoost = std::min(LoopBoost * W, Opts.MaxFreq);
      }
      if (LI.depth(B) > Containing)
        LoopBoost = std::min(
            LoopBoost * std::pow(Opts.LoopBase, LI.depth(B) - Containing),
            Opts.MaxFreq);
      BlockRelFreq[FI][B] =
          std::min(Acyclic[B] * LoopBoost, Opts.MaxFreq);
    }
  }
}

void StaticFreqEstimate::propagateCallGraph() {
  size_t NumFuncs = M.functions().size();
  FuncFreq.assign(NumFuncs, 0.0);

  // Per (caller, callee): expected calls per invocation of the caller.
  std::vector<std::map<uint32_t, double>> CallWeight(NumFuncs);
  for (uint32_t FI = 0; FI != NumFuncs; ++FI) {
    const Function &F = M.functions()[FI];
    for (uint32_t Idx = 0; Idx != F.size(); ++Idx) {
      const Instr &I = F.instrs()[Idx];
      if (I.Op != Opcode::Jal)
        continue;
      uint32_t Callee = M.functionIndex(I.Sym);
      if (Callee == InvalidIndex)
        continue; // Runtime call.
      CallWeight[FI][Callee] += BlockRelFreq[FI][InstrBlock[FI][Idx]];
    }
  }

  // Seed main before the first round: every propagated weight derives from
  // it, so starting from all-zero just wasted a round (and used to be
  // patched up after the loop instead).
  uint32_t MainIdx = M.functionIndex("main");
  if (MainIdx != InvalidIndex)
    FuncFreq[MainIdx] = Opts.EntryFreq;

  for (unsigned Round = 0; Round != Opts.Rounds; ++Round) {
    std::vector<double> Next(NumFuncs, 0.0);
    if (MainIdx != InvalidIndex)
      Next[MainIdx] = Opts.EntryFreq;
    for (uint32_t FI = 0; FI != NumFuncs; ++FI) {
      if (FuncFreq[FI] == 0.0)
        continue;
      for (const auto &[Callee, Weight] : CallWeight[FI])
        Next[Callee] = std::min(Next[Callee] + FuncFreq[FI] * Weight,
                                Opts.MaxFreq);
    }
    if (MainIdx != InvalidIndex && Next[MainIdx] < Opts.EntryFreq)
      Next[MainIdx] = Opts.EntryFreq;
    // Tolerant convergence test: exact vector equality can oscillate forever
    // in the low bits on recursive call graphs, which makes the result
    // depend on the Rounds cap instead of on the fixpoint.
    bool Converged = true;
    for (size_t FI = 0; FI != NumFuncs; ++FI) {
      double Scale = std::max(std::abs(FuncFreq[FI]), std::abs(Next[FI]));
      if (std::abs(Next[FI] - FuncFreq[FI]) > Opts.ConvergeEps * Scale) {
        Converged = false;
        break;
      }
    }
    FuncFreq = std::move(Next);
    if (Converged)
      break;
  }
}

double StaticFreqEstimate::instrFreq(InstrRef Ref) const {
  if (Ref.FuncIdx >= FuncFreq.size())
    return 0.0;
  if (Ref.InstrIdx >= InstrBlock[Ref.FuncIdx].size())
    return 0.0;
  uint32_t B = InstrBlock[Ref.FuncIdx][Ref.InstrIdx];
  return std::min(FuncFreq[Ref.FuncIdx] * BlockRelFreq[Ref.FuncIdx][B],
                  Opts.MaxFreq);
}

classify::ExecCountMap StaticFreqEstimate::loadExecCounts() const {
  classify::ExecCountMap Out;
  for (uint32_t FI = 0; FI != M.functions().size(); ++FI) {
    const Function &F = M.functions()[FI];
    for (uint32_t Idx = 0; Idx != F.size(); ++Idx) {
      if (!isLoad(F.instrs()[Idx].Op))
        continue;
      InstrRef Ref{FI, Idx};
      double Freq = instrFreq(Ref);
      Out[Ref] = Freq >= 1e18 ? ~0ull : static_cast<uint64_t>(Freq);
    }
  }
  return Out;
}
