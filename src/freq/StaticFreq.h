//===- freq/StaticFreq.h - static execution-frequency estimation ----------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The H5 criterion normally uses basic-block profiling only to find
/// *infrequently executed* loads. The paper points out (Section 5.2) that
/// "it is entirely possible to replace profiling with static heuristic
/// approximations [Wu-Larus, Wong] in identifying infrequently executed
/// load instructions if it is desired to run the heuristic without basic
/// block profiling". This module implements that replacement:
///
///  * intraprocedural: a block's relative frequency is the product of its
///    containing loops' trip weights, attenuated through branch fan-out
///    (each conditional successor is assumed equally likely, the Wu-Larus
///    fallback prediction). A loop's weight is its interval-proven trip
///    count when the abstract interpreter (absint) can bound it from the
///    exit branches, and the blanket LoopBase multiplier otherwise;
///  * interprocedural: call-site frequencies propagate through the call
///    graph from main with bounded iteration (recursion is damped).
///
/// The result is an estimated ExecCountMap that plugs into the heuristic's
/// frequency classes exactly where a real profile would.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_FREQ_STATICFREQ_H
#define DLQ_FREQ_STATICFREQ_H

#include "classify/Delinquency.h"
#include "masm/Module.h"

#include <cstdint>
#include <map>
#include <vector>

namespace dlq {
namespace freq {

/// Estimator knobs.
struct StaticFreqOptions {
  /// Assumed trip weight per loop-nesting level (Wu-Larus-style loop
  /// multiplier). The default deliberately clears the heuristic's Seldom
  /// threshold: a static estimator cannot know trip counts, so anything
  /// inside a loop is presumed frequent and only straight-line or
  /// unreachable code is classified rare/seldom.
  double LoopBase = 1000.0;
  /// Assumed invocations of main.
  double EntryFreq = 1.0;
  /// Call-graph propagation rounds (bounds recursion).
  unsigned Rounds = 8;
  /// Ceiling preventing overflow on recursive/deep graphs.
  double MaxFreq = 1e15;
  /// Relative tolerance for the propagation fixpoint test. Exact equality
  /// oscillates in the low mantissa bits on recursive graphs; anything
  /// within this relative distance counts as converged.
  double ConvergeEps = 1e-9;
  /// Replace LoopBase with the abstract interpreter's interval-proven trip
  /// count for loops where one exists (constant-bound counted loops).
  bool UseTripCounts = true;
  /// Optional interprocedural summaries (ipa::ModuleSummaries): trip
  /// counts then survive call havoc and argument-driven bounds resolve,
  /// improving the per-loop weights. Null keeps the intraprocedural
  /// estimate.
  const absint::InterprocInfo *Ipa = nullptr;

  StaticFreqOptions() {}
};

/// Whole-module static frequency estimate.
class StaticFreqEstimate {
public:
  StaticFreqEstimate(const masm::Module &M,
                     StaticFreqOptions Options = StaticFreqOptions());

  /// Estimated invocation count of function ordinal \p FuncIdx.
  double functionFreq(uint32_t FuncIdx) const { return FuncFreq[FuncIdx]; }

  /// Estimated execution count of one instruction.
  double instrFreq(masm::InstrRef Ref) const;

  /// Estimated execution counts for every load, rounded to integers — the
  /// drop-in substitute for a basic-block profile in the heuristic's H5
  /// classes.
  classify::ExecCountMap loadExecCounts() const;

private:
  const masm::Module &M;
  StaticFreqOptions Opts;
  /// Per function: relative block frequency (entry block = 1).
  std::vector<std::vector<double>> BlockRelFreq;
  /// Per function: block id per instruction index.
  std::vector<std::vector<uint32_t>> InstrBlock;
  std::vector<double> FuncFreq;

  void computeBlockFrequencies();
  void propagateCallGraph();
};

} // namespace freq
} // namespace dlq

#endif // DLQ_FREQ_STATICFREQ_H
