//===- fuzz/Fuzzer.cpp -----------------------------------------------------==//

#include "fuzz/Fuzzer.h"

#include "exec/Hash.h"
#include "exec/JobPool.h"
#include "support/Format.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

using namespace dlq;
using namespace dlq::fuzz;

uint64_t fuzz::programSeed(uint64_t CampaignSeed, uint64_t Index) {
  return exec::Fnv1a().u64(CampaignSeed).u64(Index).value();
}

namespace {

size_t countLines(const std::string &S) {
  return static_cast<size_t>(std::count(S.begin(), S.end(), '\n'));
}

/// What one worker reports back for one program.
struct ProgramOutcome {
  bool Clean = true;
  bool FuelExhausted = false;
  uint64_t Instrs = 0;
  OracleId Id = OracleId::Compile;
  std::string Detail;
  std::string Program; ///< Minimized failing source; empty when clean.
  size_t OriginalLines = 0;
  size_t MinimizedLines = 0;
};

ProgramOutcome checkOne(uint64_t Seed, const FuzzOptions &Opts) {
  ProgramOutcome Out;
  std::string Source = generateProgram(Seed, Opts.Gen);
  OracleReport Rep = runOracles(Source, Opts.Oracle);
  Out.FuelExhausted = Rep.FuelExhausted;
  Out.Instrs = Rep.InstrsExecuted;
  if (Rep.clean())
    return Out;

  Out.Clean = false;
  Out.Id = Rep.Findings.front().Id;
  Out.Detail = Rep.Findings.front().Detail;
  Out.OriginalLines = countLines(Source);
  if (Opts.Minimize) {
    MinimizeOptions MO = Opts.Min;
    MO.Oracle = Opts.Oracle;
    Out.Program = minimizeProgram(Source, Out.Id, MO).Program;
  } else {
    Out.Program = Source;
  }
  Out.MinimizedLines = countLines(Out.Program);
  return Out;
}

void writeRepro(FuzzFinding &F, const std::string &OutDir) {
  if (OutDir.empty())
    return;
  std::error_code Ec;
  std::filesystem::create_directories(OutDir, Ec);
  std::string Path =
      OutDir + "/" + formatString("repro-%016llx-%s.mc",
                                  static_cast<unsigned long long>(F.Seed),
                                  std::string(oracleName(F.Oracle)).c_str());
  std::ofstream Os(Path);
  if (!Os)
    return;
  Os << "// fuzz reproducer: seed=" << F.Seed << " index=" << F.Index
     << " oracle=" << oracleName(F.Oracle) << "\n"
     << "// " << F.Detail << "\n"
     << F.Program;
  F.ReproPath = Path;
}

} // namespace

FuzzResult fuzz::runCampaign(const FuzzOptions &Opts) {
  FuzzResult Res;
  exec::JobPool Pool(Opts.Jobs);

  // Batches keep peak memory flat and give the progress callback a natural
  // cadence; results stay in campaign-index order because JobPool::map is
  // order-preserving and batches run in order.
  const uint64_t Batch = std::max<uint64_t>(1, std::min<uint64_t>(
                                                   256, Opts.Programs / 4 + 1));
  for (uint64_t Base = 0; Base < Opts.Programs; Base += Batch) {
    uint64_t N = std::min(Batch, Opts.Programs - Base);
    std::vector<ProgramOutcome> Outcomes =
        Pool.map<ProgramOutcome>(static_cast<size_t>(N), [&](size_t I) {
          return checkOne(programSeed(Opts.Seed, Base + I), Opts);
        });
    for (uint64_t I = 0; I != N; ++I) {
      ProgramOutcome &O = Outcomes[static_cast<size_t>(I)];
      ++Res.Stats.Programs;
      Res.Stats.Clean += O.Clean;
      Res.Stats.FuelExhausted += O.FuelExhausted;
      Res.Stats.InstrsExecuted += O.Instrs;
      if (O.Clean)
        continue;
      FuzzFinding F;
      F.Seed = programSeed(Opts.Seed, Base + I);
      F.Index = Base + I;
      F.Oracle = O.Id;
      F.Detail = std::move(O.Detail);
      F.Program = std::move(O.Program);
      F.OriginalLines = O.OriginalLines;
      F.MinimizedLines = O.MinimizedLines;
      writeRepro(F, Opts.OutDir);
      Res.Findings.push_back(std::move(F));
    }
    if (Opts.OnProgress)
      Opts.OnProgress(Base + N, Opts.Programs,
                      static_cast<uint64_t>(Res.Findings.size()));
  }
  return Res;
}
