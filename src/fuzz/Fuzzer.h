//===- fuzz/Fuzzer.h - Differential fuzzing campaigns -----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign driver: generates `Programs` MinC programs from per-index
/// seeds derived as FNV-1a(CampaignSeed, Index) — so campaigns are
/// reproducible, any single program is re-derivable from its index, and
/// neighbouring indices are uncorrelated — runs the oracle battery over the
/// PR-1 JobPool, auto-minimizes each failure, and dumps reproducers as
/// `repro-<seed>-<oracle>.mc` files.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_FUZZ_FUZZER_H
#define DLQ_FUZZ_FUZZER_H

#include "fuzz/Generator.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Oracles.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dlq {
namespace fuzz {

/// Campaign configuration.
struct FuzzOptions {
  uint64_t Programs = 1000;
  uint64_t Seed = 1;      ///< Campaign seed; per-program seeds derive from it.
  unsigned Jobs = 0;      ///< JobPool workers; 0 = hardware concurrency.
  std::string OutDir;     ///< Reproducer dump directory; empty = no dump.
  bool Minimize = true;   ///< Delta-reduce failures before reporting.
  GeneratorOptions Gen;
  OracleOptions Oracle;
  MinimizeOptions Min;
  /// Progress callback, invoked from the driver thread after each batch.
  std::function<void(uint64_t Done, uint64_t Total, uint64_t Findings)>
      OnProgress;

  FuzzOptions() {}
};

/// One failing program, minimized and (optionally) dumped to disk.
struct FuzzFinding {
  uint64_t Seed = 0;       ///< The per-program seed (not the campaign seed).
  uint64_t Index = 0;      ///< Campaign index the seed derives from.
  OracleId Oracle = OracleId::Compile;
  std::string Detail;      ///< First divergence description.
  std::string Program;     ///< Minimized source (original if !Minimize).
  size_t OriginalLines = 0;
  size_t MinimizedLines = 0;
  std::string ReproPath;   ///< Where the reproducer was written, if anywhere.
};

/// Campaign totals.
struct FuzzStats {
  uint64_t Programs = 0;
  uint64_t Clean = 0;
  uint64_t FuelExhausted = 0; ///< Programs whose oracle-1 compare was relaxed.
  uint64_t InstrsExecuted = 0; ///< Sum over -O0 reference runs.
};

/// Campaign outcome.
struct FuzzResult {
  FuzzStats Stats;
  std::vector<FuzzFinding> Findings; ///< In campaign-index order.

  bool clean() const { return Findings.empty(); }
};

/// Derives the per-program seed for campaign index \p Index.
uint64_t programSeed(uint64_t CampaignSeed, uint64_t Index);

/// Runs a campaign.
FuzzResult runCampaign(const FuzzOptions &Opts);

} // namespace fuzz
} // namespace dlq

#endif // DLQ_FUZZ_FUZZER_H
