//===- fuzz/Generator.cpp --------------------------------------------------==//

#include "fuzz/Generator.h"

#include "support/Format.h"
#include "support/Rng.h"

#include <algorithm>
#include <vector>

using namespace dlq;
using namespace dlq::fuzz;

namespace {

/// One struct type: every struct carries `val` (int) and `next`
/// (self-pointer, chain spine); extras are randomized. `link` (pointer to
/// another struct, possibly null at run time) appears on some structs and is
/// always null-guarded at dereference sites.
struct StructInfo {
  bool HasLink = false;
  unsigned LinkTo = 0;   ///< Struct index `link` points at.
  unsigned ArrLen = 0;   ///< >0: an `int tab[ArrLen]` field.
  bool HasChar = false;  ///< A `char tag` field.
};

/// A global variable the expression generator may read.
struct GlobalInfo {
  enum class Kind { Int, Char, IntArray, StructPtr, StructPtrArray, Struct };
  Kind K;
  unsigned Idx;      ///< Name ordinal within its kind.
  unsigned Len = 0;  ///< Array length.
  unsigned SI = 0;   ///< Struct index for pointer/struct kinds.
};

class ProgramBuilder {
public:
  ProgramBuilder(uint64_t Seed, const GeneratorOptions &Opts)
      : R(Seed ^ 0xD1F5A2C96B7E4830ull), Opts(Opts) {}

  std::string build();

private:
  Rng R;
  GeneratorOptions Opts;
  std::string Out;
  unsigned Indent = 0;

  std::vector<StructInfo> Structs;
  std::vector<GlobalInfo> Globals;

  /// Per-function scope.
  std::vector<std::string> IntVars;    ///< Initialized int locals/params.
  std::vector<std::string> NonNeg;     ///< Provably non-negative int vars.
  std::vector<std::string> Protected_; ///< Loop counters: not assignable.
  struct LocalArray {
    std::string Name;
    unsigned Len;
  };
  std::vector<LocalArray> LocalArrays;
  unsigned NextCounter = 0;
  unsigned LoopDepth = 0;
  bool InMain = false;

  //===--- emission -------------------------------------------------------===//
  void line(const std::string &S) {
    Out.append(Indent * 2, ' ');
    Out += S;
    Out += '\n';
  }
  unsigned pick(unsigned Bound) { return static_cast<unsigned>(R.nextBelow(Bound)); }
  bool chance(unsigned Pct) { return R.nextBelow(100) < Pct; }

  //===--- expressions ----------------------------------------------------===//
  std::string intLit();
  std::string indexExpr(unsigned Len);
  std::string intAtom();
  std::string intExpr(unsigned Depth);
  std::string condExpr(unsigned Depth);

  //===--- statements -----------------------------------------------------===//
  void genStmt(unsigned BlockDepth);
  void genBlock(unsigned BlockDepth, unsigned Stmts);
  void genForLoop(unsigned BlockDepth);
  void genWhileLoop(unsigned BlockDepth);
  void genIf(unsigned BlockDepth);
  void genChainBuild(unsigned SI, const std::string &Head);
  void genChainWalk(unsigned SI, const std::string &Head);
  void genAssign();

  //===--- program sections -----------------------------------------------===//
  void emitStructs();
  void emitGlobals();
  void emitHelpers();
  void emitWalkers();
  void emitMain();
  void beginFunctionScope();

  /// Deepest pointer-arg walker emitted by emitWalkers, called from main;
  /// empty when Opts.InterprocDepth is 0.
  std::string TopWalker;
  unsigned WalkerSI = 0;

  std::string structName(unsigned SI) {
    return formatString("S%u", SI);
  }
  const GlobalInfo *findGlobal(GlobalInfo::Kind K, unsigned Nth = 0) const {
    unsigned Seen = 0;
    for (const GlobalInfo &G : Globals)
      if (G.K == K && Seen++ == Nth)
        return &G;
    return nullptr;
  }
  unsigned countGlobals(GlobalInfo::Kind K) const {
    unsigned N = 0;
    for (const GlobalInfo &G : Globals)
      N += G.K == K;
    return N;
  }
  std::string globalName(const GlobalInfo &G) const {
    switch (G.K) {
    case GlobalInfo::Kind::Int:
      return formatString("g%u", G.Idx);
    case GlobalInfo::Kind::Char:
      return formatString("gc%u", G.Idx);
    case GlobalInfo::Kind::IntArray:
      return formatString("ga%u", G.Idx);
    case GlobalInfo::Kind::StructPtr:
      return formatString("gp%u", G.Idx);
    case GlobalInfo::Kind::StructPtrArray:
      return formatString("gpa%u", G.Idx);
    case GlobalInfo::Kind::Struct:
      return formatString("gs%u", G.Idx);
    }
    return "g0";
  }

  /// Names of helpers already emitted, with their parameter counts; callable
  /// from later functions. Cost class limits call sites inside deep loops.
  struct HelperInfo {
    std::string Name;
    unsigned Params;
    bool Heavy; ///< Contains loops: call only at shallow loop depth.
  };
  std::vector<HelperInfo> Helpers;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

std::string ProgramBuilder::intLit() {
  switch (pick(8)) {
  case 0:
    return formatString("%d", -static_cast<int>(pick(100)) - 1);
  case 1: // Large magnitudes probe constant-folder overflow handling.
    return "2147483647";
  case 2:
    return formatString("%u", 100000 + pick(4000000));
  default:
    return formatString("%u", pick(64));
  }
}

/// An expression provably in [0, Len).
std::string ProgramBuilder::indexExpr(unsigned Len) {
  // Non-negative % positive is in range; loop counters bounded below Len
  // may be used raw.
  for (const std::string &V : NonNeg)
    if (chance(25))
      return formatString("(%s %% %u)", V.c_str(), Len);
  if (chance(35))
    return formatString("(rand() %% %u)", Len);
  if (!NonNeg.empty() && chance(50)) {
    const std::string &V = NonNeg[pick(static_cast<unsigned>(NonNeg.size()))];
    return formatString("((%s + %u) %% %u)", V.c_str(), pick(16), Len);
  }
  return formatString("%u", pick(Len));
}

/// A leaf (or near-leaf) int-valued expression.
std::string ProgramBuilder::intAtom() {
  for (int Tries = 0; Tries != 4; ++Tries) {
    switch (pick(7)) {
    case 0:
      return intLit();
    case 1:
      if (!IntVars.empty())
        return IntVars[pick(static_cast<unsigned>(IntVars.size()))];
      break;
    case 2: {
      if (const GlobalInfo *G = findGlobal(GlobalInfo::Kind::Int,
                                           pick(std::max(1u, countGlobals(
                                                     GlobalInfo::Kind::Int)))))
        return globalName(*G);
      break;
    }
    case 3: {
      unsigned N = countGlobals(GlobalInfo::Kind::IntArray);
      if (N != 0) {
        const GlobalInfo *G = findGlobal(GlobalInfo::Kind::IntArray, pick(N));
        return formatString("%s[%s]", globalName(*G).c_str(),
                            indexExpr(G->Len).c_str());
      }
      break;
    }
    case 4:
      if (!LocalArrays.empty()) {
        const LocalArray &A =
            LocalArrays[pick(static_cast<unsigned>(LocalArrays.size()))];
        return formatString("%s[%s]", A.Name.c_str(),
                            indexExpr(A.Len).c_str());
      }
      break;
    case 5: {
      unsigned N = countGlobals(GlobalInfo::Kind::Struct);
      if (N != 0) {
        const GlobalInfo *G = findGlobal(GlobalInfo::Kind::Struct, pick(N));
        const StructInfo &S = Structs[G->SI];
        if (S.ArrLen && chance(40))
          return formatString("%s.tab[%s]", globalName(*G).c_str(),
                              indexExpr(S.ArrLen).c_str());
        return formatString("%s.val", globalName(*G).c_str());
      }
      break;
    }
    case 6:
      if (const GlobalInfo *G = findGlobal(GlobalInfo::Kind::Char))
        return globalName(*G);
      break;
    }
  }
  return intLit();
}

std::string ProgramBuilder::intExpr(unsigned Depth) {
  if (Depth == 0 || chance(30))
    return intAtom();
  switch (pick(12)) {
  case 0: // Safe division: nonzero literal denominator (negative allowed).
    return formatString("(%s / %d)", intExpr(Depth - 1).c_str(),
                        chance(15) ? -(1 + static_cast<int>(pick(7)))
                                   : 1 + static_cast<int>(pick(15)));
  case 1: // Safe remainder through a masked, offset denominator.
    return formatString("(%s %% ((%s & 15) + 1))", intExpr(Depth - 1).c_str(),
                        intExpr(Depth - 1).c_str());
  case 2:
    return formatString("(%s << %u)", intExpr(Depth - 1).c_str(), pick(8));
  case 3:
    return formatString("(%s >> %u)", intExpr(Depth - 1).c_str(), pick(8));
  case 4:
    return formatString("(-%s)", intAtom().c_str());
  case 5:
    return formatString("(~%s)", intAtom().c_str());
  case 6:
    return formatString("(%s ? %s : %s)", condExpr(Depth - 1).c_str(),
                        intExpr(Depth - 1).c_str(),
                        intExpr(Depth - 1).c_str());
  case 7: {
    if (!Helpers.empty() && LoopDepth <= 1) {
      const HelperInfo &H = Helpers[pick(static_cast<unsigned>(Helpers.size()))];
      if (!H.Heavy || LoopDepth == 0) {
        std::string Call = H.Name + "(";
        for (unsigned I = 0; I != H.Params; ++I) {
          if (I)
            Call += ", ";
          Call += intExpr(std::min(Depth - 1, 1u));
        }
        Call += ")";
        return Call;
      }
    }
    return intAtom();
  }
  case 8:
    return formatString("(%s)", condExpr(Depth - 1).c_str());
  default: {
    static const char *Ops[] = {"+", "-", "*", "&", "|", "^"};
    return formatString("(%s %s %s)", intExpr(Depth - 1).c_str(),
                        Ops[pick(6)], intExpr(Depth - 1).c_str());
  }
  }
}

/// A boolean-ish expression for conditions.
std::string ProgramBuilder::condExpr(unsigned Depth) {
  static const char *Cmp[] = {"==", "!=", "<", "<=", ">", ">="};
  std::string Base = formatString("%s %s %s", intExpr(Depth).c_str(),
                                  Cmp[pick(6)], intExpr(Depth).c_str());
  if (Depth != 0 && chance(25))
    return formatString("(%s) %s (%s)", Base.c_str(),
                        chance(50) ? "&&" : "||", condExpr(Depth - 1).c_str());
  if (chance(10))
    return formatString("!(%s)", Base.c_str());
  return Base;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void ProgramBuilder::genAssign() {
  // Pick a writable target: int local, int global, array slot, struct field.
  for (int Tries = 0; Tries != 4; ++Tries) {
    switch (pick(6)) {
    case 0: {
      std::vector<std::string> Writable;
      for (const std::string &V : IntVars)
        if (std::find(Protected_.begin(), Protected_.end(), V) ==
            Protected_.end())
          Writable.push_back(V);
      if (!Writable.empty()) {
        const std::string &V =
            Writable[pick(static_cast<unsigned>(Writable.size()))];
        line(formatString("%s = %s;", V.c_str(),
                          intExpr(Opts.MaxExprDepth).c_str()));
        return;
      }
      break;
    }
    case 1: {
      unsigned N = countGlobals(GlobalInfo::Kind::Int);
      if (N != 0) {
        const GlobalInfo *G = findGlobal(GlobalInfo::Kind::Int, pick(N));
        line(formatString("%s = %s;", globalName(*G).c_str(),
                          intExpr(Opts.MaxExprDepth).c_str()));
        return;
      }
      break;
    }
    case 2: {
      unsigned N = countGlobals(GlobalInfo::Kind::IntArray);
      if (N != 0) {
        const GlobalInfo *G = findGlobal(GlobalInfo::Kind::IntArray, pick(N));
        line(formatString("%s[%s] = %s;", globalName(*G).c_str(),
                          indexExpr(G->Len).c_str(),
                          intExpr(Opts.MaxExprDepth - 1).c_str()));
        return;
      }
      break;
    }
    case 3:
      if (!LocalArrays.empty()) {
        const LocalArray &A =
            LocalArrays[pick(static_cast<unsigned>(LocalArrays.size()))];
        line(formatString("%s[%s] = %s;", A.Name.c_str(),
                          indexExpr(A.Len).c_str(),
                          intExpr(Opts.MaxExprDepth - 1).c_str()));
        return;
      }
      break;
    case 4: {
      unsigned N = countGlobals(GlobalInfo::Kind::Struct);
      if (N != 0) {
        const GlobalInfo *G = findGlobal(GlobalInfo::Kind::Struct, pick(N));
        const StructInfo &S = Structs[G->SI];
        if (S.ArrLen && chance(40)) {
          line(formatString("%s.tab[%s] = %s;", globalName(*G).c_str(),
                            indexExpr(S.ArrLen).c_str(),
                            intExpr(2).c_str()));
        } else if (S.HasChar && chance(30)) {
          line(formatString("%s.tag = %s;", globalName(*G).c_str(),
                            intExpr(1).c_str()));
        } else {
          line(formatString("%s.val = %s;", globalName(*G).c_str(),
                            intExpr(2).c_str()));
        }
        return;
      }
      break;
    }
    case 5: {
      if (const GlobalInfo *G = findGlobal(GlobalInfo::Kind::Char)) {
        line(formatString("%s = %s;", globalName(*G).c_str(),
                          intExpr(1).c_str()));
        return;
      }
      break;
    }
    }
  }
  line(formatString("sum = sum + %s;", intAtom().c_str()));
}

void ProgramBuilder::genForLoop(unsigned BlockDepth) {
  std::string C = formatString("i%u", NextCounter++);
  unsigned Bound = 2 + pick(Opts.MaxLoopBound - 1);
  line(formatString("for (%s = 0; %s < %u; %s = %s + 1) {", C.c_str(),
                    C.c_str(), Bound, C.c_str(), C.c_str()));
  ++Indent;
  ++LoopDepth;
  IntVars.push_back(C);
  NonNeg.push_back(C);
  Protected_.push_back(C);
  genBlock(BlockDepth, 1 + pick(Opts.MaxStmtsPerBlock - 1));
  Protected_.pop_back();
  NonNeg.pop_back();
  IntVars.pop_back();
  --LoopDepth;
  --NextCounter; // Sibling loops reuse the counter slot.
  --Indent;
  line("}");
}

void ProgramBuilder::genWhileLoop(unsigned BlockDepth) {
  std::string C = formatString("i%u", NextCounter++);
  unsigned Bound = 2 + pick(Opts.MaxLoopBound - 1);
  line(formatString("%s = %u;", C.c_str(), Bound));
  line(formatString("while (%s > 0) {", C.c_str()));
  ++Indent;
  ++LoopDepth;
  IntVars.push_back(C);
  NonNeg.push_back(C);
  Protected_.push_back(C);
  // Decrement first so a generated `continue` in the body cannot skip it and
  // spin the loop forever.
  line(formatString("%s = %s - 1;", C.c_str(), C.c_str()));
  genBlock(BlockDepth, 1 + pick(Opts.MaxStmtsPerBlock - 1));
  Protected_.pop_back();
  NonNeg.pop_back();
  IntVars.pop_back();
  --LoopDepth;
  --NextCounter;
  --Indent;
  line("}");
}

void ProgramBuilder::genIf(unsigned BlockDepth) {
  line(formatString("if (%s) {", condExpr(2).c_str()));
  ++Indent;
  genBlock(BlockDepth, 1 + pick(3));
  --Indent;
  if (chance(40)) {
    line("} else {");
    ++Indent;
    genBlock(BlockDepth, 1 + pick(3));
    --Indent;
  }
  line("}");
}

/// Builds a chain of SI nodes into global pointer \p Head — the LiLike /
/// McfLike allocation idiom (interleaved heap order, H3/H4 fodder).
void ProgramBuilder::genChainBuild(unsigned SI, const std::string &Head) {
  const StructInfo &S = Structs[SI];
  std::string C = formatString("i%u", NextCounter++);
  unsigned Len = 2 + pick(Opts.MaxListLen - 1);
  std::string SN = structName(SI);
  line(formatString("%s = 0;", Head.c_str()));
  line(formatString("for (%s = 0; %s < %u; %s = %s + 1) {", C.c_str(),
                    C.c_str(), Len, C.c_str(), C.c_str()));
  ++Indent;
  IntVars.push_back(C);
  NonNeg.push_back(C);
  Protected_.push_back(C);
  line(formatString("tmp%u = (struct %s*)malloc(sizeof(struct %s));", SI,
                    SN.c_str(), SN.c_str()));
  line(formatString("tmp%u->val = %s;", SI, intExpr(2).c_str()));
  if (S.ArrLen)
    line(formatString("tmp%u->tab[%s] = %s;", SI,
                      indexExpr(S.ArrLen).c_str(), intExpr(1).c_str()));
  if (S.HasChar)
    line(formatString("tmp%u->tag = %s;", SI, intExpr(1).c_str()));
  if (S.HasLink) {
    // Cross-link into another chain head; may be null, walkers guard it.
    unsigned N = countGlobals(GlobalInfo::Kind::StructPtr);
    const GlobalInfo *G = nullptr;
    for (unsigned I = 0; I != N; ++I) {
      const GlobalInfo *Cand = findGlobal(GlobalInfo::Kind::StructPtr, I);
      if (Cand->SI == S.LinkTo) {
        G = Cand;
        break;
      }
    }
    line(formatString("tmp%u->link = %s;", SI,
                      G ? globalName(*G).c_str() : "0"));
  }
  line(formatString("tmp%u->next = %s;", SI, Head.c_str()));
  line(formatString("%s = tmp%u;", Head.c_str(), SI));
  Protected_.pop_back();
  NonNeg.pop_back();
  IntVars.pop_back();
  --NextCounter;
  --Indent;
  line("}");
}

/// Walks the chain at \p Head accumulating into `sum` — the paper's
/// pointer-chasing load pattern (recurrence + deref depth).
void ProgramBuilder::genChainWalk(unsigned SI, const std::string &Head) {
  const StructInfo &S = Structs[SI];
  std::string SN = structName(SI);
  line(formatString("cur%u = %s;", SI, Head.c_str()));
  line(formatString("while (cur%u != 0) {", SI));
  ++Indent;
  line(formatString("sum = sum + cur%u->val;", SI));
  if (S.ArrLen && chance(60))
    line(formatString("sum = sum + cur%u->tab[%s];", SI,
                      indexExpr(S.ArrLen).c_str()));
  if (S.HasChar && chance(40))
    line(formatString("sum = sum + cur%u->tag;", SI));
  if (S.HasLink && chance(70))
    line(formatString("if (cur%u->link != 0) { sum = sum + cur%u->link->val; }",
                      SI, SI));
  if (chance(25))
    line(formatString("if (%s) { sum = sum + 1; }", condExpr(1).c_str()));
  line(formatString("cur%u = cur%u->next;", SI, SI));
  --Indent;
  line("}");
}

void ProgramBuilder::genStmt(unsigned BlockDepth) {
  unsigned Roll = pick(100);
  if (Roll < 8 && BlockDepth < Opts.MaxBlockDepth) {
    genForLoop(BlockDepth + 1);
    return;
  }
  if (Roll < 12 && BlockDepth < Opts.MaxBlockDepth) {
    genWhileLoop(BlockDepth + 1);
    return;
  }
  if (Roll < 28 && BlockDepth < Opts.MaxBlockDepth) {
    genIf(BlockDepth + 1);
    return;
  }
  if (Roll < 33) {
    line(formatString("print_int(%s);", intExpr(2).c_str()));
    return;
  }
  if (Roll < 35) {
    line(formatString("print_char(65 + (%s & 25));", intAtom().c_str()));
    return;
  }
  if (Roll < 38 && LoopDepth != 0 && chance(50)) {
    line(chance(50) ? "break;" : "continue;");
    return;
  }
  genAssign();
}

void ProgramBuilder::genBlock(unsigned BlockDepth, unsigned Stmts) {
  for (unsigned I = 0; I != Stmts; ++I)
    genStmt(BlockDepth);
}

//===----------------------------------------------------------------------===//
// Program sections
//===----------------------------------------------------------------------===//

void ProgramBuilder::emitStructs() {
  unsigned N = 1 + pick(Opts.MaxStructs);
  for (unsigned I = 0; I != N; ++I) {
    StructInfo S;
    S.HasLink = N > 1 && chance(50);
    if (S.HasLink)
      S.LinkTo = pick(N);
    if (chance(40))
      S.ArrLen = 2 + pick(6);
    S.HasChar = chance(30);
    Structs.push_back(S);
  }
  for (unsigned I = 0; I != N; ++I) {
    const StructInfo &S = Structs[I];
    std::string Def = formatString("struct S%u { int val;", I);
    if (S.ArrLen)
      Def += formatString(" int tab[%u];", S.ArrLen);
    if (S.HasChar)
      Def += " char tag;";
    if (S.HasLink)
      Def += formatString(" struct S%u *link;", S.LinkTo);
    Def += formatString(" struct S%u *next; };", I);
    line(Def);
  }
  line("");
}

void ProgramBuilder::emitGlobals() {
  unsigned Ints = 1 + pick(Opts.MaxGlobals);
  for (unsigned I = 0; I != Ints; ++I) {
    GlobalInfo G{GlobalInfo::Kind::Int, I, 0, 0};
    Globals.push_back(G);
    if (chance(40)) // Constant-expression initializers exercise evalConst.
      line(formatString("int g%u = %s;", I,
                        chance(50)
                            ? formatString("(%d %s %u)",
                                           static_cast<int>(pick(200)) - 100,
                                           chance(50) ? "<<" : ">>", pick(6))
                                  .c_str()
                            : formatString("%d",
                                           static_cast<int>(pick(2000)) - 1000)
                                  .c_str()));
    else
      line(formatString("int g%u;", I));
  }
  if (chance(50)) {
    Globals.push_back(GlobalInfo{GlobalInfo::Kind::Char, 0, 0, 0});
    line("char gc0;");
  }
  unsigned Arrays = 1 + pick(3);
  for (unsigned I = 0; I != Arrays; ++I) {
    unsigned Len = 2 + pick(Opts.MaxArrayLen - 1);
    Globals.push_back(GlobalInfo{GlobalInfo::Kind::IntArray, I, Len, 0});
    line(formatString("int ga%u[%u];", I, Len));
  }
  // One chain head per struct; occasionally a head table too.
  for (unsigned SI = 0; SI != Structs.size(); ++SI) {
    Globals.push_back(GlobalInfo{GlobalInfo::Kind::StructPtr,
                                 static_cast<unsigned>(SI), 0, SI});
    line(formatString("struct S%u *gp%u;", SI, SI));
  }
  if (chance(40)) {
    unsigned SI = pick(static_cast<unsigned>(Structs.size()));
    unsigned Len = 2 + pick(6);
    Globals.push_back(GlobalInfo{GlobalInfo::Kind::StructPtrArray, 0, Len, SI});
    line(formatString("struct S%u *gpa0[%u];", SI, Len));
  }
  if (chance(50)) {
    unsigned SI = pick(static_cast<unsigned>(Structs.size()));
    Globals.push_back(GlobalInfo{GlobalInfo::Kind::Struct, 0, 0, SI});
    line(formatString("struct S%u gs0;", SI));
  }
  line("");
}

void ProgramBuilder::beginFunctionScope() {
  IntVars.clear();
  NonNeg.clear();
  Protected_.clear();
  LocalArrays.clear();
  NextCounter = 0;
  LoopDepth = 0;
}

void ProgramBuilder::emitHelpers() {
  unsigned N = pick(Opts.MaxHelpers + 1);
  for (unsigned H = 0; H != N; ++H) {
    beginFunctionScope();
    unsigned Kind = pick(3);
    std::string Name = formatString("helper%u", H);
    if (Kind == 0) {
      // Self-recursive with a structural depth guard; the clamp bounds the
      // recursion depth whatever argument a call site manufactures.
      line(formatString("int %s(int n, int acc) {", Name.c_str()));
      ++Indent;
      line(formatString("if (n > %u) { n = %u; }", 8 + pick(24), 8 + pick(24)));
      line(formatString("if (n <= 0) { return acc + %u; }", pick(16)));
      IntVars.push_back("n");
      IntVars.push_back("acc");
      line(formatString("return %s(n - 1, acc + %s);", Name.c_str(),
                        intExpr(2).c_str()));
      --Indent;
      line("}");
      Helpers.push_back(HelperInfo{Name, 2, false});
    } else if (Kind == 1) {
      // Pure-ish arithmetic over params and globals.
      unsigned Params = 1 + pick(3);
      std::string Sig = formatString("int %s(", Name.c_str());
      for (unsigned P = 0; P != Params; ++P) {
        if (P)
          Sig += ", ";
        Sig += formatString("int a%u", P);
        IntVars.push_back(formatString("a%u", P));
      }
      Sig += ") {";
      line(Sig);
      ++Indent;
      line("int sum; int v0; int i0; int i1; int i2; int i3;");
      line(formatString("sum = %s;", intExpr(2).c_str()));
      line(formatString("v0 = %s;", intExpr(2).c_str()));
      IntVars.push_back("sum");
      IntVars.push_back("v0");
      NextCounter = 0;
      genBlock(1, 1 + pick(4));
      line(formatString("return sum + %s;", intExpr(2).c_str()));
      --Indent;
      line("}");
      Helpers.push_back(HelperInfo{Name, Params, false});
    } else {
      // Loop-heavy array worker.
      line(formatString("int %s(int a0) {", Name.c_str()));
      ++Indent;
      line("int sum; int i0; int i1; int i2; int i3;");
      unsigned LLen = 4 + pick(12);
      line(formatString("int la[%u];", LLen));
      IntVars.push_back("a0");
      line("sum = a0;");
      IntVars.push_back("sum");
      LocalArrays.push_back(LocalArray{"la", LLen});
      line(formatString("for (i0 = 0; i0 < %u; i0 = i0 + 1) { la[i0] = i0 * %u; }",
                        LLen, 1 + pick(8)));
      IntVars.push_back("i0");
      NonNeg.push_back("i0");
      // A NonNeg var must also be Protected_: a generated `i0 = <expr>;`
      // could make it negative, and indexExpr's `% Len` on a negative value
      // yields a negative remainder — an out-of-bounds access whose result
      // depends on the frame layout, which the opt-level oracle then
      // misreports as a miscompile.
      Protected_.push_back("i0");
      // Counters i0..i3 are pre-declared; i0 is live as the init counter's
      // last value, so nested loops draw from i1 up.
      NextCounter = 1;
      genBlock(2, 1 + pick(3));
      line(formatString("return sum + la[%s];", indexExpr(LLen).c_str()));
      --Indent;
      line("}");
      Helpers.push_back(HelperInfo{Name, 1, true});
    }
    line("");
  }
}

/// The interprocedural bias: pointer-argument walkers over one struct's
/// chain. walk0 iterates `p = p->next` in a loop (the summary must keep
/// `p->val` rooted at the argument); walk1 recurses with a structural depth
/// guard (a recursive SCC: summaries must widen to generic); fwd2/fwd3
/// forward the head down 2-3 call levels, so argument patterns must
/// substitute transitively before `8($a0)` resolves in the caller's terms.
void ProgramBuilder::emitWalkers() {
  if (Opts.InterprocDepth == 0)
    return;
  WalkerSI = pick(static_cast<unsigned>(Structs.size()));
  const StructInfo &S = Structs[WalkerSI];
  std::string SN = structName(WalkerSI);

  line(formatString("int walk0(struct %s *p) {", SN.c_str()));
  ++Indent;
  line("int sum;");
  line("sum = 0;");
  line("while (p != 0) {");
  ++Indent;
  line("sum = sum + p->val;");
  if (S.ArrLen)
    line(formatString("sum = sum + p->tab[%u];", pick(S.ArrLen)));
  line("p = p->next;");
  --Indent;
  line("}");
  line("return sum;");
  --Indent;
  line("}");

  line(formatString("int walk1(struct %s *p, int d) {", SN.c_str()));
  ++Indent;
  line("if (p == 0) { return 0; }");
  line("if (d <= 0) { return p->val; }");
  line(formatString("return p->val + walk1(p->next, d - 1);"));
  --Indent;
  line("}");

  TopWalker = "walk0";
  unsigned Levels = std::min(Opts.InterprocDepth, 3u);
  for (unsigned L = 2; L <= Levels; ++L) {
    std::string Name = formatString("fwd%u", L);
    std::string Inner = L == 2 ? "walk0" : formatString("fwd%u", L - 1);
    line(formatString("int %s(struct %s *p) {", Name.c_str(), SN.c_str()));
    ++Indent;
    line("int sum;");
    line("sum = 0;");
    line(formatString("if (p != 0) { sum = sum + p->val + %s(p->next); }",
                      Inner.c_str()));
    line(formatString("sum = sum + walk1(p, %u);", 4 + pick(12)));
    line("return sum;");
    --Indent;
    line("}");
    TopWalker = Name;
  }
  line("");
}

void ProgramBuilder::emitMain() {
  beginFunctionScope();
  InMain = true;
  line("int main() {");
  ++Indent;
  // Declarations first (workload style), all initialized before the body.
  std::string Decl = "int sum;";
  unsigned Locals = 1 + pick(3);
  for (unsigned I = 0; I != Locals; ++I)
    Decl += formatString(" int v%u;", I);
  for (unsigned I = 0; I != 8; ++I)
    Decl += formatString(" int i%u;", I);
  line(Decl);
  unsigned LLen = 0;
  if (chance(60)) {
    LLen = 4 + pick(12);
    line(formatString("int la0[%u];", LLen));
  }
  for (unsigned SI = 0; SI != Structs.size(); ++SI)
    line(formatString("struct S%u *tmp%u; struct S%u *cur%u;", SI, SI, SI, SI));
  line(formatString("srand(%u);", 1 + pick(100000)));
  line("sum = 0;");
  IntVars.push_back("sum");
  for (unsigned I = 0; I != Locals; ++I) {
    line(formatString("v%u = %s;", I, intExpr(2).c_str()));
    IntVars.push_back(formatString("v%u", I));
  }
  if (LLen) {
    line(formatString("for (i0 = 0; i0 < %u; i0 = i0 + 1) { la0[i0] = i0 + %u; }",
                      LLen, pick(32)));
    LocalArrays.push_back(LocalArray{"la0", LLen});
  }
  // Counters i0..i7 are pre-declared; the statement generators allocate from
  // this pool (NextCounter tracks usage; 8 is deeper than MaxBlockDepth+
  // chain templates ever need).
  NextCounter = 1;

  // Build chains for a random subset of structs, then interleave general
  // statements with chain walks.
  std::vector<unsigned> Built;
  for (unsigned SI = 0; SI != Structs.size(); ++SI)
    if (chance(75)) {
      genChainBuild(SI, formatString("gp%u", SI));
      Built.push_back(SI);
    }
  if (const GlobalInfo *G = findGlobal(GlobalInfo::Kind::StructPtrArray)) {
    // Round-robin head table: scatter chain neighbors across the heap.
    std::string C = formatString("i%u", NextCounter++);
    std::string SN = structName(G->SI);
    line(formatString("for (%s = 0; %s < %u; %s = %s + 1) {", C.c_str(),
                      C.c_str(), G->Len, C.c_str(), C.c_str()));
    ++Indent;
    line(formatString("tmp%u = (struct %s*)malloc(sizeof(struct %s));", G->SI,
                      SN.c_str(), SN.c_str()));
    line(formatString("tmp%u->val = rand() %% 1000;", G->SI));
    line(formatString("tmp%u->next = 0;", G->SI));
    line(formatString("%s[%s] = tmp%u;", globalName(*G).c_str(), C.c_str(),
                      G->SI));
    --Indent;
    line("}");
    line(formatString("sum = sum + %s[rand() %% %u]->val;",
                      globalName(*G).c_str(), G->Len));
  }

  genBlock(0, 2 + pick(Opts.MaxStmtsPerBlock));
  for (unsigned SI : Built)
    if (chance(80))
      genChainWalk(SI, formatString("gp%u", SI));
  // The interprocedural walkers null-guard, so the call is safe whether or
  // not this struct's chain was built above.
  if (!TopWalker.empty())
    line(formatString("sum = sum + %s(gp%u);", TopWalker.c_str(), WalkerSI));
  genBlock(0, 1 + pick(3));

  line("print_int(sum);");
  line(formatString("return sum & %u;", 63 + pick(192)));
  --Indent;
  line("}");
}

std::string ProgramBuilder::build() {
  line(formatString("/* generated: seed-derived program */"));
  emitStructs();
  emitGlobals();
  emitHelpers();
  emitWalkers();
  emitMain();
  return std::move(Out);
}

} // namespace

std::string fuzz::generateProgram(uint64_t Seed, const GeneratorOptions &Opts) {
  ProgramBuilder B(Seed, Opts);
  return B.build();
}
