//===- fuzz/Generator.h - Random valid MinC programs ------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of *valid* MinC programs for the differential fuzzing
/// harness (see fuzz/Oracles.h). Unlike the token-soup suites in
/// tests/FuzzTest.cpp, which probe the front ends with garbage, this
/// generator manufactures programs that must compile at every opt level,
/// must run to completion without trapping, and must behave identically
/// under every execution configuration — so any observable difference is a
/// pipeline bug, not an artifact of the input.
///
/// The grammar is biased toward the address idioms the paper's heuristic
/// cares about: global vs stack arrays (H1), scaled indexing (H2), struct
/// and pointer-chain dereferences at several depths (H3), loop-carried
/// pointer recurrences (H4), and rarely-taken paths (H5). Programs are
/// closed under the substrate's determinism rules:
///
///  * every local is assigned before any use (stack garbage differs
///    between frame layouts, so reading it would fake a divergence);
///  * every array index is provably in bounds (loop counters bounded by
///    the array size, or `rand() % size`);
///  * every pointer is either null-guarded or freshly allocated before
///    dereference, and pointer values never reach program output;
///  * division and remainder denominators are nonzero by construction
///    (nonzero literals, or `(e & 15) + 1` forms);
///  * all loops have constant trip counts and recursion has a structural
///    depth guard, so total work is bounded far below the fuzzer's fuel.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_FUZZ_GENERATOR_H
#define DLQ_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>

namespace dlq {
namespace fuzz {

/// Generator size knobs. Defaults produce programs of roughly 40-120 source
/// lines executing well under a million instructions.
struct GeneratorOptions {
  unsigned MaxStructs = 3;      ///< Struct types (chains link through these).
  unsigned MaxGlobals = 5;      ///< Global scalars/arrays/pointers.
  unsigned MaxHelpers = 3;      ///< Helper functions besides main.
  unsigned MaxLoopBound = 24;   ///< Constant trip count ceiling.
  unsigned MaxArrayLen = 24;    ///< Array length ceiling (min 2).
  unsigned MaxStmtsPerBlock = 6;
  unsigned MaxExprDepth = 4;
  unsigned MaxBlockDepth = 3;   ///< Loop/if nesting ceiling.
  unsigned MaxListLen = 32;     ///< Linked-structure length ceiling.
  /// Interprocedural bias: when >0, additionally emit a family of
  /// pointer-argument walker helpers — an iterative chain walk, a
  /// self-recursive walk with a depth guard, and up to this many
  /// forwarding levels passing the chain head down — and call the deepest
  /// one from main. This manufactures exactly the cross-procedure address
  /// shapes the IPA summaries must transport. Default 0 (off) so
  /// historical seeds replay byte-identically.
  unsigned InterprocDepth = 0;

  GeneratorOptions() {}
};

/// Generates one deterministic program for \p Seed. Equal seeds produce
/// byte-identical sources across runs, hosts and thread schedules.
std::string generateProgram(uint64_t Seed,
                            const GeneratorOptions &Opts = GeneratorOptions());

} // namespace fuzz
} // namespace dlq

#endif // DLQ_FUZZ_GENERATOR_H
