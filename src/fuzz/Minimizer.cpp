//===- fuzz/Minimizer.cpp --------------------------------------------------==//

#include "fuzz/Minimizer.h"

#include <algorithm>
#include <cstddef>
#include <vector>

using namespace dlq;
using namespace dlq::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Nl = S.find('\n', Pos);
    if (Nl == std::string::npos) {
      Lines.push_back(S.substr(Pos));
      break;
    }
    Lines.push_back(S.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

} // namespace

MinimizeResult fuzz::minimizeProgram(const std::string &Source, OracleId Target,
                                     const MinimizeOptions &Opts) {
  MinimizeResult Res;
  std::vector<std::string> Lines = splitLines(Source);

  auto stillFails = [&](const std::vector<std::string> &Cand) {
    if (Res.Probes >= Opts.MaxProbes)
      return false;
    ++Res.Probes;
    return runOracles(joinLines(Cand), Opts.Oracle).has(Target);
  };

  // Chunked greedy deletion: at each granularity try deleting every chunk;
  // restart the granularity after any success (the classic ddmin schedule,
  // without the complement phase — chunks here are already complements).
  size_t Chunk = Lines.size() / 2;
  if (Chunk == 0)
    Chunk = 1;
  while (Res.Probes < Opts.MaxProbes) {
    bool AnyRemoved = false;
    for (size_t Begin = 0; Begin < Lines.size() && Res.Probes < Opts.MaxProbes;) {
      size_t Len = std::min(Chunk, Lines.size() - Begin);
      std::vector<std::string> Cand;
      Cand.reserve(Lines.size() - Len);
      Cand.insert(Cand.end(), Lines.begin(),
                  Lines.begin() + static_cast<ptrdiff_t>(Begin));
      Cand.insert(Cand.end(),
                  Lines.begin() + static_cast<ptrdiff_t>(Begin + Len),
                  Lines.end());
      if (!Cand.empty() && stillFails(Cand)) {
        Lines = std::move(Cand);
        AnyRemoved = true;
        // Retry the same Begin: the next chunk slid into place.
      } else {
        Begin += Len;
      }
    }
    if (Chunk == 1 && !AnyRemoved)
      break;
    if (!AnyRemoved)
      Chunk = std::max<size_t>(1, Chunk / 2);
  }

  Res.Program = joinLines(Lines);
  return Res;
}
