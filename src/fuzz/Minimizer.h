//===- fuzz/Minimizer.h - Line-level delta reduction ------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ddmin-style reduction of a failing MinC program: repeatedly deletes line
/// chunks of shrinking size, keeping a candidate whenever the oracles still
/// report a finding from the same oracle as the original failure. Candidates
/// that stop compiling simply fail the predicate (their finding is
/// OracleId::Compile), so the reducer needs no language awareness beyond the
/// line split.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_FUZZ_MINIMIZER_H
#define DLQ_FUZZ_MINIMIZER_H

#include "fuzz/Oracles.h"

#include <string>

namespace dlq {
namespace fuzz {

struct MinimizeOptions {
  /// Predicate-evaluation budget: each probe recompiles and re-runs the
  /// whole oracle battery, so the budget bounds minimization latency.
  unsigned MaxProbes = 400;
  OracleOptions Oracle;
};

/// Result of a reduction.
struct MinimizeResult {
  std::string Program;  ///< Smallest failing variant found.
  unsigned Probes = 0;  ///< Oracle evaluations spent.
};

/// Shrinks \p Source while runOracles(candidate).has(\p Target) holds. The
/// input itself must satisfy the predicate.
MinimizeResult minimizeProgram(const std::string &Source, OracleId Target,
                               const MinimizeOptions &Opts = MinimizeOptions());

} // namespace fuzz
} // namespace dlq

#endif // DLQ_FUZZ_MINIMIZER_H
