//===- fuzz/Oracles.cpp ----------------------------------------------------==//

#include "fuzz/Oracles.h"

#include "absint/Lint.h"
#include "classify/Delinquency.h"
#include "jit/CodeBuffer.h"
#include "classify/Heuristic.h"
#include "freq/StaticFreq.h"
#include "ipa/Summaries.h"
#include "masm/Module.h"
#include "mcc/Compiler.h"
#include "sim/Machine.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>

using namespace dlq;
using namespace dlq::fuzz;

std::string_view fuzz::oracleName(OracleId Id) {
  switch (Id) {
  case OracleId::Compile:
    return "compile";
  case OracleId::OptLevels:
    return "opt-levels";
  case OracleId::MemBacking:
    return "mem-backing";
  case OracleId::Fusion:
    return "fusion";
  case OracleId::Analysis:
    return "analysis";
  case OracleId::Trap:
    return "trap";
  case OracleId::Lint:
    return "lint";
  case OracleId::JitInterp:
    return "jit-interp";
  case OracleId::Ipa:
    return "ipa";
  }
  return "unknown";
}

namespace {

std::string haltName(sim::HaltReason H) {
  switch (H) {
  case sim::HaltReason::Exited:
    return "exited";
  case sim::HaltReason::FuelExhausted:
    return "fuel-exhausted";
  case sim::HaltReason::Trapped:
    return "trapped";
  }
  return "?";
}

/// First difference between two counter vectors, or empty.
std::string diffCounts(const char *What, const std::vector<uint64_t> &A,
                       const std::vector<uint64_t> &B) {
  if (A.size() != B.size())
    return formatString("%s length %zu vs %zu", What, A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I] != B[I])
      return formatString("%s[%zu] %llu vs %llu", What, I,
                          static_cast<unsigned long long>(A[I]),
                          static_cast<unsigned long long>(B[I]));
  return std::string();
}

/// First difference between two RunResults (full bit-identical contract),
/// or empty when equal.
std::string diffRuns(const sim::RunResult &A, const sim::RunResult &B) {
  if (A.Halt != B.Halt)
    return "halt " + haltName(A.Halt) + " vs " + haltName(B.Halt);
  if (A.ExitCode != B.ExitCode)
    return formatString("exit code %d vs %d", A.ExitCode, B.ExitCode);
  if (A.Output != B.Output)
    return formatString("output differs at byte %zu (lengths %zu vs %zu)",
                        std::distance(A.Output.begin(),
                                      std::mismatch(A.Output.begin(),
                                                    A.Output.end(),
                                                    B.Output.begin(),
                                                    B.Output.end())
                                          .first),
                        A.Output.size(), B.Output.size());
  if (A.InstrsExecuted != B.InstrsExecuted)
    return formatString("instrs %llu vs %llu",
                        static_cast<unsigned long long>(A.InstrsExecuted),
                        static_cast<unsigned long long>(B.InstrsExecuted));
  if (A.DataAccesses != B.DataAccesses)
    return formatString("data accesses %llu vs %llu",
                        static_cast<unsigned long long>(A.DataAccesses),
                        static_cast<unsigned long long>(B.DataAccesses));
  if (A.LoadMisses != B.LoadMisses)
    return formatString("load misses %llu vs %llu",
                        static_cast<unsigned long long>(A.LoadMisses),
                        static_cast<unsigned long long>(B.LoadMisses));
  if (A.StoreMisses != B.StoreMisses)
    return formatString("store misses %llu vs %llu",
                        static_cast<unsigned long long>(A.StoreMisses),
                        static_cast<unsigned long long>(B.StoreMisses));
  if (std::string D = diffCounts("ExecCounts", A.ExecCounts, B.ExecCounts);
      !D.empty())
    return D;
  if (std::string D = diffCounts("MissCounts", A.MissCounts, B.MissCounts);
      !D.empty())
    return D;
  return std::string();
}

/// All baseline differentials pin the interpreter: a process-wide JIT
/// default must not silently change what oracles 1-3 compare. Oracle 6 is
/// the one place the JIT engine enters.
sim::RunResult runModule(const masm::Module &M, const masm::Layout &L,
                         uint64_t MaxInstrs, sim::Memory::Backing Backing,
                         bool NoFusion,
                         sim::EngineKind Engine = sim::EngineKind::Interp) {
  sim::MachineOptions MO;
  MO.MaxInstrs = MaxInstrs;
  MO.MemBacking = Backing;
  MO.NoFusion = NoFusion;
  MO.Engine = Engine;
  if (Engine == sim::EngineKind::Jit)
    MO.JitHotThreshold = 1; // Push everything reached through compiled code.
  sim::Machine Mach(M, L, MO);
  return Mach.run();
}

/// Deterministic text rendering of one analysis, for the rebuild check.
std::string renderAnalysis(const classify::ModuleAnalysis &MA,
                           const classify::ExecCountMap &Execs) {
  classify::HeuristicOptions HO;
  std::string Out;
  for (const auto &[Ref, Pats] : MA.loadPatterns()) {
    Out += formatString("f%u.i%u:", Ref.FuncIdx, Ref.InstrIdx);
    for (const ap::ApNode *P : Pats) {
      Out += ' ';
      Out += ap::printPattern(P);
    }
    auto It = Execs.find(Ref);
    classify::FreqClass FC =
        classify::freqClassOf(It == Execs.end() ? 0 : It->second, HO);
    Out += formatString(" phi=%.17g\n", classify::phi(Pats, FC, HO));
  }
  return Out;
}

/// Oracle 4 on one module. \p Execs comes from a real simulation so the
/// frequency-class path is exercised with live counts.
void checkAnalysis(const masm::Module &M, const classify::ExecCountMap &Execs,
                   const char *Level, std::vector<OracleFinding> &Findings) {
  ap::ApBuilderOptions BO;
  classify::HeuristicOptions HO;
  classify::ModuleAnalysis MA(M, BO);

  for (const auto &[Ref, Pats] : MA.loadPatterns()) {
    if (Pats.empty()) {
      Findings.push_back(
          {OracleId::Analysis,
           formatString("%s f%u.i%u: load has no patterns", Level,
                        Ref.FuncIdx, Ref.InstrIdx)});
      continue;
    }
    if (Pats.size() > BO.MaxPatternsPerLoad) {
      Findings.push_back(
          {OracleId::Analysis,
           formatString("%s f%u.i%u: %zu patterns exceeds cap %u", Level,
                        Ref.FuncIdx, Ref.InstrIdx, Pats.size(),
                        BO.MaxPatternsPerLoad)});
    }
    for (const ap::ApNode *P : Pats) {
      // Structural size must stay within what the depth/alt caps permit; a
      // blow-up here means a cap stopped binding.
      if (ap::patternSize(P) > 1u << 16) {
        Findings.push_back(
            {OracleId::Analysis,
             formatString("%s f%u.i%u: pattern of %u nodes", Level,
                          Ref.FuncIdx, Ref.InstrIdx, ap::patternSize(P))});
        break;
      }
    }
    auto It = Execs.find(Ref);
    classify::FreqClass FC =
        classify::freqClassOf(It == Execs.end() ? 0 : It->second, HO);
    double Phi = classify::phi(Pats, FC, HO);
    if (!std::isfinite(Phi)) {
      Findings.push_back({OracleId::Analysis,
                          formatString("%s f%u.i%u: phi not finite", Level,
                                       Ref.FuncIdx, Ref.InstrIdx)});
      continue;
    }
    // phi = max over patterns: must not depend on pattern order.
    std::vector<const ap::ApNode *> Rev(Pats.rbegin(), Pats.rend());
    double PhiRev = classify::phi(Rev, FC, HO);
    if (Phi != PhiRev)
      Findings.push_back(
          {OracleId::Analysis,
           formatString("%s f%u.i%u: phi order-dependent (%.17g vs %.17g)",
                        Level, Ref.FuncIdx, Ref.InstrIdx, Phi, PhiRev)});
  }

  // The analysis must be deterministic: an identical rebuild renders
  // identically.
  classify::ModuleAnalysis MA2(M, BO);
  std::string R1 = renderAnalysis(MA, Execs);
  std::string R2 = renderAnalysis(MA2, Execs);
  if (R1 != R2)
    Findings.push_back(
        {OracleId::Analysis,
         formatString("%s: rebuild of the analysis differs", Level)});

  // The static frequency estimate must stay finite and non-negative.
  freq::StaticFreqEstimate SF(M);
  for (uint32_t FI = 0; FI != M.functions().size(); ++FI) {
    double F = SF.functionFreq(FI);
    if (!std::isfinite(F) || F < 0.0) {
      Findings.push_back(
          {OracleId::Analysis,
           formatString("%s: function %u static freq %g", Level, FI, F)});
      break;
    }
  }
}

} // namespace

OracleReport fuzz::runOracles(std::string_view Source,
                              const OracleOptions &Opts) {
  OracleReport Rep;

  mcc::CompileOptions O0, O1;
  O0.OptLevel = 0;
  O1.OptLevel = 1;
  mcc::CompileResult C0 = mcc::compile(Source, O0);
  mcc::CompileResult C1 = mcc::compile(Source, O1);
  if (!C0.ok() || !C1.ok()) {
    // Generated programs are valid by construction; any rejection — let
    // alone one opt level rejecting what the other accepts — is a bug.
    if (!C0.ok())
      Rep.Findings.push_back({OracleId::Compile, "-O0: " + C0.Errors});
    if (!C1.ok())
      Rep.Findings.push_back({OracleId::Compile, "-O1: " + C1.Errors});
    return Rep;
  }

  masm::Layout L0(*C0.M);
  masm::Layout L1(*C1.M);

  // Reference run: -O0, flat backing, fusion on.
  sim::RunResult R0 = runModule(*C0.M, L0, Opts.MaxInstrs,
                                sim::Memory::Backing::Auto, false);
  sim::RunResult R1 = runModule(*C1.M, L1, Opts.MaxInstrs,
                                sim::Memory::Backing::Auto, false);
  Rep.InstrsExecuted = R0.InstrsExecuted;
  Rep.FuelExhausted = R0.Halt == sim::HaltReason::FuelExhausted ||
                      R1.Halt == sim::HaltReason::FuelExhausted;

  if (R0.Halt == sim::HaltReason::Trapped)
    Rep.Findings.push_back(
        {OracleId::Trap, "-O0 trapped: " + R0.TrapMessage});
  if (R1.Halt == sim::HaltReason::Trapped)
    Rep.Findings.push_back(
        {OracleId::Trap, "-O1 trapped: " + R1.TrapMessage});

  // Oracle 1: observable behavior across opt levels. Fuel exhaustion cuts
  // the two executions off at different program points, so only the halt
  // kind is comparable then.
  if (!Rep.FuelExhausted && !Rep.has(OracleId::Trap)) {
    if (R0.ExitCode != R1.ExitCode)
      Rep.Findings.push_back(
          {OracleId::OptLevels,
           formatString("exit code %d (-O0) vs %d (-O1)", R0.ExitCode,
                        R1.ExitCode)});
    if (R0.Output != R1.Output)
      Rep.Findings.push_back(
          {OracleId::OptLevels,
           formatString("output differs (%zu vs %zu bytes)", R0.Output.size(),
                        R1.Output.size())});
  }

  // Oracles 2 and 3 compare identical instruction streams, so the full
  // RunResult contract applies whatever the halt reason was.
  struct Cfg {
    const masm::Module *M;
    const masm::Layout *L;
    const sim::RunResult *Ref;
    const char *Level;
  };
  for (const Cfg &C : {Cfg{C0.M.get(), &L0, &R0, "-O0"},
                       Cfg{C1.M.get(), &L1, &R1, "-O1"}}) {
    sim::RunResult Paged = runModule(*C.M, *C.L, Opts.MaxInstrs,
                                     sim::Memory::Backing::Paged, false);
    if (std::string D = diffRuns(*C.Ref, Paged); !D.empty())
      Rep.Findings.push_back(
          {OracleId::MemBacking,
           formatString("%s flat vs paged: %s", C.Level, D.c_str())});

    sim::RunResult NoFuse = runModule(*C.M, *C.L, Opts.MaxInstrs,
                                      sim::Memory::Backing::Auto, true);
    if (std::string D = diffRuns(*C.Ref, NoFuse); !D.empty())
      Rep.Findings.push_back(
          {OracleId::Fusion,
           formatString("%s fused vs unfused: %s", C.Level, D.c_str())});

    // Oracle 6: the JIT engine against the interpreter reference. Compare
    // via diffRuns like oracles 2/3 — the contract is the full RunResult,
    // per-PC counter vectors included.
    if (Opts.CheckJit && jit::available()) {
      sim::RunResult Jitted =
          runModule(*C.M, *C.L, Opts.MaxInstrs, sim::Memory::Backing::Auto,
                    false, sim::EngineKind::Jit);
      if (std::string D = diffRuns(*C.Ref, Jitted); !D.empty())
        Rep.Findings.push_back(
            {OracleId::JitInterp,
             formatString("%s jit vs interp: %s", C.Level, D.c_str())});
    }
  }

  // Oracle 4: analysis invariants per module, frequency classes fed from
  // the real profile of this very run.
  if (Opts.CheckAnalysis) {
    auto toExecMap = [](const sim::RunResult &R, const masm::Module &M) {
      classify::ExecCountMap Map;
      for (const auto &[Ref, Stat] : R.loadStats(M))
        Map[Ref] = Stat.Execs;
      return Map;
    };
    checkAnalysis(*C0.M, toExecMap(R0, *C0.M), "-O0", Rep.Findings);
    checkAnalysis(*C1.M, toExecMap(R1, *C1.M), "-O1", Rep.Findings);
  }

  // Oracle 5: generated programs compile to lint-clean code at both opt
  // levels. The lint's checks are exactly the bug classes codegen fuzzing
  // has caught before (branch-arm spill leaks, clobbered temporaries), so
  // a finding here localizes a miscompile without needing a behavioral
  // divergence to witness it.
  if (Opts.CheckLint) {
    struct LintCfg {
      const masm::Module *M;
      const char *Level;
    };
    for (const LintCfg &C :
         {LintCfg{C0.M.get(), "-O0"}, LintCfg{C1.M.get(), "-O1"}})
      for (const absint::LintFinding &F : absint::lintModule(*C.M))
        Rep.Findings.push_back(
            {OracleId::Lint,
             formatString("%s: %s", C.Level, F.str().c_str())});
  }

  // Oracle 7: the interprocedural summaries must over-approximate inlining
  // at every known, non-recursive call site — on both modules, so -O1's
  // tighter register allocation cannot hide a transport bug.
  if (Opts.CheckIpa) {
    struct IpaCfg {
      const masm::Module *M;
      const masm::Layout *L;
      const char *Level;
    };
    for (const IpaCfg &C :
         {IpaCfg{C0.M.get(), &L0, "-O0"}, IpaCfg{C1.M.get(), &L1, "-O1"}}) {
      ipa::IpaOptions IO;
      IO.Enable = true;
      for (const std::string &V :
           ipa::checkInterprocSoundness(*C.M, *C.L, IO))
        Rep.Findings.push_back(
            {OracleId::Ipa, formatString("%s: %s", C.Level, V.c_str())});
    }
  }

  return Rep;
}
