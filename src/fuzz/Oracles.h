//===- fuzz/Oracles.h - Differential oracles over the pipeline --------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four differential oracles of the fuzzing harness. Each takes one
/// generated MinC program (see fuzz/Generator.h) through the full
/// compile -> simulate -> classify pipeline several times under
/// configurations that must be observably equivalent, and reports any
/// difference:
///
///  1. OptLevels  — the -O0 and -O1 compiles of the same source must print
///     the same output and exit with the same status. (Skipped when either
///     run exhausts its fuel: -O0 legitimately executes more instructions,
///     so the truncation points differ.)
///  2. MemBacking — the simulator's flat 4 GiB mmap backing and its
///     page-table+TLB backing must produce bit-identical RunResults:
///     counters, per-PC profiles, output, everything.
///  3. Fusion     — a run with superinstruction fusion must agree with a
///     no-fusion run on the complete RunResult, in particular per-PC
///     ExecCounts/MissCounts (fused handlers maintain component counters).
///  4. Analysis   — the AP builder and classifier must terminate within
///     their structural caps and satisfy invariants on every load of both
///     modules: ≤ MaxPatternsPerLoad patterns, phi finite and stable under
///     pattern reordering, a rebuild of the analysis bit-identical, and the
///     static frequency estimate finite and non-negative. (The issue's
///     cross-opt-level derefDepth/recurrence comparison is relaxed to
///     per-module invariants because masm carries no source positions to
///     match loads across opt levels; see DESIGN.md.)
///  5. Lint      — the abstract-interpretation codegen lint (absint/Lint.h)
///     must report zero findings on both the -O0 and the -O1 module: every
///     generated program is well-formed, so any use-before-write spill
///     slot, call-clobbered register use, callee-saved clobber, unbalanced
///     $sp, out-of-.data $gp access or unreachable block is a code
///     generator bug.
///  6. JitInterp — a JIT-engine run (hotness threshold 1, so every reached
///     block executes as compiled x86-64) must produce a RunResult
///     bit-identical to the interpreter reference: halt state, output,
///     aggregate counters, and per-PC ExecCounts/MissCounts. Skipped on
///     hosts without executable memory.
///  7. Ipa       — the interprocedural summaries (ipa/Summaries.h) must be
///     sound on both modules: at every known, non-recursive call site the
///     summary-applied state must contain the state obtained by inlining
///     the callee with the transported arguments (see
///     ipa::checkInterprocSoundness). Pairs with the generator's
///     InterprocDepth bias, which manufactures pointer-argument call
///     chains 2-3 levels deep.
///
/// All oracle runs other than 6 pin the interpreter engine explicitly, so
/// the baseline differentials keep their meaning whatever the process-wide
/// engine default is.
///
/// Compile failures and simulator traps are also findings: the generator
/// only emits programs that must compile and run cleanly.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_FUZZ_ORACLES_H
#define DLQ_FUZZ_ORACLES_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dlq {
namespace fuzz {

/// Which oracle produced a finding.
enum class OracleId : uint8_t {
  Compile,    ///< A compile failed (or opt levels disagree about failing).
  OptLevels,  ///< -O0 vs -O1 observable behavior.
  MemBacking, ///< Flat vs paged guest memory.
  Fusion,     ///< Fused vs no-fusion execution.
  Analysis,   ///< AP/classifier invariant violation.
  Trap,       ///< A run trapped on a generator-guaranteed-clean program.
  Lint,       ///< The codegen lint flagged a generated module.
  JitInterp,  ///< JIT vs interpreter execution.
  Ipa,        ///< Interprocedural summary soundness violation.
};

std::string_view oracleName(OracleId Id);

/// One divergence.
struct OracleFinding {
  OracleId Id;
  std::string Detail; ///< Human-readable description of the difference.
};

/// Per-program oracle knobs.
struct OracleOptions {
  /// Fuel per simulation. Generated programs execute well under this;
  /// reaching it downgrades oracle 1 to a halt-reason comparison.
  uint64_t MaxInstrs = 50'000'000;
  /// Oracle 4 is the most expensive; campaigns can disable it to focus on
  /// execution differentials.
  bool CheckAnalysis = true;
  /// Oracle 5: both compiles must be lint-clean under absint/Lint.h.
  bool CheckLint = true;
  /// Oracle 6: JIT execution must be bit-identical to the interpreter.
  bool CheckJit = true;
  /// Oracle 7: interprocedural summaries must over-approximate inlining.
  bool CheckIpa = true;
};

/// Everything the oracles observed about one program.
struct OracleReport {
  std::vector<OracleFinding> Findings; ///< Empty = clean.
  bool FuelExhausted = false; ///< Some run hit MaxInstrs (oracle 1 relaxed).
  uint64_t InstrsExecuted = 0; ///< Of the -O0 reference run.

  bool clean() const { return Findings.empty(); }
  /// True if some finding came from \p Id (the minimizer's predicate).
  bool has(OracleId Id) const {
    for (const OracleFinding &F : Findings)
      if (F.Id == Id)
        return true;
    return false;
  }
};

/// Runs all oracles over \p Source.
OracleReport runOracles(std::string_view Source,
                        const OracleOptions &Opts = OracleOptions());

} // namespace fuzz
} // namespace dlq

#endif // DLQ_FUZZ_ORACLES_H
