//===- ipa/CallGraph.cpp --------------------------------------------------==//

#include "ipa/CallGraph.h"

#include "masm/Opcode.h"

#include <algorithm>

using namespace dlq;
using namespace dlq::ipa;
using namespace dlq::masm;

CallGraph::CallGraph(const Module &M) {
  uint32_t N = static_cast<uint32_t>(M.functions().size());
  Sites.resize(N);
  Callees.resize(N);
  Callers.resize(N);
  UnknownSite.assign(N, 0);
  SccId.assign(N, 0);
  Recursive.assign(N, 0);

  for (uint32_t F = 0; F != N; ++F) {
    const Function &Fn = M.functions()[F];
    for (uint32_t I = 0; I != Fn.size(); ++I) {
      const Instr &In = Fn.instrs()[I];
      if (In.Op != Opcode::Jal && In.Op != Opcode::Jalr)
        continue;
      CallSite S;
      S.Caller = F;
      S.InstrIdx = I;
      if (In.Op == Opcode::Jal)
        S.Callee = M.functionIndex(In.Sym);
      else
        S.Indirect = true;
      Sites[F].push_back(S);
      if (!S.known()) {
        UnknownSite[F] = 1;
        AnyUnknown = true;
        AnyIndirect = AnyIndirect || S.Indirect;
        continue;
      }
      Callees[F].push_back(S.Callee);
      Callers[S.Callee].push_back(F);
      if (S.Callee == F)
        Recursive[F] = 1;
    }
  }
  for (uint32_t F = 0; F != N; ++F) {
    auto dedup = [](std::vector<uint32_t> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end()), V.end());
    };
    dedup(Callees[F]);
    dedup(Callers[F]);
  }
  computeSccs();
}

void CallGraph::computeSccs() {
  // Iterative Tarjan over the known-callee edges. Completion order of the
  // components is a reverse topological order of the condensation, which is
  // exactly the bottom-up (callees first) order the summary passes need.
  uint32_t N = numFunctions();
  constexpr uint32_t Unvisited = ~uint32_t(0);
  std::vector<uint32_t> Index(N, Unvisited), Low(N, 0);
  std::vector<uint8_t> OnStack(N, 0);
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0, NextScc = 0;

  struct Frame {
    uint32_t Node;
    size_t EdgeIt;
  };
  std::vector<Frame> Dfs;

  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    Dfs.push_back({Root, 0});
    while (!Dfs.empty()) {
      Frame &Top = Dfs.back();
      uint32_t V = Top.Node;
      if (Top.EdgeIt == 0) {
        Index[V] = Low[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = 1;
      }
      if (Top.EdgeIt < Callees[V].size()) {
        uint32_t W = Callees[V][Top.EdgeIt++];
        if (Index[W] == Unvisited) {
          Dfs.push_back({W, 0});
        } else if (OnStack[W]) {
          Low[V] = std::min(Low[V], Index[W]);
        }
        continue;
      }
      // All edges of V explored: close the component if V is its root.
      if (Low[V] == Index[V]) {
        uint32_t Size = 0;
        for (;;) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          SccId[W] = NextScc;
          BottomUp.push_back(W);
          ++Size;
          if (W == V)
            break;
        }
        SccSizes.push_back(Size);
        ++NextScc;
      }
      Dfs.pop_back();
      if (!Dfs.empty())
        Low[Dfs.back().Node] = std::min(Low[Dfs.back().Node], Low[V]);
    }
  }

  for (uint32_t F = 0; F != N; ++F)
    if (SccSizes[SccId[F]] > 1)
      Recursive[F] = 1;
}
