//===- ipa/CallGraph.h - Module call graph with SCC detection ---------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module call graph: one node per function, one edge per `jal` whose
/// symbol resolves to a function in the module. `jalr` (and `jal` to a
/// runtime symbol) becomes an "unknown callee" site — the caller keeps the
/// edge with masm::InvalidIndex so summary clients can fall back to havoc.
/// Tarjan's algorithm (iterative, so deep chains cannot blow the C++ stack)
/// groups mutual recursion into SCCs; the SCC completion order doubles as a
/// bottom-up traversal order (callees before callers for every
/// cross-component edge).
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_IPA_CALLGRAPH_H
#define DLQ_IPA_CALLGRAPH_H

#include "masm/Module.h"

#include <cstdint>
#include <vector>

namespace dlq {
namespace ipa {

/// One call instruction, with its resolved target.
struct CallSite {
  uint32_t Caller = 0;   ///< Function index of the containing function.
  uint32_t InstrIdx = 0; ///< Function-local instruction index of the call.
  /// Target function index; masm::InvalidIndex for `jalr` and for `jal` to
  /// a symbol outside the module (runtime call).
  uint32_t Callee = masm::InvalidIndex;
  /// True for `jalr`: the target is a register value, so it may be any
  /// module function. A `jal` to an out-of-module symbol is NOT indirect —
  /// it reaches the runtime (malloc, print, ...), which never re-enters
  /// guest code, so it cannot add hidden callers to module functions.
  bool Indirect = false;

  bool known() const { return Callee != masm::InvalidIndex; }
};

class CallGraph {
public:
  explicit CallGraph(const masm::Module &M);

  uint32_t numFunctions() const {
    return static_cast<uint32_t>(Sites.size());
  }

  /// Call sites inside function \p F, in instruction order (known and
  /// unknown targets both included).
  const std::vector<CallSite> &sitesIn(uint32_t F) const { return Sites[F]; }

  /// Unique known callees of \p F, sorted ascending.
  const std::vector<uint32_t> &calleesOf(uint32_t F) const {
    return Callees[F];
  }

  /// Unique known callers of \p F, sorted ascending.
  const std::vector<uint32_t> &callersOf(uint32_t F) const {
    return Callers[F];
  }

  /// True when \p F contains a call whose target is not a module function.
  bool hasUnknownCallee(uint32_t F) const { return UnknownSite[F] != 0; }

  /// True when any function contains an unknown-target call: indirect
  /// control flow the graph cannot account for.
  bool moduleHasUnknownCalls() const { return AnyUnknown; }

  /// True when any function contains a `jalr`. Only then can a module
  /// function have callers the graph does not see (callersOf is complete
  /// for every function otherwise, runtime `jal`s notwithstanding).
  bool moduleHasIndirectCalls() const { return AnyIndirect; }

  /// SCC id of \p F. Ids follow Tarjan completion order: for every edge
  /// between distinct components, sccOf(callee) < sccOf(caller).
  uint32_t sccOf(uint32_t F) const { return SccId[F]; }

  /// Number of functions in \p F's SCC.
  uint32_t sccSize(uint32_t F) const { return SccSizes[SccId[F]]; }

  /// True when \p F can (transitively) call itself: its SCC has more than
  /// one member, or it has a direct self edge.
  bool isRecursive(uint32_t F) const { return Recursive[F] != 0; }

  /// All function indices ordered callees-first: for every known call edge
  /// crossing SCCs, the callee appears before the caller. Members of one
  /// SCC appear contiguously.
  const std::vector<uint32_t> &bottomUpOrder() const { return BottomUp; }

private:
  std::vector<std::vector<CallSite>> Sites;
  std::vector<std::vector<uint32_t>> Callees;
  std::vector<std::vector<uint32_t>> Callers;
  std::vector<uint8_t> UnknownSite;
  std::vector<uint32_t> SccId;
  std::vector<uint32_t> SccSizes;
  std::vector<uint8_t> Recursive;
  std::vector<uint32_t> BottomUp;
  bool AnyUnknown = false;
  bool AnyIndirect = false;

  void computeSccs();
};

} // namespace ipa
} // namespace dlq

#endif // DLQ_IPA_CALLGRAPH_H
