//===- ipa/Summaries.cpp --------------------------------------------------==//

#include "ipa/Summaries.h"

#include "cfg/Cfg.h"
#include "dataflow/ReachingDefs.h"
#include "masm/Opcode.h"
#include "masm/Runtime.h"
#include "obs/Counters.h"
#include "obs/Trace.h"
#include "support/Format.h"

#include <deque>
#include <set>

using namespace dlq;
using namespace dlq::ipa;
using namespace dlq::absint;
using namespace dlq::masm;

namespace {

Reg argReg(unsigned N) {
  return static_cast<Reg>(static_cast<unsigned>(Reg::A0) + N);
}

/// Argument registers the runtime service consumes ($a0..$a<n-1>). The
/// simulator ABI (masm/Runtime.h, sim::Machine) reads at most $a0/$a1
/// (calloc) and never $a2/$a3.
unsigned runtimeArgCount(masm::RuntimeFn F) {
  switch (F) {
  case masm::RuntimeFn::Calloc:
    return 2;
  case masm::RuntimeFn::Rand:
  case masm::RuntimeFn::Abort:
    return 0;
  default:
    return 1;
  }
}

Interp::Options baseOptions(const Module &M, const Layout &L,
                            const Function &F) {
  Interp::Options IO;
  IO.ModLayout = &L;
  IO.Frame = M.typeInfo().lookupFunction(F.name());
  return IO;
}

/// Concrete addresses this far below the stack region can never alias any
/// frame. Globals sit at 0x10000000 and the heap at 0x20000000; the stack
/// top is 0x7FFFF000, so anything under 0x70000000 is safely non-stack.
constexpr int64_t NonStackLimit = 0x70000000;

/// True when the store at \p Addr (width \p Size) provably cannot touch an
/// ancestor stack frame. Ancestor frames live at callee-entry-$sp +
/// non-negative offsets, so sp-relative stores strictly below the entry sp
/// are safe, as are concrete (global/heap) addresses below the stack
/// region.
bool storeIsFrameLocal(const AbsValue &Addr, unsigned Size) {
  if (Addr.isTop() || Addr.Hi == PosInf)
    return false;
  int64_t End = Addr.Hi + static_cast<int64_t>(Size);
  if (Addr.Base == SymBase::entryReg(Reg::SP))
    return End <= 0;
  if (Addr.Base.K == SymBase::None)
    return End <= NonStackLimit;
  if (Addr.Base == SymBase::entryReg(Reg::GP))
    return static_cast<int64_t>(LayoutConstants::GpValue) + End <=
           NonStackLimit;
  return false;
}

/// The entry-fact transport rule: a caller-side argument value may be
/// re-expressed in the callee's frame only when it does not mention the
/// caller's frame. Plain numbers travel verbatim; gp-relative values
/// travel when the caller's gp still holds its own entry value (gp is
/// global, so callee-entry-gp == caller-entry-gp then). Everything else
/// collapses to the callee's generic entry symbol.
/// $v0 joined over the reachable returns of \p Fn, reduced to the bases a
/// call site can rebind (plain numbers and non-RA entry registers). First
/// element false = no exportable return summary.
std::pair<bool, AbsValue> extractRet(const FuncAnalysis &FA,
                                     const Function &Fn) {
  bool Any = false;
  AbsValue V0;
  for (uint32_t I = 0; I != Fn.size(); ++I) {
    const Instr &In = Fn.instrs()[I];
    if (In.Op != Opcode::Jr || In.Rs != Reg::RA)
      continue;
    State S = FA.AI.stateBefore(I);
    if (!S.Reachable)
      continue;
    AbsValue V = S.reg(Reg::V0);
    V0 = Any ? join(V0, V) : V;
    Any = true;
  }
  if (!Any || V0.isTop() ||
      (V0.Base.K != SymBase::None &&
       !(V0.Base.K == SymBase::EntryReg && V0.Base.R != Reg::RA)))
    return {false, AbsValue::top()};
  return {true, V0};
}

AbsValue transportArg(const AbsValue &V, const State &CallerS, Reg A) {
  if (!V.isTop()) {
    if (V.Base.K == SymBase::None)
      return V;
    if (V.Base == SymBase::entryReg(Reg::GP) &&
        CallerS.reg(Reg::GP) == AbsValue::entry(Reg::GP))
      return V;
  }
  return AbsValue::entry(A);
}

} // namespace

//===----------------------------------------------------------------------===//
// Call model
//===----------------------------------------------------------------------===//

class ModuleSummaries::FunctionCallModel : public CallModel {
public:
  FunctionCallModel(const ModuleSummaries &MS, uint32_t F) : MS(MS) {
    for (const CallSite &S : MS.graph().sitesIn(F))
      if (S.known())
        CalleeAt.emplace(S.InstrIdx, S.Callee);
  }

  CallEffect effectAt(uint32_t InstrIdx, const State &S) const override {
    CallEffect E;
    auto It = CalleeAt.find(InstrIdx);
    if (It == CalleeAt.end())
      return E; // jalr or runtime call: blanket havoc.
    const FuncSummary &Sum = MS.summary(It->second);
    E.PreservesLocals = !Sum.WritesEscaped;
    if (!Sum.HasRet)
      return E;
    const AbsValue &R = Sum.RetV0;
    if (R.Base.K == SymBase::None) {
      E.KnownRet = true;
      E.V0 = R;
    } else if (R.Base.K == SymBase::EntryReg && R.Base.R != Reg::RA) {
      // The callee's entry value of R equals the caller's R at the call
      // (jal changes no register), so rebind the base to the caller's
      // current abstraction of R and keep the offset part.
      AbsValue Arg = S.reg(R.Base.R);
      if (!Arg.isTop()) {
        AbsValue Off = R;
        Off.Base = SymBase::none();
        AbsValue V = addValues(Arg, Off);
        if (!V.isTop()) {
          E.KnownRet = true;
          E.V0 = V;
        }
      }
    }
    return E;
  }

private:
  const ModuleSummaries &MS;
  std::map<uint32_t, uint32_t> CalleeAt;
};

//===----------------------------------------------------------------------===//
// ModuleSummaries
//===----------------------------------------------------------------------===//

ModuleSummaries::ModuleSummaries(const Module &M, const Layout &L,
                                 IpaOptions O)
    : M(M), L(L), Opts(O), CG(M) {
  obs::Span Sp("stage.ipa");
  uint32_t N = CG.numFunctions();
  Summaries.resize(N);
  EntryFacts.resize(N);
  Analyses.resize(N);
  Depth.assign(N, masm::InvalidIndex);
  Models.reserve(N);
  for (uint32_t F = 0; F != N; ++F) {
    Summaries[F].Recursive = CG.isRecursive(F);
    // Empty bodies (runtime-backed symbols) are fully unknown.
    if (M.functions()[F].empty())
      for (unsigned A = 0; A != 4; ++A)
        Summaries[F].ReadsArg[A] = true;
    Models.push_back(std::make_unique<FunctionCallModel>(*this, F));
  }

  computeBodySummaries();
  computeReadsArgs();
  computeEntryFacts();

  uint64_t Contexts = 0, BudgetHits = 0, Rets = 0;
  for (const FuncSummary &S : Summaries) {
    Contexts += S.Contexts;
    BudgetHits += S.BudgetHit ? 1 : 0;
    Rets += S.HasRet ? 1 : 0;
  }
  obs::counters().counter("ipa.contexts").add(Contexts);
  obs::counters().counter("ipa.budget_hits").add(BudgetHits);
  Sp.attr("functions", static_cast<uint64_t>(N));
  Sp.attr("contexts", Contexts);
  Sp.attr("ret_summaries", Rets);
}

ModuleSummaries::~ModuleSummaries() = default;

const CallModel *ModuleSummaries::callModelFor(uint32_t FuncIdx) const {
  if (FuncIdx >= Models.size())
    return nullptr;
  return Models[FuncIdx].get();
}

const State *ModuleSummaries::entryStateFor(uint32_t FuncIdx) const {
  if (FuncIdx >= EntryFacts.size())
    return nullptr;
  return EntryFacts[FuncIdx].get();
}

bool ModuleSummaries::calleeReadsArg(uint32_t CalleeIdx,
                                     unsigned ArgIdx) const {
  if (CalleeIdx >= Summaries.size() || ArgIdx >= 4)
    return true;
  return Summaries[CalleeIdx].ReadsArg[ArgIdx];
}

const FuncAnalysis *ModuleSummaries::analysisFor(uint32_t FuncIdx) const {
  if (FuncIdx >= Analyses.size() || M.functions()[FuncIdx].empty())
    return nullptr;
  if (!Analyses[FuncIdx]) {
    const Function &Fn = M.functions()[FuncIdx];
    Interp::Options IO = baseOptions(M, L, Fn);
    IO.Calls = Models[FuncIdx].get();
    IO.EntryState = EntryFacts[FuncIdx].get();
    Analyses[FuncIdx] = std::make_unique<FuncAnalysis>(Fn, IO);
  }
  return Analyses[FuncIdx].get();
}

void ModuleSummaries::computeBodySummaries() {
  // One bottom-up pass, one fixpoint per function, feeding two summaries:
  //
  //  - LocalEscape: the function itself stores somewhere that may alias an
  //    ancestor frame (frame stores go through $sp, which no call havocs,
  //    and global stores through la/gp-rooted addresses);
  //  - RetV0: $v0 at the returns, in entry terms. Recursive SCC members
  //    keep the conservative "no summary": their $v0 stays the opaque
  //    per-site token (= widening at recursion).
  //
  // The fixpoint runs with the function's own call model installed, so in
  // bottom-up order each callee outside the current SCC contributes its
  // final return summary; SCC mates still hold the defaults (WritesEscaped
  // = true, no RetV0), the same widening the split passes applied. Each
  // function's interim escape bit is published before its callers run; the
  // exact closure at the end then removes the SCC artifact, so a
  // store-free recursive nest still preserves its caller's locals.
  uint32_t N = CG.numFunctions();
  std::vector<uint8_t> LocalEscape(N, 1); // Unknown bodies escape.
  // The escape bit each later-processed caller actually observed for F.
  std::vector<uint8_t> Interim(N, 1);
  for (uint32_t F : CG.bottomUpOrder()) {
    const Function &Fn = M.functions()[F];
    FuncSummary &Sum = Summaries[F];
    if (Fn.empty())
      continue;
    Interp::Options IO = baseOptions(M, L, Fn);
    IO.Calls = Models[F].get();
    auto FA = std::make_unique<FuncAnalysis>(Fn, IO);

    LocalEscape[F] = 0;
    for (uint32_t I = 0; I != Fn.size() && !LocalEscape[F]; ++I) {
      const Instr &In = Fn.instrs()[I];
      if (!isStore(In.Op))
        continue;
      State S = FA->AI.stateBefore(I);
      if (!S.Reachable)
        continue;
      AbsValue Addr = addValues(S.reg(In.Rs), AbsValue::constant(In.Imm));
      if (!storeIsFrameLocal(Addr, accessSize(In.Op)))
        LocalEscape[F] = 1;
    }
    // Interim escape bit (self-edges contribute nothing: the closure's
    // smallest solution ignores them).
    if (!LocalEscape[F] && !CG.hasUnknownCallee(F)) {
      bool CalleeEscapes = false;
      for (uint32_t Callee : CG.calleesOf(F))
        if (Callee != F && Summaries[Callee].WritesEscaped)
          CalleeEscapes = true;
      Sum.WritesEscaped = CalleeEscapes;
    }
    Interim[F] = Sum.WritesEscaped ? 1 : 0;

    if (!Sum.Recursive) {
      auto [Has, V0] = extractRet(*FA, Fn);
      Sum.HasRet = Has;
      if (Has)
        Sum.RetV0 = V0;
    }
    Analyses[F] = std::move(FA);
  }

  // Exact escape closure from the local bits, replacing the interim ones;
  // unknown callees escape.
  for (uint32_t F = 0; F != N; ++F)
    Summaries[F].WritesEscaped = LocalEscape[F] != 0 || CG.hasUnknownCallee(F);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t F = 0; F != N; ++F) {
      if (Summaries[F].WritesEscaped)
        continue;
      for (uint32_t Callee : CG.calleesOf(F))
        if (Summaries[Callee].WritesEscaped) {
          Summaries[F].WritesEscaped = true;
          Changed = true;
          break;
        }
    }
  }

  // A fixpoint above ran under a weaker model than the final bits wherever
  // a callee's observed bit exceeded its final one — above all a recursive
  // body's view of its own SCC, which still held the conservative default.
  // Re-run exactly those under the final summaries (one bottom-up sweep:
  // the bits are final, and return-summary improvements propagate upward
  // in sweep order), so the cached analyses and exported RetV0 match what
  // a consumer building fresh against this object would compute.
  std::vector<uint8_t> RetChanged(N, 0);
  for (uint32_t F : CG.bottomUpOrder()) {
    const Function &Fn = M.functions()[F];
    if (Fn.empty())
      continue;
    bool Stale = false;
    for (uint32_t Callee : CG.calleesOf(F)) {
      bool Observed =
          CG.sccOf(Callee) == CG.sccOf(F) ? true : Interim[Callee] != 0;
      if ((Observed && !Summaries[Callee].WritesEscaped) ||
          RetChanged[Callee])
        Stale = true;
    }
    if (!Stale)
      continue;
    Interp::Options IO = baseOptions(M, L, Fn);
    IO.Calls = Models[F].get();
    auto FA = std::make_unique<FuncAnalysis>(Fn, IO);
    FuncSummary &Sum = Summaries[F];
    if (!Sum.Recursive) {
      auto [Has, V0] = extractRet(*FA, Fn);
      if (Has != Sum.HasRet || (Has && !(V0 == Sum.RetV0))) {
        Sum.HasRet = Has;
        Sum.RetV0 = V0;
        RetChanged[F] = 1;
      }
    }
    Analyses[F] = std::move(FA);
  }
}

void ModuleSummaries::computeReadsArgs() {
  // Direct reads: the entry definition of $aN reaches an instruction that
  // reads $aN. Forwarded reads: the entry definition reaches a call whose
  // callee (transitively) reads its own $aN; unknown callees read
  // everything.
  uint32_t N = CG.numFunctions();
  struct Forward {
    uint32_t From, To; ///< ReadsArg[From][N] |= ReadsArg[To][N].
    unsigned Arg;
  };
  std::vector<Forward> Forwards;
  for (uint32_t F = 0; F != N; ++F) {
    const Function &Fn = M.functions()[F];
    if (Fn.empty())
      continue; // Already conservatively all-true.
    cfg::Cfg G(Fn);
    dataflow::ReachingDefs RD(G);
    auto entryReaches = [&](uint32_t I, Reg R) {
      for (const dataflow::Def &D : RD.defsReaching(I, R))
        if (D.Kind == dataflow::DefKind::Entry)
          return true;
      return false;
    };
    for (uint32_t I = 0; I != Fn.size(); ++I) {
      const Instr &In = Fn.instrs()[I];
      bool IsCall = In.Op == Opcode::Jal || In.Op == Opcode::Jalr;
      for (Reg R : {In.Rs, In.Rt}) {
        if (!isParamReg(R))
          continue;
        bool Reads = (R == In.Rs && readsRs(In.Op)) ||
                     (R == In.Rt && readsRt(In.Op));
        if (!Reads)
          continue;
        unsigned A = static_cast<unsigned>(R) -
                     static_cast<unsigned>(Reg::A0);
        if (!Summaries[F].ReadsArg[A] && entryReaches(I, R))
          Summaries[F].ReadsArg[A] = true;
      }
      if (!IsCall)
        continue;
      uint32_t Callee = In.Op == Opcode::Jal ? M.functionIndex(In.Sym)
                                             : masm::InvalidIndex;
      for (unsigned A = 0; A != 4; ++A) {
        if (Summaries[F].ReadsArg[A] || !entryReaches(I, argReg(A)))
          continue;
        if (Callee == masm::InvalidIndex) {
          // Outside the module: a jalr may enter anything, but a jal that
          // resolves to no function is a runtime service with a pinned
          // argument signature.
          std::optional<RuntimeFn> RF =
              In.Op == Opcode::Jal ? runtimeFnByName(In.Sym) : std::nullopt;
          if (!RF || A < runtimeArgCount(*RF))
            Summaries[F].ReadsArg[A] = true;
        } else {
          Forwards.push_back({F, Callee, A});
        }
      }
    }
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Forward &E : Forwards)
      if (!Summaries[E.From].ReadsArg[E.Arg] &&
          Summaries[E.To].ReadsArg[E.Arg]) {
        Summaries[E.From].ReadsArg[E.Arg] = true;
        Changed = true;
      }
  }
}

void ModuleSummaries::computeEntryFacts() {
  // Entry facts require the complete caller set; a jalr anywhere could
  // target any module function, so the whole pass is skipped then. Runtime
  // `jal`s are fine: the runtime never re-enters guest code, so they add
  // no hidden callers.
  if (CG.moduleHasIndirectCalls())
    return;
  uint32_t N = CG.numFunctions();
  uint32_t MainIdx = M.functionIndex("main");
  if (MainIdx == masm::InvalidIndex)
    return; // No root: every function is externally callable.

  // Min call depth from main over known edges (BFS on the call graph).
  std::deque<uint32_t> Work;
  Depth[MainIdx] = 0;
  Work.push_back(MainIdx);
  while (!Work.empty()) {
    uint32_t F = Work.front();
    Work.pop_front();
    for (uint32_t Callee : CG.calleesOf(F))
      if (Depth[Callee] == masm::InvalidIndex) {
        Depth[Callee] = Depth[F] + 1;
        Work.push_back(Callee);
      }
  }

  auto eligible = [&](uint32_t F) {
    return F != MainIdx && !M.functions()[F].empty() &&
           !Summaries[F].Recursive && Depth[F] != masm::InvalidIndex &&
           Depth[F] <= Opts.ContextK && !CG.callersOf(F).empty();
  };

  // Accumulators, folded as callers are processed top-down.
  std::vector<std::array<AbsValue, 4>> Acc(N);
  std::vector<unsigned> Contribs(N, 0);
  std::vector<std::set<std::string>> Keys(N);

  // Reverse bottom-up = callers before callees across SCCs, so each
  // function's own entry facts are final before it is analyzed as a
  // caller.
  std::vector<uint32_t> TopDown(CG.bottomUpOrder().rbegin(),
                                CG.bottomUpOrder().rend());
  for (uint32_t C : TopDown) {
    // Finalize C's own facts: every caller has been processed.
    FuncSummary &Sum = Summaries[C];
    if (eligible(C) && Contribs[C] != 0 && !Sum.BudgetHit) {
      Sum.Contexts = static_cast<unsigned>(Keys[C].size());
      bool NonGeneric = false;
      for (unsigned A = 0; A != 4; ++A)
        if (!(Acc[C][A] == AbsValue::entry(argReg(A))))
          NonGeneric = true;
      if (NonGeneric) {
        auto S = std::make_unique<State>(State::entry());
        for (unsigned A = 0; A != 4; ++A)
          S->setReg(argReg(A), Acc[C][A]);
        EntryFacts[C] = std::move(S);
        Sum.HasEntryFacts = true;
        // The body-pass fixpoint ran under the generic entry state; it no
        // longer matches this function's final configuration.
        Analyses[C].reset();
      }
    } else if (Sum.BudgetHit) {
      Sum.Contexts = static_cast<unsigned>(Keys[C].size());
    }

    // Contribute C's call sites to its callees' facts. Functions the call
    // graph proves unreachable from main never execute, so their sites
    // are irrelevant.
    const Function &Fn = M.functions()[C];
    if (Fn.empty() || Depth[C] == masm::InvalidIndex)
      continue;
    bool AnyEligibleSite = false;
    for (const CallSite &Site : CG.sitesIn(C))
      if (Site.known() && eligible(Site.Callee) && Site.Callee != C)
        AnyEligibleSite = true;
    if (!AnyEligibleSite)
      continue;

    // analysisFor rebuilds the fixpoint only when C's own entry facts just
    // invalidated the body-pass run; every caller processed here is final
    // (top-down order), so the cache entry is the one consumers see too.
    const FuncAnalysis &FA = *analysisFor(C);
    for (const CallSite &Site : CG.sitesIn(C)) {
      uint32_t Callee = Site.Callee;
      if (!Site.known() || Callee == C || !eligible(Callee) ||
          Summaries[Callee].BudgetHit)
        continue;
      State S = FA.AI.stateBefore(Site.InstrIdx);
      if (!S.Reachable)
        continue; // A site the abstraction proves dead never calls.
      std::array<AbsValue, 4> T;
      std::string Key;
      for (unsigned A = 0; A != 4; ++A) {
        T[A] = transportArg(S.reg(argReg(A)), S, argReg(A));
        Key += T[A].str();
        Key += '|';
      }
      if (Keys[Callee].insert(Key).second &&
          Keys[Callee].size() > Opts.MaxContextsPerFunction) {
        Summaries[Callee].BudgetHit = true;
        continue;
      }
      if (Contribs[Callee]++ == 0)
        Acc[Callee] = T;
      else
        for (unsigned A = 0; A != 4; ++A)
          Acc[Callee][A] = join(Acc[Callee][A], T[A]);
    }
  }
}

//===----------------------------------------------------------------------===//
// Soundness oracle
//===----------------------------------------------------------------------===//

bool ipa::containsValue(const AbsValue &A, const AbsValue &B) {
  if (A.isTop())
    return true;
  if (B.isTop())
    return false;
  if (A.Base != B.Base)
    return false;
  if (A.Lo != NegInf && (B.Lo == NegInf || B.Lo < A.Lo))
    return false;
  if (A.Hi != PosInf && (B.Hi == PosInf || B.Hi > A.Hi))
    return false;
  if (A.Stride == 0)
    return B.Stride == 0 && A.Lo == B.Lo;
  if (A.Stride == 1)
    return true;
  // Congruence is anchored at the finite end of the interval; without a
  // shared anchor the encoding makes no comparable claim.
  int64_t AAnchor, BAnchor;
  if (A.Lo != NegInf && B.Lo != NegInf) {
    AAnchor = A.Lo;
    BAnchor = B.Lo;
  } else if (A.Hi != PosInf && B.Hi != PosInf) {
    AAnchor = A.Hi;
    BAnchor = B.Hi;
  } else {
    return true;
  }
  int64_t St = static_cast<int64_t>(A.Stride);
  if (((BAnchor - AAnchor) % St + St) % St != 0)
    return false;
  return B.Stride == 0 || B.Stride % A.Stride == 0;
}

std::vector<std::string>
ipa::checkInterprocSoundness(const Module &M, const Layout &L, IpaOptions O) {
  O.Enable = true;
  ModuleSummaries MS(M, L, O);
  const CallGraph &CG = MS.graph();
  std::vector<std::string> Out;

  for (uint32_t C = 0; C != CG.numFunctions(); ++C) {
    const Function &CFn = M.functions()[C];
    if (CFn.empty() || CG.sitesIn(C).empty())
      continue;
    Interp::Options CIO = baseOptions(M, L, CFn);
    CIO.Calls = MS.callModelFor(C);
    CIO.EntryState = MS.entryStateFor(C);
    FuncAnalysis CA(CFn, CIO);

    for (const CallSite &Site : CG.sitesIn(C)) {
      if (!Site.known())
        continue;
      uint32_t Callee = Site.Callee;
      const Function &GFn = M.functions()[Callee];
      if (GFn.empty() || CG.isRecursive(Callee))
        continue;
      State S = CA.AI.stateBefore(Site.InstrIdx);
      if (!S.Reachable)
        continue;

      std::array<AbsValue, 4> T;
      for (unsigned A = 0; A != 4; ++A)
        T[A] = transportArg(S.reg(argReg(A)), S, argReg(A));

      // (a) Entry facts must cover this site's transported arguments —
      // except from callers the graph proves unreachable from main, whose
      // sites never execute and contribute nothing (mirrors
      // computeEntryFacts).
      if (const State *EF = MS.callDepth(C) != masm::InvalidIndex
                                ? MS.entryStateFor(Callee)
                                : nullptr)
        for (unsigned A = 0; A != 4; ++A)
          if (!containsValue(EF->reg(argReg(A)), T[A]))
            Out.push_back(formatString(
                "%s+%u -> %s: entry fact $a%u [%s] excludes call-site "
                "value [%s]",
                CFn.name().c_str(), Site.InstrIdx, GFn.name().c_str(), A,
                EF->reg(argReg(A)).str().c_str(), T[A].str().c_str()));

      CallEffect E = MS.callModelFor(C)->effectAt(Site.InstrIdx, S);
      if (!E.KnownRet)
        continue;

      // (b) Inline reference: interpret the callee with this site's
      // argument values; the summary-applied $v0 must contain it.
      State Entry = State::entry();
      for (unsigned A = 0; A != 4; ++A)
        Entry.setReg(argReg(A), T[A]);
      Interp::Options GIO = baseOptions(M, L, GFn);
      GIO.Calls = MS.callModelFor(Callee);
      GIO.EntryState = &Entry;
      FuncAnalysis GA(GFn, GIO);
      bool Any = false;
      AbsValue V0;
      for (uint32_t I = 0; I != GFn.size(); ++I) {
        const Instr &In = GFn.instrs()[I];
        if (In.Op != Opcode::Jr || In.Rs != Reg::RA)
          continue;
        State RS = GA.AI.stateBefore(I);
        if (!RS.Reachable)
          continue;
        AbsValue V = RS.reg(Reg::V0);
        V0 = Any ? join(V0, V) : V;
        Any = true;
      }
      if (!Any)
        continue;
      // Rebind the inlined value into caller terms the same way the call
      // model rebinds the summary. Function-local tokens are fresh
      // symbols on both sides and cannot be compared.
      AbsValue Inlined;
      if (V0.Base.K == SymBase::None) {
        Inlined = V0;
      } else if (V0.Base.K == SymBase::EntryReg && V0.Base.R != Reg::RA) {
        AbsValue Arg = S.reg(V0.Base.R);
        if (Arg.isTop())
          continue;
        AbsValue Off = V0;
        Off.Base = SymBase::none();
        Inlined = addValues(Arg, Off);
      } else {
        continue;
      }
      if (!containsValue(E.V0, Inlined))
        Out.push_back(formatString(
            "%s+%u -> %s: summary return [%s] excludes inlined return "
            "[%s]",
            CFn.name().c_str(), Site.InstrIdx, GFn.name().c_str(),
            E.V0.str().c_str(), Inlined.str().c_str()));
    }
  }
  return Out;
}
