//===- ipa/Summaries.h - Context-sensitive procedure summaries --------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural transfer summaries for the abstract interpreter. Per
/// function the pass computes, over the call graph:
///
///  - a return-value summary (RetV0): the callee's $v0 at its returns in
///    callee-entry terms (symbolic base x interval x stride), applied at
///    call sites by rebinding entry-register bases to the caller's actual
///    argument values;
///  - a memory-effect summary (WritesEscaped): whether the callee may,
///    transitively, store through any pointer reaching an ancestor frame —
///    when it cannot, the caller's known frame-slot values survive the call
///    instead of being havocked;
///  - argument-read facts (ReadsArg): whether $a0..$a3 are consumed before
///    being set, feeding the arg-use-before-set lint across call
///    boundaries;
///  - entry facts: the join of the argument-register abstract values over
///    every known call site, so `8($a0)` inside a callee resolves against
///    the caller's actual base.
///
/// Context sensitivity is budgeted, not exhaustive (Monniaux: the
/// complexity gap grows once calls are added): entry facts stop at
/// call-string depth ContextK from main, at MaxContextsPerFunction distinct
/// argument contexts per callee (beyond it the callee falls back to the
/// generic entry state = the old havoc behaviour), and at recursive SCCs,
/// whose members always get generic summaries. Cost is reported through
/// obs ("stage.ipa" span, ipa.contexts / ipa.budget_hits counters).
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_IPA_SUMMARIES_H
#define DLQ_IPA_SUMMARIES_H

#include "absint/Absint.h"
#include "ipa/CallGraph.h"
#include "masm/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace dlq {
namespace ipa {

/// Knobs for the summary computation. Part of pipeline cache keys: any new
/// field must be folded into Driver::evalKeyOf.
struct IpaOptions {
  /// Master switch. Off must reproduce the intraprocedural results
  /// bit-exactly (no summaries are computed or consulted).
  bool Enable = false;
  /// Entry facts are propagated at most this many call levels below main
  /// (k-limited call strings). Functions deeper than this keep the generic
  /// entry state.
  unsigned ContextK = 3;
  /// Distinct argument contexts tolerated per callee before its entry
  /// facts widen back to the generic state.
  unsigned MaxContextsPerFunction = 8;
};

/// Everything the pass proved about one function.
struct FuncSummary {
  /// RetV0 below is a sound abstraction of $v0 at every return, expressed
  /// in callee-entry terms (EntryReg bases refer to the callee's entry
  /// register values and are rebound at each call site).
  bool HasRet = false;
  absint::AbsValue RetV0;
  /// The function may (transitively) store through a pointer that reaches
  /// an ancestor stack frame. Conservative default: true.
  bool WritesEscaped = true;
  /// $a0..$a3 may be read before being redefined (directly or by
  /// forwarding to a callee that reads it).
  bool ReadsArg[4] = {false, false, false, false};
  /// Entry facts were computed (entryStateFor returns non-null).
  bool HasEntryFacts = false;
  /// Distinct argument contexts observed across the known call sites.
  unsigned Contexts = 0;
  /// The context budget was exhausted and entry facts were widened away.
  bool BudgetHit = false;
  /// Member of a recursive SCC (or self-recursive): summaries are the
  /// conservative generic ones.
  bool Recursive = false;
};

/// The module-wide summary database. Implements absint::InterprocInfo, so
/// AccessSummary / StaticFreq / Lint / camodel consume it without knowing
/// about src/ipa. Not thread-safe: build one per analysis thread.
class ModuleSummaries : public absint::InterprocInfo {
public:
  ModuleSummaries(const masm::Module &M, const masm::Layout &L,
                  IpaOptions Opts = IpaOptions());
  ~ModuleSummaries() override;

  const absint::CallModel *callModelFor(uint32_t FuncIdx) const override;
  const absint::State *entryStateFor(uint32_t FuncIdx) const override;
  bool calleeReadsArg(uint32_t CalleeIdx, unsigned ArgIdx) const override;
  /// The function's fixpoint under its final call model and entry facts.
  /// Populated by the summary passes where their own runs already match
  /// that configuration, completed lazily otherwise, so downstream
  /// consumers (collectAccessInfo, the pattern builder's clients) never
  /// pay for a second interpreter run per function.
  const absint::FuncAnalysis *analysisFor(uint32_t FuncIdx) const override;

  const CallGraph &graph() const { return CG; }
  const FuncSummary &summary(uint32_t F) const { return Summaries[F]; }
  /// Min known-call-graph depth of \p F below main; masm::InvalidIndex when
  /// the graph proves \p F unreachable from main. Entry facts treat call
  /// sites inside unreachable functions as dead (they never execute), so
  /// soundness claims about entry facts are scoped to reachable callers.
  uint32_t callDepth(uint32_t F) const { return Depth[F]; }
  const IpaOptions &options() const { return Opts; }
  const masm::Module &module() const { return M; }

private:
  class FunctionCallModel;

  const masm::Module &M;
  const masm::Layout &L;
  IpaOptions Opts;
  CallGraph CG;
  std::vector<FuncSummary> Summaries;
  std::vector<std::unique_ptr<FunctionCallModel>> Models;
  std::vector<std::unique_ptr<absint::State>> EntryFacts;
  /// Cached per-function fixpoints for analysisFor. Mutable for the lazy
  /// completion path; the class is documented single-thread anyway.
  mutable std::vector<std::unique_ptr<absint::FuncAnalysis>> Analyses;
  /// Min call levels from main over known edges; InvalidIndex = not
  /// reachable from main (or no main in the module).
  std::vector<uint32_t> Depth;

  void computeBodySummaries();
  void computeReadsArgs();
  void computeEntryFacts();
};

/// Interval/stride containment: every concrete value of \p B is a value of
/// \p A. Used by the fuzz oracle and the ipa tests; errs on the side of
/// "contained" only where the congruence encoding genuinely makes no claim.
bool containsValue(const absint::AbsValue &A, const absint::AbsValue &B);

/// Differential soundness check, for the fuzz oracle: at every known,
/// non-recursive call site, the summary-applied state must over-approximate
/// the state obtained by interpreting the callee inline with the actual
/// (transported) argument values. Returns human-readable violation
/// descriptions; empty means sound on this module.
std::vector<std::string> checkInterprocSoundness(const masm::Module &M,
                                                 const masm::Layout &L,
                                                 IpaOptions Opts = IpaOptions());

} // namespace ipa
} // namespace dlq

#endif // DLQ_IPA_SUMMARIES_H
