//===- jit/CodeBuffer.cpp --------------------------------------------------==//

#include "jit/CodeBuffer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define DLQ_JIT_HAVE_MMAP 1
#else
#define DLQ_JIT_HAVE_MMAP 0
#endif

using namespace dlq;
using namespace dlq::jit;

CodeBuffer::~CodeBuffer() {
#if DLQ_JIT_HAVE_MMAP
  for (Chunk &C : Chunks)
    if (C.Base)
      ::munmap(C.Base, C.Size);
#endif
}

CodeBuffer::Chunk *CodeBuffer::chunkWithRoom(size_t MinBytes) {
#if !DLQ_JIT_HAVE_MMAP
  (void)MinBytes;
  return nullptr;
#else
  if (!Chunks.empty()) {
    Chunk &Last = Chunks.back();
    if (Last.Size - Last.Used >= MinBytes)
      return &Last;
  }
  size_t Size = ChunkBytes;
  while (Size < MinBytes)
    Size += ChunkBytes;
  void *Mem = ::mmap(nullptr, Size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return nullptr;
  // Fresh chunks start RX like sealed ones, so the RW window opens only
  // inside a session.
  if (::mprotect(Mem, Size, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(Mem, Size);
    return nullptr;
  }
  Chunks.push_back(Chunk{static_cast<uint8_t *>(Mem), Size, 0});
  return &Chunks.back();
#endif
}

uint8_t *CodeBuffer::begin(size_t MinBytes) {
#if !DLQ_JIT_HAVE_MMAP
  (void)MinBytes;
  return nullptr;
#else
  if (SessionOpen || Broken || MinBytes == 0)
    return nullptr;
  Chunk *C = chunkWithRoom(MinBytes);
  if (!C)
    return nullptr;
  if (::mprotect(C->Base, C->Size, PROT_READ | PROT_WRITE) != 0) {
    Broken = true;
    return nullptr;
  }
  SessionOpen = true;
  return C->Base + C->Used;
#endif
}

bool CodeBuffer::commit(size_t Len) {
#if !DLQ_JIT_HAVE_MMAP
  (void)Len;
  return false;
#else
  if (!SessionOpen)
    return false;
  SessionOpen = false;
  Chunk &C = Chunks.back();
  if (::mprotect(C.Base, C.Size, PROT_READ | PROT_EXEC) != 0) {
    // Without RX the code cannot run; poison the buffer rather than risk
    // executing from a writable page.
    Broken = true;
    return false;
  }
  C.Used += Len;
  Committed += Len;
  return true;
#endif
}

void CodeBuffer::abort() {
#if DLQ_JIT_HAVE_MMAP
  if (!SessionOpen)
    return;
  SessionOpen = false;
  Chunk &C = Chunks.back();
  if (::mprotect(C.Base, C.Size, PROT_READ | PROT_EXEC) != 0)
    Broken = true;
#endif
}

bool jit::available() {
#if !defined(__x86_64__) || !DLQ_JIT_HAVE_MMAP
  return false;
#else
  // Probe once by emitting and running `mov eax, 0x2a; ret`. This exercises
  // the whole W^X path; a kernel that forbids it (hardened configs, some
  // seccomp jails) fails here and the simulator quietly keeps interpreting.
  static const bool Ok = [] {
    CodeBuffer Buf;
    uint8_t *P = Buf.begin(16);
    if (!P)
      return false;
    static const uint8_t Probe[] = {0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3};
    for (size_t I = 0; I != sizeof(Probe); ++I)
      P[I] = Probe[I];
    if (!Buf.commit(sizeof(Probe)))
      return false;
    using Fn = int (*)();
    return reinterpret_cast<Fn>(P)() == 0x2A;
  }();
  return Ok;
#endif
}
