//===- jit/CodeBuffer.h - W^X executable code storage -----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the executable memory the template JIT emits into. Code lives in
/// `mmap`ed chunks that are never writable and executable at the same time:
/// a chunk is RW only inside a begin()/commit() emission session and RX at
/// every other moment, including while guest code runs from it (W^X). The
/// compiler emits directly at the code's final address, so rel32
/// branches/chains can be resolved at emission time with no relocation pass.
///
/// Failure is graceful everywhere: if `mmap` or `mprotect` is refused (or
/// the host is not x86-64), begin() returns nullptr and the engine reports
/// itself unavailable, leaving the interpreter in charge.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_JIT_CODEBUFFER_H
#define DLQ_JIT_CODEBUFFER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlq {
namespace jit {

/// Executable code arena with W^X chunk management.
class CodeBuffer {
public:
  /// Chunks are multiples of this; single emissions must stay below it.
  static constexpr size_t ChunkBytes = 256 * 1024;

  CodeBuffer() = default;
  ~CodeBuffer();
  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;

  /// Opens an emission session and returns a writable span of at least
  /// \p MinBytes at the code's final address, or nullptr when executable
  /// memory cannot be obtained. The owning chunk is RW until commit()/abort().
  uint8_t *begin(size_t MinBytes);

  /// Seals \p Len bytes written at the span returned by begin() and flips
  /// the chunk back to RX. Returns false if mprotect refuses (the chunk is
  /// then discarded and the code must not be used).
  bool commit(size_t Len);

  /// Closes the session keeping nothing; the chunk returns to RX.
  void abort();

  /// Total committed code bytes across all chunks.
  size_t codeBytes() const { return Committed; }

private:
  struct Chunk {
    uint8_t *Base = nullptr;
    size_t Size = 0;
    size_t Used = 0;
  };

  Chunk *chunkWithRoom(size_t MinBytes);

  std::vector<Chunk> Chunks;
  size_t Committed = 0;
  bool SessionOpen = false;
  bool Broken = false; ///< An mprotect failed; refuse all further sessions.
};

/// True when this process can map and execute generated code (x86-64 host,
/// working `mmap`/`mprotect`). Probed once by actually running a generated
/// stub; the result is cached.
bool available();

} // namespace jit
} // namespace dlq

#endif // DLQ_JIT_CODEBUFFER_H
