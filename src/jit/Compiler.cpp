//===- jit/Compiler.cpp -----------------------------------------------------==//
//
// Template bodies for every compilable XOp. The conventions the templates
// share (fixed by the entry stub in Engine.cpp):
//
//   r12 = JitState*   rbx = Regs   r13 = guest flat memory
//   r14 = ExecCounts  rbp = CodePtrs
//
// rax/rcx/rdx/rsi/rdi/r8-r11 are scratch; guest register values live in
// memory slots [rbx + 4*reg] and never stay live across an instruction, so
// the out-of-line helper calls need no spills. Accounting is batched: the
// block prologue checks fuel for the whole block and bumps Executed and
// every ExecCounts slot up front; paths that bail mid-block (deopt) first
// subtract the not-yet-executed tail so the counter state a re-entering
// interpreter sees is exactly as if it had stepped to that instruction.
//
//===----------------------------------------------------------------------===//

#include "jit/Compiler.h"

#include "jit/JitState.h"

#include <cassert>
#include <deque>
#include <functional>
#include <vector>

using namespace dlq;
using namespace dlq::jit;
using sim::DecodedInstr;
using sim::XOp;

namespace {

/// Guest register-file slot displacement off rbx. Slot 32 (DiscardReg)
/// absorbs retargeted $zero writes, exactly like the interpreter.
int32_t regSlot(uint8_t R) { return int32_t(4) * R; }

constexpr uint8_t RegV0 = 2;
constexpr uint8_t RegRA = 31;
/// The sentinel return address `jr` recognizes as "main returned".
constexpr int32_t ExitPcImm = -4; // 0xFFFFFFFC as a 32-bit immediate

class BlockCompiler {
public:
  BlockCompiler(Emitter &Em, const CompileContext &Ctx, uint32_t Leader,
                unsigned Len)
      : Em(Em), Ctx(Ctx), Leader(Leader), Len(Len) {}

  bool emit();

private:
  Emitter::Label &newLabel() {
    Labels.emplace_back();
    return Labels.back();
  }

  /// Cold stub: roll back the counters for instructions K.. and exit with
  /// ExitDeopt at pc Leader+K. The dispatcher re-interprets that
  /// instruction, which re-counts it and reproduces the interpreter's trap
  /// (or its architected edge-case result) exactly.
  Emitter::Label &deoptStub(unsigned K);

  void emitPrologue();
  /// Returns true if \p I ended the block (emitted a terminal epilogue).
  bool emitInstr(const DecodedInstr &I, unsigned K);

  /// Terminal: continue at static target \p T (compiled-to-compiled direct
  /// jump when T is already compiled, else table-check-or-exit).
  void emitDispatch(uint32_t T);
  /// Terminal: continue at the flat pc in rax (jr/jalr).
  void emitDynamicDispatch();
  void emitExit(uint32_t Reason) {
    Em.storeImm32(R12, OffExitReason, Reason);
    Em.ret();
  }

  void emitAluRR(const DecodedInstr &I, XOp Op);
  void emitAluImm(const DecodedInstr &I, XOp Op);
  void emitShiftVar(const DecodedInstr &I, XOp Op);
  void emitDivRem(const DecodedInstr &I, unsigned K, bool IsRem);
  void emitLoad(const DecodedInstr &I, unsigned K);
  void emitStore(const DecodedInstr &I, unsigned K);
  void emitBranch(const DecodedInstr &I, Cond CC);
  void emitJr(const DecodedInstr &I, unsigned K);
  void emitJalr(const DecodedInstr &I, unsigned K);

  Emitter &Em;
  const CompileContext &Ctx;
  const uint32_t Leader;
  const unsigned Len;
  /// Stable label storage: cold-stub lambdas hold references into it.
  std::deque<Emitter::Label> Labels;
  /// Out-of-line code (slow memory paths, deopt/fuel stubs) emitted after
  /// the straight-line body so the hot path stays branch-fallthrough.
  std::vector<std::function<void()>> ColdStubs;
};

Emitter::Label &BlockCompiler::deoptStub(unsigned K) {
  Emitter::Label &L = newLabel();
  ColdStubs.push_back([this, &L, K] {
    Em.bind(L);
    for (unsigned I = K; I != Len; ++I)
      Em.addMemImm8_64(R14, int32_t(8 * (Leader + I)), -1);
    Em.subMemImm32_64(R12, OffExecuted, int32_t(Len - K));
    Em.movRegImm32(RAX, Leader + K);
    emitExit(ExitDeopt);
  });
  return L;
}

void BlockCompiler::emitPrologue() {
  // Fuel for the whole block at once: all Len instructions retire iff
  // Executed + Len <= MaxInstrs (the interpreter executes instruction i iff
  // Executed + i < MaxInstrs). On failure nothing has been counted yet, so
  // the fuel stub exits clean and the interpreter finds the exact halt
  // point one instruction at a time.
  Em.load64(RAX, R12, OffExecuted);
  Em.addRegImm64(RAX, int32_t(Len));
  Em.cmpReg64Mem(RAX, R12, OffMaxInstrs);
  Emitter::Label &Fuel = newLabel();
  Em.jcc(CC_A, Fuel);
  Em.store64(R12, OffExecuted, RAX);
  for (unsigned I = 0; I != Len; ++I)
    Em.addMemImm8_64(R14, int32_t(8 * (Leader + I)), 1);
  ColdStubs.push_back([this, &Fuel] {
    Em.bind(Fuel);
    Em.movRegImm32(RAX, Leader);
    emitExit(ExitFuel);
  });
}

void BlockCompiler::emitDispatch(uint32_t T) {
  if (const uint8_t *Known = Ctx.CodePtrs[T]) {
    Em.jmpAbs(Known);
    return;
  }
  Em.load64(RCX, RBP, int32_t(8 * T));
  Em.testRegReg64(RCX, RCX);
  Emitter::Label &Miss = newLabel();
  Em.jcc(CC_E, Miss);
  Em.jmpReg(RCX);
  Em.bind(Miss);
  Em.movRegImm32(RAX, T);
  emitExit(ExitDispatch);
}

void BlockCompiler::emitDynamicDispatch() {
  // rax = flat pc (zero-extended 32-bit). pc > FlatCount exits to the
  // dispatcher, whose out-of-text path matches BRANCH_TO; pc == FlatCount
  // indexes the sentinel slot, which is always null and exits the same way.
  Emitter::Label &Exit = newLabel();
  Em.cmpReg64Mem(RAX, R12, OffFlatCount);
  Em.jcc(CC_A, Exit);
  Em.load64Idx(RCX, RBP, RAX, 8);
  Em.testRegReg64(RCX, RCX);
  Em.jcc(CC_E, Exit);
  Em.jmpReg(RCX);
  Em.bind(Exit);
  emitExit(ExitDispatch);
}

void BlockCompiler::emitAluRR(const DecodedInstr &I, XOp Op) {
  Em.load32(RAX, RBX, regSlot(I.Rs));
  switch (Op) {
  case XOp::Add:
    Em.addRegMem32(RAX, RBX, regSlot(I.Rt));
    break;
  case XOp::Sub:
    Em.load32(RCX, RBX, regSlot(I.Rt));
    Em.subRegReg32(RAX, RCX);
    break;
  case XOp::Mul:
    // 32-bit imul == the interpreter's 64-bit product truncated to 32 bits.
    Em.load32(RCX, RBX, regSlot(I.Rt));
    Em.imulRegReg32(RAX, RCX);
    break;
  case XOp::And:
    Em.load32(RCX, RBX, regSlot(I.Rt));
    Em.andRegReg32(RAX, RCX);
    break;
  case XOp::Or:
    Em.load32(RCX, RBX, regSlot(I.Rt));
    Em.orRegReg32(RAX, RCX);
    break;
  case XOp::Xor:
    Em.load32(RCX, RBX, regSlot(I.Rt));
    Em.xorRegReg32(RAX, RCX);
    break;
  case XOp::Nor:
    Em.load32(RCX, RBX, regSlot(I.Rt));
    Em.orRegReg32(RAX, RCX);
    Em.notReg32(RAX);
    break;
  case XOp::Slt:
    Em.cmpRegMem32(RAX, RBX, regSlot(I.Rt));
    Em.setcc(CC_L, RAX);
    break;
  case XOp::Sltu:
    Em.cmpRegMem32(RAX, RBX, regSlot(I.Rt));
    Em.setcc(CC_B, RAX);
    break;
  default:
    assert(false && "not a reg-reg ALU op");
  }
  Em.store32(RBX, regSlot(I.Rd), RAX);
}

void BlockCompiler::emitAluImm(const DecodedInstr &I, XOp Op) {
  Em.load32(RAX, RBX, regSlot(I.Rs));
  switch (Op) {
  case XOp::Addi:
    if (I.Imm != 0)
      Em.addRegImm32(RAX, I.Imm);
    break;
  case XOp::Andi:
    Em.andRegImm32(RAX, I.Imm);
    break;
  case XOp::Ori:
    Em.orRegImm32(RAX, I.Imm);
    break;
  case XOp::Xori:
    Em.xorRegImm32(RAX, I.Imm);
    break;
  case XOp::Slti:
    Em.cmpRegImm32(RAX, I.Imm);
    Em.setcc(CC_L, RAX);
    break;
  case XOp::Sltiu:
    Em.cmpRegImm32(RAX, I.Imm);
    Em.setcc(CC_B, RAX);
    break;
  case XOp::Sll:
    Em.shlImm32(RAX, uint8_t(uint32_t(I.Imm) & 31));
    break;
  case XOp::Srl:
    Em.shrImm32(RAX, uint8_t(uint32_t(I.Imm) & 31));
    break;
  case XOp::Sra:
    Em.sarImm32(RAX, uint8_t(uint32_t(I.Imm) & 31));
    break;
  default:
    assert(false && "not a reg-imm ALU op");
  }
  Em.store32(RBX, regSlot(I.Rd), RAX);
}

void BlockCompiler::emitShiftVar(const DecodedInstr &I, XOp Op) {
  // x86 masks the cl count mod 32, which IS the guest's `& 31`.
  Em.load32(RCX, RBX, regSlot(I.Rt));
  Em.load32(RAX, RBX, regSlot(I.Rs));
  if (Op == XOp::Sllv)
    Em.shlCl32(RAX);
  else if (Op == XOp::Srlv)
    Em.shrCl32(RAX);
  else
    Em.sarCl32(RAX);
  Em.store32(RBX, regSlot(I.Rd), RAX);
}

void BlockCompiler::emitDivRem(const DecodedInstr &I, unsigned K, bool IsRem) {
  // idiv faults on divisor 0 (the interpreter traps: deopt) and on
  // INT_MIN/-1 (the interpreter defines the result: special-case -1).
  Em.load32(RAX, RBX, regSlot(I.Rs));
  Em.load32(RCX, RBX, regSlot(I.Rt));
  Em.testRegReg32(RCX, RCX);
  Em.jcc(CC_E, deoptStub(K));
  Em.cmpRegImm32(RCX, -1);
  if (IsRem) {
    // x % -1 == 0 for every x, including INT_MIN.
    Emitter::Label &Zero = newLabel(), &Done = newLabel();
    Em.jcc(CC_E, Zero);
    Em.cdq();
    Em.idivReg32(RCX);
    Em.store32(RBX, regSlot(I.Rd), RDX);
    Em.jmp(Done);
    Em.bind(Zero);
    Em.storeImm32(RBX, regSlot(I.Rd), 0);
    Em.bind(Done);
  } else {
    // x / -1 == -x, and neg INT_MIN wraps to INT_MIN — the defined result.
    Emitter::Label &Full = newLabel(), &Store = newLabel();
    Em.jcc(CC_NE, Full);
    Em.negReg32(RAX);
    Em.jmp(Store);
    Em.bind(Full);
    Em.cdq();
    Em.idivReg32(RCX);
    Em.bind(Store);
    Em.store32(RBX, regSlot(I.Rd), RAX);
  }
}

void BlockCompiler::emitLoad(const DecodedInstr &I, unsigned K) {
  unsigned Width = I.Op == XOp::Lw   ? 2
                   : I.Op == XOp::Lb ? 0
                   : I.Op == XOp::Lbu ? 0
                                      : 1;
  bool Signed = I.Op == XOp::Lh || I.Op == XOp::Lb;

  Em.load32(RSI, RBX, regSlot(I.Rs));
  if (I.Imm != 0)
    Em.addRegImm32(RSI, I.Imm);

  // Addresses whose access crosses the top of the 4 GiB space wrap byte-wise
  // in the interpreter; everything else — aligned or not — is a plain
  // little-endian host load at Flat+Addr. Only the wrap sliver (3 addresses
  // for words, 1 for halves, none for bytes) takes the out-of-line path.
  Emitter::Label *Slow = nullptr;
  if (Width != 0) {
    Slow = &newLabel();
    Em.cmpRegImm32(RSI, Width == 2 ? -4 : -2);
    Em.jcc(CC_A, *Slow);
  }
  if (Width == 2)
    Em.load32Idx(RAX, R13, RSI, 1);
  else if (Width == 1)
    Signed ? Em.loadSx16Idx(RAX, R13, RSI) : Em.loadZx16Idx(RAX, R13, RSI);
  else
    Signed ? Em.loadSx8Idx(RAX, R13, RSI) : Em.loadZx8Idx(RAX, R13, RSI);
  Em.store32(RBX, regSlot(I.Rd), RAX);
  // Cache accounting stays out of line; rsi still holds the address. Armed
  // loads hand the loaded value along (rax) — the prefetch engine's
  // pointer-chase entries use it as the next-element base.
  Em.movRegReg64(RDI, R12);
  Em.movRegImm32(RDX, Leader + K);
  if (I.Prefetch) {
    Em.movRegReg32(RCX, RAX);
    Em.callAbs(reinterpret_cast<const void *>(&dlqJitLoadAcctPf));
  } else {
    Em.callAbs(reinterpret_cast<const void *>(&dlqJitLoadAcct));
  }

  if (Slow) {
    Emitter::Label &After = newLabel();
    Em.bind(After);
    uint32_t Kind = Width | (Signed ? KindSigned : 0) |
                    (I.Prefetch ? KindPrefetch : 0);
    uint8_t Rd = I.Rd;
    uint32_t Pc = Leader + K;
    ColdStubs.push_back([this, Slow, &After, Kind, Rd, Pc] {
      Em.bind(*Slow);
      Em.movRegReg64(RDI, R12); // rsi = address, set on the hot path
      Em.movRegImm32(RDX, Pc);
      Em.movRegImm32(RCX, Kind);
      Em.callAbs(reinterpret_cast<const void *>(&dlqJitSlowLoad));
      Em.store32(RBX, regSlot(Rd), RAX);
      Em.jmp(After);
    });
  }
}

void BlockCompiler::emitStore(const DecodedInstr &I, unsigned K) {
  (void)K;
  unsigned Width = I.Op == XOp::Sw ? 2 : I.Op == XOp::Sh ? 1 : 0;

  Em.load32(RSI, RBX, regSlot(I.Rs));
  if (I.Imm != 0)
    Em.addRegImm32(RSI, I.Imm);
  Em.load32(RCX, RBX, regSlot(I.Rt));

  Emitter::Label *Slow = nullptr;
  if (Width != 0) {
    Slow = &newLabel();
    Em.cmpRegImm32(RSI, Width == 2 ? -4 : -2);
    Em.jcc(CC_A, *Slow);
  }
  if (Width == 2)
    Em.store32Idx(R13, RSI, RCX);
  else if (Width == 1)
    Em.store16Idx(R13, RSI, RCX);
  else
    Em.store8Idx(R13, RSI, RCX); // cl is a plain byte register
  Em.movRegReg64(RDI, R12);
  Em.callAbs(reinterpret_cast<const void *>(&dlqJitStoreAcct));

  if (Slow) {
    Emitter::Label &After = newLabel();
    Em.bind(After);
    uint32_t Kind = Width;
    ColdStubs.push_back([this, Slow, &After, Kind] {
      Em.bind(*Slow);
      Em.movRegReg64(RDI, R12); // rsi = address
      Em.movRegReg32(RDX, RCX); // value, before Kind lands in ecx
      Em.movRegImm32(RCX, Kind);
      Em.callAbs(reinterpret_cast<const void *>(&dlqJitSlowStore));
      Em.jmp(After);
    });
  }
}

void BlockCompiler::emitBranch(const DecodedInstr &I, Cond CC) {
  Em.load32(RAX, RBX, regSlot(I.Rs));
  Em.cmpRegMem32(RAX, RBX, regSlot(I.Rt));
  Emitter::Label &Taken = newLabel();
  Em.jcc(CC, Taken);
  emitDispatch(Leader + Len);
  Em.bind(Taken);
  emitDispatch(I.Target);
}

void BlockCompiler::emitJr(const DecodedInstr &I, unsigned K) {
  Em.load32(RAX, RBX, regSlot(I.Rs));
  // Sentinel return address: the guest exited with $v0.
  Em.cmpRegImm32(RAX, ExitPcImm);
  Emitter::Label &NotExit = newLabel();
  Em.jcc(CC_NE, NotExit);
  Em.load32(RCX, RBX, regSlot(RegV0));
  Em.store32(R12, OffExitCode, RCX);
  emitExit(ExitGuestExit);
  Em.bind(NotExit);
  // Bad targets (below text, misaligned) trap in the interpreter: deopt.
  Emitter::Label &Bad = deoptStub(K);
  Em.testRegImm32(RAX, 3);
  Em.jcc(CC_NE, Bad);
  Em.cmpRegImm32(RAX, int32_t(Ctx.TextBase));
  Em.jcc(CC_B, Bad);
  Em.addRegImm32(RAX, -int32_t(Ctx.TextBase));
  Em.shrImm32(RAX, 2);
  emitDynamicDispatch();
}

void BlockCompiler::emitJalr(const DecodedInstr &I, unsigned K) {
  Em.load32(RAX, RBX, regSlot(I.Rs));
  Emitter::Label &Bad = deoptStub(K);
  Em.testRegImm32(RAX, 3);
  Em.jcc(CC_NE, Bad);
  Em.cmpRegImm32(RAX, int32_t(Ctx.TextBase));
  Em.jcc(CC_B, Bad);
  // $ra is written only after the checks pass, like the interpreter.
  Em.storeImm32(RBX, regSlot(RegRA),
                Ctx.TextBase + uint32_t(Leader + K + 1) * 4);
  Em.addRegImm32(RAX, -int32_t(Ctx.TextBase));
  Em.shrImm32(RAX, 2);
  emitDynamicDispatch();
}

bool BlockCompiler::emitInstr(const DecodedInstr &I, unsigned K) {
  switch (I.Op) {
  case XOp::Add:
  case XOp::Sub:
  case XOp::Mul:
  case XOp::And:
  case XOp::Or:
  case XOp::Xor:
  case XOp::Nor:
  case XOp::Slt:
  case XOp::Sltu:
    emitAluRR(I, I.Op);
    return false;
  case XOp::Sllv:
  case XOp::Srlv:
  case XOp::Srav:
    emitShiftVar(I, I.Op);
    return false;
  case XOp::Addi:
  case XOp::Andi:
  case XOp::Ori:
  case XOp::Xori:
  case XOp::Slti:
  case XOp::Sltiu:
  case XOp::Sll:
  case XOp::Srl:
  case XOp::Sra:
    emitAluImm(I, I.Op);
    return false;
  case XOp::Div:
  case XOp::Rem:
    emitDivRem(I, K, I.Op == XOp::Rem);
    return false;
  case XOp::Lui:
    Em.storeImm32(RBX, regSlot(I.Rd), uint32_t(I.Imm) << 16);
    return false;
  case XOp::Li:
    Em.storeImm32(RBX, regSlot(I.Rd), uint32_t(I.Imm));
    return false;
  case XOp::Move:
    Em.load32(RAX, RBX, regSlot(I.Rs));
    Em.store32(RBX, regSlot(I.Rd), RAX);
    return false;
  case XOp::Nop:
    return false;
  case XOp::Lw:
  case XOp::Lh:
  case XOp::Lhu:
  case XOp::Lb:
  case XOp::Lbu:
    emitLoad(I, K);
    return false;
  case XOp::Sw:
  case XOp::Sh:
  case XOp::Sb:
    emitStore(I, K);
    return false;
  case XOp::Beq:
    emitBranch(I, CC_E);
    return true;
  case XOp::Bne:
    emitBranch(I, CC_NE);
    return true;
  case XOp::Blt:
    emitBranch(I, CC_L);
    return true;
  case XOp::Bge:
    emitBranch(I, CC_GE);
    return true;
  case XOp::Ble:
    emitBranch(I, CC_LE);
    return true;
  case XOp::Bgt:
    emitBranch(I, CC_G);
    return true;
  case XOp::J:
    emitDispatch(I.Target);
    return true;
  case XOp::Jr:
    emitJr(I, K);
    return true;
  case XOp::Jalr:
    emitJalr(I, K);
    return true;
  case XOp::CallFunc:
    Em.storeImm32(RBX, regSlot(RegRA),
                  Ctx.TextBase + uint32_t(Leader + K + 1) * 4);
    emitDispatch(I.Target);
    return true;
  case XOp::CallRuntime: {
    Em.movRegReg64(RDI, R12);
    Em.movRegImm32(RSI, I.Target);
    Em.callAbs(reinterpret_cast<const void *>(&dlqJitRuntimeCall));
    Em.testRegReg32(RAX, RAX);
    Emitter::Label &Halt = newLabel();
    Em.jcc(CC_NE, Halt);
    emitDispatch(Leader + Len);
    Em.bind(Halt);
    emitExit(ExitRuntimeHalt);
    return true;
  }
  default:
    assert(false && "scanBlockLen admitted a non-compilable op");
    return true;
  }
}

bool BlockCompiler::emit() {
  emitPrologue();
  bool Terminated = false;
  for (unsigned K = 0; K != Len; ++K)
    Terminated = emitInstr(Ctx.Code[Leader + K], K);
  if (!Terminated)
    emitDispatch(Leader + Len);
  for (const std::function<void()> &Cold : ColdStubs)
    Cold();
  return Em.ok();
}

} // namespace

unsigned jit::scanBlockLen(const CompileContext &Ctx, uint32_t Leader) {
  unsigned Len = 0;
  // The stream carries an OutOfText sentinel at FlatCount, so scanning one
  // past the last real instruction is safe; the sentinel ends the block via
  // the default case.
  while (Len < Ctx.MaxBlockInstrs) {
    const DecodedInstr &I = Ctx.Code[Leader + Len];
    switch (I.Op) {
    case XOp::Beq:
    case XOp::Bne:
    case XOp::Blt:
    case XOp::Bge:
    case XOp::Ble:
    case XOp::Bgt:
    case XOp::J:
    case XOp::CallFunc:
      // Decoder-verified targets are in range; a stale one would trap in the
      // interpreter's BRANCH_TO, so leave it to the interpreter.
      if (I.Target > Ctx.FlatCount)
        return Len;
      return Len + 1;
    case XOp::Jr:
    case XOp::Jalr:
    case XOp::CallRuntime:
      return Len + 1;
    case XOp::CallUnresolved:
    case XOp::LaUnresolved:
    case XOp::OutOfText:
      return Len;
    default:
      if (sim::isFusedXOp(I.Op))
        return Len; // The engine predecodes unfused; defensive only.
      ++Len;
      continue;
    }
  }
  return Len;
}

bool jit::compileBlockBody(Emitter &Em, const CompileContext &Ctx,
                           uint32_t Leader, unsigned Len) {
  assert(Len != 0 && Len <= Ctx.MaxBlockInstrs);
  return BlockCompiler(Em, Ctx, Leader, Len).emit();
}
