//===- jit/Compiler.h - Basic-block template compiler -----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles one guest basic block — a contiguous run of predecoded
/// instructions from a leader up to and including the first control
/// transfer — into x86-64 using per-XOp templates (see jit/Engine.h for the
/// protocol and register pinning). The compiler is a pure function of the
/// predecoded stream: the engine owns hotness, buffers and the dispatch
/// loop.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_JIT_COMPILER_H
#define DLQ_JIT_COMPILER_H

#include "jit/Emitter.h"
#include "sim/Decode.h"

#include <cstdint>

namespace dlq {
namespace jit {

/// Everything block compilation reads. `CodePtrs[Leader]` must already
/// point at the emission address so self-loops chain with a direct jump.
struct CompileContext {
  const sim::DecodedInstr *Code; ///< Predecoded stream (UNFUSED), + sentinel.
  uint64_t FlatCount;            ///< Logical instruction count.
  const uint8_t *const *CodePtrs; ///< Live compiled-block table.
  uint32_t TextBase;             ///< masm text base address.
  uint32_t MaxBlockInstrs;       ///< Block length cap.
};

/// Length of the compilable block at \p Leader: instructions from the leader
/// up to and including the first terminator (branch/jump/call), stopping
/// before anything only the interpreter handles (unresolved calls/la, the
/// out-of-text sentinel, fused superinstructions). 0 = the leader itself is
/// not compilable.
unsigned scanBlockLen(const CompileContext &Ctx, uint32_t Leader);

/// Emits the block body (prologue, templates, epilogue, cold stubs) for the
/// \p Len instructions at \p Leader into \p Em. Returns Em.ok().
bool compileBlockBody(Emitter &Em, const CompileContext &Ctx, uint32_t Leader,
                      unsigned Len);

} // namespace jit
} // namespace dlq

#endif // DLQ_JIT_COMPILER_H
