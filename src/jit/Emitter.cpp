//===- jit/Emitter.cpp ------------------------------------------------------==//

#include "jit/Emitter.h"

#include <cassert>
#include <cstring>

using namespace dlq;
using namespace dlq::jit;

void Emitter::u8(uint8_t B) {
  if (Pos >= Cap) {
    Overflow = true;
    return;
  }
  Base[Pos++] = B;
}

void Emitter::u32(uint32_t V) {
  if (Pos + 4 > Cap) {
    Overflow = true;
    Pos = Cap;
    return;
  }
  std::memcpy(Base + Pos, &V, 4);
  Pos += 4;
}

void Emitter::u64(uint64_t V) {
  if (Pos + 8 > Cap) {
    Overflow = true;
    Pos = Cap;
    return;
  }
  std::memcpy(Base + Pos, &V, 8);
  Pos += 8;
}

void Emitter::patch32(size_t At, uint32_t V) {
  if (At + 4 > Cap) {
    Overflow = true;
    return;
  }
  std::memcpy(Base + At, &V, 4);
}

void Emitter::rex(bool W, unsigned Reg, unsigned Index, unsigned Base_) {
  uint8_t B = 0x40;
  if (W)
    B |= 0x08;
  if (Reg & 8)
    B |= 0x04;
  if (Index & 8)
    B |= 0x02;
  if (Base_ & 8)
    B |= 0x01;
  if (B != 0x40)
    u8(B);
}

void Emitter::memOp(bool W, uint8_t Op1, uint8_t Op2, unsigned Reg, unsigned B,
                    int Index, uint8_t Scale, int32_t Disp, bool OpSize16) {
  assert(Index != RSP && "rsp cannot be an index register");
  if (OpSize16)
    u8(0x66);
  rex(W, Reg, Index >= 0 ? unsigned(Index) : 0, B);
  u8(Op1);
  if (Op2)
    u8(Op2);

  // mod: rbp/r13 bases have no disp-less form; otherwise pick the shortest.
  unsigned Mod;
  if (Disp == 0 && (B & 7) != RBP)
    Mod = 0;
  else if (Disp >= -128 && Disp <= 127)
    Mod = 1;
  else
    Mod = 2;

  bool NeedSib = Index >= 0 || (B & 7) == RSP;
  unsigned RmField = NeedSib ? unsigned(RSP) : (B & 7);
  u8(uint8_t((Mod << 6) | ((Reg & 7) << 3) | RmField));
  if (NeedSib) {
    unsigned Ss = Scale == 8 ? 3 : Scale == 4 ? 2 : Scale == 2 ? 1 : 0;
    unsigned Idx = Index >= 0 ? (unsigned(Index) & 7) : unsigned(RSP); // rsp = no index
    u8(uint8_t((Ss << 6) | (Idx << 3) | (B & 7)));
  }
  if (Mod == 1)
    u8(uint8_t(int8_t(Disp)));
  else if (Mod == 2)
    u32(uint32_t(Disp));
}

void Emitter::regOp(bool W, uint8_t Op1, uint8_t Op2, unsigned Reg,
                    unsigned Rm) {
  rex(W, Reg, 0, Rm);
  u8(Op1);
  if (Op2)
    u8(Op2);
  u8(uint8_t(0xC0 | ((Reg & 7) << 3) | (Rm & 7)));
}

// -- labels ------------------------------------------------------------------

void Emitter::bind(Label &L) {
  assert(!L.bound() && "label bound twice");
  L.Pos = Pos;
  for (size_t FixAt : L.Fixups)
    patch32(FixAt, uint32_t(int32_t(Pos - (FixAt + 4))));
  L.Fixups.clear();
}

void Emitter::jmp(Label &L) {
  u8(0xE9);
  if (L.bound()) {
    u32(uint32_t(int32_t(L.Pos - (Pos + 4))));
  } else {
    L.Fixups.push_back(Pos);
    u32(0);
  }
}

void Emitter::jcc(Cond CC, Label &L) {
  u8(0x0F);
  u8(uint8_t(0x80 | CC));
  if (L.bound()) {
    u32(uint32_t(int32_t(L.Pos - (Pos + 4))));
  } else {
    L.Fixups.push_back(Pos);
    u32(0);
  }
}

void Emitter::jmpAbs(const uint8_t *Target) {
  // rel32 when the displacement fits; the emission address is final so this
  // is exact.
  const uint8_t *Next = Base + Pos + 5;
  int64_t Delta = Target - Next;
  if (Delta >= INT32_MIN && Delta <= INT32_MAX) {
    u8(0xE9);
    u32(uint32_t(int32_t(Delta)));
    return;
  }
  movRegImm64(R11, reinterpret_cast<uintptr_t>(Target));
  jmpReg(R11);
}

void Emitter::callAbs(const void *Fn) {
  movRegImm64(R11, reinterpret_cast<uintptr_t>(Fn));
  callReg(R11);
}

// -- moves -------------------------------------------------------------------

void Emitter::movRegImm32(HostReg Dst, uint32_t Imm) {
  rex(false, 0, 0, Dst);
  u8(uint8_t(0xB8 | (Dst & 7)));
  u32(Imm);
}

void Emitter::movRegImm64(HostReg Dst, uint64_t Imm) {
  if (Imm <= UINT32_MAX) {
    movRegImm32(Dst, uint32_t(Imm)); // zero-extends
    return;
  }
  rex(true, 0, 0, Dst);
  u8(uint8_t(0xB8 | (Dst & 7)));
  u64(Imm);
}

void Emitter::movRegReg64(HostReg Dst, HostReg Src) {
  regOp(true, 0x8B, 0, Dst, Src);
}

void Emitter::movRegReg32(HostReg Dst, HostReg Src) {
  regOp(false, 0x8B, 0, Dst, Src);
}

// -- [base + disp] -----------------------------------------------------------

void Emitter::load32(HostReg Dst, HostReg B, int32_t Disp) {
  memOp(false, 0x8B, 0, Dst, B, -1, 1, Disp);
}

void Emitter::load64(HostReg Dst, HostReg B, int32_t Disp) {
  memOp(true, 0x8B, 0, Dst, B, -1, 1, Disp);
}

void Emitter::store32(HostReg B, int32_t Disp, HostReg Src) {
  memOp(false, 0x89, 0, Src, B, -1, 1, Disp);
}

void Emitter::store64(HostReg B, int32_t Disp, HostReg Src) {
  memOp(true, 0x89, 0, Src, B, -1, 1, Disp);
}

void Emitter::storeImm32(HostReg B, int32_t Disp, uint32_t Imm) {
  memOp(false, 0xC7, 0, 0, B, -1, 1, Disp);
  u32(Imm);
}

void Emitter::addMemImm8_64(HostReg B, int32_t Disp, int8_t Imm) {
  memOp(true, 0x83, 0, 0, B, -1, 1, Disp); // /0 = add
  u8(uint8_t(Imm));
}

void Emitter::subMemImm32_64(HostReg B, int32_t Disp, int32_t Imm) {
  if (Imm >= -128 && Imm <= 127) {
    memOp(true, 0x83, 0, 5, B, -1, 1, Disp); // /5 = sub, imm8
    u8(uint8_t(int8_t(Imm)));
    return;
  }
  memOp(true, 0x81, 0, 5, B, -1, 1, Disp);
  u32(uint32_t(Imm));
}

void Emitter::cmpReg64Mem(HostReg R, HostReg B, int32_t Disp) {
  memOp(true, 0x3B, 0, R, B, -1, 1, Disp);
}

// -- [base + index*scale] ----------------------------------------------------

void Emitter::load32Idx(HostReg Dst, HostReg B, HostReg Idx, uint8_t Scale) {
  memOp(false, 0x8B, 0, Dst, B, Idx, Scale, 0);
}

void Emitter::load64Idx(HostReg Dst, HostReg B, HostReg Idx, uint8_t Scale) {
  memOp(true, 0x8B, 0, Dst, B, Idx, Scale, 0);
}

void Emitter::loadSx8Idx(HostReg Dst, HostReg B, HostReg Idx) {
  memOp(false, 0x0F, 0xBE, Dst, B, Idx, 1, 0);
}

void Emitter::loadZx8Idx(HostReg Dst, HostReg B, HostReg Idx) {
  memOp(false, 0x0F, 0xB6, Dst, B, Idx, 1, 0);
}

void Emitter::loadSx16Idx(HostReg Dst, HostReg B, HostReg Idx) {
  memOp(false, 0x0F, 0xBF, Dst, B, Idx, 1, 0);
}

void Emitter::loadZx16Idx(HostReg Dst, HostReg B, HostReg Idx) {
  memOp(false, 0x0F, 0xB7, Dst, B, Idx, 1, 0);
}

void Emitter::store32Idx(HostReg B, HostReg Idx, HostReg Src) {
  memOp(false, 0x89, 0, Src, B, Idx, 1, 0);
}

void Emitter::store16Idx(HostReg B, HostReg Idx, HostReg Src) {
  memOp(false, 0x89, 0, Src, B, Idx, 1, 0, /*OpSize16=*/true);
}

void Emitter::store8Idx(HostReg B, HostReg Idx, HostReg Src) {
  // Without REX only al/cl/dl/bl encode as byte registers; templates keep
  // store values in eax/ecx/edx so no REX juggling is needed.
  assert(Src < 4 && "byte store source must be rax/rcx/rdx/rbx");
  memOp(false, 0x88, 0, Src, B, Idx, 1, 0);
}

// -- ALU ---------------------------------------------------------------------

void Emitter::addRegReg32(HostReg Dst, HostReg Src) {
  regOp(false, 0x03, 0, Dst, Src);
}

void Emitter::addRegMem32(HostReg Dst, HostReg B, int32_t Disp) {
  memOp(false, 0x03, 0, Dst, B, -1, 1, Disp);
}

void Emitter::subRegReg32(HostReg Dst, HostReg Src) {
  regOp(false, 0x2B, 0, Dst, Src);
}

void Emitter::andRegReg32(HostReg Dst, HostReg Src) {
  regOp(false, 0x23, 0, Dst, Src);
}

void Emitter::orRegReg32(HostReg Dst, HostReg Src) {
  regOp(false, 0x0B, 0, Dst, Src);
}

void Emitter::xorRegReg32(HostReg Dst, HostReg Src) {
  regOp(false, 0x33, 0, Dst, Src);
}

void Emitter::imulRegReg32(HostReg Dst, HostReg Src) {
  regOp(false, 0x0F, 0xAF, Dst, Src);
}

void Emitter::notReg32(HostReg R) { regOp(false, 0xF7, 0, 2, R); }

void Emitter::negReg32(HostReg R) { regOp(false, 0xF7, 0, 3, R); }

static bool fitsImm8(int32_t V) { return V >= -128 && V <= 127; }

void Emitter::addRegImm32(HostReg Dst, int32_t Imm) {
  if (fitsImm8(Imm)) {
    regOp(false, 0x83, 0, 0, Dst);
    u8(uint8_t(int8_t(Imm)));
  } else {
    regOp(false, 0x81, 0, 0, Dst);
    u32(uint32_t(Imm));
  }
}

void Emitter::andRegImm32(HostReg Dst, int32_t Imm) {
  if (fitsImm8(Imm)) {
    regOp(false, 0x83, 0, 4, Dst);
    u8(uint8_t(int8_t(Imm)));
  } else {
    regOp(false, 0x81, 0, 4, Dst);
    u32(uint32_t(Imm));
  }
}

void Emitter::orRegImm32(HostReg Dst, int32_t Imm) {
  if (fitsImm8(Imm)) {
    regOp(false, 0x83, 0, 1, Dst);
    u8(uint8_t(int8_t(Imm)));
  } else {
    regOp(false, 0x81, 0, 1, Dst);
    u32(uint32_t(Imm));
  }
}

void Emitter::xorRegImm32(HostReg Dst, int32_t Imm) {
  if (fitsImm8(Imm)) {
    regOp(false, 0x83, 0, 6, Dst);
    u8(uint8_t(int8_t(Imm)));
  } else {
    regOp(false, 0x81, 0, 6, Dst);
    u32(uint32_t(Imm));
  }
}

void Emitter::addRegImm64(HostReg Dst, int32_t Imm) {
  if (fitsImm8(Imm)) {
    regOp(true, 0x83, 0, 0, Dst);
    u8(uint8_t(int8_t(Imm)));
  } else {
    regOp(true, 0x81, 0, 0, Dst);
    u32(uint32_t(Imm));
  }
}

void Emitter::cmpRegReg32(HostReg A, HostReg B) {
  regOp(false, 0x3B, 0, A, B);
}

void Emitter::cmpRegMem32(HostReg A, HostReg B, int32_t Disp) {
  memOp(false, 0x3B, 0, A, B, -1, 1, Disp);
}

void Emitter::cmpRegImm32(HostReg R, int32_t Imm) {
  if (fitsImm8(Imm)) {
    regOp(false, 0x83, 0, 7, R);
    u8(uint8_t(int8_t(Imm)));
  } else {
    regOp(false, 0x81, 0, 7, R);
    u32(uint32_t(Imm));
  }
}

void Emitter::testRegReg32(HostReg A, HostReg B) {
  regOp(false, 0x85, 0, B, A); // test rm, reg
}

void Emitter::testRegReg64(HostReg A, HostReg B) {
  regOp(true, 0x85, 0, B, A);
}

void Emitter::testRegImm32(HostReg R, uint32_t Imm) {
  regOp(false, 0xF7, 0, 0, R);
  u32(Imm);
}

void Emitter::shlImm32(HostReg R, uint8_t Imm) {
  regOp(false, 0xC1, 0, 4, R);
  u8(Imm);
}

void Emitter::shrImm32(HostReg R, uint8_t Imm) {
  regOp(false, 0xC1, 0, 5, R);
  u8(Imm);
}

void Emitter::sarImm32(HostReg R, uint8_t Imm) {
  regOp(false, 0xC1, 0, 7, R);
  u8(Imm);
}

void Emitter::shlCl32(HostReg R) { regOp(false, 0xD3, 0, 4, R); }

void Emitter::shrCl32(HostReg R) { regOp(false, 0xD3, 0, 5, R); }

void Emitter::sarCl32(HostReg R) { regOp(false, 0xD3, 0, 7, R); }

void Emitter::cdq() { u8(0x99); }

void Emitter::idivReg32(HostReg R) { regOp(false, 0xF7, 0, 7, R); }

void Emitter::setcc(Cond CC, HostReg Dst) {
  // SETcc on spl/bpl/sil/dil needs a REX prefix even without high bits set.
  if (Dst >= RSP && Dst <= RDI)
    u8(0x40);
  else
    rex(false, 0, 0, Dst);
  u8(0x0F);
  u8(uint8_t(0x90 | CC));
  u8(uint8_t(0xC0 | (Dst & 7)));
  // movzx Dst32, Dst8 — same REX-for-sil/dil rule applies to the source.
  if (Dst >= RSP && Dst <= RDI)
    u8(0x40);
  else
    rex(false, Dst, 0, Dst);
  u8(0x0F);
  u8(0xB6);
  u8(uint8_t(0xC0 | ((Dst & 7) << 3) | (Dst & 7)));
}

// -- control -----------------------------------------------------------------

void Emitter::callReg(HostReg R) { regOp(false, 0xFF, 0, 2, R); }

void Emitter::jmpReg(HostReg R) { regOp(false, 0xFF, 0, 4, R); }

void Emitter::ret() { u8(0xC3); }

void Emitter::push(HostReg R) {
  rex(false, 0, 0, R);
  u8(uint8_t(0x50 | (R & 7)));
}

void Emitter::pop(HostReg R) {
  rex(false, 0, 0, R);
  u8(uint8_t(0x58 | (R & 7)));
}
