//===- jit/Emitter.h - x86-64 instruction encoder ---------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal x86-64 encoder for the template JIT: exactly the instruction
/// forms the block compiler's handler templates need, nothing more. The
/// emitter writes directly into the code's final address (a CodeBuffer
/// session), so absolute targets and cross-block rel32 chains are resolved
/// as they are emitted; only intra-block forward branches go through Label
/// fixups (always rel32 — template code is not size-critical on cold edges).
///
/// Encoding notes the templates rely on:
///  - 32-bit destination writes zero the upper half, so a guest value held
///    in eax/esi can index the flat 4 GiB guest memory as `[r13 + rsi]`
///    without masking.
///  - r12/rsp as a base always takes a SIB byte; rbp/r13 as a base always
///    takes a displacement. memOp() hides both quirks.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_JIT_EMITTER_H
#define DLQ_JIT_EMITTER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlq {
namespace jit {

/// Host register numbers (x86-64 encoding order).
enum HostReg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// Condition codes (the `cc` nibble of Jcc/SETcc).
enum Cond : uint8_t {
  CC_O = 0x0,
  CC_B = 0x2,  ///< unsigned <
  CC_AE = 0x3, ///< unsigned >=
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6, ///< unsigned <=
  CC_A = 0x7,  ///< unsigned >
  CC_S = 0x8,
  CC_L = 0xC,  ///< signed <
  CC_GE = 0xD, ///< signed >=
  CC_LE = 0xE, ///< signed <=
  CC_G = 0xF,  ///< signed >
};

/// Writes instructions into a fixed-capacity span at its final address.
/// Overflow latches a flag instead of writing out of bounds; callers check
/// ok() once after emission.
class Emitter {
public:
  Emitter(uint8_t *Base, size_t Capacity) : Base(Base), Cap(Capacity) {}

  const uint8_t *base() const { return Base; }
  size_t size() const { return Pos; }
  bool ok() const { return !Overflow; }
  /// Address the NEXT byte will land at.
  const uint8_t *pc() const { return Base + Pos; }

  /// An intra-emission branch target; forward references patch rel32 slots
  /// on bind().
  struct Label {
    size_t Pos = SIZE_MAX;
    std::vector<size_t> Fixups; ///< Offsets of pending rel32 slots.
    bool bound() const { return Pos != SIZE_MAX; }
  };

  void bind(Label &L);
  void jmp(Label &L);            ///< E9 rel32.
  void jcc(Cond CC, Label &L);   ///< 0F 8x rel32.

  /// `jmp` to an absolute address: rel32 when reachable, else through r11.
  void jmpAbs(const uint8_t *Target);
  /// `call` to an absolute address through r11 (clobbers r11).
  void callAbs(const void *Fn);

  // -- moves ---------------------------------------------------------------
  void movRegImm32(HostReg Dst, uint32_t Imm);       ///< B8+r id (zero-ext).
  void movRegImm64(HostReg Dst, uint64_t Imm);       ///< REX.W B8+r io.
  void movRegReg64(HostReg Dst, HostReg Src);        ///< REX.W 8B /r.
  void movRegReg32(HostReg Dst, HostReg Src);        ///< 8B /r.

  // -- memory, [Base + Disp] ----------------------------------------------
  void load32(HostReg Dst, HostReg B, int32_t Disp);  ///< mov r32, [B+d].
  void load64(HostReg Dst, HostReg B, int32_t Disp);  ///< mov r64, [B+d].
  void store32(HostReg B, int32_t Disp, HostReg Src); ///< mov [B+d], r32.
  void store64(HostReg B, int32_t Disp, HostReg Src); ///< mov [B+d], r64.
  void storeImm32(HostReg B, int32_t Disp, uint32_t Imm); ///< mov dword.
  void addMemImm8_64(HostReg B, int32_t Disp, int8_t Imm); ///< add qword.
  void subMemImm32_64(HostReg B, int32_t Disp, int32_t Imm); ///< sub qword.
  void cmpReg64Mem(HostReg R, HostReg B, int32_t Disp);    ///< cmp r64,[B+d].

  // -- memory, [Base + Index*Scale] (guest flat memory / code tables) ------
  void load32Idx(HostReg Dst, HostReg B, HostReg Idx, uint8_t Scale);
  void load64Idx(HostReg Dst, HostReg B, HostReg Idx, uint8_t Scale);
  void loadSx8Idx(HostReg Dst, HostReg B, HostReg Idx);  ///< movsx r32, byte.
  void loadZx8Idx(HostReg Dst, HostReg B, HostReg Idx);  ///< movzx r32, byte.
  void loadSx16Idx(HostReg Dst, HostReg B, HostReg Idx); ///< movsx r32, word.
  void loadZx16Idx(HostReg Dst, HostReg B, HostReg Idx); ///< movzx r32, word.
  void store32Idx(HostReg B, HostReg Idx, HostReg Src);
  void store16Idx(HostReg B, HostReg Idx, HostReg Src); ///< 66 89 /r.
  void store8Idx(HostReg B, HostReg Idx, HostReg Src);  ///< 88 /r (Src<4).

  // -- ALU -----------------------------------------------------------------
  void addRegReg32(HostReg Dst, HostReg Src);
  void addRegMem32(HostReg Dst, HostReg B, int32_t Disp); ///< add r32,[B+d].
  void subRegReg32(HostReg Dst, HostReg Src);
  void andRegReg32(HostReg Dst, HostReg Src);
  void orRegReg32(HostReg Dst, HostReg Src);
  void xorRegReg32(HostReg Dst, HostReg Src);
  void imulRegReg32(HostReg Dst, HostReg Src); ///< 0F AF /r.
  void notReg32(HostReg R);
  void negReg32(HostReg R);
  void addRegImm32(HostReg Dst, int32_t Imm);
  void andRegImm32(HostReg Dst, int32_t Imm);
  void orRegImm32(HostReg Dst, int32_t Imm);
  void xorRegImm32(HostReg Dst, int32_t Imm);
  void addRegImm64(HostReg Dst, int32_t Imm); ///< REX.W add (sign-ext imm).
  void cmpRegReg32(HostReg A, HostReg B);
  void cmpRegMem32(HostReg A, HostReg B, int32_t Disp); ///< cmp r32,[B+d].
  void cmpRegImm32(HostReg R, int32_t Imm);
  void testRegReg32(HostReg A, HostReg B);
  void testRegReg64(HostReg A, HostReg B);
  void testRegImm32(HostReg R, uint32_t Imm); ///< F7 /0 id.
  void shlImm32(HostReg R, uint8_t Imm);
  void shrImm32(HostReg R, uint8_t Imm);
  void sarImm32(HostReg R, uint8_t Imm);
  void shlCl32(HostReg R); ///< D3 /4 (count in cl, masked mod 32).
  void shrCl32(HostReg R);
  void sarCl32(HostReg R);
  void cdq();              ///< 99.
  void idivReg32(HostReg R); ///< F7 /7.
  void setcc(Cond CC, HostReg Dst); ///< SETcc dst8 + movzx dst32, dst8.

  // -- control -------------------------------------------------------------
  void callReg(HostReg R);
  void jmpReg(HostReg R);
  void ret();
  void push(HostReg R);
  void pop(HostReg R);

private:
  void u8(uint8_t B);
  void u32(uint32_t V);
  void u64(uint64_t V);
  void patch32(size_t At, uint32_t V);
  /// REX prefix; emitted only when a bit is set.
  void rex(bool W, unsigned Reg, unsigned Index, unsigned Base);
  /// Opcode + ModRM (+SIB +disp) for reg, [Base+Disp] with optional index.
  /// \p Op2 == 0 means a one-byte opcode.
  void memOp(bool W, uint8_t Op1, uint8_t Op2, unsigned Reg, unsigned B,
             int Index, uint8_t Scale, int32_t Disp, bool OpSize16 = false);
  /// Opcode + ModRM for reg, reg.
  void regOp(bool W, uint8_t Op1, uint8_t Op2, unsigned Reg, unsigned Rm);

  uint8_t *Base;
  size_t Cap;
  size_t Pos = 0;
  bool Overflow = false;
};

} // namespace jit
} // namespace dlq

#endif // DLQ_JIT_EMITTER_H
