//===- jit/Engine.cpp -------------------------------------------------------==//

#include "jit/Engine.h"

#include "jit/Compiler.h"
#include "masm/Module.h"
#include "obs/Trace.h"
#include "prefetch/Prefetch.h"
#include "support/Format.h"

#include <cassert>

using namespace dlq;
using namespace dlq::jit;
using sim::DecodedInstr;
using sim::HaltReason;
using sim::RunResult;
using sim::XOp;

namespace {

constexpr uint32_t ExitPcSentinel = 0xFFFFFFFC;
constexpr uint8_t RegV0 = 2;
constexpr uint8_t RegRA = 31;

/// Ops after which interpretBlockStep returns to the dispatcher: control
/// transfers plus runtime calls (whose successor is a block leader in
/// compiled code, so it should age on the hotness ramp too).
bool isControlOp(XOp Op) {
  switch (Op) {
  case XOp::Beq:
  case XOp::Bne:
  case XOp::Blt:
  case XOp::Bge:
  case XOp::Ble:
  case XOp::Bgt:
  case XOp::J:
  case XOp::Jr:
  case XOp::Jalr:
  case XOp::CallFunc:
  case XOp::CallRuntime:
    return true;
  default:
    return false;
  }
}

} // namespace

Engine::Engine(const sim::DecodedProgram &Prog, sim::Memory &Mem,
               sim::Cache &DCache, uint32_t *Regs, uint64_t MaxInstrs,
               uint32_t PrefetchStride, prefetch::Engine *Pf,
               const EngineOptions &Opts, EngineCallbacks Callbacks)
    : Prog(Prog), Mem(Mem), DCache(DCache), Opts(Opts),
      CB(std::move(Callbacks)) {
  FlatCount = Prog.FlatMap.size();
  CodePtrs.assign(FlatCount + 1, nullptr);
  Hot.assign(FlatCount + 1, 0);
  NoCompile.assign(FlatCount + 1, 0);
  NoCompile[FlatCount] = 1; // the OutOfText sentinel slot

  St.Regs = Regs;
  St.Flat = Mem.flatBase();
  St.CodePtrs = CodePtrs.data();
  St.MaxInstrs = MaxInstrs;
  St.DCache = &DCache;
  St.Mem = &Mem;
  St.PrefetchStride = PrefetchStride;
  St.FlatCount = FlatCount;
  St.Owner = this;
  St.Pf = Pf;

  assert(St.Flat && "the JIT engine requires the flat memory backing");

  // Entry stub: save callee-saved registers, pin the hot pointers, enter the
  // block. Blocks chain with jumps and come back here through one `ret`.
  // Stack math: stub entry rsp%16==8, six pushes keep it 8, the call makes
  // block-entry rsp%16==0, so helper calls from blocks are SysV-aligned.
  if (uint8_t *P = Buf.begin(64)) {
    Emitter Em(P, 64);
    Em.push(RBX);
    Em.push(RBP);
    Em.push(R12);
    Em.push(R13);
    Em.push(R14);
    Em.push(R15);
    Em.movRegReg64(R12, RDI);
    Em.load64(RBX, R12, OffRegs);
    Em.load64(R13, R12, OffFlat);
    Em.load64(R14, R12, OffExecCounts);
    Em.load64(RBP, R12, OffCodePtrs);
    Em.callReg(RSI);
    Em.pop(R15);
    Em.pop(R14);
    Em.pop(R13);
    Em.pop(R12);
    Em.pop(RBP);
    Em.pop(RBX);
    Em.ret();
    if (Em.ok() && Buf.commit(Em.size()))
      Stub = reinterpret_cast<StubFn>(reinterpret_cast<uintptr_t>(P));
    else
      Buf.abort();
  }
}

const uint8_t *Engine::compileBlock(uint32_t Leader) {
  CompileContext Ctx{Prog.Instrs.data(), FlatCount, CodePtrs.data(),
                     masm::LayoutConstants::TextBase, Opts.MaxBlockInstrs};
  unsigned Len = scanBlockLen(Ctx, Leader);
  if (Len == 0) {
    NoCompile[Leader] = 1;
    return nullptr;
  }
  obs::Span CompileSpan("sim.jit.compile");
  // Generous worst-case estimate; a load with its cold stub is ~110 bytes.
  size_t Reserve = 512 + size_t(Len) * 160;
  uint8_t *P = Buf.begin(Reserve);
  if (!P) {
    NoCompile[Leader] = 1;
    return nullptr;
  }
  // Published before emission so back-edges to our own leader become direct
  // jumps; rolled back if emission fails.
  CodePtrs[Leader] = P;
  Emitter Em(P, Reserve);
  if (!compileBlockBody(Em, Ctx, Leader, Len)) {
    Buf.abort();
    CodePtrs[Leader] = nullptr;
    NoCompile[Leader] = 1;
    return nullptr;
  }
  if (!Buf.commit(Em.size())) {
    CodePtrs[Leader] = nullptr;
    NoCompile[Leader] = 1;
    return nullptr;
  }
  ++Stats.BlocksCompiled;
  Stats.CodeBytes += Em.size();
  CompileSpan.attr("pc", uint64_t(Leader));
  CompileSpan.attr("instrs", uint64_t(Len));
  CompileSpan.attr("bytes", uint64_t(Em.size()));
  return P;
}

void Engine::precompile(const std::vector<uint32_t> &Leaders) {
  if (!Stub)
    return;
  for (uint32_t L : Leaders)
    if (L < FlatCount && !CodePtrs[L] && !NoCompile[L])
      compileBlock(L);
}

void Engine::flushCounters(RunResult &R) {
  R.InstrsExecuted = St.Executed;
  R.DataAccesses = St.DataAccesses;
  R.LoadMisses = St.LoadMisses;
  R.StoreMisses = St.StoreMisses;
  R.PrefetchesIssued = St.PrefetchesIssued;
  R.PrefetchFills = St.PrefetchFills;
}

void Engine::haltTrap(RunResult &R, std::string Message) {
  R.Halt = HaltReason::Trapped;
  R.TrapMessage = std::move(Message);
  flushCounters(R);
}

void Engine::haltOutOfText(uint64_t Pc, RunResult &R) {
  // The interpreter checks fuel before the pc bounds check; keep that order.
  if (St.Executed >= St.MaxInstrs) {
    R.Halt = HaltReason::FuelExhausted;
    flushCounters(R);
    return;
  }
  haltTrap(R, formatString("pc out of text: flat index %llu",
                           static_cast<unsigned long long>(Pc)));
}

void Engine::run(uint32_t EntryPc, RunResult &R) {
  assert(R.ExecCounts.size() == FlatCount && R.MissCounts.size() == FlatCount);
  St.ExecCounts = R.ExecCounts.data();
  St.MissCounts = R.MissCounts.data();
  St.Executed = 0;
  St.DataAccesses = 0;
  St.LoadMisses = 0;
  St.StoreMisses = 0;
  St.PrefetchesIssued = 0;
  St.PrefetchFills = 0;
  St.ExitReason = ExitDispatch;
  St.ExitCode = 0;

  uint64_t Pc = EntryPc;
  for (;;) {
    if (Pc >= FlatCount) {
      haltOutOfText(Pc, R);
      return;
    }
    const uint8_t *Block = CodePtrs[Pc];
    if (!Block && Stub && !NoCompile[Pc] && ++Hot[Pc] >= Opts.HotThreshold)
      Block = compileBlock(Pc);
    if (Block) {
      uint64_t Next = Stub(&St, Block);
      switch (St.ExitReason) {
      case ExitDispatch:
        Pc = Next;
        continue;
      case ExitGuestExit:
        R.ExitCode = St.ExitCode;
        flushCounters(R);
        return;
      case ExitFuel:
        // Nothing of the block retired; the interpreter walks to the exact
        // exhaustion point (each entered block burns at least one fuel, so
        // this terminates).
        Pc = Next;
        if (!interpretBlockStep(Pc, R))
          return;
        continue;
      case ExitDeopt:
        // Counters already rolled back past the deopting instruction; the
        // interpreter must retire (or trap on) at least that instruction
        // before compiled code is considered again.
        ++Stats.Deopts;
        Pc = Next;
        if (!interpretBlockStep(Pc, R))
          return;
        continue;
      case ExitRuntimeHalt:
        // exit()/abort(): the runtime-call callback set R.ExitCode.
        flushCounters(R);
        return;
      }
      assert(false && "unknown ExitReason from compiled code");
      return;
    }
    if (!interpretBlockStep(Pc, R))
      return;
  }
}

bool Engine::interpretBlockStep(uint64_t &Pc, RunResult &R) {
  for (;;) {
    bool Control = isControlOp(Prog.Instrs[Pc].Op);
    if (!stepOne(Pc, R))
      return false;
    // Return to the dispatcher only at block-leader pcs (post-control) or
    // when compiled code is reachable — straight-line instructions inside a
    // block must not age the hotness ramp.
    if (Control || Pc >= FlatCount || CodePtrs[Pc])
      return true;
  }
}

bool Engine::stepOne(uint64_t &Pc, RunResult &R) {
  // Mirrors the interpreter's ENTER order exactly: fuel, count, execute.
  if (St.Executed >= St.MaxInstrs) {
    R.Halt = HaltReason::FuelExhausted;
    flushCounters(R);
    return false;
  }
  assert(Pc < FlatCount && "out-of-text pcs are the dispatcher's job");
  const DecodedInstr &I = Prog.Instrs[Pc];
  ++St.ExecCounts[Pc];
  ++St.Executed;
  ++Stats.InterpRetired;

  uint32_t *Regs = St.Regs;
  constexpr uint32_t TextBase = masm::LayoutConstants::TextBase;

  auto loadEpilogue = [&](uint32_t Addr) {
    ++St.DataAccesses;
    bool Hit = DCache.access(Addr);
    if (!Hit) {
      ++St.LoadMisses;
      ++St.MissCounts[Pc];
    }
    if (St.Pf) {
      St.Pf->onDemand(Addr, Hit);
      if (I.Prefetch)
        St.Pf->onArmedLoad(static_cast<uint32_t>(Pc), Addr, Regs[I.Rd], Hit,
                           DCache);
    }
  };
  auto storeEpilogue = [&](uint32_t Addr) {
    ++St.DataAccesses;
    bool Hit = DCache.access(Addr);
    if (!Hit)
      ++St.StoreMisses;
    if (St.Pf)
      St.Pf->onDemand(Addr, Hit);
  };

  switch (I.Op) {
  case XOp::Add:
    Regs[I.Rd] = Regs[I.Rs] + Regs[I.Rt];
    break;
  case XOp::Sub:
    Regs[I.Rd] = Regs[I.Rs] - Regs[I.Rt];
    break;
  case XOp::Mul:
    Regs[I.Rd] = static_cast<uint32_t>(
        static_cast<int64_t>(static_cast<int32_t>(Regs[I.Rs])) *
        static_cast<int32_t>(Regs[I.Rt]));
    break;
  case XOp::Div: {
    int32_t RsS = static_cast<int32_t>(Regs[I.Rs]);
    int32_t RtS = static_cast<int32_t>(Regs[I.Rt]);
    if (RtS == 0) {
      haltTrap(R, "division by zero");
      return false;
    }
    if (RsS == INT32_MIN && RtS == -1)
      Regs[I.Rd] = static_cast<uint32_t>(INT32_MIN);
    else
      Regs[I.Rd] = static_cast<uint32_t>(RsS / RtS);
    break;
  }
  case XOp::Rem: {
    int32_t RsS = static_cast<int32_t>(Regs[I.Rs]);
    int32_t RtS = static_cast<int32_t>(Regs[I.Rt]);
    if (RtS == 0) {
      haltTrap(R, "remainder by zero");
      return false;
    }
    if (RsS == INT32_MIN && RtS == -1)
      Regs[I.Rd] = 0;
    else
      Regs[I.Rd] = static_cast<uint32_t>(RsS % RtS);
    break;
  }
  case XOp::And:
    Regs[I.Rd] = Regs[I.Rs] & Regs[I.Rt];
    break;
  case XOp::Or:
    Regs[I.Rd] = Regs[I.Rs] | Regs[I.Rt];
    break;
  case XOp::Xor:
    Regs[I.Rd] = Regs[I.Rs] ^ Regs[I.Rt];
    break;
  case XOp::Nor:
    Regs[I.Rd] = ~(Regs[I.Rs] | Regs[I.Rt]);
    break;
  case XOp::Slt:
    Regs[I.Rd] = static_cast<int32_t>(Regs[I.Rs]) <
                         static_cast<int32_t>(Regs[I.Rt])
                     ? 1
                     : 0;
    break;
  case XOp::Sltu:
    Regs[I.Rd] = Regs[I.Rs] < Regs[I.Rt] ? 1 : 0;
    break;
  case XOp::Sllv:
    Regs[I.Rd] = Regs[I.Rs] << (Regs[I.Rt] & 31);
    break;
  case XOp::Srlv:
    Regs[I.Rd] = Regs[I.Rs] >> (Regs[I.Rt] & 31);
    break;
  case XOp::Srav:
    Regs[I.Rd] = static_cast<uint32_t>(static_cast<int32_t>(Regs[I.Rs]) >>
                                       (Regs[I.Rt] & 31));
    break;
  case XOp::Addi:
    Regs[I.Rd] = Regs[I.Rs] + static_cast<uint32_t>(I.Imm);
    break;
  case XOp::Andi:
    Regs[I.Rd] = Regs[I.Rs] & static_cast<uint32_t>(I.Imm);
    break;
  case XOp::Ori:
    Regs[I.Rd] = Regs[I.Rs] | static_cast<uint32_t>(I.Imm);
    break;
  case XOp::Xori:
    Regs[I.Rd] = Regs[I.Rs] ^ static_cast<uint32_t>(I.Imm);
    break;
  case XOp::Slti:
    Regs[I.Rd] = static_cast<int32_t>(Regs[I.Rs]) < I.Imm ? 1 : 0;
    break;
  case XOp::Sltiu:
    Regs[I.Rd] = Regs[I.Rs] < static_cast<uint32_t>(I.Imm) ? 1 : 0;
    break;
  case XOp::Sll:
    Regs[I.Rd] = Regs[I.Rs] << (static_cast<uint32_t>(I.Imm) & 31);
    break;
  case XOp::Srl:
    Regs[I.Rd] = Regs[I.Rs] >> (static_cast<uint32_t>(I.Imm) & 31);
    break;
  case XOp::Sra:
    Regs[I.Rd] = static_cast<uint32_t>(static_cast<int32_t>(Regs[I.Rs]) >>
                                       (static_cast<uint32_t>(I.Imm) & 31));
    break;
  case XOp::Lui:
    Regs[I.Rd] = static_cast<uint32_t>(I.Imm) << 16;
    break;
  case XOp::Li:
    Regs[I.Rd] = static_cast<uint32_t>(I.Imm);
    break;
  case XOp::Move:
    Regs[I.Rd] = Regs[I.Rs];
    break;
  case XOp::Lw: {
    uint32_t Addr = Regs[I.Rs] + static_cast<uint32_t>(I.Imm);
    Regs[I.Rd] = Mem.readWord(Addr);
    loadEpilogue(Addr);
    break;
  }
  case XOp::Lh: {
    uint32_t Addr = Regs[I.Rs] + static_cast<uint32_t>(I.Imm);
    Regs[I.Rd] = static_cast<uint32_t>(
        static_cast<int32_t>(static_cast<int16_t>(Mem.readHalf(Addr))));
    loadEpilogue(Addr);
    break;
  }
  case XOp::Lhu: {
    uint32_t Addr = Regs[I.Rs] + static_cast<uint32_t>(I.Imm);
    Regs[I.Rd] = Mem.readHalf(Addr);
    loadEpilogue(Addr);
    break;
  }
  case XOp::Lb: {
    uint32_t Addr = Regs[I.Rs] + static_cast<uint32_t>(I.Imm);
    Regs[I.Rd] = static_cast<uint32_t>(
        static_cast<int32_t>(static_cast<int8_t>(Mem.readByte(Addr))));
    loadEpilogue(Addr);
    break;
  }
  case XOp::Lbu: {
    uint32_t Addr = Regs[I.Rs] + static_cast<uint32_t>(I.Imm);
    Regs[I.Rd] = Mem.readByte(Addr);
    loadEpilogue(Addr);
    break;
  }
  case XOp::Sw: {
    uint32_t Addr = Regs[I.Rs] + static_cast<uint32_t>(I.Imm);
    Mem.writeWord(Addr, Regs[I.Rt]);
    storeEpilogue(Addr);
    break;
  }
  case XOp::Sh: {
    uint32_t Addr = Regs[I.Rs] + static_cast<uint32_t>(I.Imm);
    Mem.writeHalf(Addr, static_cast<uint16_t>(Regs[I.Rt]));
    storeEpilogue(Addr);
    break;
  }
  case XOp::Sb: {
    uint32_t Addr = Regs[I.Rs] + static_cast<uint32_t>(I.Imm);
    Mem.writeByte(Addr, static_cast<uint8_t>(Regs[I.Rt]));
    storeEpilogue(Addr);
    break;
  }
  case XOp::Beq:
    if (Regs[I.Rs] == Regs[I.Rt]) {
      Pc = I.Target;
      return true;
    }
    break;
  case XOp::Bne:
    if (Regs[I.Rs] != Regs[I.Rt]) {
      Pc = I.Target;
      return true;
    }
    break;
  case XOp::Blt:
    if (static_cast<int32_t>(Regs[I.Rs]) < static_cast<int32_t>(Regs[I.Rt])) {
      Pc = I.Target;
      return true;
    }
    break;
  case XOp::Bge:
    if (static_cast<int32_t>(Regs[I.Rs]) >= static_cast<int32_t>(Regs[I.Rt])) {
      Pc = I.Target;
      return true;
    }
    break;
  case XOp::Ble:
    if (static_cast<int32_t>(Regs[I.Rs]) <= static_cast<int32_t>(Regs[I.Rt])) {
      Pc = I.Target;
      return true;
    }
    break;
  case XOp::Bgt:
    if (static_cast<int32_t>(Regs[I.Rs]) > static_cast<int32_t>(Regs[I.Rt])) {
      Pc = I.Target;
      return true;
    }
    break;
  case XOp::J:
    Pc = I.Target;
    return true;
  case XOp::Jr: {
    uint32_t Target = Regs[I.Rs];
    if (Target == ExitPcSentinel) {
      R.ExitCode = static_cast<int32_t>(Regs[RegV0]);
      flushCounters(R);
      return false;
    }
    if (Target < TextBase || (Target & 3) != 0) {
      haltTrap(R, formatString("jr to bad address 0x%08x", Target));
      return false;
    }
    Pc = (Target - TextBase) / 4;
    return true;
  }
  case XOp::Jalr: {
    uint32_t Target = Regs[I.Rs];
    if (Target < TextBase || (Target & 3) != 0) {
      haltTrap(R, formatString("jalr to bad address 0x%08x", Target));
      return false;
    }
    Regs[RegRA] = TextBase + static_cast<uint32_t>(Pc + 1) * 4;
    Pc = (Target - TextBase) / 4;
    return true;
  }
  case XOp::Nop:
    break;
  case XOp::CallFunc:
    Regs[RegRA] = TextBase + static_cast<uint32_t>(Pc + 1) * 4;
    Pc = I.Target;
    return true;
  case XOp::CallRuntime:
    if (CB.RuntimeCall(I.Target)) {
      flushCounters(R);
      return false;
    }
    break;
  case XOp::CallUnresolved:
    haltTrap(R, "call to unknown function '" + CB.SymAt(Pc) + "'");
    return false;
  case XOp::LaUnresolved:
    haltTrap(R, "la of unknown symbol '" + CB.SymAt(Pc) + "'");
    return false;
  default:
    // OutOfText never reaches here (the dispatcher bounds-checks first) and
    // fused superinstructions never exist in the engine's unfused stream.
    assert(false && "unexpected XOp in JIT fallback interpreter");
    haltTrap(R, formatString("pc out of text: flat index %llu",
                             static_cast<unsigned long long>(Pc)));
    return false;
  }
  ++Pc;
  return true;
}

// -- out-of-line runtime for generated code ----------------------------------

extern "C" void dlqJitLoadAcct(JitState *S, uint32_t Addr, uint32_t Pc) {
  ++S->DataAccesses;
  bool Hit = S->DCache->access(Addr);
  if (!Hit) {
    ++S->LoadMisses;
    ++S->MissCounts[Pc];
  }
  if (S->Pf)
    S->Pf->onDemand(Addr, Hit);
}

extern "C" void dlqJitLoadAcctPf(JitState *S, uint32_t Addr, uint32_t Pc,
                                 uint32_t Val) {
  ++S->DataAccesses;
  bool Hit = S->DCache->access(Addr);
  if (!Hit) {
    ++S->LoadMisses;
    ++S->MissCounts[Pc];
  }
  if (S->Pf) {
    S->Pf->onDemand(Addr, Hit);
    S->Pf->onArmedLoad(Pc, Addr, Val, Hit, *S->DCache);
  }
}

extern "C" void dlqJitStoreAcct(JitState *S, uint32_t Addr) {
  ++S->DataAccesses;
  bool Hit = S->DCache->access(Addr);
  if (!Hit)
    ++S->StoreMisses;
  if (S->Pf)
    S->Pf->onDemand(Addr, Hit);
}

extern "C" uint32_t dlqJitSlowLoad(JitState *S, uint32_t Addr, uint32_t Pc,
                                   uint32_t Kind) {
  // Read first, then account — the same order as the interpreter handlers.
  sim::Memory &M = *S->Mem;
  uint32_t V;
  switch (Kind & KindWidthMask) {
  case 0:
    V = (Kind & KindSigned)
            ? static_cast<uint32_t>(
                  static_cast<int32_t>(static_cast<int8_t>(M.readByte(Addr))))
            : M.readByte(Addr);
    break;
  case 1:
    V = (Kind & KindSigned)
            ? static_cast<uint32_t>(
                  static_cast<int32_t>(static_cast<int16_t>(M.readHalf(Addr))))
            : M.readHalf(Addr);
    break;
  default:
    V = M.readWord(Addr);
    break;
  }
  ++S->DataAccesses;
  bool Hit = S->DCache->access(Addr);
  if (!Hit) {
    ++S->LoadMisses;
    ++S->MissCounts[Pc];
  }
  if (S->Pf) {
    S->Pf->onDemand(Addr, Hit);
    if (Kind & KindPrefetch)
      S->Pf->onArmedLoad(Pc, Addr, V, Hit, *S->DCache);
  }
  return V;
}

extern "C" void dlqJitSlowStore(JitState *S, uint32_t Addr, uint32_t Val,
                                uint32_t Kind) {
  sim::Memory &M = *S->Mem;
  switch (Kind & KindWidthMask) {
  case 0:
    M.writeByte(Addr, static_cast<uint8_t>(Val));
    break;
  case 1:
    M.writeHalf(Addr, static_cast<uint16_t>(Val));
    break;
  default:
    M.writeWord(Addr, Val);
    break;
  }
  ++S->DataAccesses;
  bool Hit = S->DCache->access(Addr);
  if (!Hit)
    ++S->StoreMisses;
  if (S->Pf)
    S->Pf->onDemand(Addr, Hit);
}

extern "C" uint32_t dlqJitRuntimeCall(JitState *S, uint32_t Fn) {
  return S->Owner->runtimeCallFromJit(Fn) ? 1u : 0u;
}
