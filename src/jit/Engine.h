//===- jit/Engine.h - JIT execution engine ----------------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives guest execution with a copy-and-patch JIT over the predecoded
/// (UNFUSED) stream, falling back to a built-in switch interpreter at block
/// granularity. The contract with the simulator:
///
///  - Per-PC ExecCounts/MissCounts and every RunResult aggregate are
///    bit-identical to the interpreter's, for every program, including runs
///    that trap, exhaust fuel mid-block, or exit from a runtime call.
///  - Cache-model calls stay out of line (the Cache object is shared state
///    the analyses read); guest memory accesses are inlined against the
///    flat 4 GiB backing.
///
/// The execution loop: a pc with a compiled block enters native code via
/// the entry stub; compiled blocks chain to each other directly and return
/// to the dispatcher only when control reaches uncompiled territory or an
/// ExitReason case (see jit/JitState.h). Cold pcs interpret; a block leader
/// that stays hot past the threshold gets compiled. Deopt points (division
/// by zero, jr/jalr to bad addresses) roll their counters back and resume
/// in the interpreter at the faulting instruction, which then reproduces
/// the interpreter's trap exactly.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_JIT_ENGINE_H
#define DLQ_JIT_ENGINE_H

#include "jit/CodeBuffer.h"
#include "jit/JitState.h"
#include "sim/Machine.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dlq {
namespace jit {

struct EngineOptions {
  /// Dispatcher visits of a block leader before it is compiled. Visits, not
  /// executions: straight-line instructions interpreted inside a block
  /// don't age their pc.
  uint32_t HotThreshold = 16;
  /// Maximum instructions per compiled block.
  uint32_t MaxBlockInstrs = 64;
};

/// What the engine did, for sim.jit.* observability.
struct EngineStats {
  uint64_t BlocksCompiled = 0;
  uint64_t CodeBytes = 0;
  uint64_t Deopts = 0;
  /// Instructions retired by the fallback interpreter (cold code, deopt
  /// resumes, fuel-exhaustion tails).
  uint64_t InterpRetired = 0;
};

/// Host services the engine calls out to. Both are hot-path-free: runtime
/// calls are guest syscalls, SymAt is trap-message-only.
struct EngineCallbacks {
  /// Apply runtime service \p Fn (a masm::RuntimeFn ordinal) to the guest
  /// state; returns true when the run must halt (exit/abort). The callee
  /// owns RunResult::Output/ExitCode updates.
  std::function<bool(uint32_t)> RuntimeCall;
  /// Source symbol of the instruction at a flat pc (unresolved-call traps).
  std::function<std::string(uint64_t)> SymAt;
};

/// One engine instance drives one run. Requires an unfused predecode, the
/// flat memory backing, and jit::available().
class Engine {
public:
  /// \p Pf is the run's prefetch engine (null when no loads are armed); the
  /// out-of-line memory helpers call its hooks the way the interpreter's
  /// epilogues do.
  Engine(const sim::DecodedProgram &Prog, sim::Memory &Mem, sim::Cache &DCache,
         uint32_t *Regs, uint64_t MaxInstrs, uint32_t PrefetchStride,
         prefetch::Engine *Pf, const EngineOptions &Opts, EngineCallbacks CB);

  /// Compiles the blocks at \p Leaders ahead of execution (absint-proven
  /// hot loop bodies). Unknown/ineligible leaders are skipped quietly.
  void precompile(const std::vector<uint32_t> &Leaders);

  /// Runs from \p EntryPc until exit/trap/fuel. \p R must have
  /// ExecCounts/MissCounts sized to the program; all aggregates and the
  /// halt state are filled in on return.
  void run(uint32_t EntryPc, sim::RunResult &R);

  const EngineStats &stats() const { return Stats; }

  /// dlqJitRuntimeCall's target (via JitState::Owner).
  bool runtimeCallFromJit(uint32_t Fn) { return CB.RuntimeCall(Fn); }

private:
  /// Compiles the block at \p Leader; returns its entry or null (and marks
  /// the leader NoCompile) when ineligible. Must not already be compiled.
  const uint8_t *compileBlock(uint32_t Leader);

  /// Interprets exactly one instruction at \p Pc (which must be < FlatCount;
  /// out-of-text is the dispatcher's job). Returns false when the run
  /// halted; otherwise \p Pc advanced.
  bool stepOne(uint64_t &Pc, sim::RunResult &R);
  /// Interprets from \p Pc until control transfers, compiled code is
  /// reached, or the run halts (returns false). Keeps the hotness ramp
  /// honest: only real block leaders come back to the dispatcher.
  bool interpretBlockStep(uint64_t &Pc, sim::RunResult &R);

  /// Halt paths; all flush St's counters into R.
  void haltTrap(sim::RunResult &R, std::string Message);
  void haltOutOfText(uint64_t Pc, sim::RunResult &R);
  void flushCounters(sim::RunResult &R);

  const sim::DecodedProgram &Prog;
  sim::Memory &Mem;
  sim::Cache &DCache;
  EngineOptions Opts;
  EngineCallbacks CB;

  CodeBuffer Buf;
  StubFn Stub = nullptr;
  /// Flat pc -> compiled entry; FlatCount+1 slots so the out-of-text
  /// sentinel has a (permanently null) slot, never resized — generated code
  /// holds the data pointer.
  std::vector<const uint8_t *> CodePtrs;
  std::vector<uint32_t> Hot;
  std::vector<uint8_t> NoCompile;

  JitState St = {};
  uint64_t FlatCount = 0;
  EngineStats Stats;
};

} // namespace jit
} // namespace dlq

#endif // DLQ_JIT_ENGINE_H
