//===- jit/JitState.h - Interpreter/JIT shared state ABI --------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one struct generated code addresses by hand-written offsets. The
/// entry stub pins r12 at a JitState and loads the hot pointers into
/// callee-saved registers:
///
///   r12 = JitState*        rbx = Regs        r13 = guest flat memory
///   r14 = ExecCounts       rbp = CodePtrs (compiled-block table)
///
/// Everything else is reached as [r12 + Off*]. The static_asserts below pin
/// each offset the templates bake into displacement bytes; reorder a field
/// and the build breaks instead of the generated code.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_JIT_JITSTATE_H
#define DLQ_JIT_JITSTATE_H

#include <cstddef>
#include <cstdint>

namespace dlq {
namespace sim {
class Cache;
class Memory;
} // namespace sim

namespace prefetch {
class Engine;
} // namespace prefetch

namespace jit {

class Engine;

/// Why compiled code returned to the dispatcher. Lives in
/// JitState::ExitReason; the next guest pc (when one is meaningful) is the
/// stub's uint64_t return value.
enum ExitReason : uint32_t {
  /// Control reached a guest pc with no compiled block (or past the text);
  /// pc in the return value. Nothing to undo — the block completed.
  ExitDispatch = 0,
  /// `jr $ra` hit the sentinel return address: the guest exited with
  /// JitState::ExitCode.
  ExitGuestExit = 1,
  /// The block-entry fuel check failed; NOTHING of the block retired.
  /// pc (the block leader) in the return value; the interpreter finishes
  /// instruction-at-a-time so the halt lands on the exact instruction.
  ExitFuel = 2,
  /// A template hit a case only the interpreter handles (division by zero,
  /// jr/jalr to a bad address). Counters are already rolled back past the
  /// deopting instruction; pc (of that instruction) in the return value.
  /// The dispatcher MUST interpret at least one instruction before
  /// re-entering compiled code.
  ExitDeopt = 3,
  /// A runtime call (exit/abort) halted the run; RunResult::ExitCode was
  /// set by the runtime-call callback.
  ExitRuntimeHalt = 4,
};

/// State block generated code runs against.
struct JitState {
  uint32_t *Regs;                 ///< Register file (incl. DiscardReg slot).
  uint8_t *Flat;                  ///< Guest flat 4 GiB memory base.
  uint64_t *ExecCounts;           ///< Per-pc execution counts.
  uint64_t *MissCounts;           ///< Per-pc load-miss counts.
  const uint8_t *const *CodePtrs; ///< Flat pc -> compiled entry (or null).
  uint64_t Executed;
  uint64_t MaxInstrs;
  uint64_t DataAccesses;
  uint64_t LoadMisses;
  uint64_t StoreMisses;
  uint64_t PrefetchesIssued;
  uint64_t PrefetchFills;
  sim::Cache *DCache;
  sim::Memory *Mem;
  uint32_t PrefetchStride;
  uint32_t ExitReason;
  uint64_t FlatCount; ///< Logical instruction count (sentinel excluded).
  int32_t ExitCode;
  uint32_t Pad;
  Engine *Owner;
  /// The run's prefetch engine, or null on unarmed runs. Reached only from
  /// the out-of-line helpers — no generated code addresses it, so it rides
  /// safely past the pinned offsets above.
  prefetch::Engine *Pf;
};

// Offsets the templates encode as displacements.
constexpr int32_t OffRegs = 0;
constexpr int32_t OffFlat = 8;
constexpr int32_t OffExecCounts = 16;
constexpr int32_t OffMissCounts = 24;
constexpr int32_t OffCodePtrs = 32;
constexpr int32_t OffExecuted = 40;
constexpr int32_t OffMaxInstrs = 48;
constexpr int32_t OffPrefetchStride = 112;
constexpr int32_t OffExitReason = 116;
constexpr int32_t OffFlatCount = 120;
constexpr int32_t OffExitCode = 128;

static_assert(offsetof(JitState, Regs) == OffRegs, "ABI drift");
static_assert(offsetof(JitState, Flat) == OffFlat, "ABI drift");
static_assert(offsetof(JitState, ExecCounts) == OffExecCounts, "ABI drift");
static_assert(offsetof(JitState, MissCounts) == OffMissCounts, "ABI drift");
static_assert(offsetof(JitState, CodePtrs) == OffCodePtrs, "ABI drift");
static_assert(offsetof(JitState, Executed) == OffExecuted, "ABI drift");
static_assert(offsetof(JitState, MaxInstrs) == OffMaxInstrs, "ABI drift");
static_assert(offsetof(JitState, PrefetchStride) == OffPrefetchStride,
              "ABI drift");
static_assert(offsetof(JitState, ExitReason) == OffExitReason, "ABI drift");
static_assert(offsetof(JitState, FlatCount) == OffFlatCount, "ABI drift");
static_assert(offsetof(JitState, ExitCode) == OffExitCode, "ABI drift");

/// Entry stub signature: (state, compiled block entry) -> next guest pc
/// (meaningful for ExitDispatch/ExitFuel/ExitDeopt).
using StubFn = uint64_t (*)(JitState *, const uint8_t *);

/// `Kind` bits for the out-of-line slow memory helpers.
constexpr uint32_t KindWidthMask = 3; ///< 0 = byte, 1 = half, 2 = word.
constexpr uint32_t KindSigned = 4;
constexpr uint32_t KindPrefetch = 8;

} // namespace jit
} // namespace dlq

/// Out-of-line runtime the templates call (SysV x86-64, extern "C" so the
/// emitter can take plain addresses). Accounting order matches the
/// interpreter's LOAD_EPILOGUE/STORE_EPILOGUE exactly.
extern "C" {
/// Load accounting after an inline flat-memory read at \p Addr by \p Pc.
void dlqJitLoadAcct(dlq::jit::JitState *S, uint32_t Addr, uint32_t Pc);
/// Same, for a load armed with the prefetch engine; \p Val is the loaded
/// value (the next-element base for pointer-chase table entries).
void dlqJitLoadAcctPf(dlq::jit::JitState *S, uint32_t Addr, uint32_t Pc,
                      uint32_t Val);
/// Store accounting after an inline flat-memory write at \p Addr.
void dlqJitStoreAcct(dlq::jit::JitState *S, uint32_t Addr);
/// Full load (read + accounting) for addresses the inline path must not
/// touch (byte-wise wrap at the top of the 4 GiB space). Returns the
/// (sign/zero-extended) value.
uint32_t dlqJitSlowLoad(dlq::jit::JitState *S, uint32_t Addr, uint32_t Pc,
                        uint32_t Kind);
/// Full store (write + accounting) for wrap-risk addresses.
void dlqJitSlowStore(dlq::jit::JitState *S, uint32_t Addr, uint32_t Val,
                     uint32_t Kind);
/// Runtime service dispatch (malloc/print/exit/...). Returns nonzero when
/// the run must halt (exit/abort).
uint32_t dlqJitRuntimeCall(dlq::jit::JitState *S, uint32_t Fn);
}

#endif // DLQ_JIT_JITSTATE_H
