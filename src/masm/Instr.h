//===- masm/Instr.h - A single MIPS-like instruction ----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction record. All analyses operate on these; the operand roles
/// follow the disassembly syntax (loads/stores use `rd, imm(rs)`).
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MASM_INSTR_H
#define DLQ_MASM_INSTR_H

#include "masm/Opcode.h"
#include "masm/Register.h"

#include <cstdint>
#include <string>

namespace dlq {
namespace masm {

/// Sentinel for an unresolved branch target index.
constexpr uint32_t InvalidIndex = ~0u;

/// One instruction. Operand roles by opcode family:
///  - three-register ALU:   Rd <- Rs op Rt
///  - immediate ALU:        Rd <- Rs op Imm
///  - li:                   Rd <- Imm (full 32 bits)
///  - la:                   Rd <- &Sym + Imm
///  - move:                 Rd <- Rs
///  - loads:                Rd <- mem[Rs + Imm]
///  - stores:               mem[Rs + Imm] <- Rt
///  - conditional branches: compare Rs, Rt; target label Sym
///  - j:                    target label Sym
///  - jal:                  call function Sym
///  - jr / jalr:            jump/call through Rs
struct Instr {
  Opcode Op = Opcode::Nop;
  Reg Rd = Reg::Zero;
  Reg Rs = Reg::Zero;
  Reg Rt = Reg::Zero;
  int32_t Imm = 0;
  /// Branch label, call target, or global symbol for `la`.
  std::string Sym;
  /// For branches and `j`: resolved instruction index within the function.
  uint32_t TargetIndex = InvalidIndex;

  /// True if this instruction transfers control (so it ends a basic block).
  bool endsBlock() const { return isControlFlow(Op); }

  /// The register written by this instruction, or $zero if none. A write to
  /// $zero is discarded, matching hardware.
  Reg def() const { return writesRd(Op) ? Rd : Reg::Zero; }
};

} // namespace masm
} // namespace dlq

#endif // DLQ_MASM_INSTR_H
