//===- masm/Module.cpp ----------------------------------------------------==//

#include "masm/Module.h"

#include <algorithm>
#include <cassert>

using namespace dlq;
using namespace dlq::masm;

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

uint32_t Function::append(Instr I) {
  Body.push_back(std::move(I));
  return static_cast<uint32_t>(Body.size() - 1);
}

void Function::defineLabel(const std::string &Label) {
  assert(!Labels.count(Label) && "duplicate label");
  Labels[Label] = static_cast<uint32_t>(Body.size());
}

uint32_t Function::lookupLabel(const std::string &Label) const {
  auto It = Labels.find(Label);
  return It == Labels.end() ? InvalidIndex : It->second;
}

bool Function::resolveBranchTargets() {
  for (Instr &I : Body) {
    if (!isCondBranch(I.Op) && I.Op != Opcode::J)
      continue;
    uint32_t Target = lookupLabel(I.Sym);
    if (Target == InvalidIndex || Target >= Body.size())
      return false;
    I.TargetIndex = Target;
  }
  return true;
}

std::vector<std::string> Function::labelsAt(uint32_t Index) const {
  std::vector<std::string> Result;
  for (const auto &[Name, At] : Labels)
    if (At == Index)
      Result.push_back(Name);
  return Result;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Function &Module::addFunction(const std::string &Name) {
  assert(!FuncIndex.count(Name) && "duplicate function");
  FuncIndex[Name] = static_cast<uint32_t>(Funcs.size());
  Funcs.emplace_back(Name);
  return Funcs.back();
}

Function *Module::lookupFunction(const std::string &Name) {
  auto It = FuncIndex.find(Name);
  return It == FuncIndex.end() ? nullptr : &Funcs[It->second];
}

const Function *Module::lookupFunction(const std::string &Name) const {
  auto It = FuncIndex.find(Name);
  return It == FuncIndex.end() ? nullptr : &Funcs[It->second];
}

uint32_t Module::functionIndex(const std::string &Name) const {
  auto It = FuncIndex.find(Name);
  return It == FuncIndex.end() ? InvalidIndex : It->second;
}

Global &Module::addGlobal(Global G) {
  assert(!GlobalIndex.count(G.Name) && "duplicate global");
  GlobalIndex[G.Name] = static_cast<uint32_t>(Globals.size());
  Globals.push_back(std::move(G));
  return Globals.back();
}

const Global *Module::lookupGlobal(const std::string &Name) const {
  auto It = GlobalIndex.find(Name);
  return It == GlobalIndex.end() ? nullptr : &Globals[It->second];
}

bool Module::finalize() {
  for (Function &F : Funcs)
    if (!F.resolveBranchTargets())
      return false;
  return true;
}

size_t Module::totalInstrs() const {
  size_t N = 0;
  for (const Function &F : Funcs)
    N += F.size();
  return N;
}

size_t Module::countLoads() const {
  size_t N = 0;
  for (const Function &F : Funcs)
    for (const Instr &I : F.instrs())
      if (isLoad(I.Op))
        ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Layout
//===----------------------------------------------------------------------===//

Layout::Layout(const Module &Mod) : M(Mod) {
  uint32_t Pc = LayoutConstants::TextBase;
  for (const Function &F : M.functions()) {
    FuncBasePc.push_back(Pc);
    Pc += static_cast<uint32_t>(F.size()) * LayoutConstants::InstrBytes;
  }
  TextEnd = Pc;

  auto alignUp = [](uint32_t Value, uint32_t To) {
    return (Value + To - 1) & ~(To - 1);
  };
  uint32_t Addr = LayoutConstants::DataBase;
  uint32_t Ordinal = 0;
  for (const Global &G : M.globals()) {
    Addr = alignUp(Addr, std::max<uint32_t>(G.Align, 1));
    GlobalAddr[G.Name] = Addr;
    GlobalsByAddr.emplace_back(Addr, Ordinal);
    Addr += std::max<uint32_t>(G.Size, 1);
    ++Ordinal;
  }
  DataEnd = Addr;
  std::sort(GlobalsByAddr.begin(), GlobalsByAddr.end());
}

uint32_t Layout::pcOf(InstrRef Ref) const {
  assert(Ref.FuncIdx < FuncBasePc.size() && "bad function ordinal");
  return FuncBasePc[Ref.FuncIdx] + Ref.InstrIdx * LayoutConstants::InstrBytes;
}

bool Layout::refOf(uint32_t Pc, InstrRef &Out) const {
  if (Pc < LayoutConstants::TextBase || Pc >= TextEnd)
    return false;
  // Binary search the owning function.
  auto It = std::upper_bound(FuncBasePc.begin(), FuncBasePc.end(), Pc);
  uint32_t FuncIdx = static_cast<uint32_t>(It - FuncBasePc.begin()) - 1;
  uint32_t Offset = (Pc - FuncBasePc[FuncIdx]) / LayoutConstants::InstrBytes;
  if (Offset >= M.functions()[FuncIdx].size())
    return false;
  Out = InstrRef{FuncIdx, Offset};
  return true;
}

uint32_t Layout::functionEntry(uint32_t FuncIdx) const {
  assert(FuncIdx < FuncBasePc.size() && "bad function ordinal");
  return FuncBasePc[FuncIdx];
}

uint32_t Layout::globalAddress(const std::string &Name) const {
  auto It = GlobalAddr.find(Name);
  return It == GlobalAddr.end() ? InvalidAddress : It->second;
}

const Global *Layout::globalAt(uint32_t Addr, uint32_t &OffsetOut) const {
  if (GlobalsByAddr.empty() || Addr < GlobalsByAddr.front().first)
    return nullptr;
  auto It = std::upper_bound(
      GlobalsByAddr.begin(), GlobalsByAddr.end(), Addr,
      [](uint32_t A, const std::pair<uint32_t, uint32_t> &Entry) {
        return A < Entry.first;
      });
  --It;
  const Global &G = M.globals()[It->second];
  uint32_t Start = It->first;
  if (Addr >= Start + std::max<uint32_t>(G.Size, 1))
    return nullptr;
  OffsetOut = Addr - Start;
  return &G;
}
