//===- masm/Module.h - Functions, globals, modules, layout ----------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program container: functions made of instructions with local labels,
/// data globals with initializers, and the address layout that places text,
/// data, heap and stack in a MIPS-like address space.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MASM_MODULE_H
#define DLQ_MASM_MODULE_H

#include "masm/Instr.h"
#include "masm/TypeInfo.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dlq {
namespace masm {

/// A data global: zero-filled space plus optional word initializers.
struct Global {
  std::string Name;
  uint32_t Size = 0;
  uint32_t Align = 4;
  /// Initial bytes; shorter than Size means the rest is zero-filled.
  std::vector<uint8_t> Init;
};

/// A function: a linear sequence of instructions and a label map.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Appends \p I and returns its index.
  uint32_t append(Instr I);

  /// Binds \p Label to the index of the next appended instruction.
  void defineLabel(const std::string &Label);

  /// Returns the instruction index of \p Label, or InvalidIndex.
  uint32_t lookupLabel(const std::string &Label) const;

  /// Resolves the TargetIndex of every branch from its Sym. Must be called
  /// once all instructions and labels are in place. Returns false (and
  /// records nothing) if a target label is missing.
  bool resolveBranchTargets();

  std::vector<Instr> &instrs() { return Body; }
  const std::vector<Instr> &instrs() const { return Body; }
  size_t size() const { return Body.size(); }
  bool empty() const { return Body.empty(); }

  /// Labels bound at instruction index \p Index (for printing).
  std::vector<std::string> labelsAt(uint32_t Index) const;

private:
  std::string Name;
  std::vector<Instr> Body;
  std::map<std::string, uint32_t> Labels;
};

/// Identifies one instruction globally: function ordinal + index within it.
struct InstrRef {
  uint32_t FuncIdx = 0;
  uint32_t InstrIdx = 0;

  friend bool operator==(const InstrRef &A, const InstrRef &B) {
    return A.FuncIdx == B.FuncIdx && A.InstrIdx == B.InstrIdx;
  }
  friend bool operator<(const InstrRef &A, const InstrRef &B) {
    return A.FuncIdx != B.FuncIdx ? A.FuncIdx < B.FuncIdx
                                  : A.InstrIdx < B.InstrIdx;
  }
};

/// Address-space layout constants (MIPS-like).
struct LayoutConstants {
  static constexpr uint32_t TextBase = 0x00400000;
  static constexpr uint32_t DataBase = 0x10000000;
  static constexpr uint32_t GpValue = 0x10008000; ///< $gp at program start.
  static constexpr uint32_t HeapBase = 0x20000000;
  static constexpr uint32_t StackTop = 0x7FFFF000; ///< $sp at program start.
  static constexpr uint32_t InstrBytes = 4;
};

/// A whole program plus its symbol-table type metadata.
class Module {
public:
  /// Adds an empty function and returns it. Function names must be unique.
  Function &addFunction(const std::string &Name);

  /// Returns the function named \p Name, or nullptr.
  Function *lookupFunction(const std::string &Name);
  const Function *lookupFunction(const std::string &Name) const;

  /// Ordinal of the function named \p Name, or InvalidIndex.
  uint32_t functionIndex(const std::string &Name) const;

  std::vector<Function> &functions() { return Funcs; }
  const std::vector<Function> &functions() const { return Funcs; }

  /// Adds a global. Names must be unique.
  Global &addGlobal(Global G);
  const Global *lookupGlobal(const std::string &Name) const;
  const std::vector<Global> &globals() const { return Globals; }

  ModuleTypeInfo &typeInfo() { return Types; }
  const ModuleTypeInfo &typeInfo() const { return Types; }

  /// Resolves branch targets in every function. Returns false if any label
  /// is unresolved.
  bool finalize();

  /// Total number of instructions across all functions.
  size_t totalInstrs() const;

  /// Total number of load instructions (the paper's Lambda set size).
  size_t countLoads() const;

  /// Retrieves the instruction for \p Ref.
  const Instr &instrAt(InstrRef Ref) const {
    return Funcs[Ref.FuncIdx].instrs()[Ref.InstrIdx];
  }

private:
  std::vector<Function> Funcs;
  std::map<std::string, uint32_t> FuncIndex;
  std::vector<Global> Globals;
  std::map<std::string, uint32_t> GlobalIndex;
  ModuleTypeInfo Types;
};

/// Address assignment for a finalized module: every instruction gets a PC
/// and every global a data address.
class Layout {
public:
  explicit Layout(const Module &M);

  /// PC of the instruction \p Ref.
  uint32_t pcOf(InstrRef Ref) const;

  /// Maps a PC back to an instruction reference; returns false if the PC is
  /// not in text.
  bool refOf(uint32_t Pc, InstrRef &Out) const;

  /// Entry PC of function ordinal \p FuncIdx.
  uint32_t functionEntry(uint32_t FuncIdx) const;

  /// Address of global \p Name; InvalidAddress if unknown.
  uint32_t globalAddress(const std::string &Name) const;

  /// Finds the global containing \p Addr; returns nullptr if none. On
  /// success \p OffsetOut receives the byte offset within the global.
  const Global *globalAt(uint32_t Addr, uint32_t &OffsetOut) const;

  uint32_t dataEnd() const { return DataEnd; }

  static constexpr uint32_t InvalidAddress = ~0u;

private:
  const Module &M;
  std::vector<uint32_t> FuncBasePc;
  uint32_t TextEnd = LayoutConstants::TextBase;
  std::map<std::string, uint32_t> GlobalAddr;
  /// Sorted (start address, global ordinal) pairs for globalAt lookups.
  std::vector<std::pair<uint32_t, uint32_t>> GlobalsByAddr;
  uint32_t DataEnd = LayoutConstants::DataBase;
};

} // namespace masm
} // namespace dlq

#endif // DLQ_MASM_MODULE_H
