//===- masm/ObjectFile.cpp --------------------------------------------------==//

#include "masm/ObjectFile.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace dlq;
using namespace dlq::masm;

namespace {

constexpr uint32_t NoSym = ~0u;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

class Writer {
public:
  void u8(uint8_t V) { Bytes.push_back(V); }
  void u32(uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      Bytes.push_back(static_cast<uint8_t>((V >> (8 * I)) & 0xFF));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void blob(const std::vector<uint8_t> &Data) {
    u32(static_cast<uint32_t>(Data.size()));
    Bytes.insert(Bytes.end(), Data.begin(), Data.end());
  }

  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Interns strings; index 0 is always the empty string.
class StringTable {
public:
  StringTable() { Index[""] = 0; Strings.push_back(""); }

  uint32_t intern(const std::string &S) {
    auto [It, Inserted] = Index.emplace(S, Strings.size());
    if (Inserted)
      Strings.push_back(S);
    return static_cast<uint32_t>(It->second);
  }

  void write(Writer &W) const {
    W.u32(static_cast<uint32_t>(Strings.size()));
    for (const std::string &S : Strings) {
      W.u32(static_cast<uint32_t>(S.size()));
      for (char C : S)
        W.u8(static_cast<uint8_t>(C));
    }
  }

private:
  std::map<std::string, size_t> Index;
  std::vector<std::string> Strings;
};

void writeVarType(Writer &W, const VarType &T) {
  W.u8(static_cast<uint8_t>(T.Kind));
  W.u8(T.IsPointer ? 1 : 0);
  W.u32(T.Size);
  W.u32(static_cast<uint32_t>(T.Fields.size()));
  for (const FieldType &F : T.Fields) {
    W.u32(F.Offset);
    W.u32(F.Size);
    W.u8(F.IsPointer ? 1 : 0);
  }
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

class Reader {
public:
  Reader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool failed() const { return Failed; }
  const std::string &error() const { return Error; }

  void fail(const std::string &Message) {
    if (!Failed)
      Error = Message;
    Failed = true;
  }

  uint8_t u8() {
    if (Pos + 1 > Bytes.size()) {
      fail("truncated object file");
      return 0;
    }
    return Bytes[Pos++];
  }
  uint32_t u32() {
    if (Pos + 4 > Bytes.size()) {
      fail("truncated object file");
      return 0;
    }
    uint32_t V = 0;
    for (unsigned I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Bytes[Pos++]) << (8 * I);
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }

  std::vector<uint8_t> blob(uint32_t MaxLen) {
    uint32_t Len = u32();
    if (Len > MaxLen || Pos + Len > Bytes.size()) {
      fail("oversized blob in object file");
      return {};
    }
    std::vector<uint8_t> Out(Bytes.begin() + Pos, Bytes.begin() + Pos + Len);
    Pos += Len;
    return Out;
  }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
  bool Failed = false;
  std::string Error;
};

bool readVarType(Reader &R, VarType &T) {
  uint8_t Kind = R.u8();
  if (Kind > static_cast<uint8_t>(VarKind::StructObj)) {
    R.fail("bad variable kind");
    return false;
  }
  T.Kind = static_cast<VarKind>(Kind);
  T.IsPointer = R.u8() != 0;
  T.Size = R.u32();
  uint32_t NumFields = R.u32();
  if (NumFields > 4096) {
    R.fail("oversized field list");
    return false;
  }
  for (uint32_t I = 0; I != NumFields && !R.failed(); ++I) {
    FieldType F;
    F.Offset = R.u32();
    F.Size = R.u32();
    F.IsPointer = R.u8() != 0;
    T.Fields.push_back(F);
  }
  return !R.failed();
}

} // namespace

std::vector<uint8_t> masm::encodeModule(const Module &M) {
  // Two passes: intern every string first so the table can be written up
  // front (decoders want it before the sections that reference it).
  StringTable Strings;
  for (const Global &G : M.globals())
    Strings.intern(G.Name);
  for (const Function &F : M.functions()) {
    Strings.intern(F.name());
    for (const Instr &I : F.instrs())
      if (!I.Sym.empty())
        Strings.intern(I.Sym);
  }

  Writer W;
  W.u32(ObjectMagic);
  W.u32(ObjectVersion);
  Strings.write(W);

  // Data section.
  W.u32(static_cast<uint32_t>(M.globals().size()));
  for (const Global &G : M.globals()) {
    W.u32(Strings.intern(G.Name));
    W.u32(G.Size);
    W.u32(G.Align);
    W.blob(G.Init);
    const VarType *T = M.typeInfo().lookupGlobal(G.Name);
    W.u8(T ? 1 : 0);
    if (T)
      writeVarType(W, *T);
  }

  // Text section.
  W.u32(static_cast<uint32_t>(M.functions().size()));
  for (const Function &F : M.functions()) {
    W.u32(Strings.intern(F.name()));
    W.u32(static_cast<uint32_t>(F.size()));
    for (const Instr &I : F.instrs()) {
      W.u8(static_cast<uint8_t>(I.Op));
      W.u8(static_cast<uint8_t>(I.Rd));
      W.u8(static_cast<uint8_t>(I.Rs));
      W.u8(static_cast<uint8_t>(I.Rt));
      W.i32(I.Imm);
      bool Extern = I.Op == Opcode::La || I.Op == Opcode::Jal;
      W.u32(Extern ? Strings.intern(I.Sym) : NoSym);
      W.u32(I.TargetIndex);
    }
    // Frame type metadata.
    const FunctionTypeInfo *FTI = M.typeInfo().lookupFunction(F.name());
    uint32_t NumVars =
        FTI ? static_cast<uint32_t>(FTI->Vars.size()) : 0;
    W.u32(NumVars);
    if (FTI)
      for (const FrameVar &V : FTI->Vars) {
        W.i32(V.SpOffset);
        writeVarType(W, V.Type);
      }
  }
  return W.take();
}

DecodeResult masm::decodeModule(const std::vector<uint8_t> &Bytes) {
  DecodeResult Result;
  Reader R(Bytes);

  auto bail = [&](const std::string &Message) {
    Result.M.reset();
    Result.Error = Message;
    return std::move(Result);
  };

  if (R.u32() != ObjectMagic)
    return bail("not a delinq object file (bad magic)");
  if (R.u32() != ObjectVersion)
    return bail("unsupported object file version");

  // String table.
  uint32_t NumStrings = R.u32();
  if (NumStrings > 1'000'000)
    return bail("oversized string table");
  std::vector<std::string> Strings;
  for (uint32_t I = 0; I != NumStrings && !R.failed(); ++I) {
    uint32_t Len = R.u32();
    if (Len > 4096) {
      R.fail("oversized string");
      break;
    }
    std::string S;
    for (uint32_t B = 0; B != Len && !R.failed(); ++B)
      S.push_back(static_cast<char>(R.u8()));
    Strings.push_back(std::move(S));
  }
  auto str = [&](uint32_t Idx) -> const std::string & {
    static const std::string Empty;
    if (Idx >= Strings.size()) {
      R.fail("string index out of range");
      return Empty;
    }
    return Strings[Idx];
  };

  Result.M = std::make_unique<Module>();
  Module &M = *Result.M;

  // Data section.
  uint32_t NumGlobals = R.u32();
  if (NumGlobals > 1'000'000)
    return bail("oversized global table");
  for (uint32_t I = 0; I != NumGlobals && !R.failed(); ++I) {
    Global G;
    G.Name = str(R.u32());
    G.Size = R.u32();
    G.Align = R.u32();
    G.Init = R.blob(64 * 1024 * 1024);
    if (R.failed() || G.Name.empty())
      return bail(R.failed() ? R.error() : "global with empty name");
    if (M.lookupGlobal(G.Name))
      return bail("duplicate global '" + G.Name + "'");
    bool HasType = R.u8() != 0;
    M.addGlobal(std::move(G));
    if (HasType) {
      VarType T;
      if (!readVarType(R, T))
        return bail(R.error());
      M.typeInfo().setGlobalType(M.globals().back().Name, T);
    }
  }

  // Text section.
  uint32_t NumFuncs = R.u32();
  if (NumFuncs > 1'000'000)
    return bail("oversized function table");
  for (uint32_t FI = 0; FI != NumFuncs && !R.failed(); ++FI) {
    std::string Name = str(R.u32());
    if (R.failed() || Name.empty())
      return bail(R.failed() ? R.error() : "function with empty name");
    if (M.lookupFunction(Name))
      return bail("duplicate function '" + Name + "'");
    Function &F = M.addFunction(Name);

    uint32_t NumInstrs = R.u32();
    if (NumInstrs > 16'000'000)
      return bail("oversized function body");
    std::vector<uint32_t> Targets;
    for (uint32_t Idx = 0; Idx != NumInstrs && !R.failed(); ++Idx) {
      Instr I;
      uint8_t Op = R.u8();
      if (Op >= NumOpcodes)
        return bail(formatString("bad opcode %u at %s+%u", Op, Name.c_str(),
                                 Idx));
      I.Op = static_cast<Opcode>(Op);
      uint8_t Rd = R.u8(), Rs = R.u8(), Rt = R.u8();
      if (Rd >= NumRegs || Rs >= NumRegs || Rt >= NumRegs)
        return bail("bad register number");
      I.Rd = static_cast<Reg>(Rd);
      I.Rs = static_cast<Reg>(Rs);
      I.Rt = static_cast<Reg>(Rt);
      I.Imm = R.i32();
      uint32_t SymIdx = R.u32();
      if (SymIdx != NoSym)
        I.Sym = str(SymIdx);
      I.TargetIndex = R.u32();
      if ((isCondBranch(I.Op) || I.Op == Opcode::J)) {
        if (I.TargetIndex >= NumInstrs)
          return bail("branch target out of range");
        Targets.push_back(I.TargetIndex);
      }
      F.append(std::move(I));
    }

    // Synthesize local labels at branch targets ("objdump style").
    std::sort(Targets.begin(), Targets.end());
    Targets.erase(std::unique(Targets.begin(), Targets.end()),
                  Targets.end());
    std::map<uint32_t, std::string> LabelAt;
    for (uint32_t T : Targets)
      LabelAt[T] = formatString("L%u", T);
    // defineLabel binds at the next append position, so rebuild the body
    // interleaving label definitions.
    {
      std::vector<Instr> Body = F.instrs();
      // Clear and re-append with labels in place.
      F.instrs().clear();
      for (uint32_t Idx = 0; Idx != Body.size(); ++Idx) {
        auto It = LabelAt.find(Idx);
        if (It != LabelAt.end())
          F.defineLabel(It->second);
        Instr I = Body[Idx];
        if ((isCondBranch(I.Op) || I.Op == Opcode::J))
          I.Sym = LabelAt.at(I.TargetIndex);
        F.append(std::move(I));
      }
    }

    // Frame metadata.
    uint32_t NumVars = R.u32();
    if (NumVars > 1'000'000)
      return bail("oversized frame metadata");
    if (NumVars != 0) {
      FunctionTypeInfo &FTI = M.typeInfo().functionInfo(Name);
      for (uint32_t V = 0; V != NumVars && !R.failed(); ++V) {
        FrameVar Var;
        Var.SpOffset = R.i32();
        if (!readVarType(R, Var.Type))
          return bail(R.error());
        FTI.Vars.push_back(std::move(Var));
      }
    }
  }

  if (R.failed())
    return bail(R.error());
  if (!M.finalize())
    return bail("unresolved branch targets after decode");
  return Result;
}
