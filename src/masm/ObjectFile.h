//===- masm/ObjectFile.h - binary module encoding --------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A binary "executable" format for masm modules and its decoder — the
/// analog of the paper's MIPS executables and objdump: the analysis pipeline
/// can run from a decoded binary with no access to the compiler. The format
/// carries text (fixed-size instruction records), data (globals with
/// initializers), a string table, and the symbol-table type metadata the
/// BDH baseline consumes.
///
/// The decoder is defensive: malformed input yields an error message, never
/// undefined behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MASM_OBJECTFILE_H
#define DLQ_MASM_OBJECTFILE_H

#include "masm/Module.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dlq {
namespace masm {

/// Serializes \p M (functions, globals, type metadata). Branch targets must
/// be resolved (Module::finalize).
std::vector<uint8_t> encodeModule(const Module &M);

/// Result of decoding.
struct DecodeResult {
  std::unique_ptr<Module> M;
  std::string Error; ///< Nonempty on failure.

  bool ok() const { return M != nullptr; }
};

/// Reconstructs a module from \p Bytes. Local labels are synthesized as
/// "Ln" at every branch target, so printing a decoded module yields valid
/// assembly.
DecodeResult decodeModule(const std::vector<uint8_t> &Bytes);

/// Format constants, exposed for tests.
constexpr uint32_t ObjectMagic = 0x584C5144; // "DQLX" little-endian.
constexpr uint32_t ObjectVersion = 1;

} // namespace masm
} // namespace dlq

#endif // DLQ_MASM_OBJECTFILE_H
