//===- masm/Opcode.cpp ----------------------------------------------------==//

#include "masm/Opcode.h"

#include <array>

using namespace dlq;
using namespace dlq::masm;

static constexpr std::array<std::string_view, NumOpcodes> OpcodeNames = {
    "add",  "sub", "mul",  "div",  "rem",  "and", "or",   "xor", "nor",
    "slt",  "sltu", "sllv", "srlv", "srav", "addi", "andi", "ori", "xori",
    "slti", "sltiu", "sll", "srl",  "sra",  "lui", "li",   "la",  "move",
    "lw",   "lh",  "lhu",  "lb",   "lbu",  "sw",  "sh",   "sb",  "beq",
    "bne",  "blt", "bge",  "ble",  "bgt",  "j",   "jal",  "jr",  "jalr",
    "nop"};

std::string_view masm::opcodeName(Opcode Op) {
  return OpcodeNames[static_cast<unsigned>(Op)];
}

std::optional<Opcode> masm::parseOpcodeName(std::string_view Name) {
  for (unsigned I = 0; I != NumOpcodes; ++I)
    if (OpcodeNames[I] == Name)
      return static_cast<Opcode>(I);
  return std::nullopt;
}

unsigned masm::accessSize(Opcode Op) {
  switch (Op) {
  case Opcode::Lw:
  case Opcode::Sw:
    return 4;
  case Opcode::Lh:
  case Opcode::Lhu:
  case Opcode::Sh:
    return 2;
  case Opcode::Lb:
  case Opcode::Lbu:
  case Opcode::Sb:
    return 1;
  default:
    return 0;
  }
}

bool masm::writesRd(Opcode Op) {
  if (isRegAlu(Op) || isImmAlu(Op) || isLoad(Op))
    return true;
  switch (Op) {
  case Opcode::Li:
  case Opcode::La:
  case Opcode::Move:
    return true;
  default:
    return false;
  }
}

bool masm::readsRs(Opcode Op) {
  if (isRegAlu(Op) || isLoad(Op) || isStore(Op) || isCondBranch(Op))
    return true;
  switch (Op) {
  case Opcode::Addi:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Slti:
  case Opcode::Sltiu:
  case Opcode::Sll:
  case Opcode::Srl:
  case Opcode::Sra:
  case Opcode::Move:
  case Opcode::Jr:
  case Opcode::Jalr:
    return true;
  default:
    return false;
  }
}

bool masm::readsRt(Opcode Op) {
  if (isRegAlu(Op) || isCondBranch(Op) || isStore(Op))
    return true;
  return false;
}
