//===- masm/Opcode.h - Instruction opcodes and traits ---------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcode enumeration for the MIPS-like ISA and opcode trait predicates
/// (loads, stores, branches, register reads/writes) used by the CFG builder,
/// dataflow analyses, address-pattern builder and the simulator.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MASM_OPCODE_H
#define DLQ_MASM_OPCODE_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace dlq {
namespace masm {

/// Opcodes of the MIPS-like ISA. Pseudo-instructions (Li, La, Move) are
/// first-class here, the way a disassembler would render them.
enum class Opcode : uint8_t {
  // Three-register ALU.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Nor,
  Slt,
  Sltu,
  Sllv,
  Srlv,
  Srav,
  // Register-immediate ALU.
  Addi,
  Andi,
  Ori,
  Xori,
  Slti,
  Sltiu,
  Sll,
  Srl,
  Sra,
  Lui,
  // Pseudo data movement.
  Li,   // rd <- imm32
  La,   // rd <- address of symbol + imm
  Move, // rd <- rs
  // Loads: rd <- mem[rs + imm].
  Lw,
  Lh,
  Lhu,
  Lb,
  Lbu,
  // Stores: mem[rs + imm] <- rt.
  Sw,
  Sh,
  Sb,
  // Control flow. Conditional branches compare rs with rt.
  Beq,
  Bne,
  Blt,
  Bge,
  Ble,
  Bgt,
  J,
  Jal,  // call symbol
  Jr,   // indirect jump (returns when rs == $ra)
  Jalr, // indirect call
  Nop,
};

constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Nop) + 1;

/// Returns the mnemonic, e.g. "addi".
std::string_view opcodeName(Opcode Op);

/// Parses a mnemonic. Returns std::nullopt for unknown mnemonics.
std::optional<Opcode> parseOpcodeName(std::string_view Name);

/// True for lw/lh/lhu/lb/lbu.
constexpr bool isLoad(Opcode Op) {
  return Op >= Opcode::Lw && Op <= Opcode::Lbu;
}

/// True for sw/sh/sb.
constexpr bool isStore(Opcode Op) {
  return Op >= Opcode::Sw && Op <= Opcode::Sb;
}

/// True for conditional branches (beq..bgt).
constexpr bool isCondBranch(Opcode Op) {
  return Op >= Opcode::Beq && Op <= Opcode::Bgt;
}

/// True for any control-transfer instruction.
constexpr bool isControlFlow(Opcode Op) {
  return Op >= Opcode::Beq && Op <= Opcode::Jalr;
}

/// True for direct and indirect calls.
constexpr bool isCall(Opcode Op) { return Op == Opcode::Jal || Op == Opcode::Jalr; }

/// Memory access width in bytes for loads/stores; 0 otherwise.
unsigned accessSize(Opcode Op);

/// True if the access is sign-extending (lb/lh). Unused by the analyses but
/// required for a faithful executor.
constexpr bool isSignExtendingLoad(Opcode Op) {
  return Op == Opcode::Lh || Op == Opcode::Lb;
}

/// True when the instruction writes its Rd operand.
bool writesRd(Opcode Op);

/// True when the instruction reads its Rs operand.
bool readsRs(Opcode Op);

/// True when the instruction reads its Rt operand.
bool readsRt(Opcode Op);

/// True for ALU opcodes taking an immediate (addi..sra, lui).
constexpr bool isImmAlu(Opcode Op) {
  return Op >= Opcode::Addi && Op <= Opcode::Lui;
}

/// True for three-register ALU opcodes.
constexpr bool isRegAlu(Opcode Op) {
  return Op >= Opcode::Add && Op <= Opcode::Srav;
}

} // namespace masm
} // namespace dlq

#endif // DLQ_MASM_OPCODE_H
