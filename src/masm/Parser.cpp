//===- masm/Parser.cpp ----------------------------------------------------==//

#include "masm/Parser.h"

#include "support/Format.h"

#include <cassert>
#include <cctype>
#include <set>

using namespace dlq;
using namespace dlq::masm;

std::string ParseResult::diagText() const {
  std::string Out;
  for (const ParseDiag &D : Diags)
    Out += formatString("line %u: %s\n", D.Line, D.Message.c_str());
  return Out;
}

namespace {

/// Splits one line into trimmed comma-separated operand strings.
class LineLexer {
public:
  explicit LineLexer(std::string_view Text) : Text(Text) {}

  /// Strips comments (# to end of line) and surrounding whitespace.
  static std::string_view stripComment(std::string_view Line) {
    size_t Hash = Line.find('#');
    if (Hash != std::string_view::npos)
      Line = Line.substr(0, Hash);
    while (!Line.empty() && std::isspace(static_cast<unsigned char>(Line.front())))
      Line.remove_prefix(1);
    while (!Line.empty() && std::isspace(static_cast<unsigned char>(Line.back())))
      Line.remove_suffix(1);
    return Line;
  }

  std::string_view text() const { return Text; }

private:
  std::string_view Text;
};

class AsmParser {
public:
  explicit AsmParser(std::string_view Source) : Source(Source) {
    Result.M = std::make_unique<Module>();
  }

  ParseResult take() && { return std::move(Result); }

  void run();

private:
  enum class SectionKind { None, Text, Data };

  void error(const std::string &Message) {
    Result.Diags.push_back(ParseDiag{LineNo, Message});
  }

  void parseLine(std::string_view Line);
  void parseDirective(std::string_view Head, std::string_view Rest);
  void parseInstr(std::string_view Head, std::string_view Rest);
  void defineLabel(const std::string &Name);

  static std::vector<std::string> splitOperands(std::string_view Rest);
  bool parseReg(const std::string &Tok, Reg &Out);
  bool parseImm(const std::string &Tok, int32_t &Out);
  bool parseMem(const std::string &Tok, int32_t &ImmOut, Reg &BaseOut);
  static bool isIdent(std::string_view Tok);

  bool parseVarKind(const std::string &Tok, VarKind &Out);
  bool parsePtrFlag(const std::string &Tok, bool &Out);

  std::string_view Source;
  ParseResult Result;
  unsigned LineNo = 0;

  SectionKind Section = SectionKind::None;
  std::set<std::string> GloblNames;
  Function *CurFunc = nullptr;
  Global *CurGlobal = nullptr;
  /// Pending data label awaiting its first .word/.space.
  std::string PendingDataLabel;
  /// Receives `.field` directives: frame var or global var being described.
  VarType *CurVarType = nullptr;
};

} // namespace

void AsmParser::run() {
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t Eol = Source.find('\n', Pos);
    if (Eol == std::string_view::npos)
      Eol = Source.size();
    ++LineNo;
    std::string_view Line =
        LineLexer::stripComment(Source.substr(Pos, Eol - Pos));
    if (!Line.empty())
      parseLine(Line);
    Pos = Eol + 1;
    if (Eol == Source.size())
      break;
  }
  if (Result.M && Result.Diags.empty() && !Result.M->finalize())
    error("unresolved branch target label");
}

void AsmParser::parseLine(std::string_view Line) {
  // Labels: one or more `name:` prefixes.
  while (true) {
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      break;
    std::string_view Head = Line.substr(0, Colon);
    if (!isIdent(Head))
      break;
    defineLabel(std::string(Head));
    Line = LineLexer::stripComment(Line.substr(Colon + 1));
    if (Line.empty())
      return;
  }

  size_t Space = Line.find_first_of(" \t");
  std::string_view Head = Line.substr(0, Space);
  std::string_view Rest =
      Space == std::string_view::npos
          ? std::string_view()
          : LineLexer::stripComment(Line.substr(Space + 1));

  if (!Head.empty() && Head.front() == '.') {
    parseDirective(Head, Rest);
    return;
  }
  parseInstr(Head, Rest);
}

void AsmParser::defineLabel(const std::string &Name) {
  if (Section == SectionKind::Data) {
    PendingDataLabel = Name;
    CurGlobal = nullptr;
    return;
  }
  if (Section != SectionKind::Text) {
    error("label outside of a section: " + Name);
    return;
  }
  if (GloblNames.count(Name)) {
    CurFunc = &Result.M->addFunction(Name);
    CurVarType = nullptr;
    return;
  }
  if (!CurFunc) {
    error("local label before any function: " + Name);
    return;
  }
  if (CurFunc->lookupLabel(Name) != InvalidIndex) {
    error("duplicate label: " + Name);
    return;
  }
  CurFunc->defineLabel(Name);
}

std::vector<std::string> AsmParser::splitOperands(std::string_view Rest) {
  std::vector<std::string> Ops;
  size_t Pos = 0;
  while (Pos < Rest.size()) {
    size_t Comma = Rest.find(',', Pos);
    std::string_view Piece = Rest.substr(
        Pos, Comma == std::string_view::npos ? std::string_view::npos
                                             : Comma - Pos);
    Piece = LineLexer::stripComment(Piece);
    if (!Piece.empty())
      Ops.emplace_back(Piece);
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  // Also split space-separated operands for directives without commas.
  if (Ops.size() == 1 && Ops[0].find(' ') != std::string::npos) {
    std::vector<std::string> Split;
    std::string Cur;
    for (char C : Ops[0]) {
      if (std::isspace(static_cast<unsigned char>(C))) {
        if (!Cur.empty())
          Split.push_back(Cur);
        Cur.clear();
      } else {
        Cur.push_back(C);
      }
    }
    if (!Cur.empty())
      Split.push_back(Cur);
    if (Split.size() > 1)
      return Split;
  }
  return Ops;
}

bool AsmParser::isIdent(std::string_view Tok) {
  if (Tok.empty())
    return false;
  if (!std::isalpha(static_cast<unsigned char>(Tok.front())) &&
      Tok.front() != '_')
    return false;
  for (char C : Tok)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' && C != '.')
      return false;
  return true;
}

bool AsmParser::parseReg(const std::string &Tok, Reg &Out) {
  if (auto R = parseRegName(Tok)) {
    Out = *R;
    return true;
  }
  error("expected register, got '" + Tok + "'");
  return false;
}

bool AsmParser::parseImm(const std::string &Tok, int32_t &Out) {
  if (Tok.empty()) {
    error("expected immediate");
    return false;
  }
  errno = 0;
  char *End = nullptr;
  long long Value = std::strtoll(Tok.c_str(), &End, 0);
  if (End != Tok.c_str() + Tok.size() || errno != 0 ||
      Value < INT32_MIN || Value > static_cast<long long>(UINT32_MAX)) {
    error("bad immediate '" + Tok + "'");
    return false;
  }
  Out = static_cast<int32_t>(Value);
  return true;
}

bool AsmParser::parseMem(const std::string &Tok, int32_t &ImmOut,
                         Reg &BaseOut) {
  size_t Open = Tok.find('(');
  size_t Close = Tok.rfind(')');
  if (Open == std::string::npos || Close == std::string::npos ||
      Close < Open) {
    error("expected memory operand 'imm($reg)', got '" + Tok + "'");
    return false;
  }
  std::string ImmPart = Tok.substr(0, Open);
  std::string RegPart = Tok.substr(Open + 1, Close - Open - 1);
  ImmOut = 0;
  if (!ImmPart.empty() && !parseImm(ImmPart, ImmOut))
    return false;
  return parseReg(RegPart, BaseOut);
}

bool AsmParser::parseVarKind(const std::string &Tok, VarKind &Out) {
  if (Tok == "scalar")
    Out = VarKind::Scalar;
  else if (Tok == "array")
    Out = VarKind::Array;
  else if (Tok == "struct")
    Out = VarKind::StructObj;
  else {
    error("bad variable kind '" + Tok + "'");
    return false;
  }
  return true;
}

bool AsmParser::parsePtrFlag(const std::string &Tok, bool &Out) {
  if (Tok == "ptr")
    Out = true;
  else if (Tok == "noptr")
    Out = false;
  else {
    error("expected 'ptr' or 'noptr', got '" + Tok + "'");
    return false;
  }
  return true;
}

void AsmParser::parseDirective(std::string_view Head, std::string_view Rest) {
  std::vector<std::string> Ops = splitOperands(Rest);
  Module &M = *Result.M;

  auto ensureGlobal = [&]() -> Global * {
    if (CurGlobal)
      return CurGlobal;
    if (PendingDataLabel.empty()) {
      error("data directive without a label");
      return nullptr;
    }
    CurGlobal = &M.addGlobal(Global{PendingDataLabel, 0, 4, {}});
    PendingDataLabel.clear();
    return CurGlobal;
  };

  if (Head == ".text") {
    Section = SectionKind::Text;
    return;
  }
  if (Head == ".data") {
    Section = SectionKind::Data;
    return;
  }
  if (Head == ".globl") {
    if (Ops.size() != 1) {
      error(".globl takes one name");
      return;
    }
    GloblNames.insert(Ops[0]);
    return;
  }
  if (Head == ".align") {
    int32_t A = 4;
    if (Ops.size() != 1 || !parseImm(Ops[0], A))
      return;
    if (Global *G = ensureGlobal())
      G->Align = static_cast<uint32_t>(A);
    return;
  }
  if (Head == ".space") {
    int32_t N = 0;
    if (Ops.size() != 1 || !parseImm(Ops[0], N))
      return;
    if (Global *G = ensureGlobal())
      G->Size += static_cast<uint32_t>(N);
    return;
  }
  if (Head == ".word") {
    Global *G = ensureGlobal();
    if (!G)
      return;
    for (const std::string &Op : Ops) {
      int32_t Value = 0;
      if (!parseImm(Op, Value))
        return;
      for (unsigned B = 0; B != 4; ++B)
        G->Init.push_back(
            static_cast<uint8_t>((static_cast<uint32_t>(Value) >> (8 * B)) &
                                 0xFF));
      G->Size += 4;
    }
    return;
  }
  if (Head == ".byte") {
    Global *G = ensureGlobal();
    if (!G)
      return;
    for (const std::string &Op : Ops) {
      int32_t Value = 0;
      if (!parseImm(Op, Value))
        return;
      G->Init.push_back(static_cast<uint8_t>(Value & 0xFF));
      G->Size += 1;
    }
    return;
  }
  if (Head == ".var") {
    // .var <sp-offset> <size> <kind> <ptr|noptr>
    if (!CurFunc) {
      error(".var outside a function");
      return;
    }
    int32_t Offset = 0, Size = 0;
    VarKind Kind;
    bool IsPtr = false;
    if (Ops.size() != 4 || !parseImm(Ops[0], Offset) ||
        !parseImm(Ops[1], Size) || !parseVarKind(Ops[2], Kind) ||
        !parsePtrFlag(Ops[3], IsPtr)) {
      if (Ops.size() != 4)
        error(".var takes <offset> <size> <kind> <ptr|noptr>");
      return;
    }
    FunctionTypeInfo &FTI = M.typeInfo().functionInfo(CurFunc->name());
    FTI.Vars.push_back(
        FrameVar{Offset, VarType{Kind, static_cast<uint32_t>(Size), IsPtr, {}}});
    CurVarType = &FTI.Vars.back().Type;
    return;
  }
  if (Head == ".gvar") {
    // .gvar <name> <size> <kind> <ptr|noptr>
    int32_t Size = 0;
    VarKind Kind;
    bool IsPtr = false;
    if (Ops.size() != 4 || !parseImm(Ops[1], Size) ||
        !parseVarKind(Ops[2], Kind) || !parsePtrFlag(Ops[3], IsPtr)) {
      if (Ops.size() != 4)
        error(".gvar takes <name> <size> <kind> <ptr|noptr>");
      return;
    }
    M.typeInfo().setGlobalType(
        Ops[0], VarType{Kind, static_cast<uint32_t>(Size), IsPtr, {}});
    // setGlobalType copies; re-fetch for .field continuation.
    CurVarType = const_cast<VarType *>(M.typeInfo().lookupGlobal(Ops[0]));
    return;
  }
  if (Head == ".field") {
    // .field <offset> <size> <ptr|noptr>
    if (!CurVarType) {
      error(".field without a preceding .var/.gvar");
      return;
    }
    int32_t Offset = 0, Size = 0;
    bool IsPtr = false;
    if (Ops.size() != 3 || !parseImm(Ops[0], Offset) ||
        !parseImm(Ops[1], Size) || !parsePtrFlag(Ops[2], IsPtr)) {
      if (Ops.size() != 3)
        error(".field takes <offset> <size> <ptr|noptr>");
      return;
    }
    CurVarType->Fields.push_back(FieldType{static_cast<uint32_t>(Offset),
                                           static_cast<uint32_t>(Size), IsPtr});
    return;
  }
  error("unknown directive '" + std::string(Head) + "'");
}

void AsmParser::parseInstr(std::string_view Head, std::string_view Rest) {
  if (Section != SectionKind::Text || !CurFunc) {
    error("instruction outside a function");
    return;
  }
  auto OpOrNone = parseOpcodeName(Head);
  if (!OpOrNone) {
    error("unknown mnemonic '" + std::string(Head) + "'");
    return;
  }
  Opcode Op = *OpOrNone;
  std::vector<std::string> Ops = splitOperands(Rest);
  Instr I;
  I.Op = Op;

  auto need = [&](size_t N) {
    if (Ops.size() == N)
      return true;
    error(formatString("'%s' expects %zu operands, got %zu",
                       std::string(opcodeName(Op)).c_str(), N, Ops.size()));
    return false;
  };

  if (isRegAlu(Op)) {
    if (!need(3) || !parseReg(Ops[0], I.Rd) || !parseReg(Ops[1], I.Rs) ||
        !parseReg(Ops[2], I.Rt))
      return;
  } else if (Op == Opcode::Lui || Op == Opcode::Li) {
    if (!need(2) || !parseReg(Ops[0], I.Rd) || !parseImm(Ops[1], I.Imm))
      return;
  } else if (isImmAlu(Op)) {
    if (!need(3) || !parseReg(Ops[0], I.Rd) || !parseReg(Ops[1], I.Rs) ||
        !parseImm(Ops[2], I.Imm))
      return;
  } else if (isLoad(Op)) {
    if (!need(2) || !parseReg(Ops[0], I.Rd) ||
        !parseMem(Ops[1], I.Imm, I.Rs))
      return;
  } else if (isStore(Op)) {
    if (!need(2) || !parseReg(Ops[0], I.Rt) ||
        !parseMem(Ops[1], I.Imm, I.Rs))
      return;
  } else if (isCondBranch(Op)) {
    if (!need(3) || !parseReg(Ops[0], I.Rs) || !parseReg(Ops[1], I.Rt))
      return;
    if (!isIdent(Ops[2])) {
      error("bad branch target '" + Ops[2] + "'");
      return;
    }
    I.Sym = Ops[2];
  } else if (Op == Opcode::La) {
    if (!need(2) || !parseReg(Ops[0], I.Rd))
      return;
    // sym or sym+imm
    std::string SymTok = Ops[1];
    size_t Plus = SymTok.find('+');
    if (Plus != std::string::npos) {
      if (!parseImm(SymTok.substr(Plus + 1), I.Imm))
        return;
      SymTok = SymTok.substr(0, Plus);
    }
    if (!isIdent(SymTok)) {
      error("bad symbol '" + SymTok + "'");
      return;
    }
    I.Sym = SymTok;
  } else if (Op == Opcode::Move) {
    if (!need(2) || !parseReg(Ops[0], I.Rd) || !parseReg(Ops[1], I.Rs))
      return;
  } else if (Op == Opcode::J || Op == Opcode::Jal) {
    if (!need(1))
      return;
    if (!isIdent(Ops[0])) {
      error("bad jump target '" + Ops[0] + "'");
      return;
    }
    I.Sym = Ops[0];
  } else if (Op == Opcode::Jr || Op == Opcode::Jalr) {
    if (!need(1) || !parseReg(Ops[0], I.Rs))
      return;
  } else {
    assert(Op == Opcode::Nop && "unhandled opcode family");
    if (!need(0))
      return;
  }

  CurFunc->append(std::move(I));
}

ParseResult masm::parseAssembly(std::string_view Source) {
  AsmParser P(Source);
  P.run();
  return std::move(P).take();
}
