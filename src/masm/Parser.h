//===- masm/Parser.h - Assembly text parser -------------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the assembly syntax produced by the printer and by the MinC
/// compiler. Functions are introduced by `.globl name` followed by `name:`;
/// other labels are local to the enclosing function. Type metadata for the
/// BDH baseline is given with `.var`, `.field` and `.gvar` directives.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MASM_PARSER_H
#define DLQ_MASM_PARSER_H

#include "masm/Module.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dlq {
namespace masm {

/// One parse diagnostic.
struct ParseDiag {
  unsigned Line = 0;
  std::string Message;
};

/// Result of parsing: the module (valid only when Diags is empty).
struct ParseResult {
  std::unique_ptr<Module> M;
  std::vector<ParseDiag> Diags;

  bool ok() const { return Diags.empty() && M != nullptr; }

  /// All diagnostics joined as "line N: message" lines.
  std::string diagText() const;
};

/// Parses \p Source into a module; branch targets are resolved.
ParseResult parseAssembly(std::string_view Source);

} // namespace masm
} // namespace dlq

#endif // DLQ_MASM_PARSER_H
