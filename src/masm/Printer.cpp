//===- masm/Printer.cpp ---------------------------------------------------==//

#include "masm/Printer.h"

#include "support/Format.h"

using namespace dlq;
using namespace dlq::masm;

std::string masm::printInstr(const Instr &I) {
  std::string Mn(opcodeName(I.Op));
  auto R = [](Reg Rr) { return std::string(regName(Rr)); };

  if (isRegAlu(I.Op))
    return formatString("%-5s %s, %s, %s", Mn.c_str(), R(I.Rd).c_str(),
                        R(I.Rs).c_str(), R(I.Rt).c_str());
  if (I.Op == Opcode::Lui)
    return formatString("%-5s %s, %d", Mn.c_str(), R(I.Rd).c_str(), I.Imm);
  if (isImmAlu(I.Op))
    return formatString("%-5s %s, %s, %d", Mn.c_str(), R(I.Rd).c_str(),
                        R(I.Rs).c_str(), I.Imm);
  if (isLoad(I.Op))
    return formatString("%-5s %s, %d(%s)", Mn.c_str(), R(I.Rd).c_str(), I.Imm,
                        R(I.Rs).c_str());
  if (isStore(I.Op))
    return formatString("%-5s %s, %d(%s)", Mn.c_str(), R(I.Rt).c_str(), I.Imm,
                        R(I.Rs).c_str());
  if (isCondBranch(I.Op))
    return formatString("%-5s %s, %s, %s", Mn.c_str(), R(I.Rs).c_str(),
                        R(I.Rt).c_str(), I.Sym.c_str());

  switch (I.Op) {
  case Opcode::Li:
    return formatString("%-5s %s, %d", Mn.c_str(), R(I.Rd).c_str(), I.Imm);
  case Opcode::La:
    if (I.Imm != 0)
      return formatString("%-5s %s, %s+%d", Mn.c_str(), R(I.Rd).c_str(),
                          I.Sym.c_str(), I.Imm);
    return formatString("%-5s %s, %s", Mn.c_str(), R(I.Rd).c_str(),
                        I.Sym.c_str());
  case Opcode::Move:
    return formatString("%-5s %s, %s", Mn.c_str(), R(I.Rd).c_str(),
                        R(I.Rs).c_str());
  case Opcode::J:
  case Opcode::Jal:
    return formatString("%-5s %s", Mn.c_str(), I.Sym.c_str());
  case Opcode::Jr:
  case Opcode::Jalr:
    return formatString("%-5s %s", Mn.c_str(), R(I.Rs).c_str());
  case Opcode::Nop:
    return Mn;
  default:
    return Mn;
  }
}

static const char *varKindName(VarKind K) {
  switch (K) {
  case VarKind::Scalar:
    return "scalar";
  case VarKind::Array:
    return "array";
  case VarKind::StructObj:
    return "struct";
  }
  return "scalar";
}

static void printVarType(std::string &Out, const VarType &T,
                         const std::string &Prefix) {
  Out += formatString("%s %u %s %s\n", Prefix.c_str(), T.Size,
                      varKindName(T.Kind), T.IsPointer ? "ptr" : "noptr");
  for (const FieldType &F : T.Fields)
    Out += formatString("        .field %u %u %s\n", F.Offset, F.Size,
                        F.IsPointer ? "ptr" : "noptr");
}

std::string masm::printFunction(const Function &F,
                                const ModuleTypeInfo *Types) {
  std::string Out;
  Out += formatString("        .globl %s\n", F.name().c_str());
  Out += formatString("%s:\n", F.name().c_str());
  if (Types) {
    if (const FunctionTypeInfo *FTI = Types->lookupFunction(F.name()))
      for (const FrameVar &V : FTI->Vars)
        printVarType(Out, V.Type,
                     formatString("        .var %d", V.SpOffset));
  }
  for (uint32_t Idx = 0; Idx != F.size(); ++Idx) {
    for (const std::string &Label : F.labelsAt(Idx))
      Out += formatString("%s:\n", Label.c_str());
    Out += "        " + printInstr(F.instrs()[Idx]) + "\n";
  }
  // Labels bound past the last instruction.
  for (const std::string &Label : F.labelsAt(static_cast<uint32_t>(F.size())))
    Out += formatString("%s:\n", Label.c_str());
  return Out;
}

std::string masm::printModule(const Module &M) {
  std::string Out;
  if (!M.globals().empty()) {
    Out += "        .data\n";
    for (const Global &G : M.globals()) {
      if (G.Align != 4)
        Out += formatString("        .align %u\n", G.Align);
      Out += formatString("%s:\n", G.Name.c_str());
      if (G.Init.empty()) {
        Out += formatString("        .space %u\n", G.Size);
      } else {
        // Emit initialized words, then trailing zero space if any.
        uint32_t Words = static_cast<uint32_t>(G.Init.size()) / 4;
        for (uint32_t W = 0; W != Words; ++W) {
          uint32_t Value = 0;
          for (unsigned B = 0; B != 4; ++B)
            Value |= static_cast<uint32_t>(G.Init[W * 4 + B]) << (8 * B);
          Out += formatString("        .word %d\n",
                              static_cast<int32_t>(Value));
        }
        if (G.Size > Words * 4)
          Out += formatString("        .space %u\n", G.Size - Words * 4);
      }
      if (const VarType *T = M.typeInfo().lookupGlobal(G.Name))
        printVarType(Out, *T,
                     formatString("        .gvar %s", G.Name.c_str()));
    }
  }
  Out += "        .text\n";
  for (const Function &F : M.functions())
    Out += printFunction(F, &M.typeInfo());
  return Out;
}
