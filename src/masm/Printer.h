//===- masm/Printer.h - Assembly text output ------------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders modules, functions and instructions as assembly text in the same
/// syntax the parser accepts, so that print -> parse round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MASM_PRINTER_H
#define DLQ_MASM_PRINTER_H

#include "masm/Module.h"

#include <string>

namespace dlq {
namespace masm {

/// Renders one instruction (no trailing newline), e.g. "lw $t2, 8($sp)".
std::string printInstr(const Instr &I);

/// Renders one function with labels and type directives.
std::string printFunction(const Function &F, const ModuleTypeInfo *Types);

/// Renders a whole module (data section, type directives, text section).
std::string printModule(const Module &M);

} // namespace masm
} // namespace dlq

#endif // DLQ_MASM_PRINTER_H
