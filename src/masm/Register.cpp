//===- masm/Register.cpp --------------------------------------------------==//

#include "masm/Register.h"

#include <array>
#include <cctype>

using namespace dlq;
using namespace dlq::masm;

static constexpr std::array<std::string_view, NumRegs> RegNames = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};

std::string_view masm::regName(Reg R) {
  return RegNames[static_cast<unsigned>(R)];
}

std::optional<Reg> masm::parseRegName(std::string_view Name) {
  if (Name.empty())
    return std::nullopt;
  std::string_view Body = Name;
  if (Body.front() == '$')
    Body.remove_prefix(1);
  if (Body.empty())
    return std::nullopt;

  // Numeric form: $0 .. $31.
  if (std::isdigit(static_cast<unsigned char>(Body.front()))) {
    unsigned Value = 0;
    for (char C : Body) {
      if (!std::isdigit(static_cast<unsigned char>(C)))
        return std::nullopt;
      Value = Value * 10 + static_cast<unsigned>(C - '0');
      if (Value >= NumRegs)
        return std::nullopt;
    }
    return static_cast<Reg>(Value);
  }

  for (unsigned I = 0; I != NumRegs; ++I)
    if (RegNames[I].substr(1) == Body)
      return static_cast<Reg>(I);
  return std::nullopt;
}
