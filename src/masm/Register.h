//===- masm/Register.h - MIPS-like register file --------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 32-entry MIPS o32-style register file. The paper's "basic registers"
/// (Section 5.1) are the global pointer, the stack pointer, the parameter
/// registers and the return-value registers; predicates for those live here.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MASM_REGISTER_H
#define DLQ_MASM_REGISTER_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace dlq {
namespace masm {

/// MIPS o32 register numbering.
enum class Reg : uint8_t {
  Zero = 0, // $zero: hardwired zero
  At = 1,   // $at: assembler temporary
  V0 = 2,   // $v0, $v1: return values
  V1 = 3,
  A0 = 4, // $a0..$a3: arguments
  A1 = 5,
  A2 = 6,
  A3 = 7,
  T0 = 8, // $t0..$t7: caller-saved temporaries
  T1 = 9,
  T2 = 10,
  T3 = 11,
  T4 = 12,
  T5 = 13,
  T6 = 14,
  T7 = 15,
  S0 = 16, // $s0..$s7: callee-saved
  S1 = 17,
  S2 = 18,
  S3 = 19,
  S4 = 20,
  S5 = 21,
  S6 = 22,
  S7 = 23,
  T8 = 24,
  T9 = 25,
  K0 = 26,
  K1 = 27,
  GP = 28, // $gp: global pointer
  SP = 29, // $sp: stack pointer
  FP = 30, // $fp: frame pointer
  RA = 31, // $ra: return address
};

constexpr unsigned NumRegs = 32;

/// Returns the canonical assembly name, e.g. "$sp".
std::string_view regName(Reg R);

/// Parses a register name with or without the leading '$'; also accepts
/// numeric names like "$29". Returns std::nullopt on failure.
std::optional<Reg> parseRegName(std::string_view Name);

/// True for $a0..$a3 (the paper's reg_param basic registers).
constexpr bool isParamReg(Reg R) {
  return R >= Reg::A0 && R <= Reg::A3;
}

/// True for $v0/$v1 (the paper's reg_ret basic registers).
constexpr bool isRetReg(Reg R) { return R == Reg::V0 || R == Reg::V1; }

/// True for the four kinds of "basic register" leaves of an address pattern.
constexpr bool isBasicReg(Reg R) {
  return R == Reg::GP || R == Reg::SP || isParamReg(R) || isRetReg(R);
}

/// True for registers whose value does not survive a call.
constexpr bool isCallerSaved(Reg R) {
  return (R >= Reg::V0 && R <= Reg::T7) || R == Reg::T8 || R == Reg::T9 ||
         R == Reg::At || R == Reg::RA;
}

/// True for $s0..$s7, $gp, $sp, $fp (preserved across calls).
constexpr bool isCalleeSaved(Reg R) {
  return (R >= Reg::S0 && R <= Reg::S7) || R == Reg::GP || R == Reg::SP ||
         R == Reg::FP;
}

} // namespace masm
} // namespace dlq

#endif // DLQ_MASM_REGISTER_H
