//===- masm/Runtime.cpp ----------------------------------------------------==//

#include "masm/Runtime.h"

using namespace dlq;
using namespace dlq::masm;

std::string_view masm::runtimeFnName(RuntimeFn F) {
  switch (F) {
  case RuntimeFn::Malloc:
    return "malloc";
  case RuntimeFn::Calloc:
    return "calloc";
  case RuntimeFn::Free:
    return "free";
  case RuntimeFn::Rand:
    return "rand";
  case RuntimeFn::Srand:
    return "srand";
  case RuntimeFn::PrintInt:
    return "print_int";
  case RuntimeFn::PrintChar:
    return "print_char";
  case RuntimeFn::Exit:
    return "exit";
  case RuntimeFn::Abort:
    return "abort";
  }
  return "";
}

std::optional<RuntimeFn> masm::runtimeFnByName(std::string_view Name) {
  for (unsigned I = 0; I != NumRuntimeFns; ++I) {
    RuntimeFn F = static_cast<RuntimeFn>(I);
    if (Name == runtimeFnName(F))
      return F;
  }
  return std::nullopt;
}
