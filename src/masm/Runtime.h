//===- masm/Runtime.h - Runtime-service call identifiers ------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime services a `jal` may target without a module-local definition:
/// the allocator, the RNG, the output routines and process exit. This is the
/// single source of truth for the simulator ABI — the verifier accepts these
/// names, mcc's codegen emits calls to them, and the simulator's predecoder
/// lowers them to a `RuntimeFn` ordinal so the interpreter never compares
/// strings on the call path.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MASM_RUNTIME_H
#define DLQ_MASM_RUNTIME_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace dlq {
namespace masm {

/// One intercepted runtime service. Ordinals are dense so decoded call sites
/// can carry them in place of the symbol name.
enum class RuntimeFn : uint8_t {
  Malloc,
  Calloc,
  Free,
  Rand,
  Srand,
  PrintInt,
  PrintChar,
  Exit,
  Abort,
};

constexpr unsigned NumRuntimeFns = static_cast<unsigned>(RuntimeFn::Abort) + 1;

/// The assembly-level name, e.g. "print_int".
std::string_view runtimeFnName(RuntimeFn F);

/// Maps a `jal` symbol to its runtime service, if it is one. Runtime names
/// shadow module functions of the same name, matching the simulator.
std::optional<RuntimeFn> runtimeFnByName(std::string_view Name);

} // namespace masm
} // namespace dlq

#endif // DLQ_MASM_RUNTIME_H
