//===- masm/TypeInfo.cpp --------------------------------------------------==//

#include "masm/TypeInfo.h"

using namespace dlq;
using namespace dlq::masm;

std::optional<ResolvedAccess> masm::resolveWithinVar(const VarType &Type,
                                                     uint32_t Offset) {
  if (Offset >= Type.Size && Type.Size != 0)
    return std::nullopt;
  switch (Type.Kind) {
  case VarKind::Scalar:
    return ResolvedAccess{VarKind::Scalar, Type.IsPointer};
  case VarKind::Array:
    return ResolvedAccess{VarKind::Array, Type.IsPointer};
  case VarKind::StructObj:
    for (const FieldType &F : Type.Fields)
      if (Offset >= F.Offset && Offset < F.Offset + F.Size)
        return ResolvedAccess{VarKind::StructObj, F.IsPointer};
    // Inside the object but between declared fields (padding).
    return ResolvedAccess{VarKind::StructObj, /*IsPointer=*/false};
  }
  return std::nullopt;
}

std::optional<ResolvedAccess> FunctionTypeInfo::resolve(int32_t SpOffset) const {
  for (const FrameVar &V : Vars) {
    if (SpOffset < V.SpOffset)
      continue;
    uint32_t Within = static_cast<uint32_t>(SpOffset - V.SpOffset);
    if (Within >= V.Type.Size)
      continue;
    return resolveWithinVar(V.Type, Within);
  }
  return std::nullopt;
}

FunctionTypeInfo &ModuleTypeInfo::functionInfo(const std::string &FuncName) {
  return Frames[FuncName];
}

const FunctionTypeInfo *
ModuleTypeInfo::lookupFunction(const std::string &FuncName) const {
  auto It = Frames.find(FuncName);
  return It == Frames.end() ? nullptr : &It->second;
}

void ModuleTypeInfo::setGlobalType(const std::string &Name, VarType Type) {
  Globals[Name] = std::move(Type);
}

std::optional<ResolvedAccess>
ModuleTypeInfo::resolveGlobal(const std::string &Name, uint32_t Offset) const {
  auto It = Globals.find(Name);
  if (It == Globals.end())
    return std::nullopt;
  return resolveWithinVar(It->second, Offset);
}

const VarType *ModuleTypeInfo::lookupGlobal(const std::string &Name) const {
  auto It = Globals.find(Name);
  return It == Globals.end() ? nullptr : &It->second;
}
