//===- masm/TypeInfo.h - Symbol-table type metadata -----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Debug/type metadata describing stack frame variables and globals. This is
/// the "symbol table" information of Section 8.5, which the static BDH
/// baseline consumes to classify the kind (scalar/array/field) and type
/// (pointer/non-pointer) of each load. The MinC compiler emits it; the
/// assembly parser accepts it via `.var` / `.gvar` / `.field` directives.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MASM_TYPEINFO_H
#define DLQ_MASM_TYPEINFO_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dlq {
namespace masm {

/// What kind of object a variable is (BDH "kind of reference").
enum class VarKind : uint8_t {
  Scalar,
  Array,
  StructObj,
};

/// One field of a struct-typed variable.
struct FieldType {
  uint32_t Offset = 0; ///< Byte offset from the start of the object.
  uint32_t Size = 0;
  bool IsPointer = false;
};

/// Type description of one variable (frame slot or global).
struct VarType {
  VarKind Kind = VarKind::Scalar;
  uint32_t Size = 0;
  /// For scalars: whether the value is a pointer. For arrays: whether the
  /// elements are pointers. Ignored for StructObj (see Fields).
  bool IsPointer = false;
  std::vector<FieldType> Fields; ///< Only for StructObj.
};

/// Result of resolving one byte address inside a typed object.
struct ResolvedAccess {
  VarKind Kind = VarKind::Scalar;
  bool IsPointer = false;
};

/// Stack-frame variable: a VarType at an sp-relative byte offset.
struct FrameVar {
  int32_t SpOffset = 0;
  VarType Type;
};

/// Type metadata of one function's stack frame.
struct FunctionTypeInfo {
  std::vector<FrameVar> Vars;

  /// Resolves a frame access at \p SpOffset. Accesses within a struct
  /// variable resolve to the matching field (BDH kind "F"). Returns
  /// std::nullopt for offsets not covered by any declared variable
  /// (spill/temporary slots).
  std::optional<ResolvedAccess> resolve(int32_t SpOffset) const;
};

/// Type metadata for a whole module: frames by function name plus globals.
class ModuleTypeInfo {
public:
  /// Adds (or fetches) the frame info record of \p FuncName.
  FunctionTypeInfo &functionInfo(const std::string &FuncName);

  /// Returns the frame info of \p FuncName, or nullptr.
  const FunctionTypeInfo *lookupFunction(const std::string &FuncName) const;

  /// Declares the type of global \p Name.
  void setGlobalType(const std::string &Name, VarType Type);

  /// Resolves an access at byte \p Offset into global \p Name.
  std::optional<ResolvedAccess> resolveGlobal(const std::string &Name,
                                              uint32_t Offset) const;

  /// Returns the raw type record of a global, or nullptr.
  const VarType *lookupGlobal(const std::string &Name) const;

private:
  std::map<std::string, FunctionTypeInfo> Frames;
  std::map<std::string, VarType> Globals;
};

/// Shared helper: resolve \p Offset within \p Type (used for both frame
/// variables and globals).
std::optional<ResolvedAccess> resolveWithinVar(const VarType &Type,
                                               uint32_t Offset);

} // namespace masm
} // namespace dlq

#endif // DLQ_MASM_TYPEINFO_H
