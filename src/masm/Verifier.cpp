//===- masm/Verifier.cpp ----------------------------------------------------==//

#include "masm/Verifier.h"

#include "masm/Runtime.h"
#include "support/Format.h"

using namespace dlq;
using namespace dlq::masm;

std::string masm::verifyReport(const std::vector<VerifyIssue> &Issues) {
  std::string Out;
  for (const VerifyIssue &I : Issues)
    Out += I.Location + ": " + I.Message + "\n";
  return Out;
}

std::vector<VerifyIssue> masm::verifyModule(const Module &M) {
  std::vector<VerifyIssue> Issues;
  auto issue = [&](std::string Loc, std::string Msg) {
    Issues.push_back(VerifyIssue{std::move(Loc), std::move(Msg)});
  };

  // Globals: unique sizes/alignments already enforced structurally; check
  // initializers fit and alignments are powers of two.
  for (const Global &G : M.globals()) {
    if (G.Init.size() > G.Size && G.Size != 0)
      issue("global " + G.Name, "initializer larger than the global");
    if (G.Align == 0 || (G.Align & (G.Align - 1)) != 0)
      issue("global " + G.Name,
            formatString("alignment %u is not a power of two", G.Align));
  }

  for (const Function &F : M.functions()) {
    auto loc = [&](uint32_t Idx) {
      return formatString("%s+%u", F.name().c_str(), Idx);
    };

    if (F.empty()) {
      issue(F.name(), "function has no instructions");
      continue;
    }

    for (uint32_t Idx = 0; Idx != F.size(); ++Idx) {
      const Instr &I = F.instrs()[Idx];

      if (isCondBranch(I.Op) || I.Op == Opcode::J) {
        if (I.TargetIndex == InvalidIndex)
          issue(loc(Idx), "unresolved branch target '" + I.Sym + "'");
        else if (I.TargetIndex >= F.size())
          issue(loc(Idx),
                formatString("branch target %u out of range", I.TargetIndex));
      }

      if (I.Op == Opcode::Jal && !M.lookupFunction(I.Sym) &&
          !runtimeFnByName(I.Sym))
        issue(loc(Idx),
              "call to unknown function '" + I.Sym + "'");

      if (I.Op == Opcode::La && !M.lookupGlobal(I.Sym) &&
          !M.lookupFunction(I.Sym))
        issue(loc(Idx), "la of unknown symbol '" + I.Sym + "'");

      if ((isLoad(I.Op) || isStore(I.Op)) && I.Rs == Reg::Zero &&
          I.Imm >= 0 && static_cast<uint32_t>(I.Imm) <
                            LayoutConstants::TextBase)
        issue(loc(Idx), "memory access through $zero below the text base");
    }

    // Control must not run off the end of the function: the last
    // instruction has to be an unconditional transfer.
    const Instr &Last = F.instrs().back();
    bool Terminates = Last.Op == Opcode::Jr || Last.Op == Opcode::J;
    if (!Terminates)
      issue(loc(static_cast<uint32_t>(F.size()) - 1),
            "control can fall off the end of the function");
  }

  // Frame metadata sanity: variables must not overlap.
  for (const Function &F : M.functions()) {
    const FunctionTypeInfo *FTI = M.typeInfo().lookupFunction(F.name());
    if (!FTI)
      continue;
    for (size_t A = 0; A != FTI->Vars.size(); ++A)
      for (size_t B = A + 1; B != FTI->Vars.size(); ++B) {
        const FrameVar &VA = FTI->Vars[A];
        const FrameVar &VB = FTI->Vars[B];
        int64_t AEnd = VA.SpOffset + static_cast<int64_t>(VA.Type.Size);
        int64_t BEnd = VB.SpOffset + static_cast<int64_t>(VB.Type.Size);
        if (VA.SpOffset < BEnd && VB.SpOffset < AEnd)
          issue(F.name(),
                formatString("frame variables at offsets %d and %d overlap",
                             VA.SpOffset, VB.SpOffset));
      }
  }

  return Issues;
}
