//===- masm/Verifier.h - module well-formedness checks ----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural validation of a module before analysis or execution: resolved
/// branch targets in range, call targets that exist (as functions or
/// runtime services), `la` symbols that resolve, functions that cannot fall
/// off their end, and sane type metadata. The decoder and the CLI run this
/// on untrusted inputs; analyses may assert on modules that fail it.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MASM_VERIFIER_H
#define DLQ_MASM_VERIFIER_H

#include "masm/Module.h"

#include <string>
#include <vector>

namespace dlq {
namespace masm {

/// One verifier finding.
struct VerifyIssue {
  std::string Location; ///< "func+idx" or "global name".
  std::string Message;
};

/// Checks \p M; returns every issue found (empty = well formed).
std::vector<VerifyIssue> verifyModule(const Module &M);

/// All issues joined as "location: message" lines.
std::string verifyReport(const std::vector<VerifyIssue> &Issues);

} // namespace masm
} // namespace dlq

#endif // DLQ_MASM_VERIFIER_H
