//===- mcc/Ast.h - MinC abstract syntax trees ---------------------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed AST for MinC. The frontend resolves identifiers and computes the
/// type of every expression while parsing, so the code generator consumes a
/// fully typed tree. Nodes are owned by an AstContext and discriminated by a
/// Kind tag (LLVM-style, no RTTI).
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MCC_AST_H
#define DLQ_MCC_AST_H

#include "mcc/Types.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dlq {
namespace mcc {

struct Expr;
struct Stmt;

/// A named variable (global, parameter or local).
struct VarDecl {
  std::string Name;
  const Type *Ty = nullptr;
  bool IsGlobal = false;
  bool IsParam = false;
  /// Optional scalar initializer for globals (constant) or locals (any
  /// expression).
  Expr *Init = nullptr;
  /// True when the program takes the variable's address (&v); such locals
  /// can never be promoted to a register.
  bool AddressTaken = false;
  /// Sequential id among the function's locals+params (codegen slot index);
  /// globals use it as declaration order.
  uint32_t Ordinal = 0;
};

/// Expression node kinds.
enum class ExprKind : uint8_t {
  IntLit,
  VarRef,
  Unary,   // - ! ~ * &
  Binary,  // arithmetic / comparison / logical
  Assign,
  Cond,    // ?:
  Call,
  Index,   // a[i]
  Member,  // s.f or p->f
  Cast,
};

enum class UnaryOp : uint8_t { Neg, LogicalNot, BitNot, Deref, AddrOf };

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LogicalAnd,
  LogicalOr,
};

/// Base expression. \c Ty is the value type after the usual conversions
/// (arrays decay to pointers when used as values).
struct Expr {
  ExprKind Kind;
  const Type *Ty = nullptr;
  unsigned Line = 0;

  // IntLit.
  int32_t IntValue = 0;
  // VarRef.
  VarDecl *Var = nullptr;
  // Unary / Cast operand, Assign target, Index base, Member base, Cond
  // condition.
  Expr *Sub = nullptr;
  // Binary/Assign/Index second operand; Cond "then".
  Expr *Sub2 = nullptr;
  // Cond "else".
  Expr *Sub3 = nullptr;
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  // Call.
  std::string Callee;
  std::vector<Expr *> Args;
  // Member.
  std::string FieldName;
  const StructField *Field = nullptr;
  bool IsArrow = false;
};

/// Statement node kinds.
enum class StmtKind : uint8_t {
  Expr,
  Decl,
  Block,
  If,
  While,
  For,
  Return,
  Break,
  Continue,
  Empty,
};

struct Stmt {
  StmtKind Kind;
  unsigned Line = 0;

  Expr *E = nullptr;           ///< Expr stmt value / condition / return value.
  VarDecl *Decl = nullptr;     ///< Decl stmt.
  std::vector<Stmt *> Body;    ///< Block children.
  Stmt *Then = nullptr;        ///< If then / loop body.
  Stmt *Else = nullptr;        ///< If else.
  Expr *ForInit = nullptr;     ///< For init expression (may be null).
  Expr *ForStep = nullptr;     ///< For step expression (may be null).
};

/// A function definition.
struct FuncDecl {
  std::string Name;
  const Type *RetTy = nullptr;
  std::vector<VarDecl *> Params;
  std::vector<VarDecl *> Locals; ///< All block-scoped locals (incl. params).
  Stmt *Body = nullptr;          ///< Null for builtin declarations.
  bool IsBuiltin = false;
};

/// Owns every AST node of one compilation.
class AstContext {
public:
  Expr *newExpr(ExprKind Kind) {
    Exprs.push_back(std::make_unique<Expr>());
    Exprs.back()->Kind = Kind;
    return Exprs.back().get();
  }
  Stmt *newStmt(StmtKind Kind) {
    Stmts.push_back(std::make_unique<Stmt>());
    Stmts.back()->Kind = Kind;
    return Stmts.back().get();
  }
  VarDecl *newVar() {
    Vars.push_back(std::make_unique<VarDecl>());
    return Vars.back().get();
  }
  FuncDecl *newFunc() {
    Funcs.push_back(std::make_unique<FuncDecl>());
    return Funcs.back().get();
  }

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  std::vector<std::unique_ptr<VarDecl>> Vars;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;
};

/// A fully parsed and type-checked translation unit.
struct TranslationUnit {
  AstContext Nodes;
  TypeContext Types;
  std::vector<VarDecl *> Globals;
  std::vector<FuncDecl *> Functions; ///< Definitions only, in order.
};

} // namespace mcc
} // namespace dlq

#endif // DLQ_MCC_AST_H
