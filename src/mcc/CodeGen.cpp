//===- mcc/CodeGen.cpp ---------------------------------------------------------//

#include "mcc/CodeGen.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>

using namespace dlq;
using namespace dlq::mcc;
using namespace dlq::masm;

std::string CodeGenResult::diagText() const {
  std::string Out;
  for (const CodeGenDiag &D : Diags)
    Out += formatString("line %u: %s\n", D.Line, D.Message.c_str());
  return Out;
}

namespace {

/// Expression-temporary pool: $t0..$t7.
constexpr Reg TempPool[] = {Reg::T0, Reg::T1, Reg::T2, Reg::T3,
                            Reg::T4, Reg::T5, Reg::T6, Reg::T7};
constexpr unsigned PoolSize = 8;

/// Callee-saved promotion targets at -O1.
constexpr Reg PromoPool[] = {Reg::S0, Reg::S1, Reg::S2, Reg::S3,
                             Reg::S4, Reg::S5, Reg::S6, Reg::S7};
constexpr unsigned PromoPoolSize = 8;

/// A handle to an in-flight expression value.
struct Val {
  unsigned Id = ~0u;
  bool valid() const { return Id != ~0u; }
};

/// An lvalue address with a foldable constant displacement.
struct AddrRef {
  enum class BaseKind { FrameSp, GlobalSym, Register };
  BaseKind Kind = BaseKind::FrameSp;
  int32_t Off = 0;
  std::string Sym; ///< GlobalSym base.
  Val Base;        ///< Register base.
};

class FuncEmitter {
public:
  FuncEmitter(const TranslationUnit &U, const FuncDecl &FD, Module &M,
              Function &F, const CodeGenOptions &Opts,
              std::vector<CodeGenDiag> &Diags)
      : U(U), FD(FD), M(M), F(F), Opts(Opts), Diags(Diags) {}

  void emitFunction();

private:
  const TranslationUnit &U;
  const FuncDecl &FD;
  Module &M;
  Function &F;
  const CodeGenOptions &Opts;
  std::vector<CodeGenDiag> &Diags;

  //===--- frame ---------------------------------------------------------===//
  std::map<const VarDecl *, int32_t> SlotOf;     ///< Stack locals.
  std::map<const VarDecl *, Reg> PromotedTo;     ///< -O1 register locals.
  uint32_t LocalBytes = 0;
  uint32_t NumTempSlots = 0;
  std::vector<int32_t> FreeTempSlots;
  std::vector<Reg> UsedPromoRegs;
  uint32_t FrameSize = 0; ///< Patched after body emission.
  std::vector<uint32_t> FramePatchIdx; ///< Prologue instrs needing FrameSize.

  //===--- labels ---------------------------------------------------------===//
  unsigned NextLabel = 0;
  std::vector<std::string> BreakLabels;
  std::vector<std::string> ContinueLabels;
  std::string RetLabel;
  std::map<std::string, unsigned> LabelRefs; ///< Jump/branch reference counts.
  /// True once the current emission point is past an unconditional transfer
  /// (return/break/continue) with no intervening referenced label: anything
  /// emitted here would be unreachable.
  bool Terminated = false;

  //===--- value allocator -------------------------------------------------===//
  struct ValState {
    bool InReg = false;
    Reg R = Reg::Zero;
    int32_t SpillSlot = 0;
    unsigned Pins = 0;
    bool Released = false;
  };
  std::vector<ValState> Vals;
  std::vector<unsigned> ActiveOrder; ///< Acquisition order, oldest first.
  bool PoolBusy[PoolSize] = {};

  bool HadError = false;

  void error(unsigned Line, const std::string &Message) {
    if (!HadError)
      Diags.push_back(CodeGenDiag{Line, Message});
    HadError = true;
  }

  //===--- emission helpers ------------------------------------------------===//
  uint32_t emit(Instr I) { return F.append(std::move(I)); }
  void emitR(Opcode Op, Reg Rd, Reg Rs, Reg Rt) {
    Instr I;
    I.Op = Op;
    I.Rd = Rd;
    I.Rs = Rs;
    I.Rt = Rt;
    emit(std::move(I));
  }
  uint32_t emitI(Opcode Op, Reg Rd, Reg Rs, int32_t Imm) {
    Instr I;
    I.Op = Op;
    I.Rd = Rd;
    I.Rs = Rs;
    I.Imm = Imm;
    return emit(std::move(I));
  }
  void emitMem(Opcode Op, Reg Data, Reg Base, int32_t Off) {
    Instr I;
    I.Op = Op;
    if (isLoad(Op))
      I.Rd = Data;
    else
      I.Rt = Data;
    I.Rs = Base;
    I.Imm = Off;
    emit(std::move(I));
  }
  void emitLi(Reg Rd, int32_t Imm) {
    Instr I;
    I.Op = Opcode::Li;
    I.Rd = Rd;
    I.Imm = Imm;
    emit(std::move(I));
  }
  void emitLa(Reg Rd, const std::string &Sym, int32_t Off) {
    Instr I;
    I.Op = Opcode::La;
    I.Rd = Rd;
    I.Sym = Sym;
    I.Imm = Off;
    emit(std::move(I));
  }
  void emitMove(Reg Rd, Reg Rs) {
    Instr I;
    I.Op = Opcode::Move;
    I.Rd = Rd;
    I.Rs = Rs;
    emit(std::move(I));
  }
  void emitBranch(Opcode Op, Reg Rs, Reg Rt, const std::string &Target) {
    Instr I;
    I.Op = Op;
    I.Rs = Rs;
    I.Rt = Rt;
    I.Sym = Target;
    ++LabelRefs[Target];
    emit(std::move(I));
  }
  void emitJump(const std::string &Target) {
    Instr I;
    I.Op = Opcode::J;
    I.Sym = Target;
    ++LabelRefs[Target];
    emit(std::move(I));
  }

  /// Defines \p L. Code after the label is reachable again iff some emitted
  /// jump or branch targets it, or the fall-through path was still live.
  void bindLabel(const std::string &L) {
    auto It = LabelRefs.find(L);
    bool Referenced = It != LabelRefs.end() && It->second > 0;
    if (Referenced)
      Terminated = false;
    // An unreferenced label in dead code has no possible incoming edge;
    // defining it would only decorate the unreachable region.
    if (Referenced || !Terminated)
      F.defineLabel(L);
  }
  void emitCall(const std::string &Callee) {
    Instr I;
    I.Op = Opcode::Jal;
    I.Sym = Callee;
    emit(std::move(I));
  }

  std::string freshLabel() { return formatString("L%u", NextLabel++); }

  //===--- temp slots -------------------------------------------------------//
  int32_t allocTempSlot() {
    if (!FreeTempSlots.empty()) {
      int32_t Slot = FreeTempSlots.back();
      FreeTempSlots.pop_back();
      return Slot;
    }
    int32_t Slot = static_cast<int32_t>(LocalBytes + 4 * NumTempSlots);
    ++NumTempSlots;
    return Slot;
  }
  void freeTempSlot(int32_t Slot) { FreeTempSlots.push_back(Slot); }

  //===--- value pool --------------------------------------------------------//
  Reg takePoolReg();
  Val pushValInReg(Reg R);
  Val allocResultVal();
  Reg useVal(Val V);   ///< Materializes and pins.
  void unpin(Val V);
  void releaseVal(Val V);
  void spillActiveVals(); ///< Before calls: everything to stack.

  //===--- codegen ---------------------------------------------------------===//
  void layoutFrame();
  void emitPrologue();
  void emitEpilogue();

  void genStmt(const Stmt *S);
  Val genExpr(const Expr *E);
  AddrRef genAddr(const Expr *E);
  Val loadFrom(const AddrRef &A, const Type *Ty);
  void storeTo(const AddrRef &A, const Type *Ty, Val V);
  Val materializeAddr(const AddrRef &A);
  void genCondBranch(const Expr *E, const std::string &FalseLabel);
  Val genScaledIndex(Val Base, const Expr *IdxExpr, uint32_t ElemSize);
  Val genCall(const Expr *E);
  void genVarInit(const VarDecl *V);
  void storeToVar(const VarDecl *V, Val Value);
  Val loadVar(const VarDecl *V);

  const Expr *foldExpr(const Expr *E, int32_t &Out) const;
  bool isPromoted(const VarDecl *V) const { return PromotedTo.count(V) != 0; }

  static Opcode loadOpFor(const Type *Ty) {
    return Ty->isChar() ? Opcode::Lb : Opcode::Lw;
  }
  static Opcode storeOpFor(const Type *Ty) {
    return Ty->isChar() ? Opcode::Sb : Opcode::Sw;
  }
};

//===----------------------------------------------------------------------===//
// Value pool
//===----------------------------------------------------------------------===//

Reg FuncEmitter::takePoolReg() {
  for (unsigned I = 0; I != PoolSize; ++I)
    if (!PoolBusy[I]) {
      PoolBusy[I] = true;
      return TempPool[I];
    }
  // Spill the oldest unpinned in-register value.
  for (unsigned Id : ActiveOrder) {
    ValState &S = Vals[Id];
    if (S.Released || !S.InReg || S.Pins != 0)
      continue;
    int32_t Slot = allocTempSlot();
    emitMem(Opcode::Sw, S.R, Reg::SP, Slot);
    Reg Freed = S.R;
    S.InReg = false;
    S.SpillSlot = Slot;
    return Freed; // Still marked busy; ownership transfers.
  }
  error(0, "expression too complex: temporary register pool exhausted");
  return Reg::T0;
}

Val FuncEmitter::pushValInReg(Reg R) {
  ValState S;
  S.InReg = true;
  S.R = R;
  Vals.push_back(S);
  unsigned Id = static_cast<unsigned>(Vals.size() - 1);
  ActiveOrder.push_back(Id);
  return Val{Id};
}

Val FuncEmitter::allocResultVal() { return pushValInReg(takePoolReg()); }

Reg FuncEmitter::useVal(Val V) {
  if (!V.valid()) {
    // Only reachable after a diagnostic; keep going to surface one error.
    assert(HadError && "invalid value handle without a prior error");
    return Reg::T0;
  }
  ValState &S = Vals[V.Id];
  assert(!S.Released && "value used after release");
  if (!S.InReg) {
    Reg R = takePoolReg();
    emitMem(Opcode::Lw, R, Reg::SP, S.SpillSlot);
    freeTempSlot(S.SpillSlot);
    S.InReg = true;
    S.R = R;
  }
  ++S.Pins;
  return S.R;
}

void FuncEmitter::unpin(Val V) {
  if (!V.valid())
    return;
  ValState &S = Vals[V.Id];
  if (S.Pins != 0)
    --S.Pins;
}

void FuncEmitter::releaseVal(Val V) {
  if (!V.valid())
    return;
  ValState &S = Vals[V.Id];
  if (S.Released)
    return; // Tolerated after a diagnostic.
  S.Released = true;
  S.Pins = 0;
  if (S.InReg) {
    for (unsigned I = 0; I != PoolSize; ++I)
      if (TempPool[I] == S.R)
        PoolBusy[I] = false;
  } else {
    freeTempSlot(S.SpillSlot);
  }
  auto It = std::find(ActiveOrder.begin(), ActiveOrder.end(), V.Id);
  if (It != ActiveOrder.end())
    ActiveOrder.erase(It);
}

void FuncEmitter::spillActiveVals() {
  for (unsigned Id : ActiveOrder) {
    ValState &S = Vals[Id];
    if (S.Released || !S.InReg)
      continue;
    assert(S.Pins == 0 && "cannot spill a pinned value across a call");
    int32_t Slot = allocTempSlot();
    emitMem(Opcode::Sw, S.R, Reg::SP, Slot);
    for (unsigned I = 0; I != PoolSize; ++I)
      if (TempPool[I] == S.R)
        PoolBusy[I] = false;
    S.InReg = false;
    S.SpillSlot = Slot;
  }
}

//===----------------------------------------------------------------------===//
// Frame layout and prologue/epilogue
//===----------------------------------------------------------------------===//

void FuncEmitter::layoutFrame() {
  // -O1: pick promotion candidates by static use count.
  if (Opts.OptLevel >= 1) {
    std::map<const VarDecl *, unsigned> UseCount;
    // Count VarRef occurrences with a small walk.
    struct Walker {
      std::map<const VarDecl *, unsigned> &UseCount;
      void visitExpr(const Expr *E) {
        if (!E)
          return;
        if (E->Kind == ExprKind::VarRef)
          ++UseCount[E->Var];
        visitExpr(E->Sub);
        visitExpr(E->Sub2);
        visitExpr(E->Sub3);
        for (const Expr *Arg : E->Args)
          visitExpr(Arg);
      }
      void visitStmt(const Stmt *S) {
        if (!S)
          return;
        visitExpr(S->E);
        visitExpr(S->ForInit);
        visitExpr(S->ForStep);
        if (S->Decl)
          visitExpr(S->Decl->Init);
        for (const Stmt *Child : S->Body)
          visitStmt(Child);
        visitStmt(S->Then);
        visitStmt(S->Else);
      }
    };
    Walker W{UseCount};
    W.visitStmt(FD.Body);

    std::vector<const VarDecl *> Candidates;
    for (const VarDecl *V : FD.Locals) {
      if (V->AddressTaken || V->Ty->isArray() || V->Ty->isStruct())
        continue;
      Candidates.push_back(V);
    }
    std::sort(Candidates.begin(), Candidates.end(),
              [&](const VarDecl *A, const VarDecl *B) {
                unsigned UA = UseCount[A], UB = UseCount[B];
                if (UA != UB)
                  return UA > UB;
                return A->Ordinal < B->Ordinal;
              });
    for (const VarDecl *V : Candidates) {
      if (UsedPromoRegs.size() >= PromoPoolSize)
        break;
      Reg R = PromoPool[UsedPromoRegs.size()];
      UsedPromoRegs.push_back(R);
      PromotedTo[V] = R;
    }
  }

  // Stack slots for everything not promoted.
  uint32_t Offset = 0;
  FunctionTypeInfo &FTI = M.typeInfo().functionInfo(F.name());
  for (const VarDecl *V : FD.Locals) {
    if (isPromoted(V))
      continue;
    uint32_t Align = std::max<uint32_t>(V->Ty->align(), 4);
    Offset = (Offset + Align - 1) & ~(Align - 1);
    SlotOf[V] = static_cast<int32_t>(Offset);

    // Symbol-table metadata for the BDH baseline.
    VarType VT;
    if (V->Ty->isArray()) {
      VT.Kind = VarKind::Array;
      const Type *Elem = V->Ty;
      while (Elem->isArray())
        Elem = Elem->pointee();
      VT.IsPointer = Elem->isPointer();
    } else if (V->Ty->isStruct()) {
      VT.Kind = VarKind::StructObj;
      for (const StructField &Fld : V->Ty->structDecl()->Fields)
        VT.Fields.push_back(FieldType{Fld.Offset, Fld.Ty->size(),
                                      Fld.Ty->isPointer()});
    } else {
      VT.Kind = VarKind::Scalar;
      VT.IsPointer = V->Ty->isPointer();
    }
    VT.Size = std::max<uint32_t>(V->Ty->size(), 1);
    FTI.Vars.push_back(FrameVar{static_cast<int32_t>(Offset), VT});

    Offset += std::max<uint32_t>(V->Ty->size(), 1);
  }
  LocalBytes = (Offset + 3) & ~3u;
}

void FuncEmitter::emitPrologue() {
  // Real offsets are patched in emitEpilogue once NumTempSlots is known.
  FramePatchIdx.push_back(emitI(Opcode::Addi, Reg::SP, Reg::SP, 0));
  Instr SaveRa;
  SaveRa.Op = Opcode::Sw;
  SaveRa.Rt = Reg::RA;
  SaveRa.Rs = Reg::SP;
  FramePatchIdx.push_back(emit(std::move(SaveRa)));
  for (size_t I = 0; I != UsedPromoRegs.size(); ++I) {
    Instr Save;
    Save.Op = Opcode::Sw;
    Save.Rt = UsedPromoRegs[I];
    Save.Rs = Reg::SP;
    Save.Imm = static_cast<int32_t>(I); // Placeholder; patched later.
    FramePatchIdx.push_back(emit(std::move(Save)));
  }

  // Home the parameters.
  for (size_t I = 0; I != FD.Params.size(); ++I) {
    const VarDecl *P = FD.Params[I];
    Reg ArgReg = static_cast<Reg>(static_cast<unsigned>(Reg::A0) + I);
    if (isPromoted(P))
      emitMove(PromotedTo.at(P), ArgReg);
    else
      emitMem(storeOpFor(P->Ty), ArgReg, Reg::SP, SlotOf.at(P));
  }
}

void FuncEmitter::emitEpilogue() {
  bindLabel(RetLabel);
  // Compute the final frame size: locals + temps + saved s-regs + ra.
  uint32_t SaveBytes = 4 + static_cast<uint32_t>(UsedPromoRegs.size()) * 4;
  FrameSize = LocalBytes + 4 * NumTempSlots + SaveBytes;
  FrameSize = (FrameSize + 7) & ~7u;

  // Patch the prologue.
  std::vector<Instr> &Body = F.instrs();
  Body[FramePatchIdx[0]].Imm = -static_cast<int32_t>(FrameSize);
  Body[FramePatchIdx[1]].Imm = static_cast<int32_t>(FrameSize - 4);
  for (size_t I = 0; I + 2 < FramePatchIdx.size(); ++I)
    Body[FramePatchIdx[I + 2]].Imm =
        static_cast<int32_t>(FrameSize - 8 - 4 * I);

  // Restore and return.
  for (size_t I = 0; I != UsedPromoRegs.size(); ++I)
    emitMem(Opcode::Lw, UsedPromoRegs[I], Reg::SP,
            static_cast<int32_t>(FrameSize - 8 - 4 * I));
  emitMem(Opcode::Lw, Reg::RA, Reg::SP, static_cast<int32_t>(FrameSize - 4));
  emitI(Opcode::Addi, Reg::SP, Reg::SP, static_cast<int32_t>(FrameSize));
  Instr Ret;
  Ret.Op = Opcode::Jr;
  Ret.Rs = Reg::RA;
  emit(std::move(Ret));
}

void FuncEmitter::emitFunction() {
  RetLabel = "Lret";
  layoutFrame();
  emitPrologue();
  genStmt(FD.Body);
  // Implicit return for void functions / main falling off the end.
  emitEpilogue();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void FuncEmitter::genStmt(const Stmt *S) {
  // Statements after a return/break/continue (with no referenced label in
  // between) can never execute; emitting them would litter the function
  // with unreachable blocks.
  if (!S || HadError || Terminated)
    return;
  switch (S->Kind) {
  case StmtKind::Empty:
    return;
  case StmtKind::Block:
    for (const Stmt *Child : S->Body)
      genStmt(Child);
    return;
  case StmtKind::Expr: {
    Val V = genExpr(S->E);
    releaseVal(V);
    return;
  }
  case StmtKind::Decl:
    genVarInit(S->Decl);
    return;
  case StmtKind::If: {
    std::string ElseL = freshLabel();
    genCondBranch(S->E, ElseL);
    genStmt(S->Then);
    if (S->Else) {
      std::string EndL = freshLabel();
      // A then-arm ending in return/break/continue needs no jump over the
      // else-arm; the join label then stays unreferenced, and bindLabel
      // keeps Terminated set when the else-arm terminates too.
      if (!Terminated)
        emitJump(EndL);
      Terminated = false; // The else-arm is reached via the cond branch.
      bindLabel(ElseL);
      genStmt(S->Else);
      bindLabel(EndL);
    } else {
      bindLabel(ElseL);
    }
    return;
  }
  case StmtKind::While: {
    std::string HeadL = freshLabel();
    std::string EndL = freshLabel();
    F.defineLabel(HeadL);
    genCondBranch(S->E, EndL);
    BreakLabels.push_back(EndL);
    ContinueLabels.push_back(HeadL);
    genStmt(S->Then);
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    if (!Terminated)
      emitJump(HeadL);
    bindLabel(EndL);
    return;
  }
  case StmtKind::For: {
    if (S->ForInit)
      releaseVal(genExpr(S->ForInit));
    std::string HeadL = freshLabel();
    std::string StepL = freshLabel();
    std::string EndL = freshLabel();
    F.defineLabel(HeadL);
    if (S->E)
      genCondBranch(S->E, EndL);
    BreakLabels.push_back(EndL);
    ContinueLabels.push_back(StepL);
    genStmt(S->Then);
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    bindLabel(StepL);
    if (!Terminated) {
      if (S->ForStep)
        releaseVal(genExpr(S->ForStep));
      emitJump(HeadL);
    }
    bindLabel(EndL);
    return;
  }
  case StmtKind::Return: {
    if (S->E) {
      Val V = genExpr(S->E);
      Reg R = useVal(V);
      emitMove(Reg::V0, R);
      unpin(V);
      releaseVal(V);
    }
    emitJump(RetLabel);
    Terminated = true;
    return;
  }
  case StmtKind::Break:
    if (BreakLabels.empty()) {
      error(S->Line, "'break' outside a loop");
      return;
    }
    emitJump(BreakLabels.back());
    Terminated = true;
    return;
  case StmtKind::Continue:
    if (ContinueLabels.empty()) {
      error(S->Line, "'continue' outside a loop");
      return;
    }
    emitJump(ContinueLabels.back());
    Terminated = true;
    return;
  }
}

void FuncEmitter::genVarInit(const VarDecl *V) {
  if (!V->Init)
    return;
  if (V->Ty->isStruct() || V->Ty->isArray()) {
    error(0, "aggregate initializers are not supported");
    return;
  }
  Val Value = genExpr(V->Init);
  storeToVar(V, Value);
  releaseVal(Value);
}

//===----------------------------------------------------------------------===//
// Variables
//===----------------------------------------------------------------------===//

void FuncEmitter::storeToVar(const VarDecl *V, Val Value) {
  Reg R = useVal(Value);
  if (isPromoted(V)) {
    emitMove(PromotedTo.at(V), R);
  } else if (V->IsGlobal) {
    Reg Addr = takePoolReg();
    emitLa(Addr, V->Name, 0);
    emitMem(storeOpFor(V->Ty), R, Addr, 0);
    for (unsigned I = 0; I != PoolSize; ++I)
      if (TempPool[I] == Addr)
        PoolBusy[I] = false;
  } else {
    emitMem(storeOpFor(V->Ty), R, Reg::SP, SlotOf.at(V));
  }
  unpin(Value);
}

Val FuncEmitter::loadVar(const VarDecl *V) {
  // Arrays and structs evaluate to their address.
  if (V->Ty->isArray() || V->Ty->isStruct()) {
    Val A = allocResultVal();
    Reg R = Vals[A.Id].R;
    if (V->IsGlobal)
      emitLa(R, V->Name, 0);
    else
      emitI(Opcode::Addi, R, Reg::SP, SlotOf.at(V));
    return A;
  }
  if (isPromoted(V)) {
    Val A = allocResultVal();
    emitMove(Vals[A.Id].R, PromotedTo.at(V));
    return A;
  }
  Val A = allocResultVal();
  Reg R = Vals[A.Id].R;
  if (V->IsGlobal) {
    emitLa(R, V->Name, 0);
    emitMem(loadOpFor(V->Ty), R, R, 0);
  } else {
    emitMem(loadOpFor(V->Ty), R, Reg::SP, SlotOf.at(V));
  }
  return A;
}

//===----------------------------------------------------------------------===//
// Addresses
//===----------------------------------------------------------------------===//

AddrRef FuncEmitter::genAddr(const Expr *E) {
  switch (E->Kind) {
  case ExprKind::VarRef: {
    const VarDecl *V = E->Var;
    assert(!isPromoted(V) && "promoted variables have no address");
    AddrRef A;
    if (V->IsGlobal) {
      A.Kind = AddrRef::BaseKind::GlobalSym;
      A.Sym = V->Name;
    } else {
      A.Kind = AddrRef::BaseKind::FrameSp;
      A.Off = SlotOf.at(V);
    }
    return A;
  }
  case ExprKind::Unary: {
    assert(E->UOp == UnaryOp::Deref && "not an lvalue unary");
    AddrRef A;
    A.Kind = AddrRef::BaseKind::Register;
    A.Base = genExpr(E->Sub);
    return A;
  }
  case ExprKind::Index: {
    uint32_t ElemSize = E->Ty->size();
    // Constant index folds into the displacement.
    int32_t ConstIdx = 0;
    if (foldExpr(E->Sub2, ConstIdx)) {
      // Base may itself be an array lvalue (multi-dim) or pointer value.
      const Type *BaseTy = E->Sub->Ty;
      if (BaseTy->isArray() &&
          (E->Sub->Kind == ExprKind::VarRef ||
           E->Sub->Kind == ExprKind::Index ||
           E->Sub->Kind == ExprKind::Member) &&
          !(E->Sub->Kind == ExprKind::VarRef && isPromoted(E->Sub->Var))) {
        AddrRef A = genAddr(E->Sub);
        A.Off += ConstIdx * static_cast<int32_t>(ElemSize);
        return A;
      }
      AddrRef A;
      A.Kind = AddrRef::BaseKind::Register;
      A.Base = genExpr(E->Sub);
      A.Off = ConstIdx * static_cast<int32_t>(ElemSize);
      return A;
    }
    Val Base = genExpr(E->Sub); // Pointer value / decayed array address.
    Val Addr = genScaledIndex(Base, E->Sub2, ElemSize);
    AddrRef A;
    A.Kind = AddrRef::BaseKind::Register;
    A.Base = Addr;
    return A;
  }
  case ExprKind::Member: {
    if (E->IsArrow) {
      AddrRef A;
      A.Kind = AddrRef::BaseKind::Register;
      A.Base = genExpr(E->Sub);
      A.Off = static_cast<int32_t>(E->Field->Offset);
      return A;
    }
    AddrRef A = genAddr(E->Sub);
    A.Off += static_cast<int32_t>(E->Field->Offset);
    return A;
  }
  default:
    error(E->Line, "expression is not addressable");
    return AddrRef();
  }
}

Val FuncEmitter::materializeAddr(const AddrRef &A) {
  switch (A.Kind) {
  case AddrRef::BaseKind::FrameSp: {
    Val V = allocResultVal();
    emitI(Opcode::Addi, Vals[V.Id].R, Reg::SP, A.Off);
    return V;
  }
  case AddrRef::BaseKind::GlobalSym: {
    Val V = allocResultVal();
    emitLa(Vals[V.Id].R, A.Sym, A.Off);
    return V;
  }
  case AddrRef::BaseKind::Register: {
    if (A.Off == 0)
      return A.Base;
    Reg R = useVal(A.Base);
    emitI(Opcode::Addi, R, R, A.Off);
    unpin(A.Base);
    return A.Base;
  }
  }
  return Val();
}


Val FuncEmitter::loadFrom(const AddrRef &A, const Type *Ty) {
  Opcode Op = loadOpFor(Ty);
  switch (A.Kind) {
  case AddrRef::BaseKind::FrameSp: {
    Val V = allocResultVal();
    emitMem(Op, Vals[V.Id].R, Reg::SP, A.Off);
    return V;
  }
  case AddrRef::BaseKind::GlobalSym: {
    Val V = allocResultVal();
    Reg R = Vals[V.Id].R;
    emitLa(R, A.Sym, 0);
    emitMem(Op, R, R, A.Off);
    return V;
  }
  case AddrRef::BaseKind::Register: {
    Reg Base = useVal(A.Base);
    Val V = allocResultVal();
    emitMem(Op, Vals[V.Id].R, Base, A.Off);
    unpin(A.Base);
    releaseVal(A.Base);
    return V;
  }
  }
  return Val();
}

void FuncEmitter::storeTo(const AddrRef &A, const Type *Ty, Val V) {
  Opcode Op = storeOpFor(Ty);
  Reg Value = useVal(V);
  switch (A.Kind) {
  case AddrRef::BaseKind::FrameSp:
    emitMem(Op, Value, Reg::SP, A.Off);
    break;
  case AddrRef::BaseKind::GlobalSym: {
    Reg Addr = takePoolReg();
    emitLa(Addr, A.Sym, 0);
    emitMem(Op, Value, Addr, A.Off);
    for (unsigned I = 0; I != PoolSize; ++I)
      if (TempPool[I] == Addr)
        PoolBusy[I] = false;
    break;
  }
  case AddrRef::BaseKind::Register: {
    Reg Base = useVal(A.Base);
    emitMem(Op, Value, Base, A.Off);
    unpin(A.Base);
    releaseVal(A.Base);
    break;
  }
  }
  unpin(V);
}

Val FuncEmitter::genScaledIndex(Val Base, const Expr *IdxExpr,
                                uint32_t ElemSize) {
  Val Idx = genExpr(IdxExpr);
  Reg IdxR = useVal(Idx);
  if (ElemSize > 1) {
    if ((ElemSize & (ElemSize - 1)) == 0) {
      unsigned Shift = 0;
      for (uint32_t S = ElemSize; S > 1; S >>= 1)
        ++Shift;
      emitI(Opcode::Sll, IdxR, IdxR, static_cast<int32_t>(Shift));
    } else {
      Reg Scale = takePoolReg();
      emitLi(Scale, static_cast<int32_t>(ElemSize));
      emitR(Opcode::Mul, IdxR, IdxR, Scale);
      for (unsigned I = 0; I != PoolSize; ++I)
        if (TempPool[I] == Scale)
          PoolBusy[I] = false;
    }
  }
  Reg BaseR = useVal(Base);
  emitR(Opcode::Add, BaseR, BaseR, IdxR);
  unpin(Base);
  unpin(Idx);
  releaseVal(Idx);
  return Base;
}

//===----------------------------------------------------------------------===//
// Conditions
//===----------------------------------------------------------------------===//

static Opcode invertedBranch(BinaryOp Op) {
  // Branch taken when the comparison is FALSE.
  switch (Op) {
  case BinaryOp::Eq:
    return Opcode::Bne;
  case BinaryOp::Ne:
    return Opcode::Beq;
  case BinaryOp::Lt:
    return Opcode::Bge;
  case BinaryOp::Le:
    return Opcode::Bgt;
  case BinaryOp::Gt:
    return Opcode::Ble;
  case BinaryOp::Ge:
    return Opcode::Blt;
  default:
    return Opcode::Nop;
  }
}

void FuncEmitter::genCondBranch(const Expr *E, const std::string &FalseLabel) {
  if (HadError)
    return;
  // Every piece of intra-expression control flow funnels through here. Any
  // value still live from an enclosing expression must be forced to its
  // stack slot NOW, on the unconditionally-executed path: a spill triggered
  // later (a call's spillActiveVals, or pool pressure) would emit the store
  // inside just one arm of the branch, and the post-join reload would read
  // a slot the other arm never wrote.
  spillActiveVals();
  if (E->Kind == ExprKind::Binary) {
    Opcode Br = invertedBranch(E->BOp);
    if (Br != Opcode::Nop) {
      Val L = genExpr(E->Sub);
      Val R = genExpr(E->Sub2);
      Reg LR = useVal(L);
      Reg RR = useVal(R);
      emitBranch(Br, LR, RR, FalseLabel);
      unpin(L);
      unpin(R);
      releaseVal(R);
      releaseVal(L);
      return;
    }
    if (E->BOp == BinaryOp::LogicalAnd) {
      genCondBranch(E->Sub, FalseLabel);
      genCondBranch(E->Sub2, FalseLabel);
      return;
    }
    if (E->BOp == BinaryOp::LogicalOr) {
      std::string TrueL = freshLabel();
      std::string CheckR = freshLabel();
      // if (L) goto True; if (!R) goto False; True:
      (void)CheckR;
      Val L = genExpr(E->Sub);
      Reg LR = useVal(L);
      emitBranch(Opcode::Bne, LR, Reg::Zero, TrueL);
      unpin(L);
      releaseVal(L);
      genCondBranch(E->Sub2, FalseLabel);
      F.defineLabel(TrueL);
      return;
    }
  }
  if (E->Kind == ExprKind::Unary && E->UOp == UnaryOp::LogicalNot) {
    // !x false-branch == x true-branch: branch to FalseLabel when x != 0.
    Val V = genExpr(E->Sub);
    Reg R = useVal(V);
    emitBranch(Opcode::Bne, R, Reg::Zero, FalseLabel);
    unpin(V);
    releaseVal(V);
    return;
  }
  Val V = genExpr(E);
  Reg R = useVal(V);
  emitBranch(Opcode::Beq, R, Reg::Zero, FalseLabel);
  unpin(V);
  releaseVal(V);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Expr *FuncEmitter::foldExpr(const Expr *E, int32_t &Out) const {
  if (Opts.OptLevel < 1) {
    // At -O0 only literal constants fold (used for constant array indices,
    // which even unoptimized compilers fold into the addressing mode).
    if (E->Kind == ExprKind::IntLit) {
      Out = E->IntValue;
      return E;
    }
    return nullptr;
  }
  switch (E->Kind) {
  case ExprKind::IntLit:
    Out = E->IntValue;
    return E;
  case ExprKind::Unary: {
    // Folds must mirror the simulator's two's-complement semantics exactly
    // (and avoid host UB on the edge cases): wraparound add/sub/mul/neg,
    // INT_MIN/-1 == INT_MIN and INT_MIN%-1 == 0 like the Div/Rem handlers,
    // and *arithmetic* right shift to match Srav — folding >> logically is
    // an observable -O0 vs -O1 divergence on negative operands.
    int32_t Sub;
    if (E->UOp == UnaryOp::Neg && foldExpr(E->Sub, Sub)) {
      Out = static_cast<int32_t>(0u - static_cast<uint32_t>(Sub));
      return E;
    }
    if (E->UOp == UnaryOp::BitNot && foldExpr(E->Sub, Sub)) {
      Out = ~Sub;
      return E;
    }
    return nullptr;
  }
  case ExprKind::Binary: {
    int32_t L, R;
    if (!foldExpr(E->Sub, L) || !foldExpr(E->Sub2, R))
      return nullptr;
    switch (E->BOp) {
    case BinaryOp::Add:
      Out = static_cast<int32_t>(static_cast<uint32_t>(L) +
                                 static_cast<uint32_t>(R));
      return E;
    case BinaryOp::Sub:
      Out = static_cast<int32_t>(static_cast<uint32_t>(L) -
                                 static_cast<uint32_t>(R));
      return E;
    case BinaryOp::Mul:
      Out = static_cast<int32_t>(static_cast<uint32_t>(L) *
                                 static_cast<uint32_t>(R));
      return E;
    case BinaryOp::Div:
      if (R == 0)
        return nullptr;
      Out = (L == INT32_MIN && R == -1) ? INT32_MIN : L / R;
      return E;
    case BinaryOp::Rem:
      if (R == 0)
        return nullptr;
      Out = (L == INT32_MIN && R == -1) ? 0 : L % R;
      return E;
    case BinaryOp::And:
      Out = L & R;
      return E;
    case BinaryOp::Or:
      Out = L | R;
      return E;
    case BinaryOp::Xor:
      Out = L ^ R;
      return E;
    case BinaryOp::Shl:
      Out = static_cast<int32_t>(static_cast<uint32_t>(L)
                                 << (static_cast<uint32_t>(R) & 31));
      return E;
    case BinaryOp::Shr:
      Out = static_cast<int32_t>(static_cast<int64_t>(L) >>
                                 (static_cast<uint32_t>(R) & 31));
      return E;
    default:
      return nullptr;
    }
  }
  default:
    return nullptr;
  }
}

Val FuncEmitter::genCall(const Expr *E) {
  // Evaluate arguments left to right, then spill everything live and move
  // the arguments into $a0..$a3.
  std::vector<Val> Args;
  for (const Expr *Arg : E->Args)
    Args.push_back(genExpr(Arg));

  for (size_t I = 0; I != Args.size(); ++I) {
    Reg R = useVal(Args[I]);
    emitMove(static_cast<Reg>(static_cast<unsigned>(Reg::A0) + I), R);
    unpin(Args[I]);
    releaseVal(Args[I]);
  }
  spillActiveVals();
  emitCall(E->Callee);

  Val Result = allocResultVal();
  emitMove(Vals[Result.Id].R, Reg::V0);
  return Result;
}

Val FuncEmitter::genExpr(const Expr *E) {
  if (HadError)
    return Val{};

  int32_t Folded;
  if (E->Kind != ExprKind::IntLit && foldExpr(E, Folded)) {
    Val V = allocResultVal();
    emitLi(Vals[V.Id].R, Folded);
    return V;
  }

  switch (E->Kind) {
  case ExprKind::IntLit: {
    Val V = allocResultVal();
    emitLi(Vals[V.Id].R, E->IntValue);
    return V;
  }
  case ExprKind::VarRef:
    return loadVar(E->Var);
  case ExprKind::Cast:
    return genExpr(E->Sub); // All casts are value-preserving (32-bit).
  case ExprKind::Assign: {
    // Evaluate RHS first, then the target address (GCC order varies; this
    // one keeps the value live across address computation).
    Val Value = genExpr(E->Sub2);
    const Expr *Target = E->Sub;
    if (Target->Kind == ExprKind::VarRef &&
        (isPromoted(Target->Var) ||
         (!Target->Var->IsGlobal && !Target->Var->Ty->isArray() &&
          !Target->Var->Ty->isStruct()) ||
         Target->Var->IsGlobal)) {
      // Direct variable store (keeps sp-relative stores compact).
      if (Target->Var->Ty->isArray() || Target->Var->Ty->isStruct()) {
        error(E->Line, "cannot assign to an aggregate");
        return Value;
      }
      storeToVar(Target->Var, Value);
      return Value;
    }
    AddrRef A = genAddr(Target);
    storeTo(A, Target->Ty, Value);
    return Value;
  }
  case ExprKind::Unary: {
    switch (E->UOp) {
    case UnaryOp::AddrOf: {
      AddrRef A = genAddr(E->Sub);
      return materializeAddr(A);
    }
    case UnaryOp::Deref: {
      if (E->Ty->isArray() || E->Ty->isStruct()) {
        // *p where p points to an aggregate: the value is the address.
        return genExpr(E->Sub);
      }
      AddrRef A = genAddr(E);
      return loadFrom(A, E->Ty);
    }
    case UnaryOp::Neg: {
      Val V = genExpr(E->Sub);
      Reg R = useVal(V);
      emitR(Opcode::Sub, R, Reg::Zero, R);
      unpin(V);
      return V;
    }
    case UnaryOp::BitNot: {
      Val V = genExpr(E->Sub);
      Reg R = useVal(V);
      emitR(Opcode::Nor, R, R, Reg::Zero);
      unpin(V);
      return V;
    }
    case UnaryOp::LogicalNot: {
      Val V = genExpr(E->Sub);
      Reg R = useVal(V);
      emitI(Opcode::Sltiu, R, R, 1);
      unpin(V);
      return V;
    }
    }
    return Val{};
  }
  case ExprKind::Binary: {
    BinaryOp Op = E->BOp;
    if (Op == BinaryOp::LogicalAnd || Op == BinaryOp::LogicalOr) {
      std::string FalseL = freshLabel();
      std::string EndL = freshLabel();
      genCondBranch(E, FalseL);
      Val V = allocResultVal();
      Reg R = Vals[V.Id].R;
      emitLi(R, 1);
      emitJump(EndL);
      F.defineLabel(FalseL);
      emitLi(R, 0);
      F.defineLabel(EndL);
      return V;
    }

    const Type *LT = E->Sub->Ty;
    const Type *RT = E->Sub2->Ty;
    bool PtrL = LT->isPointer() || LT->isArray();
    bool PtrR = RT->isPointer() || RT->isArray();

    // Pointer +/- integer scales by the element size.
    if ((Op == BinaryOp::Add || Op == BinaryOp::Sub) && (PtrL || PtrR)) {
      if (PtrL && PtrR && Op == BinaryOp::Sub) {
        Val L = genExpr(E->Sub);
        Val R = genExpr(E->Sub2);
        Reg LR = useVal(L);
        Reg RR = useVal(R);
        emitR(Opcode::Sub, LR, LR, RR);
        unpin(L);
        unpin(R);
        releaseVal(R);
        uint32_t Size = LT->pointee() ? LT->pointee()->size() : 1;
        if (Size > 1) {
          if ((Size & (Size - 1)) == 0) {
            unsigned Shift = 0;
            for (uint32_t S = Size; S > 1; S >>= 1)
              ++Shift;
            Reg LR2 = useVal(L);
            emitI(Opcode::Sra, LR2, LR2, static_cast<int32_t>(Shift));
            unpin(L);
          } else {
            Reg LR2 = useVal(L);
            Reg Scale = takePoolReg();
            emitLi(Scale, static_cast<int32_t>(Size));
            emitR(Opcode::Div, LR2, LR2, Scale);
            for (unsigned I = 0; I != PoolSize; ++I)
              if (TempPool[I] == Scale)
                PoolBusy[I] = false;
            unpin(L);
          }
        }
        return L;
      }
      const Expr *PtrE = PtrL ? E->Sub : E->Sub2;
      const Expr *IntE = PtrL ? E->Sub2 : E->Sub;
      const Type *PT = PtrL ? LT : RT;
      uint32_t Size = PT->pointee() ? PT->pointee()->size() : 1;
      Val P = genExpr(PtrE);
      Val I = genExpr(IntE);
      Reg IR = useVal(I);
      if (Size > 1) {
        if ((Size & (Size - 1)) == 0) {
          unsigned Shift = 0;
          for (uint32_t S = Size; S > 1; S >>= 1)
            ++Shift;
          emitI(Opcode::Sll, IR, IR, static_cast<int32_t>(Shift));
        } else {
          Reg Scale = takePoolReg();
          emitLi(Scale, static_cast<int32_t>(Size));
          emitR(Opcode::Mul, IR, IR, Scale);
          for (unsigned K = 0; K != PoolSize; ++K)
            if (TempPool[K] == Scale)
              PoolBusy[K] = false;
        }
      }
      Reg PR = useVal(P);
      emitR(Op == BinaryOp::Add ? Opcode::Add : Opcode::Sub, PR, PR, IR);
      unpin(P);
      unpin(I);
      releaseVal(I);
      return P;
    }

    Val L = genExpr(E->Sub);
    Val R = genExpr(E->Sub2);
    Reg LR = useVal(L);
    Reg RR = useVal(R);
    switch (Op) {
    case BinaryOp::Add:
      emitR(Opcode::Add, LR, LR, RR);
      break;
    case BinaryOp::Sub:
      emitR(Opcode::Sub, LR, LR, RR);
      break;
    case BinaryOp::Mul:
      emitR(Opcode::Mul, LR, LR, RR);
      break;
    case BinaryOp::Div:
      emitR(Opcode::Div, LR, LR, RR);
      break;
    case BinaryOp::Rem:
      emitR(Opcode::Rem, LR, LR, RR);
      break;
    case BinaryOp::And:
      emitR(Opcode::And, LR, LR, RR);
      break;
    case BinaryOp::Or:
      emitR(Opcode::Or, LR, LR, RR);
      break;
    case BinaryOp::Xor:
      emitR(Opcode::Xor, LR, LR, RR);
      break;
    case BinaryOp::Shl:
      emitR(Opcode::Sllv, LR, LR, RR);
      break;
    case BinaryOp::Shr:
      emitR(Opcode::Srav, LR, LR, RR);
      break;
    case BinaryOp::Eq:
      emitR(Opcode::Xor, LR, LR, RR);
      emitI(Opcode::Sltiu, LR, LR, 1);
      break;
    case BinaryOp::Ne:
      emitR(Opcode::Xor, LR, LR, RR);
      emitR(Opcode::Sltu, LR, Reg::Zero, LR);
      break;
    case BinaryOp::Lt:
      emitR(Opcode::Slt, LR, LR, RR);
      break;
    case BinaryOp::Gt:
      emitR(Opcode::Slt, LR, RR, LR);
      break;
    case BinaryOp::Le:
      emitR(Opcode::Slt, LR, RR, LR);
      emitI(Opcode::Xori, LR, LR, 1);
      break;
    case BinaryOp::Ge:
      emitR(Opcode::Slt, LR, LR, RR);
      emitI(Opcode::Xori, LR, LR, 1);
      break;
    default:
      error(E->Line, "unsupported binary operator");
      break;
    }
    unpin(L);
    unpin(R);
    releaseVal(R);
    return L;
  }
  case ExprKind::Cond: {
    std::string ElseL = freshLabel();
    std::string EndL = freshLabel();
    int32_t Slot = allocTempSlot();
    genCondBranch(E->Sub, ElseL);
    {
      Val T = genExpr(E->Sub2);
      Reg R = useVal(T);
      emitMem(Opcode::Sw, R, Reg::SP, Slot);
      unpin(T);
      releaseVal(T);
    }
    emitJump(EndL);
    F.defineLabel(ElseL);
    {
      Val FV = genExpr(E->Sub3);
      Reg R = useVal(FV);
      emitMem(Opcode::Sw, R, Reg::SP, Slot);
      unpin(FV);
      releaseVal(FV);
    }
    F.defineLabel(EndL);
    Val Result = allocResultVal();
    emitMem(Opcode::Lw, Vals[Result.Id].R, Reg::SP, Slot);
    freeTempSlot(Slot);
    return Result;
  }
  case ExprKind::Call:
    return genCall(E);
  case ExprKind::Index:
  case ExprKind::Member: {
    if (E->Ty->isArray() || E->Ty->isStruct()) {
      // Aggregate-valued access: the value is the address.
      AddrRef A = genAddr(E);
      return materializeAddr(A);
    }
    AddrRef A = genAddr(E);
    return loadFrom(A, E->Ty);
  }
  }
  return Val{};
}

} // namespace

//===----------------------------------------------------------------------===//
// Module-level generation
//===----------------------------------------------------------------------===//

CodeGenResult mcc::generateCode(const TranslationUnit &Unit,
                                const CodeGenOptions &Opts) {
  CodeGenResult Result;
  Result.M = std::make_unique<Module>();
  Module &M = *Result.M;

  // Globals first: data, initializers, and BDH type metadata.
  for (const VarDecl *V : Unit.Globals) {
    Global G;
    G.Name = V->Name;
    G.Size = std::max<uint32_t>(V->Ty->size(), 1);
    G.Align = std::max<uint32_t>(V->Ty->align(), 4);
    if (V->Init) {
      // The frontend guarantees constant initializers; IntLit after folding.
      // Evaluate the same way the parser's checker did.
      struct ConstEval {
        static int32_t eval(const Expr *E) {
          switch (E->Kind) {
          case ExprKind::IntLit:
            return E->IntValue;
          case ExprKind::Unary:
            if (E->UOp == UnaryOp::Neg)
              return static_cast<int32_t>(0u -
                                          static_cast<uint32_t>(eval(E->Sub)));
            if (E->UOp == UnaryOp::BitNot)
              return ~eval(E->Sub);
            return 0;
          case ExprKind::Binary: {
            // Must agree operator-for-operator with Parser::evalConst (which
            // validated this very expression) and with the simulator's
            // two's-complement semantics.
            int32_t L = eval(E->Sub), R = eval(E->Sub2);
            switch (E->BOp) {
            case BinaryOp::Add:
              return static_cast<int32_t>(static_cast<uint32_t>(L) +
                                          static_cast<uint32_t>(R));
            case BinaryOp::Sub:
              return static_cast<int32_t>(static_cast<uint32_t>(L) -
                                          static_cast<uint32_t>(R));
            case BinaryOp::Mul:
              return static_cast<int32_t>(static_cast<uint32_t>(L) *
                                          static_cast<uint32_t>(R));
            case BinaryOp::Div:
              if (R == 0)
                return 0;
              return (L == INT32_MIN && R == -1) ? INT32_MIN : L / R;
            case BinaryOp::Rem:
              if (R == 0)
                return 0;
              return (L == INT32_MIN && R == -1) ? 0 : L % R;
            case BinaryOp::Shl:
              return static_cast<int32_t>(static_cast<uint32_t>(L)
                                          << (static_cast<uint32_t>(R) & 31));
            case BinaryOp::Shr:
              return static_cast<int32_t>(static_cast<int64_t>(L) >>
                                          (static_cast<uint32_t>(R) & 31));
            default:
              return 0;
            }
          }
          default:
            return 0;
          }
        }
      };
      int32_t Value = ConstEval::eval(V->Init);
      for (unsigned B = 0; B != 4; ++B)
        G.Init.push_back(static_cast<uint8_t>(
            (static_cast<uint32_t>(Value) >> (8 * B)) & 0xFF));
    }
    M.addGlobal(std::move(G));

    VarType VT;
    if (V->Ty->isArray()) {
      VT.Kind = VarKind::Array;
      const Type *Elem = V->Ty;
      while (Elem->isArray())
        Elem = Elem->pointee();
      VT.IsPointer = Elem->isPointer();
    } else if (V->Ty->isStruct()) {
      VT.Kind = VarKind::StructObj;
      for (const StructField &Fld : V->Ty->structDecl()->Fields)
        VT.Fields.push_back(
            FieldType{Fld.Offset, Fld.Ty->size(), Fld.Ty->isPointer()});
    } else {
      VT.Kind = VarKind::Scalar;
      VT.IsPointer = V->Ty->isPointer();
    }
    VT.Size = std::max<uint32_t>(V->Ty->size(), 1);
    M.typeInfo().setGlobalType(V->Name, VT);
  }

  for (const FuncDecl *FD : Unit.Functions) {
    Function &F = M.addFunction(FD->Name);
    FuncEmitter Emitter(Unit, *FD, M, F, Opts, Result.Diags);
    Emitter.emitFunction();
  }

  if (!Result.Diags.empty()) {
    Result.M.reset();
    return Result;
  }
  if (!M.finalize()) {
    Result.Diags.push_back(CodeGenDiag{0, "internal: unresolved label"});
    Result.M.reset();
  }
  return Result;
}
