//===- mcc/CodeGen.h - MinC to masm code generation ---------------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a typed MinC translation unit to the MIPS-like assembly module.
///
/// At -O0 the generated code mirrors GCC's unoptimized MIPS output, which is
/// what the paper trains on: every local lives in a stack slot addressed off
/// $sp, every variable reference is a memory access, expression temporaries
/// use $t0..$t7 with stack spills when the pool runs dry, and globals are
/// addressed via `la` (a $gp-class address for the H1 criterion).
///
/// At -O1, scalar locals whose address is never taken are promoted to the
/// callee-saved registers $s0..$s7 (most-used first) and constant
/// subexpressions are folded — reproducing the paper's "-O" configuration,
/// where loop indices become register recurrences (criterion H4) and stack
/// traffic shrinks.
///
/// The generator also emits the `.var`/`.gvar` symbol-table type metadata
/// that the static BDH baseline consumes.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MCC_CODEGEN_H
#define DLQ_MCC_CODEGEN_H

#include "masm/Module.h"
#include "mcc/Ast.h"

#include <memory>
#include <string>
#include <vector>

namespace dlq {
namespace mcc {

/// Code generation options.
struct CodeGenOptions {
  /// 0 = fully naive (paper's unoptimized configuration), 1 = register
  /// promotion + constant folding (paper's '-O' configuration).
  unsigned OptLevel = 0;

  CodeGenOptions() {}
};

/// One code generation diagnostic (unsupported construct, etc.).
struct CodeGenDiag {
  unsigned Line = 0;
  std::string Message;
};

/// Result of lowering a translation unit.
struct CodeGenResult {
  std::unique_ptr<masm::Module> M;
  std::vector<CodeGenDiag> Diags;

  bool ok() const { return Diags.empty() && M != nullptr; }
  std::string diagText() const;
};

/// Lowers \p Unit. The returned module is finalized (branch targets
/// resolved) when ok().
CodeGenResult generateCode(const TranslationUnit &Unit,
                           const CodeGenOptions &Opts = CodeGenOptions());

} // namespace mcc
} // namespace dlq

#endif // DLQ_MCC_CODEGEN_H
