//===- mcc/Compiler.cpp --------------------------------------------------------//

#include "mcc/Compiler.h"

#include "mcc/Frontend.h"

using namespace dlq;
using namespace dlq::mcc;

CompileResult mcc::compile(std::string_view Source,
                           const CompileOptions &Opts) {
  CompileResult Result;

  FrontendResult FE = parseMinC(Source);
  if (!FE.ok()) {
    Result.Errors = FE.diagText();
    if (Result.Errors.empty())
      Result.Errors = "unknown frontend failure\n";
    return Result;
  }

  CodeGenOptions CGOpts;
  CGOpts.OptLevel = Opts.OptLevel;
  CodeGenResult CG = generateCode(*FE.Unit, CGOpts);
  if (!CG.ok()) {
    Result.Errors = CG.diagText();
    if (Result.Errors.empty())
      Result.Errors = "unknown codegen failure\n";
    return Result;
  }

  Result.M = std::move(CG.M);
  return Result;
}
