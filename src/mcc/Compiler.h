//===- mcc/Compiler.h - One-call MinC compiler driver --------------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// compile(): MinC source text -> finalized masm module (with symbol-table
/// type metadata), the role GCC-for-MIPS plays in the paper's toolchain.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MCC_COMPILER_H
#define DLQ_MCC_COMPILER_H

#include "masm/Module.h"
#include "mcc/CodeGen.h"

#include <memory>
#include <string>
#include <string_view>

namespace dlq {
namespace mcc {

/// Compiler options.
struct CompileOptions {
  unsigned OptLevel = 0; ///< 0 (paper's unoptimized) or 1 (paper's '-O').

  CompileOptions() {}
};

/// Compilation outcome.
struct CompileResult {
  std::unique_ptr<masm::Module> M;
  std::string Errors; ///< "line N: message" lines; empty on success.

  bool ok() const { return M != nullptr; }
};

/// Compiles MinC \p Source to a finalized module.
CompileResult compile(std::string_view Source,
                      const CompileOptions &Opts = CompileOptions());

} // namespace mcc
} // namespace dlq

#endif // DLQ_MCC_COMPILER_H
