//===- mcc/Frontend.cpp --------------------------------------------------------//

#include "mcc/Frontend.h"

#include "support/Format.h"

#include <cassert>
#include <cstdint>
#include <map>

using namespace dlq;
using namespace dlq::mcc;

std::string FrontendResult::diagText() const {
  std::string Out;
  for (const FrontendDiag &D : Diags)
    Out += formatString("line %u: %s\n", D.Line, D.Message.c_str());
  return Out;
}

namespace {

/// Builtin runtime function signatures.
struct BuiltinSig {
  const char *Name;
  const char *Ret;    // "void", "int", "voidptr"
  unsigned NumArgs;
};

constexpr BuiltinSig Builtins[] = {
    {"malloc", "voidptr", 1}, {"calloc", "voidptr", 2}, {"free", "void", 1},
    {"rand", "int", 0},       {"srand", "void", 1},     {"print_int", "void", 1},
    {"print_char", "void", 1}, {"exit", "void", 1},
};

class Parser {
public:
  explicit Parser(std::string_view Source) : Toks(tokenize(Source)) {
    Result.Unit = std::make_unique<TranslationUnit>();
    U = Result.Unit.get();
  }

  FrontendResult take() && { return std::move(Result); }

  void run();

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  FrontendResult Result;
  TranslationUnit *U = nullptr;
  bool Failed = false;

  // Scopes: innermost last.
  std::vector<std::map<std::string, VarDecl *>> Scopes;
  std::map<std::string, FuncDecl *> Functions;
  FuncDecl *CurFunc = nullptr;
  uint32_t NextLocalOrdinal = 0;

  //===--- token helpers --------------------------------------------------===//
  const Token &peek(unsigned Ahead = 0) const {
    size_t P = Pos + Ahead;
    return P < Toks.size() ? Toks[P] : Toks.back();
  }
  const Token &cur() const { return peek(0); }
  Token advance() {
    Token T = cur();
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }
  bool check(TokKind K) const { return cur().is(K); }
  bool accept(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    error(formatString("expected %s %s, got %s", tokKindName(K).c_str(),
                       Context, tokKindName(cur().Kind).c_str()));
    return false;
  }

  void error(const std::string &Message) {
    if (!Failed)
      Result.Diags.push_back(FrontendDiag{cur().Line, Message});
    Failed = true;
  }

  //===--- scope helpers --------------------------------------------------===//
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  VarDecl *lookupVar(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }
  bool declareVar(VarDecl *V) {
    auto [It, Inserted] = Scopes.back().emplace(V->Name, V);
    (void)It;
    if (!Inserted)
      error("redefinition of '" + V->Name + "'");
    return Inserted;
  }

  //===--- types ----------------------------------------------------------===//
  bool atTypeStart() const {
    return check(TokKind::KwInt) || check(TokKind::KwChar) ||
           check(TokKind::KwVoid) || check(TokKind::KwStruct);
  }
  const Type *parseTypeSpec();
  const Type *parsePointerSuffix(const Type *Base);

  //===--- declarations ---------------------------------------------------===//
  void parseTopLevel();
  void parseStructDecl();
  void parseFunctionRest(const Type *RetTy, const std::string &Name);
  VarDecl *parseDeclarator(const Type *Base, bool IsGlobal);

  //===--- statements -----------------------------------------------------===//
  Stmt *parseStmt();
  Stmt *parseBlock();

  //===--- expressions ----------------------------------------------------===//
  Expr *parseExpr();       // assignment level
  Expr *parseCond();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  //===--- semantic helpers -----------------------------------------------===//
  const Type *decayed(const Type *T) {
    if (T && T->isArray())
      return U->Types.getPointer(T->pointee());
    return T;
  }
  Expr *intLit(int32_t Value, unsigned Line);
  bool isLvalue(const Expr *E) const;
  bool typesAssignable(const Type *Dst, const Type *Src) const;
  Expr *makeBinary(BinaryOp Op, Expr *L, Expr *R, unsigned Line);
  int32_t evalConst(const Expr *E, bool &Ok) const;
};

//===----------------------------------------------------------------------===//
// Types and declarators
//===----------------------------------------------------------------------===//

const Type *Parser::parseTypeSpec() {
  if (accept(TokKind::KwInt))
    return U->Types.intType();
  if (accept(TokKind::KwChar))
    return U->Types.charType();
  if (accept(TokKind::KwVoid))
    return U->Types.voidType();
  if (accept(TokKind::KwStruct)) {
    if (!check(TokKind::Ident)) {
      error("expected struct name");
      return U->Types.intType();
    }
    std::string Name = advance().Text;
    StructDecl *S = U->Types.declareStruct(Name);
    return U->Types.getStructType(S);
  }
  error("expected a type");
  return U->Types.intType();
}

const Type *Parser::parsePointerSuffix(const Type *Base) {
  const Type *T = Base;
  while (accept(TokKind::Star))
    T = U->Types.getPointer(T);
  return T;
}

VarDecl *Parser::parseDeclarator(const Type *Base, bool IsGlobal) {
  const Type *T = parsePointerSuffix(Base);
  if (!check(TokKind::Ident)) {
    error("expected variable name");
    return nullptr;
  }
  std::string Name = advance().Text;

  // Array suffixes, innermost last: int a[2][3] is array[2] of array[3].
  // Sizes may be constant expressions (e.g. `int t[N * 4]` after parameter
  // substitution).
  std::vector<uint32_t> Dims;
  while (accept(TokKind::LBracket)) {
    Expr *SizeExpr = parseCond();
    if (!SizeExpr)
      return nullptr;
    bool Ok = false;
    int32_t Size = evalConst(SizeExpr, Ok);
    if (!Ok || Size <= 0) {
      error("array size must be a positive constant expression");
      return nullptr;
    }
    Dims.push_back(static_cast<uint32_t>(Size));
    if (!expect(TokKind::RBracket, "after array size"))
      return nullptr;
  }
  for (auto It = Dims.rbegin(); It != Dims.rend(); ++It)
    T = U->Types.getArray(T, *It);

  if (T->isStruct() && !T->structDecl()->Complete)
    error("variable of incomplete struct type '" + T->spelling() + "'");
  if (T->isVoid())
    error("variable '" + Name + "' has void type");

  VarDecl *V = U->Nodes.newVar();
  V->Name = Name;
  V->Ty = T;
  V->IsGlobal = IsGlobal;
  return V;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

void Parser::run() {
  pushScope(); // Global scope.

  // Predeclare builtins.
  for (const BuiltinSig &B : Builtins) {
    FuncDecl *F = U->Nodes.newFunc();
    F->Name = B.Name;
    F->IsBuiltin = true;
    F->RetTy = std::string_view(B.Ret) == "int" ? U->Types.intType()
               : std::string_view(B.Ret) == "voidptr"
                   ? U->Types.getPointer(U->Types.voidType())
                   : U->Types.voidType();
    for (unsigned I = 0; I != B.NumArgs; ++I) {
      VarDecl *P = U->Nodes.newVar();
      P->Name = formatString("arg%u", I);
      // free() takes void*; every other builtin argument is int.
      P->Ty = std::string_view(B.Name) == "free"
                  ? U->Types.getPointer(U->Types.voidType())
                  : U->Types.intType();
      P->IsParam = true;
      F->Params.push_back(P);
    }
    Functions[F->Name] = F;
  }

  while (!check(TokKind::Eof) && !Failed)
    parseTopLevel();

  if (check(TokKind::Error))
    error(cur().Text);
}

void Parser::parseTopLevel() {
  if (check(TokKind::KwStruct) && peek(1).is(TokKind::Ident) &&
      peek(2).is(TokKind::LBrace)) {
    parseStructDecl();
    return;
  }

  const Type *Base = parseTypeSpec();
  if (Failed)
    return;

  // Look ahead past '*'s for the '(' that marks a function.
  size_t Save = Pos;
  const Type *Full = parsePointerSuffix(Base);
  if (check(TokKind::Ident) && peek(1).is(TokKind::LParen)) {
    std::string Name = advance().Text;
    parseFunctionRest(Full, Name);
    return;
  }
  Pos = Save;

  // Global variable(s).
  do {
    VarDecl *V = parseDeclarator(Base, /*IsGlobal=*/true);
    if (!V)
      return;
    V->Ordinal = static_cast<uint32_t>(U->Globals.size());
    if (accept(TokKind::Assign)) {
      Expr *Init = parseCond();
      if (!Init)
        return;
      bool Ok = false;
      (void)evalConst(Init, Ok);
      if (!Ok) {
        error("global initializer must be a constant expression");
        return;
      }
      V->Init = Init;
    }
    if (!declareVar(V))
      return;
    U->Globals.push_back(V);
  } while (accept(TokKind::Comma));
  expect(TokKind::Semi, "after global declaration");
}

void Parser::parseStructDecl() {
  advance(); // struct
  std::string Name = advance().Text;
  StructDecl *S = U->Types.declareStruct(Name);
  if (S->Complete) {
    error("redefinition of struct '" + Name + "'");
    return;
  }
  expect(TokKind::LBrace, "to open struct body");
  while (!check(TokKind::RBrace) && !check(TokKind::Eof) && !Failed) {
    const Type *Base = parseTypeSpec();
    do {
      VarDecl *F = parseDeclarator(Base, /*IsGlobal=*/false);
      if (!F)
        return;
      // Self-referential pointers are fine; embedded incomplete structs are
      // rejected by parseDeclarator.
      S->Fields.push_back(StructField{F->Name, F->Ty, 0});
    } while (accept(TokKind::Comma));
    expect(TokKind::Semi, "after struct field");
  }
  expect(TokKind::RBrace, "to close struct body");
  expect(TokKind::Semi, "after struct definition");
  U->Types.layoutStruct(*S);
}

void Parser::parseFunctionRest(const Type *RetTy, const std::string &Name) {
  FuncDecl *F = U->Nodes.newFunc();
  F->Name = Name;
  F->RetTy = RetTy;

  if (Functions.count(Name)) {
    error("redefinition of function '" + Name + "'");
    return;
  }
  Functions[Name] = F;
  CurFunc = F;
  NextLocalOrdinal = 0;

  expect(TokKind::LParen, "after function name");
  pushScope();
  if (accept(TokKind::KwVoid) && check(TokKind::RParen)) {
    // (void) parameter list.
  } else if (!check(TokKind::RParen)) {
    do {
      const Type *Base = parseTypeSpec();
      VarDecl *P = parseDeclarator(Base, /*IsGlobal=*/false);
      if (!P)
        return;
      if (P->Ty->isArray() || P->Ty->isStruct()) {
        error("parameter '" + P->Name +
              "' must have scalar or pointer type");
        return;
      }
      P->IsParam = true;
      P->Ordinal = NextLocalOrdinal++;
      if (!declareVar(P))
        return;
      F->Params.push_back(P);
      F->Locals.push_back(P);
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "after parameters");
  if (F->Params.size() > 4)
    error("at most 4 parameters are supported");

  if (!check(TokKind::LBrace)) {
    error("expected function body");
    return;
  }
  F->Body = parseBlock();
  popScope();
  CurFunc = nullptr;
  if (!Failed)
    U->Functions.push_back(F);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Stmt *Parser::parseBlock() {
  unsigned Line = cur().Line;
  expect(TokKind::LBrace, "to open block");
  Stmt *B = U->Nodes.newStmt(StmtKind::Block);
  B->Line = Line;
  pushScope();
  while (!check(TokKind::RBrace) && !check(TokKind::Eof) && !Failed) {
    Stmt *S = parseStmt();
    if (!S)
      break;
    B->Body.push_back(S);
  }
  popScope();
  expect(TokKind::RBrace, "to close block");
  return Failed ? nullptr : B;
}

Stmt *Parser::parseStmt() {
  unsigned Line = cur().Line;

  if (check(TokKind::LBrace))
    return parseBlock();

  if (accept(TokKind::Semi)) {
    Stmt *S = U->Nodes.newStmt(StmtKind::Empty);
    S->Line = Line;
    return S;
  }

  if (atTypeStart()) {
    // Local declaration. `struct x { ... }` inside functions is not
    // supported; struct definitions are file scope only.
    const Type *Base = parseTypeSpec();
    Stmt *Block = nullptr;
    Stmt *Single = nullptr;
    do {
      VarDecl *V = parseDeclarator(Base, /*IsGlobal=*/false);
      if (!V)
        return nullptr;
      V->Ordinal = NextLocalOrdinal++;
      if (!declareVar(V))
        return nullptr;
      CurFunc->Locals.push_back(V);
      if (accept(TokKind::Assign)) {
        if (V->Ty->isStruct() || V->Ty->isArray()) {
          error("aggregate initializers are not supported");
          return nullptr;
        }
        V->Init = parseExpr();
        if (!V->Init)
          return nullptr;
        if (!typesAssignable(decayed(V->Ty), decayed(V->Init->Ty))) {
          error("cannot initialize '" + V->Ty->spelling() + "' from '" +
                V->Init->Ty->spelling() + "'");
          return nullptr;
        }
      }
      Stmt *S = U->Nodes.newStmt(StmtKind::Decl);
      S->Line = Line;
      S->Decl = V;
      if (!Single) {
        Single = S;
      } else {
        if (!Block) {
          Block = U->Nodes.newStmt(StmtKind::Block);
          Block->Line = Line;
          Block->Body.push_back(Single);
        }
        Block->Body.push_back(S);
      }
    } while (accept(TokKind::Comma));
    expect(TokKind::Semi, "after declaration");
    return Block ? Block : Single;
  }

  if (accept(TokKind::KwIf)) {
    expect(TokKind::LParen, "after 'if'");
    Stmt *S = U->Nodes.newStmt(StmtKind::If);
    S->Line = Line;
    S->E = parseExpr();
    expect(TokKind::RParen, "after if condition");
    S->Then = parseStmt();
    if (accept(TokKind::KwElse))
      S->Else = parseStmt();
    return Failed ? nullptr : S;
  }

  if (accept(TokKind::KwWhile)) {
    expect(TokKind::LParen, "after 'while'");
    Stmt *S = U->Nodes.newStmt(StmtKind::While);
    S->Line = Line;
    S->E = parseExpr();
    expect(TokKind::RParen, "after while condition");
    S->Then = parseStmt();
    return Failed ? nullptr : S;
  }

  if (accept(TokKind::KwFor)) {
    expect(TokKind::LParen, "after 'for'");
    Stmt *S = U->Nodes.newStmt(StmtKind::For);
    S->Line = Line;
    if (!check(TokKind::Semi))
      S->ForInit = parseExpr();
    expect(TokKind::Semi, "after for-init");
    if (!check(TokKind::Semi))
      S->E = parseExpr();
    expect(TokKind::Semi, "after for-condition");
    if (!check(TokKind::RParen))
      S->ForStep = parseExpr();
    expect(TokKind::RParen, "after for-step");
    S->Then = parseStmt();
    return Failed ? nullptr : S;
  }

  if (accept(TokKind::KwReturn)) {
    Stmt *S = U->Nodes.newStmt(StmtKind::Return);
    S->Line = Line;
    if (!check(TokKind::Semi)) {
      S->E = parseExpr();
      if (S->E && CurFunc->RetTy->isVoid())
        error("void function returns a value");
    } else if (!CurFunc->RetTy->isVoid()) {
      error("non-void function returns no value");
    }
    expect(TokKind::Semi, "after return");
    return Failed ? nullptr : S;
  }

  if (accept(TokKind::KwBreak)) {
    expect(TokKind::Semi, "after 'break'");
    Stmt *S = U->Nodes.newStmt(StmtKind::Break);
    S->Line = Line;
    return S;
  }
  if (accept(TokKind::KwContinue)) {
    expect(TokKind::Semi, "after 'continue'");
    Stmt *S = U->Nodes.newStmt(StmtKind::Continue);
    S->Line = Line;
    return S;
  }

  Stmt *S = U->Nodes.newStmt(StmtKind::Expr);
  S->Line = Line;
  S->E = parseExpr();
  expect(TokKind::Semi, "after expression");
  return Failed ? nullptr : S;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::intLit(int32_t Value, unsigned Line) {
  Expr *E = U->Nodes.newExpr(ExprKind::IntLit);
  E->IntValue = Value;
  E->Ty = U->Types.intType();
  E->Line = Line;
  return E;
}

bool Parser::isLvalue(const Expr *E) const {
  switch (E->Kind) {
  case ExprKind::VarRef:
    return true;
  case ExprKind::Index:
    return true;
  case ExprKind::Member:
    return true;
  case ExprKind::Unary:
    return E->UOp == UnaryOp::Deref;
  default:
    return false;
  }
}

bool Parser::typesAssignable(const Type *Dst, const Type *Src) const {
  if (!Dst || !Src)
    return false;
  if (Dst == Src)
    return true;
  if (Dst->isArithmetic() && Src->isArithmetic())
    return true;
  if (Dst->isPointer() && Src->isPointer())
    return Dst->isVoidPointer() || Src->isVoidPointer() ||
           Dst->pointee() == Src->pointee();
  // Allow `p = 0` null pointer assignment.
  if (Dst->isPointer() && Src->isArithmetic())
    return true;
  return false;
}

Expr *Parser::parseExpr() {
  Expr *L = parseCond();
  if (!L)
    return nullptr;
  if (!accept(TokKind::Assign))
    return L;
  if (!isLvalue(L)) {
    error("left side of assignment is not assignable");
    return nullptr;
  }
  if (L->Ty->isStruct() || L->Ty->isArray()) {
    error("aggregate assignment is not supported");
    return nullptr;
  }
  Expr *R = parseExpr(); // Right-associative.
  if (!R)
    return nullptr;
  if (!typesAssignable(decayed(L->Ty), decayed(R->Ty))) {
    error("cannot assign '" + R->Ty->spelling() + "' to '" +
          L->Ty->spelling() + "'");
    return nullptr;
  }
  Expr *E = U->Nodes.newExpr(ExprKind::Assign);
  E->Line = L->Line;
  E->Sub = L;
  E->Sub2 = R;
  E->Ty = decayed(L->Ty);
  return E;
}

Expr *Parser::parseCond() {
  Expr *C = parseBinary(0);
  if (!C || !accept(TokKind::Question))
    return C;
  Expr *T = parseExpr();
  if (!expect(TokKind::Colon, "in conditional expression"))
    return nullptr;
  Expr *F = parseCond();
  if (!T || !F)
    return nullptr;
  Expr *E = U->Nodes.newExpr(ExprKind::Cond);
  E->Line = C->Line;
  E->Sub = C;
  E->Sub2 = T;
  E->Sub3 = F;
  E->Ty = decayed(T->Ty);
  return E;
}

namespace {
struct BinOpInfo {
  TokKind Tok;
  BinaryOp Op;
  int Prec;
};
constexpr BinOpInfo BinOps[] = {
    {TokKind::PipePipe, BinaryOp::LogicalOr, 1},
    {TokKind::AmpAmp, BinaryOp::LogicalAnd, 2},
    {TokKind::Pipe, BinaryOp::Or, 3},
    {TokKind::Caret, BinaryOp::Xor, 4},
    {TokKind::Amp, BinaryOp::And, 5},
    {TokKind::EqEq, BinaryOp::Eq, 6},
    {TokKind::BangEq, BinaryOp::Ne, 6},
    {TokKind::Less, BinaryOp::Lt, 7},
    {TokKind::LessEq, BinaryOp::Le, 7},
    {TokKind::Greater, BinaryOp::Gt, 7},
    {TokKind::GreaterEq, BinaryOp::Ge, 7},
    {TokKind::Shl, BinaryOp::Shl, 8},
    {TokKind::Shr, BinaryOp::Shr, 8},
    {TokKind::Plus, BinaryOp::Add, 9},
    {TokKind::Minus, BinaryOp::Sub, 9},
    {TokKind::Star, BinaryOp::Mul, 10},
    {TokKind::Slash, BinaryOp::Div, 10},
    {TokKind::Percent, BinaryOp::Rem, 10},
};
} // namespace

Expr *Parser::makeBinary(BinaryOp Op, Expr *L, Expr *R, unsigned Line) {
  const Type *LT = decayed(L->Ty);
  const Type *RT = decayed(R->Ty);
  const Type *ResultTy = U->Types.intType();

  bool PtrL = LT->isPointer();
  bool PtrR = RT->isPointer();

  switch (Op) {
  case BinaryOp::Add:
    if (PtrL && RT->isArithmetic())
      ResultTy = LT;
    else if (PtrR && LT->isArithmetic())
      ResultTy = RT;
    else if (PtrL || PtrR) {
      error("invalid pointer addition");
      return nullptr;
    }
    break;
  case BinaryOp::Sub:
    if (PtrL && RT->isArithmetic())
      ResultTy = LT;
    else if (PtrL && PtrR)
      ResultTy = U->Types.intType(); // Pointer difference, in elements.
    else if (PtrR) {
      error("invalid pointer subtraction");
      return nullptr;
    }
    break;
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
  case BinaryOp::LogicalAnd:
  case BinaryOp::LogicalOr:
    break; // int result; pointers allowed.
  default:
    if (PtrL || PtrR) {
      error("invalid operands to arithmetic operator");
      return nullptr;
    }
    break;
  }

  Expr *E = U->Nodes.newExpr(ExprKind::Binary);
  E->Line = Line;
  E->BOp = Op;
  E->Sub = L;
  E->Sub2 = R;
  E->Ty = ResultTy;
  return E;
}

Expr *Parser::parseBinary(int MinPrec) {
  Expr *L = parseUnary();
  if (!L)
    return nullptr;
  while (true) {
    const BinOpInfo *Info = nullptr;
    for (const BinOpInfo &B : BinOps)
      if (check(B.Tok)) {
        Info = &B;
        break;
      }
    if (!Info || Info->Prec < MinPrec)
      return L;
    unsigned Line = cur().Line;
    advance();
    Expr *R = parseBinary(Info->Prec + 1);
    if (!R)
      return nullptr;
    L = makeBinary(Info->Op, L, R, Line);
    if (!L)
      return nullptr;
  }
}

Expr *Parser::parseUnary() {
  unsigned Line = cur().Line;

  // Cast: '(' type ')' unary.
  if (check(TokKind::LParen) &&
      (peek(1).is(TokKind::KwInt) || peek(1).is(TokKind::KwChar) ||
       peek(1).is(TokKind::KwVoid) || peek(1).is(TokKind::KwStruct))) {
    advance(); // (
    const Type *T = parsePointerSuffix(parseTypeSpec());
    expect(TokKind::RParen, "after cast type");
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    Expr *E = U->Nodes.newExpr(ExprKind::Cast);
    E->Line = Line;
    E->Sub = Sub;
    E->Ty = T;
    return E;
  }

  if (accept(TokKind::Minus)) {
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    Expr *E = U->Nodes.newExpr(ExprKind::Unary);
    E->Line = Line;
    E->UOp = UnaryOp::Neg;
    E->Sub = Sub;
    E->Ty = U->Types.intType();
    return E;
  }
  if (accept(TokKind::Bang)) {
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    Expr *E = U->Nodes.newExpr(ExprKind::Unary);
    E->Line = Line;
    E->UOp = UnaryOp::LogicalNot;
    E->Sub = Sub;
    E->Ty = U->Types.intType();
    return E;
  }
  if (accept(TokKind::Tilde)) {
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    Expr *E = U->Nodes.newExpr(ExprKind::Unary);
    E->Line = Line;
    E->UOp = UnaryOp::BitNot;
    E->Sub = Sub;
    E->Ty = U->Types.intType();
    return E;
  }
  if (accept(TokKind::Star)) {
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    const Type *PT = decayed(Sub->Ty);
    if (!PT->isPointer() || PT->pointee()->isVoid()) {
      error("cannot dereference '" + Sub->Ty->spelling() + "'");
      return nullptr;
    }
    Expr *E = U->Nodes.newExpr(ExprKind::Unary);
    E->Line = Line;
    E->UOp = UnaryOp::Deref;
    E->Sub = Sub;
    E->Ty = PT->pointee();
    return E;
  }
  if (accept(TokKind::Amp)) {
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    if (!isLvalue(Sub)) {
      error("cannot take the address of this expression");
      return nullptr;
    }
    if (Sub->Kind == ExprKind::VarRef)
      Sub->Var->AddressTaken = true;
    Expr *E = U->Nodes.newExpr(ExprKind::Unary);
    E->Line = Line;
    E->UOp = UnaryOp::AddrOf;
    E->Sub = Sub;
    E->Ty = U->Types.getPointer(Sub->Ty);
    return E;
  }
  if (accept(TokKind::KwSizeof)) {
    expect(TokKind::LParen, "after sizeof");
    const Type *T = parsePointerSuffix(parseTypeSpec());
    // Allow sizeof(struct x[n]) style? Keep it simple: optional [n].
    expect(TokKind::RParen, "after sizeof type");
    return intLit(static_cast<int32_t>(T->size()), Line);
  }

  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  if (!E)
    return nullptr;
  while (true) {
    unsigned Line = cur().Line;
    if (accept(TokKind::LBracket)) {
      Expr *Idx = parseExpr();
      if (!Idx || !expect(TokKind::RBracket, "after index"))
        return nullptr;
      const Type *BaseTy = decayed(E->Ty);
      if (!BaseTy->isPointer()) {
        error("subscripted value is not an array or pointer");
        return nullptr;
      }
      if (!decayed(Idx->Ty)->isArithmetic()) {
        error("array index must be an integer");
        return nullptr;
      }
      Expr *IndexExpr = U->Nodes.newExpr(ExprKind::Index);
      IndexExpr->Line = Line;
      IndexExpr->Sub = E;
      IndexExpr->Sub2 = Idx;
      IndexExpr->Ty = BaseTy->pointee();
      E = IndexExpr;
      continue;
    }
    if (check(TokKind::Dot) || check(TokKind::Arrow)) {
      bool IsArrow = advance().Kind == TokKind::Arrow;
      if (!check(TokKind::Ident)) {
        error("expected field name");
        return nullptr;
      }
      std::string FieldName = advance().Text;
      const Type *BaseTy = IsArrow ? decayed(E->Ty) : E->Ty;
      const StructDecl *S = nullptr;
      if (IsArrow) {
        if (!BaseTy->isPointer() || !BaseTy->pointee()->isStruct()) {
          error("'->' applied to non-struct-pointer");
          return nullptr;
        }
        S = BaseTy->pointee()->structDecl();
      } else {
        if (!BaseTy->isStruct()) {
          error("'.' applied to non-struct");
          return nullptr;
        }
        S = BaseTy->structDecl();
      }
      const StructField *F = S->findField(FieldName);
      if (!F) {
        error("no field '" + FieldName + "' in struct '" + S->Name + "'");
        return nullptr;
      }
      Expr *M = U->Nodes.newExpr(ExprKind::Member);
      M->Line = Line;
      M->Sub = E;
      M->FieldName = FieldName;
      M->Field = F;
      M->IsArrow = IsArrow;
      M->Ty = F->Ty;
      E = M;
      continue;
    }
    return E;
  }
}

Expr *Parser::parsePrimary() {
  unsigned Line = cur().Line;
  if (check(TokKind::IntLit))
    return intLit(static_cast<int32_t>(advance().IntValue), Line);

  if (accept(TokKind::LParen)) {
    Expr *E = parseExpr();
    expect(TokKind::RParen, "after parenthesized expression");
    return E;
  }

  if (check(TokKind::Ident)) {
    std::string Name = advance().Text;

    // Call.
    if (accept(TokKind::LParen)) {
      auto It = Functions.find(Name);
      if (It == Functions.end()) {
        error("call to undeclared function '" + Name + "'");
        return nullptr;
      }
      FuncDecl *Callee = It->second;
      Expr *E = U->Nodes.newExpr(ExprKind::Call);
      E->Line = Line;
      E->Callee = Name;
      if (!check(TokKind::RParen)) {
        do {
          Expr *Arg = parseExpr();
          if (!Arg)
            return nullptr;
          E->Args.push_back(Arg);
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "after call arguments");
      if (E->Args.size() != Callee->Params.size()) {
        error(formatString("'%s' expects %zu arguments, got %zu",
                           Name.c_str(), Callee->Params.size(),
                           E->Args.size()));
        return nullptr;
      }
      for (size_t I = 0; I != E->Args.size(); ++I)
        if (!typesAssignable(decayed(Callee->Params[I]->Ty),
                             decayed(E->Args[I]->Ty))) {
          error(formatString("argument %zu of '%s': cannot pass '%s' as '%s'",
                             I + 1, Name.c_str(),
                             E->Args[I]->Ty->spelling().c_str(),
                             Callee->Params[I]->Ty->spelling().c_str()));
          return nullptr;
        }
      E->Ty = Callee->RetTy;
      return E;
    }

    VarDecl *V = lookupVar(Name);
    if (!V) {
      error("use of undeclared identifier '" + Name + "'");
      return nullptr;
    }
    Expr *E = U->Nodes.newExpr(ExprKind::VarRef);
    E->Line = Line;
    E->Var = V;
    E->Ty = V->Ty;
    return E;
  }

  error(formatString("expected an expression, got %s",
                     tokKindName(cur().Kind).c_str()));
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Constant evaluation (global initializers)
//===----------------------------------------------------------------------===//

int32_t Parser::evalConst(const Expr *E, bool &Ok) const {
  Ok = true;
  switch (E->Kind) {
  case ExprKind::IntLit:
    return E->IntValue;
  // Arithmetic follows the simulator's two's-complement semantics (wraparound
  // add/sub/mul/neg, INT_MIN edge cases defined, arithmetic right shift), so
  // a constant-folded expression means the same thing wherever it is
  // evaluated — here, in the -O1 folder, and at run time.
  case ExprKind::Unary:
    if (E->UOp == UnaryOp::Neg)
      return static_cast<int32_t>(
          0u - static_cast<uint32_t>(evalConst(E->Sub, Ok)));
    if (E->UOp == UnaryOp::BitNot)
      return ~evalConst(E->Sub, Ok);
    break;
  case ExprKind::Binary: {
    bool OkL = true, OkR = true;
    int32_t L = evalConst(E->Sub, OkL);
    int32_t R = evalConst(E->Sub2, OkR);
    if (!OkL || !OkR)
      break;
    switch (E->BOp) {
    case BinaryOp::Add:
      return static_cast<int32_t>(static_cast<uint32_t>(L) +
                                  static_cast<uint32_t>(R));
    case BinaryOp::Sub:
      return static_cast<int32_t>(static_cast<uint32_t>(L) -
                                  static_cast<uint32_t>(R));
    case BinaryOp::Mul:
      return static_cast<int32_t>(static_cast<uint32_t>(L) *
                                  static_cast<uint32_t>(R));
    case BinaryOp::Div:
      if (R != 0)
        return (L == INT32_MIN && R == -1) ? INT32_MIN : L / R;
      break;
    case BinaryOp::Rem:
      if (R != 0)
        return (L == INT32_MIN && R == -1) ? 0 : L % R;
      break;
    case BinaryOp::Shl:
      return static_cast<int32_t>(static_cast<uint32_t>(L)
                                  << (static_cast<uint32_t>(R) & 31));
    case BinaryOp::Shr:
      return static_cast<int32_t>(static_cast<int64_t>(L) >>
                                  (static_cast<uint32_t>(R) & 31));
    default:
      break;
    }
    break;
  }
  default:
    break;
  }
  Ok = false;
  return 0;
}

} // namespace

FrontendResult mcc::parseMinC(std::string_view Source) {
  Parser P(Source);
  P.run();
  return std::move(P).take();
}
