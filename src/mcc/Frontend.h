//===- mcc/Frontend.h - MinC parser and semantic analysis ---------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-pass parser + type checker for MinC. Identifiers are resolved and
/// every expression is typed while parsing; the result is a TranslationUnit
/// ready for code generation.
///
/// The runtime functions malloc, calloc, free, rand, srand, print_int,
/// print_char and exit are predeclared builtins.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MCC_FRONTEND_H
#define DLQ_MCC_FRONTEND_H

#include "mcc/Ast.h"
#include "mcc/Lexer.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dlq {
namespace mcc {

/// One frontend diagnostic.
struct FrontendDiag {
  unsigned Line = 0;
  std::string Message;
};

/// Result of parsing and checking a MinC source file.
struct FrontendResult {
  std::unique_ptr<TranslationUnit> Unit;
  std::vector<FrontendDiag> Diags;

  bool ok() const { return Diags.empty() && Unit != nullptr; }

  /// Diagnostics joined as "line N: message" lines.
  std::string diagText() const;
};

/// Parses and type-checks \p Source.
FrontendResult parseMinC(std::string_view Source);

} // namespace mcc
} // namespace dlq

#endif // DLQ_MCC_FRONTEND_H
