//===- mcc/Lexer.cpp ----------------------------------------------------------//

#include "mcc/Lexer.h"

#include <cctype>
#include <map>

using namespace dlq;
using namespace dlq::mcc;

std::string mcc::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "invalid token";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwChar:
    return "'char'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwStruct:
    return "'struct'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwSizeof:
    return "'sizeof'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Assign:
    return "'='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::BangEq:
    return "'!='";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::Question:
    return "'?'";
  case TokKind::Colon:
    return "':'";
  }
  return "?";
}

std::vector<Token> mcc::tokenize(std::string_view Src) {
  static const std::map<std::string, TokKind, std::less<>> Keywords = {
      {"int", TokKind::KwInt},         {"char", TokKind::KwChar},
      {"void", TokKind::KwVoid},       {"struct", TokKind::KwStruct},
      {"if", TokKind::KwIf},           {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},     {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn},   {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"sizeof", TokKind::KwSizeof},
  };

  std::vector<Token> Out;
  size_t Pos = 0;
  unsigned Line = 1;

  auto error = [&](const std::string &Message) {
    Token T;
    T.Kind = TokKind::Error;
    T.Text = Message;
    T.Line = Line;
    Out.push_back(std::move(T));
  };
  auto push = [&](TokKind K) {
    Token T;
    T.Kind = K;
    T.Line = Line;
    Out.push_back(std::move(T));
  };

  while (Pos < Src.size()) {
    char C = Src[Pos];
    if (C == '\n') {
      ++Line;
      ++Pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    // Comments.
    if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
      while (Pos < Src.size() && Src[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '*') {
      Pos += 2;
      while (Pos + 1 < Src.size() &&
             !(Src[Pos] == '*' && Src[Pos + 1] == '/')) {
        if (Src[Pos] == '\n')
          ++Line;
        ++Pos;
      }
      if (Pos + 1 >= Src.size()) {
        error("unterminated block comment");
        break;
      }
      Pos += 2;
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      std::string Text(Src.substr(Start, Pos - Start));
      Token T;
      T.Line = Line;
      auto It = Keywords.find(Text);
      if (It != Keywords.end()) {
        T.Kind = It->second;
      } else {
        T.Kind = TokKind::Ident;
        T.Text = std::move(Text);
      }
      Out.push_back(std::move(T));
      continue;
    }
    // Integer literals.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      int Base = 10;
      if (C == '0' && Pos + 1 < Src.size() &&
          (Src[Pos + 1] == 'x' || Src[Pos + 1] == 'X')) {
        Base = 16;
        Pos += 2;
      }
      int64_t Value = 0;
      bool Any = false;
      while (Pos < Src.size()) {
        char D = Src[Pos];
        int Digit;
        if (std::isdigit(static_cast<unsigned char>(D)))
          Digit = D - '0';
        else if (Base == 16 && D >= 'a' && D <= 'f')
          Digit = D - 'a' + 10;
        else if (Base == 16 && D >= 'A' && D <= 'F')
          Digit = D - 'A' + 10;
        else
          break;
        Value = Value * Base + Digit;
        Any = true;
        ++Pos;
      }
      if (!Any && Base == 16) {
        error("malformed hex literal");
        break;
      }
      (void)Start;
      Token T;
      T.Kind = TokKind::IntLit;
      T.IntValue = Value;
      T.Line = Line;
      Out.push_back(std::move(T));
      continue;
    }
    // Character literals (value of the char).
    if (C == '\'') {
      ++Pos;
      if (Pos >= Src.size()) {
        error("unterminated character literal");
        break;
      }
      int64_t Value;
      if (Src[Pos] == '\\' && Pos + 1 < Src.size()) {
        char E = Src[Pos + 1];
        Pos += 2;
        switch (E) {
        case 'n':
          Value = '\n';
          break;
        case 't':
          Value = '\t';
          break;
        case '0':
          Value = 0;
          break;
        case '\\':
          Value = '\\';
          break;
        case '\'':
          Value = '\'';
          break;
        default:
          Value = E;
          break;
        }
      } else {
        Value = Src[Pos];
        ++Pos;
      }
      if (Pos >= Src.size() || Src[Pos] != '\'') {
        error("unterminated character literal");
        break;
      }
      ++Pos;
      Token T;
      T.Kind = TokKind::IntLit;
      T.IntValue = Value;
      T.Line = Line;
      Out.push_back(std::move(T));
      continue;
    }

    // Operators / punctuation.
    auto twoChar = [&](char Second) {
      return Pos + 1 < Src.size() && Src[Pos + 1] == Second;
    };
    switch (C) {
    case '(':
      push(TokKind::LParen);
      ++Pos;
      break;
    case ')':
      push(TokKind::RParen);
      ++Pos;
      break;
    case '{':
      push(TokKind::LBrace);
      ++Pos;
      break;
    case '}':
      push(TokKind::RBrace);
      ++Pos;
      break;
    case '[':
      push(TokKind::LBracket);
      ++Pos;
      break;
    case ']':
      push(TokKind::RBracket);
      ++Pos;
      break;
    case ';':
      push(TokKind::Semi);
      ++Pos;
      break;
    case ',':
      push(TokKind::Comma);
      ++Pos;
      break;
    case '.':
      push(TokKind::Dot);
      ++Pos;
      break;
    case '?':
      push(TokKind::Question);
      ++Pos;
      break;
    case ':':
      push(TokKind::Colon);
      ++Pos;
      break;
    case '~':
      push(TokKind::Tilde);
      ++Pos;
      break;
    case '^':
      push(TokKind::Caret);
      ++Pos;
      break;
    case '/':
      push(TokKind::Slash);
      ++Pos;
      break;
    case '%':
      push(TokKind::Percent);
      ++Pos;
      break;
    case '*':
      push(TokKind::Star);
      ++Pos;
      break;
    case '+':
      push(TokKind::Plus);
      ++Pos;
      break;
    case '-':
      if (twoChar('>')) {
        push(TokKind::Arrow);
        Pos += 2;
      } else {
        push(TokKind::Minus);
        ++Pos;
      }
      break;
    case '&':
      if (twoChar('&')) {
        push(TokKind::AmpAmp);
        Pos += 2;
      } else {
        push(TokKind::Amp);
        ++Pos;
      }
      break;
    case '|':
      if (twoChar('|')) {
        push(TokKind::PipePipe);
        Pos += 2;
      } else {
        push(TokKind::Pipe);
        ++Pos;
      }
      break;
    case '!':
      if (twoChar('=')) {
        push(TokKind::BangEq);
        Pos += 2;
      } else {
        push(TokKind::Bang);
        ++Pos;
      }
      break;
    case '=':
      if (twoChar('=')) {
        push(TokKind::EqEq);
        Pos += 2;
      } else {
        push(TokKind::Assign);
        ++Pos;
      }
      break;
    case '<':
      if (twoChar('=')) {
        push(TokKind::LessEq);
        Pos += 2;
      } else if (twoChar('<')) {
        push(TokKind::Shl);
        Pos += 2;
      } else {
        push(TokKind::Less);
        ++Pos;
      }
      break;
    case '>':
      if (twoChar('=')) {
        push(TokKind::GreaterEq);
        Pos += 2;
      } else if (twoChar('>')) {
        push(TokKind::Shr);
        Pos += 2;
      } else {
        push(TokKind::Greater);
        ++Pos;
      }
      break;
    default:
      error(std::string("unexpected character '") + C + "'");
      Pos = Src.size();
      break;
    }
    if (!Out.empty() && Out.back().Kind == TokKind::Error)
      break;
  }

  Token Eof;
  Eof.Kind = TokKind::Eof;
  Eof.Line = Line;
  Out.push_back(std::move(Eof));
  return Out;
}
