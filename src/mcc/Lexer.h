//===- mcc/Lexer.h - MinC tokenizer ------------------------------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MinC. Supports decimal/hex integer literals, character
/// literals, identifiers, keywords, the C operator set used by the subset,
/// and // and /* */ comments.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MCC_LEXER_H
#define DLQ_MCC_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dlq {
namespace mcc {

enum class TokKind : uint8_t {
  Eof,
  Error,
  Ident,
  IntLit,
  // Keywords.
  KwInt,
  KwChar,
  KwVoid,
  KwStruct,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSizeof,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Arrow,
  Amp,
  AmpAmp,
  Pipe,
  PipePipe,
  Caret,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,
  Tilde,
  Assign,
  EqEq,
  BangEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Shl,
  Shr,
  Question,
  Colon,
};

/// One token with location info.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   ///< Identifier spelling.
  int64_t IntValue = 0;
  unsigned Line = 1;

  bool is(TokKind K) const { return Kind == K; }
};

/// Token-kind spelling for diagnostics, e.g. "'('" or "identifier".
std::string tokKindName(TokKind K);

/// Tokenizes \p Source entirely. A malformed token produces a single Error
/// token (with the message in Text) followed by Eof.
std::vector<Token> tokenize(std::string_view Source);

} // namespace mcc
} // namespace dlq

#endif // DLQ_MCC_LEXER_H
