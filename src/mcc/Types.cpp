//===- mcc/Types.cpp ---------------------------------------------------------//

#include "mcc/Types.h"

#include <algorithm>
#include <cassert>

using namespace dlq;
using namespace dlq::mcc;

const StructField *StructDecl::findField(const std::string &FieldName) const {
  for (const StructField &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

uint32_t Type::size() const {
  switch (K) {
  case Kind::Void:
    return 0;
  case Kind::Int:
    return 4;
  case Kind::Char:
    return 1;
  case Kind::Pointer:
    return 4;
  case Kind::Array:
    return Pointee->size() * ArraySize;
  case Kind::Struct:
    return Struct->Size;
  }
  return 0;
}

uint32_t Type::align() const {
  switch (K) {
  case Kind::Void:
    return 1;
  case Kind::Int:
  case Kind::Pointer:
    return 4;
  case Kind::Char:
    return 1;
  case Kind::Array:
    return Pointee->align();
  case Kind::Struct:
    return Struct->Align;
  }
  return 1;
}

std::string Type::spelling() const {
  switch (K) {
  case Kind::Void:
    return "void";
  case Kind::Int:
    return "int";
  case Kind::Char:
    return "char";
  case Kind::Pointer:
    return Pointee->spelling() + "*";
  case Kind::Array:
    return Pointee->spelling() + "[" + std::to_string(ArraySize) + "]";
  case Kind::Struct:
    return "struct " + Struct->Name;
  }
  return "?";
}

TypeContext::TypeContext() {
  Type *V = make();
  V->K = Type::Kind::Void;
  VoidTy = V;
  Type *I = make();
  I->K = Type::Kind::Int;
  IntTy = I;
  Type *C = make();
  C->K = Type::Kind::Char;
  CharTy = C;
}

Type *TypeContext::make() {
  Types.push_back(std::make_unique<Type>());
  return Types.back().get();
}

const Type *TypeContext::getPointer(const Type *Pointee) {
  for (const auto &T : Types)
    if (T->K == Type::Kind::Pointer && T->Pointee == Pointee)
      return T.get();
  Type *T = make();
  T->K = Type::Kind::Pointer;
  T->Pointee = Pointee;
  return T;
}

const Type *TypeContext::getArray(const Type *Elem, uint32_t Count) {
  for (const auto &T : Types)
    if (T->K == Type::Kind::Array && T->Pointee == Elem &&
        T->ArraySize == Count)
      return T.get();
  Type *T = make();
  T->K = Type::Kind::Array;
  T->Pointee = Elem;
  T->ArraySize = Count;
  return T;
}

StructDecl *TypeContext::declareStruct(const std::string &Name) {
  if (StructDecl *S = lookupStruct(Name))
    return S;
  Structs.push_back(std::make_unique<StructDecl>());
  StructDecl *S = Structs.back().get();
  S->Name = Name;
  StructByName[Name] = S;
  return S;
}

StructDecl *TypeContext::lookupStruct(const std::string &Name) {
  auto It = StructByName.find(Name);
  return It == StructByName.end() ? nullptr : It->second;
}

const Type *TypeContext::getStructType(StructDecl *S) {
  for (const auto &T : Types)
    if (T->K == Type::Kind::Struct && T->Struct == S)
      return T.get();
  Type *T = make();
  T->K = Type::Kind::Struct;
  T->Struct = S;
  return T;
}

void TypeContext::layoutStruct(StructDecl &S) {
  uint32_t Offset = 0;
  uint32_t Align = 1;
  for (StructField &F : S.Fields) {
    uint32_t FA = F.Ty->align();
    Offset = (Offset + FA - 1) & ~(FA - 1);
    F.Offset = Offset;
    Offset += F.Ty->size();
    Align = std::max(Align, FA);
  }
  S.Size = (Offset + Align - 1) & ~(Align - 1);
  S.Align = Align;
  S.Complete = true;
}
