//===- mcc/Types.h - MinC type system ---------------------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types for MinC, the C subset the benchmark workloads are written in:
/// void, int (32-bit), char, pointers, fixed-size arrays and structs.
/// A TypeContext owns and uniquifies types; struct layout (field offsets,
/// sizes, alignment) is computed here and later exported as the symbol-table
/// metadata the BDH baseline consumes.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_MCC_TYPES_H
#define DLQ_MCC_TYPES_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dlq {
namespace mcc {

class Type;

/// One struct field after layout.
struct StructField {
  std::string Name;
  const Type *Ty = nullptr;
  uint32_t Offset = 0;
};

/// A struct definition with computed layout.
struct StructDecl {
  std::string Name;
  std::vector<StructField> Fields;
  uint32_t Size = 0;
  uint32_t Align = 1;
  bool Complete = false;

  const StructField *findField(const std::string &FieldName) const;
};

/// A MinC type.
class Type {
public:
  enum class Kind : uint8_t { Void, Int, Char, Pointer, Array, Struct };

  Kind kind() const { return K; }
  bool isVoid() const { return K == Kind::Void; }
  bool isInt() const { return K == Kind::Int; }
  bool isChar() const { return K == Kind::Char; }
  bool isArithmetic() const { return K == Kind::Int || K == Kind::Char; }
  bool isPointer() const { return K == Kind::Pointer; }
  bool isArray() const { return K == Kind::Array; }
  bool isStruct() const { return K == Kind::Struct; }
  /// True for `void*`, which converts to and from any pointer.
  bool isVoidPointer() const {
    return isPointer() && Pointee && Pointee->isVoid();
  }

  /// Pointee for pointers, element type for arrays.
  const Type *pointee() const { return Pointee; }
  uint32_t arraySize() const { return ArraySize; }
  const StructDecl *structDecl() const { return Struct; }

  /// Size in bytes (0 for void and incomplete structs).
  uint32_t size() const;
  /// Alignment in bytes.
  uint32_t align() const;

  /// Readable spelling, e.g. "struct node*".
  std::string spelling() const;

private:
  friend class TypeContext;
  Kind K = Kind::Void;
  const Type *Pointee = nullptr;
  uint32_t ArraySize = 0;
  const StructDecl *Struct = nullptr;
};

/// Owns all types and struct declarations of one compilation.
class TypeContext {
public:
  TypeContext();

  const Type *voidType() const { return VoidTy; }
  const Type *intType() const { return IntTy; }
  const Type *charType() const { return CharTy; }

  const Type *getPointer(const Type *Pointee);
  const Type *getArray(const Type *Elem, uint32_t Count);

  /// Declares (or retrieves) struct \p Name; the body may be completed
  /// later with layoutStruct.
  StructDecl *declareStruct(const std::string &Name);
  StructDecl *lookupStruct(const std::string &Name);
  const Type *getStructType(StructDecl *S);

  /// Computes offsets/size/alignment once all fields are pushed.
  void layoutStruct(StructDecl &S);

private:
  std::vector<std::unique_ptr<Type>> Types;
  std::vector<std::unique_ptr<StructDecl>> Structs;
  std::map<std::string, StructDecl *> StructByName;
  const Type *VoidTy;
  const Type *IntTy;
  const Type *CharTy;

  Type *make();
};

} // namespace mcc
} // namespace dlq

#endif // DLQ_MCC_TYPES_H
