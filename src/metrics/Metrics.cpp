//===- metrics/Metrics.cpp -----------------------------------------------------//

#include "metrics/Metrics.h"

#include <algorithm>
#include <cmath>

using namespace dlq;
using namespace dlq::metrics;
using namespace dlq::masm;

EvalResult metrics::evaluate(size_t Lambda, const LoadSet &Delta,
                             const LoadStatsMap &Stats) {
  EvalResult R;
  R.Lambda = Lambda;
  R.DeltaSize = Delta.size();
  for (const auto &[Ref, S] : Stats) {
    R.TotalMisses += S.Misses;
    if (Delta.count(Ref))
      R.CoveredMisses += S.Misses;
  }
  return R;
}

LoadSet metrics::idealSetForCoverage(const LoadStatsMap &Stats,
                                     double TargetRho) {
  std::vector<std::pair<uint64_t, InstrRef>> Ranked;
  uint64_t Total = 0;
  for (const auto &[Ref, S] : Stats) {
    Total += S.Misses;
    if (S.Misses != 0)
      Ranked.push_back({S.Misses, Ref});
  }
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &A, const auto &B) {
    if (A.first != B.first)
      return A.first > B.first;
    return A.second < B.second;
  });

  LoadSet Ideal;
  uint64_t Needed = static_cast<uint64_t>(
      std::ceil(static_cast<double>(Total) * TargetRho));
  uint64_t Got = 0;
  for (const auto &[Misses, Ref] : Ranked) {
    if (Got >= Needed)
      break;
    Ideal.insert(Ref);
    Got += Misses;
  }
  return Ideal;
}

double metrics::falsePositiveImpact(const LoadSet &Delta, const LoadSet &Ideal,
                                    const LoadStatsMap &Stats) {
  uint64_t TotalExecs = 0;
  uint64_t FalseExecs = 0;
  for (const auto &[Ref, S] : Stats) {
    TotalExecs += S.Execs;
    if (Delta.count(Ref) && !Ideal.count(Ref))
      FalseExecs += S.Execs;
  }
  return TotalExecs == 0 ? 0
                         : static_cast<double>(FalseExecs) / TotalExecs;
}

LoadSet metrics::combineWithProfiling(
    const LoadSet &DeltaP, const LoadSet &DeltaH,
    const std::map<InstrRef, double> &Scores, double Epsilon) {
  LoadSet Result;
  std::vector<InstrRef> DeltaD;
  for (const InstrRef &Ref : DeltaH) {
    if (DeltaP.count(Ref))
      Result.insert(Ref); // The intersection.
    else
      DeltaD.push_back(Ref);
  }
  // Sort the heuristic-only remainder by descending score.
  std::sort(DeltaD.begin(), DeltaD.end(),
            [&](const InstrRef &A, const InstrRef &B) {
              double SA = Scores.count(A) ? Scores.at(A) : 0;
              double SB = Scores.count(B) ? Scores.at(B) : 0;
              if (SA != SB)
                return SA > SB;
              return A < B;
            });
  // Nearest-integer, not truncation: a small epsilon over a small remainder
  // must still admit its share (0.15 * 4 rounds to 1, not 0), or the
  // Table 14 sweep plateaus in truncation steps.
  size_t Take = static_cast<size_t>(
      std::llround(Epsilon * static_cast<double>(DeltaD.size())));
  for (size_t I = 0; I != Take && I != DeltaD.size(); ++I)
    Result.insert(DeltaD[I]);
  return Result;
}

double metrics::randomSampleCoverage(const LoadSet &Pool, size_t Count,
                                     const LoadStatsMap &Stats, Rng &R,
                                     unsigned Runs) {
  if (Pool.empty() || Runs == 0)
    return 0;
  std::vector<InstrRef> PoolVec(Pool.begin(), Pool.end());
  Count = std::min(Count, PoolVec.size());

  double RhoSum = 0;
  for (unsigned Run = 0; Run != Runs; ++Run) {
    // Partial Fisher-Yates for the first Count entries.
    std::vector<InstrRef> Shuffled = PoolVec;
    for (size_t I = 0; I != Count; ++I) {
      size_t J = I + static_cast<size_t>(R.nextBelow(Shuffled.size() - I));
      std::swap(Shuffled[I], Shuffled[J]);
    }
    LoadSet Sample(Shuffled.begin(), Shuffled.begin() + Count);
    EvalResult E = evaluate(/*Lambda=*/1, Sample, Stats);
    RhoSum += E.rho();
  }
  return RhoSum / Runs;
}
