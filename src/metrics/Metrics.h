//===- metrics/Metrics.h - pi, rho, xi, ideal sets, combination ----------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation measures (Section 8):
///
///   pi(H)  = |Delta| / |Lambda|          precision: fraction of static loads
///                                        flagged as possibly delinquent
///   rho(H) = M_Delta(P(I),C) / M(P(I),C) coverage: fraction of data-cache
///                                        misses caused by flagged loads
///   xi     = dynamic share of executions of flagged loads that are NOT in
///            the ideal set (false-positive impact, Table 11)
///
/// plus the greedy "ideal" set of Table 1, the Section 9 combination of the
/// heuristic with basic-block profiling (the epsilon factor), and the
/// random-sampling control rho*.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_METRICS_METRICS_H
#define DLQ_METRICS_METRICS_H

#include "masm/Module.h"
#include "sim/Machine.h"
#include "support/Rng.h"

#include <map>
#include <set>
#include <vector>

namespace dlq {
namespace metrics {

using LoadStatsMap = std::map<masm::InstrRef, sim::LoadStat>;
using LoadSet = std::set<masm::InstrRef>;

/// pi and rho of one predicted set against ground-truth load stats.
struct EvalResult {
  size_t Lambda = 0;         ///< Total static loads.
  size_t DeltaSize = 0;      ///< Flagged loads.
  uint64_t TotalMisses = 0;  ///< M(P(I), C) over loads.
  uint64_t CoveredMisses = 0;

  double pi() const {
    return Lambda == 0 ? 0 : static_cast<double>(DeltaSize) / Lambda;
  }
  double rho() const {
    return TotalMisses == 0
               ? 0
               : static_cast<double>(CoveredMisses) / TotalMisses;
  }
};

/// Evaluates \p Delta against the per-load ground truth. \p Lambda is the
/// static load count of the module.
EvalResult evaluate(size_t Lambda, const LoadSet &Delta,
                    const LoadStatsMap &Stats);

/// The greedy ideal set (Table 1): loads sorted by descending miss count,
/// taken until coverage reaches \p TargetRho.
LoadSet idealSetForCoverage(const LoadStatsMap &Stats, double TargetRho);

/// xi: the fraction of all dynamic load executions spent in loads of
/// \p Delta that are not in \p Ideal (Table 11's strict false-positive
/// measure).
double falsePositiveImpact(const LoadSet &Delta, const LoadSet &Ideal,
                           const LoadStatsMap &Stats);

/// Section 9: combine profiling's hotspot loads Delta_P with the heuristic's
/// Delta_H. The intersection is always kept; of the heuristic-only remainder
/// Delta_d (sorted by descending phi score), the top Epsilon fraction is
/// added.
LoadSet combineWithProfiling(const LoadSet &DeltaP, const LoadSet &DeltaH,
                             const std::map<masm::InstrRef, double> &Scores,
                             double Epsilon);

/// rho* control: the average coverage of \p Runs random samples of
/// \p Count loads drawn from \p Pool (the hotspot loads), as in Table 14.
double randomSampleCoverage(const LoadSet &Pool, size_t Count,
                            const LoadStatsMap &Stats, Rng &R,
                            unsigned Runs = 3);

} // namespace metrics
} // namespace dlq

#endif // DLQ_METRICS_METRICS_H
