//===- net/Client.cpp -----------------------------------------------------------//

#include "net/Client.h"

#include "support/Format.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dlq;
using namespace dlq::net;

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connect(const std::string &Host, uint16_t Port,
                     std::string &Err) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = formatString("socket: %s", std::strerror(errno));
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = formatString("bad address '%s'", Host.c_str());
    close();
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = formatString("connect %s:%u: %s", Host.c_str(), Port,
                       std::strerror(errno));
    close();
    return false;
  }
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return true;
}

bool Client::sendAll(const uint8_t *Data, size_t N, std::string &Err) {
  size_t Off = 0;
  while (Off != N) {
    ssize_t W = ::send(Fd, Data + Off, N - Off, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Err = formatString("send: %s", std::strerror(errno));
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  return true;
}

bool Client::readFrame(Frame &Out, std::string &Err) {
  for (;;) {
    switch (Dec.next(Out)) {
    case FrameDecoder::Status::Ready:
      return true;
    case FrameDecoder::Status::Corrupt:
      Err = formatString("protocol error: %s", Dec.error().c_str());
      return false;
    case FrameDecoder::Status::NeedMore:
      break;
    }
    uint8_t Buf[64 * 1024];
    ssize_t R = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Err = formatString("recv: %s", std::strerror(errno));
      return false;
    }
    if (R == 0) {
      Err = "connection closed by server";
      return false;
    }
    Dec.feed(Buf, static_cast<size_t>(R));
  }
}

bool Client::call(Opcode Op, std::vector<uint8_t> Payload, Frame &Resp,
                  std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  Frame Req;
  Req.Op = static_cast<uint16_t>(Op);
  Req.RequestId = NextId++;
  Req.Payload = std::move(Payload);
  std::vector<uint8_t> Wire = encodeFrame(Req);
  if (!sendAll(Wire.data(), Wire.size(), Err))
    return false;
  // Responses arrive in id order on a sequential connection, but be strict:
  // skip anything that is not our id (a pipelined caller should use the raw
  // frame interface instead).
  for (;;) {
    if (!readFrame(Resp, Err))
      return false;
    if (Resp.RequestId == Req.RequestId) {
      if (Resp.Op != Req.Op) {
        Err = formatString("response opcode %u for request opcode %u",
                           Resp.Op, Req.Op);
        return false;
      }
      return true;
    }
  }
}

namespace {

/// Shared decode of the response envelope; on Ok, \p Body is ready for the
/// opcode body decoder.
bool openResponse(const Frame &Resp, Status &S, std::string &Err,
                  exec::ByteReader &Body) {
  std::string Remote;
  if (!decodeResponseHead(Body, S, Remote)) {
    Err = "truncated response envelope";
    return false;
  }
  if (S != Status::Ok)
    Err = formatString("%s: %s", statusName(S), Remote.c_str());
  return true;
}

} // namespace

bool Client::ping(const std::string &Echo, Status &S, std::string &Err) {
  Frame Resp;
  if (!call(Opcode::Ping, encodePingRequest(Echo), Resp, Err))
    return false;
  exec::ByteReader Body(Resp.Payload);
  if (!openResponse(Resp, S, Err, Body))
    return false;
  if (S != Status::Ok)
    return true;
  std::string Back;
  if (!decodePingResponseBody(Body, Back) || Back != Echo) {
    Err = "ping echo mismatch";
    return false;
  }
  return true;
}

bool Client::analyze(const AnalyzeRequest &R, AnalyzeResponse &Out,
                     Status &S, std::string &Err) {
  Frame Resp;
  if (!call(Opcode::Analyze, encodeAnalyzeRequest(R), Resp, Err))
    return false;
  exec::ByteReader Body(Resp.Payload);
  if (!openResponse(Resp, S, Err, Body))
    return false;
  if (S != Status::Ok)
    return true;
  if (!decodeAnalyzeResponseBody(Body, Out)) {
    Err = "malformed ANALYZE response body";
    return false;
  }
  return true;
}

bool Client::run(const RunRequest &R, RunResponse &Out, Status &S,
                 std::string &Err) {
  Frame Resp;
  if (!call(Opcode::Run, encodeRunRequest(R), Resp, Err))
    return false;
  exec::ByteReader Body(Resp.Payload);
  if (!openResponse(Resp, S, Err, Body))
    return false;
  if (S != Status::Ok)
    return true;
  if (!decodeRunResponseBody(Body, Out)) {
    Err = "malformed RUN response body";
    return false;
  }
  return true;
}

bool Client::classify(const ClassifyRequest &R, ClassifyResponse &Out,
                      Status &S, std::string &Err) {
  Frame Resp;
  if (!call(Opcode::Classify, encodeClassifyRequest(R), Resp, Err))
    return false;
  exec::ByteReader Body(Resp.Payload);
  if (!openResponse(Resp, S, Err, Body))
    return false;
  if (S != Status::Ok)
    return true;
  if (!decodeClassifyResponseBody(Body, Out)) {
    Err = "malformed CLASSIFY response body";
    return false;
  }
  return true;
}

bool Client::stats(StatsResponse &Out, Status &S, std::string &Err) {
  Frame Resp;
  if (!call(Opcode::Stats, {}, Resp, Err))
    return false;
  exec::ByteReader Body(Resp.Payload);
  if (!openResponse(Resp, S, Err, Body))
    return false;
  if (S != Status::Ok)
    return true;
  if (!decodeStatsResponseBody(Body, Out)) {
    Err = "malformed STATS response body";
    return false;
  }
  return true;
}

bool Client::drain(Status &S, std::string &Err) {
  Frame Resp;
  if (!call(Opcode::Drain, {}, Resp, Err))
    return false;
  exec::ByteReader Body(Resp.Payload);
  if (!openResponse(Resp, S, Err, Body))
    return false;
  return true;
}
