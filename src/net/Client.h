//===- net/Client.h - blocking delinqd protocol client ----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple synchronous client for the delinqd frame protocol: one TCP
/// connection, request ids assigned sequentially, responses correlated by
/// id. Used by the delinq_bots load fleet (one Client per synthetic user)
/// and the network tests. Typed helpers return the protocol Status and
/// decode the response body; transport failures (connect/send/recv/framing)
/// surface as `false` with an error string.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_NET_CLIENT_H
#define DLQ_NET_CLIENT_H

#include "net/Frame.h"
#include "net/Protocol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dlq {
namespace net {

class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  bool connect(const std::string &Host, uint16_t Port, std::string &Err);
  void close();
  bool connected() const { return Fd >= 0; }

  /// Sends one request and blocks for the response with the matching id.
  /// False on any transport failure.
  bool call(Opcode Op, std::vector<uint8_t> Payload, Frame &Resp,
            std::string &Err);

  // Typed helpers. Return false on transport failure; otherwise \p S is the
  // server's status and the body (on Ok) is decoded into the out-param.
  bool ping(const std::string &Echo, Status &S, std::string &Err);
  bool analyze(const AnalyzeRequest &R, AnalyzeResponse &Out, Status &S,
               std::string &Err);
  bool run(const RunRequest &R, RunResponse &Out, Status &S,
           std::string &Err);
  bool classify(const ClassifyRequest &R, ClassifyResponse &Out, Status &S,
                std::string &Err);
  bool stats(StatsResponse &Out, Status &S, std::string &Err);
  bool drain(Status &S, std::string &Err);

private:
  bool sendAll(const uint8_t *Data, size_t N, std::string &Err);
  bool readFrame(Frame &Out, std::string &Err);

  int Fd = -1;
  uint64_t NextId = 1;
  FrameDecoder Dec;
};

} // namespace net
} // namespace dlq

#endif // DLQ_NET_CLIENT_H
