//===- net/Frame.cpp ------------------------------------------------------------//

#include "net/Frame.h"

#include "support/Format.h"

using namespace dlq;
using namespace dlq::net;

bool net::knownOpcode(uint16_t Op) {
  return Op <= static_cast<uint16_t>(Opcode::Drain);
}

const char *net::opcodeName(uint16_t Op) {
  switch (static_cast<Opcode>(Op)) {
  case Opcode::Ping:
    return "PING";
  case Opcode::Analyze:
    return "ANALYZE";
  case Opcode::Run:
    return "RUN";
  case Opcode::Classify:
    return "CLASSIFY";
  case Opcode::Stats:
    return "STATS";
  case Opcode::Drain:
    return "DRAIN";
  }
  return "?";
}

namespace {

void putU16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  putU32(Out, static_cast<uint32_t>(V));
  putU32(Out, static_cast<uint32_t>(V >> 32));
}

uint16_t getU16(const uint8_t *P) {
  return static_cast<uint16_t>(P[0] | (uint16_t(P[1]) << 8));
}

uint32_t getU32(const uint8_t *P) {
  return P[0] | (uint32_t(P[1]) << 8) | (uint32_t(P[2]) << 16) |
         (uint32_t(P[3]) << 24);
}

uint64_t getU64(const uint8_t *P) {
  return getU32(P) | (uint64_t(getU32(P + 4)) << 32);
}

} // namespace

void net::appendFrame(std::vector<uint8_t> &Wire, const Frame &F) {
  Wire.reserve(Wire.size() + kHeaderBytes + F.Payload.size());
  putU32(Wire, kMagic);
  putU16(Wire, kVersion);
  putU16(Wire, F.Op);
  putU64(Wire, F.RequestId);
  putU32(Wire, static_cast<uint32_t>(F.Payload.size()));
  Wire.insert(Wire.end(), F.Payload.begin(), F.Payload.end());
}

std::vector<uint8_t> net::encodeFrame(const Frame &F) {
  std::vector<uint8_t> Wire;
  appendFrame(Wire, F);
  return Wire;
}

void FrameDecoder::feed(const uint8_t *Data, size_t N) {
  if (Dead)
    return;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (Off > 4096 && Off * 2 > Buf.size()) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Off));
    Off = 0;
  }
  Buf.insert(Buf.end(), Data, Data + N);
}

FrameDecoder::Status FrameDecoder::next(Frame &Out) {
  if (Dead)
    return Status::Corrupt;
  if (buffered() < kHeaderBytes)
    return Status::NeedMore;
  const uint8_t *H = Buf.data() + Off;
  uint32_t Magic = getU32(H);
  uint16_t Version = getU16(H + 4);
  uint16_t Op = getU16(H + 6);
  uint64_t RequestId = getU64(H + 8);
  uint32_t Len = getU32(H + 16);
  if (Magic != kMagic) {
    Err = formatString("bad magic 0x%08x", Magic);
    Dead = true;
    return Status::Corrupt;
  }
  if (Version != kVersion) {
    Err = formatString("unsupported version %u", Version);
    Dead = true;
    return Status::Corrupt;
  }
  if (Len > kMaxPayloadBytes) {
    Err = formatString("payload length %u exceeds limit %u", Len,
                       kMaxPayloadBytes);
    Dead = true;
    return Status::Corrupt;
  }
  if (buffered() < kHeaderBytes + Len)
    return Status::NeedMore;
  Out.Op = Op;
  Out.RequestId = RequestId;
  Out.Payload.assign(H + kHeaderBytes, H + kHeaderBytes + Len);
  Off += kHeaderBytes + Len;
  if (Off == Buf.size()) {
    Buf.clear();
    Off = 0;
  }
  return Status::Ready;
}
