//===- net/Frame.h - length-prefixed binary frame codec ---------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire unit of the delinqd protocol. Every message — request or
/// response — is one frame: a fixed 20-byte little-endian header followed by
/// an opaque payload.
///
///   offset  size  field
///        0     4  magic       0x30514C44 ("DLQ0")
///        4     2  version     1
///        6     2  opcode      Opcode (responses echo the request's opcode)
///        8     8  request id  caller-chosen; responses echo it back, which
///                             is how a pipelined client correlates replies
///       16     4  payload length (bytes; <= kMaxPayloadBytes)
///
/// Encoding is a straight append. Decoding is incremental: a FrameDecoder is
/// fed whatever recv() produced and yields complete frames as they form.
/// The header is validated *before* any payload-sized allocation happens —
/// a hostile length field can never make the decoder allocate; it kills the
/// connection instead. Bad magic, bad version and oversized lengths are
/// unrecoverable (the stream has lost framing), so the decoder latches into
/// a dead state and the owner must close the connection.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_NET_FRAME_H
#define DLQ_NET_FRAME_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dlq {
namespace net {

constexpr uint32_t kMagic = 0x30514C44; // "DLQ0" read as little-endian u32.
constexpr uint16_t kVersion = 1;
constexpr size_t kHeaderBytes = 20;
/// Frames above this payload size are a protocol violation. Large enough for
/// any STATS dump, small enough that a forged length cannot balloon memory.
constexpr uint32_t kMaxPayloadBytes = 4u << 20;

/// Request opcodes. Responses carry the same opcode as the request they
/// answer; direction is implied by who sent the frame.
enum class Opcode : uint16_t {
  Ping = 0,     ///< Liveness + echo; payload is returned verbatim.
  Analyze = 1,  ///< Static-only delinquency analysis of a registry workload.
  Run = 2,      ///< Full simulation under a cache geometry.
  Classify = 3, ///< Heuristic evaluation (Delta_H vs ground truth).
  Stats = 4,    ///< Server counters, store traffic, per-opcode latencies.
  Drain = 5,    ///< Graceful shutdown; answered last, after in-flight work.
};

bool knownOpcode(uint16_t Op);
const char *opcodeName(uint16_t Op); // "ANALYZE", ...; "?" when unknown.

/// One decoded frame.
struct Frame {
  uint16_t Op = 0;
  uint64_t RequestId = 0;
  std::vector<uint8_t> Payload;
};

/// Appends the encoded frame (header + payload) to \p Wire.
void appendFrame(std::vector<uint8_t> &Wire, const Frame &F);
std::vector<uint8_t> encodeFrame(const Frame &F);

/// Incremental frame extractor over a byte stream.
class FrameDecoder {
public:
  enum class Status {
    NeedMore, ///< No complete frame buffered yet.
    Ready,    ///< A frame was produced.
    Corrupt,  ///< Framing lost (bad magic/version/length); close the stream.
  };

  /// Appends received bytes. Buffer growth is bounded by what was actually
  /// received plus one validated payload — never by a claimed length.
  void feed(const uint8_t *Data, size_t N);

  /// Extracts the next complete frame into \p Out. Once Corrupt is
  /// returned, the decoder stays dead and error() describes why.
  Status next(Frame &Out);

  const std::string &error() const { return Err; }
  size_t buffered() const { return Buf.size() - Off; }

private:
  std::vector<uint8_t> Buf;
  size_t Off = 0; ///< Consumed prefix of Buf; compacted opportunistically.
  std::string Err;
  bool Dead = false;
};

} // namespace net
} // namespace dlq

#endif // DLQ_NET_FRAME_H
