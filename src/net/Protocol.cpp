//===- net/Protocol.cpp ---------------------------------------------------------//

#include "net/Protocol.h"

using namespace dlq;
using namespace dlq::net;
using exec::ByteReader;
using exec::ByteWriter;

const char *net::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::BadRequest:
    return "bad-request";
  case Status::UnknownWorkload:
    return "unknown-workload";
  case Status::Unsupported:
    return "unsupported";
  case Status::Draining:
    return "draining";
  case Status::Internal:
    return "internal";
  }
  return "?";
}

// --- Request bodies ---------------------------------------------------------

std::vector<uint8_t> net::encodeAnalyzeRequest(const AnalyzeRequest &R) {
  ByteWriter W;
  W.str(R.Workload);
  W.u8(R.OptLevel);
  W.u8(R.Input);
  W.f64(R.Delta);
  return W.take();
}

bool net::decodeAnalyzeRequest(ByteReader &In, AnalyzeRequest &Out) {
  return In.str(Out.Workload) && In.u8(Out.OptLevel) && In.u8(Out.Input) &&
         In.f64(Out.Delta) && In.atEnd();
}

std::vector<uint8_t> net::encodeRunRequest(const RunRequest &R) {
  ByteWriter W;
  W.str(R.Workload);
  W.u8(R.OptLevel);
  W.u8(R.Input);
  W.u32(R.CacheSizeBytes);
  W.u32(R.CacheAssoc);
  W.u32(R.CacheBlockBytes);
  return W.take();
}

bool net::decodeRunRequest(ByteReader &In, RunRequest &Out) {
  return In.str(Out.Workload) && In.u8(Out.OptLevel) && In.u8(Out.Input) &&
         In.u32(Out.CacheSizeBytes) && In.u32(Out.CacheAssoc) &&
         In.u32(Out.CacheBlockBytes) && In.atEnd();
}

std::vector<uint8_t> net::encodeClassifyRequest(const ClassifyRequest &R) {
  ByteWriter W;
  W.str(R.Workload);
  W.u8(R.OptLevel);
  W.u8(R.Input);
  W.u32(R.CacheSizeBytes);
  W.u32(R.CacheAssoc);
  W.u32(R.CacheBlockBytes);
  W.f64(R.Delta);
  return W.take();
}

bool net::decodeClassifyRequest(ByteReader &In, ClassifyRequest &Out) {
  return In.str(Out.Workload) && In.u8(Out.OptLevel) && In.u8(Out.Input) &&
         In.u32(Out.CacheSizeBytes) && In.u32(Out.CacheAssoc) &&
         In.u32(Out.CacheBlockBytes) && In.f64(Out.Delta) && In.atEnd();
}

std::vector<uint8_t> net::encodePingRequest(const std::string &Echo) {
  ByteWriter W;
  W.str(Echo);
  return W.take();
}

// --- Response payloads ------------------------------------------------------

namespace {

ByteWriter okHead() {
  ByteWriter W;
  W.u8(static_cast<uint8_t>(Status::Ok));
  return W;
}

} // namespace

std::vector<uint8_t> net::encodeErrorResponse(Status S,
                                              const std::string &Msg) {
  ByteWriter W;
  W.u8(static_cast<uint8_t>(S));
  W.str(Msg);
  return W.take();
}

std::vector<uint8_t> net::encodePingResponse(const std::string &Echo) {
  ByteWriter W = okHead();
  W.str(Echo);
  return W.take();
}

std::vector<uint8_t> net::encodeAnalyzeResponse(const AnalyzeResponse &R) {
  ByteWriter W = okHead();
  W.u32(R.Loads);
  W.u32(R.Flagged);
  return W.take();
}

std::vector<uint8_t> net::encodeRunResponse(const RunResponse &R) {
  ByteWriter W = okHead();
  W.u8(R.Halt);
  W.i32(R.ExitCode);
  W.u64(R.Instrs);
  W.u64(R.DataAccesses);
  W.u64(R.LoadMisses);
  W.u64(R.StoreMisses);
  return W.take();
}

std::vector<uint8_t> net::encodeClassifyResponse(const ClassifyResponse &R) {
  ByteWriter W = okHead();
  W.u32(R.DeltaH);
  W.u32(R.Lambda);
  W.u64(R.CoveredMisses);
  W.u64(R.TotalMisses);
  return W.take();
}

std::vector<uint8_t> net::encodeStatsResponse(const StatsResponse &R) {
  ByteWriter W = okHead();
  W.u64(R.UptimeNs);
  W.u64(R.Accepts);
  W.u64(R.FramesIn);
  W.u64(R.FramesOut);
  W.u64(R.BytesIn);
  W.u64(R.BytesOut);
  W.u64(R.Rejects);
  W.u64(R.ResponsesDropped);
  W.u64(R.StoreHits);
  W.u64(R.StoreMisses);
  W.u64(R.StoreWrites);
  W.u32(static_cast<uint32_t>(R.Latencies.size()));
  for (const OpcodeLatency &L : R.Latencies) {
    W.u32(L.Op);
    W.u64(L.Count);
    W.f64(L.MeanNs);
    W.f64(L.P50Ns);
    W.f64(L.P90Ns);
    W.f64(L.P99Ns);
    W.u64(L.MaxNs);
  }
  W.str(R.CountersJson);
  return W.take();
}

std::vector<uint8_t> net::encodeDrainResponse() { return okHead().take(); }

bool net::decodeResponseHead(ByteReader &In, Status &S, std::string &Error) {
  uint8_t Raw;
  if (!In.u8(Raw))
    return false;
  if (Raw > static_cast<uint8_t>(Status::Internal))
    return false;
  S = static_cast<Status>(Raw);
  if (S == Status::Ok)
    return true;
  return In.str(Error);
}

bool net::decodePingResponseBody(ByteReader &In, std::string &Echo) {
  return In.str(Echo) && In.atEnd();
}

bool net::decodeAnalyzeResponseBody(ByteReader &In, AnalyzeResponse &Out) {
  return In.u32(Out.Loads) && In.u32(Out.Flagged) && In.atEnd();
}

bool net::decodeRunResponseBody(ByteReader &In, RunResponse &Out) {
  return In.u8(Out.Halt) && In.i32(Out.ExitCode) && In.u64(Out.Instrs) &&
         In.u64(Out.DataAccesses) && In.u64(Out.LoadMisses) &&
         In.u64(Out.StoreMisses) && In.atEnd();
}

bool net::decodeClassifyResponseBody(ByteReader &In, ClassifyResponse &Out) {
  return In.u32(Out.DeltaH) && In.u32(Out.Lambda) &&
         In.u64(Out.CoveredMisses) && In.u64(Out.TotalMisses) && In.atEnd();
}

bool net::decodeStatsResponseBody(ByteReader &In, StatsResponse &Out) {
  uint32_t N = 0;
  if (!(In.u64(Out.UptimeNs) && In.u64(Out.Accepts) && In.u64(Out.FramesIn) &&
        In.u64(Out.FramesOut) && In.u64(Out.BytesIn) && In.u64(Out.BytesOut) &&
        In.u64(Out.Rejects) && In.u64(Out.ResponsesDropped) &&
        In.u64(Out.StoreHits) && In.u64(Out.StoreMisses) &&
        In.u64(Out.StoreWrites) && In.u32(N)))
    return false;
  if (N > 64) // Far above the opcode count: implausible, refuse to allocate.
    return false;
  Out.Latencies.clear();
  Out.Latencies.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    OpcodeLatency L;
    uint32_t Op = 0;
    if (!(In.u32(Op) && In.u64(L.Count) && In.f64(L.MeanNs) &&
          In.f64(L.P50Ns) && In.f64(L.P90Ns) && In.f64(L.P99Ns) &&
          In.u64(L.MaxNs)))
      return false;
    L.Op = static_cast<uint16_t>(Op);
    Out.Latencies.push_back(L);
  }
  return In.str(Out.CountersJson) && In.atEnd();
}
