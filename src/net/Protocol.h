//===- net/Protocol.h - delinqd request/response payloads -------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed payloads for each opcode, encoded with the same little-endian
/// exec::ByteWriter/ByteReader the ResultStore uses, so a truncated or
/// hostile payload degrades to a decode failure, never an over-read.
///
/// Every response payload begins with a one-byte Status. Ok is followed by
/// the opcode-specific body; anything else is followed by a human-readable
/// error string. A decode failure of a *request* body is answered with
/// BadRequest on the same connection — only broken framing (net/Frame.h)
/// costs the client its connection.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_NET_PROTOCOL_H
#define DLQ_NET_PROTOCOL_H

#include "exec/Serialize.h"
#include "net/Frame.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dlq {
namespace net {

enum class Status : uint8_t {
  Ok = 0,
  BadRequest = 1,      ///< Request body failed to decode or had bad values.
  UnknownWorkload = 2, ///< Name not in the workload registry.
  Unsupported = 3,     ///< Opcode outside the protocol.
  Draining = 4,        ///< Server is draining; no new work accepted.
  Internal = 5,        ///< Handler threw; message carries what().
};

const char *statusName(Status S);

/// ANALYZE: static-only classification (compile + AG1..AG7 scores, no
/// simulation, no profile input).
struct AnalyzeRequest {
  std::string Workload;
  uint8_t OptLevel = 0; ///< 0 or 1.
  uint8_t Input = 0;    ///< 0 = input1, 1 = input2.
  double Delta = 0.10;
};

struct AnalyzeResponse {
  uint32_t Loads = 0;   ///< lambda: static loads in the module.
  uint32_t Flagged = 0; ///< Loads with phi > delta.
};

/// RUN: full simulation under a cache geometry (served from the Driver's
/// memo tables and the persistent ResultStore when warm).
struct RunRequest {
  std::string Workload;
  uint8_t OptLevel = 0;
  uint8_t Input = 0;
  uint32_t CacheSizeBytes = 8 * 1024;
  uint32_t CacheAssoc = 4;
  uint32_t CacheBlockBytes = 32;
};

struct RunResponse {
  uint8_t Halt = 0; ///< sim::HaltReason.
  int32_t ExitCode = 0;
  uint64_t Instrs = 0;
  uint64_t DataAccesses = 0;
  uint64_t LoadMisses = 0;
  uint64_t StoreMisses = 0;
};

/// CLASSIFY: heuristic evaluation against simulated ground truth.
struct ClassifyRequest {
  std::string Workload;
  uint8_t OptLevel = 0;
  uint8_t Input = 0;
  uint32_t CacheSizeBytes = 8 * 1024;
  uint32_t CacheAssoc = 4;
  uint32_t CacheBlockBytes = 32;
  double Delta = 0.10;
};

struct ClassifyResponse {
  uint32_t DeltaH = 0; ///< |Delta_H|: loads flagged delinquent.
  uint32_t Lambda = 0; ///< Static loads in the module.
  uint64_t CoveredMisses = 0;
  uint64_t TotalMisses = 0;
};

/// STATS: a structured snapshot for load clients plus the full counter
/// registry JSON for humans.
struct OpcodeLatency {
  uint16_t Op = 0;
  uint64_t Count = 0;
  double MeanNs = 0;
  double P50Ns = 0;
  double P90Ns = 0;
  double P99Ns = 0;
  uint64_t MaxNs = 0;
};

struct StatsResponse {
  uint64_t UptimeNs = 0;
  uint64_t Accepts = 0;
  uint64_t FramesIn = 0;
  uint64_t FramesOut = 0;
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t Rejects = 0;
  uint64_t ResponsesDropped = 0;
  uint64_t StoreHits = 0;
  uint64_t StoreMisses = 0;
  uint64_t StoreWrites = 0;
  std::vector<OpcodeLatency> Latencies; ///< Server-side, per opcode.
  std::string CountersJson;             ///< Full obs::counters() dump.

  double storeHitRate() const {
    uint64_t Total = StoreHits + StoreMisses;
    return Total == 0 ? 0.0
                      : static_cast<double>(StoreHits) /
                            static_cast<double>(Total);
  }
};

// --- Request bodies ---------------------------------------------------------

std::vector<uint8_t> encodeAnalyzeRequest(const AnalyzeRequest &R);
bool decodeAnalyzeRequest(exec::ByteReader &In, AnalyzeRequest &Out);
std::vector<uint8_t> encodeRunRequest(const RunRequest &R);
bool decodeRunRequest(exec::ByteReader &In, RunRequest &Out);
std::vector<uint8_t> encodeClassifyRequest(const ClassifyRequest &R);
bool decodeClassifyRequest(exec::ByteReader &In, ClassifyRequest &Out);
// PING carries an arbitrary echo string; STATS and DRAIN have empty bodies.
std::vector<uint8_t> encodePingRequest(const std::string &Echo);

// --- Response payloads (status envelope + body) -----------------------------

/// A non-Ok response: status byte + message.
std::vector<uint8_t> encodeErrorResponse(Status S, const std::string &Msg);

std::vector<uint8_t> encodePingResponse(const std::string &Echo);
std::vector<uint8_t> encodeAnalyzeResponse(const AnalyzeResponse &R);
std::vector<uint8_t> encodeRunResponse(const RunResponse &R);
std::vector<uint8_t> encodeClassifyResponse(const ClassifyResponse &R);
std::vector<uint8_t> encodeStatsResponse(const StatsResponse &R);
std::vector<uint8_t> encodeDrainResponse();

/// Consumes the status envelope from a response payload reader. On a non-Ok
/// status \p Error receives the message; on Ok the reader is left at the
/// opcode body. False when the envelope itself is truncated.
bool decodeResponseHead(exec::ByteReader &In, Status &S, std::string &Error);

bool decodePingResponseBody(exec::ByteReader &In, std::string &Echo);
bool decodeAnalyzeResponseBody(exec::ByteReader &In, AnalyzeResponse &Out);
bool decodeRunResponseBody(exec::ByteReader &In, RunResponse &Out);
bool decodeClassifyResponseBody(exec::ByteReader &In, ClassifyResponse &Out);
bool decodeStatsResponseBody(exec::ByteReader &In, StatsResponse &Out);

} // namespace net
} // namespace dlq

#endif // DLQ_NET_PROTOCOL_H
