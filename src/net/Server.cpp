//===- net/Server.cpp -----------------------------------------------------------//

#include "net/Server.h"

#include "classify/Heuristic.h"
#include "obs/Counters.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dlq;
using namespace dlq::net;

// Process-global net.* instrumentation. Shared across Server instances (they
// already share obs::counters()); resolved once so the hot paths pay one
// relaxed atomic per event.
struct Server::NetCounters {
  obs::Counter &Accepts = obs::counters().counter("net.accepts");
  obs::Counter &ConnsClosed = obs::counters().counter("net.conns.closed");
  obs::Counter &FramesIn = obs::counters().counter("net.frames.in");
  obs::Counter &FramesOut = obs::counters().counter("net.frames.out");
  obs::Counter &BytesIn = obs::counters().counter("net.bytes.in");
  obs::Counter &BytesOut = obs::counters().counter("net.bytes.out");
  obs::Counter &Rejects = obs::counters().counter("net.rejects");
  obs::Counter &Dropped = obs::counters().counter("net.responses.dropped");
  obs::Counter &Dispatched =
      obs::counters().counter("net.requests.dispatched");
  obs::Histogram &OutQDepth = obs::counters().histogram("net.outq.bytes");
  obs::Histogram *ReqNs[6];

  NetCounters() {
    static const char *Names[6] = {
        "net.req.ping.ns", "net.req.analyze.ns", "net.req.run.ns",
        "net.req.classify.ns", "net.req.stats.ns", "net.req.drain.ns"};
    for (unsigned I = 0; I != 6; ++I)
      ReqNs[I] = &obs::counters().histogram(Names[I]);
  }

  static NetCounters &instance() {
    static NetCounters *G = new NetCounters();
    return *G;
  }
};

namespace {

uint64_t nowNs() { return obs::Tracer::instance().nowNs(); }

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

pipeline::InputSel inputSel(uint8_t In) {
  return In == 0 ? pipeline::InputSel::Input1 : pipeline::InputSel::Input2;
}

} // namespace

Server::Server(const ServerOptions &Opts)
    : Opts(Opts), D(Opts.Exec, Opts.MaxInstrsPerRun),
      NC(NetCounters::instance()) {}

Server::~Server() {
  for (auto &[Id, C] : Conns)
    ::close(C.Fd);
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (WakeRead >= 0)
    ::close(WakeRead);
  if (WakeWrite >= 0)
    ::close(WakeWrite);
}

bool Server::start(std::string &Err) {
  int Pipe[2];
  if (pipe(Pipe) != 0) {
    Err = formatString("pipe: %s", std::strerror(errno));
    return false;
  }
  WakeRead = Pipe[0];
  WakeWrite = Pipe[1];
  if (!setNonBlocking(WakeRead) || !setNonBlocking(WakeWrite)) {
    Err = "cannot make wakeup pipe non-blocking";
    return false;
  }

  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = formatString("socket: %s", std::strerror(errno));
    return false;
  }
  int One = 1;
  setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opts.Port);
  if (inet_pton(AF_INET, Opts.Host.c_str(), &Addr.sin_addr) != 1) {
    Err = formatString("bad listen address '%s'", Opts.Host.c_str());
    return false;
  }
  if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = formatString("bind %s:%u: %s", Opts.Host.c_str(), Opts.Port,
                       std::strerror(errno));
    return false;
  }
  if (listen(ListenFd, 256) != 0) {
    Err = formatString("listen: %s", std::strerror(errno));
    return false;
  }
  if (!setNonBlocking(ListenFd)) {
    Err = "cannot make listen socket non-blocking";
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  return true;
}

void Server::wake() {
  uint8_t B = 0;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  ssize_t Ignored = ::write(WakeWrite, &B, 1);
  (void)Ignored;
}

void Server::requestDrain() {
  DrainRequested.store(true, std::memory_order_relaxed);
  wake();
}

int Server::serve() {
  if (ListenFd < 0)
    return 1;
  StartNs = nowNs();
  while (!LoopDone)
    loopOnce(100);
  // Quiesce the pool so the caller can read final counters/stats and flush
  // the trace with nothing still running.
  D.pool().drain();
  return 0;
}

void Server::loopOnce(int TimeoutMs) {
  std::vector<pollfd> Pfds;
  std::vector<uint64_t> Ids; // Parallel to Pfds; 0 = wake/listen slots.
  Pfds.push_back({WakeRead, POLLIN, 0});
  Ids.push_back(0);
  if (!Draining && ListenFd >= 0 && Conns.size() < Opts.MaxConns) {
    Pfds.push_back({ListenFd, POLLIN, 0});
    Ids.push_back(0);
  }
  size_t FirstConn = Pfds.size();
  for (auto &[Id, C] : Conns) {
    short Ev = 0;
    if (!Draining && !C.ReadPaused && !C.PeerClosed)
      Ev |= POLLIN;
    if (!C.OutQ.empty())
      Ev |= POLLOUT;
    Pfds.push_back({C.Fd, Ev, 0});
    Ids.push_back(Id);
  }

  int N = ::poll(Pfds.data(), Pfds.size(), TimeoutMs);
  if (N < 0 && errno != EINTR)
    return;

  if (Pfds[0].revents & POLLIN) {
    uint8_t Buf[256];
    while (::read(WakeRead, Buf, sizeof(Buf)) > 0)
      ;
  }

  pumpCompletions();

  if (FirstConn == 2 && (Pfds[1].revents & POLLIN))
    acceptReady();

  for (size_t I = FirstConn; I != Pfds.size(); ++I) {
    uint64_t Id = Ids[I];
    short Re = Pfds[I].revents;
    if (Re == 0 || !Conns.count(Id))
      continue;
    if (Re & (POLLERR | POLLNVAL)) {
      closeConn(Id, "socket error");
      continue;
    }
    if (Re & POLLIN)
      readReady(Id, Conns.at(Id));
    if (Conns.count(Id) && (Re & POLLHUP) && !(Re & POLLIN)) {
      // Peer gone and nothing left to read; deliverable bytes are moot.
      closeConn(Id, "hangup");
      continue;
    }
  }

  // Flush every connection with pending output (completions enqueued above
  // included), not only the ones poll flagged writable — EAGAIN is cheap.
  std::vector<uint64_t> Writable;
  for (auto &[Id, C] : Conns)
    if (!C.OutQ.empty())
      Writable.push_back(Id);
  for (uint64_t Id : Writable)
    if (Conns.count(Id))
      writeReady(Id, Conns.at(Id));

  sweepIdle(nowNs());

  if (DrainRequested.load(std::memory_order_relaxed) && !Draining)
    beginDrain();
  if (Draining)
    maybeFinishDrain();
}

void Server::acceptReady() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN (or transient error): nothing more to accept now.
    if (Conns.size() >= Opts.MaxConns || !setNonBlocking(Fd)) {
      NC.Rejects.inc();
      ::close(Fd);
      continue;
    }
    int One = 1;
    setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    NC.Accepts.inc();
    uint64_t Id = NextConnId++;
    Conn &C = Conns[Id];
    C.Fd = Fd;
    C.LastActivityNs = nowNs();
  }
}

void Server::readReady(uint64_t Id, Conn &C) {
  uint8_t Buf[64 * 1024];
  size_t PassBytes = 0;
  for (;;) {
    ssize_t R = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (R < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        break;
      closeConn(Id, "recv error");
      return;
    }
    if (R == 0) {
      C.PeerClosed = true;
      break;
    }
    NC.BytesIn.add(static_cast<uint64_t>(R));
    C.LastActivityNs = nowNs();
    C.Dec.feed(Buf, static_cast<size_t>(R));
    PassBytes += static_cast<size_t>(R);
    if (R < static_cast<ssize_t>(sizeof(Buf)) || PassBytes >= (256u << 10))
      break; // Short read, or enough for one pass — stay fair.
  }

  for (;;) {
    Frame F;
    FrameDecoder::Status St;
    {
      obs::Span S("net.frame.decode");
      St = C.Dec.next(F);
      if (St == FrameDecoder::Status::Ready) {
        S.attr("req", F.RequestId);
        S.attr("op", opcodeName(F.Op));
      }
    }
    if (St == FrameDecoder::Status::NeedMore)
      break;
    if (St == FrameDecoder::Status::Corrupt) {
      NC.Rejects.inc();
      closeConn(Id, C.Dec.error().c_str());
      return;
    }
    handleFrame(Id, C, std::move(F));
    if (!Conns.count(Id))
      return; // handleFrame may have begun a drain that closed us.
    if (Draining)
      break; // DRAIN processed: later frames of this batch are refused.
  }

  if (C.PeerClosed && C.InFlight == 0 && C.OutQ.empty())
    closeConn(Id, "eof");
}

void Server::writeReady(uint64_t Id, Conn &C) {
  while (!C.OutQ.empty()) {
    const std::vector<uint8_t> &Front = C.OutQ.front();
    ssize_t W = ::send(C.Fd, Front.data() + C.FrontOff,
                       Front.size() - C.FrontOff, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return;
      closeConn(Id, "send error");
      return;
    }
    NC.BytesOut.add(static_cast<uint64_t>(W));
    C.FrontOff += static_cast<size_t>(W);
    C.LastActivityNs = nowNs();
    if (C.FrontOff == Front.size()) {
      C.OutQBytes -= Front.size();
      C.FrontOff = 0;
      C.OutQ.pop_front();
    }
  }
  if (C.ReadPaused && C.OutQBytes < Opts.MaxOutboundBytes / 2)
    C.ReadPaused = false;
  if (C.PeerClosed && C.InFlight == 0 && C.OutQ.empty())
    closeConn(Id, "eof");
}

void Server::enqueue(Conn &C, std::vector<uint8_t> Wire) {
  C.OutQBytes += Wire.size();
  C.OutQ.push_back(std::move(Wire));
  NC.FramesOut.inc();
  NC.OutQDepth.record(C.OutQBytes);
  if (C.OutQBytes > Opts.MaxOutboundBytes)
    C.ReadPaused = true; // Backpressure: stop reading until drained.
}

void Server::closeConn(uint64_t Id, const char *Why) {
  (void)Why;
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  ::close(It->second.Fd);
  // In-flight jobs of this connection still complete; pumpCompletions drops
  // their responses (counted) when it finds the id gone.
  Conns.erase(It);
  NC.ConnsClosed.inc();
}

void Server::pumpCompletions() {
  std::vector<Completion> Batch;
  {
    std::lock_guard<std::mutex> Lock(CompMu);
    Batch.swap(Completed);
  }
  for (Completion &Done : Batch) {
    --GlobalInFlight;
    auto It = Conns.find(Done.ConnId);
    if (It == Conns.end()) {
      NC.Dropped.inc();
      continue;
    }
    --It->second.InFlight;
    enqueue(It->second, std::move(Done.Wire));
  }
}

void Server::handleFrame(uint64_t Id, Conn &C, Frame &&F) {
  NC.FramesIn.inc();
  uint64_t T0 = nowNs();
  uint16_t Op = F.Op;
  uint64_t Req = F.RequestId;

  auto RespondNow = [&](std::vector<uint8_t> Payload) {
    std::vector<uint8_t> Wire;
    {
      obs::Span ES("net.frame.encode");
      ES.attr("req", Req);
      ES.attr("op", opcodeName(Op));
      Frame RF;
      RF.Op = Op;
      RF.RequestId = Req;
      RF.Payload = std::move(Payload);
      Wire = encodeFrame(RF);
    }
    if (knownOpcode(Op))
      NC.ReqNs[Op]->record(nowNs() - T0);
    enqueue(C, std::move(Wire));
  };

  if (!knownOpcode(Op)) {
    NC.Rejects.inc();
    RespondNow(encodeErrorResponse(
        Status::Unsupported, formatString("unknown opcode %u", Op)));
    return;
  }

  switch (static_cast<Opcode>(Op)) {
  case Opcode::Ping: {
    exec::ByteReader In(F.Payload);
    std::string Echo;
    if (!In.str(Echo) || !In.atEnd()) {
      RespondNow(
          encodeErrorResponse(Status::BadRequest, "malformed PING body"));
      return;
    }
    RespondNow(encodePingResponse(Echo));
    return;
  }
  case Opcode::Stats:
    RespondNow(encodeStatsResponse(snapshotStats()));
    return;
  case Opcode::Drain:
    // Answered in maybeFinishDrain(), after every in-flight response has
    // been enqueued ahead of it.
    DrainWaiters.emplace_back(Id, Req);
    beginDrain();
    return;
  case Opcode::Analyze:
  case Opcode::Run:
  case Opcode::Classify:
    if (Draining) {
      RespondNow(
          encodeErrorResponse(Status::Draining, "server is draining"));
      return;
    }
    dispatchJob(Id, C, std::move(F));
    return;
  }
}

void Server::dispatchJob(uint64_t Id, Conn &C, Frame &&F) {
  obs::Span S("net.dispatch");
  S.attr("req", F.RequestId);
  S.attr("op", opcodeName(F.Op));
  uint64_t T0 = nowNs();
  uint16_t Op = F.Op;
  uint64_t Req = F.RequestId;
  ++C.InFlight;
  ++GlobalInFlight;
  NC.Dispatched.inc();
  try {
    D.pool().submit([this, Id, Op, Req, T0,
                     Body = std::move(F.Payload)]() {
      std::vector<uint8_t> Payload;
      switch (static_cast<Opcode>(Op)) {
      case Opcode::Analyze:
        Payload = handleAnalyze(Body);
        break;
      case Opcode::Run:
        Payload = handleRun(Body);
        break;
      case Opcode::Classify:
        Payload = handleClassify(Body);
        break;
      default:
        Payload = encodeErrorResponse(Status::Internal, "bad dispatch");
        break;
      }
      std::vector<uint8_t> Wire;
      {
        obs::Span ES("net.frame.encode");
        ES.attr("req", Req);
        ES.attr("op", opcodeName(Op));
        Frame RF;
        RF.Op = Op;
        RF.RequestId = Req;
        RF.Payload = std::move(Payload);
        Wire = encodeFrame(RF);
      }
      NC.ReqNs[Op]->record(nowNs() - T0);
      {
        std::lock_guard<std::mutex> Lock(CompMu);
        Completed.push_back(Completion{Id, std::move(Wire)});
      }
      wake();
    });
  } catch (const std::exception &E) {
    // Pool refused (draining): answer inline.
    --C.InFlight;
    --GlobalInFlight;
    std::vector<uint8_t> Wire = encodeFrame(
        Frame{Op, Req, encodeErrorResponse(Status::Draining, E.what())});
    enqueue(C, std::move(Wire));
  }
}

void Server::sweepIdle(uint64_t NowNs) {
  if (Opts.IdleTimeoutNs == 0)
    return;
  std::vector<uint64_t> Stale;
  for (auto &[Id, C] : Conns)
    if (C.InFlight == 0 && C.OutQ.empty() &&
        NowNs - C.LastActivityNs > Opts.IdleTimeoutNs)
      Stale.push_back(Id);
  for (uint64_t Id : Stale)
    closeConn(Id, "idle timeout");
}

void Server::beginDrain() {
  if (Draining)
    return;
  Draining = true;
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
}

void Server::maybeFinishDrain() {
  if (GlobalInFlight > 0)
    return;
  {
    std::lock_guard<std::mutex> Lock(CompMu);
    if (!Completed.empty())
      return; // A worker finished between pump and here; next pass.
  }
  // Every in-flight response is now enqueued; the DRAIN acknowledgements go
  // out strictly after them.
  for (auto &[ConnId, Req] : DrainWaiters) {
    auto It = Conns.find(ConnId);
    if (It == Conns.end())
      continue;
    Frame RF;
    RF.Op = static_cast<uint16_t>(Opcode::Drain);
    RF.RequestId = Req;
    RF.Payload = encodeDrainResponse();
    enqueue(It->second, encodeFrame(RF));
    NC.ReqNs[static_cast<unsigned>(Opcode::Drain)]->record(0);
  }
  DrainWaiters.clear();

  // Push what we can right now; anything the kernel refuses waits for the
  // next poll pass (POLLOUT stays armed while queues are non-empty).
  std::vector<uint64_t> Pending;
  for (auto &[Id, C] : Conns)
    if (!C.OutQ.empty())
      Pending.push_back(Id);
  for (uint64_t Id : Pending)
    if (Conns.count(Id))
      writeReady(Id, Conns.at(Id));
  for (auto &[Id, C] : Conns)
    if (!C.OutQ.empty())
      return;

  std::vector<uint64_t> All;
  for (auto &[Id, C] : Conns)
    All.push_back(Id);
  for (uint64_t Id : All)
    closeConn(Id, "drained");
  LoopDone = true;
}

StatsResponse Server::snapshotStats() const {
  StatsResponse R;
  R.UptimeNs = nowNs() - StartNs;
  R.Accepts = NC.Accepts.value();
  R.FramesIn = NC.FramesIn.value();
  R.FramesOut = NC.FramesOut.value();
  R.BytesIn = NC.BytesIn.value();
  R.BytesOut = NC.BytesOut.value();
  R.Rejects = NC.Rejects.value();
  R.ResponsesDropped = NC.Dropped.value();
  exec::StoreStats SS = D.store().stats();
  R.StoreHits = SS.Hits;
  R.StoreMisses = SS.Misses;
  R.StoreWrites = SS.Writes;
  for (unsigned Op = 0; Op != 6; ++Op) {
    const obs::Histogram &H = *NC.ReqNs[Op];
    if (H.count() == 0)
      continue;
    OpcodeLatency L;
    L.Op = static_cast<uint16_t>(Op);
    L.Count = H.count();
    L.MeanNs = H.mean();
    L.P50Ns = H.quantile(0.50);
    L.P90Ns = H.quantile(0.90);
    L.P99Ns = H.quantile(0.99);
    L.MaxNs = H.max();
    R.Latencies.push_back(L);
  }
  R.CountersJson = obs::counters().json();
  return R;
}

// --- Request handlers (pool worker threads) ---------------------------------

std::vector<uint8_t>
Server::handleAnalyze(const std::vector<uint8_t> &Body) {
  AnalyzeRequest R;
  exec::ByteReader In(Body);
  if (!decodeAnalyzeRequest(In, R))
    return encodeErrorResponse(Status::BadRequest, "malformed ANALYZE body");
  if (R.OptLevel > 1 || R.Input > 1)
    return encodeErrorResponse(Status::BadRequest,
                               "opt level and input must be 0 or 1");
  if (!workloads::findWorkload(R.Workload))
    return encodeErrorResponse(
        Status::UnknownWorkload,
        formatString("no workload '%s'", R.Workload.c_str()));
  try {
    const pipeline::Compiled &C =
        D.compiled(R.Workload, inputSel(R.Input), R.OptLevel);
    classify::HeuristicOptions HO;
    HO.Delta = R.Delta;
    HO.UseFreqClasses = false; // Static-only: no profile input over the wire.
    auto Scores = C.Analysis->scores(HO, nullptr);
    AnalyzeResponse Resp;
    Resp.Loads = static_cast<uint32_t>(C.lambda());
    for (const auto &[Ref, Phi] : Scores)
      Resp.Flagged += classify::isPossiblyDelinquent(Phi, HO) ? 1 : 0;
    return encodeAnalyzeResponse(Resp);
  } catch (const std::exception &E) {
    return encodeErrorResponse(Status::Internal, E.what());
  }
}

namespace {

bool cacheOf(uint32_t Size, uint32_t Assoc, uint32_t Block,
             sim::CacheConfig &Out) {
  Out = sim::CacheConfig{Size, Assoc, Block};
  return Out.valid();
}

} // namespace

std::vector<uint8_t> Server::handleRun(const std::vector<uint8_t> &Body) {
  RunRequest R;
  exec::ByteReader In(Body);
  if (!decodeRunRequest(In, R))
    return encodeErrorResponse(Status::BadRequest, "malformed RUN body");
  if (R.OptLevel > 1 || R.Input > 1)
    return encodeErrorResponse(Status::BadRequest,
                               "opt level and input must be 0 or 1");
  sim::CacheConfig Cache;
  if (!cacheOf(R.CacheSizeBytes, R.CacheAssoc, R.CacheBlockBytes, Cache))
    return encodeErrorResponse(Status::BadRequest, "invalid cache geometry");
  if (!workloads::findWorkload(R.Workload))
    return encodeErrorResponse(
        Status::UnknownWorkload,
        formatString("no workload '%s'", R.Workload.c_str()));
  try {
    const sim::RunResult &Run =
        D.run(R.Workload, inputSel(R.Input), R.OptLevel, Cache);
    RunResponse Resp;
    Resp.Halt = static_cast<uint8_t>(Run.Halt);
    Resp.ExitCode = Run.ExitCode;
    Resp.Instrs = Run.InstrsExecuted;
    Resp.DataAccesses = Run.DataAccesses;
    Resp.LoadMisses = Run.LoadMisses;
    Resp.StoreMisses = Run.StoreMisses;
    return encodeRunResponse(Resp);
  } catch (const std::exception &E) {
    return encodeErrorResponse(Status::Internal, E.what());
  }
}

std::vector<uint8_t>
Server::handleClassify(const std::vector<uint8_t> &Body) {
  ClassifyRequest R;
  exec::ByteReader In(Body);
  if (!decodeClassifyRequest(In, R))
    return encodeErrorResponse(Status::BadRequest,
                               "malformed CLASSIFY body");
  if (R.OptLevel > 1 || R.Input > 1)
    return encodeErrorResponse(Status::BadRequest,
                               "opt level and input must be 0 or 1");
  sim::CacheConfig Cache;
  if (!cacheOf(R.CacheSizeBytes, R.CacheAssoc, R.CacheBlockBytes, Cache))
    return encodeErrorResponse(Status::BadRequest, "invalid cache geometry");
  if (!workloads::findWorkload(R.Workload))
    return encodeErrorResponse(
        Status::UnknownWorkload,
        formatString("no workload '%s'", R.Workload.c_str()));
  try {
    classify::HeuristicOptions HO;
    HO.Delta = R.Delta;
    const pipeline::HeuristicEval &H = D.evalHeuristic(
        R.Workload, inputSel(R.Input), R.OptLevel, Cache, HO);
    const pipeline::Compiled &C =
        D.compiled(R.Workload, inputSel(R.Input), R.OptLevel);
    ClassifyResponse Resp;
    Resp.DeltaH = static_cast<uint32_t>(H.Delta.size());
    Resp.Lambda = static_cast<uint32_t>(C.lambda());
    Resp.CoveredMisses = H.E.CoveredMisses;
    Resp.TotalMisses = H.E.TotalMisses;
    return encodeClassifyResponse(Resp);
  } catch (const std::exception &E) {
    return encodeErrorResponse(Status::Internal, E.what());
  }
}
