//===- net/Server.h - the delinqd analysis service -------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived TCP service over the pipeline Driver. One event-dispatcher
/// thread owns every socket: poll-based, non-blocking accept/read/write.
/// Complete frames are decoded into typed requests and dispatched as jobs
/// onto the Driver's JobPool; the Driver's memo tables plus the persistent
/// ResultStore act as the shared hot cache, keyed exactly as the CLI keys
/// its runs. Workers hand finished, already-encoded responses back through
/// a completion queue and a self-pipe wakeup; the dispatcher correlates
/// nothing — responses carry their request id — it only moves bytes.
///
/// Flow control is per connection: each has a bounded outbound byte queue,
/// and a connection over its bound stops being polled for reads until the
/// queue drains below half (backpressure instead of unbounded buffering).
/// Idle connections (no traffic, nothing in flight) are closed after a
/// timeout. DRAIN — or a signal routed through requestDrain() — stops the
/// listener and all reads, lets in-flight jobs finish, flushes every
/// outbound queue (the DRAIN response is enqueued last, after all in-flight
/// responses), and returns 0 from serve().
///
/// Observability: net.* counters (accepts, frames/bytes in and out, rejects,
/// dropped responses, outbound queue depth) and per-opcode latency
/// histograms (net.req.<op>.ns, dispatch-to-encoded) in obs::counters();
/// per-request spans net.frame.decode -> net.dispatch -> job.run ->
/// net.frame.encode, each tagged with the request id, when tracing is on.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_NET_SERVER_H
#define DLQ_NET_SERVER_H

#include "exec/Options.h"
#include "net/Frame.h"
#include "net/Protocol.h"
#include "pipeline/Pipeline.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dlq {
namespace net {

struct ServerOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0; ///< 0 = ephemeral; port() reports the bound port.
  exec::ExecOptions Exec;
  uint64_t MaxInstrsPerRun = 400'000'000;
  uint64_t IdleTimeoutNs = 60ull * 1000 * 1000 * 1000;
  size_t MaxOutboundBytes = 8u << 20; ///< Per-connection backpressure bound.
  size_t MaxConns = 1024;
};

class Server {
public:
  explicit Server(const ServerOptions &Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens. False (with \p Err) when the address is taken or
  /// invalid. Must be called before serve().
  bool start(std::string &Err);

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }

  /// Runs the dispatcher loop until drained. Returns 0 on a clean drain,
  /// 1 on an internal loop failure. Callable from any thread, once.
  int serve();

  /// Initiates a drain from outside the loop (signal handlers use this:
  /// one atomic store and one pipe write, both async-signal-safe).
  void requestDrain();

  /// The Driver serving requests (exposed for stats rendering after serve()
  /// returns).
  pipeline::Driver &driver() { return D; }

private:
  struct Conn {
    int Fd = -1;
    FrameDecoder Dec;
    std::deque<std::vector<uint8_t>> OutQ; ///< Encoded frames, FIFO.
    size_t OutQBytes = 0;
    size_t FrontOff = 0; ///< Bytes of OutQ.front() already written.
    uint64_t LastActivityNs = 0;
    uint32_t InFlight = 0;    ///< Dispatched jobs not yet enqueued back.
    bool ReadPaused = false;  ///< Backpressure: over the outbound bound.
    bool PeerClosed = false;  ///< EOF seen; flush and close.
  };

  /// A worker-finished response awaiting the dispatcher.
  struct Completion {
    uint64_t ConnId;
    std::vector<uint8_t> Wire; ///< Fully encoded response frame.
  };

  void loopOnce(int TimeoutMs);
  void acceptReady();
  void readReady(uint64_t Id, Conn &C);
  void writeReady(uint64_t Id, Conn &C);
  void handleFrame(uint64_t Id, Conn &C, Frame &&F);
  void dispatchJob(uint64_t Id, Conn &C, Frame &&F);
  void enqueue(Conn &C, std::vector<uint8_t> Wire);
  void closeConn(uint64_t Id, const char *Why);
  void pumpCompletions();
  void sweepIdle(uint64_t NowNs);
  void beginDrain();
  void maybeFinishDrain();
  StatsResponse snapshotStats() const;
  void wake();

  // Request handlers; run on pool workers, return the response payload.
  std::vector<uint8_t> handleAnalyze(const std::vector<uint8_t> &Body);
  std::vector<uint8_t> handleRun(const std::vector<uint8_t> &Body);
  std::vector<uint8_t> handleClassify(const std::vector<uint8_t> &Body);

  ServerOptions Opts;
  pipeline::Driver D;
  int ListenFd = -1;
  int WakeRead = -1;
  int WakeWrite = -1;
  uint16_t BoundPort = 0;
  uint64_t StartNs = 0;

  std::map<uint64_t, Conn> Conns;
  uint64_t NextConnId = 1;
  size_t GlobalInFlight = 0; ///< Dispatched jobs across all connections.

  /// (conn id, request id) of every DRAIN awaiting its response.
  std::vector<std::pair<uint64_t, uint64_t>> DrainWaiters;
  std::atomic<bool> DrainRequested{false};
  bool Draining = false;
  bool LoopDone = false;

  std::mutex CompMu;
  std::vector<Completion> Completed;

  // Counter handles, resolved once against obs::counters().
  struct NetCounters;
  NetCounters &NC;
};

} // namespace net
} // namespace dlq

#endif // DLQ_NET_SERVER_H
