//===- obs/Counters.cpp ---------------------------------------------------------//

#include "obs/Counters.h"

#include "support/Format.h"
#include "support/Table.h"

using namespace dlq;
using namespace dlq::obs;

void Histogram::record(uint64_t Value) {
  unsigned B = 0;
  if (Value != 0)
    B = 64 - static_cast<unsigned>(__builtin_clzll(Value));
  if (B >= NumBuckets)
    B = NumBuckets - 1;
  Buckets[B].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (Value < Cur &&
         !Min.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (Value > Cur &&
         !Max.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
    ;
}

uint64_t Histogram::min() const {
  uint64_t M = Min.load(std::memory_order_relaxed);
  return M == UINT64_MAX ? 0 : M;
}

double Histogram::mean() const {
  uint64_t C = count();
  return C == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(C);
}

uint64_t Histogram::quantileBound(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total - 1));
  uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Seen += bucketCount(B);
    if (Seen > Rank)
      return B == 0 ? 0 : (B >= 64 ? UINT64_MAX : (uint64_t(1) << B) - 1);
  }
  return max();
}

double Histogram::quantile(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0.0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Target rank in [0, Total]; the bucket containing it gets a linear
  // interpolation across its value span (the values inside a bucket are
  // assumed uniformly spread, the usual log-bucket estimate).
  double Rank = Q * static_cast<double>(Total);
  uint64_t Seen = 0;
  double V = static_cast<double>(max());
  for (unsigned B = 0; B != NumBuckets; ++B) {
    uint64_t C = bucketCount(B);
    if (C == 0)
      continue;
    if (static_cast<double>(Seen + C) >= Rank) {
      if (B == 0) {
        V = 0.0;
      } else {
        double Lo = static_cast<double>(uint64_t(1) << (B - 1));
        double Hi = B >= 63 ? static_cast<double>(max()) + 1
                            : static_cast<double>(uint64_t(1) << B);
        double Frac = (Rank - static_cast<double>(Seen)) /
                      static_cast<double>(C);
        V = Lo + (Hi - Lo) * Frac;
      }
      break;
    }
    Seen += C;
  }
  double MinV = static_cast<double>(min());
  double MaxV = static_cast<double>(max());
  if (V < MinV)
    V = MinV;
  if (V > MaxV)
    V = MaxV;
  return V;
}

Counter &Counters::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Counter> &Slot = Cs[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Histogram &Counters::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Histogram> &Slot = Hs[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

void Counters::forEachCounter(
    const std::function<void(const std::string &, const Counter &)> &Fn)
    const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Name, C] : Cs)
    Fn(Name, *C);
}

void Counters::forEachHistogram(
    const std::function<void(const std::string &, const Histogram &)> &Fn)
    const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Name, H] : Hs)
    Fn(Name, *H);
}

std::string Counters::summaryTable() const {
  TextTable T({"counter", "value"});
  forEachCounter([&](const std::string &Name, const Counter &C) {
    T.addRow({Name, formatWithCommas(C.value())});
  });
  std::string Out = T.render();
  bool AnyHist = false;
  TextTable HT({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
  forEachHistogram([&](const std::string &Name, const Histogram &H) {
    AnyHist = true;
    HT.addRow({Name, formatWithCommas(H.count()),
               formatString("%.0f", H.mean()),
               formatString("%.0f", H.quantile(0.50)),
               formatString("%.0f", H.quantile(0.90)),
               formatString("%.0f", H.quantile(0.99)),
               formatWithCommas(H.max())});
  });
  if (AnyHist)
    Out += HT.render();
  return Out;
}

std::string Counters::json() const {
  std::string Out = "{";
  bool First = true;
  forEachCounter([&](const std::string &Name, const Counter &C) {
    Out += formatString("%s\"%s\": %llu", First ? "" : ", ", Name.c_str(),
                        static_cast<unsigned long long>(C.value()));
    First = false;
  });
  forEachHistogram([&](const std::string &Name, const Histogram &H) {
    Out += formatString(
        "%s\"%s\": {\"count\": %llu, \"sum\": %llu, \"mean\": %.1f, "
        "\"min\": %llu, \"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, "
        "\"max\": %llu}",
        First ? "" : ", ", Name.c_str(),
        static_cast<unsigned long long>(H.count()),
        static_cast<unsigned long long>(H.sum()), H.mean(),
        static_cast<unsigned long long>(H.min()), H.quantile(0.50),
        H.quantile(0.90), H.quantile(0.99),
        static_cast<unsigned long long>(H.max()));
    First = false;
  });
  Out += "}";
  return Out;
}

Counters &obs::counters() {
  // Leaked on purpose: atexit trace/counter dumps must outlive every static
  // destructor that might still record.
  static Counters *G = new Counters();
  return *G;
}
