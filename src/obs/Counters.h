//===- obs/Counters.h - monotonic counters and latency histograms -----------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter half of the observability layer (the span half is
/// obs/Trace.h). A `Counters` registry hands out named `Counter`s (monotonic
/// 64-bit adds) and `Histogram`s (log2-bucketed value distributions, built
/// for nanosecond latencies). Handles returned by the registry are stable
/// for the registry's lifetime, so hot paths look a counter up once and then
/// pay a single relaxed atomic add per event — safe to leave enabled
/// everywhere, including worker threads.
///
/// Two kinds of registries exist: the process-global one (`obs::counters()`)
/// that the simulator, job pool and result store feed, and per-component
/// instances such as the one inside exec::ExecStats, which supersedes its
/// old ad-hoc phase map. Registries render themselves as a text table or as
/// a JSON object.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_OBS_COUNTERS_H
#define DLQ_OBS_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace dlq {
namespace obs {

/// A monotonic counter. add() is wait-free (one relaxed fetch_add);
/// value() is a relaxed load, exact once the writers have quiesced.
class Counter {
public:
  void add(uint64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  void inc() { add(1); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A log2-bucketed histogram of non-negative values (nanosecond latencies,
/// byte sizes). Bucket B holds values in [2^(B-1), 2^B); bucket 0 holds 0.
/// record() is a handful of relaxed atomics; min/max converge via CAS.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void record(uint64_t Value);

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t min() const;
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double mean() const;
  /// Upper bound of the bucket holding the q-quantile (q in [0,1]), i.e. a
  /// within-2x estimate of the percentile. 0 when empty.
  uint64_t quantileBound(double Q) const;

  /// Interpolated q-quantile (q in [0,1]): the rank's bucket is found from
  /// the cumulative counts and the value is interpolated linearly across the
  /// bucket's [2^(B-1), 2^B) span, then clamped to the observed [min, max].
  /// Exact for single-valued distributions, within the bucket span
  /// otherwise — tight enough for p50/p90/p99 latency reporting. 0 when
  /// empty.
  double quantile(double Q) const;

  uint64_t bucketCount(unsigned B) const {
    return Buckets[B].load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// A named registry of counters and histograms. counter()/histogram()
/// find-or-create under a mutex and return references that stay valid for
/// the registry's lifetime — look them up once, then update lock-free.
class Counters {
public:
  Counters() = default;
  Counters(const Counters &) = delete;
  Counters &operator=(const Counters &) = delete;

  Counter &counter(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Visits every counter / histogram in name order.
  void forEachCounter(
      const std::function<void(const std::string &, const Counter &)> &Fn)
      const;
  void forEachHistogram(
      const std::function<void(const std::string &, const Histogram &)> &Fn)
      const;

  /// Rendered table of every counter and histogram, name-ordered.
  std::string summaryTable() const;
  /// `{"counter.name": 123, "hist.name": {"count": ..., ...}, ...}`.
  std::string json() const;

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Cs;
  std::map<std::string, std::unique_ptr<Histogram>> Hs;
};

/// The process-global registry: sim.* (instructions retired, fused dispatch,
/// cache traffic), job.* (pool queue-wait/run latencies), store.* (result
/// cache hits/misses/stores/drops and byte traffic), trace.* (tracer
/// self-accounting). Never destroyed, so atexit hooks may read it.
Counters &counters();

} // namespace obs
} // namespace dlq

#endif // DLQ_OBS_COUNTERS_H
