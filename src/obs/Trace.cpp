//===- obs/Trace.cpp ------------------------------------------------------------//

#include "obs/Trace.h"

#include "obs/Counters.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace dlq;
using namespace dlq::obs;

static uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer() : EpochNs(steadyNowNs()) {
  // DLQ_TRACE=<path> arms tracing in any binary — no flag plumbing needed.
  // The trace is flushed from atexit so even abnormal-but-clean exits (the
  // fuzz campaign's findings path) leave an artifact behind.
  if (const char *Path = std::getenv("DLQ_TRACE")) {
    if (*Path) {
      static std::string AtExitPath;
      AtExitPath = Path;
      enable();
      std::atexit(
          [] { Tracer::instance().writeChromeTrace(AtExitPath); });
    }
  }
}

Tracer &Tracer::instance() {
  // Leaked on purpose: spans may still close from static destructors after
  // main returns, and the atexit flush must find the buffers intact.
  static Tracer *G = new Tracer();
  return *G;
}

uint64_t Tracer::nowNs() const { return steadyNowNs() - EpochNs; }

Tracer::ThreadBuf &Tracer::localBuf() {
  thread_local std::shared_ptr<ThreadBuf> Local;
  if (!Local) {
    Local = std::make_shared<ThreadBuf>();
    std::lock_guard<std::mutex> Lock(RegMu);
    Local->Tid = NextTid++;
    Bufs.push_back(Local);
  }
  return *Local;
}

void Tracer::record(const char *Name, uint64_t StartNs, uint64_t DurNs,
                    std::string Args) {
  ThreadBuf &B = localBuf();
  std::lock_guard<std::mutex> Lock(B.Mu);
  if (B.Events.size() >= MaxEventsPerThread.load(std::memory_order_relaxed)) {
    ++B.Dropped;
    return;
  }
  B.Events.push_back({Name, StartNs, DurNs, B.Tid, std::move(Args)});
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> Out;
  std::lock_guard<std::mutex> RegLock(RegMu);
  for (const std::shared_ptr<ThreadBuf> &B : Bufs) {
    std::lock_guard<std::mutex> Lock(B->Mu);
    Out.insert(Out.end(), B->Events.begin(), B->Events.end());
  }
  std::sort(Out.begin(), Out.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              return A.DurNs > B.DurNs;
            });
  return Out;
}

size_t Tracer::eventCount() const {
  size_t N = 0;
  std::lock_guard<std::mutex> RegLock(RegMu);
  for (const std::shared_ptr<ThreadBuf> &B : Bufs) {
    std::lock_guard<std::mutex> Lock(B->Mu);
    N += B->Events.size();
  }
  return N;
}

uint64_t Tracer::droppedCount() const {
  uint64_t N = 0;
  std::lock_guard<std::mutex> RegLock(RegMu);
  for (const std::shared_ptr<ThreadBuf> &B : Bufs) {
    std::lock_guard<std::mutex> Lock(B->Mu);
    N += B->Dropped;
  }
  return N;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> RegLock(RegMu);
  for (const std::shared_ptr<ThreadBuf> &B : Bufs) {
    std::lock_guard<std::mutex> Lock(B->Mu);
    B->Events.clear();
    B->Dropped = 0;
  }
}

std::string obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

void Span::attr(const char *Key, const std::string &Value) {
  if (!Active)
    return;
  if (!Args.empty())
    Args += ", ";
  Args += formatString("\"%s\": \"%s\"", Key, jsonEscape(Value).c_str());
}

void Span::attr(const char *Key, const char *Value) {
  if (!Active)
    return;
  attr(Key, std::string(Value));
}

void Span::attr(const char *Key, uint64_t Value) {
  if (!Active)
    return;
  if (!Args.empty())
    Args += ", ";
  Args += formatString("\"%s\": %llu", Key,
                       static_cast<unsigned long long>(Value));
}

void Span::attr(const char *Key, double Value) {
  if (!Active)
    return;
  if (!Args.empty())
    Args += ", ";
  Args += formatString("\"%s\": %.6g", Key, Value);
}

std::string Tracer::chromeTraceJson() const {
  // Emit duration events as balanced B/E pairs per tid. Spans on one thread
  // nest properly by construction (RAII, same-thread begin/end), so sorting
  // by (start asc, duration desc) and unwinding ends through a stack yields
  // a well-formed, timestamp-monotonic event sequence for each tid.
  std::vector<TraceEvent> All = snapshot();
  std::map<uint32_t, std::vector<const TraceEvent *>> ByTid;
  for (const TraceEvent &E : All)
    ByTid[E.Tid].push_back(&E);

  std::string Out = "{\"traceEvents\": [\n";
  bool FirstEvent = true;
  auto emit = [&](const char *Phase, const TraceEvent &E, uint64_t TsNs,
                  bool WithArgs) {
    if (!FirstEvent)
      Out += ",\n";
    FirstEvent = false;
    Out += formatString(
        "{\"name\": \"%s\", \"ph\": \"%s\", \"pid\": 1, \"tid\": %u, "
        "\"ts\": %.3f",
        jsonEscape(E.Name).c_str(), Phase, E.Tid,
        static_cast<double>(TsNs) / 1000.0);
    if (WithArgs && !E.Args.empty())
      Out += formatString(", \"args\": {%s}", E.Args.c_str());
    Out += "}";
  };

  for (auto &[Tid, Events] : ByTid) {
    (void)Tid;
    std::vector<const TraceEvent *> Stack;
    for (const TraceEvent *E : Events) {
      while (!Stack.empty() &&
             Stack.back()->StartNs + Stack.back()->DurNs <= E->StartNs) {
        emit("E", *Stack.back(), Stack.back()->StartNs + Stack.back()->DurNs,
             false);
        Stack.pop_back();
      }
      emit("B", *E, E->StartNs, true);
      Stack.push_back(E);
    }
    while (!Stack.empty()) {
      emit("E", *Stack.back(), Stack.back()->StartNs + Stack.back()->DurNs,
           false);
      Stack.pop_back();
    }
  }
  Out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::string Json = chromeTraceJson();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "obs: cannot write trace to '%s'\n", Path.c_str());
    return false;
  }
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = Written == Json.size() && std::fclose(F) == 0;
  if (!Ok)
    std::fprintf(stderr, "obs: short write to '%s'\n", Path.c_str());
  return Ok;
}

std::string Tracer::summaryTable() const {
  std::map<std::string, SpanStats> Stats;
  for (const TraceEvent &E : snapshot()) {
    SpanStats &S = Stats[E.Name];
    ++S.Count;
    S.TotalNs += E.DurNs;
    S.MinNs = std::min(S.MinNs, E.DurNs);
    S.MaxNs = std::max(S.MaxNs, E.DurNs);
  }
  std::vector<std::pair<std::string, SpanStats>> Rows(Stats.begin(),
                                                      Stats.end());
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    if (A.second.TotalNs != B.second.TotalNs)
      return A.second.TotalNs > B.second.TotalNs;
    return A.first < B.first;
  });
  TextTable T({"span", "count", "total ms", "mean us", "min us", "max us"});
  for (const auto &[Name, S] : Rows)
    T.addRow({Name, formatWithCommas(S.Count),
              formatString("%.3f", static_cast<double>(S.TotalNs) / 1e6),
              formatString("%.1f", static_cast<double>(S.TotalNs) /
                                       static_cast<double>(S.Count) / 1e3),
              formatString("%.1f", static_cast<double>(S.MinNs) / 1e3),
              formatString("%.1f", static_cast<double>(S.MaxNs) / 1e3)});
  uint64_t Dropped = droppedCount();
  std::string Out = T.render();
  if (Dropped)
    Out += formatString("(%llu spans dropped at buffer cap)\n",
                        static_cast<unsigned long long>(Dropped));
  return Out;
}
