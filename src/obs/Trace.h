//===- obs/Trace.h - structured span tracing -------------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The span half of the observability layer (obs/Counters.h is the counter
/// half). A `Span` is an RAII guard around one timed region — a pipeline
/// stage, one JobPool job, one simulation — with optional key=value
/// attributes. Completed spans land in per-thread buffers inside the
/// process-global `Tracer`, which exports them as Chrome `trace_event` JSON
/// (loadable in Perfetto / chrome://tracing) and as a flat per-stage summary
/// table.
///
/// The tracer is disabled by default. A disabled Span is two relaxed loads
/// and a branch: no clock read, no allocation, no buffer touch — cheap
/// enough that every stage of the pipeline stays instrumented
/// unconditionally. Enable it with `--trace out.json` on delinq and every
/// bench binary, with the `delinq trace` subcommand, or by setting
/// `DLQ_TRACE=<path>` in the environment (the trace is then written from an
/// atexit hook, which is how the fuzz campaign runs traced).
///
/// Span names must be string literals (they are kept by pointer). Attributes
/// are rendered into the span's `args` object in the Chrome trace. Spans
/// must begin and end on the same thread; per-thread begin/end pairs
/// therefore nest properly, which the exporter relies on to emit balanced
/// B/E event sequences with monotonic timestamps.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_OBS_TRACE_H
#define DLQ_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dlq {
namespace obs {

/// One completed span, as stored in a thread buffer.
struct TraceEvent {
  const char *Name;   ///< Static string; spans are named by literals.
  uint64_t StartNs;   ///< Relative to the tracer epoch (steady clock).
  uint64_t DurNs;
  uint32_t Tid;       ///< Small sequential id, assigned per recording thread.
  std::string Args;   ///< Pre-rendered JSON members, `"k":"v",...` or empty.
};

/// Aggregate of every span sharing one name, for the summary table.
struct SpanStats {
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t MinNs = UINT64_MAX;
  uint64_t MaxNs = 0;
};

/// The process-global span sink. All methods are thread-safe.
class Tracer {
public:
  static Tracer &instance();

  void enable() { Enabled.store(true, std::memory_order_relaxed); }
  void disable() { Enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Nanoseconds since the tracer epoch (set once at first use, so
  /// timestamps stay monotonic across enable/disable cycles).
  uint64_t nowNs() const;

  /// Appends one completed span to the calling thread's buffer. Called by
  /// ~Span; callable directly for externally-timed regions.
  void record(const char *Name, uint64_t StartNs, uint64_t DurNs,
              std::string Args = std::string());

  /// Every recorded span, merged across threads, ordered by start time.
  std::vector<TraceEvent> snapshot() const;

  /// Total recorded spans (all threads).
  size_t eventCount() const;

  /// Spans dropped because a thread buffer hit the cap.
  uint64_t droppedCount() const;

  /// Chrome trace_event JSON: `{"traceEvents": [...]}` with balanced
  /// B/E pairs per tid, microsecond timestamps, and per-span args.
  std::string chromeTraceJson() const;

  /// Writes chromeTraceJson() to \p Path; false (with a message on stderr)
  /// when the file cannot be written.
  bool writeChromeTrace(const std::string &Path) const;

  /// Per-name aggregation table: count, total, mean, min, max; sorted by
  /// total time descending.
  std::string summaryTable() const;

  /// Discards all recorded spans (buffers stay registered).
  void clear();

  /// Per-thread buffer cap; further spans are dropped and counted. The
  /// default (1M spans/thread) bounds a runaway traced campaign at ~64 MB
  /// per thread.
  void setMaxEventsPerThread(size_t N) { MaxEventsPerThread = N; }

private:
  Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  struct ThreadBuf {
    std::mutex Mu;
    uint32_t Tid = 0;
    std::vector<TraceEvent> Events;
    uint64_t Dropped = 0;
  };

  ThreadBuf &localBuf();

  std::atomic<bool> Enabled{false};
  uint64_t EpochNs = 0; ///< steady_clock time_since_epoch at construction.
  mutable std::mutex RegMu;
  std::vector<std::shared_ptr<ThreadBuf>> Bufs;
  uint32_t NextTid = 0;
  std::atomic<size_t> MaxEventsPerThread{size_t(1) << 20};
};

/// RAII span guard. When the tracer is disabled at construction, the guard
/// is inert: no clock read, no allocation, attrs are no-ops.
class Span {
public:
  explicit Span(const char *Name)
      : Name(Name), Active(Tracer::instance().enabled()) {
    if (Active)
      StartNs = Tracer::instance().nowNs();
  }
  ~Span() {
    if (Active) {
      Tracer &T = Tracer::instance();
      T.record(Name, StartNs, T.nowNs() - StartNs, std::move(Args));
    }
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key=value attribute (rendered into the Chrome-trace args
  /// object). No-ops on an inactive span.
  void attr(const char *Key, const std::string &Value);
  void attr(const char *Key, const char *Value);
  void attr(const char *Key, uint64_t Value);
  void attr(const char *Key, double Value);

private:
  const char *Name;
  uint64_t StartNs = 0;
  std::string Args;
  bool Active;
};

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

} // namespace obs
} // namespace dlq

#endif // DLQ_OBS_TRACE_H
