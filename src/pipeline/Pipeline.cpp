//===- pipeline/Pipeline.cpp ----------------------------------------------------//

#include "pipeline/Pipeline.h"

#include "exec/Hash.h"
#include "exec/Serialize.h"
#include "mcc/Compiler.h"
#include "obs/Trace.h"
#include "prefetch/Seed.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>

using namespace dlq;
using namespace dlq::pipeline;
using namespace dlq::masm;

namespace {

const char *inputName(InputSel In) {
  return In == InputSel::Input1 ? "input1" : "input2";
}

std::string stageKey(const std::string &Workload, InputSel In,
                     unsigned OptLevel) {
  return formatString("%s/%s/O%u", Workload.c_str(), inputName(In), OptLevel);
}

/// HeuristicEval <-> bytes, for the persistent eval cache.
void writeEval(exec::ByteWriter &W, const HeuristicEval &H) {
  W.u64(H.Delta.size());
  for (const InstrRef &Ref : H.Delta) {
    W.u32(Ref.FuncIdx);
    W.u32(Ref.InstrIdx);
  }
  W.u64(H.Scores.size());
  for (const auto &[Ref, Phi] : H.Scores) {
    W.u32(Ref.FuncIdx);
    W.u32(Ref.InstrIdx);
    W.f64(Phi);
  }
  W.u64(H.E.Lambda);
  W.u64(H.E.DeltaSize);
  W.u64(H.E.TotalMisses);
  W.u64(H.E.CoveredMisses);
}

bool readEval(exec::ByteReader &R, HeuristicEval &H) {
  uint64_t N;
  if (!R.u64(N) || N > R.remaining() / 8)
    return false;
  for (uint64_t I = 0; I != N; ++I) {
    InstrRef Ref;
    if (!R.u32(Ref.FuncIdx) || !R.u32(Ref.InstrIdx))
      return false;
    H.Delta.insert(Ref);
  }
  if (!R.u64(N) || N > R.remaining() / 16)
    return false;
  for (uint64_t I = 0; I != N; ++I) {
    InstrRef Ref;
    double Phi;
    if (!R.u32(Ref.FuncIdx) || !R.u32(Ref.InstrIdx) || !R.f64(Phi))
      return false;
    H.Scores[Ref] = Phi;
  }
  uint64_t Lambda, DeltaSize;
  if (!R.u64(Lambda) || !R.u64(DeltaSize) || !R.u64(H.E.TotalMisses) ||
      !R.u64(H.E.CoveredMisses))
    return false;
  H.E.Lambda = static_cast<size_t>(Lambda);
  H.E.DeltaSize = static_cast<size_t>(DeltaSize);
  return true;
}

} // namespace

Driver::Driver(uint64_t MaxInstrsPerRun)
    : Driver(exec::ExecOptions::fromEnv(), MaxInstrsPerRun) {}

Driver::Driver(const exec::ExecOptions &Options, uint64_t MaxInstrsPerRun)
    : Opts(Options), MaxInstrs(MaxInstrsPerRun),
      Pool(Options.Jobs, &Stats.Jobs),
      Store(Options.CacheDir, Options.UseDiskCache) {}

uint64_t Driver::runKeyOf(const std::string &SourceText,
                          const std::string &InputName, unsigned OptLevel,
                          const sim::CacheConfig &Cache, uint64_t MaxInstrs,
                          const metrics::LoadSet &PrefetchLoads,
                          prefetch::Policy Policy,
                          const prefetch::HintMap *Hints) {
  exec::Fnv1a H;
  H.str("dlq-run").str(SourceText).str(InputName).u32(OptLevel);
  H.u32(Cache.SizeBytes).u32(Cache.Assoc).u32(Cache.BlockBytes);
  H.u64(MaxInstrs);
  H.u64(PrefetchLoads.size());
  for (const InstrRef &Ref : PrefetchLoads)
    H.u32(Ref.FuncIdx).u32(Ref.InstrIdx);
  // Folded in only when they depart from the legacy armed-next-line scheme,
  // so unarmed/next-line keys match the pre-engine key format.
  if (Policy != prefetch::Policy::NextLine)
    H.str("pf").str(prefetch::policyName(Policy)).u32(prefetch::EngineVersion);
  if (Hints && !Hints->empty()) {
    H.str("hints").u64(Hints->size());
    for (const auto &[Ref, Hint] : *Hints)
      H.u32(Ref.FuncIdx)
          .u32(Ref.InstrIdx)
          .u32(static_cast<uint32_t>(Hint.Class))
          .u32(static_cast<uint32_t>(Hint.StrideBytes));
  }
  return H.value();
}

uint64_t Driver::evalKeyOf(uint64_t RunKey,
                           const classify::HeuristicOptions &Opts,
                           const ap::ApBuilderOptions &ApOpts,
                           bool IpaEnabled, unsigned IpaK) {
  exec::Fnv1a H;
  H.str("dlq-eval").u64(RunKey);
  H.f64(Opts.Delta);
  for (double W : Opts.Weights.W)
    H.f64(W);
  H.b(Opts.UseFreqClasses).u64(Opts.RareBelow).u64(Opts.SeldomBelow);
  H.u32(ApOpts.MaxPatternsPerLoad).u32(ApOpts.MaxAltsPerUse)
      .u32(ApOpts.MaxDepth);
  // Folded in only when on: IPA-off keys must match the pre-IPA scheme so
  // existing persistent caches are not invalidated.
  if (IpaEnabled)
    H.str("ipa").u32(IpaK);
  return H.value();
}

const workloads::Workload &Driver::findOrDie(const std::string &Workload) {
  const workloads::Workload *W = workloads::findWorkload(Workload);
  if (!W) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Workload.c_str());
    std::exit(1);
  }
  return *W;
}

const std::string &Driver::sourceText(const std::string &Workload,
                                      InputSel In) {
  return latched(SourceCache, Workload + "/" + inputName(In), [&] {
    const workloads::Workload &W = findOrDie(Workload);
    return workloads::instantiate(W, inputOf(W, In));
  });
}

const Compiled &Driver::compiled(const std::string &Workload, InputSel In,
                                 unsigned OptLevel) {
  std::string Key = stageKey(Workload, In, OptLevel);
  if (Opts.Ipa)
    Key += formatString("/ipa-k%u", Opts.IpaK);
  return latched(CompileCache, Key, [&] {
    exec::PhaseTimer Timer(Stats, exec::Phase::Compile);
    mcc::CompileOptions MOpts;
    MOpts.OptLevel = OptLevel;
    mcc::CompileResult CR = [&] {
      obs::Span S("stage.compile");
      S.attr("workload", Workload);
      S.attr("opt", static_cast<uint64_t>(OptLevel));
      return mcc::compile(sourceText(Workload, In), MOpts);
    }();
    if (!CR.ok()) {
      std::fprintf(stderr, "error: workload '%s' failed to compile:\n%s",
                   Workload.c_str(), CR.Errors.c_str());
      std::exit(1);
    }
    Compiled C;
    C.M = std::move(CR.M);
    C.L = std::make_unique<Layout>(*C.M);
    {
      obs::Span S("stage.cfg");
      S.attr("workload", Workload);
      C.Cfgs = sim::buildAllCfgs(*C.M);
    }
    if (Opts.Ipa) {
      ipa::IpaOptions IpaOpts;
      IpaOpts.Enable = true;
      IpaOpts.ContextK = Opts.IpaK;
      C.Ipa = std::make_unique<ipa::ModuleSummaries>(*C.M, *C.L, IpaOpts);
      C.Analysis = std::make_unique<classify::ModuleAnalysis>(
          *C.M, ap::ApBuilderOptions(), IpaOpts);
    } else {
      C.Analysis = std::make_unique<classify::ModuleAnalysis>(*C.M);
    }
    return C;
  });
}

const sim::RunResult &Driver::run(const std::string &Workload, InputSel In,
                                  unsigned OptLevel,
                                  const sim::CacheConfig &Cache) {
  return runImpl(Workload, In, OptLevel, Cache, metrics::LoadSet(),
                 prefetch::Policy::NextLine);
}

const sim::RunResult &
Driver::runWithPrefetch(const std::string &Workload, InputSel In,
                        unsigned OptLevel, const sim::CacheConfig &Cache,
                        const metrics::LoadSet &PrefetchLoads) {
  prefetch::Policy P = prefetch::Policy::NextLine;
  prefetch::policyFromString(Opts.Prefetch, P);
  return runWithPrefetchPolicy(Workload, In, OptLevel, Cache, P,
                               PrefetchLoads);
}

const sim::RunResult &
Driver::runWithPrefetchPolicy(const std::string &Workload, InputSel In,
                              unsigned OptLevel, const sim::CacheConfig &Cache,
                              prefetch::Policy Policy,
                              const metrics::LoadSet &PrefetchLoads) {
  return runImpl(Workload, In, OptLevel, Cache, PrefetchLoads, Policy);
}

const prefetch::HintMap &Driver::prefetchHints(const std::string &Workload,
                                               InputSel In, unsigned OptLevel) {
  std::string Key = stageKey(Workload, In, OptLevel);
  if (Opts.Ipa)
    Key += formatString("/ipa-k%u", Opts.IpaK);
  return latched(HintCache, Key, [&] {
    const Compiled &C = compiled(Workload, In, OptLevel);
    exec::PhaseTimer Timer(Stats, exec::Phase::Analyze);
    obs::Span S("stage.prefetch_hints");
    S.attr("workload", Workload);
    return prefetch::buildStaticHints(*C.M, *C.L, C.Analysis->loadPatterns(),
                                      C.Ipa.get());
  });
}

std::shared_ptr<const prefetch::MissTrace>
Driver::missTrace(const std::string &Workload, InputSel In, unsigned OptLevel,
                  const sim::CacheConfig &Cache,
                  const metrics::LoadSet &PrefetchLoads) {
  uint64_t Key = runKeyOf(sourceText(Workload, In), inputName(In), OptLevel,
                          Cache, MaxInstrs, PrefetchLoads,
                          prefetch::Policy::Record);
  return latched(TraceCache, exec::hexKey(Key), [&] {
    const Compiled &C = compiled(Workload, In, OptLevel);
    exec::PhaseTimer Timer(Stats, exec::Phase::Simulate);
    sim::MachineOptions MOpts;
    MOpts.DCache = Cache;
    MOpts.MaxInstrs = MaxInstrs;
    MOpts.PrefetchLoads = PrefetchLoads;
    MOpts.PrefetchPolicy = prefetch::Policy::Record;
    MOpts.Engine = sim::engineKindFromString(Opts.Engine);
    obs::Span S("stage.pf_record");
    S.attr("workload", Workload);
    sim::Machine Mach(*C.M, *C.L, MOpts);
    sim::RunResult R = Mach.run();
    if (R.Halt != sim::HaltReason::Exited) {
      std::fprintf(stderr,
                   "error: workload '%s' did not exit cleanly while "
                   "recording a miss trace\n",
                   Workload.c_str());
      std::exit(1);
    }
    return Mach.recordedTrace();
  });
}

const sim::RunResult &Driver::runImpl(const std::string &Workload, InputSel In,
                                      unsigned OptLevel,
                                      const sim::CacheConfig &Cache,
                                      const metrics::LoadSet &PrefetchLoads,
                                      prefetch::Policy Policy) {
  // Pcax static seeds and Oracle traces are inputs to the run: the hints
  // feed the key (a better seed builder must re-simulate); the trace is
  // fully determined by inputs already in the key.
  const prefetch::HintMap *Hints =
      Policy == prefetch::Policy::Pcax && !PrefetchLoads.empty()
          ? &prefetchHints(Workload, In, OptLevel)
          : nullptr;
  std::shared_ptr<const prefetch::MissTrace> Trace;
  if (Policy == prefetch::Policy::Oracle && !PrefetchLoads.empty())
    Trace = missTrace(Workload, In, OptLevel, Cache, PrefetchLoads);

  uint64_t Key = runKeyOf(sourceText(Workload, In), inputName(In), OptLevel,
                          Cache, MaxInstrs, PrefetchLoads, Policy, Hints);
  return latched(RunCache, exec::hexKey(Key), [&]() -> sim::RunResult {
    std::vector<uint8_t> Payload;
    if (Store.lookup(Key, Payload)) {
      sim::RunResult R;
      exec::ByteReader Reader(Payload);
      if (exec::readRunResult(Reader, R) && Reader.atEnd() && R.ok())
        return R;
    }

    const Compiled &C = compiled(Workload, In, OptLevel);
    sim::RunResult R;
    {
      exec::PhaseTimer Timer(Stats, exec::Phase::Simulate);
      sim::MachineOptions MOpts;
      MOpts.DCache = Cache;
      MOpts.MaxInstrs = MaxInstrs;
      MOpts.PrefetchLoads = PrefetchLoads;
      MOpts.PrefetchPolicy = Policy;
      if (Hints)
        MOpts.PrefetchHints = *Hints;
      MOpts.OracleTrace = Trace;
      // Engine choice never changes RunResults (the JIT is bit-identical to
      // the interpreter by contract), so it is deliberately not part of the
      // run-cache key above.
      MOpts.Engine = sim::engineKindFromString(Opts.Engine);
      std::unique_ptr<sim::Machine> Mach;
      {
        obs::Span S("stage.predecode");
        S.attr("workload", Workload);
        Mach = std::make_unique<sim::Machine>(*C.M, *C.L, MOpts);
      }
      {
        obs::Span S("stage.sim");
        S.attr("workload", Workload);
        S.attr("input", inputName(In));
        S.attr("opt", static_cast<uint64_t>(OptLevel));
        R = Mach->run();
      }
    }
    if (R.Halt != sim::HaltReason::Exited) {
      std::fprintf(stderr, "error: workload '%s' did not exit cleanly: %s\n",
                   Workload.c_str(),
                   R.Halt == sim::HaltReason::FuelExhausted
                       ? "fuel exhausted"
                       : R.TrapMessage.c_str());
      std::exit(1);
    }

    exec::ByteWriter Writer;
    exec::writeRunResult(Writer, R);
    Store.store(Key, Writer.buffer());
    return R;
  });
}

GroundTruth Driver::groundTruth(const std::string &Workload, InputSel In,
                                unsigned OptLevel,
                                const sim::CacheConfig &Cache) {
  const Compiled &C = compiled(Workload, In, OptLevel);
  const sim::RunResult &R = run(Workload, In, OptLevel, Cache);
  GroundTruth G;
  G.R = &R;
  G.Stats = R.loadStats(*C.M);
  for (const auto &[Ref, S] : G.Stats) {
    G.ExecCounts[Ref] = S.Execs;
    G.TotalLoadMisses += S.Misses;
  }
  return G;
}

const HeuristicEval &
Driver::evalHeuristic(const std::string &Workload, InputSel In,
                      unsigned OptLevel, const sim::CacheConfig &Cache,
                      const classify::HeuristicOptions &Opts) {
  uint64_t RunKey = runKeyOf(sourceText(Workload, In), inputName(In),
                             OptLevel, Cache, MaxInstrs, metrics::LoadSet());
  uint64_t Key = evalKeyOf(RunKey, Opts, ap::ApBuilderOptions(),
                           this->Opts.Ipa, this->Opts.IpaK);
  return latched(EvalCache, exec::hexKey(Key), [&]() -> HeuristicEval {
    std::vector<uint8_t> Payload;
    if (Store.lookup(Key, Payload)) {
      HeuristicEval H;
      exec::ByteReader Reader(Payload);
      if (readEval(Reader, H) && Reader.atEnd())
        return H;
    }

    const Compiled &C = compiled(Workload, In, OptLevel);
    GroundTruth G = groundTruth(Workload, In, OptLevel, Cache);

    exec::PhaseTimer Timer(Stats, exec::Phase::Analyze);
    obs::Span S("stage.classify");
    S.attr("workload", Workload);
    HeuristicEval H;
    H.Scores = C.Analysis->scores(Opts, &G.ExecCounts);
    for (const auto &[Ref, Phi] : H.Scores)
      if (classify::isPossiblyDelinquent(Phi, Opts))
        H.Delta.insert(Ref);
    H.E = metrics::evaluate(C.lambda(), H.Delta, G.Stats);

    exec::ByteWriter Writer;
    writeEval(Writer, H);
    Store.store(Key, Writer.buffer());
    return H;
  });
}

metrics::LoadSet Driver::hotspotLoads(const std::string &Workload, InputSel In,
                                      unsigned OptLevel,
                                      const sim::CacheConfig &Cache,
                                      double CycleCoverage) {
  uint64_t RunKey = runKeyOf(sourceText(Workload, In), inputName(In),
                             OptLevel, Cache, MaxInstrs, metrics::LoadSet());
  std::string Key =
      formatString("%s/cov=%.6f", exec::hexKey(RunKey).c_str(), CycleCoverage);
  return latched(HotspotCache, Key, [&] {
    const Compiled &C = compiled(Workload, In, OptLevel);
    const sim::RunResult &R = run(Workload, In, OptLevel, Cache);
    exec::PhaseTimer Timer(Stats, exec::Phase::Analyze);
    obs::Span S("stage.freq");
    S.attr("workload", Workload);
    sim::BlockProfile P(*C.M, C.Cfgs, R);
    return P.hotspotLoads(CycleCoverage);
  });
}
