//===- pipeline/Pipeline.cpp ----------------------------------------------------//

#include "pipeline/Pipeline.h"

#include "mcc/Compiler.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>

using namespace dlq;
using namespace dlq::pipeline;
using namespace dlq::masm;

Driver::Driver(uint64_t MaxInstrsPerRun) : MaxInstrs(MaxInstrsPerRun) {}

std::string Driver::compileKey(const std::string &Workload, InputSel In,
                               unsigned OptLevel) {
  return formatString("%s/%s/O%u", Workload.c_str(),
                      In == InputSel::Input1 ? "input1" : "input2", OptLevel);
}

std::string Driver::runKey(const std::string &Workload, InputSel In,
                           unsigned OptLevel, const sim::CacheConfig &Cache) {
  return compileKey(Workload, In, OptLevel) + "/" + Cache.describe();
}

const Compiled &Driver::compiled(const std::string &Workload, InputSel In,
                                 unsigned OptLevel) {
  std::string Key = compileKey(Workload, In, OptLevel);
  auto It = CompileCache.find(Key);
  if (It != CompileCache.end())
    return *It->second;

  const workloads::Workload *W = workloads::findWorkload(Workload);
  if (!W) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Workload.c_str());
    std::exit(1);
  }
  const workloads::WorkloadInput &Input = inputOf(*W, In);
  std::string Source = workloads::instantiate(*W, Input);

  mcc::CompileOptions Opts;
  Opts.OptLevel = OptLevel;
  mcc::CompileResult CR = mcc::compile(Source, Opts);
  if (!CR.ok()) {
    std::fprintf(stderr, "error: workload '%s' failed to compile:\n%s",
                 Workload.c_str(), CR.Errors.c_str());
    std::exit(1);
  }

  auto C = std::make_unique<Compiled>();
  C->M = std::move(CR.M);
  C->L = std::make_unique<Layout>(*C->M);
  C->Cfgs = sim::buildAllCfgs(*C->M);
  C->Analysis = std::make_unique<classify::ModuleAnalysis>(*C->M);

  const Compiled &Ref = *C;
  CompileCache[Key] = std::move(C);
  return Ref;
}

const sim::RunResult &Driver::run(const std::string &Workload, InputSel In,
                                  unsigned OptLevel,
                                  const sim::CacheConfig &Cache) {
  std::string Key = runKey(Workload, In, OptLevel, Cache);
  auto It = RunCache.find(Key);
  if (It != RunCache.end())
    return *It->second;

  const Compiled &C = compiled(Workload, In, OptLevel);
  sim::MachineOptions Opts;
  Opts.DCache = Cache;
  Opts.MaxInstrs = MaxInstrs;
  sim::Machine Mach(*C.M, *C.L, Opts);
  auto R = std::make_unique<sim::RunResult>(Mach.run());
  if (R->Halt != sim::HaltReason::Exited) {
    std::fprintf(stderr, "error: workload '%s' did not exit cleanly: %s\n",
                 Workload.c_str(),
                 R->Halt == sim::HaltReason::FuelExhausted
                     ? "fuel exhausted"
                     : R->TrapMessage.c_str());
    std::exit(1);
  }

  const sim::RunResult &Ref = *R;
  RunCache[Key] = std::move(R);
  return Ref;
}

GroundTruth Driver::groundTruth(const std::string &Workload, InputSel In,
                                unsigned OptLevel,
                                const sim::CacheConfig &Cache) {
  const Compiled &C = compiled(Workload, In, OptLevel);
  const sim::RunResult &R = run(Workload, In, OptLevel, Cache);
  GroundTruth G;
  G.R = &R;
  G.Stats = R.loadStats(*C.M);
  for (const auto &[Ref, S] : G.Stats) {
    G.ExecCounts[Ref] = S.Execs;
    G.TotalLoadMisses += S.Misses;
  }
  return G;
}

HeuristicEval Driver::evalHeuristic(const std::string &Workload, InputSel In,
                                    unsigned OptLevel,
                                    const sim::CacheConfig &Cache,
                                    const classify::HeuristicOptions &Opts) {
  const Compiled &C = compiled(Workload, In, OptLevel);
  GroundTruth G = groundTruth(Workload, In, OptLevel, Cache);

  HeuristicEval H;
  H.Scores = C.Analysis->scores(Opts, &G.ExecCounts);
  for (const auto &[Ref, Phi] : H.Scores)
    if (classify::isPossiblyDelinquent(Phi, Opts))
      H.Delta.insert(Ref);
  H.E = metrics::evaluate(C.lambda(), H.Delta, G.Stats);
  return H;
}

metrics::LoadSet Driver::hotspotLoads(const std::string &Workload, InputSel In,
                                      unsigned OptLevel,
                                      const sim::CacheConfig &Cache,
                                      double CycleCoverage) {
  const Compiled &C = compiled(Workload, In, OptLevel);
  const sim::RunResult &R = run(Workload, In, OptLevel, Cache);
  sim::BlockProfile P(*C.M, C.Cfgs, R);
  return P.hotspotLoads(CycleCoverage);
}
