//===- pipeline/Pipeline.h - compile/simulate/analyze driver -------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver shared by the bench binaries and examples: compiles
/// a workload (MinC -> masm), simulates it under a cache configuration, runs
/// the static analyses, and memoizes every stage so that parameter sweeps
/// (delta, epsilon, associativity, size) re-use compilations and runs.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_PIPELINE_PIPELINE_H
#define DLQ_PIPELINE_PIPELINE_H

#include "classify/Delinquency.h"
#include "masm/Module.h"
#include "metrics/Metrics.h"
#include "sim/Cache.h"
#include "sim/Machine.h"
#include "sim/Profile.h"
#include "workloads/Workloads.h"

#include <map>
#include <memory>
#include <string>

namespace dlq {
namespace pipeline {

/// Which of a workload's two input sets to run.
enum class InputSel { Input1, Input2 };

/// A compiled workload with its static artifacts.
struct Compiled {
  std::unique_ptr<masm::Module> M;
  std::unique_ptr<masm::Layout> L;
  std::vector<cfg::Cfg> Cfgs;
  std::unique_ptr<classify::ModuleAnalysis> Analysis;

  size_t lambda() const { return M->countLoads(); }
};

/// One benchmark's dynamic ground truth under a cache configuration.
struct GroundTruth {
  const sim::RunResult *R = nullptr;
  metrics::LoadStatsMap Stats;      ///< Per-load execs/misses.
  classify::ExecCountMap ExecCounts; ///< Per-load execs (H5 input).
  uint64_t TotalLoadMisses = 0;
};

/// Heuristic evaluation of one benchmark.
struct HeuristicEval {
  metrics::LoadSet Delta;
  std::map<masm::InstrRef, double> Scores;
  metrics::EvalResult E;
};

/// Memoizing experiment driver. Not thread-safe; bench binaries are
/// single-threaded.
class Driver {
public:
  explicit Driver(uint64_t MaxInstrsPerRun = 400'000'000);

  /// Compiles (memoized). Aborts the process with a message on compile
  /// errors — workload sources are part of this repository, so failure is a
  /// build bug, not user input.
  const Compiled &compiled(const std::string &Workload, InputSel In,
                           unsigned OptLevel);

  /// Simulates (memoized).
  const sim::RunResult &run(const std::string &Workload, InputSel In,
                            unsigned OptLevel, const sim::CacheConfig &Cache);

  /// Run + per-load stats bundle.
  GroundTruth groundTruth(const std::string &Workload, InputSel In,
                          unsigned OptLevel, const sim::CacheConfig &Cache);

  /// Full heuristic evaluation under \p Opts.
  HeuristicEval evalHeuristic(const std::string &Workload, InputSel In,
                              unsigned OptLevel,
                              const sim::CacheConfig &Cache,
                              const classify::HeuristicOptions &Opts);

  /// The profiling set Delta_P: loads in basic blocks covering
  /// \p CycleCoverage of all cycles (Section 4 uses 0.90).
  metrics::LoadSet hotspotLoads(const std::string &Workload, InputSel In,
                                unsigned OptLevel,
                                const sim::CacheConfig &Cache,
                                double CycleCoverage = 0.90);

  /// Human-readable short name of an input selection.
  static const workloads::WorkloadInput &inputOf(const workloads::Workload &W,
                                                 InputSel In) {
    return In == InputSel::Input1 ? W.Input1 : W.Input2;
  }

private:
  uint64_t MaxInstrs;
  std::map<std::string, std::unique_ptr<Compiled>> CompileCache;
  std::map<std::string, std::unique_ptr<sim::RunResult>> RunCache;

  static std::string compileKey(const std::string &Workload, InputSel In,
                                unsigned OptLevel);
  static std::string runKey(const std::string &Workload, InputSel In,
                            unsigned OptLevel, const sim::CacheConfig &Cache);
};

} // namespace pipeline
} // namespace dlq

#endif // DLQ_PIPELINE_PIPELINE_H
