//===- pipeline/Pipeline.h - compile/simulate/analyze driver -------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver shared by the bench binaries and examples: compiles
/// a workload (MinC -> masm), simulates it under a cache configuration, runs
/// the static analyses, and memoizes every stage so that parameter sweeps
/// (delta, epsilon, associativity, size) re-use compilations and runs.
///
/// The driver sits on the src/exec execution layer: all public methods are
/// thread-safe (bench binaries fan out one job per workload through the
/// driver's JobPool), and the two expensive artifacts — simulation runs and
/// heuristic evaluations — are persisted in a content-addressed ResultStore
/// keyed by the workload source text, input id, opt level, cache geometry
/// and every analysis knob, so a warm bench run never re-simulates.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_PIPELINE_PIPELINE_H
#define DLQ_PIPELINE_PIPELINE_H

#include "classify/Delinquency.h"
#include "exec/ExecStats.h"
#include "ipa/Summaries.h"
#include "exec/JobPool.h"
#include "exec/Options.h"
#include "exec/ResultStore.h"
#include "masm/Module.h"
#include "metrics/Metrics.h"
#include "sim/Cache.h"
#include "sim/Machine.h"
#include "sim/Profile.h"
#include "workloads/Workloads.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace dlq {
namespace pipeline {

/// Which of a workload's two input sets to run.
enum class InputSel { Input1, Input2 };

/// A compiled workload with its static artifacts.
struct Compiled {
  std::unique_ptr<masm::Module> M;
  std::unique_ptr<masm::Layout> L;
  std::vector<cfg::Cfg> Cfgs;
  std::unique_ptr<classify::ModuleAnalysis> Analysis;
  /// Interprocedural summaries; null unless ExecOptions::Ipa was set.
  std::unique_ptr<ipa::ModuleSummaries> Ipa;

  size_t lambda() const { return M->countLoads(); }
};

/// One benchmark's dynamic ground truth under a cache configuration.
struct GroundTruth {
  const sim::RunResult *R = nullptr;
  metrics::LoadStatsMap Stats;      ///< Per-load execs/misses.
  classify::ExecCountMap ExecCounts; ///< Per-load execs (H5 input).
  uint64_t TotalLoadMisses = 0;
};

/// Heuristic evaluation of one benchmark.
struct HeuristicEval {
  metrics::LoadSet Delta;
  std::map<masm::InstrRef, double> Scores;
  metrics::EvalResult E;
};

/// Memoizing, thread-safe experiment driver backed by the src/exec layer.
class Driver {
public:
  explicit Driver(uint64_t MaxInstrsPerRun = 400'000'000);
  explicit Driver(const exec::ExecOptions &Options,
                  uint64_t MaxInstrsPerRun = 400'000'000);

  /// Compiles (memoized in memory). Aborts the process with a message on
  /// compile errors — workload sources are part of this repository, so
  /// failure is a build bug, not user input.
  const Compiled &compiled(const std::string &Workload, InputSel In,
                           unsigned OptLevel);

  /// Simulates (memoized in memory and in the persistent ResultStore).
  const sim::RunResult &run(const std::string &Workload, InputSel In,
                            unsigned OptLevel, const sim::CacheConfig &Cache);

  /// Simulates with prefetching armed on \p PrefetchLoads (the Section 1
  /// motivating application) under the policy ExecOptions::Prefetch selects
  /// (next-line by default); cached like `run`, keyed by the prefetch set
  /// and policy as well.
  const sim::RunResult &runWithPrefetch(const std::string &Workload,
                                        InputSel In, unsigned OptLevel,
                                        const sim::CacheConfig &Cache,
                                        const metrics::LoadSet &PrefetchLoads);

  /// Same with an explicit policy. Pcax runs are seeded with the workload's
  /// static hints (prefetchHints below); Oracle runs first record the
  /// baseline miss trace of the same armed set (memoized in memory, not
  /// persisted) and replay it with perfect next-miss lookahead.
  const sim::RunResult &
  runWithPrefetchPolicy(const std::string &Workload, InputSel In,
                        unsigned OptLevel, const sim::CacheConfig &Cache,
                        prefetch::Policy Policy,
                        const metrics::LoadSet &PrefetchLoads);

  /// The static per-load prefetch seeds of a compiled workload: proven
  /// stride magnitude+sign from the absint access summaries, pointer-chase
  /// class from the ap patterns (memoized; honors the IPA setting).
  const prefetch::HintMap &prefetchHints(const std::string &Workload,
                                         InputSel In, unsigned OptLevel);

  /// Run + per-load stats bundle.
  GroundTruth groundTruth(const std::string &Workload, InputSel In,
                          unsigned OptLevel, const sim::CacheConfig &Cache);

  /// Full heuristic evaluation under \p Opts (memoized and persisted; the
  /// cache key covers every knob in \p Opts, so sweeps can never alias).
  const HeuristicEval &evalHeuristic(const std::string &Workload, InputSel In,
                                     unsigned OptLevel,
                                     const sim::CacheConfig &Cache,
                                     const classify::HeuristicOptions &Opts);

  /// The profiling set Delta_P: loads in basic blocks covering
  /// \p CycleCoverage of all cycles (Section 4 uses 0.90).
  metrics::LoadSet hotspotLoads(const std::string &Workload, InputSel In,
                                unsigned OptLevel,
                                const sim::CacheConfig &Cache,
                                double CycleCoverage = 0.90);

  /// The scheduler benches fan their per-workload jobs through.
  exec::JobPool &pool() { return Pool; }
  unsigned workers() const { return Pool.workers(); }

  exec::ExecStats &stats() { return Stats; }
  const exec::ResultStore &store() const { return Store; }
  const exec::ExecOptions &options() const { return Opts; }

  /// Content key of a simulation run. Exposed (with evalKeyOf) so tests can
  /// assert that every result-changing knob feeds the key. Policy and hints
  /// are folded in only when they depart from the legacy armed-next-line
  /// scheme (non-default policy / non-empty hints), so unarmed and plain
  /// next-line keys match the pre-engine scheme.
  static uint64_t
  runKeyOf(const std::string &SourceText, const std::string &InputName,
           unsigned OptLevel, const sim::CacheConfig &Cache, uint64_t MaxInstrs,
           const metrics::LoadSet &PrefetchLoads,
           prefetch::Policy Policy = prefetch::Policy::NextLine,
           const prefetch::HintMap *Hints = nullptr);

  /// Content key of a heuristic evaluation: the run key plus *all* analysis
  /// knobs — delta, the nine class weights, the AG8/AG9 toggle, the H5
  /// frequency thresholds, the pattern-expansion caps, and (when enabled)
  /// the interprocedural knobs. IPA-off keys are identical to the keys
  /// computed before IPA existed, so warm caches stay valid.
  static uint64_t evalKeyOf(uint64_t RunKey,
                            const classify::HeuristicOptions &Opts,
                            const ap::ApBuilderOptions &ApOpts,
                            bool IpaEnabled = false, unsigned IpaK = 0);

  /// Human-readable short name of an input selection.
  static const workloads::WorkloadInput &inputOf(const workloads::Workload &W,
                                                 InputSel In) {
    return In == InputSel::Input1 ? W.Input1 : W.Input2;
  }

private:
  /// One memoized value: the slot mutex latches concurrent requests for the
  /// same key onto a single computation.
  template <typename T> struct Slot {
    std::mutex M;
    bool Ready = false;
    T Value;
  };

  /// Find-or-compute over a latched slot map. Values live behind shared_ptr,
  /// so returned references stay stable while the map grows.
  template <typename T, typename ComputeFn>
  T &latched(std::map<std::string, std::shared_ptr<Slot<T>>> &Map,
             const std::string &Key, ComputeFn Compute) {
    std::shared_ptr<Slot<T>> S;
    {
      std::lock_guard<std::mutex> Lock(MapMu);
      std::shared_ptr<Slot<T>> &Ref = Map[Key];
      if (!Ref)
        Ref = std::make_shared<Slot<T>>();
      S = Ref;
    }
    std::lock_guard<std::mutex> Lock(S->M);
    if (!S->Ready) {
      S->Value = Compute();
      S->Ready = true;
    }
    return S->Value;
  }

  const sim::RunResult &runImpl(const std::string &Workload, InputSel In,
                                unsigned OptLevel,
                                const sim::CacheConfig &Cache,
                                const metrics::LoadSet &PrefetchLoads,
                                prefetch::Policy Policy);

  /// Records the baseline miss trace of \p PrefetchLoads (a Policy::Record
  /// run — bit-identical to the unarmed baseline, so it needs no result
  /// cache; the trace itself is memoized in memory only).
  std::shared_ptr<const prefetch::MissTrace>
  missTrace(const std::string &Workload, InputSel In, unsigned OptLevel,
            const sim::CacheConfig &Cache,
            const metrics::LoadSet &PrefetchLoads);

  /// The instantiated MinC source of one workload input (memoized — it is
  /// part of every content key).
  const std::string &sourceText(const std::string &Workload, InputSel In);

  static const workloads::Workload &findOrDie(const std::string &Workload);

  exec::ExecOptions Opts;
  uint64_t MaxInstrs;
  exec::ExecStats Stats;
  exec::JobPool Pool;
  exec::ResultStore Store;

  std::mutex MapMu;
  std::map<std::string, std::shared_ptr<Slot<std::string>>> SourceCache;
  std::map<std::string, std::shared_ptr<Slot<Compiled>>> CompileCache;
  std::map<std::string, std::shared_ptr<Slot<sim::RunResult>>> RunCache;
  std::map<std::string, std::shared_ptr<Slot<HeuristicEval>>> EvalCache;
  std::map<std::string, std::shared_ptr<Slot<metrics::LoadSet>>> HotspotCache;
  std::map<std::string, std::shared_ptr<Slot<prefetch::HintMap>>> HintCache;
  std::map<std::string,
           std::shared_ptr<Slot<std::shared_ptr<const prefetch::MissTrace>>>>
      TraceCache;
};

} // namespace pipeline
} // namespace dlq

#endif // DLQ_PIPELINE_PIPELINE_H
