//===- prefetch/Prefetch.cpp ----------------------------------------------------//

#include "prefetch/Prefetch.h"

#include <cassert>
#include <cstdlib>

using namespace dlq;
using namespace dlq::prefetch;

const char *prefetch::policyName(Policy P) {
  switch (P) {
  case Policy::None:
    return "none";
  case Policy::NextLine:
    return "nextline";
  case Policy::Pcax:
    return "pcax";
  case Policy::Record:
    return "record";
  case Policy::Oracle:
    return "oracle";
  }
  return "?";
}

bool prefetch::policyFromString(const std::string &S, Policy &Out) {
  if (S == "none")
    Out = Policy::None;
  else if (S == "nextline")
    Out = Policy::NextLine;
  else if (S == "pcax")
    Out = Policy::Pcax;
  else
    return false;
  return true;
}

Engine::Engine(Policy P, uint32_t BlockBytes, size_t FlatCount)
    : Pol(P), BlockBytes(BlockBytes) {
  assert(BlockBytes > 0);
  SlotOfPc.assign(FlatCount, -1);
  if (Pol == Policy::Record)
    Recorded = std::make_shared<MissTrace>();
}

void Engine::addSlot(uint32_t FlatPc, masm::InstrRef Ref,
                     const StaticHint &H) {
  assert(FlatPc < SlotOfPc.size() && SlotOfPc[FlatPc] < 0);
  Entry E;
  E.FlatPc = FlatPc;
  E.Ref = Ref;
  E.Seed = H;
  // A proven static fact starts the entry confident, so the very first
  // execution already prefetches at the right distance and direction;
  // unproven entries stay quiet until the runtime delta confirms twice.
  if (H.Class == PatternClass::Stride && H.StrideBytes != 0) {
    E.ConfirmedDelta = H.StrideBytes;
    E.Conf = 2;
  } else if (H.Class == PatternClass::Pointer) {
    E.Conf = 2;
  }
  SlotOfPc[FlatPc] = static_cast<int32_t>(Slots.size());
  Slots.push_back(E);
  if (Recorded)
    Recorded->PerSlot.emplace_back();
}

void Engine::issue(Entry &E, uint32_t TargetAddr, sim::Cache &D) {
  ++Stats.Issued;
  ++E.S.Issued;
  if (!D.access(TargetAddr)) {
    ++Stats.Fills;
    ++E.S.Fills;
    Outstanding[TargetAddr / BlockBytes] =
        static_cast<uint32_t>(&E - Slots.data());
  }
}

void Engine::armedNextLine(Entry &E, uint32_t Addr, sim::Cache &D) {
  // Direction from consecutive addresses at this pc; the first execution
  // keeps the ascending default (matching the original prefetcher where it
  // was right). Repeated addresses keep the last direction.
  if (E.Seen) {
    int32_t Delta = static_cast<int32_t>(Addr - E.LastAddr);
    if (Delta < 0)
      E.Dir = -1;
    else if (Delta > 0)
      E.Dir = 1;
  }
  E.LastAddr = Addr;
  E.Seen = true;
  issue(E, E.Dir > 0 ? Addr + BlockBytes : Addr - BlockBytes, D);
}

void Engine::armedPcax(Entry &E, uint32_t Addr, uint32_t Value,
                       sim::Cache &D) {
  if (E.Seed.Class == PatternClass::Pointer) {
    // Next-element scheme: the loaded value is (part of) the next node. The
    // confidence check asks whether the previous loaded value predicted this
    // access — for `p = p->next`-style chases the current address is the
    // previous value plus a small field offset.
    if (E.Seen) {
      int32_t Delta = static_cast<int32_t>(Addr - E.LastAddr);
      if (Delta >= 0 && Delta < 256) {
        if (E.Conf < 3)
          ++E.Conf;
      } else if (E.Conf > 0) {
        --E.Conf;
      }
    }
    E.LastAddr = Value; // remember the value, not the address
    E.Seen = true;
    bool Plausible = Value >= masm::LayoutConstants::DataBase &&
                     Value < masm::LayoutConstants::StackTop;
    if (E.Conf > 0 && Plausible) {
      uint64_t Block = Value / BlockBytes;
      if (Block != E.LastTarget) {
        E.LastTarget = Block;
        issue(E, Value, D);
      }
      return;
    }
    // The chase broke (or the value is no address): fall back to ascending
    // next-line — chained nodes are overwhelmingly allocated in address
    // order, so the spatial guess is the best remaining predictor.
    E.LastTarget = (static_cast<uint64_t>(Addr) + BlockBytes) / BlockBytes;
    issue(E, Addr + BlockBytes, D);
    return;
  }

  // Stride scheme: classic two-confirmation delta table, except a proven
  // static stride pre-loads ConfirmedDelta with full confidence (addSlot).
  if (E.Seen) {
    int32_t Delta = static_cast<int32_t>(Addr - E.LastAddr);
    if (Delta < 0)
      E.Dir = -1;
    else if (Delta > 0)
      E.Dir = 1;
    if (Delta != 0) {
      if (Delta == E.ConfirmedDelta) {
        if (E.Conf < 3)
          ++E.Conf;
      } else if (E.Conf > 0) {
        --E.Conf;
      } else {
        E.ConfirmedDelta = Delta;
      }
    }
  }
  E.LastAddr = Addr;
  E.Seen = true;
  if (E.Conf < 2 || E.ConfirmedDelta == 0) {
    // No trustworthy stride to project — either never confirmed, or still
    // re-training after a break. A stride is trusted only at confidence 2+
    // (statically proven, or the same delta observed twice running); below
    // that the entry degenerates to direction-aware next-line rather than
    // going quiet or aiming a stale delta, so pcax never trails the
    // NextLine policy on pcs whose walks the delta table cannot describe.
    uint32_t Target = E.Dir > 0 ? Addr + BlockBytes : Addr - BlockBytes;
    E.LastTarget = static_cast<uint64_t>(Target) / BlockBytes;
    issue(E, Target, D);
    return;
  }
  // Per-pc distance: far enough ahead in the walk direction to leave the
  // current block, whatever the stride magnitude. Strides past the block
  // size land exactly one element ahead — the next-line scheme would skip
  // to a block the walk never visits.
  int64_t Stride = E.ConfirmedDelta;
  int64_t Mag = Stride < 0 ? -Stride : Stride;
  int64_t Dist = (static_cast<int64_t>(BlockBytes) + Mag - 1) / Mag;
  uint32_t Target =
      static_cast<uint32_t>(static_cast<int64_t>(Addr) + Stride * Dist);
  // Deliberately unfiltered, like the NextLine policy: re-issuing while a
  // sub-block walk keeps aiming at the same target block re-fills it if a
  // conflicting stream evicted it in between (issue() only counts a fill
  // when the block is actually absent).
  E.LastTarget = static_cast<uint64_t>(Target) / BlockBytes;
  issue(E, Target, D);
  // Element-spanning second issue: a stride past the block size means one
  // element covers several blocks — the projection lands on the *next*
  // element while the rest of the current one still has to stream in. Cover
  // it with the adjacent line in the walk direction when that is a
  // different block than the projection.
  uint32_t Adjacent = E.Dir > 0 ? Addr + BlockBytes : Addr - BlockBytes;
  if (Adjacent / BlockBytes != E.LastTarget)
    issue(E, Adjacent, D);
}

void Engine::armedOracle(Entry &E, sim::Cache &D) {
  uint64_t Seq = E.Seq++;
  const std::vector<MissTrace::Ev> &T =
      Trace->PerSlot[static_cast<size_t>(&E - Slots.data())];
  // Perfect next-miss lookahead: skip every baseline miss at or before this
  // execution, prefetch the next one strictly in the future.
  while (E.Cursor < T.size() && T[E.Cursor].Seq <= Seq)
    ++E.Cursor;
  if (E.Cursor == T.size())
    return;
  uint64_t Block = T[E.Cursor].Block;
  if (Block == E.LastTarget)
    return;
  E.LastTarget = Block;
  issue(E, static_cast<uint32_t>(Block) * BlockBytes, D);
}

void Engine::onArmedLoad(uint32_t FlatPc, uint32_t Addr, uint32_t Value,
                         bool Hit, sim::Cache &D) {
  int32_t SlotIdx = SlotOfPc[FlatPc];
  if (SlotIdx < 0)
    return; // an armed flag with no slot cannot happen by construction
  Entry &E = Slots[static_cast<size_t>(SlotIdx)];
  switch (Pol) {
  case Policy::None:
    return;
  case Policy::NextLine:
    armedNextLine(E, Addr, D);
    return;
  case Policy::Pcax:
    armedPcax(E, Addr, Value, D);
    return;
  case Policy::Record:
    if (!Hit)
      Recorded->PerSlot[static_cast<size_t>(SlotIdx)].push_back(
          {E.Seq, Addr / BlockBytes});
    ++E.Seq;
    return;
  case Policy::Oracle:
    assert(Trace && Trace->PerSlot.size() == Slots.size() &&
           "oracle engine needs a matching recorded trace");
    armedOracle(E, D);
    return;
  }
}
