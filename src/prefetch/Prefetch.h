//===- prefetch/Prefetch.h - PC-indexed prefetch engine ---------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator-resident prefetch engine behind the what-if application, in
/// the spirit of PCAX (PC-indexed data address translation): every
/// statically-flagged load pc owns a table entry seeded from static analysis
/// facts (proven stride magnitude *and sign*, pattern class) and refined at
/// runtime (last address, confirmed delta, a 2-bit confidence counter). A
/// prefetch is issued per armed execution at the entry's distance and
/// direction rather than blindly one block up; pointer-chase pcs use the
/// loaded value as the next-element prefetch base instead of an address
/// delta.
///
/// Policies:
///  - NextLine: direction-aware next-line. Tracks the per-pc walk direction
///    from consecutive addresses and prefetches +-BlockBytes accordingly
///    (the first execution defaults to +BlockBytes). This is the fixed form
///    of the original hardwired `Addr + BlockBytes` prefetcher, which pushed
///    descending sweeps into already-visited blocks.
///  - Pcax: the per-pc stride/pointer table described above. Pointer-chase
///    entries carry a last-target filter so repeated loads of the same link
///    issue a single prefetch per target block; stride entries re-issue like
///    NextLine does, re-filling targets a conflicting stream evicted.
///    Entries whose predictor has
///    nothing usable — an unconfirmed stride, or a pointer chase whose value
///    is implausible as an address — fall back to direction-aware next-line
///    for that execution, so pcax degenerates to the NextLine policy instead
///    of going quiet on pcs the table cannot describe.
///  - Record: issues nothing; logs (sequence, miss block) per armed pc. The
///    run is bit-identical to an unarmed baseline.
///  - Oracle: replays a recorded trace with perfect next-miss lookahead:
///    each armed execution prefetches the block of that pc's next future
///    baseline miss. The upper bound accuracy/coverage are reported against.
///
/// Usefulness accounting (under the model's instant-fill cache): the engine
/// tracks blocks it actually brought in; a later demand *hit* on a tracked
/// block counts it useful, a later demand *miss* means the block was evicted
/// before first use and counts it late. Each tracked fill is counted once.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_PREFETCH_PREFETCH_H
#define DLQ_PREFETCH_PREFETCH_H

#include "masm/Module.h"
#include "sim/Cache.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace dlq {
namespace prefetch {

/// What the engine does on each armed execution.
enum class Policy : uint8_t {
  None,     ///< Armed loads issue nothing (prefetch-off control).
  NextLine, ///< Direction-aware next-line (+-BlockBytes).
  Pcax,     ///< Per-pc stride/pointer table, statically seeded.
  Record,   ///< No prefetches; collect the per-pc miss trace.
  Oracle,   ///< Replay a recorded trace with next-miss lookahead.
};

/// Bumped whenever a policy's issue behavior changes; pipeline run keys fold
/// it in for non-legacy policies so persisted results from an older engine
/// are recomputed rather than replayed.
constexpr uint32_t EngineVersion = 5;

const char *policyName(Policy P);

/// Parses the user-facing policy names ("none", "nextline", "pcax");
/// Record/Oracle are internal modes and not accepted here.
bool policyFromString(const std::string &S, Policy &Out);

/// Static pattern class of an armed load, from absint/ap facts.
enum class PatternClass : uint8_t {
  Unknown, ///< No usable static fact; the entry learns from scratch.
  Stride,  ///< Proven affine walk; StrideBytes carries magnitude and sign.
  Pointer, ///< Recurrent dereference (`@rec` pattern): pointer chase.
};

/// The static seed of one pc's table entry.
struct StaticHint {
  PatternClass Class = PatternClass::Unknown;
  /// Signed proven per-iteration advance in bytes; 0 = unproven. Only
  /// meaningful for Class == Stride.
  int32_t StrideBytes = 0;
};

/// Per-load static seeds, keyed the way arming sets are.
using HintMap = std::map<masm::InstrRef, StaticHint>;

/// A recorded baseline miss trace: for each armed slot (in flat-pc order,
/// the same order the engine assigns slots), the (sequence, block) of every
/// miss that pc took, where sequence is the pc's armed-execution ordinal.
struct MissTrace {
  struct Ev {
    uint64_t Seq;   ///< Armed-execution ordinal at this pc (0-based).
    uint32_t Block; ///< Missing block address / BlockBytes.
  };
  std::vector<std::vector<Ev>> PerSlot;
};

/// Engine-wide totals (RunResult::Prefetch* and sim.prefetch.* feed from
/// these).
struct EngineStats {
  uint64_t Issued = 0; ///< Prefetches issued.
  uint64_t Fills = 0;  ///< Issues that brought a new block in.
  uint64_t Useful = 0; ///< Filled blocks demand-hit before eviction.
  uint64_t Late = 0;   ///< Filled blocks evicted before first use.
};

/// Per-slot accounting, for `delinq prefetch` triage.
struct SlotStats {
  uint64_t Issued = 0;
  uint64_t Fills = 0;
  uint64_t Useful = 0;
  uint64_t Late = 0;
};

/// One run's prefetch engine. Constructed per simulation by sim::Machine;
/// both execution engines (interpreter and JIT) call the same two hooks.
class Engine {
public:
  /// \p FlatCount is the program's logical instruction count; slots are
  /// registered against flat pcs below it.
  Engine(Policy P, uint32_t BlockBytes, size_t FlatCount);

  /// Registers \p FlatPc as armed with seed \p H. Call in ascending flat-pc
  /// order (the slot order is the MissTrace::PerSlot order).
  void addSlot(uint32_t FlatPc, masm::InstrRef Ref, const StaticHint &H);

  /// Supplies the baseline trace an Oracle engine replays. Slots must match
  /// the recording engine's (same module, same armed set).
  void setOracleTrace(std::shared_ptr<const MissTrace> T) {
    Trace = std::move(T);
  }

  /// Every demand D-cache access of an armed run (loads and stores), after
  /// its cache access. Settles useful/late for tracked blocks.
  void onDemand(uint32_t Addr, bool Hit) {
    if (Outstanding.empty())
      return;
    auto It = Outstanding.find(Addr / BlockBytes);
    if (It == Outstanding.end())
      return;
    SlotStats &S = Slots[It->second].S;
    if (Hit) {
      ++Stats.Useful;
      ++S.Useful;
    } else {
      ++Stats.Late;
      ++S.Late;
    }
    Outstanding.erase(It);
  }

  /// An armed load's execution, after its own demand access (and its
  /// onDemand call). \p Value is the loaded value — the next-element base
  /// for pointer-chase entries; \p Hit is the demand access's outcome
  /// (consumed by Record mode).
  void onArmedLoad(uint32_t FlatPc, uint32_t Addr, uint32_t Value, bool Hit,
                   sim::Cache &D);

  const EngineStats &stats() const { return Stats; }
  Policy policy() const { return Pol; }
  size_t numSlots() const { return Slots.size(); }

  /// Flat pc and per-slot stats of slot \p I (slots in flat-pc order).
  uint32_t slotPc(size_t I) const { return Slots[I].FlatPc; }
  const masm::InstrRef &slotRef(size_t I) const { return Slots[I].Ref; }
  const SlotStats &slotStats(size_t I) const { return Slots[I].S; }

  /// The trace a Record engine collected (null for other policies).
  std::shared_ptr<const MissTrace> recordedTrace() const { return Recorded; }

private:
  /// One pc's table entry. LastAddr doubles as the last loaded value for
  /// pointer-class entries (the quantity the confidence check compares
  /// against).
  struct Entry {
    uint32_t FlatPc = 0;
    masm::InstrRef Ref;
    StaticHint Seed;
    uint32_t LastAddr = 0;
    int32_t ConfirmedDelta = 0;
    uint8_t Conf = 0; ///< Saturating 0..3; >=1 issues.
    bool Seen = false;
    int8_t Dir = 1;              ///< NextLine walk direction.
    uint64_t Seq = 0;            ///< Armed executions (Record/Oracle).
    size_t Cursor = 0;           ///< Oracle replay position.
    uint64_t LastTarget = ~0ull; ///< Last issued block (issue filter).
    SlotStats S;
  };

  void issue(Entry &E, uint32_t TargetAddr, sim::Cache &D);

  void armedNextLine(Entry &E, uint32_t Addr, sim::Cache &D);
  void armedPcax(Entry &E, uint32_t Addr, uint32_t Value, sim::Cache &D);
  void armedOracle(Entry &E, sim::Cache &D);

  Policy Pol;
  uint32_t BlockBytes;
  std::vector<int32_t> SlotOfPc; ///< Flat pc -> slot index, -1 = unarmed.
  std::vector<Entry> Slots;
  /// Blocks this engine filled that no demand access has touched yet,
  /// mapped to the issuing slot.
  std::unordered_map<uint64_t, uint32_t> Outstanding;
  EngineStats Stats;
  std::shared_ptr<const MissTrace> Trace;  ///< Oracle input.
  std::shared_ptr<MissTrace> Recorded;     ///< Record output.
};

} // namespace prefetch
} // namespace dlq

#endif // DLQ_PREFETCH_PREFETCH_H
