//===- prefetch/Seed.cpp --------------------------------------------------------//

#include "prefetch/Seed.h"

#include "absint/AccessSummary.h"

using namespace dlq;
using namespace dlq::prefetch;

namespace {

/// Clamp a proven stride into the engine's signed field. Strides anywhere
/// near this bound prefetch garbage at worst and nothing useful at best,
/// so saturating is harmless.
constexpr uint64_t MaxSeedStride = 1u << 20;

} // namespace

HintMap prefetch::buildStaticHints(
    const masm::Module &M, const masm::Layout &L,
    const std::map<masm::InstrRef, std::vector<const ap::ApNode *>> &Patterns,
    const absint::InterprocInfo *Ipa) {
  HintMap Hints;

  // Stride class: Regular access summaries carry the proven per-iteration
  // magnitude; the finite interval side gives the sign (a finite lower
  // bound anchors an ascending walk, a finite upper bound a descending one).
  for (const absint::FunctionAccessInfo &F :
       absint::collectModuleAccessInfo(M, L, Ipa)) {
    for (const absint::AccessSummary &A : F.Accesses) {
      if (A.IsStore || !A.regular() || A.Stride == 0 ||
          A.Stride > MaxSeedStride)
        continue;
      StaticHint H;
      H.Class = PatternClass::Stride;
      H.StrideBytes = static_cast<int32_t>(A.Stride);
      if (A.Hi != absint::PosInf && A.Lo == absint::NegInf)
        H.StrideBytes = -H.StrideBytes;
      Hints[A.Ref] = H;
    }
  }

  // Pointer class: any pattern alternative that dereferences a loop-carried
  // recurrence is a chase (`*(rec + c)` and friends); the loaded value is
  // the next element. This overrides a Regular summary only when absint
  // proved nothing (a chase never summarizes as Regular).
  for (const auto &[Ref, Pats] : Patterns) {
    if (Hints.count(Ref))
      continue;
    for (const ap::ApNode *N : Pats) {
      if (ap::hasRecurrence(N) && ap::derefDepth(N) > 0) {
        Hints[Ref] = StaticHint{PatternClass::Pointer, 0};
        break;
      }
    }
  }
  return Hints;
}
