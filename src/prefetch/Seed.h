//===- prefetch/Seed.h - static table seeds from analysis facts -------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the PCAX engine's static seeds from the same analyses the
/// delinquency heuristic runs on: the abstract interpreter's access
/// summaries supply proven stride magnitude and direction (the finite side
/// of the offset interval anchors the walk — Lo for ascending, Hi for
/// descending), and the address-pattern builder's recurrence/dereference
/// facts flag pointer chases for the next-element scheme.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_PREFETCH_SEED_H
#define DLQ_PREFETCH_SEED_H

#include "absint/AccessSummary.h"
#include "ap/Pattern.h"
#include "masm/Module.h"
#include "prefetch/Prefetch.h"

#include <map>
#include <vector>

namespace dlq {
namespace prefetch {

/// Derives a StaticHint for every load the analyses say something useful
/// about. \p Patterns is classify::ModuleAnalysis::loadPatterns() (the
/// per-load address-pattern alternatives); \p Ipa optionally sharpens the
/// access summaries across calls. Loads absent from the result get the
/// Unknown/learn-from-scratch entry.
HintMap
buildStaticHints(const masm::Module &M, const masm::Layout &L,
                 const std::map<masm::InstrRef,
                                std::vector<const ap::ApNode *>> &Patterns,
                 const absint::InterprocInfo *Ipa = nullptr);

} // namespace prefetch
} // namespace dlq

#endif // DLQ_PREFETCH_SEED_H
