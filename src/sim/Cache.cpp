//===- sim/Cache.cpp -------------------------------------------------------==//

#include "sim/Cache.h"

#include "support/Format.h"

#include <cassert>

using namespace dlq;
using namespace dlq::sim;

static bool isPowerOfTwo(uint32_t V) { return V != 0 && (V & (V - 1)) == 0; }

bool CacheConfig::valid() const {
  if (Assoc == 0 || BlockBytes == 0 || SizeBytes == 0)
    return false;
  if (!isPowerOfTwo(BlockBytes))
    return false;
  if (SizeBytes % (Assoc * BlockBytes) != 0)
    return false;
  return isPowerOfTwo(numSets());
}

std::string CacheConfig::describe() const {
  return formatString("%ukB %u-way %uB-blocks", SizeBytes / 1024, Assoc,
                      BlockBytes);
}

Cache::Cache(const CacheConfig &Config) : Cfg(Config) {
  assert(Cfg.valid() && "invalid cache configuration");
  SetMask = Cfg.numSets() - 1;
  uint32_t Block = Cfg.BlockBytes;
  BlockShift = 0;
  while (Block > 1) {
    Block >>= 1;
    ++BlockShift;
  }
  Tags.assign(static_cast<size_t>(Cfg.numSets()) * Cfg.Assoc, 0);
}

/// Non-MRU hit or miss: find the way, shift the stack, install at MRU.
bool Cache::accessSlow(uint64_t *Ways, uint64_t Tag) {
  for (uint32_t W = 1; W != Cfg.Assoc; ++W) {
    if (Ways[W] != Tag)
      continue;
    // Hit: move to MRU position.
    for (uint32_t K = W; K != 0; --K)
      Ways[K] = Ways[K - 1];
    Ways[0] = Tag;
    ++Hits;
    return true;
  }

  // Miss: insert at MRU, evicting the LRU way.
  for (uint32_t K = Cfg.Assoc - 1; K != 0; --K)
    Ways[K] = Ways[K - 1];
  Ways[0] = Tag;
  ++Misses;
  return false;
}

void Cache::flush() {
  for (uint64_t &T : Tags)
    T = 0;
}
