//===- sim/Cache.cpp -------------------------------------------------------==//

#include "sim/Cache.h"

#include "support/Format.h"

#include <stdexcept>

using namespace dlq;
using namespace dlq::sim;

static bool isPowerOfTwo(uint32_t V) { return V != 0 && (V & (V - 1)) == 0; }

bool CacheConfig::valid() const { return validate().empty(); }

std::string CacheConfig::validate() const {
  if (Assoc == 0 || BlockBytes == 0 || SizeBytes == 0)
    return "cache geometry fields must be nonzero";
  if (!isPowerOfTwo(BlockBytes))
    return formatString("block size %u is not a power of two", BlockBytes);
  // 64-bit product: Assoc * BlockBytes can wrap uint32 for adversarial
  // sweep inputs, and a wrapped way size would fake divisibility.
  uint64_t WayBytes = static_cast<uint64_t>(Assoc) * BlockBytes;
  if (SizeBytes % WayBytes != 0)
    return formatString("%u bytes is not a whole number of %u-byte ways "
                        "(size must equal sets * assoc * block)",
                        SizeBytes, static_cast<unsigned>(WayBytes));
  if (!isPowerOfTwo(numSets()))
    return formatString("set count %u is not a power of two", numSets());
  return std::string();
}

std::string CacheConfig::describe() const {
  return formatString("%ukB %u-way %uB-blocks", SizeBytes / 1024, Assoc,
                      BlockBytes);
}

Cache::Cache(const CacheConfig &Config) : Cfg(Config) {
  // Unconditional (not an assert): numSets() == 0 would otherwise become a
  // division by zero / all-ones mask in Release builds, silently corrupting
  // every sweep point downstream of the bad geometry.
  std::string Problem = Cfg.validate();
  if (!Problem.empty())
    throw std::invalid_argument("invalid cache configuration (" +
                                Cfg.describe() + "): " + Problem);
  SetMask = Cfg.numSets() - 1;
  uint32_t Block = Cfg.BlockBytes;
  BlockShift = 0;
  while (Block > 1) {
    Block >>= 1;
    ++BlockShift;
  }
  Tags.assign(static_cast<size_t>(Cfg.numSets()) * Cfg.Assoc, 0);
}

/// Non-MRU hit or miss: find the way, shift the stack, install at MRU.
bool Cache::accessSlow(uint64_t *Ways, uint64_t Tag) {
  for (uint32_t W = 1; W != Cfg.Assoc; ++W) {
    if (Ways[W] != Tag)
      continue;
    // Hit: move to MRU position.
    for (uint32_t K = W; K != 0; --K)
      Ways[K] = Ways[K - 1];
    Ways[0] = Tag;
    ++Hits;
    return true;
  }

  // Miss: insert at MRU, evicting the LRU way.
  for (uint32_t K = Cfg.Assoc - 1; K != 0; --K)
    Ways[K] = Ways[K - 1];
  Ways[0] = Tag;
  ++Misses;
  return false;
}

void Cache::flush() {
  for (uint64_t &T : Tags)
    T = 0;
}
