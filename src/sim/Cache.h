//===- sim/Cache.h - Set-associative LRU cache model ------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache model used in place of SimpleScalar's sim-cache. Set-associative
/// with true-LRU replacement, configurable total size, associativity and
/// block size (the paper's training configuration is 4-way x 256 sets x 32 B;
/// the evaluation baseline is an 8 KB data cache; Tables 8/9 sweep
/// associativity and size).
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_SIM_CACHE_H
#define DLQ_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

namespace dlq {
namespace sim {

/// Cache geometry. SizeBytes must equal Assoc * BlockBytes * number-of-sets
/// with a power-of-two set count.
struct CacheConfig {
  uint32_t SizeBytes = 8 * 1024;
  uint32_t Assoc = 4;
  uint32_t BlockBytes = 32;

  /// Number of sets, or 0 when the geometry is not a whole number of sets
  /// (callers must check valid() before using this as a divisor or mask).
  uint32_t numSets() const {
    uint64_t Way = static_cast<uint64_t>(Assoc) * BlockBytes;
    if (Way == 0 || SizeBytes % Way != 0)
      return 0;
    return static_cast<uint32_t>(SizeBytes / Way);
  }
  bool valid() const;
  /// Empty when valid(); otherwise says what is wrong with the geometry.
  std::string validate() const;
  std::string describe() const;

  /// The paper's training configuration: 4-way, 256 sets of 32-byte blocks.
  static CacheConfig training() { return CacheConfig{256 * 4 * 32, 4, 32}; }
  /// The paper's evaluation baseline: 8 KB, 4-way, 32-byte blocks.
  static CacheConfig baseline() { return CacheConfig{8 * 1024, 4, 32}; }
};

/// One cache with true-LRU replacement.
class Cache {
public:
  /// Throws std::invalid_argument when \p Config is not a whole power-of-two
  /// number of sets (an invalid geometry would otherwise divide and mask by
  /// zero). Sweeps over unusual geometries rely on this being unconditional,
  /// not an assert.
  explicit Cache(const CacheConfig &Config);

  /// Performs one access; returns true on hit. Loads and stores are treated
  /// alike (allocate-on-miss, which is what sim-cache does for its default
  /// write-allocate configuration). An MRU (way 0) hit — the common case on
  /// cache-friendly traces — returns before any LRU reshuffling.
  bool access(uint32_t Addr) {
    uint32_t BlockAddr = Addr >> BlockShift;
    uint32_t Set = BlockAddr & SetMask;
    // Tags are block addresses +1 so that 0 means an empty way; 64-bit so
    // the +1 cannot wrap back to "empty" for blocks at the top of the
    // address space.
    uint64_t Tag = static_cast<uint64_t>(BlockAddr) + 1;
    uint64_t *Ways = &Tags[static_cast<size_t>(Set) * Cfg.Assoc];
    if (Ways[0] == Tag) {
      ++Hits;
      return true;
    }
    return accessSlow(Ways, Tag);
  }

  /// Drops all contents but keeps the statistics.
  void flush();

  const CacheConfig &config() const { return Cfg; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t accesses() const { return Hits + Misses; }

private:
  bool accessSlow(uint64_t *Ways, uint64_t Tag);

  CacheConfig Cfg;
  uint32_t SetMask = 0;
  uint32_t BlockShift = 0;
  /// Ways stored MRU-first per set.
  std::vector<uint64_t> Tags;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace sim
} // namespace dlq

#endif // DLQ_SIM_CACHE_H
