//===- sim/Decode.cpp ------------------------------------------------------==//

#include "sim/Decode.h"

using namespace dlq;
using namespace dlq::sim;
using namespace dlq::masm;

/// masm opcodes map 1:1 onto the leading XOp entries.
static XOp baseXOp(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return XOp::Add;
  case Opcode::Sub:
    return XOp::Sub;
  case Opcode::Mul:
    return XOp::Mul;
  case Opcode::Div:
    return XOp::Div;
  case Opcode::Rem:
    return XOp::Rem;
  case Opcode::And:
    return XOp::And;
  case Opcode::Or:
    return XOp::Or;
  case Opcode::Xor:
    return XOp::Xor;
  case Opcode::Nor:
    return XOp::Nor;
  case Opcode::Slt:
    return XOp::Slt;
  case Opcode::Sltu:
    return XOp::Sltu;
  case Opcode::Sllv:
    return XOp::Sllv;
  case Opcode::Srlv:
    return XOp::Srlv;
  case Opcode::Srav:
    return XOp::Srav;
  case Opcode::Addi:
    return XOp::Addi;
  case Opcode::Andi:
    return XOp::Andi;
  case Opcode::Ori:
    return XOp::Ori;
  case Opcode::Xori:
    return XOp::Xori;
  case Opcode::Slti:
    return XOp::Slti;
  case Opcode::Sltiu:
    return XOp::Sltiu;
  case Opcode::Sll:
    return XOp::Sll;
  case Opcode::Srl:
    return XOp::Srl;
  case Opcode::Sra:
    return XOp::Sra;
  case Opcode::Lui:
    return XOp::Lui;
  case Opcode::Li:
    return XOp::Li;
  case Opcode::La:
    return XOp::Li; // Rewritten below; unresolved -> LaUnresolved.
  case Opcode::Move:
    return XOp::Move;
  case Opcode::Lw:
    return XOp::Lw;
  case Opcode::Lh:
    return XOp::Lh;
  case Opcode::Lhu:
    return XOp::Lhu;
  case Opcode::Lb:
    return XOp::Lb;
  case Opcode::Lbu:
    return XOp::Lbu;
  case Opcode::Sw:
    return XOp::Sw;
  case Opcode::Sh:
    return XOp::Sh;
  case Opcode::Sb:
    return XOp::Sb;
  case Opcode::Beq:
    return XOp::Beq;
  case Opcode::Bne:
    return XOp::Bne;
  case Opcode::Blt:
    return XOp::Blt;
  case Opcode::Bge:
    return XOp::Bge;
  case Opcode::Ble:
    return XOp::Ble;
  case Opcode::Bgt:
    return XOp::Bgt;
  case Opcode::J:
    return XOp::J;
  case Opcode::Jal:
    return XOp::CallUnresolved; // Rewritten below.
  case Opcode::Jr:
    return XOp::Jr;
  case Opcode::Jalr:
    return XOp::Jalr;
  case Opcode::Nop:
    return XOp::Nop;
  }
  return XOp::Nop;
}

DecodedProgram sim::predecode(const Module &M, const Layout &L,
                              const std::set<InstrRef> &PrefetchLoads,
                              bool Fuse) {
  DecodedProgram P;
  P.Instrs.reserve(M.totalInstrs());
  P.FlatMap.reserve(M.totalInstrs());
  for (uint32_t FI = 0; FI != M.functions().size(); ++FI) {
    P.FuncEntryFlat.push_back(static_cast<uint32_t>(P.FlatMap.size()));
    for (uint32_t Idx = 0; Idx != M.functions()[FI].size(); ++Idx)
      P.FlatMap.push_back(InstrRef{FI, Idx});
  }
  P.FuncEntryFlat.push_back(static_cast<uint32_t>(P.FlatMap.size()));

  for (uint32_t FI = 0; FI != M.functions().size(); ++FI) {
    uint32_t EntryFlat = P.FuncEntryFlat[FI];
    for (const Instr &I : M.functions()[FI].instrs()) {
      DecodedInstr D;
      D.Op = baseXOp(I.Op);
      // Writes to $zero are architecturally discarded; retarget them to the
      // discard slot so result writes need no $zero test at run time.
      D.Rd = I.Rd == Reg::Zero ? DiscardReg : static_cast<uint8_t>(I.Rd);
      D.Rs = static_cast<uint8_t>(I.Rs);
      D.Rt = static_cast<uint8_t>(I.Rt);
      D.Imm = I.Imm;

      if (isCondBranch(I.Op) || I.Op == Opcode::J) {
        // Local index -> absolute flat index.
        D.Target = EntryFlat + I.TargetIndex;
      } else if (I.Op == Opcode::Jal) {
        if (std::optional<RuntimeFn> F = runtimeFnByName(I.Sym)) {
          D.Op = XOp::CallRuntime;
          D.Target = static_cast<uint32_t>(*F);
        } else {
          uint32_t Callee = M.functionIndex(I.Sym);
          if (Callee != InvalidIndex) {
            D.Op = XOp::CallFunc;
            D.Target = P.FuncEntryFlat[Callee];
          }
          // else: CallUnresolved, traps if executed.
        }
      } else if (I.Op == Opcode::La) {
        uint32_t Addr = L.globalAddress(I.Sym);
        if (Addr == Layout::InvalidAddress) {
          // Allow taking the address of a function (for completeness).
          uint32_t Callee = M.functionIndex(I.Sym);
          Addr = Callee == InvalidIndex ? Layout::InvalidAddress
                                        : L.functionEntry(Callee);
        }
        if (Addr == Layout::InvalidAddress)
          D.Op = XOp::LaUnresolved; // Traps if executed.
        else
          D.Imm = static_cast<int32_t>(Addr + static_cast<uint32_t>(I.Imm));
      } else if (isLoad(I.Op)) {
        size_t Flat = P.Instrs.size();
        if (PrefetchLoads.count(P.FlatMap[Flat]))
          D.Prefetch = 1;
      }

      P.Instrs.push_back(D);
    }
  }

  // Fusion pass: rewrite the head of frequent two-instruction sequences to a
  // superinstruction. Safe without any jump-target analysis because the
  // non-head components' records are untouched — control transfers into
  // them execute them stand-alone — and because every component is
  // non-trapping and only the final component may be a branch/jump, so a
  // fused handler always completes all components.
  struct FuseTriple {
    XOp First, Second, Third, Fused;
  };
  static const FuseTriple Fuse3Table[] = {
      {XOp::Lw, XOp::Lw, XOp::Lw, XOp::FuseLwLwLw},
      {XOp::Lw, XOp::Lw, XOp::Sw, XOp::FuseLwLwSw},
      {XOp::Lw, XOp::Lw, XOp::Add, XOp::FuseLwLwAdd},
      {XOp::Sw, XOp::Lw, XOp::Lw, XOp::FuseSwLwLw},
      {XOp::Add, XOp::Lw, XOp::Lw, XOp::FuseAddLwLw},
      {XOp::Add, XOp::Sw, XOp::Lw, XOp::FuseAddSwLw},
      {XOp::Lw, XOp::Add, XOp::Sw, XOp::FuseLwAddSw},
      {XOp::Lw, XOp::Sw, XOp::Lw, XOp::FuseLwSwLw},
      {XOp::Sw, XOp::Lw, XOp::Li, XOp::FuseSwLwLi},
      {XOp::Lw, XOp::Sll, XOp::Add, XOp::FuseLwSllAdd},
      {XOp::Lw, XOp::Li, XOp::Bge, XOp::FuseLwLiBge},
      {XOp::Lw, XOp::Li, XOp::Beq, XOp::FuseLwLiBeq},
      {XOp::Lw, XOp::Sw, XOp::J, XOp::FuseLwSwJ},
  };
  struct FusePair {
    XOp First, Second, Fused;
  };
  static const FusePair FuseTable[] = {
      {XOp::Lw, XOp::Lw, XOp::FuseLwLw},
      {XOp::Sw, XOp::Lw, XOp::FuseSwLw},
      {XOp::Lw, XOp::Sw, XOp::FuseLwSw},
      {XOp::Add, XOp::Lw, XOp::FuseAddLw},
      {XOp::Lw, XOp::Add, XOp::FuseLwAdd},
      {XOp::Add, XOp::Sw, XOp::FuseAddSw},
      {XOp::Move, XOp::Lw, XOp::FuseMoveLw},
      {XOp::Move, XOp::Li, XOp::FuseMoveLi},
      {XOp::Move, XOp::Move, XOp::FuseMoveMove},
      {XOp::Lw, XOp::Move, XOp::FuseLwMove},
      {XOp::Add, XOp::Move, XOp::FuseAddMove},
      {XOp::Move, XOp::Sw, XOp::FuseMoveSw},
      {XOp::Sll, XOp::Add, XOp::FuseSllAdd},
      {XOp::Lw, XOp::Sll, XOp::FuseLwSll},
      {XOp::Li, XOp::Lw, XOp::FuseLiLw},
      {XOp::Sw, XOp::Move, XOp::FuseSwMove},
      {XOp::Li, XOp::Move, XOp::FuseLiMove},
      {XOp::Move, XOp::Sll, XOp::FuseMoveSll},
      {XOp::Sw, XOp::J, XOp::FuseSwJ},
      {XOp::Move, XOp::J, XOp::FuseMoveJ},
      {XOp::Li, XOp::Bge, XOp::FuseLiBge},
      {XOp::Li, XOp::Beq, XOp::FuseLiBeq},
  };
  for (size_t Idx = 0; Fuse && Idx + 1 < P.Instrs.size(); ++Idx) {
    // Reading Instrs[Idx].Op before rewriting it and Instrs[Idx + 1].Op
    // before Idx reaches it means both reads see original (unfused) ops, so
    // heads may overlap: in `lw lw lw`, both the first and second lw become
    // FuseLwLw heads, and whichever one execution reaches is correct.
    XOp A = P.Instrs[Idx].Op;
    XOp B = P.Instrs[Idx + 1].Op;
    bool Fused3 = false;
    if (Idx + 2 < P.Instrs.size()) {
      XOp C = P.Instrs[Idx + 2].Op;
      for (const FuseTriple &F : Fuse3Table)
        if (A == F.First && B == F.Second && C == F.Third) {
          P.Instrs[Idx].Op = F.Fused;
          Fused3 = true;
          break;
        }
    }
    if (Fused3)
      continue;
    for (const FusePair &F : FuseTable)
      if (A == F.First && B == F.Second) {
        P.Instrs[Idx].Op = F.Fused;
        break;
      }
  }

  // Falling off the end of the text dispatches to this sentinel instead of
  // needing a bounds check before every instruction.
  DecodedInstr Sentinel;
  Sentinel.Op = XOp::OutOfText;
  P.Instrs.push_back(Sentinel);
  return P;
}
