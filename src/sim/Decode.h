//===- sim/Decode.h - Predecoded instruction form --------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resolve-once lowering the interpreter executes. A `masm::Instr` is a
/// ~64-byte record carrying a `std::string` symbol that the seed interpreter
/// re-resolved on every execution (map lookups for `jal`/`la`, a string
/// compare chain for runtime calls, per-iteration function-base arithmetic
/// for branches). `predecode` performs all of that resolution exactly once in
/// the `Machine` constructor and packs each instruction into a 16-byte
/// `DecodedInstr`:
///
///  - branch/jump targets become absolute flat instruction indices;
///  - `jal` becomes either a function-entry flat index or a
///    `masm::RuntimeFn` ordinal (runtime names shadow module functions,
///    exactly as the seed's string dispatch did);
///  - `la` of a known symbol becomes `Li` of the materialized address;
///  - the per-load prefetch-arming set becomes a flag bit.
///
/// What may NOT be resolved early: anything whose failure the seed reported
/// at execution time. `jal`/`la` naming unknown symbols must still trap with
/// the same message, and only if actually executed — so they lower to
/// `CallUnresolved`/`LaUnresolved` markers that trap on execution, looking
/// up the symbol name through `FlatMap` on that cold path.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_SIM_DECODE_H
#define DLQ_SIM_DECODE_H

#include "masm/Module.h"
#include "masm/Runtime.h"

#include <cstdint>
#include <set>
#include <vector>

namespace dlq {
namespace sim {

/// Execution opcode of the decoded form. ALU, memory and indirect-jump
/// entries keep `masm::Opcode` semantics; the entries after `Nop` exist only
/// in decoded form.
enum class XOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Nor,
  Slt,
  Sltu,
  Sllv,
  Srlv,
  Srav,
  Addi,
  Andi,
  Ori,
  Xori,
  Slti,
  Sltiu,
  Sll,
  Srl,
  Sra,
  Lui,
  Li, ///< Also carries resolved `la`: Rd <- Imm as a full 32-bit value.
  Move,
  Lw,
  Lh,
  Lhu,
  Lb,
  Lbu,
  Sw,
  Sh,
  Sb,
  Beq, ///< Conditional branches and J: Target is an absolute flat index.
  Bne,
  Blt,
  Bge,
  Ble,
  Bgt,
  J,
  Jr,
  Jalr,
  Nop,
  // Decoded-only forms.
  CallFunc,       ///< jal to a module function: Target = its flat entry.
  CallRuntime,    ///< jal to a runtime service: Target = RuntimeFn ordinal.
  CallUnresolved, ///< jal to an unknown symbol: traps when executed.
  LaUnresolved,   ///< la of an unknown symbol: traps when executed.
  OutOfText,      ///< Sentinel appended after the last instruction: the pc
                  ///< ran off the end of the text. Lets the interpreter skip
                  ///< a per-instruction bounds check; only indirect jumps
                  ///< (jr/jalr), whose targets are data, re-check explicitly.
  // Fused pairs (superinstructions). The decoder rewrites the FIRST
  // instruction of a frequent two-instruction sequence to one of these; the
  // second instruction's record is left fully intact, so a jump landing on
  // it still executes it stand-alone, and per-instruction counters are
  // updated for both components exactly as unfused execution would. Only
  // sequences of non-trapping, non-control ops are fused, so a fused handler
  // has no exit but fall-through. Chosen from dynamic pair histograms of the
  // workload registry: compiled MinC leans on `lw lw` / `sw lw` stack
  // traffic at -O0 and `move`-heavy sequences at -O1.
  FuseLwLw,
  FuseSwLw,
  FuseLwSw,
  FuseAddLw,
  FuseLwAdd,
  FuseAddSw,
  FuseMoveLw,
  FuseMoveLi,
  FuseMoveMove,
  FuseLwMove,
  FuseAddMove,
  FuseMoveSw,
  // Fused triples, same rules (head rewritten, components 2 and 3 intact,
  // overlap-safe). The decoder prefers a triple over a pair at the same head.
  FuseLwLwLw,
  FuseLwLwSw,
  FuseLwLwAdd,
  FuseSwLwLw,
  FuseAddLwLw,
  FuseAddSwLw,
  FuseLwAddSw,
  FuseLwSwLw,
  // Second fusion wave. A conditional branch or `j` may appear as the FINAL
  // component of a fused sequence: it cannot trap, and every earlier
  // component is non-control, so "the handler completes all components"
  // still holds — the branch merely picks the successor at the end.
  FuseSllAdd,
  FuseLwSll,
  FuseLiLw, ///< Also covers resolved `la` followed by a load.
  FuseSwMove,
  FuseLiMove,
  FuseMoveSll,
  FuseSwJ,
  FuseMoveJ,
  FuseLiBge,
  FuseLiBeq,
  FuseSwLwLi,
  FuseLwSllAdd,
  FuseLwLiBge,
  FuseLwLiBeq,
  FuseLwSwJ,
};

/// Number of XOp values (dispatch-table size).
constexpr unsigned NumXOps = static_cast<unsigned>(XOp::FuseLwSwJ) + 1;

/// True for the fused superinstruction opcodes (pair and triple heads).
constexpr bool isFusedXOp(XOp Op) { return Op >= XOp::FuseLwLw; }

/// How many original instructions one dispatch of \p Op executes: 3 for
/// fused triples, 2 for fused pairs, 1 otherwise. Keep in sync with the
/// enum layout above — the triples are the FuseLwLwLw..FuseLwSwLw block and
/// the FuseSwLwLi..FuseLwSwJ tail of the second wave.
constexpr unsigned xopComponents(XOp Op) {
  if ((Op >= XOp::FuseLwLwLw && Op <= XOp::FuseLwSwLw) ||
      (Op >= XOp::FuseSwLwLi && Op <= XOp::FuseLwSwJ))
    return 3;
  return isFusedXOp(Op) ? 2 : 1;
}

/// Destination-register slot that absorbs writes to $zero. The decoder
/// rewrites `Rd == $zero` to this index, so the interpreter writes every
/// result unconditionally — the architectural `Regs[0]` is never written and
/// stays 0 — instead of testing for $zero on every ALU op.
constexpr uint8_t DiscardReg = masm::NumRegs;

/// One predecoded instruction. 16 bytes, symbol-free: the interpreter's
/// working set is Instrs + the register file + the touched memory pages.
struct DecodedInstr {
  XOp Op = XOp::Nop;
  uint8_t Rd = 0; ///< Destination; DiscardReg when the source wrote $zero.
  uint8_t Rs = 0;
  uint8_t Rt = 0;
  uint8_t Prefetch = 0; ///< 1 = issue a next-line prefetch after this load.
  int32_t Imm = 0;      ///< Immediate; materialized address for resolved la.
  uint32_t Target = 0;  ///< Absolute flat index, or RuntimeFn ordinal.
};

static_assert(sizeof(DecodedInstr) == 16, "decoded form must stay packed");

/// A module lowered for execution. `Instrs` holds one entry per module
/// instruction plus a trailing `OutOfText` sentinel, so
/// `Instrs.size() == FlatMap.size() + 1`; the logical instruction count is
/// `FlatMap.size()`.
struct DecodedProgram {
  std::vector<DecodedInstr> Instrs;
  /// Flat ordinal -> (function, instruction); also the trap-path route back
  /// to symbol names.
  std::vector<masm::InstrRef> FlatMap;
  /// Flat index of each function's entry, one past the end as a sentinel.
  std::vector<uint32_t> FuncEntryFlat;
};

/// Lowers \p M (which must be finalized, with \p L its layout). Loads in
/// \p PrefetchLoads get their Prefetch flag set. \p Fuse controls the
/// superinstruction pass; disabling it keeps every instruction stand-alone,
/// which the differential fuzzer uses as the per-PC accounting reference.
DecodedProgram predecode(const masm::Module &M, const masm::Layout &L,
                         const std::set<masm::InstrRef> &PrefetchLoads,
                         bool Fuse = true);

} // namespace sim
} // namespace dlq

#endif // DLQ_SIM_DECODE_H
